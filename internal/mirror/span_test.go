package mirror

import (
	"context"
	"testing"

	"blobcr/internal/obs"
)

// TestCommitPipelineEmitsFiveStages asserts one async commit produces the
// five named pipeline spans — capture, probe, upload, publish, durable —
// with monotonic, non-overlapping timestamps, and that the same stages land
// in the client's metrics registry.
func TestCommitPipelineEmitsFiveStages(t *testing.T) {
	_, c, m, _ := setup(t, 8*cs)
	reg := obs.NewRegistry()
	c.Obs = reg

	if _, err := m.WriteAt(make([]byte, 3*cs), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	pc, err := m.CommitAsync(obs.WithTrace(context.Background(), tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// The trace also carries the RPC spans issued inside the stages; the
	// stage invariants are checked on the stage spans alone.
	spans := stageSpans(tr)
	if len(spans) != len(obs.CommitStages) {
		t.Fatalf("got %d stage spans %v, want %d", len(spans), spans, len(obs.CommitStages))
	}
	for i, want := range obs.CommitStages {
		got := spans[i]
		if got.Name != want {
			t.Errorf("span %d = %q, want %q", i, got.Name, want)
		}
		if got.End.Before(got.Start) {
			t.Errorf("span %q ends before it starts", got.Name)
		}
		if i > 0 && got.Start.Before(spans[i-1].End) {
			t.Errorf("span %q starts at %v, before %q ended at %v — stages overlap",
				got.Name, got.Start, spans[i-1].Name, spans[i-1].End)
		}
	}

	for _, stage := range obs.CommitStages {
		h := reg.Histogram("span_ns", obs.L("span", stage))
		if h.Count() != 1 {
			t.Errorf("registry histogram for %q has count %d, want 1", stage, h.Count())
		}
	}
	if reg.Counter("mirror_commits_total").Value() != 1 {
		t.Error("mirror_commits_total not incremented")
	}
	if reg.Counter("blobseer_commits_total").Value() != 1 {
		t.Error("blobseer_commits_total not incremented")
	}
}

// TestDetachedCommitKeepsStageTelemetry checks that the detached-commit
// path (context.WithoutCancel) still carries the registry and trace.
func TestDetachedCommitKeepsStageTelemetry(t *testing.T) {
	_, c, m, _ := setup(t, 8*cs)
	reg := obs.NewRegistry()
	c.Obs = reg

	if _, err := m.WriteAt(make([]byte, cs), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	reqCtx, cancel := context.WithCancel(obs.WithTrace(context.Background(), tr))
	pc, err := m.CommitAsyncDetached(reqCtx)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the request dies; the detached publish must finish anyway
	if _, err := pc.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(stageSpans(tr)); got != len(obs.CommitStages) {
		t.Fatalf("detached commit recorded %d stage spans, want %d", got, len(obs.CommitStages))
	}
}

// TestDetachedCommitSpanParentage checks distributed-trace identity across
// the detach: every pipeline stage of a detached commit must still parent
// under the request's root span — context.WithoutCancel severs cancellation,
// not the span context — so an assembled trace shows one connected tree even
// when the requester died mid-commit.
func TestDetachedCommitSpanParentage(t *testing.T) {
	_, c, m, _ := setup(t, 8*cs)
	reg := obs.NewRegistry()
	c.Obs = reg

	if _, err := m.WriteAt(make([]byte, cs), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	reqCtx := obs.WithRegistry(context.Background(), reg)
	reqCtx, trace := obs.BeginTrace(reqCtx)
	reqCtx, root := obs.StartSpan(reqCtx, "request")
	reqCtx, cancel := context.WithCancel(reqCtx)
	pc, err := m.CommitAsyncDetached(reqCtx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := pc.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := reg.TraceSpans(trace)
	byName := make(map[string]obs.SpanRecord)
	for _, s := range spans {
		byName[s.Name] = s
	}
	for _, stage := range obs.CommitStages {
		rec, ok := byName[stage]
		if !ok {
			t.Errorf("stage %q missing from the trace store", stage)
			continue
		}
		if rec.Trace != trace {
			t.Errorf("stage %q carries trace %x, want %x", stage, rec.Trace, trace)
		}
		if rec.Parent != root.ID() {
			t.Errorf("stage %q parented under %x, want the request root %x — parentage lost across the detach",
				stage, rec.Parent, root.ID())
		}
	}
}

// stageSpans filters a trace down to the named commit-stage spans, in the
// order they completed (RPC spans issued inside the stages ride the same
// trace).
func stageSpans(tr *obs.Trace) []obs.SpanRecord {
	var out []obs.SpanRecord
	for _, s := range tr.Spans() {
		for _, stage := range obs.CommitStages {
			if s.Name == stage {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
