package mirror

import (
	"context"
	"testing"

	"blobcr/internal/obs"
)

// TestCommitPipelineEmitsFiveStages asserts one async commit produces the
// five named pipeline spans — capture, probe, upload, publish, durable —
// with monotonic, non-overlapping timestamps, and that the same stages land
// in the client's metrics registry.
func TestCommitPipelineEmitsFiveStages(t *testing.T) {
	_, c, m, _ := setup(t, 8*cs)
	reg := obs.NewRegistry()
	c.Obs = reg

	if _, err := m.WriteAt(make([]byte, 3*cs), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	pc, err := m.CommitAsync(obs.WithTrace(context.Background(), tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	if len(spans) != len(obs.CommitStages) {
		t.Fatalf("got %d spans %v, want %d", len(spans), spans, len(obs.CommitStages))
	}
	for i, want := range obs.CommitStages {
		got := spans[i]
		if got.Name != want {
			t.Errorf("span %d = %q, want %q", i, got.Name, want)
		}
		if got.End.Before(got.Start) {
			t.Errorf("span %q ends before it starts", got.Name)
		}
		if i > 0 && got.Start.Before(spans[i-1].End) {
			t.Errorf("span %q starts at %v, before %q ended at %v — stages overlap",
				got.Name, got.Start, spans[i-1].Name, spans[i-1].End)
		}
	}

	for _, stage := range obs.CommitStages {
		h := reg.Histogram("span_ns", obs.L("span", stage))
		if h.Count() != 1 {
			t.Errorf("registry histogram for %q has count %d, want 1", stage, h.Count())
		}
	}
	if reg.Counter("mirror_commits_total").Value() != 1 {
		t.Error("mirror_commits_total not incremented")
	}
	if reg.Counter("blobseer_commits_total").Value() != 1 {
		t.Error("blobseer_commits_total not incremented")
	}
}

// TestDetachedCommitKeepsStageTelemetry checks that the detached-commit
// path (context.WithoutCancel) still carries the registry and trace.
func TestDetachedCommitKeepsStageTelemetry(t *testing.T) {
	_, c, m, _ := setup(t, 8*cs)
	reg := obs.NewRegistry()
	c.Obs = reg

	if _, err := m.WriteAt(make([]byte, cs), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	reqCtx, cancel := context.WithCancel(obs.WithTrace(context.Background(), tr))
	pc, err := m.CommitAsyncDetached(reqCtx)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the request dies; the detached publish must finish anyway
	if _, err := pc.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Spans()); got != len(obs.CommitStages) {
		t.Fatalf("detached commit recorded %d spans, want %d", got, len(obs.CommitStages))
	}
}
