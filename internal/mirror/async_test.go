package mirror

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/transport"
)

// gateNet wraps a Network; once armed, the next chunk-body upload (spotted
// by request size) blocks until its context is cancelled, simulating a
// commit caught mid-upload.
type gateNet struct {
	inner transport.Network

	mu      sync.Mutex
	armed   bool
	skip    int           // big calls to let through before tripping
	blocked chan struct{} // closed when an upload is blocked on the gate
}

func newGateNet() *gateNet {
	return &gateNet{inner: transport.NewInProc(), blocked: make(chan struct{})}
}

func (g *gateNet) Listen(addr string, h transport.Handler) (transport.Server, error) {
	return g.inner.Listen(addr, h)
}

// bodyThreshold separates chunk-body uploads from the protocol's small
// control messages.
const bodyThreshold = 200

func (g *gateNet) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	if len(req) >= bodyThreshold {
		g.mu.Lock()
		trip := false
		if g.armed {
			if g.skip > 0 {
				g.skip--
			} else {
				trip = true
				g.armed = false
				close(g.blocked)
			}
		}
		g.mu.Unlock()
		if trip {
			<-ctx.Done()
			return nil, ctx.Err()
		}
	}
	return g.inner.Call(ctx, addr, req)
}

// arm trips the gate on the (skip+1)th chunk-body upload.
func (g *gateNet) arm(skip int) {
	g.mu.Lock()
	g.armed = true
	g.skip = skip
	g.blocked = make(chan struct{})
	g.mu.Unlock()
}

// asyncSetup deploys a dedup-enabled repository over the gate network and
// attaches a cloned module with one committed checkpoint.
func asyncSetup(t *testing.T) (*gateNet, *blobseer.Deployment, *blobseer.Client, *Module) {
	t.Helper()
	g := newGateNet()
	d, err := blobseer.Deploy(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	base, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WriteAt(ctx, base, 0, make([]byte, 16*cs))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(ctx, c, blobseer.SnapshotRef{Blob: base, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.WriteAt(bytes.Repeat([]byte{byte(0x10 + i)}, cs), int64(i)*cs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	return g, d, c, m
}

func TestCommitAsyncPublishesInBackground(t *testing.T) {
	_, _, c, m := asyncSetup(t)
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xAA}, 2*cs), 0); err != nil {
		t.Fatal(err)
	}
	pc, err := m.CommitAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The dirty set is captured: the device is immediately clean.
	if m.DirtyChunks() != 0 {
		t.Errorf("DirtyChunks = %d after CommitAsync, want 0", m.DirtyChunks())
	}
	ref, err := pc.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Err() != nil {
		t.Errorf("Err after success = %v", pc.Err())
	}
	if got, ok := pc.Ref(); !ok || got != ref {
		t.Errorf("Ref() = %v/%v, want %v/true", got, ok, ref)
	}
	got, err := c.ReadVersion(ctx, ref, 0, 2*cs)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 2*cs)) {
		t.Fatalf("published snapshot wrong: %v", err)
	}
	if m.PendingCommits() != 0 {
		t.Errorf("PendingCommits = %d after Wait, want 0", m.PendingCommits())
	}
}

func TestCommitAsyncOverlapsKeepVersionOrder(t *testing.T) {
	_, _, c, m := asyncSetup(t)
	var pcs []*PendingCommit
	for round := 0; round < 3; round++ {
		if _, err := m.WriteAt(bytes.Repeat([]byte{byte(0xB0 + round)}, cs), int64(round)*cs); err != nil {
			t.Fatal(err)
		}
		pc, err := m.CommitAsync(ctx)
		if err != nil {
			t.Fatal(err)
		}
		pcs = append(pcs, pc)
	}
	var versions []uint64
	for _, pc := range pcs {
		ref, err := pc.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, ref.Version)
	}
	for i := 1; i < len(versions); i++ {
		if versions[i] != versions[i-1]+1 {
			t.Fatalf("versions out of order: %v", versions)
		}
	}
	// Each overlapped snapshot holds exactly its round's write.
	ckpt, _ := m.CheckpointImage()
	for round, v := range versions {
		got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: ckpt, Version: v}, uint64(round)*cs, cs)
		if err != nil || got[0] != byte(0xB0+round) {
			t.Fatalf("round %d snapshot wrong: %v", round, err)
		}
	}
}

// TestCancelledAsyncCommitReleasesCASRefs is the acceptance test for commit
// cancellation: a context cancelled mid-upload must return every
// content-addressed reference the commit took, leaving refcounts exactly
// where they were, and the module must be able to commit again.
func TestCancelledAsyncCommitReleasesCASRefs(t *testing.T) {
	g, d, c, m := asyncSetup(t)
	before, err := c.CasStats(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}

	// Six chunks of fresh content, then cancel while the upload is wedged.
	fresh := func(i int) []byte { return bytes.Repeat([]byte{byte(0xC0 + i)}, cs) }
	for i := 0; i < 6; i++ {
		if _, err := m.WriteAt(fresh(i), int64(i)*cs); err != nil {
			t.Fatal(err)
		}
	}
	// Let three bodies land (taking references) before wedging the fourth,
	// so the abort has real references to return.
	g.arm(3)
	cctx, cancel := context.WithCancel(context.Background())
	pc, err := m.CommitAsync(cctx)
	if err != nil {
		t.Fatal(err)
	}
	<-g.blocked // an upload is stuck on the gate
	cancel()
	<-pc.Done()
	if err := pc.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled commit err = %v, want context.Canceled", err)
	}
	if _, ok := pc.Ref(); ok {
		t.Error("cancelled commit reports a published ref")
	}

	// Every reference the aborted commit took was released: refcounts and
	// body counts are exactly as before.
	after, err := c.CasStats(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if after.Refs != before.Refs {
		t.Errorf("leaked CAS refs: %d before, %d after cancelled commit", before.Refs, after.Refs)
	}
	if after.Chunks != before.Chunks {
		t.Errorf("leaked CAS bodies: %d before, %d after", before.Chunks, after.Chunks)
	}

	// The captured chunks went back to dirty; a retried commit publishes them.
	if m.DirtyChunks() != 6 {
		t.Errorf("DirtyChunks = %d after abort, want 6 (re-marked)", m.DirtyChunks())
	}
	info, err := m.Commit(ctx)
	if err != nil {
		t.Fatalf("retry after cancelled commit: %v", err)
	}
	ckpt, _ := m.CheckpointImage()
	for i := 0; i < 6; i++ {
		got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: ckpt, Version: info.Version}, uint64(i)*cs, cs)
		if err != nil || !bytes.Equal(got, fresh(i)) {
			t.Fatalf("retried snapshot chunk %d wrong: %v", i, err)
		}
	}
}

// TestAsyncCommitRetireRaceStress overlaps async commit pipelines of several
// modules — all drawing chunk content from a small shared pool, so dedup
// refcounts are contended — against concurrent Retire of superseded
// snapshots. Every published snapshot must remain fully readable at the
// moment it is waited on. Run with -race.
func TestAsyncCommitRetireRaceStress(t *testing.T) {
	const (
		writers = 4
		rounds  = 12
		stripes = 3
		pool    = 3
		overlap = 3 // commits kept in flight per module
	)
	d, err := blobseer.Deploy(transport.NewInProc(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	base, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	baseInfo, err := c.WriteAt(ctx, base, 0, make([]byte, 8*cs))
	if err != nil {
		t.Fatal(err)
	}
	baseRef := blobseer.SnapshotRef{Blob: base, Version: baseInfo.Version}

	contents := make([][]byte, pool)
	for i := range contents {
		contents[i] = bytes.Repeat([]byte{byte('A' + i)}, cs)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m, err := Attach(ctx, c, baseRef)
			if err != nil {
				errs <- err
				return
			}
			if err := m.Clone(ctx); err != nil {
				errs <- err
				return
			}
			ckpt, _ := m.CheckpointImage()
			var inflight []*PendingCommit
			settle := func(pc *PendingCommit) error {
				ref, err := pc.Wait(ctx)
				if err != nil {
					return fmt.Errorf("writer %d: commit: %w", w, err)
				}
				got, err := c.ReadVersion(ctx, ref, 0, stripes*cs)
				if err != nil {
					return fmt.Errorf("writer %d: read %s: %w", w, ref, err)
				}
				if len(got) != stripes*cs {
					return fmt.Errorf("writer %d: snapshot %s truncated", w, ref)
				}
				// Retire everything below the snapshot just verified; other
				// writers' snapshots share these bodies via dedup and must
				// survive through their own references.
				if _, err := c.RetireStats(ctx, ckpt, ref.Version); err != nil {
					return fmt.Errorf("writer %d: retire: %w", w, err)
				}
				return nil
			}
			for r := 0; r < rounds; r++ {
				for s := 0; s < stripes; s++ {
					body := contents[(w+r+s)%pool]
					if _, err := m.WriteAt(body, int64(s)*cs); err != nil {
						errs <- err
						return
					}
				}
				pc, err := m.CommitAsync(ctx)
				if err != nil {
					errs <- err
					return
				}
				inflight = append(inflight, pc)
				if len(inflight) >= overlap {
					if err := settle(inflight[0]); err != nil {
						errs <- err
						return
					}
					inflight = inflight[1:]
				}
			}
			for _, pc := range inflight {
				if err := settle(pc); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCommitAsyncBoundedPipelineBackpressure(t *testing.T) {
	g, _, _, m := asyncSetup(t)
	// Wedge the pipeline: one commit blocked on the gate, then fill the
	// remaining slots. A further CommitAsync with a cancelled context must
	// fail fast instead of blocking forever.
	g.arm(0)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var pcs []*PendingCommit
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xD0}, cs), 0); err != nil {
		t.Fatal(err)
	}
	pc, err := m.CommitAsync(cctx)
	if err != nil {
		t.Fatal(err)
	}
	pcs = append(pcs, pc)
	<-g.blocked
	for i := 1; i < DefaultPipelineDepth; i++ {
		if _, err := m.WriteAt(bytes.Repeat([]byte{byte(0xD0 + i)}, cs), 0); err != nil {
			t.Fatal(err)
		}
		pc, err := m.CommitAsync(cctx)
		if err != nil {
			t.Fatal(err)
		}
		pcs = append(pcs, pc)
	}
	full, cancelFull := context.WithCancel(context.Background())
	cancelFull()
	if _, err := m.CommitAsync(full); !errors.Is(err, context.Canceled) {
		t.Fatalf("CommitAsync on full pipeline with cancelled ctx = %v, want context.Canceled", err)
	}
	// Unwedge: cancelling the shared context drains every queued commit.
	cancel()
	for _, pc := range pcs {
		<-pc.Done()
	}
}

// TestCommitAsyncDetachedSurvivesRequestCancel covers the proxy's contract:
// the request context bounds only pipeline admission; cancelling it after
// CommitAsyncDetached returns must not abort the background upload.
func TestCommitAsyncDetachedSurvivesRequestCancel(t *testing.T) {
	_, _, c, m := asyncSetup(t)
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xE1}, 2*cs), 0); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	pc, err := m.CommitAsyncDetached(cctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the CHECKPOINT exchange ends; the upload must keep going
	ref, err := pc.Wait(ctx)
	if err != nil {
		t.Fatalf("detached commit aborted by request cancel: %v", err)
	}
	got, err := c.ReadVersion(ctx, ref, 0, 2*cs)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xE1}, 2*cs)) {
		t.Fatalf("detached snapshot wrong: %v", err)
	}
}

// TestFailedCommitFoldsIntoQueuedCaptures covers the pipeline failure path:
// when a commit fails, captures already queued behind it were taken with
// the dirty set cleared and would publish snapshots missing the failed
// commit's writes — the failure must fold its capture into them so every
// published snapshot is complete.
func TestFailedCommitFoldsIntoQueuedCaptures(t *testing.T) {
	g, _, c, m := asyncSetup(t)

	// Commit A: chunk 0, wedged on its first upload.
	contentA := bytes.Repeat([]byte{0xA1}, cs)
	if _, err := m.WriteAt(contentA, 0); err != nil {
		t.Fatal(err)
	}
	g.arm(0)
	actx, cancelA := context.WithCancel(context.Background())
	pcA, err := m.CommitAsync(actx)
	if err != nil {
		t.Fatal(err)
	}
	<-g.blocked

	// Commit B: chunk 1 only, captured while A is still in flight.
	contentB := bytes.Repeat([]byte{0xB2}, cs)
	if _, err := m.WriteAt(contentB, cs); err != nil {
		t.Fatal(err)
	}
	pcB, err := m.CommitAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// A fails; B must still publish a snapshot containing A's write.
	cancelA()
	<-pcA.Done()
	if pcA.Err() == nil {
		t.Fatal("wedged commit A did not fail")
	}
	refB, err := pcB.Wait(ctx)
	if err != nil {
		t.Fatalf("commit B failed: %v", err)
	}
	gotA, err := c.ReadVersion(ctx, refB, 0, cs)
	if err != nil || !bytes.Equal(gotA, contentA) {
		t.Fatalf("snapshot B lost failed commit A's write: %v", err)
	}
	gotB, err := c.ReadVersion(ctx, refB, cs, cs)
	if err != nil || !bytes.Equal(gotB, contentB) {
		t.Fatalf("snapshot B lost its own write: %v", err)
	}
}
