package mirror

import (
	"bytes"
	"errors"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/transport"
)

// rollbackSetup attaches a cloned module over a plain in-process deployment
// with one committed checkpoint holding known content.
func rollbackSetup(t *testing.T) (*blobseer.Client, *Module, blobseer.SnapshotRef) {
	t.Helper()
	d, err := blobseer.Deploy(transport.NewInProc(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	base, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WriteAt(ctx, base, 0, make([]byte, 16*cs))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(ctx, c, blobseer.SnapshotRef{Blob: base, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt(bytes.Repeat([]byte{0x11}, cs), 0); err != nil {
		t.Fatal(err)
	}
	ckptInfo, err := m.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, _ := m.CheckpointImage()
	return c, m, blobseer.SnapshotRef{Blob: ckpt, Version: ckptInfo.Version}
}

func TestRollbackToRevertsInPlace(t *testing.T) {
	_, m, ckptRef := rollbackSetup(t)

	// Warm the cache with a read-only chunk, then diverge past the
	// checkpoint: an uncommitted write and a committed one.
	var warm [cs]byte
	if _, err := m.ReadAt(warm[:], 8*cs); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt(bytes.Repeat([]byte{0x22}, cs), 2*cs); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt(bytes.Repeat([]byte{0x33}, cs), 3*cs); err != nil {
		t.Fatal(err)
	}

	remoteBefore, localBefore, _ := m.Stats()
	if err := m.RollbackTo(ctx, ckptRef); err != nil {
		t.Fatalf("RollbackTo: %v", err)
	}
	if m.DirtyChunks() != 0 {
		t.Errorf("DirtyChunks = %d after rollback", m.DirtyChunks())
	}
	// The post-checkpoint writes are gone; the checkpointed write survives.
	var got [cs]byte
	if _, err := m.ReadAt(got[:], 2*cs); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("rolled-back chunk 2 reads %#x, want zeros", got[0])
	}
	if _, err := m.ReadAt(got[:], 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 {
		t.Errorf("checkpointed chunk reads %#x, want 0x11", got[0])
	}
	// The read-only chunk is still cached: no remote fetch to serve it.
	remoteMid, _, _ := m.Stats()
	if _, err := m.ReadAt(got[:], 8*cs); err != nil {
		t.Fatal(err)
	}
	remoteAfter, localAfter, _ := m.Stats()
	if remoteAfter != remoteMid {
		t.Errorf("read-only chunk was refetched after rollback (%d -> %d remote reads)", remoteMid, remoteAfter)
	}
	if localAfter <= localBefore {
		t.Errorf("expected a local hit serving the warm chunk (hits %d -> %d, remote %d)", localBefore, localAfter, remoteBefore)
	}
}

// TestCommitAfterRollbackIgnoresNewerOrphan is the rollback-safety property:
// a commit made after rolling back must overlay the rollback target, not the
// blob's latest version — otherwise a newer orphaned snapshot (a commit that
// was still publishing when its deployment failed over) would resurrect the
// rolled-back writes.
func TestCommitAfterRollbackIgnoresNewerOrphan(t *testing.T) {
	c, m, ckptRef := rollbackSetup(t)

	// An "orphan": a newer committed version holding a write that the
	// rollback must undo.
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xEE}, cs), 5*cs); err != nil {
		t.Fatal(err)
	}
	orphan, err := m.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if orphan.Version <= ckptRef.Version {
		t.Fatalf("orphan version %d not newer than checkpoint %d", orphan.Version, ckptRef.Version)
	}

	if err := m.RollbackTo(ctx, ckptRef); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt(bytes.Repeat([]byte{0x44}, cs), 6*cs); err != nil {
		t.Fatal(err)
	}
	next, err := m.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The new snapshot holds the new write and the checkpointed one, but NOT
	// the orphan's chunk 5 — even though the orphan was the latest version.
	ref := blobseer.SnapshotRef{Blob: ckptRef.Blob, Version: next.Version}
	got, err := c.ReadVersion(ctx, ref, 5*cs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 0xEE {
		t.Fatal("post-rollback snapshot resurrected the orphaned write")
	}
	got, err = c.ReadVersion(ctx, ref, 6*cs, cs)
	if err != nil || got[0] != 0x44 {
		t.Fatalf("post-rollback snapshot lost its own write: %#x, %v", got[0], err)
	}
	got, err = c.ReadVersion(ctx, ref, 0, cs)
	if err != nil || got[0] != 0x11 {
		t.Fatalf("post-rollback snapshot lost checkpointed content: %#x, %v", got[0], err)
	}
}

func TestRollbackToRefusesForeignSnapshots(t *testing.T) {
	c, m, _ := rollbackSetup(t)
	other, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WriteAt(ctx, other, 0, make([]byte, cs))
	if err != nil {
		t.Fatal(err)
	}
	err = m.RollbackTo(ctx, blobseer.SnapshotRef{Blob: other, Version: info.Version})
	if !errors.Is(err, ErrBadRollback) {
		t.Fatalf("rollback to foreign blob: %v, want ErrBadRollback", err)
	}
}
