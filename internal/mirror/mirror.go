// Package mirror implements the paper's mirroring module: the layer between
// the hypervisor and the checkpoint repository.
//
// It exposes a BLOB snapshot as a raw block device (vdisk.Device). Reads of
// content not yet present locally are fetched on demand from the repository
// ("lazy transfer"); writes are stored locally as copy-on-write
// modifications at chunk granularity. Two control operations mirror the
// paper's ioctls:
//
//   - Clone: create the VM's checkpoint image as a clone of the base image
//     (first checkpoint only);
//   - CommitAsync: capture the locally accumulated modifications (a local
//     copy, the only part that must happen while the VM is suspended) and
//     publish them as a new incremental snapshot in the background, through
//     a bounded per-module pipeline. The returned PendingCommit is the
//     checkpoint handle: Wait/Done/Err observe completion, and cancelling
//     the commit's context runs the repository abort path so dedup
//     refcounts never leak.
//
// Commit is the synchronous convenience wrapper (CommitAsync + Wait).
//
// The module also records the order in which chunks are first accessed; the
// restart path publishes this trace so slower instances can prefetch chunks
// ahead of demand (the paper's adaptive prefetching).
package mirror

import (
	"context"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/localtier"
	"blobcr/internal/obs"
	"blobcr/internal/vdisk"
)

// ErrNoCheckpointImage is returned by Commit before Clone has been called.
var ErrNoCheckpointImage = errors.New("mirror: no checkpoint image (call Clone first)")

// ErrCommitsInFlight is returned by RollbackTo while captures are still
// travelling through the commit pipeline: rolling back under them would race
// the published chain.
var ErrCommitsInFlight = errors.New("mirror: commits in flight")

// ErrBadRollback is returned by RollbackTo for snapshots the module cannot
// roll back to in place (a different blob than its own chain).
var ErrBadRollback = errors.New("mirror: snapshot is not on this module's chain")

// ErrHalted is returned by CommitAsync after Halt: the module's pipeline has
// been cancelled (the node is being failed or preempted) and accepts no new
// captures.
var ErrHalted = errors.New("mirror: module halted")

// DefaultPipelineDepth bounds how many commits may be in flight per module:
// the capture step blocks once this many snapshots are queued or uploading,
// which is the backpressure that keeps a slow repository from accumulating
// unbounded dirty-set copies.
const DefaultPipelineDepth = 4

// Module is one VM's mirroring module.
type Module struct {
	client *blobseer.Client

	mu        sync.Mutex
	src       blobseer.SnapshotRef // backing snapshot for unfetched content
	ckptBlob  uint64               // checkpoint image; 0 until Clone
	hasCkpt   bool
	chunkSize uint64
	size      uint64 // virtual disk size in bytes

	// base is the published snapshot the next commit overlays: the chain this
	// module actually exposes, advanced on every successful commit and moved
	// by RollbackTo. Committing relative to it — rather than to the blob's
	// latest version — is what keeps a rollback from resurrecting writes held
	// in a newer orphaned version (e.g. a commit that was still publishing
	// when its deployment failed over).
	base blobseer.SnapshotRef

	local   map[uint64][]byte // chunk index -> locally available content
	dirty   map[uint64]bool   // modified since the last Commit
	written map[uint64]bool   // ever locally modified: dropped on RollbackTo
	trace   []uint64          // first-access order (for prefetch hints)

	remoteReads uint64 // chunks fetched from the repository
	localHits   uint64
	commits     uint64

	// Cumulative commit accounting across all Commits. With a dedup-enabled
	// client, committed chunks are fingerprinted and bodies the repository
	// already holds are never shipped; these counters expose the savings.
	commitStats blobseer.CommitStats

	// Commit pipeline. sem bounds in-flight commits; queue holds captures
	// FIFO for a lazily started worker (a slice, not a channel, so the
	// failure path can fold a failed capture's writes into the captures
	// queued behind it). captureMu serializes capture+enqueue so concurrent
	// CommitAsync calls keep version order.
	pipelineDepth int
	captureMu     sync.Mutex
	pipeOnce      sync.Once
	sem           chan struct{}
	queue         []*PendingCommit
	workerRunning bool
	inFlight      int // commits captured but not yet completed

	// Local write-back tier (nil without one). With a tier attached, a
	// capture first travels the stage queue — staged into the node-local
	// store and replicated to the partner, after which it is *locally safe*
	// and its pipeline slot frees — and only then joins the drain queue,
	// which publishes to the remote plane at whatever rate it sustains. The
	// suspend window and the checkpoint ack thereby decouple from remote
	// bandwidth, which is the multilevel-checkpointing point.
	stageCfg           *StageConfig
	seq                uint64 // capture sequence: orders the owner's staged chain
	stageQueue         []*PendingCommit
	stageWorkerRunning bool
	halted             bool
	live               map[*PendingCommit]struct{} // captured, not yet done (Halt cancels these)
}

// StageConfig attaches a node-local write-back tier to a module.
type StageConfig struct {
	// Stage is the node's local fast tier; Owner names this module's chain
	// in it (the VM id).
	Stage *localtier.Stage
	Owner string
	// Replicate pushes one staged capture to the partner proxy so a single
	// node loss cannot lose a locally-safe checkpoint. Nil disables partner
	// replication (single-node deployments).
	Replicate func(ctx context.Context, c *localtier.Capture, writes map[uint64][]byte) error
	// Release tells the partner (and the local stage's bookkeeping) that the
	// capture was published as ref, so the replica can be dropped. Nil is
	// allowed; best-effort.
	Release func(owner string, seq uint64, ref blobseer.SnapshotRef)
}

// AttachStage wires the local write-back tier into the module's commit
// pipeline. Call it before the first CommitAsync.
func (m *Module) AttachStage(cfg StageConfig) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stageCfg = &cfg
}

// Attach opens the given published snapshot as the device's backing content.
// For a fresh VM this is the base image; on restart it is the disk snapshot
// chosen for rollback.
func Attach(ctx context.Context, c *blobseer.Client, ref blobseer.SnapshotRef) (*Module, error) {
	info, chunkSize, err := c.GetVersion(ctx, ref)
	if err != nil {
		return nil, fmt.Errorf("mirror: attach %s: %w", ref, err)
	}
	return &Module{
		client:        c,
		src:           ref,
		chunkSize:     chunkSize,
		size:          info.Size,
		local:         make(map[uint64][]byte),
		dirty:         make(map[uint64]bool),
		written:       make(map[uint64]bool),
		pipelineDepth: DefaultPipelineDepth,
		live:          make(map[*PendingCommit]struct{}),
	}, nil
}

// AttachCheckpoint reopens an existing checkpoint image at a specific
// snapshot: further Commits will extend the same checkpoint image rather
// than cloning a new one. Used when an application resumes checkpointing
// after a restart.
func AttachCheckpoint(ctx context.Context, c *blobseer.Client, ref blobseer.SnapshotRef) (*Module, error) {
	m, err := Attach(ctx, c, ref)
	if err != nil {
		return nil, err
	}
	m.ckptBlob = ref.Blob
	m.hasCkpt = true
	m.base = ref
	return m, nil
}

// Size implements vdisk.Device.
func (m *Module) Size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(m.size)
}

// Flush implements vdisk.Device. Local modifications are already durable in
// memory; persistence happens at Commit, so Flush is a no-op, matching the
// paper's model where the guest's sync(2) flushes the page cache to the
// virtual disk (our writes are synchronous).
func (m *Module) Flush() error { return nil }

// ensureLocal makes chunk idx locally available, fetching from the
// repository if needed. Caller holds m.mu.
func (m *Module) ensureLocal(idx uint64) ([]byte, error) {
	if data, ok := m.local[idx]; ok {
		m.localHits++
		return data, nil
	}
	m.remoteReads++
	m.trace = append(m.trace, idx)
	// vdisk.Device has no context parameter, so demand fetches run under the
	// background context; cancellation applies to commits, not page-ins.
	data, err := m.client.ReadVersion(context.Background(), m.src, idx*m.chunkSize, m.chunkSize)
	if err != nil {
		return nil, fmt.Errorf("mirror: fetch chunk %d: %w", idx, err)
	}
	// Pad to full chunk size so in-place writes are simple; the tail chunk
	// of the device may be short in the repository.
	if uint64(len(data)) < m.chunkSize {
		full := make([]byte, m.chunkSize)
		copy(full, data)
		data = full
	}
	m.local[idx] = data
	return data, nil
}

// ReadAt implements vdisk.Device.
func (m *Module) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off > int64(m.size) {
		return 0, vdisk.ErrOutOfRange
	}
	total := len(p)
	if off+int64(total) > int64(m.size) {
		total = int(int64(m.size) - off)
	}
	read := 0
	for read < total {
		o := uint64(off) + uint64(read)
		idx := o / m.chunkSize
		inner := o % m.chunkSize
		n := m.chunkSize - inner
		if rem := uint64(total - read); n > rem {
			n = rem
		}
		data, err := m.ensureLocal(idx)
		if err != nil {
			return read, err
		}
		copy(p[read:read+int(n)], data[inner:inner+n])
		read += int(n)
	}
	if read < len(p) {
		return read, io.EOF
	}
	return read, nil
}

// WriteAt implements vdisk.Device. Writes are stored locally at chunk
// granularity; partially covered chunks are first filled from the backing
// snapshot (copy-on-write).
func (m *Module) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(m.size) {
		return 0, vdisk.ErrOutOfRange
	}
	written := 0
	for written < len(p) {
		o := uint64(off) + uint64(written)
		idx := o / m.chunkSize
		inner := o % m.chunkSize
		n := m.chunkSize - inner
		if rem := uint64(len(p) - written); n > rem {
			n = rem
		}
		var data []byte
		if n == m.chunkSize {
			// Whole-chunk overwrite: no fill needed.
			if existing, ok := m.local[idx]; ok {
				data = existing
			} else {
				data = make([]byte, m.chunkSize)
				m.local[idx] = data
				m.trace = append(m.trace, idx)
			}
		} else {
			var err error
			data, err = m.ensureLocal(idx)
			if err != nil {
				return written, err
			}
		}
		copy(data[inner:inner+n], p[written:written+int(n)])
		if !m.dirty[idx] {
			m.dirty[idx] = true
		}
		m.written[idx] = true
		written += int(n)
	}
	return written, nil
}

// Clone creates the checkpoint image as a clone of the backing snapshot.
// Idempotent: calling it when the checkpoint image exists does nothing.
// This is the CLONE ioctl.
func (m *Module) Clone(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hasCkpt {
		return nil
	}
	ckpt, err := m.client.Clone(ctx, m.src)
	if err != nil {
		return fmt.Errorf("mirror: clone: %w", err)
	}
	m.ckptBlob = ckpt
	m.hasCkpt = true
	// The clone's version 0 is the backing snapshot's content: the first
	// commit overlays it.
	m.base = blobseer.SnapshotRef{Blob: ckpt, Version: 0}
	return nil
}

// RollbackTo reverts the module in place to the given published snapshot of
// its own chain — the checkpoint image (any version this module committed)
// or the backing source itself. Every chunk locally modified since attach is
// dropped (its content may differ in the rollback target) and the dirty set
// is cleared, while chunks that were only ever read stay cached: their
// content is identical in every version this module produced, so the warm
// cache survives the rollback. Subsequent commits overlay the rollback
// target, never a newer orphaned version. Partial restart uses this to roll
// healthy members back without re-deploying them.
//
// RollbackTo fails with ErrCommitsInFlight while captures are still in the
// commit pipeline; callers drain (or time out and re-deploy) first.
func (m *Module) RollbackTo(ctx context.Context, ref blobseer.SnapshotRef) error {
	info, chunkSize, err := m.client.GetVersion(ctx, ref)
	if err != nil {
		return fmt.Errorf("mirror: rollback to %s: %w", ref, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inFlight > 0 {
		return fmt.Errorf("%w: %d pending", ErrCommitsInFlight, m.inFlight)
	}
	if !(m.hasCkpt && ref.Blob == m.ckptBlob) && ref != m.src {
		return fmt.Errorf("%w: %s", ErrBadRollback, ref)
	}
	if chunkSize != m.chunkSize {
		return fmt.Errorf("mirror: rollback to %s: chunk size %d != %d", ref, chunkSize, m.chunkSize)
	}
	for idx := range m.written {
		delete(m.local, idx)
	}
	m.written = make(map[uint64]bool)
	m.dirty = make(map[uint64]bool)
	m.src = ref
	m.base = ref
	m.size = info.Size
	if m.stageCfg != nil {
		// Staged captures overlay the pre-rollback chain; they are stale now.
		m.stageCfg.Stage.Drop(m.stageCfg.Owner)
	}
	return nil
}

// PendingCommit is an asynchronous checkpoint handle: one dirty-set capture
// travelling through the module's commit pipeline. It is safe to share
// across goroutines; any number may Wait on it.
type PendingCommit struct {
	ctx    context.Context // the commit's context; cancelling aborts the upload
	cancel context.CancelFunc

	writes  map[uint64][]byte
	indices []uint64
	size    uint64

	// Two-watermark state. seq orders this module's captures; captureBase is
	// the published chain head at capture time (the partner drain's fallback
	// base). localSafe closes once the capture is staged locally and
	// replicated to the partner — or, without a tier, together with done.
	// capture is the staged handle (nil when staging failed or no tier).
	seq         uint64
	captureBase blobseer.SnapshotRef
	localSafe   chan struct{}
	localErr    error // set before localSafe closes, immutable afterwards
	capture     *localtier.Capture

	done chan struct{}
	// Set before done closes, immutable afterwards.
	info blobseer.VersionInfo
	ref  blobseer.SnapshotRef
	err  error
}

// Seq returns the capture's sequence number in its module's staged chain.
func (p *PendingCommit) Seq() uint64 { return p.seq }

// LocallySafe reports whether the capture has reached local safety: staged
// in the node's fast tier and replicated to the partner. Without a tier this
// becomes true only with global durability.
func (p *PendingCommit) LocallySafe() bool {
	select {
	case <-p.localSafe:
		return p.localErr == nil
	default:
		return false
	}
}

// WaitLocallySafe blocks until the capture is locally safe or ctx expires.
// When staging failed (or the module has no tier), local safety degrades to
// global durability: the wait continues until the remote commit completes
// and returns its outcome.
func (p *PendingCommit) WaitLocallySafe(ctx context.Context) error {
	select {
	case <-p.localSafe:
	case <-ctx.Done():
		return ctx.Err()
	}
	if p.localErr == nil {
		return nil
	}
	select {
	case <-p.done:
		return p.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done returns a channel closed when the commit has completed (successfully
// or not).
func (p *PendingCommit) Done() <-chan struct{} { return p.done }

// Err returns the commit's outcome: nil while in flight and after success,
// the commit error after a failure. Check it after Done is closed.
func (p *PendingCommit) Err() error {
	select {
	case <-p.done:
		return p.err
	default:
		return nil
	}
}

// Ref returns the published snapshot and true once the commit has succeeded.
func (p *PendingCommit) Ref() (blobseer.SnapshotRef, bool) {
	select {
	case <-p.done:
		return p.ref, p.err == nil
	default:
		return blobseer.SnapshotRef{}, false
	}
}

// Info returns the published version descriptor and true once the commit
// has succeeded.
func (p *PendingCommit) Info() (blobseer.VersionInfo, bool) {
	select {
	case <-p.done:
		return p.info, p.err == nil
	default:
		return blobseer.VersionInfo{}, false
	}
}

// Wait blocks until the commit completes or ctx is cancelled, and returns
// the published snapshot. ctx here only bounds the wait; to abort the
// commit itself, cancel the context passed to CommitAsync.
func (p *PendingCommit) Wait(ctx context.Context) (blobseer.SnapshotRef, error) {
	select {
	case <-p.done:
		if p.err != nil {
			return blobseer.SnapshotRef{}, p.err
		}
		return p.ref, nil
	case <-ctx.Done():
		return blobseer.SnapshotRef{}, ctx.Err()
	}
}

// CommitAsync captures the dirty chunks — the local copy-on-write clone that
// is the only work done while the VM is suspended — clears the dirty set and
// returns a PendingCommit that publishes the capture as a new incremental
// snapshot of the checkpoint image in the background. This is the COMMIT
// ioctl split in two: capture now, publish later.
//
// The pipeline is bounded (DefaultPipelineDepth in-flight commits): when it
// is full, CommitAsync blocks until a slot frees or ctx is cancelled. The
// same ctx governs the background upload; cancelling it aborts the commit
// through the repository's abort path (ticket released, CAS references
// returned) and re-marks the captured chunks dirty so the next commit
// retries them.
func (m *Module) CommitAsync(ctx context.Context) (*PendingCommit, error) {
	return m.commitAsync(ctx, ctx)
}

// CommitAsyncDetached is CommitAsync with the upload detached from ctx's
// cancellation: ctx governs only the bounded admission (so a caller holding
// a VM suspended can still bail out when the pipeline is full), while the
// background upload runs under context.WithoutCancel(ctx) and outlives the
// request. This is what the checkpointing proxy uses: the CHECKPOINT
// exchange must not drag the commit down with it when the client hangs up.
func (m *Module) CommitAsyncDetached(ctx context.Context) (*PendingCommit, error) {
	return m.commitAsync(ctx, context.WithoutCancel(ctx))
}

// commitAsync implements both admission policies: admitCtx bounds the wait
// for a pipeline slot, uploadCtx governs the background publish.
func (m *Module) commitAsync(admitCtx, uploadCtx context.Context) (*PendingCommit, error) {
	m.pipeOnce.Do(func() {
		depth := m.pipelineDepth
		if depth < 1 {
			depth = DefaultPipelineDepth
		}
		m.sem = make(chan struct{}, depth)
	})
	// Bounded admission, outside m.mu so reads/writes proceed meanwhile.
	select {
	case m.sem <- struct{}{}:
	case <-admitCtx.Done():
		return nil, admitCtx.Err()
	}
	// Serialize capture+enqueue: pipeline order is version order.
	m.captureMu.Lock()
	defer m.captureMu.Unlock()
	m.mu.Lock()
	if !m.hasCkpt {
		m.mu.Unlock()
		<-m.sem
		return nil, ErrNoCheckpointImage
	}
	if m.halted {
		m.mu.Unlock()
		<-m.sem
		return nil, ErrHalted
	}
	// Attach the client's registry so every stage of this commit — the
	// capture here and the probe/upload/publish/durable stages inside the
	// client — lands in one scrape surface; a Trace carried by the caller's
	// context survives too (WithoutCancel preserves values).
	uploadCtx = obs.WithRegistry(uploadCtx, m.client.Obs)
	// Per-commit cancellation on top of the caller's context, so Halt can
	// abort every live commit (including detached ones) through the
	// repository's abort path.
	uploadCtx, cancel := context.WithCancel(uploadCtx)
	m.seq++
	pc := &PendingCommit{
		ctx:         uploadCtx,
		cancel:      cancel,
		writes:      make(map[uint64][]byte, len(m.dirty)),
		indices:     make([]uint64, 0, len(m.dirty)),
		size:        m.size,
		seq:         m.seq,
		captureBase: m.base,
		localSafe:   make(chan struct{}),
		done:        make(chan struct{}),
	}
	// Stage: capture — the dirty chunks are copied while the VM is
	// suspended; this is the only pipeline stage inside the suspend window.
	_, capture := obs.StartSpan(uploadCtx, obs.SpanCommitCapture)
	for idx := range m.dirty {
		chunk := m.local[idx]
		// The device's final chunk may extend past the virtual size; trim
		// so the repository never stores bytes beyond the device.
		end := (idx + 1) * m.chunkSize
		if end > m.size {
			chunk = chunk[:m.size-idx*m.chunkSize]
		}
		// Copy: the VM resumes writing to the local cache immediately, and
		// the capture must publish the suspended state.
		cp := make([]byte, len(chunk))
		copy(cp, chunk)
		pc.writes[idx] = cp
		pc.indices = append(pc.indices, idx)
	}
	m.dirty = make(map[uint64]bool)
	capture.End()
	m.inFlight++
	m.live[pc] = struct{}{}
	if m.stageCfg != nil {
		// Write-back path: the capture first lands in the local tier; its
		// pipeline slot frees once it is staged, so admission is paced by
		// local staging speed, not by the remote plane.
		m.stageQueue = append(m.stageQueue, pc)
		if !m.stageWorkerRunning {
			m.stageWorkerRunning = true
			go m.stageWorker()
		}
	} else {
		close(pc.localSafe) // degenerate: local safety == global durability
		m.queue = append(m.queue, pc)
		if !m.workerRunning {
			m.workerRunning = true
			go m.commitWorker()
		}
	}
	m.mu.Unlock()
	return pc, nil
}

// stageWorker drains the stage FIFO: each capture is staged into the local
// tier, replicated to the partner, acknowledged locally safe, and handed to
// the drain queue. The pipeline slot is released here — after staging, not
// after the remote publish — which is what decouples admission from remote
// bandwidth.
func (m *Module) stageWorker() {
	for {
		m.mu.Lock()
		if len(m.stageQueue) == 0 {
			m.stageWorkerRunning = false
			m.mu.Unlock()
			return
		}
		pc := m.stageQueue[0]
		m.stageQueue = m.stageQueue[1:]
		m.mu.Unlock()
		m.runStage(pc)
		<-m.sem
	}
}

// runStage stages one capture locally and replicates it to the partner.
func (m *Module) runStage(pc *PendingCommit) {
	m.mu.Lock()
	cfg := m.stageCfg
	m.mu.Unlock()
	if err := pc.ctx.Err(); err != nil {
		// Halted (or the caller aborted) before staging: finish the handle
		// without touching the tier or the drain queue.
		m.mu.Lock()
		m.inFlight--
		delete(m.live, pc)
		m.mu.Unlock()
		pc.localErr = err
		close(pc.localSafe)
		pc.err = fmt.Errorf("mirror: commit: %w", err)
		pc.writes = nil
		pc.cancel()
		close(pc.done)
		return
	}
	_, span := obs.StartSpan(pc.ctx, obs.SpanCommitStageLocal)
	cap, err := cfg.Stage.Put(cfg.Owner, pc.seq, pc.captureBase, pc.size, m.chunkSize, pc.writes, false)
	if err == nil && cfg.Replicate != nil {
		if rerr := cfg.Replicate(pc.ctx, cap, pc.writes); rerr != nil {
			err = fmt.Errorf("mirror: replicate capture %d to partner: %w", pc.seq, rerr)
		}
	}
	span.End()
	m.mu.Lock()
	if err != nil {
		// Staging (or replication) failed: the capture is not locally safe,
		// but it is still in memory — fall through to the direct remote
		// path, so local-tier trouble degrades to PR-2 behavior instead of
		// losing the checkpoint.
		pc.localErr = err
	} else {
		pc.capture = cap
		pc.writes = nil // write-back: the drain re-reads from the stage
	}
	close(pc.localSafe)
	m.queue = append(m.queue, pc)
	if !m.workerRunning {
		m.workerRunning = true
		go m.commitWorker()
	}
	m.mu.Unlock()
}

// commitWorker drains the pipeline FIFO and exits when it runs dry; the
// next CommitAsync (or stageWorker hand-off) restarts it.
func (m *Module) commitWorker() {
	for {
		m.mu.Lock()
		if len(m.queue) == 0 {
			m.workerRunning = false
			m.mu.Unlock()
			return
		}
		pc := m.queue[0]
		m.queue = m.queue[1:]
		stageMode := m.stageCfg != nil
		m.mu.Unlock()
		m.runCommit(pc)
		if !stageMode {
			<-m.sem // write-back slots were already freed by stageWorker
		}
	}
}

// drainBackoffMax caps the retry backoff of the write-back drainer.
const drainBackoffMax = time.Second

// runCommit publishes one captured dirty set. A staged capture (write-back
// tier) is locally safe, so a remote failure is retried with capped backoff
// until the commit's context is cancelled — the drain keeps pace with
// whatever the remote plane sustains instead of failing the checkpoint.
func (m *Module) runCommit(pc *PendingCommit) {
	// Overlay the module's own chain (the last snapshot it published, or the
	// rollback target), not the blob's latest version: after a rollback the
	// latest version may be an orphan holding exactly the writes that were
	// rolled back.
	m.mu.Lock()
	base := m.base
	cfg := m.stageCfg
	m.mu.Unlock()

	writes := pc.writes
	var info blobseer.VersionInfo
	var cs blobseer.CommitStats
	var err error
	if pc.capture != nil {
		writes, err = cfg.Stage.Writes(pc.capture)
	}
	if err == nil {
		backoff := 10 * time.Millisecond
		for {
			info, cs, err = m.client.WriteVersionStatsFrom(pc.ctx, base, writes, pc.size)
			if err == nil || pc.capture == nil || pc.ctx.Err() != nil {
				break
			}
			// The repository's abort path already ran inside the failed
			// write (refcounts balanced); the staged copy is intact, so
			// retry at drain pace.
			m.client.Registry().Counter("mirror_drain_retries_total").Inc()
			select {
			case <-pc.ctx.Done():
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > drainBackoffMax {
				backoff = drainBackoffMax
			}
		}
	}

	m.mu.Lock()
	m.inFlight--
	delete(m.live, pc)
	if err != nil {
		if pc.capture == nil {
			// The capture is lost to the repository but not to the VM.
			// Captures already queued behind this one were taken with the
			// dirty set cleared, so without help their snapshots would
			// silently miss this commit's writes. Fold the failed writes
			// into the FIRST queued in-memory capture that does not
			// overwrite the same chunk: later queued captures inherit them
			// through the published chain, and folding into every one (or
			// additionally re-marking the chunks dirty) would publish — and
			// count in CommitStats — the same write more than once. Only
			// when nothing is queued to carry them do the chunks go back to
			// the dirty set for a future capture.
			absorbed := false
			for _, q := range m.queue {
				if q.capture != nil {
					continue // staged capture: its writes live in the tier
				}
				for idx, data := range pc.writes {
					if _, ok := q.writes[idx]; !ok {
						q.writes[idx] = data
						q.indices = append(q.indices, idx)
					}
				}
				absorbed = true
				break
			}
			if !absorbed {
				for _, idx := range pc.indices {
					if _, ok := m.local[idx]; ok {
						m.dirty[idx] = true
					}
				}
			}
		}
		// A staged capture needs no fold: its payload stays locally safe in
		// the tier (and on the partner), where a restart or the partner
		// drain picks it up.
		pc.err = fmt.Errorf("mirror: commit: %w", err)
		m.client.Registry().Counter("mirror_commit_failures_total").Inc()
	} else {
		m.commitStats.Add(cs)
		m.commits++
		m.client.Registry().Counter("mirror_commits_total").Inc()
		pc.info = info
		pc.ref = blobseer.SnapshotRef{Blob: m.ckptBlob, Version: info.Version}
		m.base = pc.ref
	}
	m.mu.Unlock()
	if err == nil && pc.capture != nil {
		// Globally durable: drop the staged copy, record the drain memo and
		// release the partner replica.
		cfg.Stage.MarkDrained(cfg.Owner, pc.seq, pc.ref)
		if cfg.Release != nil {
			cfg.Release(cfg.Owner, pc.seq, pc.ref)
		}
	}
	pc.writes = nil // release the capture
	pc.cancel()     // release the per-commit context
	close(pc.done)
}

// Halt cancels every live commit (queued, staging or publishing) and
// rejects new ones with ErrHalted. It models the node dying or being
// preempted: in-flight uploads abort through the repository's abort path so
// CAS refcounts never leak, while captures already staged in the local tier
// stay there — the partner replica (or a restart in place) drains them.
// Halt does not wait for the aborts to finish.
func (m *Module) Halt() {
	m.mu.Lock()
	m.halted = true
	cancels := make([]context.CancelFunc, 0, len(m.live))
	for pc := range m.live {
		cancels = append(cancels, pc.cancel)
	}
	m.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// Halted reports whether Halt has been called.
func (m *Module) Halted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.halted
}

// DrainNow blocks until every captured commit has fully drained to the
// remote plane (or ctx expires): the preemption path — a spot instance that
// received its notice flushes the local tier inside the grace window so no
// locally-safe-only state is lost with the node.
func (m *Module) DrainNow(ctx context.Context) error {
	for {
		m.mu.Lock()
		n := m.inFlight
		m.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Commit publishes the dirty chunks as a new incremental snapshot of the
// checkpoint image and returns the published version: the synchronous
// convenience wrapper around CommitAsync + Wait. The local cache is
// retained; the dirty set is cleared.
func (m *Module) Commit(ctx context.Context) (blobseer.VersionInfo, error) {
	pc, err := m.CommitAsync(ctx)
	if err != nil {
		return blobseer.VersionInfo{}, err
	}
	if _, err := pc.Wait(ctx); err != nil {
		return blobseer.VersionInfo{}, err
	}
	info, _ := pc.Info()
	return info, nil
}

// CommitStats returns the cumulative commit accounting: chunks committed,
// chunks deduplicated away by the content-addressed repository, and logical
// vs actually-transferred bytes.
func (m *Module) CommitStats() blobseer.CommitStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitStats
}

// CheckpointImage returns the checkpoint blob id, if Clone has happened.
func (m *Module) CheckpointImage() (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ckptBlob, m.hasCkpt
}

// Source returns the snapshot backing unfetched content.
func (m *Module) Source() blobseer.SnapshotRef {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.src
}

// DirtyChunks returns the number of chunks modified since the last commit.
func (m *Module) DirtyChunks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}

// DirtyBytes returns the bytes that the next Commit will upload.
func (m *Module) DirtyBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(len(m.dirty)) * m.chunkSize
}

// PendingCommits returns how many commits are captured but not yet
// completed (queued or uploading).
func (m *Module) PendingCommits() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inFlight
}

// Stats returns (remote chunk fetches, local hits, commits).
func (m *Module) Stats() (remoteReads, localHits, commits uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.remoteReads, m.localHits, m.commits
}

// AccessTrace returns chunk indices in first-access order. A restarting
// deployment publishes the trace of the fastest instance so that slower
// instances can prefetch (the paper's adaptive prefetching).
func (m *Module) AccessTrace() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]uint64(nil), m.trace...)
}

// Prefetch fetches the given chunks into the local cache ahead of demand.
// Already-local chunks are skipped. Missing chunks are grouped into
// contiguous runs, each fetched with one ReadVersion call — which the
// repository client stripes across providers in batched frames — instead of
// one round trip per chunk. The module lock is not held across the network
// reads, so guest I/O proceeds while a (possibly large) trace is warming;
// chunks the guest writes or pages in meanwhile are left untouched, and a
// rollback mid-prefetch discards the stale data.
func (m *Module) Prefetch(ctx context.Context, indices []uint64) error {
	m.mu.Lock()
	src := m.src
	// Collect the chunks that actually need fetching, deduplicated, sorted
	// so contiguous index runs group into single striped reads.
	need := make([]uint64, 0, len(indices))
	seen := make(map[uint64]bool, len(indices))
	for _, idx := range indices {
		if idx*m.chunkSize >= m.size || seen[idx] {
			continue
		}
		if _, ok := m.local[idx]; ok {
			continue
		}
		seen[idx] = true
		need = append(need, idx)
	}
	m.mu.Unlock()
	slices.Sort(need)
	// Cap each run so one striped read never materializes more than
	// prefetchRunBytes at once (a sequential boot trace over a large disk
	// would otherwise collapse into a single whole-disk read).
	maxRun := prefetchRunBytes / m.chunkSize
	if maxRun < 1 {
		maxRun = 1
	}
	for start := 0; start < len(need); {
		end := start + 1
		for end < len(need) && need[end] == need[end-1]+1 && uint64(end-start) < maxRun {
			end++
		}
		if err := m.fetchRun(ctx, src, need[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// prefetchRunBytes bounds how many bytes one Prefetch run fetches (and
// buffers) per repository read.
const prefetchRunBytes = 4 << 20

// fetchRun pages a contiguous run of chunks into the local cache with one
// striped repository read against the snapshot captured at Prefetch entry.
// The fetch runs without m.mu; installation re-checks under the lock that
// the module still exposes that snapshot (rollback discards the run) and
// that the chunk is still absent (a concurrent guest write wins).
func (m *Module) fetchRun(ctx context.Context, src blobseer.SnapshotRef, run []uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	first := run[0]
	data, err := m.client.ReadVersion(ctx, src, first*m.chunkSize, uint64(len(run))*m.chunkSize)
	if err != nil {
		return fmt.Errorf("mirror: prefetch chunks %d..%d: %w", first, run[len(run)-1], err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.src != src {
		return nil // rolled back mid-prefetch: this data is stale, drop it
	}
	for _, idx := range run {
		if _, ok := m.local[idx]; ok {
			continue // written or paged in while we fetched
		}
		m.remoteReads++
		m.trace = append(m.trace, idx)
		chunk := make([]byte, m.chunkSize)
		lo := (idx - first) * m.chunkSize
		if lo < uint64(len(data)) {
			copy(chunk, data[lo:min(uint64(len(data)), lo+m.chunkSize)])
		}
		m.local[idx] = chunk
	}
	return nil
}

// ChunkSize returns the device's chunk granularity.
func (m *Module) ChunkSize() uint64 { return m.chunkSize }

var _ vdisk.Device = (*Module)(nil)
