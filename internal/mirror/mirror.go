// Package mirror implements the paper's mirroring module: the layer between
// the hypervisor and the checkpoint repository.
//
// It exposes a BLOB snapshot as a raw block device (vdisk.Device). Reads of
// content not yet present locally are fetched on demand from the repository
// ("lazy transfer"); writes are stored locally as copy-on-write
// modifications at chunk granularity. Two control operations mirror the
// paper's ioctls:
//
//   - Clone: create the VM's checkpoint image as a clone of the base image
//     (first checkpoint only);
//   - Commit: publish the locally accumulated modifications as a new
//     incremental snapshot of the checkpoint image.
//
// The module also records the order in which chunks are first accessed; the
// restart path publishes this trace so slower instances can prefetch chunks
// ahead of demand (the paper's adaptive prefetching).
package mirror

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"blobcr/internal/blobseer"
	"blobcr/internal/vdisk"
)

// ErrNoCheckpointImage is returned by Commit before Clone has been called.
var ErrNoCheckpointImage = errors.New("mirror: no checkpoint image (call Clone first)")

// Module is one VM's mirroring module.
type Module struct {
	client *blobseer.Client

	mu        sync.Mutex
	srcBlob   uint64 // blob backing unfetched content (base image or snapshot)
	srcVer    uint64
	ckptBlob  uint64 // checkpoint image; 0 until Clone
	hasCkpt   bool
	chunkSize uint64
	size      uint64 // virtual disk size in bytes

	local map[uint64][]byte // chunk index -> locally available content
	dirty map[uint64]bool   // modified since the last Commit
	trace []uint64          // first-access order (for prefetch hints)

	remoteReads uint64 // chunks fetched from the repository
	localHits   uint64
	commits     uint64
	dirtyBytes  uint64 // bytes written since last commit (<= len(dirty)*chunkSize)

	// Cumulative commit accounting across all Commits. With a dedup-enabled
	// client, committed chunks are fingerprinted and bodies the repository
	// already holds are never shipped; these counters expose the savings.
	commitStats blobseer.CommitStats
}

// Attach opens the given published snapshot (blob, version) as the device's
// backing content. For a fresh VM this is the base image; on restart it is
// the disk snapshot chosen for rollback.
func Attach(c *blobseer.Client, blob, version uint64) (*Module, error) {
	info, chunkSize, err := c.GetVersion(blob, version)
	if err != nil {
		return nil, fmt.Errorf("mirror: attach blob %d v%d: %w", blob, version, err)
	}
	return &Module{
		client:    c,
		srcBlob:   blob,
		srcVer:    version,
		chunkSize: chunkSize,
		size:      info.Size,
		local:     make(map[uint64][]byte),
		dirty:     make(map[uint64]bool),
	}, nil
}

// AttachCheckpoint reopens an existing checkpoint image at a specific
// snapshot: further Commits will extend the same checkpoint image rather
// than cloning a new one. Used when an application resumes checkpointing
// after a restart.
func AttachCheckpoint(c *blobseer.Client, ckptBlob, version uint64) (*Module, error) {
	m, err := Attach(c, ckptBlob, version)
	if err != nil {
		return nil, err
	}
	m.ckptBlob = ckptBlob
	m.hasCkpt = true
	return m, nil
}

// Size implements vdisk.Device.
func (m *Module) Size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(m.size)
}

// Flush implements vdisk.Device. Local modifications are already durable in
// memory; persistence happens at Commit, so Flush is a no-op, matching the
// paper's model where the guest's sync(2) flushes the page cache to the
// virtual disk (our writes are synchronous).
func (m *Module) Flush() error { return nil }

// ensureLocal makes chunk idx locally available, fetching from the
// repository if needed. Caller holds m.mu.
func (m *Module) ensureLocal(idx uint64) ([]byte, error) {
	if data, ok := m.local[idx]; ok {
		m.localHits++
		return data, nil
	}
	m.remoteReads++
	m.trace = append(m.trace, idx)
	data, err := m.client.ReadVersion(m.srcBlob, m.srcVer, idx*m.chunkSize, m.chunkSize)
	if err != nil {
		return nil, fmt.Errorf("mirror: fetch chunk %d: %w", idx, err)
	}
	// Pad to full chunk size so in-place writes are simple; the tail chunk
	// of the device may be short in the repository.
	if uint64(len(data)) < m.chunkSize {
		full := make([]byte, m.chunkSize)
		copy(full, data)
		data = full
	}
	m.local[idx] = data
	return data, nil
}

// ReadAt implements vdisk.Device.
func (m *Module) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off > int64(m.size) {
		return 0, vdisk.ErrOutOfRange
	}
	total := len(p)
	if off+int64(total) > int64(m.size) {
		total = int(int64(m.size) - off)
	}
	read := 0
	for read < total {
		o := uint64(off) + uint64(read)
		idx := o / m.chunkSize
		inner := o % m.chunkSize
		n := m.chunkSize - inner
		if rem := uint64(total - read); n > rem {
			n = rem
		}
		data, err := m.ensureLocal(idx)
		if err != nil {
			return read, err
		}
		copy(p[read:read+int(n)], data[inner:inner+n])
		read += int(n)
	}
	if read < len(p) {
		return read, io.EOF
	}
	return read, nil
}

// WriteAt implements vdisk.Device. Writes are stored locally at chunk
// granularity; partially covered chunks are first filled from the backing
// snapshot (copy-on-write).
func (m *Module) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(m.size) {
		return 0, vdisk.ErrOutOfRange
	}
	written := 0
	for written < len(p) {
		o := uint64(off) + uint64(written)
		idx := o / m.chunkSize
		inner := o % m.chunkSize
		n := m.chunkSize - inner
		if rem := uint64(len(p) - written); n > rem {
			n = rem
		}
		var data []byte
		if n == m.chunkSize {
			// Whole-chunk overwrite: no fill needed.
			if existing, ok := m.local[idx]; ok {
				data = existing
			} else {
				data = make([]byte, m.chunkSize)
				m.local[idx] = data
				m.trace = append(m.trace, idx)
			}
		} else {
			var err error
			data, err = m.ensureLocal(idx)
			if err != nil {
				return written, err
			}
		}
		copy(data[inner:inner+n], p[written:written+int(n)])
		if !m.dirty[idx] {
			m.dirty[idx] = true
		}
		m.dirtyBytes += n
		written += int(n)
	}
	return written, nil
}

// Clone creates the checkpoint image as a clone of the backing snapshot.
// Idempotent: calling it when the checkpoint image exists does nothing.
// This is the CLONE ioctl.
func (m *Module) Clone() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hasCkpt {
		return nil
	}
	ckpt, err := m.client.Clone(m.srcBlob, m.srcVer)
	if err != nil {
		return fmt.Errorf("mirror: clone: %w", err)
	}
	m.ckptBlob = ckpt
	m.hasCkpt = true
	return nil
}

// Commit publishes the dirty chunks as a new incremental snapshot of the
// checkpoint image and returns the published version. This is the COMMIT
// ioctl. The local cache is retained; the dirty set is cleared.
func (m *Module) Commit() (blobseer.VersionInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hasCkpt {
		return blobseer.VersionInfo{}, ErrNoCheckpointImage
	}
	writes := make(map[uint64][]byte, len(m.dirty))
	for idx := range m.dirty {
		chunk := m.local[idx]
		// The device's final chunk may extend past the virtual size; trim
		// so the repository never stores bytes beyond the device.
		end := (idx + 1) * m.chunkSize
		if end > m.size {
			chunk = chunk[:m.size-idx*m.chunkSize]
		}
		writes[idx] = chunk
	}
	info, cs, err := m.client.WriteVersionStats(m.ckptBlob, writes, m.size)
	if err != nil {
		return blobseer.VersionInfo{}, fmt.Errorf("mirror: commit: %w", err)
	}
	m.commitStats.Add(cs)
	m.dirty = make(map[uint64]bool)
	m.dirtyBytes = 0
	m.commits++
	return info, nil
}

// CommitStats returns the cumulative commit accounting: chunks committed,
// chunks deduplicated away by the content-addressed repository, and logical
// vs actually-transferred bytes.
func (m *Module) CommitStats() blobseer.CommitStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitStats
}

// CheckpointImage returns the checkpoint blob id, if Clone has happened.
func (m *Module) CheckpointImage() (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ckptBlob, m.hasCkpt
}

// DirtyChunks returns the number of chunks modified since the last commit.
func (m *Module) DirtyChunks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}

// DirtyBytes returns the bytes that the next Commit will upload.
func (m *Module) DirtyBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(len(m.dirty)) * m.chunkSize
}

// Stats returns (remote chunk fetches, local hits, commits).
func (m *Module) Stats() (remoteReads, localHits, commits uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.remoteReads, m.localHits, m.commits
}

// AccessTrace returns chunk indices in first-access order. A restarting
// deployment publishes the trace of the fastest instance so that slower
// instances can prefetch (the paper's adaptive prefetching).
func (m *Module) AccessTrace() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]uint64(nil), m.trace...)
}

// Prefetch fetches the given chunks into the local cache ahead of demand.
// Already-local chunks are skipped.
func (m *Module) Prefetch(indices []uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, idx := range indices {
		if idx*m.chunkSize >= m.size {
			continue
		}
		if _, ok := m.local[idx]; ok {
			continue
		}
		if _, err := m.ensureLocal(idx); err != nil {
			return err
		}
	}
	return nil
}

// ChunkSize returns the device's chunk granularity.
func (m *Module) ChunkSize() uint64 { return m.chunkSize }

var _ vdisk.Device = (*Module)(nil)
