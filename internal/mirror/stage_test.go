package mirror

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/chunkstore"
	"blobcr/internal/localtier"
	"blobcr/internal/obs"
)

// stageSetup is asyncSetup plus an attached local write-back tier and a
// partner stage receiving the replicas (wired directly, no proxy in between).
func stageSetup(t *testing.T) (*gateNet, *blobseer.Deployment, *blobseer.Client, *Module, *localtier.Stage, *localtier.Stage) {
	t.Helper()
	g := newGateNet()
	d, err := blobseer.Deploy(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	base, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WriteAt(ctx, base, 0, make([]byte, 16*cs))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(ctx, c, blobseer.SnapshotRef{Blob: base, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	stage := localtier.New(chunkstore.NewMem(), obs.NewRegistry())
	partner := localtier.New(chunkstore.NewMem(), obs.NewRegistry())
	m.AttachStage(StageConfig{
		Stage: stage,
		Owner: "vm-0",
		Replicate: func(_ context.Context, cp *localtier.Capture, writes map[uint64][]byte) error {
			_, err := partner.Put(cp.Owner, cp.Seq, cp.Base, cp.Size, cp.ChunkSize, writes, true)
			return err
		},
		Release: func(owner string, seq uint64, ref blobseer.SnapshotRef) {
			partner.MarkDrained(owner, seq, ref)
		},
	})
	return g, d, c, m, stage, partner
}

// TestStagedCommitLocallySafeWhileRemoteWedged is the tentpole invariant at
// module scope: with a write-back tier, the checkpoint ack (local safety) and
// pipeline admission are paced by the local stage, not by the remote plane.
func TestStagedCommitLocallySafeWhileRemoteWedged(t *testing.T) {
	g, _, _, m, stage, partner := stageSetup(t)

	// Wedge the first chunk-body upload of the drain; staging is unaffected.
	g.arm(0)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xA1}, 2*cs), 0); err != nil {
		t.Fatal(err)
	}
	pc, err := m.CommitAsync(cctx)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := pc.WaitLocallySafe(wctx); err != nil {
		t.Fatalf("WaitLocallySafe with remote wedged: %v", err)
	}
	if !pc.LocallySafe() {
		t.Error("LocallySafe() = false after WaitLocallySafe")
	}
	<-g.blocked // the drain really is stuck on the remote plane
	select {
	case <-pc.Done():
		t.Fatal("commit reported done while its upload is wedged")
	default:
	}
	if b := stage.OwnerBacklog("vm-0"); b.Checkpoints != 1 || b.Chunks != 2 {
		t.Errorf("stage backlog = %+v, want the wedged capture (1 ckpt / 2 chunks)", b)
	}
	if _, p := partner.Backlog(); p.Checkpoints != 1 {
		t.Errorf("partner holds %d replicas, want 1", p.Checkpoints)
	}

	// Every pipeline slot admits and reaches local safety while the first
	// drain is still wedged: admission is decoupled from remote bandwidth.
	for i := 0; i < DefaultPipelineDepth; i++ {
		if _, err := m.WriteAt(bytes.Repeat([]byte{byte(0xB0 + i)}, cs), 0); err != nil {
			t.Fatal(err)
		}
		pci, err := m.CommitAsync(cctx)
		if err != nil {
			t.Fatalf("CommitAsync %d with remote wedged: %v", i, err)
		}
		if err := pci.WaitLocallySafe(wctx); err != nil {
			t.Fatalf("WaitLocallySafe %d with remote wedged: %v", i, err)
		}
	}
	// Captures for every commit are held in the tier, safe against this
	// node's loss; cancel aborts the wedged uploads (cleanup).
	if b := stage.OwnerBacklog("vm-0"); b.Checkpoints != 1+DefaultPipelineDepth {
		t.Errorf("stage backlog = %d checkpoints, want %d", b.Checkpoints, 1+DefaultPipelineDepth)
	}
}

// TestStageDrainConvergesAndReleasesPartner drives full rounds through the
// write-back pipeline and checks the drain end state: snapshots published in
// capture order, both tiers empty, partner replicas released, drain memo at
// the last published ref.
func TestStageDrainConvergesAndReleasesPartner(t *testing.T) {
	_, _, c, m, stage, partner := stageSetup(t)
	var refs []blobseer.SnapshotRef
	for round := 0; round < 3; round++ {
		if _, err := m.WriteAt(bytes.Repeat([]byte{byte(0xC0 + round)}, cs), int64(round)*cs); err != nil {
			t.Fatal(err)
		}
		pc, err := m.CommitAsync(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := pc.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	for i := 1; i < len(refs); i++ {
		if refs[i].Version != refs[i-1].Version+1 {
			t.Fatalf("versions out of order: %v", refs)
		}
	}
	// The final snapshot carries every round's write through the chain.
	for round := 0; round < 3; round++ {
		got, err := c.ReadVersion(ctx, refs[2], uint64(round)*cs, cs)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(0xC0 + round)}, cs)) {
			t.Fatalf("round %d write missing from final snapshot: %v", round, err)
		}
	}
	// Drained: both tiers empty, the partner released every replica, and the
	// memo points at the newest published snapshot.
	if own, _ := stage.Backlog(); own.Checkpoints != 0 {
		t.Errorf("stage backlog after drain = %+v, want empty", own)
	}
	if _, p := partner.Backlog(); p.Checkpoints != 0 {
		t.Errorf("partner backlog after release = %+v, want empty", p)
	}
	seq, ref, ok := stage.LastDrained("vm-0")
	if !ok || seq != 3 || ref != refs[2] {
		t.Errorf("LastDrained = %d %v %v, want 3 %v true", seq, ref, ok, refs[2])
	}
}

// TestStagingFailureFallsBackToRemotePath: when the tier itself fails (here:
// partner replication errors), the capture must not be lost — local safety
// degrades and the commit publishes through the direct remote path.
func TestStagingFailureFallsBackToRemotePath(t *testing.T) {
	_, _, c, m, stage, _ := stageSetup(t)
	m.AttachStage(StageConfig{
		Stage: stage,
		Owner: "vm-0",
		Replicate: func(context.Context, *localtier.Capture, map[uint64][]byte) error {
			return errors.New("partner down")
		},
	})
	content := bytes.Repeat([]byte{0xD7}, cs)
	if _, err := m.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	pc, err := m.CommitAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// WaitLocallySafe degrades to waiting for global durability.
	if err := pc.WaitLocallySafe(ctx); err != nil {
		t.Fatalf("WaitLocallySafe after staging failure: %v", err)
	}
	if pc.LocallySafe() {
		t.Error("LocallySafe() = true although replication failed")
	}
	ref, err := pc.Wait(ctx)
	if err != nil {
		t.Fatalf("fallback commit failed: %v", err)
	}
	got, err := c.ReadVersion(ctx, ref, 0, cs)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("fallback snapshot wrong: %v", err)
	}
}

// TestHaltKeepsStagedCapturesAndBalancesRefs: Halt (node death / preemption
// without grace) aborts in-flight uploads through the repository's abort path
// — CAS refcounts must balance exactly — while the staged captures survive in
// the tier for the partner (or a restart in place) to drain.
func TestHaltKeepsStagedCapturesAndBalancesRefs(t *testing.T) {
	g, d, c, m, stage, _ := stageSetup(t)
	before, err := c.CasStats(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := m.WriteAt(bytes.Repeat([]byte{0xE3}, 4*cs), 0); err != nil {
		t.Fatal(err)
	}
	g.arm(1) // let one body land so the abort has references to return
	pc, err := m.CommitAsyncDetached(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.WaitLocallySafe(ctx); err != nil {
		t.Fatal(err)
	}
	<-g.blocked
	m.Halt()
	<-pc.Done()
	if pc.Err() == nil {
		t.Fatal("halted commit reported success")
	}
	if _, err := m.CommitAsync(ctx); !errors.Is(err, ErrHalted) {
		t.Fatalf("CommitAsync after Halt = %v, want ErrHalted", err)
	}

	// The aborted upload returned every reference it took.
	after, err := c.CasStats(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if after.Refs != before.Refs || after.Chunks != before.Chunks {
		t.Errorf("CAS refs/chunks = %d/%d after Halt, want %d/%d (exact balance)",
			after.Refs, after.Chunks, before.Refs, before.Chunks)
	}
	// The locally-safe capture is still in the tier: the node's loss does not
	// lose the checkpoint.
	if b := stage.OwnerBacklog("vm-0"); b.Checkpoints != 1 || b.Chunks != 4 {
		t.Errorf("stage backlog after Halt = %+v, want the staged capture intact", b)
	}
}

// TestFailedCommitFoldsExactlyOnce is the CommitStats regression test: a
// failed in-memory capture folds into the FIRST queued capture only. Folding
// into every queued capture (or additionally re-marking the chunks dirty)
// would publish — and count — the same write more than once.
func TestFailedCommitFoldsExactlyOnce(t *testing.T) {
	g, _, c, m := asyncSetup(t)
	warm := m.CommitStats()

	// Commit A: chunk 0, wedged on its first upload.
	contentA := bytes.Repeat([]byte{0xA7}, cs)
	if _, err := m.WriteAt(contentA, 0); err != nil {
		t.Fatal(err)
	}
	g.arm(0)
	actx, cancelA := context.WithCancel(context.Background())
	pcA, err := m.CommitAsync(actx)
	if err != nil {
		t.Fatal(err)
	}
	<-g.blocked

	// Commits B and C queue behind A, each with its own fresh chunk.
	contentB := bytes.Repeat([]byte{0xB8}, cs)
	if _, err := m.WriteAt(contentB, cs); err != nil {
		t.Fatal(err)
	}
	pcB, err := m.CommitAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	contentC := bytes.Repeat([]byte{0xC9}, cs)
	if _, err := m.WriteAt(contentC, 2*cs); err != nil {
		t.Fatal(err)
	}
	pcC, err := m.CommitAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cancelA()
	<-pcA.Done()
	if pcA.Err() == nil {
		t.Fatal("wedged commit A did not fail")
	}
	if _, err := pcB.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	refC, err := pcC.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// C's snapshot holds all three writes (A through the fold into B, B and C
	// through the chain).
	for i, want := range [][]byte{contentA, contentB, contentC} {
		got, err := c.ReadVersion(ctx, refC, uint64(i)*cs, cs)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("chunk %d of final snapshot wrong: %v", i, err)
		}
	}
	// A's chunk was absorbed by B, so nothing went back to the dirty set: a
	// further commit would re-publish (and re-count) it otherwise.
	if n := m.DirtyChunks(); n != 0 {
		t.Errorf("DirtyChunks = %d after fold, want 0", n)
	}
	// Exactly three chunk-writes are accounted across B and C: A's folded
	// chunk once (in B), B's own, C's own. The failed commit contributes
	// nothing itself.
	stats := m.CommitStats()
	gotChunks := stats.Chunks - warm.Chunks
	gotLogical := stats.LogicalBytes - warm.LogicalBytes
	if gotChunks != 3 {
		t.Errorf("CommitStats.Chunks delta = %d, want 3 (A folded once + B + C)", gotChunks)
	}
	if gotLogical != 3*cs {
		t.Errorf("CommitStats.LogicalBytes delta = %d, want %d", gotLogical, 3*cs)
	}
}
