package mirror

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/transport"
)

// ctx is the default context for test operations.
var ctx = context.Background()

const cs = 256 // chunk size for tests

// setup deploys BlobSeer, uploads a base image, and attaches a module.
func setup(t *testing.T, imageSize int) (*blobseer.Deployment, *blobseer.Client, *Module, []byte) {
	t.Helper()
	d, err := blobseer.Deploy(transport.NewInProc(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	base, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, imageSize)
	rng := rand.New(rand.NewSource(5))
	rng.Read(content)
	info, err := c.WriteAt(ctx, base, 0, content)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(ctx, c, blobseer.SnapshotRef{Blob: base, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	return d, c, m, content
}

func TestLazyReadMatchesBase(t *testing.T) {
	_, _, m, content := setup(t, 16*cs)
	got := make([]byte, len(content))
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("lazy read diverged from base image")
	}
}

func TestLazyFetchIsOnDemand(t *testing.T) {
	_, _, m, _ := setup(t, 16*cs)
	buf := make([]byte, cs)
	if _, err := m.ReadAt(buf, 3*cs); err != nil {
		t.Fatal(err)
	}
	remote, _, _ := m.Stats()
	if remote != 1 {
		t.Errorf("reading one chunk fetched %d chunks", remote)
	}
	// Re-reading hits the cache.
	if _, err := m.ReadAt(buf, 3*cs); err != nil {
		t.Fatal(err)
	}
	remote2, hits, _ := m.Stats()
	if remote2 != 1 || hits == 0 {
		t.Errorf("cache not effective: remote=%d hits=%d", remote2, hits)
	}
}

func TestWriteReadBack(t *testing.T) {
	_, _, m, content := setup(t, 16*cs)
	patch := bytes.Repeat([]byte{0xF0}, cs+100)
	off := int64(2*cs - 50) // unaligned, crosses boundaries
	if _, err := m.WriteAt(patch, off); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), content...)
	copy(want[off:], patch)
	got := make([]byte, len(content))
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("write not visible through read")
	}
}

func TestWholeChunkWriteSkipsFetch(t *testing.T) {
	_, _, m, _ := setup(t, 16*cs)
	if _, err := m.WriteAt(bytes.Repeat([]byte{1}, cs), 4*cs); err != nil {
		t.Fatal(err)
	}
	remote, _, _ := m.Stats()
	if remote != 0 {
		t.Errorf("whole-chunk write fetched %d chunks from repository", remote)
	}
	// Partial write does fetch (copy-on-write fill).
	if _, err := m.WriteAt([]byte{2}, 5*cs+10); err != nil {
		t.Fatal(err)
	}
	remote, _, _ = m.Stats()
	if remote != 1 {
		t.Errorf("partial write fetched %d chunks, want 1", remote)
	}
}

func TestCommitRequiresClone(t *testing.T) {
	_, _, m, _ := setup(t, 8*cs)
	if _, err := m.Commit(ctx); err != ErrNoCheckpointImage {
		t.Errorf("Commit before Clone = %v, want ErrNoCheckpointImage", err)
	}
}

func TestCloneCommitRoundTrip(t *testing.T) {
	_, c, m, content := setup(t, 16*cs)
	patch := bytes.Repeat([]byte{0xAB}, 2*cs)
	if _, err := m.WriteAt(patch, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := m.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, ok := m.CheckpointImage()
	if !ok {
		t.Fatal("no checkpoint image after Clone")
	}
	// The snapshot seen from the repository equals base + patch.
	want := append([]byte(nil), content...)
	copy(want, patch)
	got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: ckpt, Version: info.Version}, 0, uint64(len(content)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("committed snapshot content wrong")
	}
}

func TestCloneIsIdempotent(t *testing.T) {
	_, _, m, _ := setup(t, 8*cs)
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	first, _ := m.CheckpointImage()
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	second, _ := m.CheckpointImage()
	if first != second {
		t.Errorf("second Clone created a new image: %d != %d", first, second)
	}
}

func TestSuccessiveCommitsAreIncremental(t *testing.T) {
	d, c, m, _ := setup(t, 64*cs)
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	_, baseChunks, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	var versions []uint64
	for ck := 0; ck < 4; ck++ {
		// Each checkpoint dirties exactly 3 chunks.
		for j := 0; j < 3; j++ {
			idx := int64(ck*3 + j)
			if _, err := m.WriteAt(bytes.Repeat([]byte{byte(ck + 1)}, cs), idx*cs); err != nil {
				t.Fatal(err)
			}
		}
		info, err := m.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, info.Version)
		_, chunks, err := c.Usage(ctx, d.DataAddrs)
		if err != nil {
			t.Fatal(err)
		}
		want := baseChunks + uint64(3*(ck+1))
		if chunks != want {
			t.Errorf("after checkpoint %d: %d chunks stored, want %d (incremental broken)", ck, chunks, want)
		}
	}
	// Every snapshot remains independently readable (standalone images):
	// snapshot i contains checkpoint i's writes at chunk 3i, and must NOT
	// contain later checkpoints' writes.
	ckpt, _ := m.CheckpointImage()
	for i, v := range versions {
		got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: ckpt, Version: v}, uint64(3*i)*cs, cs)
		if err != nil {
			t.Fatalf("snapshot %d unreadable: %v", i, err)
		}
		if got[0] != byte(i+1) {
			t.Errorf("snapshot %d chunk %d = %d, want %d", i, 3*i, got[0], i+1)
		}
		if i+1 < len(versions) {
			later, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: ckpt, Version: v}, uint64(3*(i+1))*cs, cs)
			if err != nil {
				t.Fatal(err)
			}
			if later[0] == byte(i+2) {
				t.Errorf("snapshot %d leaked a later checkpoint's write", i)
			}
		}
	}
}

func TestEmptyCommit(t *testing.T) {
	_, _, m, _ := setup(t, 8*cs)
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}
	info1, err := m.Commit(ctx)
	if err != nil {
		t.Fatalf("empty commit: %v", err)
	}
	info2, err := m.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_ = info1
	_ = info2 // both succeed; no data moved
}

func TestRestartFromSnapshot(t *testing.T) {
	_, c, m, content := setup(t, 16*cs)
	// Simulate a running VM: write, checkpoint.
	state := bytes.Repeat([]byte{0x77}, 4*cs)
	if _, err := m.WriteAt(state, 0); err != nil {
		t.Fatal(err)
	}
	m.Clone(ctx)
	info, err := m.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, _ := m.CheckpointImage()

	// Post-checkpoint damage that must be rolled back.
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xEE}, cs), 0); err != nil {
		t.Fatal(err)
	}

	// "Failure": redeploy a fresh module from the snapshot on another node.
	m2, err := AttachCheckpoint(ctx, c, blobseer.SnapshotRef{Blob: ckpt, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16*cs)
	if _, err := m2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), content...)
	copy(want, state)
	if !bytes.Equal(got, want) {
		t.Error("restart did not roll back to the snapshot state")
	}

	// The restarted instance can keep checkpointing into the same image.
	if _, err := m2.WriteAt(bytes.Repeat([]byte{0x99}, cs), 8*cs); err != nil {
		t.Fatal(err)
	}
	info2, err := m2.Commit(ctx)
	if err != nil {
		t.Fatalf("commit after restart: %v", err)
	}
	if info2.Version <= info.Version {
		t.Errorf("post-restart snapshot version %d not newer than %d", info2.Version, info.Version)
	}
}

func TestAccessTraceAndPrefetch(t *testing.T) {
	_, c, m, content := setup(t, 16*cs)
	// Access chunks in a specific order.
	buf := make([]byte, cs)
	order := []int64{7, 2, 11}
	for _, idx := range order {
		if _, err := m.ReadAt(buf, idx*cs); err != nil {
			t.Fatal(err)
		}
	}
	trace := m.AccessTrace()
	if len(trace) != 3 || trace[0] != 7 || trace[1] != 2 || trace[2] != 11 {
		t.Errorf("trace = %v, want [7 2 11]", trace)
	}

	// A second instance prefetches using the first's trace.
	info, _, err := c.Latest(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Attach(ctx, c, blobseer.SnapshotRef{Blob: 1, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Prefetch(ctx, trace); err != nil {
		t.Fatal(err)
	}
	remoteBefore, _, _ := m2.Stats()
	// Demand reads of prefetched chunks are all local now.
	for _, idx := range order {
		if _, err := m2.ReadAt(buf, idx*cs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, content[idx*cs:(idx+1)*cs]) {
			t.Errorf("prefetched chunk %d content wrong", idx)
		}
	}
	remoteAfter, _, _ := m2.Stats()
	if remoteAfter != remoteBefore {
		t.Errorf("demand reads after prefetch fetched %d more chunks", remoteAfter-remoteBefore)
	}
}

func TestDirtyAccounting(t *testing.T) {
	_, _, m, _ := setup(t, 16*cs)
	if m.DirtyChunks() != 0 {
		t.Error("fresh module has dirty chunks")
	}
	m.WriteAt(bytes.Repeat([]byte{1}, 2*cs), 0)
	m.WriteAt([]byte{2}, 0) // same chunk again
	if m.DirtyChunks() != 2 {
		t.Errorf("DirtyChunks = %d, want 2", m.DirtyChunks())
	}
	if m.DirtyBytes() != 2*cs {
		t.Errorf("DirtyBytes = %d, want %d", m.DirtyBytes(), 2*cs)
	}
	m.Clone(ctx)
	if _, err := m.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if m.DirtyChunks() != 0 || m.DirtyBytes() != 0 {
		t.Error("dirty state not cleared by Commit")
	}
}

func TestTailChunkTrimOnCommit(t *testing.T) {
	// Image size not a multiple of the chunk size: the final partial chunk
	// must round-trip through commit.
	d, err := blobseer.Deploy(transport.NewInProc(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	base, _ := c.CreateBlob(ctx, cs)
	content := bytes.Repeat([]byte{0x3C}, 5*cs+77)
	info, err := c.WriteAt(ctx, base, 0, content)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(ctx, c, blobseer.SnapshotRef{Blob: base, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	// Touch the tail chunk.
	if _, err := m.WriteAt([]byte{0xEE}, int64(len(content)-1)); err != nil {
		t.Fatal(err)
	}
	m.Clone(ctx)
	ci, err := m.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, _ := m.CheckpointImage()
	got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: ckpt, Version: ci.Version}, 0, uint64(len(content)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(content) {
		t.Fatalf("snapshot size %d, want %d", len(got), len(content))
	}
	if got[len(got)-1] != 0xEE {
		t.Error("tail write lost")
	}
}

func TestRandomizedShadowModel(t *testing.T) {
	_, c, m, content := setup(t, 32*cs)
	shadow := append([]byte(nil), content...)
	rng := rand.New(rand.NewSource(44))
	m.Clone(ctx)
	ckpt, _ := m.CheckpointImage()
	type snap struct {
		version uint64
		state   []byte
	}
	var snaps []snap
	for iter := 0; iter < 60; iter++ {
		if rng.Intn(8) == 0 {
			info, err := m.Commit(ctx)
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, snap{info.Version, append([]byte(nil), shadow...)})
			continue
		}
		off := rng.Intn(len(shadow) - 1)
		n := rng.Intn(min(len(shadow)-off, 3*cs)) + 1
		patch := make([]byte, n)
		rng.Read(patch)
		if _, err := m.WriteAt(patch, int64(off)); err != nil {
			t.Fatal(err)
		}
		copy(shadow[off:], patch)
	}
	// Device view matches shadow.
	got := make([]byte, len(shadow))
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("device content diverged")
	}
	// Every committed snapshot matches its recorded state.
	for i, s := range snaps {
		got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: ckpt, Version: s.version}, 0, uint64(len(s.state)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, s.state) {
			t.Errorf("snapshot %d diverged", i)
		}
	}
}

// TestCommitDedupAccounting drives the mirroring module against a
// dedup-enabled repository: re-dirtying chunks with identical content across
// successive commits ships the bodies only once, and CommitStats exposes
// the savings.
func TestCommitDedupAccounting(t *testing.T) {
	d, err := blobseer.Deploy(transport.NewInProc(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	base, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WriteAt(ctx, base, 0, make([]byte, 8*cs))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(ctx, c, blobseer.SnapshotRef{Blob: base, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(ctx); err != nil {
		t.Fatal(err)
	}

	// Two checkpoints of the same application state, rewritten in place.
	state := bytes.Repeat([]byte{0x5A}, 4*cs)
	for round := 0; round < 2; round++ {
		if _, err := m.WriteAt(state, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := m.CommitStats()
	if st.Chunks != 8 {
		t.Fatalf("committed %d chunks, want 8", st.Chunks)
	}
	// Round 1 ships one distinct body (4 identical chunks: 1 miss + 3 hits);
	// round 2 ships nothing.
	if st.DedupChunks != 7 {
		t.Errorf("dedup chunks = %d, want 7", st.DedupChunks)
	}
	if st.TransferBytes != cs {
		t.Errorf("transferred %d bytes, want %d (one body)", st.TransferBytes, cs)
	}
	if st.LogicalBytes != 8*cs {
		t.Errorf("logical %d bytes, want %d", st.LogicalBytes, 8*cs)
	}

	// The snapshots remain byte-correct.
	ckpt, _ := m.CheckpointImage()
	latest, _, err := c.Latest(ctx, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: ckpt, Version: latest.Version}, 0, uint64(len(state)))
	if err != nil || !bytes.Equal(got, state) {
		t.Fatalf("dedup snapshot diverged: %v", err)
	}
}
