package repair

import (
	"bytes"
	"sync"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/obs"
	"blobcr/internal/seglog"
	"blobcr/internal/transport"
)

// seglogDeploy starts a dedup deployment whose providers sit on segment
// logs (auto-compaction on, small segments so compaction actually runs).
func seglogDeploy(t *testing.T, nData int) (*blobseer.Deployment, *blobseer.Client) {
	t.Helper()
	net := transport.NewInProc()
	d, err := blobseer.DeployWith(net, 2, nData,
		blobseer.SeglogStores(t.TempDir(), seglog.Options{SegmentBytes: 32 * 1024, Registry: obs.NewRegistry()}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	c.Replication = 2
	return d, c
}

// TestScrubCompactsSeglogStores: the scrubber's cadence carries engine
// compaction — after Retire+GC leave dead bytes in the logs, a Scrub must
// reclaim segments and report a healthy plane.
func TestScrubCompactsSeglogStores(t *testing.T) {
	d, c := seglogDeploy(t, 3)
	blob, want := commitVersions(t, c, 1024, 8, 5)
	if err := c.Retire(ctx, blob, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(ctx, d.DataAddrs); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r := New(Config{Client: c, Obs: reg})
	rep, err := r.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("scrub not clean after GC: %s", rep)
	}
	// The surviving version is intact after compaction rewrote the logs.
	got, _, err := c.ReadVersionStats(ctx, blobseer.SnapshotRef{Blob: blob, Version: 4}, 0, uint64(len(want[4])))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[4]) {
		t.Fatal("surviving version corrupted by scrub-time compaction")
	}
}

// TestCompactionRacingRetireAndScrub runs Retire/GC (engine deletes),
// scrubs (engine compaction + full replica verification) and direct
// wire-level compactions concurrently against seglog-backed providers. Under
// -race this is the stack-level proof that compaction neither resurrects
// nor loses chunks while the delete and read planes are live.
func TestCompactionRacingRetireAndScrub(t *testing.T) {
	d, c := seglogDeploy(t, 3)
	blob, want := commitVersions(t, c, 1024, 8, 6)
	r := New(Config{Client: c, Obs: obs.NewRegistry()})

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // the delete plane: retire old versions, sweep
		defer wg.Done()
		for keep := uint64(2); keep <= 5; keep++ {
			if err := c.Retire(ctx, blob, keep); err != nil {
				t.Errorf("Retire(%d): %v", keep, err)
				return
			}
			if _, err := c.GC(ctx, d.DataAddrs); err != nil {
				t.Errorf("GC: %v", err)
				return
			}
		}
	}()
	go func() { // the scrub plane: surveys + compaction passes
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := r.Scrub(ctx); err != nil {
				t.Errorf("Scrub: %v", err)
				return
			}
		}
	}()
	go func() { // direct compaction pressure on every provider
		defer wg.Done()
		for i := 0; i < 5; i++ {
			for _, addr := range d.DataAddrs {
				if _, _, err := c.CompactChunkStore(ctx, addr); err != nil {
					t.Errorf("CompactChunkStore(%s): %v", addr, err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settled state: only version 5 lives; it must be byte-perfect and the
	// plane clean.
	rep, err := r.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("plane not clean after racing compaction: %s", rep)
	}
	got, _, err := c.ReadVersionStats(ctx, blobseer.SnapshotRef{Blob: blob, Version: 5}, 0, uint64(len(want[5])))
	if err != nil {
		t.Fatalf("surviving version unreadable: %v", err)
	}
	if !bytes.Equal(got, want[5]) {
		t.Fatal("surviving version corrupted")
	}
}
