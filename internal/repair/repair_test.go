package repair

import (
	"bytes"
	"context"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/cas"
	"blobcr/internal/transport"
)

var ctx = context.Background()

// deploy starts a dedup deployment with nData providers and replication 2.
func deploy(t *testing.T, nData int) (*transport.InProc, *blobseer.Deployment, *blobseer.Client) {
	t.Helper()
	net := transport.NewInProc()
	d, err := blobseer.Deploy(net, 2, nData)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	c.Replication = 2
	return net, d, c
}

// commitVersions publishes n versions of a fresh blob, each overwriting a
// sliding window of chunks, and returns the blob id and the expected content
// of every version.
func commitVersions(t *testing.T, c *blobseer.Client, chunk uint64, nChunks, n int) (uint64, [][]byte) {
	t.Helper()
	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, uint64(nChunks)*chunk)
	var want [][]byte
	for v := 0; v < n; v++ {
		writes := make(map[uint64][]byte)
		for i := 0; i < nChunks; i++ {
			if v > 0 && i%2 == (v%2) {
				continue // half the chunks carry over from the previous version
			}
			body := bytes.Repeat([]byte{byte('a' + v), byte(i)}, int(chunk)/2)
			writes[uint64(i)] = body
			copy(content[uint64(i)*chunk:], body)
		}
		if _, err := c.WriteVersion(ctx, blob, writes, uint64(nChunks)*chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, append([]byte(nil), content...))
	}
	return blob, want
}

// killProvider fail-stops one data provider: partitioned and unregistered,
// exactly as cloud.FailNode does.
func killProvider(t *testing.T, net *transport.InProc, c *blobseer.Client, addr string) {
	t.Helper()
	net.Partition(addr)
	if err := c.UnregisterProvider(ctx, addr); err != nil {
		t.Fatal(err)
	}
}

// readAll verifies every version of the blob against its expected content.
func readAll(t *testing.T, c *blobseer.Client, blob uint64, want [][]byte) blobseer.ReadStats {
	t.Helper()
	var total blobseer.ReadStats
	for v, content := range want {
		got, stats, err := c.ReadVersionStats(ctx, blobseer.SnapshotRef{Blob: blob, Version: uint64(v)}, 0, uint64(len(content)))
		if err != nil {
			t.Fatalf("read version %d: %v", v, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("version %d corrupted after repair", v)
		}
		total.Add(stats)
	}
	return total
}

// TestScrubCleanOnHealthyRepository: a freshly committed repository scrubs
// clean and reports the right shape.
func TestScrubCleanOnHealthyRepository(t *testing.T) {
	_, _, c := deploy(t, 4)
	commitVersions(t, c, 1024, 8, 3)
	r := New(Config{Client: c})
	rep, err := r.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("healthy repository scrubs dirty: %s", rep)
	}
	if rep.Chunks == 0 || rep.Versions != 3 || rep.ActiveProviders != 4 {
		t.Fatalf("scrub shape wrong: %s", rep)
	}
	if rep.Healthy < rep.Chunks*2 {
		t.Fatalf("expected every chunk at 2 verified replicas: %s", rep)
	}
}

// TestRepairRestoresReplicationAfterProviderDeath is the acceptance
// criterion: after killing one of N providers under a committed
// multi-version repository, a repair pass restores every live chunk to the
// replication factor (scrub: zero under-replicated, zero corrupt), and a
// full restart-style read of every version succeeds using only the
// surviving + repaired providers — even after a second original provider
// dies, which forces reads through the ranked-membership fallback.
func TestRepairRestoresReplicationAfterProviderDeath(t *testing.T) {
	net, d, c := deploy(t, 4)
	blob, want := commitVersions(t, c, 1024, 16, 3)

	killProvider(t, net, c, d.DataAddrs[0])

	r := New(Config{Client: c})
	pre, err := r.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pre.UnderReplicated == 0 {
		t.Fatalf("killing a provider left nothing under-replicated: %s", pre)
	}

	rep, err := r.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Post.Clean() {
		t.Fatalf("repair did not converge: %s", rep.Post)
	}
	if rep.ReplicasRestored == 0 || rep.RefsRelocated == 0 {
		t.Fatalf("repair restored nothing: %s", rep)
	}
	// Scrub-after-repair must agree (zero under-replicated, zero corrupt).
	post, err := r.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Clean() {
		t.Fatalf("post-repair scrub dirty: %s", post)
	}
	// Full restart-style read from the surviving + repaired providers only.
	readAll(t, c, blob, want)

	// A second failure: chunks whose leaf-recorded replicas are now both
	// dead are served from the repaired homes via the ranked fallback.
	killProvider(t, net, c, d.DataAddrs[1])
	stats := readAll(t, c, blob, want)
	if stats.RankedFallbacks == 0 {
		t.Fatalf("expected some reads through the ranked fallback, got %+v", stats)
	}
	// And the plane heals again on the remaining two providers.
	rep, err = r.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Post.Clean() {
		t.Fatalf("second repair did not converge: %s", rep.Post)
	}
	readAll(t, c, blob, want)
}

// TestScrubDetectsAndRepairFixesCorruptReplica: a replica whose bytes rot is
// detected by the scrub's fingerprint recomputation, never served to a
// reader, destroyed by repair, and re-placed from a good replica.
func TestScrubDetectsAndRepairFixesCorruptReplica(t *testing.T) {
	_, d, c := deploy(t, 4)
	blob, want := commitVersions(t, c, 1024, 8, 2)

	// Rot one stored replica in place: pick the latest version's first chunk
	// and overwrite its body on one of the providers holding it.
	found := false
	chunkBody := want[len(want)-1][:1024]
	victim := cas.Sum(chunkBody)
	for _, store := range d.DataProviderStores() {
		if store.Has(victim.Key()) {
			// Mem.Get hands back the live slice: flip a bit in place, the
			// way silent disk corruption would, leaving the dedup index and
			// its reference count untouched.
			body, err := store.Get(victim.Key())
			if err != nil {
				t.Fatal(err)
			}
			body[0] ^= 0xFF
			found = true
			break // corrupt exactly one replica
		}
	}
	if !found {
		t.Fatal("no provider holds the victim chunk")
	}

	// The read path must fail the corrupt replica over, not deliver it.
	stats := readAll(t, c, blob, want)
	if stats.CorruptReplicas == 0 {
		t.Fatalf("reads never saw the corrupt replica: %+v", stats)
	}

	r := New(Config{Client: c})
	pre, err := r.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Corrupt != 1 {
		t.Fatalf("scrub found %d corrupt replicas, want 1: %s", pre.Corrupt, pre)
	}
	rep, err := r.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptDropped != 1 || !rep.Post.Clean() {
		t.Fatalf("repair did not fix the corruption: %s", rep)
	}
	readAll(t, c, blob, want)
}

// TestRetireStaysExactAfterRepair: after a provider death and repair, the
// version manager's relocated write events release exactly the references
// the repaired providers hold — retiring every old version leaves precisely
// the latest version's references, with zero failed releases at live
// providers.
func TestRetireStaysExactAfterRepair(t *testing.T) {
	net, d, c := deploy(t, 4)
	const nChunks = 16
	blob, want := commitVersions(t, c, 1024, nChunks, 3)

	killProvider(t, net, c, d.DataAddrs[0])
	r := New(Config{Client: c})
	if rep, err := r.Repair(ctx); err != nil || !rep.Post.Clean() {
		t.Fatalf("repair: %v %s", err, rep.Post)
	}

	latest, _, err := c.Latest(ctx, blob)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.RetireStats(ctx, blob, latest.Version)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("%d releases failed after repair relocated the references: %+v", stats.Failed, stats)
	}
	if stats.ReleasedRefs == 0 {
		t.Fatalf("retire released nothing: %+v", stats)
	}
	// Remaining references: one write event per chunk index (the latest
	// write), two replicas each — nothing more, nothing less.
	var totalRefs uint64
	for i, store := range d.DataProviderStores() {
		if i == 0 {
			continue // dead provider, its store is unreachable garbage
		}
		totalRefs += store.(*cas.Store).Stats().Refs
	}
	if wantRefs := uint64(nChunks * 2); totalRefs != wantRefs {
		t.Fatalf("live refs after retire = %d, want %d", totalRefs, wantRefs)
	}
	// The surviving version still reads back whole.
	got, _, err := c.ReadVersionStats(ctx, blobseer.SnapshotRef{Blob: blob, Version: latest.Version}, 0, uint64(len(want[len(want)-1])))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[len(want)-1]) {
		t.Fatal("latest version corrupted after retire")
	}
}
