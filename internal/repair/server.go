package repair

import (
	"context"
	"fmt"
	"strings"

	"blobcr/internal/transport"
)

// Serve binds the repairer's control endpoint on the network, in the same
// REST-ful text style as the checkpointing proxy and the supervisor:
//
//	request:  STATUS
//	response: OK scrubs=<n> repairs=<n> drains=<n> restored=<n>
//	             bytes=<n> refs-relocated=<n> corrupt-dropped=<n>
//	             [last-scrub: <report>]
//
//	request:  SCRUB
//	response: OK <scrub report line> | ERR <message>
//
//	request:  REPAIR
//	response: OK <repair report line> | ERR <message>
//
//	request:  PROVIDERS
//	response: OK <n> epoch=<e>\n<one "<addr> <state>" line per provider>
//
//	request:  DRAIN <addr>
//	response: OK <repair report line> | ERR <message>
//
//	request:  METRICS [<offset>] | TRACE <trace-hex> | FLIGHT
//	response: the shared tokenless introspection verbs (obs.TextReply):
//	          chunked Prometheus exposition, per-trace spans, and the
//	          flight-recorder ring of the repairer's registry.
//
// SCRUB, REPAIR and DRAIN run the pass synchronously and return its report;
// passes are serialized by the repairer, so concurrent requests queue rather
// than interleave.
func (r *Repairer) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, r.handle)
}

func (r *Repairer) handle(ctx context.Context, req []byte) ([]byte, error) {
	fields := strings.Fields(string(req))
	if len(fields) == 0 {
		return []byte("ERR malformed request"), nil
	}
	if resp, handled := r.reg.TextReply(fields); handled {
		return resp, nil
	}
	switch fields[0] {
	case "STATUS":
		st := r.Stats()
		var b strings.Builder
		fmt.Fprintf(&b, "OK scrubs=%d repairs=%d drains=%d restored=%d bytes=%d refs-relocated=%d corrupt-dropped=%d",
			st.Scrubs, st.Repairs, st.Drains, st.ReplicasRestored, st.BytesRestored, st.RefsRelocated, st.CorruptDropped)
		if rep, ok := r.LastScrub(); ok {
			fmt.Fprintf(&b, " last-scrub: %s", rep)
		}
		return []byte(b.String()), nil
	case "SCRUB":
		rep, err := r.Scrub(ctx)
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		return []byte("OK " + rep.String()), nil
	case "REPAIR":
		rep, err := r.Repair(ctx)
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		return []byte("OK " + rep.String()), nil
	case "DRAIN":
		if len(fields) != 2 {
			return []byte("ERR usage: DRAIN <provider-addr>"), nil
		}
		rep, err := r.Drain(ctx, fields[1])
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		return []byte("OK " + rep.String()), nil
	case "PROVIDERS":
		m, err := r.client.Membership(ctx)
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "OK %d epoch=%d", len(m.Providers), m.Epoch)
		for _, p := range m.Providers {
			fmt.Fprintf(&b, "\n%s %s", p.Addr, p.State)
		}
		return []byte(b.String()), nil
	default:
		return []byte("ERR unknown verb " + fields[0]), nil
	}
}
