package repair

import (
	"context"
	"slices"
	"sort"
	"sync"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
)

// chunkState is the survey's record of one live chunk.
type chunkState struct {
	key   chunkstore.Key
	size  int
	fp    cas.Fingerprint // true fingerprint, recomputed from a verified body
	hasFP bool

	leafProviders []string // replica homes the metadata trees record (union)
	candidates    []string // providers probed (leaf homes + ranked targets)
	good          []string // verified correct body, any membership state
	corrupt       []string // body present but bytes no longer hash to the key
}

func (cs *chunkState) goodOn(set map[string]bool) []string {
	var out []string
	for _, p := range cs.good {
		if set[p] {
			out = append(out, p)
		}
	}
	return out
}

// survey is one anti-entropy pass's view of the storage plane.
type survey struct {
	report    ScrubReport
	active    []string // placement-eligible providers
	activeSet map[string]bool
	draining  map[string]bool
	dead      map[string]bool // probed providers that were unreachable
	chunks    map[chunkstore.Key]*chunkState
	order     []chunkstore.Key // deterministic iteration order
	want      int              // target replicas per chunk on active providers
}

// members returns every member address (active and draining), sorted.
func (sv *survey) members() []string {
	out := append([]string(nil), sv.active...)
	for p := range sv.draining {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// probe is one (chunk, provider) fetch of the survey.
type probe struct {
	cs *chunkState
}

// runSurvey walks every live version's metadata tree, fetches every
// candidate replica in batched per-provider frames, verifies the bytes
// (dedup mode re-hashes them), and classifies each chunk's health against
// the current active membership.
func (r *Repairer) runSurvey(ctx context.Context) (*survey, error) {
	start := time.Now()
	sv := &survey{
		activeSet: make(map[string]bool),
		draining:  make(map[string]bool),
		dead:      make(map[string]bool),
		chunks:    make(map[chunkstore.Key]*chunkState),
	}
	members, err := r.client.Membership(ctx)
	if err != nil {
		return nil, err
	}
	sv.report.Epoch = members.Epoch
	for _, p := range members.Providers {
		switch p.State {
		case blobseer.ProviderActive:
			sv.active = append(sv.active, p.Addr)
			sv.activeSet[p.Addr] = true
			sv.report.ActiveProviders++
		case blobseer.ProviderDraining:
			sv.draining[p.Addr] = true
			sv.report.DrainingProviders++
		}
	}
	sv.want = min(r.replication, len(sv.active))

	// Mark: every live version's leaves, unioned per chunk key.
	live, err := r.client.LiveVersions(ctx)
	if err != nil {
		return nil, err
	}
	sv.report.Versions = len(live)
	for _, lv := range live {
		leaves, err := r.client.VersionLeaves(ctx, lv.Info)
		if err != nil {
			return nil, err
		}
		for _, slot := range leaves {
			cs, ok := sv.chunks[slot.Leaf.Key]
			if !ok {
				cs = &chunkState{key: slot.Leaf.Key, size: int(slot.Leaf.Size)}
				sv.chunks[slot.Leaf.Key] = cs
				sv.order = append(sv.order, slot.Leaf.Key)
			}
			if int(slot.Leaf.Size) > cs.size {
				cs.size = int(slot.Leaf.Size)
			}
			for _, p := range slot.Leaf.Providers {
				if !slices.Contains(cs.leafProviders, p) {
					cs.leafProviders = append(cs.leafProviders, p)
				}
			}
		}
	}
	sort.Slice(sv.order, func(i, j int) bool {
		a, b := sv.order[i], sv.order[j]
		if a.Blob != b.Blob {
			return a.Blob < b.Blob
		}
		return a.ID < b.ID
	})
	sv.report.Chunks = len(sv.order)

	// Candidates per chunk: the leaf-recorded homes (which may name
	// providers no longer in the membership) plus every current member.
	// Probing the whole membership — not just the top-ranked placement —
	// is what makes the pass anti-entropy: a replica the repair plane
	// re-homed is found wherever it lives, even when a dead provider is
	// still registered and therefore still occupies its placement rank.
	// A member that never held the chunk answers the probe with a cheap
	// per-item absence; only actual bodies cross the wire.
	memberAddrs := sv.members()
	byProvider := make(map[string][]probe)
	for _, key := range sv.order {
		cs := sv.chunks[key]
		cs.candidates = append(cs.candidates, cs.leafProviders...)
		for _, p := range memberAddrs {
			if !slices.Contains(cs.candidates, p) {
				cs.candidates = append(cs.candidates, p)
			}
		}
		for _, p := range cs.candidates {
			byProvider[p] = append(byProvider[p], probe{cs: cs})
		}
	}

	// Fetch every candidate replica, one batched stream per provider, and
	// verify the bytes. In dedup mode the verification recomputes the
	// SHA-256 fingerprint; in placed mode presence is all there is to check.
	var mu sync.Mutex
	r.forEachAddr(keysOf(byProvider), func(addr string) {
		probes := byProvider[addr]
		keys := make([]chunkstore.Key, len(probes))
		sizes := make([]int, len(probes))
		for i, pb := range probes {
			keys[i] = pb.cs.key
			sizes[i] = pb.cs.size
		}
		bodies, err := r.client.FetchChunksFrom(ctx, addr, keys, sizes)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			sv.dead[addr] = true
			return
		}
		for i, pb := range probes {
			sv.report.ReplicasChecked++
			body := bodies[i]
			if body == nil {
				continue // missing here; classification below
			}
			if r.client.Dedup {
				fp := cas.Sum(body)
				if fp.Key() != pb.cs.key {
					pb.cs.corrupt = append(pb.cs.corrupt, addr)
					sv.report.Corrupt++
					continue
				}
				pb.cs.fp, pb.cs.hasFP = fp, true
			}
			pb.cs.good = append(pb.cs.good, addr)
			sv.report.Healthy++
		}
	})

	// Classify.
	for _, key := range sv.order {
		cs := sv.chunks[key]
		sort.Strings(cs.good)
		for _, p := range cs.leafProviders {
			if !slices.Contains(cs.good, p) && !slices.Contains(cs.corrupt, p) {
				sv.report.Missing++
			}
		}
		goodActive := cs.goodOn(sv.activeSet)
		switch {
		case len(cs.good) == 0:
			sv.report.Unrecoverable++
		case len(goodActive) < sv.want:
			sv.report.UnderReplicated++
		}
		for _, p := range cs.good {
			if sv.draining[p] {
				sv.report.DrainResident++
				break
			}
		}
	}
	sv.report.DeadProviders = len(sv.dead)
	sv.report.Elapsed = time.Since(start)
	return sv, nil
}

// keysOf returns a map's keys, sorted for deterministic fan-out order.
func keysOf[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// forEachAddr runs fn once per provider address on bounded concurrent
// streams (the client's Parallelism), the same fan-out shape as the data
// path.
func (r *Repairer) forEachAddr(addrs []string, fn func(addr string)) {
	limit := r.client.Parallelism
	if limit <= 0 {
		limit = blobseer.DefaultParallelism
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for _, addr := range addrs {
		sem <- struct{}{}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(addr)
		}(addr)
	}
	wg.Wait()
}

// Scrub runs one anti-entropy pass and reports the storage plane's health
// without fixing anything. Storage-engine compaction rides the scrub
// cadence: after the survey, every member provider with a log-structured
// backend gets a best-effort compaction pass, reclaiming the dead bytes that
// Retire releases and GC sweeps left in its segments.
func (r *Repairer) Scrub(ctx context.Context) (ScrubReport, error) {
	r.passMu.Lock()
	defer r.passMu.Unlock()
	sv, err := r.runSurvey(ctx)
	if err != nil {
		return ScrubReport{}, err
	}
	r.mu.Lock()
	r.stats.Scrubs++
	r.lastScrub = sv.report
	r.haveScrub = true
	r.mu.Unlock()
	r.recordScrub(sv.report)
	r.compactStores(ctx, sv.members())
	return sv.report, nil
}

// compactStores asks every member provider's storage engine for a compaction
// pass, on the same bounded fan-out as the data path. Engines with nothing
// to compact and providers that are unreachable are skipped silently — the
// scrub's health findings already cover reachability.
func (r *Repairer) compactStores(ctx context.Context, addrs []string) {
	var mu sync.Mutex
	var total chunkstore.CompactResult
	r.forEachAddr(addrs, func(addr string) {
		res, supported, err := r.client.CompactChunkStore(ctx, addr)
		if err != nil || !supported {
			return
		}
		mu.Lock()
		total.Add(res)
		mu.Unlock()
	})
	if total.Segments > 0 {
		r.reg.Counter("repair_store_compactions_total").Add(uint64(total.Segments))
		r.reg.Counter("repair_store_reclaimed_bytes_total").Add(total.ReclaimedBytes)
	}
}
