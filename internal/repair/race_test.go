package repair

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/cas"
)

// TestRepairCommitRetireRaceStress drives dedup commits, Retires and repair
// passes concurrently — with a provider killed mid-stream — and asserts the
// CAS reference counts balance exactly once everything quiesces: after a
// final repair and a Retire of everything but each blob's latest version,
// the live providers hold precisely one reference per replica of each
// blob's surviving write events. This is the composition guarantee: a
// scrub/re-replication pass racing in-flight commits and concurrent Retires
// neither leaks references nor releases ones that are still needed.
func TestRepairCommitRetireRaceStress(t *testing.T) {
	const (
		chunk   = 1024
		writers = 4
		rounds  = 15
		stripes = 4 // chunk indexes per blob, rewritten every round
		pool    = 3 // distinct contents — heavy cross-writer sharing
	)
	net, d, c := deploy(t, 5)
	c.Parallelism = 4

	contents := make([][]byte, pool)
	for i := range contents {
		contents[i] = bytes.Repeat([]byte{byte('A' + i)}, chunk)
	}

	r := New(Config{Client: c})
	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	blobs := make([]uint64, writers)

	// The repair loop runs continuously against the churning repository
	// until the writers are done (it joins after wg.Wait, not through it).
	repairDone := make(chan struct{})
	go func() {
		defer close(repairDone)
		for !done.Load() {
			if _, err := r.Repair(ctx); err != nil {
				errs <- fmt.Errorf("repair loop: %w", err)
				return
			}
		}
	}()
	// One provider dies part-way through the storm.
	killed := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-killed
		killProvider(t, net, c, d.DataAddrs[0])
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			blob, err := c.CreateBlob(ctx, chunk)
			if err != nil {
				errs <- err
				return
			}
			blobs[w] = blob
			for round := 0; round < rounds; round++ {
				if w == 0 && round == rounds/3 {
					close(killed)
				}
				writes := make(map[uint64][]byte, stripes)
				want := make([]byte, 0, stripes*chunk)
				for s := 0; s < stripes; s++ {
					body := contents[(w+round+s)%pool]
					writes[uint64(s)] = body
					want = append(want, body...)
				}
				info, err := c.WriteVersion(ctx, blob, writes, stripes*chunk)
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: commit: %w", w, round, err)
					return
				}
				got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: blob, Version: info.Version}, 0, stripes*chunk)
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: read: %w", w, round, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("writer %d round %d: snapshot corrupted", w, round)
					return
				}
				if _, err := c.RetireStats(ctx, blob, info.Version); err != nil {
					errs <- fmt.Errorf("writer %d round %d: retire: %w", w, round, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	done.Store(true)
	<-repairDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesce: one final repair must converge to a clean scrub.
	rep, err := r.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Post.Clean() {
		t.Fatalf("final repair did not converge: %s", rep.Post)
	}

	// Retire everything below each blob's latest version; with the storm
	// over and every reference relocated to live providers, no release may
	// fail and the remaining counts must balance exactly: stripes write
	// events per blob, two replicas each.
	for _, blob := range blobs {
		latest, _, err := c.Latest(ctx, blob)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := c.RetireStats(ctx, blob, latest.Version)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Failed != 0 {
			t.Fatalf("blob %d: %d releases failed after repair: %+v", blob, stats.Failed, stats)
		}
	}
	var totalRefs uint64
	for i, store := range d.DataProviderStores() {
		if i == 0 {
			continue // the killed provider's references died with it
		}
		totalRefs += store.(*cas.Store).Stats().Refs
	}
	if want := uint64(writers * stripes * 2); totalRefs != want {
		t.Fatalf("refs after quiesce = %d, want exactly %d", totalRefs, want)
	}

	// Every blob's final snapshot is still whole.
	for w, blob := range blobs {
		latest, _, err := c.Latest(ctx, blob)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 0, stripes*chunk)
		for s := 0; s < stripes; s++ {
			want = append(want, contents[(w+rounds-1+s)%pool]...)
		}
		got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: blob, Version: latest.Version}, 0, stripes*chunk)
		if err != nil {
			t.Fatalf("writer %d: final snapshot: %v", w, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("writer %d: final snapshot corrupted", w)
		}
	}
}
