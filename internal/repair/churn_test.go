package repair

import (
	"bytes"
	"fmt"
	"slices"
	"sync"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/chunkstore"
)

// TestJoinMidCommitBecomesPlacementEligible: a provider that JOINs while
// commits are in flight disturbs none of them, and becomes placement-
// eligible for the commits that follow.
func TestJoinMidCommitBecomesPlacementEligible(t *testing.T) {
	_, d, c := deploy(t, 3)
	const (
		chunk   = 1024
		writers = 4
		rounds  = 10
	)
	join := make(chan struct{})
	var joined string
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			blob, err := c.CreateBlob(ctx, chunk)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				if w == 0 && r == rounds/2 {
					close(join) // fire the JOIN mid-stream
				}
				body := bytes.Repeat([]byte{byte(w), byte(r)}, chunk/2)
				info, err := c.WriteVersion(ctx, blob, map[uint64][]byte{0: body, 1: body}, 2*chunk)
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
				got, err := c.ReadVersion(ctx, blobseer.SnapshotRef{Blob: blob, Version: info.Version}, 0, chunk)
				if err != nil || !bytes.Equal(got, body) {
					errs <- fmt.Errorf("writer %d round %d: read back: %v", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-join
		addr, err := d.AddDataProvider(ctx)
		if err != nil {
			errs <- err
			return
		}
		joined = addr
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m, err := c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Active()) != 4 {
		t.Fatalf("membership after join: %v", m.Providers)
	}
	// Fresh content after the join must be eligible to land on the newcomer:
	// commit distinct chunks until rendezvous ranks the new provider first
	// for some of them.
	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		writes := make(map[uint64][]byte)
		for i := 0; i < 8; i++ {
			writes[uint64(i)] = bytes.Repeat([]byte{0xEE, byte(r), byte(i)}, chunk/3)
		}
		if _, err := c.WriteVersion(ctx, blob, writes, 8*chunk); err != nil {
			t.Fatal(err)
		}
	}
	stores := d.DataProviderStores()
	if stores[len(stores)-1].Len() == 0 {
		t.Fatalf("joined provider %s never received a placement", joined)
	}
	// The whole plane scrubs clean across the widened membership.
	rep, err := New(Config{Client: c}).Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-join scrub dirty: %s", rep)
	}
}

// TestDecommissionDrainsFully: DECOMMISSION moves every replica off the
// drained provider (no chunk left only there — in fact none left at all,
// since the relocated references reclaim the drained bodies), retires it
// from the membership, and the repository survives the provider going dark
// afterwards.
func TestDecommissionDrainsFully(t *testing.T) {
	net, d, c := deploy(t, 4)
	blob, want := commitVersions(t, c, 1024, 16, 3)
	victim := d.DataAddrs[0]

	r := New(Config{Client: c})
	rep, err := r.Drain(ctx, victim)
	if err != nil {
		t.Fatalf("drain: %v (%s)", err, rep.Post)
	}
	if rep.ReplicasRestored == 0 {
		t.Fatalf("drain moved nothing: %s", rep)
	}
	m, err := c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Providers {
		if p.Addr == victim {
			t.Fatalf("victim still a member after drain: %v", m.Providers)
		}
	}
	// The drained provider holds no live chunk — the relocated references
	// released its bodies entirely.
	if n := d.DataProviderStores()[0].Len(); n != 0 {
		t.Fatalf("drained provider still holds %d chunks", n)
	}
	// It can now go dark without any data loss.
	net.Partition(victim)
	readAll(t, c, blob, want)
	post, err := r.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Clean() {
		t.Fatalf("post-drain scrub dirty: %s", post)
	}
}

// TestDecommissionDrainsPlacedMode: DECOMMISSION also converges for
// repositories written without deduplication — replicas are copied to
// active providers first, then the drained copies are deleted, and the
// provider retires.
func TestDecommissionDrainsPlacedMode(t *testing.T) {
	net, d, c := deploy(t, 4)
	c.Dedup = false
	blob, want := commitVersions(t, c, 1024, 16, 2)
	victim := d.DataAddrs[0]

	r := New(Config{Client: c})
	rep, err := r.Drain(ctx, victim)
	if err != nil {
		t.Fatalf("placed-mode drain: %v (%s)", err, rep.Post)
	}
	if rep.ReplicasRestored == 0 {
		t.Fatalf("drain moved nothing: %s", rep)
	}
	m, err := c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(m.Addrs(), victim) {
		t.Fatalf("victim still a member after placed-mode drain: %v", m.Providers)
	}
	// Nothing live remains on the drained provider, and the repository
	// survives it going dark.
	for _, key := range liveKeysOn(t, c, d, 0) {
		t.Fatalf("drained provider still holds live chunk %v", key)
	}
	net.Partition(victim)
	readAll(t, c, blob, want)
}

// liveKeysOn returns the live chunk keys still stored on provider i.
func liveKeysOn(t *testing.T, c *blobseer.Client, d *blobseer.Deployment, i int) []chunkstore.Key {
	t.Helper()
	live, err := c.LiveVersions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	store := d.DataProviderStores()[i]
	var out []chunkstore.Key
	seen := make(map[chunkstore.Key]bool)
	for _, lv := range live {
		leaves, err := c.VersionLeaves(ctx, lv.Info)
		if err != nil {
			t.Fatal(err)
		}
		for _, slot := range leaves {
			if !seen[slot.Leaf.Key] && store.Has(slot.Leaf.Key) {
				seen[slot.Leaf.Key] = true
				out = append(out, slot.Leaf.Key)
			}
		}
	}
	return out
}

// TestPartitionDuringDrain: a provider that dies after the drain started
// (marked DRAINING, nothing moved yet) degrades into the dead-provider
// repair — its replicas are restored from the survivors — and the drain
// still completes with the provider retired.
func TestPartitionDuringDrain(t *testing.T) {
	net, d, c := deploy(t, 4)
	blob, want := commitVersions(t, c, 1024, 16, 3)
	victim := d.DataAddrs[0]

	// The drain begins: the provider is marked DRAINING...
	if err := c.DrainProvider(ctx, victim); err != nil {
		t.Fatal(err)
	}
	// ...and dies before the repair plane moved anything.
	net.Partition(victim)

	r := New(Config{Client: c})
	rep, err := r.Drain(ctx, victim)
	if err != nil {
		t.Fatalf("drain after partition: %v (%s)", err, rep.Post)
	}
	if rep.ReplicasRestored == 0 {
		t.Fatalf("nothing re-replicated from the survivors: %s", rep)
	}
	m, err := c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Providers {
		if p.Addr == victim {
			t.Fatalf("victim still a member: %v", m.Providers)
		}
	}
	readAll(t, c, blob, want)
	post, err := r.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Clean() {
		t.Fatalf("post-drain scrub dirty: %s", post)
	}
}
