// Package repair is the elastic self-healing storage plane: it keeps the
// checkpoint repository durable while data providers come and go, the way
// internal/supervisor keeps the compute plane available while nodes fail.
//
// Three responsibilities share one survey core:
//
//   - Anti-entropy scrub: walk the metadata trees of every live version,
//     fetch each chunk's replicas in batched per-provider frames, recompute
//     the SHA-256 fingerprint of every stored body (dedup mode), and report
//     missing replicas, corrupt replicas, and chunks below the configured
//     replication factor on the current *active* membership.
//   - Background re-replication: restore every under-replicated chunk to
//     the replication factor by copying a verified body from a surviving
//     replica to the next rendezvous-ranked active providers — the same
//     ranking the write path places by and the read path falls back to, so
//     a repaired replica is exactly where a fresh write of that content
//     would have put it. Corrupt replicas are destroyed before re-placing.
//   - Decommission (drain): move every replica off a DRAINING provider
//     (blobseer.Client.DrainProvider) and retire it from the membership
//     once it holds no live chunk.
//
// Reference exactness. In dedup mode every replica of a published chunk
// write holds one reference in the provider's content-addressed store, and
// Retire releases references at the providers the version manager's write
// events record. Repair keeps that accounting exact while replicas move: a
// re-replication first counts the write-event references naming the lost
// provider (RelocateWrites, apply=false), pre-installs exactly that many
// references at the new home, then commits the rewrite (apply=true) and
// settles the difference — events retired or published in between — against
// the new home. A Retire that races the move therefore releases either at
// the old provider (before the rewrite) or at the new one (after it, where
// the references already are), never in between. Chunks kept alive only by
// a clone's pin (their write events were dropped without release) have no
// references to move; they are restored with one ordinary counted reference
// that no Retire will ever release — like the dropped originals, the body
// outlives its count and is reclaimed only by the mark-and-sweep fallback
// (or re-restored by a later pass if a shared release drops it).
package repair

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/obs"
)

// Config tunes a Repairer.
type Config struct {
	// Client is the repository client the repairer works through. Dedup,
	// Replication and Parallelism are read from it.
	Client *blobseer.Client
	// Replication overrides the client's replica target when > 0.
	Replication int
	// MaxPasses bounds the survey+fix rounds of one Repair call (default 3):
	// a provider dying mid-repair fails some fixes, and the next pass
	// re-plans around it.
	MaxPasses int
	// MaxDrainPasses bounds the repair rounds of one Drain call (default 5).
	MaxDrainPasses int
	// Obs is the metrics registry the repairer's instrumentation records
	// into (scrub findings, restored bytes, drain progress). Nil means the
	// client's registry.
	Obs *obs.Registry
}

// Stats is the repairer's cumulative accounting.
type Stats struct {
	Scrubs  int
	Repairs int
	Drains  int

	ReplicasRestored int    // replica bodies re-placed on new providers
	BytesRestored    uint64 // payload bytes those bodies carried
	RefsRelocated    uint64 // write-event references moved between providers
	CorruptDropped   int    // corrupt replicas destroyed
	PinnedRestores   int    // clone-pinned chunks restored (one counted ref no Retire releases)
}

// ScrubReport is the outcome of one anti-entropy pass over the repository.
type ScrubReport struct {
	Epoch             uint64 // membership epoch the survey ran against
	ActiveProviders   int
	DrainingProviders int
	DeadProviders     int // probed providers that were unreachable

	Versions        int // live versions walked
	Chunks          int // distinct live chunks
	ReplicasChecked int // bodies fetched and (in dedup mode) re-hashed
	Healthy         int // replicas whose bytes verified
	Missing         int // leaf-recorded replicas that are gone
	Corrupt         int // replicas whose bytes no longer hash to their key

	UnderReplicated int // chunks below target on active providers
	DrainResident   int // chunks with a replica still on a draining provider
	Unrecoverable   int // chunks with no good replica anywhere

	Elapsed time.Duration
}

// Clean reports whether the storage plane needs no repair: every live chunk
// at full replication on active providers, no corruption, nothing stranded
// on a draining provider.
func (r ScrubReport) Clean() bool {
	return r.UnderReplicated == 0 && r.Corrupt == 0 && r.Unrecoverable == 0 && r.DrainResident == 0
}

// String renders the report as one line (the SCRUB endpoint and blobcr-ctl
// print it).
func (r ScrubReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch=%d providers=%d/%d/%d versions=%d chunks=%d checked=%d healthy=%d missing=%d corrupt=%d under-replicated=%d drain-resident=%d unrecoverable=%d elapsed=%s",
		r.Epoch, r.ActiveProviders, r.DrainingProviders, r.DeadProviders,
		r.Versions, r.Chunks, r.ReplicasChecked, r.Healthy, r.Missing, r.Corrupt,
		r.UnderReplicated, r.DrainResident, r.Unrecoverable, r.Elapsed.Round(time.Microsecond))
	return b.String()
}

// RepairReport is the outcome of one Repair (or Drain) call.
type RepairReport struct {
	Pre  ScrubReport // the survey that planned the first pass
	Post ScrubReport // the survey after the last pass

	Passes           int
	ReplicasRestored int
	BytesRestored    uint64
	RefsRelocated    uint64
	CorruptDropped   int
	PinnedRestores   int

	Elapsed time.Duration
}

// String renders the report as one line.
func (r RepairReport) String() string {
	return fmt.Sprintf("passes=%d restored=%d bytes=%d refs-relocated=%d corrupt-dropped=%d pinned=%d elapsed=%s post: %s",
		r.Passes, r.ReplicasRestored, r.BytesRestored, r.RefsRelocated, r.CorruptDropped, r.PinnedRestores,
		r.Elapsed.Round(time.Microsecond), r.Post)
}

// Repairer runs scrub, repair and drain passes against one deployment. It is
// safe for concurrent use; passes are serialized internally so a supervisor
// trigger and an operator command cannot run interleaved fixes.
type Repairer struct {
	client      *blobseer.Client
	replication int
	maxPasses   int
	drainPasses int

	reg *obs.Registry

	passMu sync.Mutex // serializes survey/fix passes

	mu         sync.Mutex // guards the fields below
	stats      Stats
	lastScrub  ScrubReport
	lastRepair RepairReport
	haveScrub  bool
	haveRepair bool
}

// New builds a repairer for the deployment the client is bound to.
func New(cfg Config) *Repairer {
	rep := cfg.Replication
	if rep <= 0 {
		rep = cfg.Client.Replication
	}
	if rep <= 0 {
		rep = 1
	}
	passes := cfg.MaxPasses
	if passes <= 0 {
		passes = 3
	}
	drain := cfg.MaxDrainPasses
	if drain <= 0 {
		drain = 5
	}
	reg := cfg.Obs
	if reg == nil {
		reg = cfg.Client.Registry()
	}
	return &Repairer{
		client:      cfg.Client,
		replication: rep,
		maxPasses:   passes,
		drainPasses: drain,
		reg:         reg,
	}
}

// recordScrub publishes one scrub report's findings as gauges (the current
// health picture — DrainResident doubles as drain progress) plus the scrub
// duration histogram. Called wherever a survey becomes the last scrub.
func (r *Repairer) recordScrub(rep ScrubReport) {
	r.reg.Counter("repair_scrubs_total").Inc()
	r.reg.Histogram("repair_scrub_ns").Observe(uint64(rep.Elapsed))
	r.reg.Gauge("repair_scrub_healthy").Set(int64(rep.Healthy))
	r.reg.Gauge("repair_scrub_missing").Set(int64(rep.Missing))
	r.reg.Gauge("repair_scrub_corrupt").Set(int64(rep.Corrupt))
	r.reg.Gauge("repair_scrub_under_replicated").Set(int64(rep.UnderReplicated))
	r.reg.Gauge("repair_scrub_drain_resident").Set(int64(rep.DrainResident))
	r.reg.Gauge("repair_scrub_unrecoverable").Set(int64(rep.Unrecoverable))
}

// Stats returns the cumulative accounting.
func (r *Repairer) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// LastScrub returns the most recent scrub report, if any.
func (r *Repairer) LastScrub() (ScrubReport, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastScrub, r.haveScrub
}

// LastRepair returns the most recent repair report, if any.
func (r *Repairer) LastRepair() (RepairReport, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastRepair, r.haveRepair
}
