package repair

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
)

// move is one write-event reference relocation: the references naming `from`
// move to `to`. pre is the occurrence count before the fix (apply=false),
// post the count the committed rewrite observed (apply=true); the difference
// — events retired or published while the fix ran — is settled against `to`.
type move struct {
	cs        *chunkState
	from, to  string
	pre, post uint64
}

// install is one provider's share of a chunk fix: the references to
// pre-install there, and the body when the provider does not hold it yet.
type install struct {
	cs       *chunkState
	refs     uint64
	needBody bool
	body     []byte
}

// passStats is one fix pass's accounting.
type passStats struct {
	attempted        int
	replicasRestored int
	bytesRestored    uint64
	refsRelocated    uint64
	corruptDropped   int
	pinnedRestores   int
}

// Repair surveys the storage plane and re-replicates until a scrub comes
// back clean or MaxPasses fixes have run. Provider deaths during a pass are
// planned around on the next one. The returned report carries the pre- and
// post-repair surveys; infrastructure failures (version or provider manager
// unreachable) are returned as errors, per-provider failures are not — they
// show up in the Post survey instead.
func (r *Repairer) Repair(ctx context.Context) (RepairReport, error) {
	r.passMu.Lock()
	defer r.passMu.Unlock()
	report, err := r.repairLocked(ctx)
	r.mu.Lock()
	r.stats.Repairs++
	r.lastRepair = report
	r.haveRepair = true
	r.mu.Unlock()
	r.reg.Counter("repair_repairs_total").Inc()
	if err == nil {
		r.mu.Lock()
		// On error the Post survey may never have run (a zero report must
		// not masquerade as a clean scrub on the STATUS endpoint).
		r.lastScrub = report.Post
		r.haveScrub = true
		r.mu.Unlock()
		r.recordScrub(report.Post)
	}
	return report, err
}

func (r *Repairer) repairLocked(ctx context.Context) (RepairReport, error) {
	start := time.Now()
	var report RepairReport
	fixedLast := false
	for pass := 0; pass < r.maxPasses; pass++ {
		sv, err := r.runSurvey(ctx)
		if err != nil {
			return report, err
		}
		if pass == 0 {
			report.Pre = sv.report
		}
		report.Post = sv.report
		fixedLast = false
		if sv.report.Clean() {
			report.Elapsed = time.Since(start)
			return report, nil
		}
		ps, err := r.fixPass(ctx, sv)
		report.Passes++
		report.ReplicasRestored += ps.replicasRestored
		report.BytesRestored += ps.bytesRestored
		report.RefsRelocated += ps.refsRelocated
		report.CorruptDropped += ps.corruptDropped
		report.PinnedRestores += ps.pinnedRestores
		r.mu.Lock()
		r.stats.ReplicasRestored += ps.replicasRestored
		r.stats.BytesRestored += ps.bytesRestored
		r.stats.RefsRelocated += ps.refsRelocated
		r.stats.CorruptDropped += ps.corruptDropped
		r.stats.PinnedRestores += ps.pinnedRestores
		r.mu.Unlock()
		r.reg.Counter("repair_replicas_restored_total").Add(uint64(ps.replicasRestored))
		r.reg.Counter("repair_bytes_restored_total").Add(ps.bytesRestored)
		r.reg.Counter("repair_refs_relocated_total").Add(ps.refsRelocated)
		r.reg.Counter("repair_corrupt_dropped_total").Add(uint64(ps.corruptDropped))
		if err != nil {
			report.Elapsed = time.Since(start)
			return report, err
		}
		if ps.attempted == 0 {
			break // nothing fixable (e.g. unrecoverable chunks only)
		}
		fixedLast = true
	}
	if fixedLast {
		// The last loop iteration fixed without re-surveying: refresh Post.
		if sv, err := r.runSurvey(ctx); err == nil {
			report.Post = sv.report
		}
	}
	report.Elapsed = time.Since(start)
	return report, nil
}

// fixPass plans and executes one round of fixes against the survey.
func (r *Repairer) fixPass(ctx context.Context, sv *survey) (passStats, error) {
	var ps passStats
	if r.client.Dedup {
		return r.fixDedup(ctx, sv)
	}
	// Placed chunks carry no content fingerprints and no reference counts:
	// the fix is a plain copy of a surviving body to the ranked targets. A
	// drain-resident copy is deleted once the chunk is fully replicated on
	// active providers — copy on one pass, delete on the next, so the
	// draining replica is never destroyed before its replacements exist.
	installs := make(map[string][]*install)
	for _, key := range sv.order {
		cs := sv.chunks[key]
		goodActive := cs.goodOn(sv.activeSet)
		if len(cs.good) == 0 || sv.want < 1 {
			// No surviving replica to copy from — or no active provider to
			// copy to (want == 0, e.g. the last active provider is the one
			// draining): never touch what exists, and above all never
			// delete a drain-resident copy that has no replacement.
			continue
		}
		if len(goodActive) >= sv.want {
			for _, p := range cs.good {
				if sv.draining[p] && !sv.dead[p] {
					if err := r.client.DeleteChunkAt(ctx, p, cs.key); err == nil {
						ps.attempted++
					}
				}
			}
			continue
		}
		planned := 0
		for _, p := range blobseer.PlacementRanked(cs.key, sv.active) {
			if len(goodActive)+planned >= sv.want {
				break
			}
			if sv.dead[p] || slices.Contains(cs.good, p) {
				continue
			}
			installs[p] = append(installs[p], &install{cs: cs, needBody: true})
			planned++
			ps.attempted++
		}
	}
	r.fetchBodies(ctx, sv, installs)
	var fixMu sync.Mutex
	r.forEachInstallProvider(installs, func(addr string, ins []*install) {
		var keys []chunkstore.Key
		var bodies [][]byte
		for _, in := range ins {
			if in.body == nil {
				continue
			}
			keys = append(keys, in.cs.key)
			bodies = append(bodies, in.body)
		}
		if len(keys) == 0 {
			return
		}
		if err := r.client.StoreChunkReplicas(ctx, addr, keys, bodies); err != nil {
			return // the next pass plans around the dead provider
		}
		fixMu.Lock()
		ps.replicasRestored += len(keys)
		for _, b := range bodies {
			ps.bytesRestored += uint64(len(b))
		}
		fixMu.Unlock()
	})
	return ps, nil
}

// fixDedup is the content-addressed fix: destroy corrupt replicas, relocate
// the write-event references off every bad provider with the precount /
// pre-install / apply / settle protocol described in the package comment,
// and restore clone-pinned chunks with a pinned reference.
func (r *Repairer) fixDedup(ctx context.Context, sv *survey) (passStats, error) {
	var ps passStats

	// Precount: how many write-event references name each bad candidate.
	type badKey struct {
		key  chunkstore.Key
		addr string
	}
	var precount []blobseer.Relocation
	var precountKeys []badKey
	bads := make(map[chunkstore.Key][]string)
	for _, key := range sv.order {
		cs := sv.chunks[key]
		if !cs.hasFP {
			continue // no verified body anywhere: nothing to plan from
		}
		goodActive := cs.goodOn(sv.activeSet)
		for _, p := range cs.candidates {
			if slices.Contains(goodActive, p) {
				continue
			}
			bads[key] = append(bads[key], p)
			precount = append(precount, blobseer.Relocation{FP: cs.fp, From: p})
			precountKeys = append(precountKeys, badKey{key: key, addr: p})
		}
	}
	counts0 := make(map[badKey]uint64, len(precount))
	if len(precount) > 0 {
		counts, err := r.client.RelocateWrites(ctx, false, precount)
		if err != nil {
			return ps, fmt.Errorf("repair: precount relocations: %w", err)
		}
		for i, c := range counts {
			counts0[precountKeys[i]] = c
		}
	}

	// Plan: per chunk, destroy corrupt replicas, assign each ref-bearing bad
	// provider a new home (fresh ranked targets first, then an existing good
	// active replica), and top up to the replication factor with pinned
	// restores when no references exist to move (clone-pinned content).
	var moves []*move
	installs := make(map[string][]*install)
	byTarget := make(map[badKey]*install) // (chunk, to) -> shared install
	type deletion struct {
		cs   *chunkState
		addr string
	}
	var deletes []deletion
	for _, key := range sv.order {
		cs := sv.chunks[key]
		if !cs.hasFP {
			continue
		}
		goodActive := cs.goodOn(sv.activeSet)
		var refBads []string
		for _, p := range bads[key] {
			if counts0[badKey{key: key, addr: p}] > 0 {
				refBads = append(refBads, p)
			}
		}
		for _, p := range cs.corrupt {
			if !sv.dead[p] {
				deletes = append(deletes, deletion{cs: cs, addr: p})
				ps.attempted++
			}
		}
		if len(refBads) == 0 && len(goodActive) >= sv.want {
			continue // healthy (modulo the corrupt deletions above)
		}
		// Fresh targets: ranked active providers holding nothing, excluding
		// ref-bearing bads (relocating a provider's references onto itself
		// would be a no-op move).
		var targets []string
		for _, p := range blobseer.PlacementRanked(cs.key, sv.active) {
			if len(goodActive)+len(targets) >= sv.want {
				break
			}
			if sv.dead[p] || slices.Contains(cs.good, p) || slices.Contains(refBads, p) {
				continue
			}
			targets = append(targets, p)
		}
		addInstall := func(to string, refs uint64, needBody bool) *install {
			k := badKey{key: key, addr: to}
			in := byTarget[k]
			if in == nil {
				in = &install{cs: cs, needBody: needBody}
				byTarget[k] = in
				installs[to] = append(installs[to], in)
			}
			in.refs += refs
			return in
		}
		nextTarget := 0
		var assigned []string // targets that received a move's references
		for _, from := range refBads {
			var to string
			switch {
			case nextTarget < len(targets):
				to = targets[nextTarget]
				nextTarget++
				assigned = append(assigned, to)
			case len(goodActive) > 0:
				to = goodActive[0]
			case len(assigned) > 0:
				to = assigned[0]
			default:
				continue // nowhere safe to move the references this pass
			}
			n := counts0[badKey{key: key, addr: from}]
			moves = append(moves, &move{cs: cs, from: from, to: to, pre: n})
			addInstall(to, n, !slices.Contains(cs.good, to))
			ps.attempted++
		}
		// Replication still short with every reference accounted for: the
		// content is kept alive by a clone pin whose events were dropped.
		// Restore it with one pinned reference per missing replica.
		for nextTarget < len(targets) {
			addInstall(targets[nextTarget], 1, true)
			nextTarget++
			ps.attempted++
			ps.pinnedRestores++
		}
	}

	// Destroy corrupt replicas before installing anything: the delete drops
	// the provider's body and dedup index entry together, so a corrupt
	// provider can then serve as a fresh target.
	for _, d := range deletes {
		if err := r.client.DeleteChunkAt(ctx, d.addr, d.cs.key); err == nil {
			ps.corruptDropped++
		}
	}

	// Fetch the bodies the installs need, one batched stream per source.
	r.fetchBodies(ctx, sv, installs)

	// Pre-install the references (and bodies) at every new home.
	failedAt := make(map[string]bool)
	var fixMu sync.Mutex
	r.forEachInstallProvider(installs, func(addr string, ins []*install) {
		var reps []blobseer.CasReplica
		for _, in := range ins {
			if in.refs == 0 || (in.needBody && in.body == nil) {
				continue // body fetch failed: the next pass retries
			}
			reps = append(reps, blobseer.CasReplica{FP: in.cs.fp, Body: in.body, Refs: in.refs})
		}
		if len(reps) == 0 {
			return
		}
		if err := r.client.StoreCasReplicas(ctx, addr, reps); err != nil {
			fixMu.Lock()
			failedAt[addr] = true
			fixMu.Unlock()
			return
		}
		fixMu.Lock()
		for _, rep := range reps {
			if rep.Body != nil {
				ps.replicasRestored++
				ps.bytesRestored += uint64(len(rep.Body))
			}
		}
		fixMu.Unlock()
	})

	// Commit the relocations whose new home took its references, and settle
	// the difference against events that retired or published meanwhile.
	var applied []*move
	var relocs []blobseer.Relocation
	for _, mv := range moves {
		in := byTarget[badKey{key: mv.cs.key, addr: mv.to}]
		if failedAt[mv.to] || (in != nil && in.needBody && in.body == nil) {
			continue // home never materialized: references stay put this pass
		}
		applied = append(applied, mv)
		relocs = append(relocs, blobseer.Relocation{FP: mv.cs.fp, From: mv.from, To: mv.to})
	}
	if len(applied) > 0 {
		counts, err := r.client.RelocateWrites(ctx, true, relocs)
		if err != nil {
			return ps, fmt.Errorf("repair: apply relocations: %w", err)
		}
		for i, mv := range applied {
			mv.post = counts[i]
			ps.refsRelocated += mv.post
		}
	}
	for _, mv := range applied {
		switch {
		case mv.pre > mv.post:
			// Events retired while the fix ran: their releases went to the
			// old provider (a no-op when it is dead or already empty), so
			// return the surplus pre-installed references.
			r.client.ReleaseCasRefsAt(ctx, mv.to, mv.cs.fp, mv.pre-mv.post) //nolint:errcheck // best effort; sweep reconciles
		case mv.post > mv.pre:
			// Events published naming the old provider while the fix ran
			// (a commit that started before a drain): their references are
			// settled at the new home like the rest.
			if err := r.client.StoreCasReplicas(ctx, mv.to, []blobseer.CasReplica{{FP: mv.cs.fp, Refs: mv.post - mv.pre}}); err != nil {
				continue
			}
		}
		// The old provider's references are now orphaned: release them when
		// it is still reachable (a draining provider), reclaiming the body
		// once the last one drops. Dead providers took theirs with them.
		if mv.from != mv.to && !sv.dead[mv.from] {
			r.client.ReleaseCasRefsAt(ctx, mv.from, mv.cs.fp, mv.post) //nolint:errcheck // best effort; sweep reconciles
		}
	}
	return ps, nil
}

// fetchBodies fills the body of every install that needs one, fetching from
// a surviving good replica with one batched stream per source provider and
// re-verifying the bytes (dedup mode) before they are re-uploaded.
func (r *Repairer) fetchBodies(ctx context.Context, sv *survey, installs map[string][]*install) {
	bySource := make(map[string][]*install)
	for _, ins := range installs {
		for _, in := range ins {
			if !in.needBody {
				continue
			}
			src := ""
			for _, p := range in.cs.good {
				if sv.dead[p] {
					continue
				}
				src = p
				if sv.activeSet[p] {
					break // prefer an active source over a draining one
				}
			}
			if src == "" {
				continue // no reachable source: the next pass retries
			}
			bySource[src] = append(bySource[src], in)
		}
	}
	r.forEachAddr(keysOf(bySource), func(addr string) {
		ins := bySource[addr]
		keys := make([]chunkstore.Key, len(ins))
		sizes := make([]int, len(ins))
		for i, in := range ins {
			keys[i] = in.cs.key
			sizes[i] = in.cs.size
		}
		bodies, err := r.client.FetchChunksFrom(ctx, addr, keys, sizes)
		if err != nil {
			return // source died: the next pass re-plans
		}
		for i, in := range ins {
			body := bodies[i]
			if body == nil {
				continue
			}
			if r.client.Dedup && cas.Sum(body) != in.cs.fp {
				continue // source rotted under us: the next pass re-plans
			}
			in.body = body
		}
	})
}

// forEachInstallProvider fans installs out one provider at a time on bounded
// concurrent streams.
func (r *Repairer) forEachInstallProvider(installs map[string][]*install, fn func(addr string, ins []*install)) {
	r.forEachAddr(keysOf(installs), func(addr string) {
		fn(addr, installs[addr])
	})
}

// Drain decommissions one provider: mark it DRAINING (out of placement, still
// readable), repair until no live chunk resides on it, then retire it from
// the membership. A provider that dies mid-drain degrades into the ordinary
// dead-provider repair — its replicas are restored from the survivors — and
// is still retired. Returns the accumulated repair report.
func (r *Repairer) Drain(ctx context.Context, addr string) (RepairReport, error) {
	if err := r.client.DrainProvider(ctx, addr); err != nil {
		return RepairReport{}, err
	}
	var report RepairReport
	start := time.Now()
	for pass := 0; pass < r.drainPasses; pass++ {
		rep, err := r.Repair(ctx)
		if pass == 0 {
			report.Pre = rep.Pre
		}
		report.Post = rep.Post
		report.Passes += rep.Passes
		report.ReplicasRestored += rep.ReplicasRestored
		report.BytesRestored += rep.BytesRestored
		report.RefsRelocated += rep.RefsRelocated
		report.CorruptDropped += rep.CorruptDropped
		report.PinnedRestores += rep.PinnedRestores
		if err != nil {
			report.Elapsed = time.Since(start)
			return report, err
		}
		if rep.Post.Clean() {
			break
		}
	}
	report.Elapsed = time.Since(start)
	if !report.Post.Clean() {
		return report, fmt.Errorf("repair: drain of %s did not converge: %s", addr, report.Post)
	}
	if err := r.client.RetireProvider(ctx, addr); err != nil {
		return report, err
	}
	r.mu.Lock()
	r.stats.Drains++
	r.mu.Unlock()
	r.reg.Counter("repair_drains_total").Inc()
	return report, nil
}
