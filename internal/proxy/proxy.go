// Package proxy implements the checkpointing proxy: the per-compute-node
// service that VM instances contact to request snapshots of their own
// virtual disk.
//
// As in the paper, the proxy is not globally accessible — it only accepts
// requests from instances registered as locally hosted, authenticated by a
// per-VM token. On a checkpoint request it (1) suspends the instance,
// (2) clones the base image into a checkpoint image if this is the first
// checkpoint, (3) captures the locally accumulated modifications (the local
// copy-on-write clone) and (4) resumes the instance — so VM downtime covers
// only suspend + clone + local capture, independent of the dirty-set size.
// The commit of the captured chunks to the repository proceeds in the
// background after resume; the response carries an asynchronous checkpoint
// handle that WAIT or POLL resolve to the published snapshot once the
// upload completes.
//
// For maximum compatibility the protocol is a simple REST-ful text exchange:
//
//	request:  CHECKPOINT <vm-id> <token>
//	response: OK <handle> | ERR <message>
//
//	request:  WAIT <vm-id> <token> <handle>
//	response: OK <checkpoint-blob> <snapshot-version> | ERR <message>
//
//	request:  POLL <vm-id> <token> <handle>
//	response: OK PENDING | OK LOCAL <seq> | OK DONE <checkpoint-blob> <snapshot-version> | ERR <message>
//
//	request:  WAITLOCAL <vm-id> <token> <handle>
//	response: OK LOCAL <seq> | ERR <message>
//
//	request:  STATUS <vm-id> <token>
//	response: OK <state> <dirty-chunks> <pending-commits> [staged=<ckpts>/<bytes>] | ERR <message>
//
//	request:  PREFETCH <vm-id> <token> <idx,idx,...>
//	response: OK <count> | ERR <message>
//
//	request:  PING
//	response: OK PONG <registered-instances>
//
//	request:  METRICS [<offset>]
//	response: OK v1\n<exposition chunk> | OK v1 MORE <next-offset>\n<exposition chunk>
//
//	request:  TRACE <trace-hex>
//	response: OK v1\n<span lines>
//
//	request:  FLIGHT
//	response: OK v1\n<span lines of the flight-recorder ring>
//
// PREFETCH pages the listed chunks into the instance's local mirror cache
// ahead of demand (the paper's adaptive prefetching on restart): the module
// groups them into contiguous runs and the repository client stripes each
// run across data providers in batched frames.
//
// PING is the liveness probe of the failure detector (internal/supervisor):
// it needs no VM id or token — the round trip itself is the health signal —
// and it touches no instance, so probing never perturbs a checkpoint.
//
// METRICS, TRACE and FLIGHT are tokenless introspection verbs shared by
// every text endpoint (see obs.Registry.TextReply): an exposition larger
// than one frame is chunked via MORE continuations, TRACE returns the spans
// this process recorded for one trace id, and FLIGHT dumps the always-on
// flight-recorder ring of recent spans.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/localtier"
	"blobcr/internal/mirror"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

// Errors surfaced to callers.
var (
	ErrUnknownVM     = errors.New("proxy: unknown VM instance")
	ErrAuth          = errors.New("proxy: authentication failed")
	ErrProto         = errors.New("proxy: malformed request")
	ErrUnknownHandle = errors.New("proxy: unknown checkpoint handle")
)

// target is one locally hosted, checkpointable VM.
type target struct {
	inst   *vm.Instance
	mirror *mirror.Module
	token  string

	mu         sync.Mutex
	nextHandle uint64
	pending    map[uint64]*mirror.PendingCommit
}

// DefaultAdmitTimeout bounds how long a CHECKPOINT request may hold the VM
// suspended waiting for a commit-pipeline slot. When the repository wedges
// and the pipeline is full, the request fails (and the VM resumes) after
// this long instead of staying suspended indefinitely — the request context
// alone cannot be relied on for this, because over TCP the handler receives
// the server's lifetime context, not the caller's.
const DefaultAdmitTimeout = 10 * time.Second

// Proxy is one compute node's checkpointing proxy.
type Proxy struct {
	// AdmitTimeout overrides DefaultAdmitTimeout when positive.
	AdmitTimeout time.Duration

	// Obs is the metrics registry the proxy records into and the METRICS
	// verb exposes. Nil means obs.Default.
	Obs *obs.Registry

	// Multilevel checkpointing (all optional; see stage.go). Stage is the
	// node-local write-back tier: when set, registered modules stage their
	// captures into it before the background drain publishes them remotely.
	// PartnerAddr names the neighbor proxy that keeps a replica of every
	// staged capture (empty disables partner replication); Net carries the
	// partner frames. Repo is the repository client used to drain a dead
	// neighbor's replicas on its behalf (DRAINFOR).
	Stage       *localtier.Stage
	PartnerAddr string
	Net         transport.Network
	Repo        *blobseer.Client

	mu      sync.Mutex
	targets map[string]*target
}

// New returns an empty proxy.
func New() *Proxy {
	return &Proxy{targets: make(map[string]*target)}
}

func (p *Proxy) registry() *obs.Registry {
	if p.Obs != nil {
		return p.Obs
	}
	return obs.Default
}

func (p *Proxy) admitTimeout() time.Duration {
	if p.AdmitTimeout > 0 {
		return p.AdmitTimeout
	}
	return DefaultAdmitTimeout
}

// Register makes a locally hosted instance checkpointable under the given
// authentication token.
func (p *Proxy) Register(vmID, token string, inst *vm.Instance, m *mirror.Module) {
	if p.Stage != nil {
		// A previous incarnation's staged chain is stale for this module.
		p.Stage.Drop(vmID)
		m.AttachStage(p.stageConfigFor(vmID))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.targets[vmID] = &target{inst: inst, mirror: m, token: token, pending: make(map[uint64]*mirror.PendingCommit)}
}

// Unregister removes an instance (it terminated or migrated away).
func (p *Proxy) Unregister(vmID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.targets, vmID)
}

// Serve binds the proxy to addr on n.
func (p *Proxy) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, p.handle)
}

func (p *Proxy) lookup(vmID, token string) (*target, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.targets[vmID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVM, vmID)
	}
	if t.token != token {
		return nil, fmt.Errorf("%w: %s", ErrAuth, vmID)
	}
	return t, nil
}

func (p *Proxy) handle(ctx context.Context, req []byte) ([]byte, error) {
	// Binary frames (first byte ≥ 0x80) are the partner-replication ops of
	// the local tier; text verbs start with ASCII letters.
	if len(req) > 0 && req[0] >= 0x80 {
		return p.handleStageFrame(ctx, req)
	}
	fields := strings.Fields(string(req))
	if len(fields) == 1 && fields[0] == "PING" {
		p.mu.Lock()
		n := len(p.targets)
		p.mu.Unlock()
		return []byte(fmt.Sprintf("OK PONG %d", n)), nil
	}
	// METRICS, TRACE and FLIGHT are tokenless like PING: they expose
	// aggregate telemetry, not any VM's data, and dashboards and trace
	// collectors must work without per-VM credentials.
	if resp, handled := p.registry().TextReply(fields); handled {
		return resp, nil
	}
	if len(fields) == 0 {
		return []byte("ERR malformed request"), nil
	}
	// The drain-control verbs are node-level and tokenless like PING; all of
	// them require a local tier.
	switch fields[0] {
	case "BACKLOG", "DRAIN-NOW", "DRAINFOR":
		if p.Stage == nil {
			return []byte("ERR no local tier attached"), nil
		}
		switch {
		case fields[0] == "BACKLOG" && len(fields) == 1:
			return p.backlogReply(), nil
		case fields[0] == "DRAIN-NOW" && len(fields) == 1:
			n, err := p.drainAllNow(ctx)
			if err != nil {
				return []byte("ERR " + err.Error()), nil
			}
			return []byte(fmt.Sprintf("OK %d", n)), nil
		case fields[0] == "DRAINFOR" && len(fields) == 3:
			seq, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return []byte("ERR bad sequence " + fields[2]), nil
			}
			ref, err := p.drainFor(ctx, fields[1], seq)
			if err != nil {
				return []byte("ERR " + err.Error()), nil
			}
			return []byte(fmt.Sprintf("OK %d %d", ref.Blob, ref.Version)), nil
		default:
			return []byte("ERR malformed request"), nil
		}
	}
	if len(fields) < 3 {
		return []byte("ERR malformed request"), nil
	}
	verb, vmID, token := fields[0], fields[1], fields[2]
	t, err := p.lookup(vmID, token)
	if err != nil {
		return []byte("ERR " + err.Error()), nil
	}
	switch verb {
	case "CHECKPOINT":
		if len(fields) != 3 {
			return []byte("ERR malformed request"), nil
		}
		handle, err := p.checkpoint(ctx, t)
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		return []byte(fmt.Sprintf("OK %d", handle)), nil
	case "WAIT":
		if len(fields) != 4 {
			return []byte("ERR malformed request"), nil
		}
		ref, err := p.wait(ctx, t, fields[3])
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		return []byte(fmt.Sprintf("OK %d %d", ref.Blob, ref.Version)), nil
	case "POLL":
		if len(fields) != 4 {
			return []byte("ERR malformed request"), nil
		}
		pc, err := t.commit(fields[3])
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		ref, done, err := p.poll(t, fields[3])
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		if !done {
			// Two-watermark state: a capture that reached the local tier is
			// reported LOCAL (locally safe, not yet globally durable).
			if pc.LocallySafe() {
				return []byte(fmt.Sprintf("OK LOCAL %d", pc.Seq())), nil
			}
			return []byte("OK PENDING"), nil
		}
		return []byte(fmt.Sprintf("OK DONE %d %d", ref.Blob, ref.Version)), nil
	case "WAITLOCAL":
		if len(fields) != 4 {
			return []byte("ERR malformed request"), nil
		}
		pc, err := t.commit(fields[3])
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		if err := pc.WaitLocallySafe(ctx); err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		return []byte(fmt.Sprintf("OK LOCAL %d", pc.Seq())), nil
	case "STATUS":
		if len(fields) != 3 {
			return []byte("ERR malformed request"), nil
		}
		resp := fmt.Sprintf("OK %s %d %d", t.inst.State(), t.mirror.DirtyChunks(), t.mirror.PendingCommits())
		if p.Stage != nil {
			b := p.Stage.OwnerBacklog(vmID)
			resp += fmt.Sprintf(" staged=%d/%d", b.Checkpoints, b.Bytes)
		}
		return []byte(resp), nil
	case "PREFETCH":
		if len(fields) != 4 {
			return []byte("ERR malformed request"), nil
		}
		indices, err := parseIndices(fields[3])
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		if err := t.mirror.Prefetch(ctx, indices); err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		return []byte(fmt.Sprintf("OK %d", len(indices))), nil
	default:
		return []byte("ERR unknown verb " + verb), nil
	}
}

// parseIndices decodes a PREFETCH request's comma-separated chunk list.
func parseIndices(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		if p == "" {
			continue
		}
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad chunk index %q", ErrProto, p)
		}
		out = append(out, v)
	}
	return out, nil
}

// checkpoint performs the suspend-clone-capture-resume sequence and returns
// the handle of the in-flight commit. The VM resumes before any chunk is
// uploaded: only the local capture happens under suspend.
func (p *Proxy) checkpoint(ctx context.Context, t *target) (handle uint64, err error) {
	reg := p.registry()
	// The handler span parents under the caller's RPC span via the wire's
	// trace-context header; the capture and the detached upload stages derive
	// from its context, so an assembled trace shows the whole checkpoint
	// under this node's handler.
	ctx, sp := obs.StartSpan(obs.HandlerContext(ctx, reg), "handler/CHECKPOINT")
	defer sp.End()
	sw := obs.StartTimer()
	if err := t.inst.Suspend(); err != nil {
		return 0, err
	}
	// Resume whatever happens — the paper's proxy resumes the instance
	// regardless and reports the outcome. The suspend window — suspend to
	// resume, the paper's headline downtime number — is observed on the way
	// out; the capture span recorded inside it tells where the window went.
	defer func() {
		if rerr := t.inst.Resume(); rerr != nil && err == nil {
			err = rerr
		}
		ns := sw.ElapsedNanos()
		reg.Histogram("proxy_suspend_ns").Observe(ns)
		reg.Gauge("proxy_suspend_last_ns").Set(int64(ns))
		if err != nil {
			reg.Counter("proxy_checkpoint_failures_total").Inc()
		} else {
			reg.Counter("proxy_checkpoints_total").Inc()
		}
	}()
	// Everything that runs while the VM is suspended — the CLONE round trip
	// and admission into the bounded pipeline — is bounded by a deadline on
	// top of the request context: if the repository or the pipeline wedges,
	// the VM must resume after at most the admit timeout instead of sitting
	// suspended behind an unbounded wait. (Over TCP the handler context is
	// the server's, so the deadline — not caller cancellation — is what
	// guarantees the bound.) The upload itself is detached and unaffected.
	admitCtx, cancel := context.WithTimeout(ctx, p.admitTimeout())
	defer cancel()
	if err := t.mirror.Clone(admitCtx); err != nil {
		return 0, err
	}
	pc, err := t.mirror.CommitAsyncDetached(admitCtx)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.nextHandle++
	handle = t.nextHandle
	t.pending[handle] = pc
	t.pruneHandlesLocked()
	t.mu.Unlock()
	return handle, nil
}

// maxRetainedHandles bounds target.pending in a long-running proxy:
// completed commits beyond this many are dropped oldest-first (in-flight
// handles are never dropped). Clients wait or poll a handle promptly after
// taking the checkpoint, so a small retention window is plenty.
const maxRetainedHandles = 64

// pruneHandlesLocked evicts the oldest completed handles past the retention
// bound. Caller holds t.mu.
func (t *target) pruneHandlesLocked() {
	if len(t.pending) <= maxRetainedHandles {
		return
	}
	handles := make([]uint64, 0, len(t.pending))
	for h := range t.pending {
		handles = append(handles, h)
	}
	slices.Sort(handles)
	for _, h := range handles {
		if len(t.pending) <= maxRetainedHandles {
			break
		}
		select {
		case <-t.pending[h].Done():
			delete(t.pending, h)
		default:
		}
	}
}

func (t *target) commit(handleStr string) (*mirror.PendingCommit, error) {
	h, err := strconv.ParseUint(handleStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad handle %q", ErrProto, handleStr)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pc, ok := t.pending[h]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownHandle, h)
	}
	return pc, nil
}

// wait blocks until the commit behind handle completes, then returns the
// published snapshot.
func (p *Proxy) wait(ctx context.Context, t *target, handleStr string) (blobseer.SnapshotRef, error) {
	pc, err := t.commit(handleStr)
	if err != nil {
		return blobseer.SnapshotRef{}, err
	}
	return pc.Wait(ctx)
}

// poll reports the commit's state without blocking.
func (p *Proxy) poll(t *target, handleStr string) (blobseer.SnapshotRef, bool, error) {
	pc, err := t.commit(handleStr)
	if err != nil {
		return blobseer.SnapshotRef{}, false, err
	}
	select {
	case <-pc.Done():
		if err := pc.Err(); err != nil {
			return blobseer.SnapshotRef{}, true, err
		}
		ref, _ := pc.Ref()
		return ref, true, nil
	default:
		return blobseer.SnapshotRef{}, false, nil
	}
}

// Client is the guest-side stub that VM instances (or the modified MPI
// library inside them) use to talk to their local proxy.
type Client struct {
	Net   transport.Network
	Addr  string // the co-located proxy's address
	VMID  string
	Token string
}

// RequestCheckpointAsync asks the proxy to snapshot this instance's disk.
// It returns as soon as the instance has resumed: the commit proceeds in
// the background, identified by the returned handle, which WaitCheckpoint
// or PollCheckpoint resolve to the published snapshot.
func (c *Client) RequestCheckpointAsync(ctx context.Context) (handle uint64, err error) {
	ctx, sp := obs.StartSpan(ctx, "rpc/CHECKPOINT")
	defer sp.End()
	resp, err := c.Net.Call(ctx, c.Addr, []byte(fmt.Sprintf("CHECKPOINT %s %s", c.VMID, c.Token)))
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(resp))
	if len(fields) < 1 || fields[0] != "OK" {
		return 0, errorFrom(resp)
	}
	if len(fields) != 2 {
		return 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	h, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return h, nil
}

// WaitCheckpoint blocks until the checkpoint behind handle has been
// committed to the repository and returns the published snapshot.
func (c *Client) WaitCheckpoint(ctx context.Context, handle uint64) (blobseer.SnapshotRef, error) {
	resp, err := c.Net.Call(ctx, c.Addr, []byte(fmt.Sprintf("WAIT %s %s %d", c.VMID, c.Token, handle)))
	if err != nil {
		return blobseer.SnapshotRef{}, err
	}
	return parseRef(resp)
}

// PollCheckpoint reports without blocking whether the checkpoint behind
// handle has completed, and if so returns the published snapshot.
func (c *Client) PollCheckpoint(ctx context.Context, handle uint64) (ref blobseer.SnapshotRef, done bool, err error) {
	resp, err := c.Net.Call(ctx, c.Addr, []byte(fmt.Sprintf("POLL %s %s %d", c.VMID, c.Token, handle)))
	if err != nil {
		return blobseer.SnapshotRef{}, false, err
	}
	fields := strings.Fields(string(resp))
	if len(fields) < 1 || fields[0] != "OK" {
		return blobseer.SnapshotRef{}, false, errorFrom(resp)
	}
	switch {
	case len(fields) == 2 && fields[1] == "PENDING":
		return blobseer.SnapshotRef{}, false, nil
	case len(fields) == 3 && fields[1] == "LOCAL":
		// Locally safe but not yet globally durable: still pending from the
		// durability watermark's point of view.
		return blobseer.SnapshotRef{}, false, nil
	case len(fields) == 4 && fields[1] == "DONE":
		blob, err1 := strconv.ParseUint(fields[2], 10, 64)
		version, err2 := strconv.ParseUint(fields[3], 10, 64)
		if err1 != nil || err2 != nil {
			return blobseer.SnapshotRef{}, false, fmt.Errorf("%w: %q", ErrProto, resp)
		}
		return blobseer.SnapshotRef{Blob: blob, Version: version}, true, nil
	default:
		return blobseer.SnapshotRef{}, false, fmt.Errorf("%w: %q", ErrProto, resp)
	}
}

// RequestCheckpoint is the synchronous convenience wrapper: it requests the
// snapshot and waits for the background commit to publish. The instance
// itself still resumes as soon as the capture is done — only this caller
// blocks for the upload.
func (c *Client) RequestCheckpoint(ctx context.Context) (blobseer.SnapshotRef, error) {
	handle, err := c.RequestCheckpointAsync(ctx)
	if err != nil {
		return blobseer.SnapshotRef{}, err
	}
	return c.WaitCheckpoint(ctx, handle)
}

// Status returns the instance state, dirty chunk count and in-flight commit
// count as the proxy sees them.
func (c *Client) Status(ctx context.Context) (state string, dirtyChunks, pendingCommits int, err error) {
	resp, err := c.Net.Call(ctx, c.Addr, []byte(fmt.Sprintf("STATUS %s %s", c.VMID, c.Token)))
	if err != nil {
		return "", 0, 0, err
	}
	fields := strings.Fields(string(resp))
	if len(fields) < 1 || fields[0] != "OK" {
		return "", 0, 0, errorFrom(resp)
	}
	// A proxy with a local tier appends staged-backlog fields; tolerate them.
	if len(fields) < 4 {
		return "", 0, 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	dirty, err1 := strconv.Atoi(fields[2])
	pending, err2 := strconv.Atoi(fields[3])
	if err1 != nil || err2 != nil {
		return "", 0, 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return fields[1], dirty, pending, nil
}

// Prefetch asks the proxy to page the given chunks of this instance's disk
// into the mirroring module's local cache ahead of demand — the restart
// path's adaptive prefetching, driven by another instance's access trace.
// The module groups the chunks into contiguous runs and the repository
// client stripes each run across the data providers in batched frames, so a
// large trace costs O(providers) round trips, not O(chunks).
func (c *Client) Prefetch(ctx context.Context, indices []uint64) error {
	if len(indices) == 0 {
		return nil
	}
	parts := make([]string, len(indices))
	for i, idx := range indices {
		parts[i] = strconv.FormatUint(idx, 10)
	}
	req := fmt.Sprintf("PREFETCH %s %s %s", c.VMID, c.Token, strings.Join(parts, ","))
	resp, err := c.Net.Call(ctx, c.Addr, []byte(req))
	if err != nil {
		return err
	}
	fields := strings.Fields(string(resp))
	if len(fields) < 1 || fields[0] != "OK" {
		return errorFrom(resp)
	}
	return nil
}

// Ping probes the proxy at addr for liveness and returns how many instances
// it hosts. No VM id or token is needed: the failure detector pings nodes,
// not instances. An unreachable or partitioned proxy returns the transport
// error.
func Ping(ctx context.Context, n transport.Network, addr string) (instances int, err error) {
	resp, err := n.Call(ctx, addr, []byte("PING"))
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(resp))
	if len(fields) != 3 || fields[0] != "OK" || fields[1] != "PONG" {
		return 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	k, err := strconv.Atoi(fields[2])
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return k, nil
}

func parseRef(resp []byte) (blobseer.SnapshotRef, error) {
	fields := strings.Fields(string(resp))
	if len(fields) < 1 || fields[0] != "OK" {
		return blobseer.SnapshotRef{}, errorFrom(resp)
	}
	if len(fields) != 3 {
		return blobseer.SnapshotRef{}, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	blob, err1 := strconv.ParseUint(fields[1], 10, 64)
	version, err2 := strconv.ParseUint(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		return blobseer.SnapshotRef{}, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return blobseer.SnapshotRef{Blob: blob, Version: version}, nil
}

func errorFrom(resp []byte) error {
	s := string(resp)
	if strings.HasPrefix(s, "ERR ") {
		return errors.New(s[4:])
	}
	return fmt.Errorf("%w: %q", ErrProto, s)
}
