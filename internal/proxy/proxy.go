// Package proxy implements the checkpointing proxy: the per-compute-node
// service that VM instances contact to request snapshots of their own
// virtual disk.
//
// As in the paper, the proxy is not globally accessible — it only accepts
// requests from instances registered as locally hosted, authenticated by a
// per-VM token. On a checkpoint request it (1) suspends the instance,
// (2) clones the base image into a checkpoint image if this is the first
// checkpoint, (3) commits the locally accumulated modifications as a new
// incremental snapshot, and (4) resumes the instance — resuming regardless
// of success, and reporting the outcome to the caller.
//
// For maximum compatibility the protocol is a simple REST-ful text exchange:
//
//	request:  CHECKPOINT <vm-id> <token>
//	response: OK <checkpoint-blob> <snapshot-version> | ERR <message>
//
//	request:  STATUS <vm-id> <token>
//	response: OK <state> <dirty-chunks> | ERR <message>
package proxy

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"blobcr/internal/mirror"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

// Errors surfaced to callers.
var (
	ErrUnknownVM = errors.New("proxy: unknown VM instance")
	ErrAuth      = errors.New("proxy: authentication failed")
	ErrProto     = errors.New("proxy: malformed request")
)

// target is one locally hosted, checkpointable VM.
type target struct {
	inst   *vm.Instance
	mirror *mirror.Module
	token  string
}

// Proxy is one compute node's checkpointing proxy.
type Proxy struct {
	mu      sync.Mutex
	targets map[string]*target
}

// New returns an empty proxy.
func New() *Proxy {
	return &Proxy{targets: make(map[string]*target)}
}

// Register makes a locally hosted instance checkpointable under the given
// authentication token.
func (p *Proxy) Register(vmID, token string, inst *vm.Instance, m *mirror.Module) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.targets[vmID] = &target{inst: inst, mirror: m, token: token}
}

// Unregister removes an instance (it terminated or migrated away).
func (p *Proxy) Unregister(vmID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.targets, vmID)
}

// Serve binds the proxy to addr on n.
func (p *Proxy) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, p.handle)
}

func (p *Proxy) lookup(vmID, token string) (*target, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.targets[vmID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVM, vmID)
	}
	if t.token != token {
		return nil, fmt.Errorf("%w: %s", ErrAuth, vmID)
	}
	return t, nil
}

func (p *Proxy) handle(req []byte) ([]byte, error) {
	fields := strings.Fields(string(req))
	if len(fields) != 3 {
		return []byte("ERR malformed request"), nil
	}
	verb, vmID, token := fields[0], fields[1], fields[2]
	t, err := p.lookup(vmID, token)
	if err != nil {
		return []byte("ERR " + err.Error()), nil
	}
	switch verb {
	case "CHECKPOINT":
		blob, version, err := p.checkpoint(t)
		if err != nil {
			return []byte("ERR " + err.Error()), nil
		}
		return []byte(fmt.Sprintf("OK %d %d", blob, version)), nil
	case "STATUS":
		return []byte(fmt.Sprintf("OK %s %d", t.inst.State(), t.mirror.DirtyChunks())), nil
	default:
		return []byte("ERR unknown verb " + verb), nil
	}
}

// checkpoint performs the suspend-clone-commit-resume sequence.
func (p *Proxy) checkpoint(t *target) (blob uint64, version uint64, err error) {
	if err := t.inst.Suspend(); err != nil {
		return 0, 0, err
	}
	// Resume whatever happens — the paper's proxy resumes the instance
	// regardless and reports the outcome.
	defer func() {
		if rerr := t.inst.Resume(); rerr != nil && err == nil {
			err = rerr
		}
	}()
	if err := t.mirror.Clone(); err != nil {
		return 0, 0, err
	}
	info, err := t.mirror.Commit()
	if err != nil {
		return 0, 0, err
	}
	b, _ := t.mirror.CheckpointImage()
	return b, info.Version, nil
}

// Client is the guest-side stub that VM instances (or the modified MPI
// library inside them) use to talk to their local proxy.
type Client struct {
	Net   transport.Network
	Addr  string // the co-located proxy's address
	VMID  string
	Token string
}

// RequestCheckpoint asks the proxy to snapshot this instance's disk and
// returns the checkpoint image id and the new snapshot version.
func (c *Client) RequestCheckpoint() (blob uint64, version uint64, err error) {
	resp, err := c.Net.Call(c.Addr, []byte(fmt.Sprintf("CHECKPOINT %s %s", c.VMID, c.Token)))
	if err != nil {
		return 0, 0, err
	}
	return parseOK2(resp)
}

// Status returns the instance state and dirty chunk count as the proxy
// sees them.
func (c *Client) Status() (state string, dirtyChunks int, err error) {
	resp, err := c.Net.Call(c.Addr, []byte(fmt.Sprintf("STATUS %s %s", c.VMID, c.Token)))
	if err != nil {
		return "", 0, err
	}
	fields := strings.Fields(string(resp))
	if len(fields) < 1 || fields[0] != "OK" {
		return "", 0, errorFrom(resp)
	}
	if len(fields) != 3 {
		return "", 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil {
		return "", 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return fields[1], n, nil
}

func parseOK2(resp []byte) (uint64, uint64, error) {
	fields := strings.Fields(string(resp))
	if len(fields) < 1 || fields[0] != "OK" {
		return 0, 0, errorFrom(resp)
	}
	if len(fields) != 3 {
		return 0, 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	a, err1 := strconv.ParseUint(fields[1], 10, 64)
	b, err2 := strconv.ParseUint(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return a, b, nil
}

func errorFrom(resp []byte) error {
	s := string(resp)
	if strings.HasPrefix(s, "ERR ") {
		return errors.New(s[4:])
	}
	return fmt.Errorf("%w: %q", ErrProto, s)
}
