// Multilevel-checkpointing extension of the checkpointing proxy: the
// node-local write-back tier, partner replication, and the drain-control
// verbs.
//
// With a Stage attached (Proxy.Stage), every registered module stages its
// captures into the local tier and — when PartnerAddr names a neighbor proxy
// — replicates each capture there before acknowledging it *locally safe*.
// The background drain then publishes staged captures into the remote
// repository; only that publish makes a checkpoint *globally durable*.
//
// Partner replication uses two binary frames on the proxy port (first byte
// ≥ 0x80, so they cannot collide with the ASCII text verbs):
//
//	stage-put  0xD0: owner, seq, base ref, size, chunk size, chunks
//	stage-rel  0xD1: owner, seq, published ref
//
// Drain control is text, tokenless like PING — node-level operations issued
// by the supervisor or an operator, not by a guest:
//
//	request:  WAITLOCAL <vm-id> <token> <handle>
//	response: OK LOCAL <seq> | ERR <message>
//
//	request:  BACKLOG
//	response: OK own=<ckpts>/<chunks>/<bytes> partner=<ckpts>/<chunks>/<bytes>
//
//	request:  DRAIN-NOW
//	response: OK <modules-drained> | ERR <message>
//
//	request:  DRAINFOR <owner> <seq>
//	response: OK <checkpoint-blob> <snapshot-version> | ERR <message>
//
// DRAIN-NOW is the preemption path: a node that received its spot notice
// flushes every hosted module's staged captures to the remote plane inside
// the grace window. DRAINFOR is the repair path: after a node dies, the
// supervisor asks its partner to publish the dead node's replicated captures
// up to the given sequence on its behalf, so a locally-safe checkpoint
// survives a single node loss.
package proxy

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"blobcr/internal/blobseer"
	"blobcr/internal/localtier"
	"blobcr/internal/mirror"
	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// Binary stage frame op codes (proxy port; distinct from text verbs).
const (
	opStagePut     = 0xD0
	opStageRelease = 0xD1
)

// handleStageFrame dispatches the binary partner-replication frames.
func (p *Proxy) handleStageFrame(ctx context.Context, req []byte) ([]byte, error) {
	if p.Stage == nil {
		return nil, fmt.Errorf("proxy: no local tier attached")
	}
	r := wire.NewReader(req)
	switch op := r.U8(); op {
	case opStagePut:
		owner := r.String()
		seq := r.U64()
		base := blobseer.SnapshotRef{Blob: r.U64(), Version: r.U64()}
		size := r.U64()
		chunkSize := r.U64()
		n := int(r.U32())
		writes := make(map[uint64][]byte, n)
		for i := 0; i < n; i++ {
			idx := r.U64()
			writes[idx] = r.BytesCopy()
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("proxy: stage-put: %w", err)
		}
		if _, err := p.Stage.Put(owner, seq, base, size, chunkSize, writes, true); err != nil {
			return nil, err
		}
		return []byte("OK"), nil
	case opStageRelease:
		owner := r.String()
		seq := r.U64()
		ref := blobseer.SnapshotRef{Blob: r.U64(), Version: r.U64()}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("proxy: stage-release: %w", err)
		}
		p.Stage.MarkDrained(owner, seq, ref)
		return []byte("OK"), nil
	default:
		return nil, fmt.Errorf("proxy: unknown stage op 0x%02X", op)
	}
}

// pushReplica ships one staged capture to the partner proxy.
func pushReplica(ctx context.Context, n transport.Network, addr string, c *localtier.Capture, writes map[uint64][]byte) error {
	b := wire.NewBuffer(64 + int(c.Bytes()))
	b.PutU8(opStagePut)
	b.PutString(c.Owner)
	b.PutU64(c.Seq)
	b.PutU64(c.Base.Blob)
	b.PutU64(c.Base.Version)
	b.PutU64(c.Size)
	b.PutU64(c.ChunkSize)
	b.PutU32(uint32(len(writes)))
	for idx, data := range writes {
		b.PutU64(idx)
		b.PutBytes(data)
	}
	_, err := n.Call(ctx, addr, b.Bytes())
	return err
}

// releaseReplica tells the partner the capture was published as ref.
func releaseReplica(ctx context.Context, n transport.Network, addr string, owner string, seq uint64, ref blobseer.SnapshotRef) error {
	b := wire.NewBuffer(64)
	b.PutU8(opStageRelease)
	b.PutString(owner)
	b.PutU64(seq)
	b.PutU64(ref.Blob)
	b.PutU64(ref.Version)
	_, err := n.Call(ctx, addr, b.Bytes())
	return err
}

// stageConfigFor builds the mirror.StageConfig wiring one registered module
// into this proxy's tier and partner link.
func (p *Proxy) stageConfigFor(vmID string) mirror.StageConfig {
	cfg := mirror.StageConfig{Stage: p.Stage, Owner: vmID}
	if p.PartnerAddr != "" && p.Net != nil {
		net, partner := p.Net, p.PartnerAddr
		cfg.Replicate = func(ctx context.Context, c *localtier.Capture, writes map[uint64][]byte) error {
			return pushReplica(ctx, net, partner, c, writes)
		}
		cfg.Release = func(owner string, seq uint64, ref blobseer.SnapshotRef) {
			// Best-effort: a lost release only leaves a replica the partner
			// drains later (the CAS dedups the duplicate publish away).
			releaseReplica(context.Background(), net, partner, owner, seq, ref)
		}
	}
	return cfg
}

// backlogReply renders the BACKLOG response.
func (p *Proxy) backlogReply() []byte {
	own, partner := p.Stage.Backlog()
	return []byte(fmt.Sprintf("OK own=%d/%d/%d partner=%d/%d/%d",
		own.Checkpoints, own.Chunks, own.Bytes,
		partner.Checkpoints, partner.Chunks, partner.Bytes))
}

// drainAllNow flushes every hosted module's pipeline to the remote plane.
func (p *Proxy) drainAllNow(ctx context.Context) (int, error) {
	p.mu.Lock()
	mods := make([]*mirror.Module, 0, len(p.targets))
	for _, t := range p.targets {
		mods = append(mods, t.mirror)
	}
	p.mu.Unlock()
	for _, m := range mods {
		if err := m.DrainNow(ctx); err != nil {
			return 0, err
		}
	}
	return len(mods), nil
}

// drainFor publishes owner's staged captures up to and including seq and
// returns the snapshot the chain reached. When this proxy hosts the owner
// and its module is still live, the module's own drain finishes the job;
// otherwise (the partner path: the owner's node is dead) the staged replicas
// are published here, in sequence order, carrying the chain forward from the
// last drained snapshot.
func (p *Proxy) drainFor(ctx context.Context, owner string, seq uint64) (blobseer.SnapshotRef, error) {
	p.mu.Lock()
	t := p.targets[owner]
	p.mu.Unlock()
	if t != nil && !t.mirror.Halted() {
		if err := t.mirror.DrainNow(ctx); err != nil {
			return blobseer.SnapshotRef{}, err
		}
	} else {
		if p.Repo == nil {
			return blobseer.SnapshotRef{}, fmt.Errorf("proxy: no repository client for partner drain")
		}
		for _, c := range p.Stage.Pending(owner) {
			if c.Seq > seq {
				break
			}
			base := c.Base
			if mseq, mref, ok := p.Stage.LastDrained(owner); ok && mseq >= c.Seq {
				continue // already published (e.g. by the owner before it died)
			} else if ok && mseq == c.Seq-1 {
				// Contiguous chain: overlay what the previous drain published
				// rather than the possibly stale base recorded at capture time.
				base = mref
			}
			writes, err := p.Stage.Writes(c)
			if err != nil {
				return blobseer.SnapshotRef{}, err
			}
			info, _, err := p.Repo.WriteVersionStatsFrom(ctx, base, writes, c.Size)
			if err != nil {
				return blobseer.SnapshotRef{}, fmt.Errorf("proxy: drain %s seq %d: %w", owner, c.Seq, err)
			}
			p.Stage.MarkDrained(owner, c.Seq, blobseer.SnapshotRef{Blob: base.Blob, Version: info.Version})
		}
	}
	mseq, mref, ok := p.Stage.LastDrained(owner)
	if !ok || mseq < seq {
		return blobseer.SnapshotRef{}, fmt.Errorf("proxy: %s seq %d not staged here (drained up to %d)", owner, seq, mseq)
	}
	return mref, nil
}

// WaitCheckpointLocal blocks until the checkpoint behind handle is locally
// safe — staged in the node's fast tier and replicated to the partner — and
// returns its capture sequence number. Without a local tier this completes
// together with global durability.
func (c *Client) WaitCheckpointLocal(ctx context.Context, handle uint64) (seq uint64, err error) {
	resp, err := c.Net.Call(ctx, c.Addr, []byte(fmt.Sprintf("WAITLOCAL %s %s %d", c.VMID, c.Token, handle)))
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(resp))
	if len(fields) != 3 || fields[0] != "OK" || fields[1] != "LOCAL" {
		return 0, errorFrom(resp)
	}
	seq, perr := strconv.ParseUint(fields[2], 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return seq, nil
}

// Backlog probes the proxy at addr for its local-tier drain backlog, split
// into the node's own staged captures and the partner replicas it holds.
// Tokenless, like Ping: the supervisor surveys nodes, not instances.
func Backlog(ctx context.Context, n transport.Network, addr string) (own, partner localtier.Backlog, err error) {
	resp, err := n.Call(ctx, addr, []byte("BACKLOG"))
	if err != nil {
		return own, partner, err
	}
	fields := strings.Fields(string(resp))
	if len(fields) != 3 || fields[0] != "OK" {
		return own, partner, errorFrom(resp)
	}
	if _, err := fmt.Sscanf(fields[1], "own=%d/%d/%d", &own.Checkpoints, &own.Chunks, &own.Bytes); err != nil {
		return own, partner, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	if _, err := fmt.Sscanf(fields[2], "partner=%d/%d/%d", &partner.Checkpoints, &partner.Chunks, &partner.Bytes); err != nil {
		return own, partner, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return own, partner, nil
}

// DrainNow asks the proxy at addr to flush every hosted module's staged
// captures to the remote plane — the preemption path — and returns how many
// modules were drained.
func DrainNow(ctx context.Context, n transport.Network, addr string) (modules int, err error) {
	resp, err := n.Call(ctx, addr, []byte("DRAIN-NOW"))
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(resp))
	if len(fields) != 2 || fields[0] != "OK" {
		return 0, errorFrom(resp)
	}
	k, perr := strconv.Atoi(fields[1])
	if perr != nil {
		return 0, fmt.Errorf("%w: %q", ErrProto, resp)
	}
	return k, nil
}

// DrainFor asks the proxy at addr to publish owner's staged captures up to
// seq — the repair path run against a dead node's partner — and returns the
// snapshot the chain reached.
func DrainFor(ctx context.Context, n transport.Network, addr, owner string, seq uint64) (blobseer.SnapshotRef, error) {
	resp, err := n.Call(ctx, addr, []byte(fmt.Sprintf("DRAINFOR %s %d", owner, seq)))
	if err != nil {
		return blobseer.SnapshotRef{}, err
	}
	return parseRef(resp)
}
