package proxy

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/mirror"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

const cs = 512

// ctx is the default context for test operations.
var ctx = context.Background()

// env is a single-node test environment: repository, base image, one VM
// with mirroring module, and a proxy.
type env struct {
	net    *transport.InProc
	client *blobseer.Client
	inst   *vm.Instance
	mod    *mirror.Module
	proxy  *Proxy
	pc     *Client
}

func setup(t *testing.T) *env {
	t.Helper()
	net := transport.NewInProc()
	d, err := blobseer.Deploy(net, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()

	// Base image: a formatted blank disk uploaded to the repository.
	base, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WriteAt(ctx, base, 0, make([]byte, 256*1024))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := mirror.Attach(ctx, c, blobseer.SnapshotRef{Blob: base, Version: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	inst := vm.New("vm-1", mod, vm.Config{BootNoiseBytes: 8192, BlockSize: 512})
	if err := inst.Boot(); err != nil {
		t.Fatal(err)
	}

	p := New()
	p.Register("vm-1", "secret", inst, mod)
	srv, err := p.Serve(net, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	return &env{
		net:    net,
		client: c,
		inst:   inst,
		mod:    mod,
		proxy:  p,
		pc:     &Client{Net: net, Addr: srv.Addr(), VMID: "vm-1", Token: "secret"},
	}
}

func TestCheckpointHappyPath(t *testing.T) {
	e := setup(t)
	// Guest writes some state.
	if err := e.inst.FS().WriteFile("/state", []byte("app state")); err != nil {
		t.Fatal(err)
	}
	ref, err := e.pc.RequestCheckpoint(ctx)
	if err != nil {
		t.Fatalf("RequestCheckpoint: %v", err)
	}
	if ref.Blob == 0 {
		t.Error("no checkpoint blob id")
	}
	// The instance is running again afterwards.
	if e.inst.State() != vm.Running {
		t.Errorf("state after checkpoint = %v", e.inst.State())
	}
	// The snapshot is a consistent disk image containing the state file.
	snapData, err := e.client.ReadVersion(ctx, ref, 0, uint64(e.mod.Size()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snapData, []byte("app state")) {
		t.Error("snapshot does not contain the guest's file")
	}
}

// TestCheckpointResumesBeforeUpload is the headline property of the async
// redesign: the CHECKPOINT verb brings the VM back to Running even though
// the commit is still in flight behind the returned handle.
func TestCheckpointResumesBeforeUpload(t *testing.T) {
	e := setup(t)
	if err := e.inst.FS().WriteFile("/state", []byte("async state")); err != nil {
		t.Fatal(err)
	}
	handle, err := e.pc.RequestCheckpointAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e.inst.State() != vm.Running {
		t.Fatalf("instance %v right after async checkpoint, want running", e.inst.State())
	}
	// POLL until done, then WAIT returns the same snapshot.
	var ref blobseer.SnapshotRef
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, done, err := e.pc.PollCheckpoint(ctx, handle)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			ref = r
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never completed")
		}
		time.Sleep(time.Millisecond)
	}
	wref, err := e.pc.WaitCheckpoint(ctx, handle)
	if err != nil {
		t.Fatal(err)
	}
	if wref != ref {
		t.Errorf("WAIT ref %v != POLL ref %v", wref, ref)
	}
	snapData, err := e.client.ReadVersion(ctx, ref, 0, uint64(e.mod.Size()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snapData, []byte("async state")) {
		t.Error("async snapshot does not contain the guest's file")
	}
}

func TestWaitUnknownHandle(t *testing.T) {
	e := setup(t)
	if _, err := e.pc.WaitCheckpoint(ctx, 999); err == nil {
		t.Error("WAIT on unknown handle succeeded")
	}
	if _, _, err := e.pc.PollCheckpoint(ctx, 999); err == nil {
		t.Error("POLL on unknown handle succeeded")
	}
}

func TestSuccessiveCheckpointsBumpVersion(t *testing.T) {
	e := setup(t)
	ref1, err := e.pc.RequestCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	e.inst.FS().WriteFile("/more", []byte("x"))
	ref2, err := e.pc.RequestCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ref2.Version <= ref1.Version {
		t.Errorf("versions not monotonic: %d then %d", ref1.Version, ref2.Version)
	}
	blob1, _ := e.mod.CheckpointImage()
	if blob1 != ref2.Blob {
		t.Error("successive checkpoints used different images")
	}
}

func TestAuthRequired(t *testing.T) {
	e := setup(t)
	bad := &Client{Net: e.pc.Net, Addr: e.pc.Addr, VMID: "vm-1", Token: "wrong"}
	if _, err := bad.RequestCheckpoint(ctx); err == nil {
		t.Error("wrong token accepted")
	} else if !strings.Contains(err.Error(), "authentication") {
		t.Errorf("unexpected error: %v", err)
	}
	unknown := &Client{Net: e.pc.Net, Addr: e.pc.Addr, VMID: "nope", Token: "secret"}
	if _, err := unknown.RequestCheckpoint(ctx); err == nil {
		t.Error("unknown VM accepted")
	}
}

func TestStatus(t *testing.T) {
	e := setup(t)
	state, dirty, _, err := e.pc.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if state != "running" {
		t.Errorf("state = %q", state)
	}
	if dirty == 0 {
		t.Error("boot noise produced no dirty chunks")
	}
	if _, err := e.pc.RequestCheckpoint(ctx); err != nil {
		t.Fatal(err)
	}
	_, dirty, pending, err := e.pc.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 0 {
		t.Errorf("dirty after checkpoint = %d", dirty)
	}
	if pending != 0 {
		t.Errorf("pending commits after waited checkpoint = %d", pending)
	}
}

func TestMalformedRequests(t *testing.T) {
	e := setup(t)
	for _, req := range []string{
		"", "CHECKPOINT", "CHECKPOINT vm-1", "BOGUS vm-1 secret",
		"CHECKPOINT vm-1 secret extra", "WAIT vm-1 secret", "WAIT vm-1 secret nonsense",
		"POLL vm-1 secret", "STATUS vm-1 secret extra",
	} {
		resp, err := e.net.Call(ctx, e.pc.Addr, []byte(req))
		if err != nil {
			t.Fatalf("%q: transport error %v", req, err)
		}
		if !strings.HasPrefix(string(resp), "ERR") {
			t.Errorf("%q -> %q, want ERR", req, resp)
		}
	}
}

func TestCheckpointResumesOnFailure(t *testing.T) {
	e := setup(t)
	// Make the commit fail by partitioning the whole repository.
	for _, b := range []string{e.client.VMAddr, e.client.PMAddr} {
		e.net.Partition(b)
	}
	_, err := e.pc.RequestCheckpoint(ctx)
	if err == nil {
		t.Fatal("checkpoint with repository down succeeded")
	}
	// The crucial guarantee: the instance is running again.
	if e.inst.State() != vm.Running {
		t.Errorf("instance left %v after failed checkpoint", e.inst.State())
	}
}

func TestUnregister(t *testing.T) {
	e := setup(t)
	e.proxy.Unregister("vm-1")
	if _, err := e.pc.RequestCheckpoint(ctx); err == nil {
		t.Error("checkpoint of unregistered VM succeeded")
	}
}

func TestPingLiveness(t *testing.T) {
	e := setup(t)
	n, err := Ping(ctx, e.net, e.pc.Addr)
	if err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if n != 1 {
		t.Errorf("Ping reports %d instances, want 1", n)
	}
	// PING needs no token and does not touch the instance.
	if got := e.inst.State(); got != vm.Running {
		t.Errorf("instance %s after ping", got)
	}
	// A partitioned proxy fails the probe with the transport error.
	e.net.Partition(e.pc.Addr)
	if _, err := Ping(ctx, e.net, e.pc.Addr); err == nil {
		t.Fatal("ping to partitioned proxy succeeded")
	}
	e.net.Heal(e.pc.Addr)
	if _, err := Ping(ctx, e.net, e.pc.Addr); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
}

// TestPrefetchWarmsLocalCache: the PREFETCH verb pages the requested chunks
// into the mirroring module's local cache (adaptive prefetching on restart),
// so subsequent device reads of those chunks hit locally.
func TestPrefetchWarmsLocalCache(t *testing.T) {
	e := setup(t)
	// A second instance attaches the same base cold (its own module) and is
	// told to prefetch the chunks the first instance's boot touched.
	mod2, err := mirror.Attach(ctx, e.client, e.mod.Source())
	if err != nil {
		t.Fatal(err)
	}
	// Prefetch happens before the instance boots — warming the cache is what
	// lets the boot's demand reads hit locally.
	inst2 := vm.New("vm-2", mod2, vm.Config{BlockSize: 512})
	e.proxy.Register("vm-2", "secret2", inst2, mod2)
	pc2 := &Client{Net: e.net, Addr: e.pc.Addr, VMID: "vm-2", Token: "secret2"}

	trace := e.mod.AccessTrace()
	if len(trace) == 0 {
		t.Fatal("first instance has no access trace")
	}
	remote0, _, _ := mod2.Stats()
	if err := pc2.Prefetch(ctx, trace); err != nil {
		t.Fatalf("Prefetch: %v", err)
	}
	remote1, hits1, _ := mod2.Stats()
	if remote1 == remote0 {
		t.Error("prefetch fetched nothing")
	}
	// Re-reading the prefetched chunks is now local: remoteReads stays put.
	buf := make([]byte, 512)
	if _, err := mod2.ReadAt(buf, int64(trace[0])*int64(mod2.ChunkSize())); err != nil {
		t.Fatal(err)
	}
	remote2, hits2, _ := mod2.Stats()
	if remote2 != remote1 {
		t.Errorf("read after prefetch went remote: %d -> %d", remote1, remote2)
	}
	if hits2 <= hits1 {
		t.Error("read after prefetch did not hit the local cache")
	}

	// A bad token is rejected; malformed indices are rejected.
	bad := &Client{Net: e.net, Addr: e.pc.Addr, VMID: "vm-2", Token: "wrong"}
	if err := bad.Prefetch(ctx, []uint64{0}); err == nil {
		t.Error("prefetch with bad token succeeded")
	}
	resp, err := e.net.Call(ctx, e.pc.Addr, []byte("PREFETCH vm-2 secret2 1,x,3"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(resp), "ERR") {
		t.Errorf("malformed index list accepted: %q", resp)
	}
}
