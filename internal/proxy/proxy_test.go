package proxy

import (
	"bytes"
	"strings"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/mirror"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

const cs = 512

// env is a single-node test environment: repository, base image, one VM
// with mirroring module, and a proxy.
type env struct {
	net    *transport.InProc
	client *blobseer.Client
	inst   *vm.Instance
	mod    *mirror.Module
	proxy  *Proxy
	pc     *Client
}

func setup(t *testing.T) *env {
	t.Helper()
	net := transport.NewInProc()
	d, err := blobseer.Deploy(net, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()

	// Base image: a formatted blank disk uploaded to the repository.
	base, err := c.CreateBlob(cs)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WriteAt(base, 0, make([]byte, 256*1024))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := mirror.Attach(c, base, info.Version)
	if err != nil {
		t.Fatal(err)
	}
	inst := vm.New("vm-1", mod, vm.Config{BootNoiseBytes: 8192, BlockSize: 512})
	if err := inst.Boot(); err != nil {
		t.Fatal(err)
	}

	p := New()
	p.Register("vm-1", "secret", inst, mod)
	srv, err := p.Serve(net, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	return &env{
		net:    net,
		client: c,
		inst:   inst,
		mod:    mod,
		proxy:  p,
		pc:     &Client{Net: net, Addr: srv.Addr(), VMID: "vm-1", Token: "secret"},
	}
}

func TestCheckpointHappyPath(t *testing.T) {
	e := setup(t)
	// Guest writes some state.
	if err := e.inst.FS().WriteFile("/state", []byte("app state")); err != nil {
		t.Fatal(err)
	}
	blob, version, err := e.pc.RequestCheckpoint()
	if err != nil {
		t.Fatalf("RequestCheckpoint: %v", err)
	}
	if blob == 0 {
		t.Error("no checkpoint blob id")
	}
	// The instance is running again afterwards.
	if e.inst.State() != vm.Running {
		t.Errorf("state after checkpoint = %v", e.inst.State())
	}
	// The snapshot is a consistent disk image containing the state file.
	snapData, err := e.client.ReadVersion(blob, version, 0, uint64(e.mod.Size()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snapData, []byte("app state")) {
		t.Error("snapshot does not contain the guest's file")
	}
}

func TestSuccessiveCheckpointsBumpVersion(t *testing.T) {
	e := setup(t)
	_, v1, err := e.pc.RequestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	e.inst.FS().WriteFile("/more", []byte("x"))
	blob2, v2, err := e.pc.RequestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Errorf("versions not monotonic: %d then %d", v1, v2)
	}
	blob1, _ := e.mod.CheckpointImage()
	if blob1 != blob2 {
		t.Error("successive checkpoints used different images")
	}
}

func TestAuthRequired(t *testing.T) {
	e := setup(t)
	bad := &Client{Net: e.pc.Net, Addr: e.pc.Addr, VMID: "vm-1", Token: "wrong"}
	if _, _, err := bad.RequestCheckpoint(); err == nil {
		t.Error("wrong token accepted")
	} else if !strings.Contains(err.Error(), "authentication") {
		t.Errorf("unexpected error: %v", err)
	}
	unknown := &Client{Net: e.pc.Net, Addr: e.pc.Addr, VMID: "nope", Token: "secret"}
	if _, _, err := unknown.RequestCheckpoint(); err == nil {
		t.Error("unknown VM accepted")
	}
}

func TestStatus(t *testing.T) {
	e := setup(t)
	state, dirty, err := e.pc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if state != "running" {
		t.Errorf("state = %q", state)
	}
	if dirty == 0 {
		t.Error("boot noise produced no dirty chunks")
	}
	if _, _, err := e.pc.RequestCheckpoint(); err != nil {
		t.Fatal(err)
	}
	_, dirty, err = e.pc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 0 {
		t.Errorf("dirty after checkpoint = %d", dirty)
	}
}

func TestMalformedRequests(t *testing.T) {
	e := setup(t)
	for _, req := range []string{"", "CHECKPOINT", "CHECKPOINT vm-1", "BOGUS vm-1 secret", "CHECKPOINT vm-1 secret extra arg"} {
		resp, err := e.net.Call(e.pc.Addr, []byte(req))
		if err != nil {
			t.Fatalf("%q: transport error %v", req, err)
		}
		if !strings.HasPrefix(string(resp), "ERR") {
			t.Errorf("%q -> %q, want ERR", req, resp)
		}
	}
}

func TestCheckpointResumesOnFailure(t *testing.T) {
	e := setup(t)
	// Make Commit fail by partitioning the whole repository.
	for _, b := range []string{e.client.VMAddr, e.client.PMAddr} {
		e.net.Partition(b)
	}
	_, _, err := e.pc.RequestCheckpoint()
	if err == nil {
		t.Fatal("checkpoint with repository down succeeded")
	}
	// The crucial guarantee: the instance is running again.
	if e.inst.State() != vm.Running {
		t.Errorf("instance left %v after failed checkpoint", e.inst.State())
	}
}

func TestUnregister(t *testing.T) {
	e := setup(t)
	e.proxy.Unregister("vm-1")
	if _, _, err := e.pc.RequestCheckpoint(); err == nil {
		t.Error("checkpoint of unregistered VM succeeded")
	}
}
