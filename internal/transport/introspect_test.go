package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"blobcr/internal/obs"
)

// traceTestHeader builds a wire trace header by hand, for corruption tests.
func traceTestHeader(trace, parent uint64) []byte {
	h := make([]byte, traceHeaderLen)
	h[0] = traceMarker
	h[1] = traceVersion
	binary.LittleEndian.PutUint64(h[2:], trace)
	binary.LittleEndian.PutUint64(h[10:], parent)
	return h
}

// testTraceHeaderPropagation: a call under an active trace re-establishes
// the caller's span context on the far side, and a call without one arrives
// clean — on both terminal networks.
func testTraceHeaderPropagation(t *testing.T, n Network) {
	t.Helper()
	var got obs.SpanContext
	var present bool
	srv, err := n.Listen("", func(ctx context.Context, req []byte) ([]byte, error) {
		got, present = obs.SpanContextFrom(ctx)
		return append([]byte("echo:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	resp, err := n.Call(ctx, srv.Addr(), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if present {
		t.Error("span context invented on an untraced call")
	}
	if string(resp) != "echo:payload" {
		t.Errorf("untraced payload mangled: %q", resp)
	}

	tctx, trace := obs.BeginTrace(ctx)
	tctx, sp := obs.StartSpan(tctx, "rpc/test")
	resp, err = n.Call(tctx, srv.Addr(), []byte("payload"))
	sp.End()
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:payload" {
		t.Errorf("traced payload mangled: %q", resp)
	}
	if !present {
		t.Fatal("span context did not cross the wire")
	}
	if got.Trace != trace {
		t.Errorf("far side saw trace %x, want %x", got.Trace, trace)
	}
	if got.Span != sp.ID() {
		t.Errorf("far side parents under %x, want the rpc span %x", got.Span, sp.ID())
	}
}

func TestInProcTraceHeaderPropagation(t *testing.T) { testTraceHeaderPropagation(t, NewInProc()) }
func TestTCPTraceHeaderPropagation(t *testing.T)    { testTraceHeaderPropagation(t, NewTCP()) }

// testTraceHeaderRejection: frames that open with the trace marker but carry
// a truncated or corrupt header are rejected before the handler runs, on
// both terminal networks.
func testTraceHeaderRejection(t *testing.T, n Network) {
	t.Helper()
	handled := false
	srv, err := n.Listen("", func(_ context.Context, req []byte) ([]byte, error) {
		handled = true
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	good := traceTestHeader(0xabc, 0xdef)
	for _, tc := range []struct {
		name string
		req  []byte
		want string
	}{
		{"empty after marker", []byte{traceMarker}, "truncated trace header"},
		{"cut mid-ids", good[:9], "truncated trace header"},
		{"one byte short", good[:traceHeaderLen-1], "truncated trace header"},
		{"version skew", append([]byte{traceMarker, 99}, good[2:]...), "unsupported trace header version"},
		{"zero trace id", traceTestHeader(0, 0xdef), "zero trace id"},
	} {
		handled = false
		_, err := n.Call(ctx, srv.Addr(), tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
		if handled {
			t.Errorf("%s: corrupt header reached the handler", tc.name)
		}
	}

	// A well-formed header on a raw frame still parses: the payload arrives
	// stripped.
	resp, err := n.Call(ctx, srv.Addr(), append(traceTestHeader(0xabc, 0xdef), []byte("body")...))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "body" {
		t.Errorf("valid raw header not stripped: %q", resp)
	}
}

func TestInProcTraceHeaderRejection(t *testing.T) { testTraceHeaderRejection(t, NewInProc()) }
func TestTCPTraceHeaderRejection(t *testing.T)    { testTraceHeaderRejection(t, NewTCP()) }

// TestScrapeExpositionChunked is the regression for METRICS chunking: an
// exposition well past 4 MiB — beyond any single-frame expectation — arrives
// complete by following the MORE continuations, byte-identical to the
// registry's own rendering.
func TestScrapeExpositionChunked(t *testing.T) {
	reg := obs.NewRegistry()
	// Wide label values blow the exposition past 4 MiB with a modest series
	// count (each line is ~260 bytes).
	pad := strings.Repeat("x", 200)
	for i := 0; i < 20000; i++ {
		reg.Counter("wide_series_total", obs.L("instance", fmt.Sprintf("%s-%06d", pad, i))).Inc()
	}
	want := reg.PromText()
	if len(want) <= 4<<20 {
		t.Fatalf("test exposition only %d bytes, need > 4 MiB to exercise chunking", len(want))
	}

	n := NewInProc()
	srv, err := n.Listen("", func(_ context.Context, req []byte) ([]byte, error) {
		resp, handled := reg.TextReply(strings.Fields(string(req)))
		if !handled {
			return []byte("ERR unknown verb"), nil
		}
		return resp, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got, err := ScrapeExposition(context.Background(), n, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("chunked scrape differs from the registry exposition: %d vs %d bytes", len(got), len(want))
	}

	// The first frame really was a continuation, not one oversized reply.
	resp, _ := n.Call(context.Background(), srv.Addr(), []byte("METRICS"))
	head, _, _ := bytes.Cut(resp, []byte("\n"))
	if !strings.Contains(string(head), "MORE") {
		t.Errorf("first METRICS reply not chunked: header %q", head)
	}
	if len(resp) > obs.ExpositionChunkBytes+64 {
		t.Errorf("first chunk %d bytes exceeds the chunk bound %d", len(resp), obs.ExpositionChunkBytes)
	}
}

// TestTraceAndFlightTextCollection: the client-side helpers round-trip spans
// through a TextReply endpoint.
func TestTraceAndFlightTextCollection(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	tctx, trace := obs.BeginTrace(ctx)
	_, sp := obs.StartSpan(tctx, "op/one")
	sp.End()

	n := NewInProc()
	srv, err := n.Listen("", func(_ context.Context, req []byte) ([]byte, error) {
		resp, handled := reg.TextReply(strings.Fields(string(req)))
		if !handled {
			return []byte("ERR unknown verb"), nil
		}
		return resp, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spans, err := TraceSpansText(context.Background(), n, srv.Addr(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "op/one" || spans[0].Trace != trace {
		t.Errorf("TRACE collection returned %+v", spans)
	}
	flight, err := FlightSpansText(context.Background(), n, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(flight) != 1 || flight[0].Name != "op/one" {
		t.Errorf("FLIGHT collection returned %+v", flight)
	}
	if _, err := TraceSpansText(context.Background(), n, srv.Addr(), 0); err == nil {
		t.Error("zero trace id not rejected")
	}
}

// testHistoryWindowCorruptFrames: HistoryWindow's strict parsing rejects
// garbage, half-cut and wrong-shape HISTORY replies outright — on both
// terminal networks — while a well-formed frame still round-trips.
func testHistoryWindowCorruptFrames(t *testing.T, n Network) {
	t.Helper()
	var reply []byte
	srv, err := n.Listen("", func(_ context.Context, req []byte) ([]byte, error) {
		if !strings.HasPrefix(string(req), "HISTORY") {
			return []byte("ERR unknown verb"), nil
		}
		return reply, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	for _, tc := range []struct {
		name  string
		frame string
	}{
		{"no reply header", "garbage"},
		{"endpoint error", "ERR no history ring"},
		{"version skew", "OK v9\nwindow 60 span 5 samples 2\n"},
		{"junk body", "OK v1\nnot a window header\n"},
		{"truncated series line", "OK v1\nwindow 60 span 5 samples 2\ncounter foo delta=1"},
		{"unknown series kind", "OK v1\nwindow 60 span 5 samples 2\nwidget foo delta=1 rate=2\n"},
		{"empty body", "OK v1\n"},
	} {
		reply = []byte(tc.frame)
		if _, err := HistoryWindow(ctx, n, srv.Addr(), time.Minute); err == nil {
			t.Errorf("%s: corrupt HISTORY frame accepted", tc.name)
		}
	}

	reply = []byte("OK v1\nwindow 60 span 5 samples 2\ncounter foo delta=4 rate=0.8\n")
	rep, err := HistoryWindow(ctx, n, srv.Addr(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Window != time.Minute || rep.Samples != 2 || len(rep.Stats) != 1 || rep.Stats[0].Delta != 4 {
		t.Errorf("valid frame mis-parsed: %+v", rep)
	}

	// Sub-second windows truncate to zero seconds on the wire: rejected
	// client-side before any call.
	if _, err := HistoryWindow(ctx, n, srv.Addr(), 500*time.Millisecond); err == nil {
		t.Error("sub-second window accepted")
	}
}

func TestInProcHistoryWindowCorruptFrames(t *testing.T) {
	testHistoryWindowCorruptFrames(t, NewInProc())
}
func TestTCPHistoryWindowCorruptFrames(t *testing.T) {
	testHistoryWindowCorruptFrames(t, NewTCP())
}
