package transport

import (
	"context"
	"errors"
	"strings"
	"testing"

	"blobcr/internal/obs"
)

func meterVerb(req []byte) string {
	if v := TextVerb(req); v != "" {
		return strings.ToLower(v)
	}
	return ""
}

// TestMeterRecordsCallsAndTagsErrors exercises the full metric surface of
// one metered round trip plus the RemoteError verb tagging.
func TestMeterRecordsCallsAndTagsErrors(t *testing.T) {
	inner := NewInProc()
	reg := obs.NewRegistry()
	net := WithMeter(inner, reg, meterVerb)

	srv, err := net.Listen("svc", func(_ context.Context, req []byte) ([]byte, error) {
		switch string(req) {
		case "PING":
			return []byte("pong"), nil
		case "MISSING":
			return nil, NotFoundError("no such thing")
		default:
			return nil, errors.New("boom")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	resp, err := net.Call(ctx, "svc", []byte("PING"))
	if err != nil || string(resp) != "pong" {
		t.Fatalf("call: %q, %v", resp, err)
	}
	if _, err := net.Call(ctx, "svc", []byte("FAIL")); err == nil {
		t.Fatal("want error")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("want RemoteError, got %T", err)
		}
		if re.Verb != "fail" {
			t.Fatalf("RemoteError.Verb = %q, want fail", re.Verb)
		}
		if !strings.Contains(re.Error(), "fail: boom") {
			t.Fatalf("error message lacks verb: %q", re.Error())
		}
	}
	if _, err := net.Call(ctx, "svc", []byte("MISSING")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want not-found, got %v", err)
	}
	if _, err := net.Call(ctx, "nowhere", []byte("PING")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want unreachable, got %v", err)
	}

	check := func(name, verb string, want uint64) {
		t.Helper()
		if got := reg.Counter(name, obs.L("verb", verb)).Value(); got != want {
			t.Errorf("%s{verb=%s} = %d, want %d", name, verb, got, want)
		}
	}
	check("transport_calls_total", "ping", 2) // one ok + one unreachable
	check("transport_calls_total", "fail", 1)
	check("transport_errors_total", "fail", 1)
	check("transport_not_found_total", "missing", 1)
	check("transport_unreachable_total", "ping", 1)
	check("transport_req_bytes_total", "ping", 8)
	check("transport_resp_bytes_total", "ping", 4)

	if n := reg.Histogram("transport_call_ns", obs.L("verb", "ping")).Count(); n != 2 {
		t.Errorf("call latency histogram count %d, want 2", n)
	}
	if n := reg.Histogram("transport_addr_call_ns", obs.L("addr", "svc")).Count(); n != 3 {
		t.Errorf("addr latency histogram count %d, want 3", n)
	}
}

// TestMeterForwardsFaults checks Partition/Heal pass through to the inner
// fault network, including when composed outside Latency.
func TestMeterForwardsFaults(t *testing.T) {
	inner := NewInProc()
	net := WithMeter(WithLatency(inner, 0), obs.NewRegistry(), nil)

	srv, err := net.Listen("svc", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	net.Partition("svc")
	if _, err := net.Call(context.Background(), "svc", []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned call: %v", err)
	}
	net.Heal("svc")
	if _, err := net.Call(context.Background(), "svc", []byte("x")); err != nil {
		t.Fatalf("healed call: %v", err)
	}
	if got := net.Registry().Counter("transport_calls_total", obs.L("verb", "other")).Value(); got != 2 {
		t.Fatalf("nil verb namer should file under other: got %d", got)
	}
}

// TestTextVerb checks the text-protocol verb extraction.
func TestTextVerb(t *testing.T) {
	cases := map[string]string{
		"CHECKPOINT tok 3\npayload": "CHECKPOINT",
		"PING":                      "PING",
		"EVENTS 12":                 "EVENTS",
		"METRICS":                   "METRICS",
		"lowercase x":               "",
		"":                          "",
		"\x01\x02binary":            "",
		"TOOLONGVERBNAMEXX y":       "",
	}
	for in, want := range cases {
		if got := TextVerb([]byte(in)); got != want {
			t.Errorf("TextVerb(%q) = %q, want %q", in, got, want)
		}
	}
}

// sharedErrNet always fails calls with one shared error value, modelling an
// inner Network that returns a cached error.
type sharedErrNet struct {
	err error
}

func (s *sharedErrNet) Listen(addr string, h Handler) (Server, error) {
	return nil, errors.New("sharedErrNet cannot listen")
}

func (s *sharedErrNet) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	return nil, s.err
}

// TestMeterDoesNotMutateInnerError checks verb tagging wraps a copy: the
// inner network's error value must stay untouched, or concurrent calls to
// different verbs would race on (and mislabel) the shared Verb field.
func TestMeterDoesNotMutateInnerError(t *testing.T) {
	shared := &RemoteError{Msg: "boom"}
	net := WithMeter(&sharedErrNet{err: shared}, obs.NewRegistry(), meterVerb)

	_, err := net.Call(context.Background(), "svc", []byte("PUT x"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.Verb != "put" {
		t.Fatalf("RemoteError.Verb = %q, want put", re.Verb)
	}
	if re == shared {
		t.Fatal("meter returned the inner error value instead of a copy")
	}
	if shared.Verb != "" {
		t.Fatalf("inner error mutated: Verb = %q", shared.Verb)
	}
}
