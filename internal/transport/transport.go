// Package transport provides the request/response messaging substrate used
// by the BlobSeer service, the PVFS baseline and the checkpointing proxy.
//
// A Network binds handlers to addresses and issues calls to them. Two
// implementations are provided: an in-process network (for tests, examples
// and single-machine deployments) and a TCP network (for the real daemons in
// cmd/). Services are written once against the Network interface.
//
// Every call carries a context.Context: cancelling it abandons the call
// (in-flight TCP calls close their connection; in-process handlers receive
// the context and may observe the cancellation themselves). Handlers that
// fail because the requested entity does not exist should return an error
// wrapping ErrNotFound; the condition survives the wire, so callers can test
// it with errors.Is instead of matching message strings.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blobcr/internal/obs"
	"blobcr/internal/wire"
)

// Handler processes one request and returns the response payload.
// Returning an error sends a remote error to the caller. The context is the
// caller's (in-process) or the server's (TCP); long-blocking handlers should
// honour its cancellation.
type Handler func(ctx context.Context, req []byte) ([]byte, error)

// ErrUnreachable is returned by Call when no service is bound at the address.
var ErrUnreachable = errors.New("transport: address unreachable")

// ErrNotFound marks handler errors for entities that do not exist. The mark
// is preserved across the wire: a RemoteError produced from a handler error
// wrapping ErrNotFound satisfies errors.Is(err, ErrNotFound) on the caller's
// side too.
var ErrNotFound = errors.New("transport: not found")

// NotFoundError is a convenience sentinel for services: it renders as its
// message and satisfies errors.Is(err, ErrNotFound), so handlers can define
// typed not-found sentinels whose mark survives the wire.
type NotFoundError string

func (e NotFoundError) Error() string { return string(e) }

// Is marks the sentinel as a transport-level not-found condition.
func (e NotFoundError) Is(target error) bool { return target == ErrNotFound }

// RemoteError is an application-level error returned by a remote handler.
type RemoteError struct {
	Msg string
	// NotFound records that the remote error wrapped ErrNotFound.
	NotFound bool
	// Verb names the operation whose call failed ("chunk-put", "CHECKPOINT",
	// ...). The wire does not carry it; the Meter wrapper tags it on the
	// caller's side so error messages and obs counters agree on which
	// operation failed instead of the error vanishing into callers unnamed.
	Verb string
}

func (e *RemoteError) Error() string {
	if e.Verb != "" {
		return "transport: remote error: " + e.Verb + ": " + e.Msg
	}
	return "transport: remote error: " + e.Msg
}

// Is lets errors.Is(err, ErrNotFound) see through the wire boundary.
func (e *RemoteError) Is(target error) bool { return target == ErrNotFound && e.NotFound }

// Network binds services to addresses and routes calls between them.
type Network interface {
	// Listen binds h to addr. If addr is empty an address is assigned.
	// The returned Server reports the bound address and stops the service
	// when closed.
	Listen(addr string, h Handler) (Server, error)
	// Call sends req to the service at addr and returns its response. A
	// cancelled or expired context abandons the call and returns ctx.Err().
	Call(ctx context.Context, addr string, req []byte) ([]byte, error)
}

// FaultNetwork is a Network with fail-stop failure injection: calls to a
// partitioned address fail with ErrUnreachable until the address is healed.
// InProc implements it directly; Latency forwards to a fault-capable inner
// network.
type FaultNetwork interface {
	Network
	Partition(addr string)
	Heal(addr string)
}

// Server is a bound service endpoint.
type Server interface {
	Addr() string
	Close() error
}

// remoteErrorFrom wraps a handler error for transmission, preserving the
// not-found mark.
func remoteErrorFrom(err error) *RemoteError {
	return &RemoteError{Msg: err.Error(), NotFound: errors.Is(err, ErrNotFound)}
}

// --- trace-context header ---

// An optional trace-context header rides in front of the request payload:
//
//	[marker 0xF7] [version 1] [trace id, 8 bytes LE] [parent span id, 8 bytes LE]
//
// Both terminal networks inject it from the caller's context and strip it
// before the handler runs, re-establishing the span context server-side so
// handler spans parent under the caller's RPC span. The marker byte cannot
// collide with a real first request byte: binary protocol op codes stay
// below 0xF0 and text verbs start with ASCII letters.
const (
	traceMarker    = 0xF7
	traceVersion   = 1
	traceHeaderLen = 1 + 1 + 8 + 8
)

// injectTraceContext prefixes req with the trace header when ctx carries an
// active distributed trace; otherwise it returns req unchanged.
func injectTraceContext(ctx context.Context, req []byte) []byte {
	sc, ok := obs.SpanContextFrom(ctx)
	if !ok {
		return req
	}
	out := make([]byte, traceHeaderLen, traceHeaderLen+len(req))
	out[0] = traceMarker
	out[1] = traceVersion
	binary.LittleEndian.PutUint64(out[2:], sc.Trace)
	binary.LittleEndian.PutUint64(out[10:], sc.Span)
	return append(out, req...)
}

// extractTraceContext strips a leading trace header from req, returning the
// handler context (with the span context re-established) and the payload.
// A frame that starts with the marker but does not carry a well-formed
// header is rejected: truncation and version skew must fail loudly, not be
// mistaken for application bytes.
func extractTraceContext(ctx context.Context, req []byte) (context.Context, []byte, error) {
	if len(req) == 0 || req[0] != traceMarker {
		return ctx, req, nil
	}
	if len(req) < traceHeaderLen {
		return nil, nil, fmt.Errorf("transport: truncated trace header: %d of %d bytes", len(req), traceHeaderLen)
	}
	if req[1] != traceVersion {
		return nil, nil, fmt.Errorf("transport: unsupported trace header version %d", req[1])
	}
	trace := binary.LittleEndian.Uint64(req[2:])
	span := binary.LittleEndian.Uint64(req[10:])
	if trace == 0 {
		return nil, nil, errors.New("transport: trace header carries zero trace id")
	}
	return obs.WithSpanContext(ctx, obs.SpanContext{Trace: trace, Span: span}), req[traceHeaderLen:], nil
}

// --- In-process network ---

// InProc is an in-process Network: calls are direct function invocations.
// It is safe for concurrent use. A fresh InProc is an isolated namespace,
// so tests do not interfere with one another.
type InProc struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	nextAuto int
	// PartitionedAddrs simulates fail-stop node failures: calls to these
	// addresses fail with ErrUnreachable.
	partitioned map[string]bool
}

// NewInProc returns an empty in-process network.
func NewInProc() *InProc {
	return &InProc{
		handlers:    make(map[string]Handler),
		partitioned: make(map[string]bool),
	}
}

type inprocServer struct {
	n    *InProc
	addr string
}

func (s *inprocServer) Addr() string { return s.addr }
func (s *inprocServer) Close() error {
	s.n.mu.Lock()
	defer s.n.mu.Unlock()
	delete(s.n.handlers, s.addr)
	return nil
}

// Listen implements Network.
func (n *InProc) Listen(addr string, h Handler) (Server, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		n.nextAuto++
		addr = fmt.Sprintf("inproc-%d", n.nextAuto)
	}
	if _, exists := n.handlers[addr]; exists {
		return nil, fmt.Errorf("transport: address %q already bound", addr)
	}
	n.handlers[addr] = h
	return &inprocServer{n: n, addr: addr}, nil
}

// Call implements Network.
func (n *InProc) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	h, ok := n.handlers[addr]
	dead := n.partitioned[addr]
	n.mu.RUnlock()
	if !ok || dead {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	// Run the same inject/strip round trip the TCP network performs, so the
	// in-process network exercises the wire encoding and the handler sees
	// identical semantics (span context re-established, header stripped).
	hctx, body, err := extractTraceContext(ctx, injectTraceContext(ctx, req))
	if err != nil {
		return nil, remoteErrorFrom(err)
	}
	resp, err := h(hctx, body)
	if err != nil {
		return nil, remoteErrorFrom(err)
	}
	return resp, nil
}

// Partition makes addr unreachable (fail-stop failure injection).
func (n *InProc) Partition(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[addr] = true
}

// Heal makes addr reachable again.
func (n *InProc) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, addr)
}

// --- Latency-injecting network ---

// Latency wraps a Network, sleeping PerCall before every Call and counting
// calls, so network cost shows up in wall time and deterministically in the
// call counter. The downtime and availability experiments use it to make
// round trips cost something on an in-process network; tests use the counter
// to assert how many round trips land inside a measured window.
type Latency struct {
	Inner   Network
	PerCall time.Duration
	calls   atomic.Uint64
}

// WithLatency wraps inner with a per-call delay.
func WithLatency(inner Network, perCall time.Duration) *Latency {
	return &Latency{Inner: inner, PerCall: perCall}
}

// Listen implements Network.
func (l *Latency) Listen(addr string, h Handler) (Server, error) {
	return l.Inner.Listen(addr, h)
}

// Call implements Network.
func (l *Latency) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	l.calls.Add(1)
	if l.PerCall > 0 {
		time.Sleep(l.PerCall)
	}
	return l.Inner.Call(ctx, addr, req)
}

// Calls returns how many calls have been issued through the wrapper.
func (l *Latency) Calls() uint64 { return l.calls.Load() }

// Partition forwards fail-stop injection to the inner network; it is a no-op
// when the inner network is not fault-capable.
func (l *Latency) Partition(addr string) {
	if fn, ok := l.Inner.(FaultNetwork); ok {
		fn.Partition(addr)
	}
}

// Heal forwards to the inner network; no-op when it is not fault-capable.
func (l *Latency) Heal(addr string) {
	if fn, ok := l.Inner.(FaultNetwork); ok {
		fn.Heal(addr)
	}
}

// --- Bandwidth-modelling network ---

// Bandwidth wraps a Network, modelling every address as a pipe of finite
// bandwidth: calls to one address are serialized and charged
// (len(request)+len(response))/BytesPerSec of wall time while holding the
// pipe. Independent addresses proceed in parallel, so striping a transfer
// across N providers divides its wall time by up to N — which is what the
// throughput experiments measure. Stack it over Latency to model both
// per-round-trip and per-byte cost.
type Bandwidth struct {
	Inner       Network
	BytesPerSec float64

	mu    sync.Mutex
	pipes map[string]*sync.Mutex
	// perAddr overrides BytesPerSec for individual addresses, letting one
	// experiment starve the remote storage plane while local/partner links
	// keep full speed (the multilevel-checkpointing bench does exactly this).
	perAddr map[string]float64
}

// WithBandwidth wraps inner with a per-address bandwidth model.
func WithBandwidth(inner Network, bytesPerSec float64) *Bandwidth {
	return &Bandwidth{Inner: inner, BytesPerSec: bytesPerSec, pipes: make(map[string]*sync.Mutex)}
}

// SetAddrBytesPerSec overrides the modeled bandwidth for one address.
// bps <= 0 removes the override, restoring the default BytesPerSec.
func (b *Bandwidth) SetAddrBytesPerSec(addr string, bps float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.perAddr == nil {
		b.perAddr = make(map[string]float64)
	}
	if bps <= 0 {
		delete(b.perAddr, addr)
		return
	}
	b.perAddr[addr] = bps
}

// rate returns the bandwidth applied to addr: its override if one is set,
// else the default.
func (b *Bandwidth) rate(addr string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bps, ok := b.perAddr[addr]; ok {
		return bps
	}
	return b.BytesPerSec
}

// Listen implements Network.
func (b *Bandwidth) Listen(addr string, h Handler) (Server, error) {
	return b.Inner.Listen(addr, h)
}

func (b *Bandwidth) pipe(addr string) *sync.Mutex {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.pipes[addr]
	if !ok {
		p = &sync.Mutex{}
		b.pipes[addr] = p
	}
	return p
}

// Call implements Network: a successful exchange holds addr's pipe for the
// time the moved bytes would need at BytesPerSec. Failed calls are not
// charged (nothing moved), and cancellation interrupts the modeled transfer
// mid-flight.
func (b *Bandwidth) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	p := b.pipe(addr)
	p.Lock()
	defer p.Unlock()
	resp, err := b.Inner.Call(ctx, addr, req)
	bps := b.rate(addr)
	if err != nil || bps <= 0 {
		return resp, err
	}
	moved := len(req) + len(resp)
	t := time.NewTimer(time.Duration(float64(moved) / bps * float64(time.Second)))
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return resp, nil
}

// Partition forwards fail-stop injection to the inner network; it is a no-op
// when the inner network is not fault-capable.
func (b *Bandwidth) Partition(addr string) {
	if fn, ok := b.Inner.(FaultNetwork); ok {
		fn.Partition(addr)
	}
}

// Heal forwards to the inner network; no-op when it is not fault-capable.
func (b *Bandwidth) Heal(addr string) {
	if fn, ok := b.Inner.(FaultNetwork); ok {
		fn.Heal(addr)
	}
}

var _ FaultNetwork = (*InProc)(nil)
var _ FaultNetwork = (*Latency)(nil)
var _ FaultNetwork = (*Bandwidth)(nil)

// --- TCP network ---

// Response status bytes on the wire.
const (
	statusOK       = 0
	statusErr      = 1
	statusNotFound = 2 // remote error that wrapped ErrNotFound
)

// TCP is a Network over real TCP sockets. Requests and responses are framed
// with a 4-byte length prefix; the first response byte is a status code
// (0 = ok, 1 = remote error with a UTF-8 message payload, 2 = remote
// not-found error).
type TCP struct {
	mu    sync.Mutex
	conns map[string][]net.Conn // idle connection pool per address
}

// NewTCP returns a TCP network with an empty connection pool.
func NewTCP() *TCP {
	return &TCP{conns: make(map[string][]net.Conn)}
}

type tcpServer struct {
	ln     net.Listener
	wg     sync.WaitGroup
	once   sync.Once
	cancel context.CancelFunc
	ctx    context.Context
	mu     sync.Mutex
	active map[net.Conn]struct{}
	closed bool
}

func (s *tcpServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, cancels the context in-flight handlers received,
// force-closes every open connection (clients may hold idle pooled
// connections indefinitely) and waits for handlers to exit.
func (s *tcpServer) Close() error {
	var err error
	s.once.Do(func() {
		err = s.ln.Close()
		s.cancel()
		s.mu.Lock()
		s.closed = true
		for c := range s.active {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

// track registers conn; it reports false if the server is already closed.
func (s *tcpServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.active[conn] = struct{}{}
	return true
}

func (s *tcpServer) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.active, conn)
}

// Listen implements Network. An empty addr binds to 127.0.0.1 on an
// ephemeral port.
func (t *TCP) Listen(addr string, h Handler) (Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &tcpServer{ln: ln, active: make(map[net.Conn]struct{}), ctx: ctx, cancel: cancel}
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			if !srv.track(conn) {
				conn.Close()
				return
			}
			srv.wg.Add(1)
			go func() {
				defer srv.wg.Done()
				defer srv.untrack(conn)
				serveConn(srv.ctx, conn, h)
			}()
		}
	}()
	return srv, nil
}

func serveConn(ctx context.Context, conn net.Conn, h Handler) {
	defer conn.Close()
	for {
		req, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		hctx, body, herr := extractTraceContext(ctx, req)
		var resp []byte
		if herr == nil {
			resp, herr = h(hctx, body)
		}
		out := make([]byte, 0, len(resp)+1)
		if herr != nil {
			if errors.Is(herr, ErrNotFound) {
				out = append(out, statusNotFound)
			} else {
				out = append(out, statusErr)
			}
			out = append(out, herr.Error()...)
		} else {
			out = append(out, statusOK)
			out = append(out, resp...)
		}
		if err := wire.WriteFrame(conn, out); err != nil {
			return
		}
	}
}

// Call implements Network. Connections are pooled and reused. A context
// deadline becomes the connection deadline; cancellation closes the
// connection, abandoning the in-flight exchange.
func (t *TCP) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn, err := t.getConn(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	} else {
		conn.SetDeadline(time.Time{})
	}
	// Watch for cancellation while the exchange is in flight.
	watchDone := make(chan struct{})
	watchErr := make(chan struct{})
	go func() {
		defer close(watchErr)
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	frame, err := func() ([]byte, error) {
		if err := wire.WriteFrame(conn, injectTraceContext(ctx, req)); err != nil {
			return nil, err
		}
		return wire.ReadFrame(conn)
	}()
	close(watchDone)
	<-watchErr
	if err != nil {
		conn.Close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// The connection deadline is the context deadline, so an I/O
		// timeout means the deadline expired even when the context's own
		// timer has not fired yet.
		var ne net.Error
		if _, hasDeadline := ctx.Deadline(); hasDeadline && errors.As(err, &ne) && ne.Timeout() {
			return nil, context.DeadlineExceeded
		}
		return nil, fmt.Errorf("transport: call %s: %w", addr, err)
	}
	if ctx.Err() != nil {
		// Cancellation raced the successful exchange: the watcher may have
		// closed the connection, so it must not go back in the pool. The
		// response arrived intact, so still return it.
		conn.Close()
		return decodeResponse(addr, frame)
	}
	t.putConn(addr, conn)
	return decodeResponse(addr, frame)
}

// decodeResponse unpacks the status byte of a response frame.
func decodeResponse(addr string, frame []byte) ([]byte, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("transport: call %s: empty response frame", addr)
	}
	switch frame[0] {
	case statusErr:
		return nil, &RemoteError{Msg: string(frame[1:])}
	case statusNotFound:
		return nil, &RemoteError{Msg: string(frame[1:]), NotFound: true}
	}
	return frame[1:], nil
}

func (t *TCP) getConn(addr string) (net.Conn, error) {
	t.mu.Lock()
	pool := t.conns[addr]
	if n := len(pool); n > 0 {
		conn := pool[n-1]
		t.conns[addr] = pool[:n-1]
		t.mu.Unlock()
		return conn, nil
	}
	t.mu.Unlock()
	return net.Dial("tcp", addr)
}

func (t *TCP) putConn(addr string, conn net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	const maxIdlePerAddr = 8
	if len(t.conns[addr]) >= maxIdlePerAddr {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{}) // clear any call-scoped deadline
	t.conns[addr] = append(t.conns[addr], conn)
}

// Close closes all pooled connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for addr, pool := range t.conns {
		for _, c := range pool {
			c.Close()
		}
		delete(t.conns, addr)
	}
	return nil
}
