package transport

import (
	"context"
	"errors"

	"blobcr/internal/obs"
)

// Meter is a Network wrapper that records every call into an obs.Registry:
// per-verb call/error/not-found counts, request and response bytes, and
// latency histograms, plus a per-address latency breakdown. It is the
// telemetry twin of the Latency/Bandwidth shaping wrappers and composes
// outside them, so shaped latency is included in what it measures.
//
// Metrics (all under the transport_ prefix):
//
//	transport_calls_total{verb}        calls issued
//	transport_errors_total{verb}       calls failing with a remote error
//	transport_not_found_total{verb}    remote errors carrying the not-found mark
//	transport_unreachable_total{verb}  calls failing before reaching a handler
//	transport_req_bytes_total{verb}    request payload bytes
//	transport_resp_bytes_total{verb}   response payload bytes
//	transport_call_ns{verb}            call latency histogram
//	transport_addr_call_ns{addr}       call latency histogram per address
//
// Meter also tags *RemoteError values with the verb name, so failures
// surface as "remote error: chunk-put: ..." instead of an anonymous
// message.
type Meter struct {
	inner Network
	reg   *obs.Registry
	verb  func(req []byte) string
}

// WithMeter wraps inner so calls are recorded into reg (obs.Default when
// nil). verb maps a request frame to its operation name for the per-verb
// breakdown; nil or an empty result files the call under "other".
func WithMeter(inner Network, reg *obs.Registry, verb func(req []byte) string) *Meter {
	if reg == nil {
		reg = obs.Default
	}
	return &Meter{inner: inner, reg: reg, verb: verb}
}

// Registry returns the registry the meter records into.
func (m *Meter) Registry() *obs.Registry { return m.reg }

// Listen implements Network by forwarding to the inner network.
func (m *Meter) Listen(addr string, h Handler) (Server, error) {
	return m.inner.Listen(addr, h)
}

// Call implements Network, recording the call and tagging remote errors
// with the verb name.
func (m *Meter) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	verb := "other"
	if m.verb != nil {
		if v := m.verb(req); v != "" {
			verb = v
		}
	}
	vl := obs.L("verb", verb)
	m.reg.Counter("transport_calls_total", vl).Inc()
	m.reg.Counter("transport_req_bytes_total", vl).Add(uint64(len(req)))

	sw := obs.StartTimer()
	resp, err := m.inner.Call(ctx, addr, req)
	ns := sw.ElapsedNanos()
	m.reg.Histogram("transport_call_ns", vl).Observe(ns)
	m.reg.Histogram("transport_addr_call_ns", obs.L("addr", addr)).Observe(ns)

	if err != nil {
		var re *RemoteError
		switch {
		case errors.As(err, &re):
			if re.Verb == "" {
				// Tag a copy, not the inner value: a shared or cached error
				// from the inner Network would otherwise race on Verb across
				// concurrent calls to different verbs.
				tagged := *re
				tagged.Verb = verb
				err = &tagged
			}
			m.reg.Counter("transport_errors_total", vl).Inc()
			if re.NotFound {
				m.reg.Counter("transport_not_found_total", vl).Inc()
			}
		case errors.Is(err, ErrUnreachable):
			m.reg.Counter("transport_unreachable_total", vl).Inc()
		}
		return resp, err
	}
	m.reg.Counter("transport_resp_bytes_total", vl).Add(uint64(len(resp)))
	return resp, nil
}

// Partition forwards fail-stop injection to the inner network; it is a
// no-op when the inner network is not fault-capable.
func (m *Meter) Partition(addr string) {
	if fn, ok := m.inner.(FaultNetwork); ok {
		fn.Partition(addr)
	}
}

// Heal forwards to the inner network; no-op when it is not fault-capable.
func (m *Meter) Heal(addr string) {
	if fn, ok := m.inner.(FaultNetwork); ok {
		fn.Heal(addr)
	}
}

var _ FaultNetwork = (*Meter)(nil)

// TextVerb is a verb namer for the REST-ful text protocols (proxy,
// supervisor, repair): the first whitespace-separated token, when it looks
// like an upper-case command word.
func TextVerb(req []byte) string {
	end := 0
	for end < len(req) && req[end] != ' ' && req[end] != '\n' && req[end] != '\r' && req[end] != '\t' {
		end++
	}
	word := req[:end]
	if len(word) == 0 || len(word) > 16 {
		return ""
	}
	for _, c := range word {
		if (c < 'A' || c > 'Z') && c != '-' && c != '_' {
			return ""
		}
	}
	return string(word)
}
