package transport

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"blobcr/internal/obs"
)

// splitTextReply separates an introspection reply's header line from its
// body and validates the "OK v1" prefix.
func splitTextReply(resp []byte) (header []string, body string, err error) {
	s := string(resp)
	head, rest, found := strings.Cut(s, "\n")
	if !found {
		head = s
	}
	fields := strings.Fields(head)
	if len(fields) < 2 || fields[0] != "OK" || fields[1] != obs.ExpositionVersion {
		if strings.HasPrefix(s, "ERR ") {
			return nil, "", fmt.Errorf("transport: introspection request failed: %s", strings.TrimSpace(s[4:]))
		}
		return nil, "", fmt.Errorf("transport: unexpected introspection reply %q", head)
	}
	return fields, rest, nil
}

// ScrapeExposition collects the full metrics exposition of the text endpoint
// at addr, following the chunked MORE continuations a large exposition is
// split into (see obs.Registry.TextReply): each reply either completes the
// scrape (OK v1) or names the offset to request next (OK v1 MORE <offset>).
func ScrapeExposition(ctx context.Context, n Network, addr string) (string, error) {
	var b strings.Builder
	req := "METRICS"
	for {
		resp, err := n.Call(ctx, addr, []byte(req))
		if err != nil {
			return "", err
		}
		fields, body, err := splitTextReply(resp)
		if err != nil {
			return "", err
		}
		b.WriteString(body)
		if len(fields) == 2 {
			return b.String(), nil
		}
		if len(fields) != 4 || fields[2] != "MORE" {
			return "", fmt.Errorf("transport: unexpected metrics header %q", strings.Join(fields, " "))
		}
		next, err := strconv.Atoi(fields[3])
		if err != nil || next < 0 {
			return "", fmt.Errorf("transport: bad metrics continuation offset %q", fields[3])
		}
		req = "METRICS " + fields[3]
	}
}

// TraceSpansText collects the spans the text endpoint at addr holds for one
// trace.
func TraceSpansText(ctx context.Context, n Network, addr string, trace uint64) ([]obs.SpanRecord, error) {
	return textSpans(ctx, n, addr, fmt.Sprintf("TRACE %x", trace))
}

// FlightSpansText dumps the flight-recorder ring of the text endpoint at
// addr.
func FlightSpansText(ctx context.Context, n Network, addr string) ([]obs.SpanRecord, error) {
	return textSpans(ctx, n, addr, "FLIGHT")
}

// HistoryWindow queries the history ring of the text endpoint at addr over
// the trailing window (the HISTORY verb, see obs.History). The reply is
// parsed strictly: a corrupt or truncated frame is an error, never a
// half-applied report.
func HistoryWindow(ctx context.Context, n Network, addr string, window time.Duration) (obs.WindowReport, error) {
	secs := int64(window / time.Second)
	if secs <= 0 {
		return obs.WindowReport{}, fmt.Errorf("transport: bad history window %v", window)
	}
	resp, err := n.Call(ctx, addr, fmt.Appendf(nil, "HISTORY %d", secs))
	if err != nil {
		return obs.WindowReport{}, err
	}
	_, body, err := splitTextReply(resp)
	if err != nil {
		return obs.WindowReport{}, err
	}
	return obs.ParseWindow([]byte(body))
}

func textSpans(ctx context.Context, n Network, addr, req string) ([]obs.SpanRecord, error) {
	resp, err := n.Call(ctx, addr, []byte(req))
	if err != nil {
		return nil, err
	}
	_, body, err := splitTextReply(resp)
	if err != nil {
		return nil, err
	}
	return obs.ParseSpans([]byte(body))
}
