package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoUpper is a trivial handler used across tests.
func echoUpper(_ context.Context, req []byte) ([]byte, error) {
	out := make([]byte, len(req))
	for i, b := range req {
		if 'a' <= b && b <= 'z' {
			b -= 'a' - 'A'
		}
		out[i] = b
	}
	return out, nil
}

func failing(_ context.Context, req []byte) ([]byte, error) {
	return nil, errors.New("boom")
}

func testNetworkBasics(t *testing.T, n Network) {
	t.Helper()
	srv, err := n.Listen("", echoUpper)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	resp, err := n.Call(context.Background(), srv.Addr(), []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "HELLO" {
		t.Errorf("resp = %q, want HELLO", resp)
	}

	// Empty request and response round-trip.
	resp, err = n.Call(context.Background(), srv.Addr(), nil)
	if err != nil {
		t.Fatalf("Call empty: %v", err)
	}
	if len(resp) != 0 {
		t.Errorf("empty call resp = %q", resp)
	}
}

func testNetworkRemoteError(t *testing.T, n Network) {
	t.Helper()
	srv, err := n.Listen("", failing)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = n.Call(context.Background(), srv.Addr(), []byte("x"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Msg != "boom" {
		t.Errorf("remote msg = %q, want boom", re.Msg)
	}
}

func testNetworkUnreachable(t *testing.T, n Network, badAddr string) {
	t.Helper()
	if _, err := n.Call(context.Background(), badAddr, []byte("x")); err == nil {
		t.Error("Call to unbound address succeeded")
	}
}

func testNetworkConcurrency(t *testing.T, n Network) {
	t.Helper()
	srv, err := n.Listen("", echoUpper)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			want := []byte(fmt.Sprintf("MSG-%d", i))
			resp, err := n.Call(context.Background(), srv.Addr(), msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, want) {
				errs <- fmt.Errorf("resp %q want %q", resp, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestInProcBasics(t *testing.T)      { testNetworkBasics(t, NewInProc()) }
func TestInProcRemoteError(t *testing.T) { testNetworkRemoteError(t, NewInProc()) }
func TestInProcUnreachable(t *testing.T) {
	testNetworkUnreachable(t, NewInProc(), "nowhere")
}
func TestInProcConcurrency(t *testing.T) { testNetworkConcurrency(t, NewInProc()) }

func TestTCPBasics(t *testing.T)      { testNetworkBasics(t, NewTCP()) }
func TestTCPRemoteError(t *testing.T) { testNetworkRemoteError(t, NewTCP()) }
func TestTCPUnreachable(t *testing.T) {
	testNetworkUnreachable(t, NewTCP(), "127.0.0.1:1") // port 1: nothing listens
}
func TestTCPConcurrency(t *testing.T) { testNetworkConcurrency(t, NewTCP()) }

func TestInProcDuplicateBind(t *testing.T) {
	n := NewInProc()
	if _, err := n.Listen("a", echoUpper); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a", echoUpper); err == nil {
		t.Error("duplicate bind succeeded")
	}
}

func TestInProcCloseUnbinds(t *testing.T) {
	n := NewInProc()
	srv, err := n.Listen("svc", echoUpper)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Call(context.Background(), "svc", nil); err == nil {
		t.Error("Call after Close succeeded")
	}
	// Address can be rebound after close.
	if _, err := n.Listen("svc", echoUpper); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestInProcPartition(t *testing.T) {
	n := NewInProc()
	srv, err := n.Listen("node1", echoUpper)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	n.Partition("node1")
	if _, err := n.Call(context.Background(), "node1", []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Errorf("partitioned call err = %v, want ErrUnreachable", err)
	}
	n.Heal("node1")
	if _, err := n.Call(context.Background(), "node1", []byte("x")); err != nil {
		t.Errorf("healed call err = %v", err)
	}
}

func TestTCPConnReuse(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	srv, err := n.Listen("", echoUpper)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Sequential calls reuse the pooled connection.
	for i := 0; i < 10; i++ {
		if _, err := n.Call(context.Background(), srv.Addr(), []byte("ping")); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	n.mu.Lock()
	idle := len(n.conns[srv.Addr()])
	n.mu.Unlock()
	if idle != 1 {
		t.Errorf("idle pool size = %d, want 1 (connection reuse broken)", idle)
	}
}

func TestTCPLargePayload(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	srv, err := n.Listen("", func(_ context.Context, req []byte) ([]byte, error) { return req, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	payload := make([]byte, 1<<20) // 1 MiB
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	resp, err := n.Call(context.Background(), srv.Addr(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Error("large payload corrupted in transit")
	}
}

func TestTCPServerCloseStopsService(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	srv, err := n.Listen("", echoUpper)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if _, err := n.Call(context.Background(), addr, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	n.Close() // drop pooled connections so the next call must redial
	if _, err := n.Call(context.Background(), addr, []byte("a")); err == nil {
		t.Error("Call succeeded after server close")
	}
}

// notFoundHandler returns an error wrapping ErrNotFound.
func notFoundHandler(_ context.Context, req []byte) ([]byte, error) {
	return nil, fmt.Errorf("missing thing: %w", ErrNotFound)
}

func testNetworkNotFound(t *testing.T, n Network) {
	t.Helper()
	srv, err := n.Listen("", notFoundHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = n.Call(context.Background(), srv.Addr(), []byte("x"))
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want errors.Is(err, ErrNotFound)", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || !re.NotFound {
		t.Errorf("err = %#v, want RemoteError with NotFound", err)
	}
}

func TestInProcNotFoundMark(t *testing.T) { testNetworkNotFound(t, NewInProc()) }
func TestTCPNotFoundMark(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	testNetworkNotFound(t, n)
}

func TestCallCancelledContext(t *testing.T) {
	n := NewInProc()
	srv, err := n.Listen("", echoUpper)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Call(ctx, srv.Addr(), []byte("x")); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestTCPCallDeadline(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	block := make(chan struct{})
	srv, err := n.Listen("", func(ctx context.Context, req []byte) ([]byte, error) {
		<-block
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); srv.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = n.Call(ctx, srv.Addr(), []byte("x"))
	if err == nil {
		t.Fatal("call to blocking handler succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline not enforced: call took %v", elapsed)
	}
}

func TestTCPCallCancelMidFlight(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	block := make(chan struct{})
	srv, err := n.Listen("", func(ctx context.Context, req []byte) ([]byte, error) {
		<-block
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); srv.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := n.Call(ctx, srv.Addr(), []byte("x")); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestLatencyWrapperCountsAndForwardsFaults(t *testing.T) {
	inner := NewInProc()
	net := WithLatency(inner, 0)
	srv, err := net.Listen("", func(_ context.Context, req []byte) ([]byte, error) {
		return append([]byte("pong:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := net.Call(context.Background(), srv.Addr(), []byte("x"))
	if err != nil || string(resp) != "pong:x" {
		t.Fatalf("call through latency wrapper: %q, %v", resp, err)
	}
	if net.Calls() != 1 {
		t.Errorf("Calls = %d, want 1", net.Calls())
	}
	// Fault injection reaches the inner network through the wrapper.
	net.Partition(srv.Addr())
	if _, err := net.Call(context.Background(), srv.Addr(), []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to partitioned addr = %v, want ErrUnreachable", err)
	}
	net.Heal(srv.Addr())
	if _, err := net.Call(context.Background(), srv.Addr(), []byte("x")); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if net.Calls() != 3 {
		t.Errorf("Calls = %d, want 3", net.Calls())
	}
}

// TestBandwidthModelsPerAddressPipes: the Bandwidth wrapper passes traffic
// through correctly, charges per-byte wall time on one pipe, and lets
// independent addresses proceed in parallel — striping across two addresses
// is roughly twice as fast as pushing the same bytes through one.
func TestBandwidthModelsPerAddressPipes(t *testing.T) {
	net := WithBandwidth(NewInProc(), 1<<20) // 1 MiB/s pipes
	echo := func(_ context.Context, req []byte) ([]byte, error) { return req, nil }
	a, err := net.Listen("", echo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Listen("", echo)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64*1024) // 64 KiB each way = 128 KiB moved

	resp, err := net.Call(context.Background(), a.Addr(), payload)
	if err != nil || len(resp) != len(payload) {
		t.Fatalf("call through bandwidth pipe: %d bytes, err %v", len(resp), err)
	}

	elapsed := func(addrs []string) time.Duration {
		t0 := time.Now()
		var wg sync.WaitGroup
		for _, addr := range addrs {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				net.Call(context.Background(), addr, payload)
			}(addr)
		}
		wg.Wait()
		return time.Since(t0)
	}
	// Two transfers down one pipe serialize; one per pipe runs in parallel.
	serial := elapsed([]string{a.Addr(), a.Addr()})
	striped := elapsed([]string{a.Addr(), b.Addr()})
	if striped >= serial {
		t.Errorf("striping across pipes (%v) not faster than one pipe (%v)", striped, serial)
	}

	// Fail-stop injection passes through to the inner network.
	net.Partition(a.Addr())
	if _, err := net.Call(context.Background(), a.Addr(), payload); err == nil {
		t.Error("call to partitioned address succeeded")
	}
	net.Heal(a.Addr())
	if _, err := net.Call(context.Background(), a.Addr(), payload); err != nil {
		t.Errorf("call after heal: %v", err)
	}
}
