package cas

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"blobcr/internal/chunkstore"
)

func TestFingerprintKeyDeterministic(t *testing.T) {
	a := Sum([]byte("hello"))
	b := Sum([]byte("hello"))
	if a != b {
		t.Fatal("same content, different fingerprints")
	}
	if a.Key() != b.Key() {
		t.Fatal("same fingerprint, different keys")
	}
	if Sum([]byte("world")).Key() == a.Key() {
		t.Fatal("different content collided on key")
	}
	if len(a.String()) != 64 {
		t.Errorf("hex fingerprint length = %d, want 64", len(a.String()))
	}
}

func TestFromBytesRejectsBadLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, 16)); err == nil {
		t.Error("FromBytes accepted 16 bytes")
	}
	fp := Sum([]byte("x"))
	got, err := FromBytes(fp[:])
	if err != nil || got != fp {
		t.Errorf("FromBytes round trip failed: %v", err)
	}
}

func TestPutRefReleaseLifecycle(t *testing.T) {
	s := NewMem()
	data := []byte("chunk body")
	fp := Sum(data)

	if s.Ref(fp) {
		t.Fatal("Ref on empty store reported held")
	}
	dup, err := s.PutContent(fp, data)
	if err != nil || dup {
		t.Fatalf("first PutContent: dup=%v err=%v", dup, err)
	}
	if !s.Ref(fp) {
		t.Fatal("Ref after put reported missing")
	}
	dup, err = s.PutContent(fp, data)
	if err != nil || !dup {
		t.Fatalf("second PutContent: dup=%v err=%v", dup, err)
	}
	if got := s.Refs(fp); got != 3 {
		t.Fatalf("refs = %d, want 3", got)
	}
	got, err := s.GetContent(fp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("GetContent = %q, %v", got, err)
	}

	for i := 3; i > 1; i-- {
		remaining, reclaimed, err := s.Release(fp)
		if err != nil || reclaimed != 0 || remaining != uint64(i-1) {
			t.Fatalf("release %d: remaining=%d reclaimed=%d err=%v", i, remaining, reclaimed, err)
		}
	}
	remaining, reclaimed, err := s.Release(fp)
	if err != nil || remaining != 0 || reclaimed != uint64(len(data)) {
		t.Fatalf("final release: remaining=%d reclaimed=%d err=%v", remaining, reclaimed, err)
	}
	if s.HasContent(fp) {
		t.Fatal("body survived refcount zero")
	}
	if _, err := s.GetContent(fp); err == nil {
		t.Fatal("GetContent succeeded after reclaim")
	}
	// Releasing an unknown fingerprint is a tolerated no-op.
	if _, _, err := s.Release(fp); err != nil {
		t.Fatalf("release of absent fingerprint: %v", err)
	}
}

func TestPutContentRejectsMismatch(t *testing.T) {
	s := NewMem()
	fp := Sum([]byte("claimed"))
	if _, err := s.PutContent(fp, []byte("actual")); err == nil {
		t.Fatal("PutContent accepted mismatched content")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := NewMem()
	a, b := []byte("aaaa"), []byte("bbbbbbbb")
	s.PutContent(Sum(a), a) // miss
	s.PutContent(Sum(b), b) // miss
	s.Ref(Sum(a))           // hit
	s.PutContent(Sum(a), a) // hit (dup)

	st := s.Stats()
	if st.Chunks != 2 {
		t.Errorf("Chunks = %d, want 2", st.Chunks)
	}
	if st.PhysicalBytes != 12 {
		t.Errorf("PhysicalBytes = %d, want 12", st.PhysicalBytes)
	}
	if want := uint64(3*len(a) + len(b)); st.LogicalBytes != want {
		t.Errorf("LogicalBytes = %d, want %d", st.LogicalBytes, want)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("Hits/Misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("HitRate = %f, want 0.5", st.HitRate())
	}
	if st.Refs != 4 {
		t.Errorf("Refs = %d, want 4", st.Refs)
	}

	s.Release(Sum(b))
	st = s.Stats()
	if st.ReclaimedChunks != 1 || st.ReclaimedBytes != uint64(len(b)) {
		t.Errorf("Reclaimed = %d chunks / %d bytes, want 1 / %d", st.ReclaimedChunks, st.ReclaimedBytes, len(b))
	}
}

func TestChunkstorePassthroughAndSweepDelete(t *testing.T) {
	s := NewMem()
	// Plain (blob, id) chunk traffic is untouched by the index.
	k := chunkstore.Key{Blob: 7, ID: 9}
	if err := s.Put(k, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(k); err != nil || string(got) != "plain" {
		t.Fatalf("plain Get = %q, %v", got, err)
	}

	// A CAS body deleted by a mark-and-sweep pass loses its index entry too,
	// whatever its refcount was.
	data := []byte("cas body")
	fp := Sum(data)
	s.PutContent(fp, data)
	s.Ref(fp)
	if err := s.Delete(fp.Key()); err != nil {
		t.Fatal(err)
	}
	if s.HasContent(fp) || s.Refs(fp) != 0 {
		t.Fatal("index entry survived sweep delete")
	}
	// A later Ref must report missing, forcing a fresh upload.
	if s.Ref(fp) {
		t.Fatal("Ref resurrected a swept body")
	}
	if s.Len() != 1 || s.UsedBytes() != 5 {
		t.Errorf("Len/UsedBytes = %d/%d, want 1/5", s.Len(), s.UsedBytes())
	}
}

func TestDiskRecoveryRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	disk, err := chunkstore.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(disk)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("persisted chunk")
	fp := Sum(data)
	if _, err := s.PutContent(fp, data); err != nil {
		t.Fatal(err)
	}
	// Also a plain chunk, which recovery must leave alone.
	if err := s.Put(chunkstore.Key{Blob: 1, ID: 2}, []byte("plain")); err != nil {
		t.Fatal(err)
	}

	reopened, err := chunkstore.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(reopened)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.HasContent(fp) {
		t.Fatal("recovered store lost the CAS body")
	}
	// Dedup works against recovered content: no second body stored.
	if !s2.Ref(fp) {
		t.Fatal("Ref missed recovered content")
	}
	if s2.Stats().Chunks != 1 {
		t.Errorf("recovered index has %d chunks, want 1", s2.Stats().Chunks)
	}
	// A recovered body's true count is unknown (it may be referenced by
	// snapshots committed before the restart), so releasing every counted
	// reference must NOT delete it — only a mark-and-sweep Delete may.
	if remaining, reclaimed, err := s2.Release(fp); err != nil || remaining != 0 || reclaimed != 0 {
		t.Fatalf("release on recovered body: remaining=%d reclaimed=%d err=%v", remaining, reclaimed, err)
	}
	if !s2.HasContent(fp) {
		t.Fatal("refcount release deleted a pinned (recovered) body")
	}
	if _, _, err := s2.Release(fp); err != nil {
		t.Fatalf("over-release of pinned body: %v", err)
	}
	if !s2.HasContent(fp) {
		t.Fatal("over-release deleted a pinned body")
	}
	if err := s2.Delete(fp.Key()); err != nil {
		t.Fatal(err)
	}
	if s2.HasContent(fp) {
		t.Fatal("sweep delete left a pinned body behind")
	}
}

// TestConcurrentRefcountStress races parallel committers (Ref/PutContent +
// read) against releasers over a small shared content pool: a chunk must
// never be reclaimed while a committer holds a reference it just took.
// Run with -race.
func TestConcurrentRefcountStress(t *testing.T) {
	s := NewMem()
	const (
		workers = 8
		rounds  = 300
		pool    = 5
	)
	contents := make([][]byte, pool)
	fps := make([]Fingerprint, pool)
	for i := range contents {
		contents[i] = bytes.Repeat([]byte{byte('A' + i)}, 512)
		fps[i] = Sum(contents[i])
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % pool
				fp := fps[i]
				// Acquire a reference the way a dedup commit does.
				if !s.Ref(fp) {
					if _, err := s.PutContent(fp, contents[i]); err != nil {
						errs <- fmt.Errorf("worker %d round %d: put: %w", w, r, err)
						return
					}
				}
				// While we hold the reference, the body must be readable —
				// even though other workers are releasing concurrently.
				got, err := s.GetContent(fp)
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: live chunk reclaimed: %w", w, r, err)
					return
				}
				if !bytes.Equal(got, contents[i]) {
					errs <- fmt.Errorf("worker %d round %d: corrupt body", w, r)
					return
				}
				// Snapshot retire: drop the reference again.
				if _, _, err := s.Release(fp); err != nil {
					errs <- fmt.Errorf("worker %d round %d: release: %w", w, r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All references were balanced; everything must have been reclaimed.
	st := s.Stats()
	if st.Refs != 0 {
		t.Errorf("leaked %d references", st.Refs)
	}
	if st.Chunks != 0 {
		t.Errorf("%d bodies survived balanced release", st.Chunks)
	}
}
