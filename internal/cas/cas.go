// Package cas implements the content-addressed deduplicated checkpoint
// repository: chunk bodies are identified by the SHA-256 fingerprint of
// their content, stored once no matter how many snapshots reference them,
// and reclaimed by reference counting.
//
// Motivation (stdchk, Al Kiswany et al.; BlobCR §mirroring module): across
// ranks and across successive checkpoints many "dirty" chunks are
// byte-identical — zero pages, base-image content re-touched by the guest
// file system, convergent application state across VMs. Addressing chunks
// by content instead of by (blob, id) lets the repository store one body per
// distinct content and lets writers skip the network transfer entirely when
// the repository already holds a fingerprint.
//
// A Store layers the dedup index over any chunkstore.Store backend (in-memory
// for tests and simulation, on-disk for blobseerd), storing each body under
// the chunkstore key derived from its fingerprint. The Store itself
// implements chunkstore.Store, so existing consumers — the data provider's
// plain chunk ops, usage accounting, and the mark-and-sweep GC — keep working
// unchanged on a CAS-capable provider.
//
// Reference counting: every published chunk write holds one reference per
// replica (Ref on a dedup hit, PutContent on a miss). Retiring a snapshot
// releases the references its superseded writes held (Release); a body whose
// count reaches zero is deleted immediately. This makes snapshot-retire
// garbage collection O(retired chunks) instead of a whole-repository sweep —
// the paper's proposed transparent snapshot GC (future work, see
// internal/blobseer) in its cheap incremental form. The mark-and-sweep GC
// remains available as a full-fidelity fallback collector; its Delete path
// drops both the body and the index entry.
//
// The dedup index lives in memory. For a disk-backed Store reopened over an
// existing directory, the index is recovered by re-hashing the stored bodies.
// A recovered body's true reference count is unknown, so it is pinned:
// available for dedup hits, but never deleted by refcount release — only the
// mark-and-sweep GC, which decides liveness by global reachability, reclaims
// it. Anything less would let a restart-then-retire delete a body a live
// snapshot still references.
package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"blobcr/internal/chunkstore"
)

// Fingerprint is the SHA-256 digest of a chunk body.
type Fingerprint [32]byte

// Sum fingerprints a chunk body.
func Sum(data []byte) Fingerprint { return sha256.Sum256(data) }

// Key derives the chunkstore key under which the body is stored: the first
// 16 digest bytes, big-endian. 128 bits of a cryptographic hash make
// accidental collisions (with each other or with the small sequential
// (blob, id) keys of the non-CAS path) negligible.
func (fp Fingerprint) Key() chunkstore.Key {
	return chunkstore.Key{
		Blob: binary.BigEndian.Uint64(fp[0:8]),
		ID:   binary.BigEndian.Uint64(fp[8:16]),
	}
}

// String renders the fingerprint in hex.
func (fp Fingerprint) String() string { return hex.EncodeToString(fp[:]) }

// FromBytes copies a 32-byte slice into a Fingerprint.
func FromBytes(p []byte) (Fingerprint, error) {
	var fp Fingerprint
	if len(p) != len(fp) {
		return fp, fmt.Errorf("cas: fingerprint must be %d bytes, got %d", len(fp), len(p))
	}
	copy(fp[:], p)
	return fp, nil
}

// ErrContentMismatch is returned by PutContent when the body does not hash
// to the claimed fingerprint (corruption in transit or a buggy writer).
var ErrContentMismatch = errors.New("cas: content does not match fingerprint")

// Stats is a snapshot of the repository's dedup accounting.
type Stats struct {
	Chunks          uint64 // distinct bodies currently stored
	Refs            uint64 // live references across all bodies
	PhysicalBytes   uint64 // bytes of stored bodies
	LogicalBytes    uint64 // bytes the live references represent (refs x size)
	Hits            uint64 // cumulative dedup hits (reference taken, body already held)
	Misses          uint64 // cumulative misses (body had to be stored)
	ReclaimedChunks uint64 // bodies deleted because their count reached zero
	ReclaimedBytes  uint64
}

// Add accumulates other into s (aggregation across providers).
func (s *Stats) Add(o Stats) {
	s.Chunks += o.Chunks
	s.Refs += o.Refs
	s.PhysicalBytes += o.PhysicalBytes
	s.LogicalBytes += o.LogicalBytes
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.ReclaimedChunks += o.ReclaimedChunks
	s.ReclaimedBytes += o.ReclaimedBytes
}

// HitRate returns the fraction of reference acquisitions that were dedup
// hits, in [0, 1].
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is the index record for one stored body.
type entry struct {
	fp   Fingerprint
	refs uint64
	size uint32
	// pinned marks a body recovered from a pre-existing backend: its true
	// reference count is unknown (counts live in memory), so refcount
	// release must never delete it — only a mark-and-sweep pass, which has
	// global reachability knowledge, may (via Delete).
	pinned bool
}

// casStripes is the width of the per-fingerprint lock table: wide enough
// that concurrent committers rarely collide on a stripe.
const casStripes = 64

// Store is a refcounted content-addressed repository over a chunkstore
// backend. It is safe for concurrent use. Mutating operations on one body
// serialize on a striped per-fingerprint lock — taken before, and held
// across, any backend I/O — so a body can never be reclaimed between a
// successful Ref and the read it protects. mu guards only the in-memory
// index and counters and is never held across backend calls: bodies with
// different fingerprints reach the backend concurrently, which is what lets
// a group-committing backend (seglog) batch their fsyncs.
//
// Lock order: stripe, then mu.
type Store struct {
	mu      sync.Mutex
	backend chunkstore.Store
	index   map[Fingerprint]*entry
	byKey   map[chunkstore.Key]Fingerprint

	stripes [casStripes]sync.Mutex

	hits, misses    uint64
	logicalBytes    uint64
	reclaimedChunks uint64
	reclaimedBytes  uint64
}

// stripe returns the serialization lock for every operation touching the
// body stored under k. Fingerprint-addressed operations stripe by fp.Key(),
// so a CAS op and a key op on the same body always share a stripe.
func (s *Store) stripe(k chunkstore.Key) *sync.Mutex {
	h := (k.Blob ^ k.ID) * 0x9e3779b97f4a7c15 // Fibonacci mixing
	return &s.stripes[(h>>32)%casStripes]
}

// keyLister is satisfied by both chunkstore backends.
type keyLister interface{ Keys() []chunkstore.Key }

// NewStore layers a CAS index over backend. If the backend already holds
// chunks (a reopened disk store), bodies whose key matches their content
// fingerprint are recovered into the index with one reference each;
// non-CAS chunks are left alone.
func NewStore(backend chunkstore.Store) (*Store, error) {
	s := &Store{
		backend: backend,
		index:   make(map[Fingerprint]*entry),
		byKey:   make(map[chunkstore.Key]Fingerprint),
	}
	lister, ok := backend.(keyLister)
	if !ok {
		return s, nil
	}
	for _, k := range lister.Keys() {
		data, err := backend.Get(k)
		if err != nil {
			return nil, fmt.Errorf("cas: recover index: %w", err)
		}
		fp := Sum(data)
		if fp.Key() != k {
			continue // a (blob, id)-addressed chunk, not ours
		}
		s.indexLocked(fp, uint32(len(data)), 0)
		s.index[fp].pinned = true
	}
	return s, nil
}

// NewMem returns a CAS store over a fresh in-memory backend.
func NewMem() *Store {
	s, _ := NewStore(chunkstore.NewMem()) // Mem recovery cannot fail
	return s
}

// indexLocked installs an index entry. Caller holds s.mu (or is in init).
func (s *Store) indexLocked(fp Fingerprint, size uint32, refs uint64) {
	s.index[fp] = &entry{fp: fp, refs: refs, size: size}
	s.byKey[fp.Key()] = fp
	s.logicalBytes += refs * uint64(size)
}

// Ref takes one reference on fp if the repository holds its body, and
// reports whether it did. A false return means the caller must upload the
// body with PutContent ("have fingerprint?" round trip).
func (s *Store) Ref(fp Fingerprint) bool {
	st := s.stripe(fp.Key())
	st.Lock()
	defer st.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[fp]
	if !ok {
		return false
	}
	e.refs++
	s.hits++
	s.logicalBytes += uint64(e.size)
	return true
}

// PutContent stores a body under its fingerprint and takes one reference.
// If the body is already held (a concurrent writer won the race), no bytes
// are written and dup is true.
func (s *Store) PutContent(fp Fingerprint, data []byte) (dup bool, err error) {
	if Sum(data) != fp {
		return false, fmt.Errorf("%w: %s", ErrContentMismatch, fp)
	}
	st := s.stripe(fp.Key())
	st.Lock()
	defer st.Unlock()
	s.mu.Lock()
	if e, ok := s.index[fp]; ok {
		e.refs++
		s.hits++
		s.logicalBytes += uint64(e.size)
		s.mu.Unlock()
		return true, nil
	}
	s.mu.Unlock()
	// Backend write outside mu: same-fingerprint writers are serialized by
	// the stripe, different bodies land in the backend concurrently.
	if err := s.backend.Put(fp.Key(), data); err != nil {
		return false, err
	}
	s.mu.Lock()
	s.indexLocked(fp, uint32(len(data)), 1)
	s.misses++
	s.mu.Unlock()
	return false, nil
}

// Release drops one reference on fp. When the count reaches zero the body is
// deleted — unless the entry was recovered from a pre-existing backend
// (pinned), whose true count is unknown: pinned bodies outlive their counted
// references and are left for the mark-and-sweep pass. Releasing an unknown
// fingerprint is a no-op (the body was already collected by a sweep).
func (s *Store) Release(fp Fingerprint) (remaining uint64, reclaimedBytes uint64, err error) {
	st := s.stripe(fp.Key())
	st.Lock()
	defer st.Unlock()
	s.mu.Lock()
	e, ok := s.index[fp]
	if !ok {
		s.mu.Unlock()
		return 0, 0, nil
	}
	if e.refs > 0 {
		e.refs--
		s.logicalBytes -= uint64(e.size)
	}
	if e.refs > 0 || e.pinned {
		rem := e.refs
		s.mu.Unlock()
		return rem, 0, nil
	}
	s.mu.Unlock()
	// Count hit zero: delete the body. The stripe (held) keeps a concurrent
	// Ref from reviving the entry while the backend delete is in flight.
	if err := s.backend.Delete(fp.Key()); err != nil {
		s.mu.Lock()
		e.refs++ // keep the index consistent with the backend
		s.logicalBytes += uint64(e.size)
		rem := e.refs
		s.mu.Unlock()
		return rem, 0, err
	}
	s.mu.Lock()
	delete(s.index, fp)
	delete(s.byKey, fp.Key())
	s.reclaimedChunks++
	s.reclaimedBytes += uint64(e.size)
	s.mu.Unlock()
	return 0, uint64(e.size), nil
}

// GetContent returns the body for fp.
func (s *Store) GetContent(fp Fingerprint) ([]byte, error) {
	return s.backend.Get(fp.Key())
}

// HasContent reports whether the repository holds fp without taking a
// reference.
func (s *Store) HasContent(fp Fingerprint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[fp]
	return ok
}

// Refs returns the live reference count for fp (0 if absent).
func (s *Store) Refs(fp Fingerprint) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[fp]; ok {
		return e.refs
	}
	return 0
}

// Stats returns a snapshot of the dedup accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Chunks:          uint64(len(s.index)),
		Refs:            s.refsLocked(),
		PhysicalBytes:   s.physicalLocked(),
		LogicalBytes:    s.logicalBytes,
		Hits:            s.hits,
		Misses:          s.misses,
		ReclaimedChunks: s.reclaimedChunks,
		ReclaimedBytes:  s.reclaimedBytes,
	}
}

func (s *Store) refsLocked() uint64 {
	var n uint64
	for _, e := range s.index {
		n += e.refs
	}
	return n
}

func (s *Store) physicalLocked() uint64 {
	var n uint64
	for _, e := range s.index {
		n += uint64(e.size)
	}
	return n
}

// --- chunkstore.Store interface ---
//
// The CAS store is itself a chunk store: plain (blob, id)-keyed puts pass
// through to the backend untouched, reads and usage accounting see both kinds
// of chunk, and Delete — the mark-and-sweep GC's primitive — also drops the
// dedup index entry so a swept body cannot be resurrected by a stale count.

// Put implements chunkstore.Store (non-CAS passthrough). Only same-key puts
// serialize; the backend sees concurrent puts from concurrent committers.
func (s *Store) Put(k chunkstore.Key, data []byte) error {
	st := s.stripe(k)
	st.Lock()
	defer st.Unlock()
	return s.backend.Put(k, data)
}

// Get implements chunkstore.Store.
func (s *Store) Get(k chunkstore.Key) ([]byte, error) { return s.backend.Get(k) }

// Has implements chunkstore.Store.
func (s *Store) Has(k chunkstore.Key) bool { return s.backend.Has(k) }

// Delete implements chunkstore.Store. Deleting a CAS-held body removes its
// index entry regardless of its count: the caller (a mark-and-sweep GC pass)
// has global reachability knowledge that overrides local counting.
func (s *Store) Delete(k chunkstore.Key) error {
	st := s.stripe(k)
	st.Lock()
	defer st.Unlock()
	s.mu.Lock()
	if fp, ok := s.byKey[k]; ok {
		if e, ok := s.index[fp]; ok {
			s.logicalBytes -= e.refs * uint64(e.size)
			s.reclaimedChunks++
			s.reclaimedBytes += uint64(e.size)
		}
		delete(s.index, fp)
		delete(s.byKey, k)
	}
	s.mu.Unlock()
	return s.backend.Delete(k)
}

// Len implements chunkstore.Store.
func (s *Store) Len() int { return s.backend.Len() }

// UsedBytes implements chunkstore.Store (physical bytes).
func (s *Store) UsedBytes() int64 { return s.backend.UsedBytes() }

// Keys returns all stored chunk keys (garbage collection sweeps).
func (s *Store) Keys() []chunkstore.Key {
	if l, ok := s.backend.(keyLister); ok {
		return l.Keys()
	}
	return nil
}

// EngineStats implements chunkstore.EngineStatser, forwarding the backend's
// engine view with the CAS layer noted in the backend name.
func (s *Store) EngineStats() chunkstore.EngineStats {
	es := chunkstore.StatsOf(s.backend)
	es.Backend = "cas+" + es.Backend
	return es
}

// CompactNow implements chunkstore.Compactor by delegating to the backend;
// for backends with nothing to compact it is a zero-result no-op.
func (s *Store) CompactNow() (chunkstore.CompactResult, error) {
	if c, ok := s.backend.(chunkstore.Compactor); ok {
		return c.CompactNow()
	}
	return chunkstore.CompactResult{}, nil
}

// Close releases the backend's resources (segment files, directory handles).
func (s *Store) Close() error {
	if c, ok := s.backend.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

var (
	_ chunkstore.Store         = (*Store)(nil)
	_ chunkstore.EngineStatser = (*Store)(nil)
	_ chunkstore.Compactor     = (*Store)(nil)
)
