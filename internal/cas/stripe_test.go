package cas

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
	"blobcr/internal/seglog"
)

// TestConcurrentRefReleasePutContent hammers the striped-lock refcounting:
// bodies are stored, referenced and released concurrently, and the final
// index must agree with the net reference counts. Run under -race.
func TestConcurrentRefReleasePutContent(t *testing.T) {
	s := NewMem()
	const (
		workers = 16
		bodies  = 8
	)
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 200+i) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < bodies; i++ {
				body := payload(i)
				fp := Sum(body)
				if !s.Ref(fp) {
					if _, err := s.PutContent(fp, body); err != nil {
						t.Errorf("PutContent: %v", err)
						return
					}
				}
				got, err := s.GetContent(fp)
				if err != nil || !bytes.Equal(got, body) {
					t.Errorf("GetContent %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := s.Stats()
	if st.Chunks != bodies {
		t.Fatalf("Chunks = %d, want %d (dedup broke)", st.Chunks, bodies)
	}
	if st.Refs != workers*bodies {
		t.Fatalf("Refs = %d, want %d", st.Refs, workers*bodies)
	}
	// Release every reference concurrently; all bodies must reclaim.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < bodies; i++ {
				if _, _, err := s.Release(Sum(payload(i))); err != nil {
					t.Errorf("Release: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	st = s.Stats()
	if st.Chunks != 0 || st.Refs != 0 {
		t.Fatalf("after full release: chunks=%d refs=%d", st.Chunks, st.Refs)
	}
}

// TestCasOverSeglog runs the CAS layer over the log-structured backend: the
// combination the blobseerd data provider ships. Dedup, release-to-zero
// reclamation and compaction forwarding must all hold, and the whole state
// must survive a reopen of the log.
func TestCasOverSeglog(t *testing.T) {
	dir := t.TempDir()
	backend, err := seglog.Open(dir, seglog.Options{DisableAutoCompact: true, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(backend)
	if err != nil {
		t.Fatal(err)
	}
	keep := bytes.Repeat([]byte("keep"), 512)
	drop := bytes.Repeat([]byte("drop"), 512)
	for _, body := range [][]byte{keep, drop} {
		if _, err := s.PutContent(Sum(body), body); err != nil {
			t.Fatal(err)
		}
	}
	if es := s.EngineStats(); es.Backend != "cas+seglog" {
		t.Fatalf("Backend = %q", es.Backend)
	}
	if _, _, err := s.Release(Sum(drop)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompactNow(); err != nil {
		t.Fatalf("CompactNow forwarding: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	backend2, err := seglog.Open(dir, seglog.Options{DisableAutoCompact: true, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(backend2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.GetContent(Sum(keep))
	if err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("kept body lost across reopen: %v", err)
	}
	if s2.HasContent(Sum(drop)) {
		t.Fatal("released body resurrected across reopen")
	}
	// Recovered bodies are pinned: a release must not delete them.
	if !s2.Ref(Sum(keep)) {
		t.Fatal("recovered body not in index")
	}
	s2.Release(Sum(keep)) //nolint:errcheck
	s2.Release(Sum(keep)) //nolint:errcheck
	if !s2.HasContent(Sum(keep)) {
		t.Fatal("pinned body deleted by refcount release")
	}
}

// gateStore proves backend-level concurrency: each Put blocks until another
// Put is inside the backend at the same time. A CAS layer that held a
// store-wide lock across backend I/O (the old design) would admit one Put at
// a time and trip the timeout.
type gateStore struct {
	chunkstore.Store
	entered chan struct{}
	proceed chan struct{}
	timeout *bool
}

func (g *gateStore) Put(k chunkstore.Key, data []byte) error {
	g.entered <- struct{}{}
	select {
	case <-g.proceed:
	case <-time.After(2 * time.Second):
		*g.timeout = true
	}
	return g.Store.Put(k, data)
}

// TestConcurrentPassthroughPuts: distinct (blob, id) puts through the CAS
// layer must reach the backend concurrently — that concurrency is what lets
// a group-committing backend batch their fsyncs.
func TestConcurrentPassthroughPuts(t *testing.T) {
	var timedOut bool
	g := &gateStore{
		Store:   chunkstore.NewMem(),
		entered: make(chan struct{}, 2),
		proceed: make(chan struct{}),
		timeout: &timedOut,
	}
	go func() {
		<-g.entered
		<-g.entered
		close(g.proceed) // both writers are inside the backend at once
	}()
	s, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := chunkstore.Key{Blob: 1, ID: uint64(i)}
			if err := s.Put(k, []byte(fmt.Sprintf("chunk-%d", i))); err != nil {
				t.Errorf("Put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if timedOut {
		t.Fatal("the CAS layer serialized backend puts: second Put never entered while the first was inside")
	}
	// Same-fingerprint content writes must also run concurrently for
	// distinct fingerprints; sanity-check the striped path end to end.
	if _, err := s.PutContent(Sum([]byte("body")), []byte("body")); err != nil {
		t.Fatal(err)
	}
}
