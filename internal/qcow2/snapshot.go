package qcow2

import (
	"fmt"
)

// SnapshotInfo describes one internal snapshot.
type SnapshotInfo struct {
	Name       string
	VMStateLen uint64
}

// Snapshots lists the image's internal snapshots, newest first.
func (img *Image) Snapshots() []SnapshotInfo {
	img.mu.Lock()
	defer img.mu.Unlock()
	out := make([]SnapshotInfo, 0, len(img.snaps))
	for _, s := range img.snaps {
		out = append(out, SnapshotInfo{Name: s.name, VMStateLen: s.vmstateLen})
	}
	return out
}

func (img *Image) findSnapshot(name string) (int, bool) {
	for i, s := range img.snaps {
		if s.name == name {
			return i, true
		}
	}
	return 0, false
}

// Snapshot creates an internal snapshot of the current disk contents under
// name, storing vmstate (the serialized VM device/RAM state for the savevm
// path; may be nil for a disk-only internal snapshot) inside the image.
// The current mapping becomes copy-on-write: subsequent guest writes
// allocate new clusters, and the snapshot keeps the old ones — so the file
// only ever grows, reproducing qcow2-full's storage behaviour.
func (img *Image) Snapshot(name string, vmstate []byte) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("qcow2: invalid snapshot name %q", name)
	}
	if _, exists := img.findSnapshot(name); exists {
		return fmt.Errorf("%w: %q", ErrSnapshotExists, name)
	}

	// Persist the active L1 before copying it.
	if err := img.writeL1(); err != nil {
		return err
	}

	// Copy the L1 table into fresh clusters.
	l1Bytes := uint64(len(img.l1) * 8)
	l1Clusters := ceilDiv(l1Bytes, img.clusterSize)
	if l1Clusters == 0 {
		l1Clusters = 1
	}
	l1CopyOff, err := img.allocExtent(l1Clusters)
	if err != nil {
		return err
	}
	if err := img.writeL1At(img.l1, l1CopyOff); err != nil {
		return err
	}

	// Store the vmstate.
	var vmOff, vmLen uint64
	if len(vmstate) > 0 {
		vmLen = uint64(len(vmstate))
		vmOff, err = img.allocExtent(ceilDiv(vmLen, img.clusterSize))
		if err != nil {
			return err
		}
		if _, err := img.b.WriteAt(vmstate, int64(vmOff)); err != nil {
			return fmt.Errorf("qcow2: write vmstate: %w", err)
		}
	}

	// The snapshot's L1 copy references the same L2 tables the active
	// mapping does; bumping their refcounts makes subsequent guest writes
	// copy-on-write (the L2 copy in turn protects the data clusters).
	img.addTableRefs(img.l1, 1)

	// Write the snapshot record and link it at the head of the chain.
	rec := snapshot{
		name:       name,
		l1Offset:   l1CopyOff,
		vmstateOff: vmOff,
		vmstateLen: vmLen,
		next:       img.snapHead,
	}
	recLen := uint64(2 + len(name) + 32)
	rec.recOffset, err = img.allocExtent(ceilDiv(recLen, img.clusterSize))
	if err != nil {
		return err
	}
	if err := img.writeSnapshotRecord(&rec); err != nil {
		return err
	}
	img.snapHead = rec.recOffset
	img.snaps = append([]snapshot{rec}, img.snaps...)
	return img.writeHeader()
}

// RestoreSnapshot rolls the active disk contents back to the named snapshot
// and returns its stored vmstate (nil if none was saved). The snapshot
// itself is preserved and can be restored again.
func (img *Image) RestoreSnapshot(name string) ([]byte, error) {
	img.mu.Lock()
	defer img.mu.Unlock()
	i, ok := img.findSnapshot(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSnapshotNotFound, name)
	}
	s := img.snaps[i]
	snapL1, err := img.readL1Copy(s.l1Offset)
	if err != nil {
		return nil, err
	}
	// The snapshot's table becomes the active one: it gains a reference,
	// the old active mapping loses its own.
	img.addTableRefs(snapL1, 1)
	oldL1 := img.l1
	img.l1 = snapL1
	for _, l2off := range oldL1 {
		if l2off != 0 {
			img.releaseL2(l2off)
		}
	}
	if err := img.writeL1(); err != nil {
		return nil, err
	}
	if err := img.writeHeader(); err != nil {
		return nil, err
	}
	if s.vmstateLen == 0 {
		return nil, nil
	}
	vmstate := make([]byte, s.vmstateLen)
	if _, err := img.b.ReadAt(vmstate, int64(s.vmstateOff)); err != nil {
		return nil, fmt.Errorf("qcow2: read vmstate: %w", err)
	}
	return vmstate, nil
}

// DeleteSnapshot removes the named snapshot, releasing the clusters only it
// referenced (they are reused for future writes; the file does not shrink,
// matching qcow2).
func (img *Image) DeleteSnapshot(name string) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	i, ok := img.findSnapshot(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrSnapshotNotFound, name)
	}
	s := img.snaps[i]

	// Drop the snapshot's references to the mapped clusters.
	snapL1, err := img.readL1Copy(s.l1Offset)
	if err != nil {
		return err
	}
	for _, l2off := range snapL1 {
		if l2off != 0 {
			img.releaseL2(l2off)
		}
	}
	// Free the L1 copy, vmstate and record storage.
	img.freeClusterRange(s.l1Offset, uint64(len(img.l1)*8))
	if s.vmstateLen > 0 {
		img.freeClusterRange(s.vmstateOff, s.vmstateLen)
	}
	img.freeClusterRange(s.recOffset, uint64(2+len(s.name)+32))

	// Unlink from the chain.
	if i == 0 {
		img.snapHead = s.next
		if err := img.writeHeader(); err != nil {
			return err
		}
	} else {
		img.snaps[i-1].next = s.next
		if err := img.writeSnapshotRecord(&img.snaps[i-1]); err != nil {
			return err
		}
	}
	img.snaps = append(img.snaps[:i], img.snaps[i+1:]...)
	return nil
}

func (img *Image) freeClusterRange(off, length uint64) {
	if length == 0 {
		return
	}
	start := off / img.clusterSize * img.clusterSize
	end := off + length
	for c := start; c < end; c += img.clusterSize {
		img.release(c)
	}
}
