// Package qcow2 implements a qcow2-style copy-on-write virtual disk image,
// the baseline snapshotting mechanism the paper compares against.
//
// The format follows qcow2's structure: the image is divided into clusters;
// a two-level table (L1 -> L2 -> data cluster) maps virtual clusters to
// physical clusters inside the image file; unallocated clusters read through
// to an optional read-only backing image (or as zeros). Writes allocate
// clusters on demand, growing the file — which is exactly why the
// qcow2-disk baseline's snapshot cost grows over time: the whole (growing)
// image file must be copied to the parallel file system at every checkpoint.
//
// Internal snapshots (the savevm path of the qcow2-full baseline) copy the
// L1 table and bump per-cluster reference counts, making subsequent writes
// copy-on-write; the VM device state is stored inside the image next to the
// snapshot record.
//
// The on-file layout is our own (little-endian, rebuilt refcounts), but the
// mechanisms — cluster granularity, two-level lookup, backing files, COW
// after snapshot, file growth — match qcow2, so the baseline's performance
// shape is preserved.
package qcow2

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"blobcr/internal/vdisk"
)

// Backend is the file-like storage under an image: an *os.File or a
// vdisk.Buffer.
type Backend interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Size() int64
	Sync() error
}

const (
	magic         = 0x51474f32 // "QGO2"
	formatVersion = 1
	headerSize    = 512
	// DefaultClusterSize matches qcow2's default of 64 KiB.
	DefaultClusterSize = 64 * 1024
	maxNameLen         = 255
)

// Common errors.
var (
	ErrBadImage         = errors.New("qcow2: not a valid image")
	ErrSnapshotNotFound = errors.New("qcow2: snapshot not found")
	ErrSnapshotExists   = errors.New("qcow2: snapshot name already exists")
)

// snapshot is one internal snapshot record.
type snapshot struct {
	name       string
	l1Offset   uint64 // physical offset of this snapshot's L1 copy
	vmstateOff uint64 // physical offset of the saved VM state (0 = none)
	vmstateLen uint64
	recOffset  uint64 // physical offset of the record itself
	next       uint64 // offset of the next record (0 = end of chain)
}

// Image is an open copy-on-write image.
type Image struct {
	mu          sync.Mutex
	b           Backend
	backing     vdisk.Device // read-only base image; may be nil
	backingName string

	clusterSize uint64
	virtualSize uint64
	l1Offset    uint64
	l1          []uint64 // active mapping; entry 0 = unallocated
	snapHead    uint64
	snaps       []snapshot

	refcnt   map[uint64]int // physical cluster offset -> references
	freeList []uint64
	nextFree uint64 // physical end of file
}

// Create initializes a new image on b with the given cluster size (0 means
// DefaultClusterSize), virtual disk size, and optional backing device. The
// backingName is recorded in the header for bookkeeping.
func Create(b Backend, clusterSize int, virtualSize int64, backing vdisk.Device, backingName string) (*Image, error) {
	if clusterSize == 0 {
		clusterSize = DefaultClusterSize
	}
	if clusterSize < headerSize || clusterSize&(clusterSize-1) != 0 {
		return nil, fmt.Errorf("qcow2: cluster size %d must be a power of two >= %d", clusterSize, headerSize)
	}
	if virtualSize < 0 {
		return nil, errors.New("qcow2: negative virtual size")
	}
	if len(backingName) > maxNameLen {
		return nil, errors.New("qcow2: backing name too long")
	}
	if backing != nil && backing.Size() > virtualSize {
		return nil, fmt.Errorf("qcow2: backing (%d bytes) larger than virtual size (%d)", backing.Size(), virtualSize)
	}
	cs := uint64(clusterSize)
	img := &Image{
		b:           b,
		backing:     backing,
		backingName: backingName,
		clusterSize: cs,
		virtualSize: uint64(virtualSize),
		refcnt:      make(map[uint64]int),
	}
	nVirtual := ceilDiv(img.virtualSize, cs)
	l1Entries := ceilDiv(nVirtual, img.entriesPerL2()) // one L1 entry per L2 table
	img.l1 = make([]uint64, l1Entries)
	l1Clusters := ceilDiv(l1Entries*8, cs)
	if l1Clusters == 0 {
		l1Clusters = 1
	}
	img.l1Offset = cs // cluster 0 is the header
	img.nextFree = cs * (1 + l1Clusters)
	if err := b.Truncate(int64(img.nextFree)); err != nil {
		return nil, fmt.Errorf("qcow2: allocate header+L1: %w", err)
	}
	if err := img.writeHeader(); err != nil {
		return nil, err
	}
	if err := img.writeL1(); err != nil {
		return nil, err
	}
	return img, nil
}

// Open loads an existing image from b. The backing device must be supplied
// by the caller if the image was created with one (the header records the
// name so callers can locate it).
func Open(b Backend, backing vdisk.Device) (*Image, error) {
	hdr := make([]byte, headerSize)
	if err := vdisk.ReadFull(b, hdr, 0); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadImage, err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	if v := le.Uint32(hdr[4:]); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadImage, v)
	}
	img := &Image{
		b:           b,
		backing:     backing,
		clusterSize: le.Uint64(hdr[8:]),
		virtualSize: le.Uint64(hdr[16:]),
		l1Offset:    le.Uint64(hdr[24:]),
		snapHead:    le.Uint64(hdr[40:]),
		nextFree:    le.Uint64(hdr[48:]),
		refcnt:      make(map[uint64]int),
	}
	l1Entries := le.Uint64(hdr[32:])
	nameLen := int(le.Uint16(hdr[56:]))
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("%w: backing name length %d", ErrBadImage, nameLen)
	}
	img.backingName = string(hdr[58 : 58+nameLen])
	if img.clusterSize < headerSize || img.clusterSize&(img.clusterSize-1) != 0 {
		return nil, fmt.Errorf("%w: cluster size %d", ErrBadImage, img.clusterSize)
	}
	if l1Entries > 1<<32 {
		return nil, fmt.Errorf("%w: implausible L1 size %d", ErrBadImage, l1Entries)
	}
	img.l1 = make([]uint64, l1Entries)
	l1Bytes := make([]byte, l1Entries*8)
	if err := vdisk.ReadFull(b, l1Bytes, int64(img.l1Offset)); err != nil {
		return nil, fmt.Errorf("%w: read L1: %v", ErrBadImage, err)
	}
	for i := range img.l1 {
		img.l1[i] = le.Uint64(l1Bytes[i*8:])
	}
	if err := img.loadSnapshots(); err != nil {
		return nil, err
	}
	if err := img.rebuildRefcounts(); err != nil {
		return nil, err
	}
	return img, nil
}

func (img *Image) entriesPerL2() uint64 { return img.clusterSize / 8 }

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// --- header / L1 / snapshot-record persistence ---

func (img *Image) writeHeader() error {
	hdr := make([]byte, headerSize)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], magic)
	le.PutUint32(hdr[4:], formatVersion)
	le.PutUint64(hdr[8:], img.clusterSize)
	le.PutUint64(hdr[16:], img.virtualSize)
	le.PutUint64(hdr[24:], img.l1Offset)
	le.PutUint64(hdr[32:], uint64(len(img.l1)))
	le.PutUint64(hdr[40:], img.snapHead)
	le.PutUint64(hdr[48:], img.nextFree)
	le.PutUint16(hdr[56:], uint16(len(img.backingName)))
	copy(hdr[58:], img.backingName)
	if _, err := img.b.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("qcow2: write header: %w", err)
	}
	return nil
}

func (img *Image) writeL1() error {
	return img.writeL1At(img.l1, img.l1Offset)
}

func (img *Image) writeL1At(table []uint64, off uint64) error {
	buf := make([]byte, len(table)*8)
	for i, e := range table {
		binary.LittleEndian.PutUint64(buf[i*8:], e)
	}
	if _, err := img.b.WriteAt(buf, int64(off)); err != nil {
		return fmt.Errorf("qcow2: write L1 table: %w", err)
	}
	return nil
}

// snapshot record layout: magic-free, length-checked:
//
//	nameLen u16, name, l1Offset u64, vmstateOff u64, vmstateLen u64, next u64
func (img *Image) writeSnapshotRecord(s *snapshot) error {
	buf := make([]byte, 2+len(s.name)+32)
	le := binary.LittleEndian
	le.PutUint16(buf[0:], uint16(len(s.name)))
	copy(buf[2:], s.name)
	p := 2 + len(s.name)
	le.PutUint64(buf[p:], s.l1Offset)
	le.PutUint64(buf[p+8:], s.vmstateOff)
	le.PutUint64(buf[p+16:], s.vmstateLen)
	le.PutUint64(buf[p+24:], s.next)
	if _, err := img.b.WriteAt(buf, int64(s.recOffset)); err != nil {
		return fmt.Errorf("qcow2: write snapshot record: %w", err)
	}
	return nil
}

func (img *Image) loadSnapshots() error {
	img.snaps = nil
	off := img.snapHead
	for off != 0 {
		head := make([]byte, 2)
		if err := vdisk.ReadFull(img.b, head, int64(off)); err != nil {
			return fmt.Errorf("%w: snapshot record: %v", ErrBadImage, err)
		}
		nameLen := int(binary.LittleEndian.Uint16(head))
		if nameLen > maxNameLen {
			return fmt.Errorf("%w: snapshot name length %d", ErrBadImage, nameLen)
		}
		rest := make([]byte, nameLen+32)
		if err := vdisk.ReadFull(img.b, rest, int64(off)+2); err != nil {
			return fmt.Errorf("%w: snapshot record body: %v", ErrBadImage, err)
		}
		le := binary.LittleEndian
		s := snapshot{
			name:       string(rest[:nameLen]),
			l1Offset:   le.Uint64(rest[nameLen:]),
			vmstateOff: le.Uint64(rest[nameLen+8:]),
			vmstateLen: le.Uint64(rest[nameLen+16:]),
			next:       le.Uint64(rest[nameLen+24:]),
			recOffset:  off,
		}
		img.snaps = append(img.snaps, s)
		off = s.next
	}
	return nil
}

// readL1Copy loads a snapshot's L1 table.
func (img *Image) readL1Copy(off uint64) ([]uint64, error) {
	table := make([]uint64, len(img.l1))
	buf := make([]byte, len(table)*8)
	if err := vdisk.ReadFull(img.b, buf, int64(off)); err != nil {
		return nil, fmt.Errorf("qcow2: read snapshot L1: %w", err)
	}
	for i := range table {
		table[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return table, nil
}

// --- refcount management ---
//
// Invariant: refcnt[L2 cluster] = number of L1 tables (active + snapshot
// copies) referencing it; refcnt[data cluster] = number of existing L2
// tables referencing it. Snapshot/restore operations therefore touch only
// L2 refcounts; data refcounts change only when an L2 table is copied or
// dies.

// addTableRefs adds delta to the refcount of every L2 table an L1 table
// references.
func (img *Image) addTableRefs(l1 []uint64, delta int) {
	for _, l2off := range l1 {
		if l2off != 0 {
			img.refcnt[l2off] += delta
		}
	}
}

func (img *Image) rebuildRefcounts() error {
	img.refcnt = make(map[uint64]int)
	tables := [][]uint64{img.l1}
	for _, s := range img.snaps {
		img.refClusterRange(s.recOffset, uint64(2+len(s.name)+32), 1)
		img.refClusterRange(s.l1Offset, uint64(len(img.l1)*8), 1)
		if s.vmstateLen > 0 {
			img.refClusterRange(s.vmstateOff, s.vmstateLen, 1)
		}
		l1c, err := img.readL1Copy(s.l1Offset)
		if err != nil {
			return err
		}
		tables = append(tables, l1c)
	}
	// L2 refcounts: one per referencing L1 table.
	uniqueL2 := make(map[uint64]struct{})
	for _, table := range tables {
		img.addTableRefs(table, 1)
		for _, l2off := range table {
			if l2off != 0 {
				uniqueL2[l2off] = struct{}{}
			}
		}
	}
	// Data refcounts: one per referencing L2 table (each distinct table
	// counted once, regardless of how many L1 tables share it).
	for l2off := range uniqueL2 {
		l2, err := img.readL2(l2off)
		if err != nil {
			return err
		}
		for _, dataOff := range l2 {
			if dataOff != 0 {
				img.refcnt[dataOff]++
			}
		}
	}
	// Reconstruct the free list: clusters between the metadata area and
	// nextFree with zero references are free.
	firstAlloc := img.l1Offset + ceilDiv(uint64(len(img.l1)*8), img.clusterSize)*img.clusterSize
	for off := firstAlloc; off < img.nextFree; off += img.clusterSize {
		if img.refcnt[off] == 0 {
			img.freeList = append(img.freeList, off)
		}
	}
	return nil
}

// refClusterRange adds delta references to every cluster overlapping
// [off, off+length).
func (img *Image) refClusterRange(off, length uint64, delta int) {
	if length == 0 {
		return
	}
	start := off / img.clusterSize * img.clusterSize
	end := off + length
	for c := start; c < end; c += img.clusterSize {
		img.refcnt[c] += delta
	}
}

// release drops one reference; clusters reaching zero go to the free list.
func (img *Image) release(off uint64) {
	img.refcnt[off]--
	if img.refcnt[off] <= 0 {
		delete(img.refcnt, off)
		img.freeList = append(img.freeList, off)
	}
}

// allocCluster returns a zeroed physical cluster with refcount 1.
func (img *Image) allocCluster() (uint64, error) {
	var off uint64
	if n := len(img.freeList); n > 0 {
		off = img.freeList[n-1]
		img.freeList = img.freeList[:n-1]
		// Reused clusters must read as zeros.
		zero := make([]byte, img.clusterSize)
		if _, err := img.b.WriteAt(zero, int64(off)); err != nil {
			return 0, fmt.Errorf("qcow2: zero reused cluster: %w", err)
		}
	} else {
		off = img.nextFree
		img.nextFree += img.clusterSize
		if err := img.b.Truncate(int64(img.nextFree)); err != nil {
			return 0, fmt.Errorf("qcow2: grow file: %w", err)
		}
	}
	img.refcnt[off] = 1
	return off, nil
}

// allocExtent allocates n contiguous clusters at the end of the file
// (vmstate storage), each with refcount 1.
func (img *Image) allocExtent(n uint64) (uint64, error) {
	off := img.nextFree
	img.nextFree += n * img.clusterSize
	if err := img.b.Truncate(int64(img.nextFree)); err != nil {
		return 0, fmt.Errorf("qcow2: grow file: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		img.refcnt[off+i*img.clusterSize] = 1
	}
	return off, nil
}

// --- L2 access ---

func (img *Image) readL2(off uint64) ([]uint64, error) {
	buf := make([]byte, img.clusterSize)
	if err := vdisk.ReadFull(img.b, buf, int64(off)); err != nil {
		return nil, fmt.Errorf("qcow2: read L2 at %d: %w", off, err)
	}
	table := make([]uint64, img.entriesPerL2())
	for i := range table {
		table[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return table, nil
}

func (img *Image) writeL2Entry(l2off uint64, idx uint64, val uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	if _, err := img.b.WriteAt(buf[:], int64(l2off+idx*8)); err != nil {
		return fmt.Errorf("qcow2: write L2 entry: %w", err)
	}
	return nil
}

// l2ForWrite returns a writable L2 table cluster for the given L1 index,
// allocating or copy-on-writing as needed.
func (img *Image) l2ForWrite(l1Idx uint64) (uint64, error) {
	l2off := img.l1[l1Idx]
	if l2off == 0 {
		off, err := img.allocCluster()
		if err != nil {
			return 0, err
		}
		img.l1[l1Idx] = off
		return off, img.writeL1()
	}
	if img.refcnt[l2off] > 1 {
		// Shared with a snapshot: copy before write.
		newOff, err := img.allocCluster()
		if err != nil {
			return 0, err
		}
		buf := make([]byte, img.clusterSize)
		if err := vdisk.ReadFull(img.b, buf, int64(l2off)); err != nil {
			return 0, err
		}
		if _, err := img.b.WriteAt(buf, int64(newOff)); err != nil {
			return 0, err
		}
		// The copied L2 references the same data clusters: bump them.
		l2, err := img.readL2(newOff)
		if err != nil {
			return 0, err
		}
		for _, d := range l2 {
			if d != 0 {
				img.refcnt[d]++
			}
		}
		img.releaseL2(l2off)
		img.l1[l1Idx] = newOff
		return newOff, img.writeL1()
	}
	return l2off, nil
}

// releaseL2 drops one reference on an L2 cluster; if it dies, its data
// cluster references die with it.
func (img *Image) releaseL2(l2off uint64) {
	if img.refcnt[l2off] > 1 {
		img.refcnt[l2off]--
		return
	}
	l2, err := img.readL2(l2off)
	if err == nil {
		for _, d := range l2 {
			if d != 0 {
				img.release(d)
			}
		}
	}
	img.release(l2off)
}

// --- Device interface ---

// Size implements vdisk.Device.
func (img *Image) Size() int64 {
	img.mu.Lock()
	defer img.mu.Unlock()
	return int64(img.virtualSize)
}

// FileSize returns the physical size of the image file — the quantity the
// qcow2-disk baseline must copy to the parallel file system per checkpoint.
func (img *Image) FileSize() int64 {
	img.mu.Lock()
	defer img.mu.Unlock()
	return img.b.Size()
}

// BackingName returns the backing image name recorded in the header.
func (img *Image) BackingName() string { return img.backingName }

// ReadAt implements vdisk.Device.
func (img *Image) ReadAt(p []byte, off int64) (int, error) {
	img.mu.Lock()
	defer img.mu.Unlock()
	if off < 0 || off > int64(img.virtualSize) {
		return 0, vdisk.ErrOutOfRange
	}
	total := len(p)
	if off+int64(total) > int64(img.virtualSize) {
		total = int(int64(img.virtualSize) - off)
	}
	read := 0
	for read < total {
		vOff := uint64(off) + uint64(read)
		vc := vOff / img.clusterSize
		inOff := vOff % img.clusterSize
		n := img.clusterSize - inOff
		if rem := uint64(total - read); n > rem {
			n = rem
		}
		if err := img.readCluster(vc, inOff, p[read:read+int(n)]); err != nil {
			return read, err
		}
		read += int(n)
	}
	if read < len(p) {
		return read, io.EOF
	}
	return read, nil
}

func (img *Image) readCluster(vc, inOff uint64, p []byte) error {
	l1Idx := vc / img.entriesPerL2()
	l2Idx := vc % img.entriesPerL2()
	if l1Idx >= uint64(len(img.l1)) {
		zero(p)
		return nil
	}
	l2off := img.l1[l1Idx]
	if l2off == 0 {
		return img.readBacking(vc, inOff, p)
	}
	l2, err := img.readL2(l2off)
	if err != nil {
		return err
	}
	dataOff := l2[l2Idx]
	if dataOff == 0 {
		return img.readBacking(vc, inOff, p)
	}
	return vdisk.ReadFull(img.b, p, int64(dataOff+inOff))
}

func (img *Image) readBacking(vc, inOff uint64, p []byte) error {
	if img.backing == nil {
		zero(p)
		return nil
	}
	bOff := int64(vc*img.clusterSize + inOff)
	if bOff >= img.backing.Size() {
		zero(p)
		return nil
	}
	n := len(p)
	if bOff+int64(n) > img.backing.Size() {
		n = int(img.backing.Size() - bOff)
	}
	if err := vdisk.ReadFull(img.backing, p[:n], bOff); err != nil {
		return fmt.Errorf("qcow2: backing read: %w", err)
	}
	zero(p[n:])
	return nil
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// WriteAt implements vdisk.Device.
func (img *Image) WriteAt(p []byte, off int64) (int, error) {
	img.mu.Lock()
	defer img.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(img.virtualSize) {
		return 0, vdisk.ErrOutOfRange
	}
	written := 0
	for written < len(p) {
		vOff := uint64(off) + uint64(written)
		vc := vOff / img.clusterSize
		inOff := vOff % img.clusterSize
		n := img.clusterSize - inOff
		if rem := uint64(len(p) - written); n > rem {
			n = rem
		}
		if err := img.writeCluster(vc, inOff, p[written:written+int(n)]); err != nil {
			return written, err
		}
		written += int(n)
	}
	return written, nil
}

func (img *Image) writeCluster(vc, inOff uint64, p []byte) error {
	l1Idx := vc / img.entriesPerL2()
	l2Idx := vc % img.entriesPerL2()
	if l1Idx >= uint64(len(img.l1)) {
		return vdisk.ErrOutOfRange
	}
	l2off, err := img.l2ForWrite(l1Idx)
	if err != nil {
		return err
	}
	l2, err := img.readL2(l2off)
	if err != nil {
		return err
	}
	dataOff := l2[l2Idx]
	switch {
	case dataOff == 0:
		// Fresh allocation: fill with backing content, then overlay.
		newOff, err := img.allocCluster()
		if err != nil {
			return err
		}
		buf := make([]byte, img.clusterSize)
		if err := img.readBacking(vc, 0, buf); err != nil {
			return err
		}
		copy(buf[inOff:], p)
		if _, err := img.b.WriteAt(buf, int64(newOff)); err != nil {
			return err
		}
		return img.writeL2Entry(l2off, l2Idx, newOff)
	case img.refcnt[dataOff] > 1:
		// Shared with a snapshot: copy-on-write.
		newOff, err := img.allocCluster()
		if err != nil {
			return err
		}
		buf := make([]byte, img.clusterSize)
		if err := vdisk.ReadFull(img.b, buf, int64(dataOff)); err != nil {
			return err
		}
		copy(buf[inOff:], p)
		if _, err := img.b.WriteAt(buf, int64(newOff)); err != nil {
			return err
		}
		img.release(dataOff)
		return img.writeL2Entry(l2off, l2Idx, newOff)
	default:
		_, err := img.b.WriteAt(p, int64(dataOff+inOff))
		return err
	}
}

// Flush implements vdisk.Device: persists header and L1 and syncs the
// backend.
func (img *Image) Flush() error {
	img.mu.Lock()
	defer img.mu.Unlock()
	if err := img.writeHeader(); err != nil {
		return err
	}
	if err := img.writeL1(); err != nil {
		return err
	}
	return img.b.Sync()
}

var _ vdisk.Device = (*Image)(nil)
