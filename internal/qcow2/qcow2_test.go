package qcow2

import (
	"bytes"
	"math/rand"
	"testing"

	"blobcr/internal/vdisk"
)

const cs = 4096 // small cluster size keeps tests fast

func newImage(t *testing.T, virtualSize int64, backing vdisk.Device) *Image {
	t.Helper()
	img, err := Create(vdisk.NewBuffer(), cs, virtualSize, backing, "base.raw")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return img
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(vdisk.NewBuffer(), 1000, 1<<20, nil, ""); err == nil {
		t.Error("non-power-of-two cluster size accepted")
	}
	if _, err := Create(vdisk.NewBuffer(), 256, 1<<20, nil, ""); err == nil {
		t.Error("cluster smaller than header accepted")
	}
	if _, err := Create(vdisk.NewBuffer(), cs, -1, nil, ""); err == nil {
		t.Error("negative virtual size accepted")
	}
	big := vdisk.NewMem(1 << 20)
	if _, err := Create(vdisk.NewBuffer(), cs, 1<<10, big, ""); err == nil {
		t.Error("backing larger than virtual size accepted")
	}
}

func TestReadUnallocatedIsZero(t *testing.T) {
	img := newImage(t, 1<<20, nil)
	buf := make([]byte, 8192)
	buf[0] = 0xFF
	if _, err := img.ReadAt(buf, 12345); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unallocated byte %d = %#x", i, b)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	img := newImage(t, 1<<20, nil)
	data := []byte("hello qcow2 world")
	if _, err := img.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := img.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
}

func TestCrossClusterWrite(t *testing.T) {
	img := newImage(t, 1<<20, nil)
	data := bytes.Repeat([]byte{0xAB}, 3*cs)
	off := int64(cs - 100) // crosses three cluster boundaries
	if _, err := img.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := img.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-cluster content mismatch")
	}
	// Neighbouring bytes untouched (zero).
	edge := make([]byte, 1)
	if _, err := img.ReadAt(edge, off-1); err != nil {
		t.Fatal(err)
	}
	if edge[0] != 0 {
		t.Error("byte before write range modified")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	img := newImage(t, 1<<16, nil)
	if _, err := img.WriteAt([]byte{1}, 1<<16); err == nil {
		t.Error("write past end accepted")
	}
	if _, err := img.WriteAt([]byte{1}, -1); err == nil {
		t.Error("negative write offset accepted")
	}
	// Reads at the boundary return 0 bytes.
	n, _ := img.ReadAt(make([]byte, 4), 1<<16)
	if n != 0 {
		t.Errorf("read at end returned %d bytes", n)
	}
}

func TestBackingReadThrough(t *testing.T) {
	base := vdisk.NewMem(1 << 18)
	content := bytes.Repeat([]byte{0x5C}, 1<<18)
	if _, err := base.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	img := newImage(t, 1<<20, base)
	// Unwritten ranges come from the backing...
	got := make([]byte, 1000)
	if _, err := img.ReadAt(got, 5000); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x5C {
		t.Error("backing not visible through unallocated cluster")
	}
	// ...and beyond the backing size, zeros.
	if _, err := img.ReadAt(got, 1<<18); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Error("read past backing end not zero")
	}
}

func TestCopyOnWritePreservesBackingNeighbourhood(t *testing.T) {
	base := vdisk.NewMem(1 << 18)
	content := bytes.Repeat([]byte{0x77}, 1<<18)
	if _, err := base.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	img := newImage(t, 1<<18, base)
	// A small write inside a cluster must preserve the rest of the cluster
	// from the backing (COW fill).
	if _, err := img.WriteAt([]byte{0x11}, int64(cs+10)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, cs)
	if _, err := img.ReadAt(got, int64(cs)); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0x77)
		if i == 10 {
			want = 0x11
		}
		if b != want {
			t.Fatalf("cluster byte %d = %#x, want %#x", i, b, want)
		}
	}
	// Backing itself untouched.
	bGot := make([]byte, 1)
	if _, err := base.ReadAt(bGot, int64(cs+10)); err != nil {
		t.Fatal(err)
	}
	if bGot[0] != 0x77 {
		t.Error("write leaked into backing device")
	}
}

func TestFileGrowsWithAllocations(t *testing.T) {
	img := newImage(t, 1<<22, nil)
	initial := img.FileSize()
	// Write 16 distinct clusters.
	for i := 0; i < 16; i++ {
		if _, err := img.WriteAt([]byte{1}, int64(i*cs)); err != nil {
			t.Fatal(err)
		}
	}
	grown := img.FileSize() - initial
	// 16 data clusters + 1 L2 table cluster.
	want := int64(17 * cs)
	if grown != want {
		t.Errorf("file grew %d bytes, want %d", grown, want)
	}
	// Rewriting the same clusters must not grow the file.
	before := img.FileSize()
	for i := 0; i < 16; i++ {
		if _, err := img.WriteAt([]byte{2}, int64(i*cs)); err != nil {
			t.Fatal(err)
		}
	}
	if img.FileSize() != before {
		t.Error("in-place rewrite grew the file")
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	backend := vdisk.NewBuffer()
	img, err := Create(backend, cs, 1<<20, nil, "parent.img")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xD4}, 3*cs)
	if _, err := img.WriteAt(data, 7777); err != nil {
		t.Fatal(err)
	}
	if err := img.Flush(); err != nil {
		t.Fatal(err)
	}
	img2, err := Open(backend, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if img2.BackingName() != "parent.img" {
		t.Errorf("BackingName = %q", img2.BackingName())
	}
	got := make([]byte, len(data))
	if _, err := img2.ReadAt(got, 7777); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content lost across reopen")
	}
	// New writes after reopen work.
	if _, err := img2.WriteAt([]byte{9}, 0); err != nil {
		t.Errorf("write after reopen: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	b := vdisk.NewBuffer()
	b.WriteAt(bytes.Repeat([]byte{0x42}, 1024), 0)
	if _, err := Open(b, nil); err == nil {
		t.Error("Open accepted garbage")
	}
}

func TestSnapshotAndRestore(t *testing.T) {
	img := newImage(t, 1<<20, nil)
	v1 := bytes.Repeat([]byte{1}, 2*cs)
	if _, err := img.WriteAt(v1, 0); err != nil {
		t.Fatal(err)
	}
	vmstate := []byte("cpu+ram state at t1")
	if err := img.Snapshot("t1", vmstate); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Overwrite after the snapshot.
	v2 := bytes.Repeat([]byte{2}, 2*cs)
	if _, err := img.WriteAt(v2, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, cs)
	img.ReadAt(got, 0)
	if got[0] != 2 {
		t.Fatal("current state lost")
	}
	// Restore: disk content rolls back, vmstate returned.
	state, err := img.RestoreSnapshot("t1")
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if string(state) != string(vmstate) {
		t.Errorf("vmstate = %q", state)
	}
	img.ReadAt(got, 0)
	if got[0] != 1 {
		t.Error("disk content not rolled back")
	}
	// The snapshot survives and can be restored again later.
	if _, err := img.RestoreSnapshot("t1"); err != nil {
		t.Errorf("second restore: %v", err)
	}
}

func TestSnapshotCopyOnWriteIsolation(t *testing.T) {
	img := newImage(t, 1<<20, nil)
	if _, err := img.WriteAt(bytes.Repeat([]byte{0xAA}, 4*cs), 0); err != nil {
		t.Fatal(err)
	}
	if err := img.Snapshot("s", nil); err != nil {
		t.Fatal(err)
	}
	// Partial overwrite of one snapshotted cluster: COW must preserve the
	// untouched part of the cluster in the new copy.
	if _, err := img.WriteAt([]byte{0xBB}, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, cs)
	img.ReadAt(got, 0)
	if got[5] != 0xBB || got[6] != 0xAA || got[0] != 0xAA {
		t.Errorf("COW merge wrong: %x %x %x", got[0], got[5], got[6])
	}
	// Restore shows the original.
	if _, err := img.RestoreSnapshot("s"); err != nil {
		t.Fatal(err)
	}
	img.ReadAt(got, 0)
	if got[5] != 0xAA {
		t.Error("snapshot content was damaged by post-snapshot write")
	}
}

func TestMultipleSnapshots(t *testing.T) {
	img := newImage(t, 1<<20, nil)
	for i := 1; i <= 3; i++ {
		if _, err := img.WriteAt(bytes.Repeat([]byte{byte(i)}, cs), 0); err != nil {
			t.Fatal(err)
		}
		if err := img.Snapshot(string(rune('a'+i-1)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	infos := img.Snapshots()
	if len(infos) != 3 {
		t.Fatalf("Snapshots = %d, want 3", len(infos))
	}
	if infos[0].Name != "c" || infos[2].Name != "a" {
		t.Errorf("snapshot order: %+v", infos)
	}
	// Restore each in turn and verify contents.
	for i := 1; i <= 3; i++ {
		state, err := img.RestoreSnapshot(string(rune('a' + i - 1)))
		if err != nil {
			t.Fatal(err)
		}
		if state[0] != byte(i) {
			t.Errorf("snapshot %d vmstate = %d", i, state[0])
		}
		got := make([]byte, 1)
		img.ReadAt(got, 0)
		if got[0] != byte(i) {
			t.Errorf("snapshot %d content = %d", i, got[0])
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	img := newImage(t, 1<<18, nil)
	if err := img.Snapshot("dup", nil); err != nil {
		t.Fatal(err)
	}
	if err := img.Snapshot("dup", nil); err == nil {
		t.Error("duplicate snapshot name accepted")
	}
	if err := img.Snapshot("", nil); err == nil {
		t.Error("empty snapshot name accepted")
	}
	if _, err := img.RestoreSnapshot("missing"); err == nil {
		t.Error("restore of missing snapshot succeeded")
	}
	if err := img.DeleteSnapshot("missing"); err == nil {
		t.Error("delete of missing snapshot succeeded")
	}
}

func TestDeleteSnapshotReclaimsSpace(t *testing.T) {
	img := newImage(t, 1<<20, nil)
	if _, err := img.WriteAt(bytes.Repeat([]byte{1}, 8*cs), 0); err != nil {
		t.Fatal(err)
	}
	if err := img.Snapshot("s", bytes.Repeat([]byte{9}, 2*cs)); err != nil {
		t.Fatal(err)
	}
	// Overwrite everything: snapshot holds the old clusters.
	if _, err := img.WriteAt(bytes.Repeat([]byte{2}, 8*cs), 0); err != nil {
		t.Fatal(err)
	}
	sizeWithSnap := img.FileSize()
	if err := img.DeleteSnapshot("s"); err != nil {
		t.Fatal(err)
	}
	// File does not shrink, but freed clusters are reused by new writes.
	if img.FileSize() != sizeWithSnap {
		t.Errorf("file size changed on delete: %d -> %d", sizeWithSnap, img.FileSize())
	}
	before := img.FileSize()
	if _, err := img.WriteAt(bytes.Repeat([]byte{3}, 8*cs), int64(64*cs)); err != nil {
		t.Fatal(err)
	}
	if img.FileSize() != before {
		t.Errorf("freed clusters not reused: file grew %d bytes", img.FileSize()-before)
	}
	got := make([]byte, 1)
	img.ReadAt(got, 0)
	if got[0] != 2 {
		t.Error("active content damaged by snapshot delete")
	}
}

func TestSnapshotsPersistAcrossOpen(t *testing.T) {
	backend := vdisk.NewBuffer()
	img, err := Create(backend, cs, 1<<20, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	img.WriteAt(bytes.Repeat([]byte{7}, cs), 0)
	if err := img.Snapshot("persisted", []byte("vm")); err != nil {
		t.Fatal(err)
	}
	img.WriteAt(bytes.Repeat([]byte{8}, cs), 0)
	if err := img.Flush(); err != nil {
		t.Fatal(err)
	}

	img2, err := Open(backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	infos := img2.Snapshots()
	if len(infos) != 1 || infos[0].Name != "persisted" {
		t.Fatalf("snapshots after reopen: %+v", infos)
	}
	state, err := img2.RestoreSnapshot("persisted")
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != "vm" {
		t.Errorf("vmstate = %q", state)
	}
	got := make([]byte, 1)
	img2.ReadAt(got, 0)
	if got[0] != 7 {
		t.Error("restored content wrong after reopen")
	}
}

func TestRandomizedAgainstShadowModel(t *testing.T) {
	const size = 1 << 18
	base := vdisk.NewMem(size)
	baseContent := make([]byte, size)
	rng := rand.New(rand.NewSource(99))
	rng.Read(baseContent)
	base.WriteAt(baseContent, 0)

	img := newImage(t, size, base)
	shadow := append([]byte(nil), baseContent...)

	for iter := 0; iter < 200; iter++ {
		off := rng.Intn(size - 1)
		n := rng.Intn(min(size-off, 3*cs)) + 1
		if rng.Intn(3) == 0 {
			// Random read check.
			got := make([]byte, n)
			if _, err := img.ReadAt(got, int64(off)); err != nil {
				t.Fatalf("iter %d read: %v", iter, err)
			}
			if !bytes.Equal(got, shadow[off:off+n]) {
				t.Fatalf("iter %d: read mismatch at %d+%d", iter, off, n)
			}
		} else {
			patch := make([]byte, n)
			rng.Read(patch)
			if _, err := img.WriteAt(patch, int64(off)); err != nil {
				t.Fatalf("iter %d write: %v", iter, err)
			}
			copy(shadow[off:], patch)
		}
	}
	// Full sweep.
	got := make([]byte, size)
	if _, err := img.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("final content diverged from shadow model")
	}
}

func TestRandomizedWithSnapshotsAgainstShadowModel(t *testing.T) {
	const size = 1 << 17
	img := newImage(t, size, nil)
	shadow := make([]byte, size)
	rng := rand.New(rand.NewSource(123))
	saved := map[string][]byte{}
	var names []string

	for iter := 0; iter < 120; iter++ {
		switch rng.Intn(6) {
		case 0:
			name := string(rune('A' + len(names)))
			if err := img.Snapshot(name, nil); err != nil {
				t.Fatalf("iter %d snapshot: %v", iter, err)
			}
			saved[name] = append([]byte(nil), shadow...)
			names = append(names, name)
		case 1:
			if len(names) > 0 {
				name := names[rng.Intn(len(names))]
				if _, err := img.RestoreSnapshot(name); err != nil {
					t.Fatalf("iter %d restore %s: %v", iter, name, err)
				}
				copy(shadow, saved[name])
			}
		default:
			off := rng.Intn(size - 1)
			n := rng.Intn(min(size-off, 2*cs)) + 1
			patch := make([]byte, n)
			rng.Read(patch)
			if _, err := img.WriteAt(patch, int64(off)); err != nil {
				t.Fatalf("iter %d write: %v", iter, err)
			}
			copy(shadow[off:], patch)
		}
		if iter%20 == 19 {
			got := make([]byte, size)
			if _, err := img.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow) {
				t.Fatalf("iter %d: content diverged", iter)
			}
		}
	}
	// All snapshots must still match their saved states.
	for _, name := range names {
		if _, err := img.RestoreSnapshot(name); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, size)
		if _, err := img.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, saved[name]) {
			t.Errorf("snapshot %s content diverged", name)
		}
	}
}
