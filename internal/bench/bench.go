// Package bench is the experiment harness: one generator per table and
// figure of the paper's evaluation section, each producing the same series
// the paper plots, plus ablation experiments for the design choices called
// out in DESIGN.md. cmd/blobcr-bench and the root bench_test.go drive it.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"blobcr/internal/simcloud"
)

// Series is one experiment's output: a labeled table whose first column is
// the sweep variable and whose remaining columns are the approaches (or
// metrics) the paper plots.
type Series struct {
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Rows    []Row
	Notes   []string // free-form findings rendered under the table
}

// Row is one sweep point.
type Row struct {
	X      float64
	Values []float64
}

// Render writes the series as an aligned text table.
func (s *Series) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", s.Title)
	fmt.Fprintf(w, "  %-14s", s.XLabel)
	for _, c := range s.Columns {
		fmt.Fprintf(w, " %16s", c)
	}
	fmt.Fprintf(w, "   [%s]\n", s.YLabel)
	for _, r := range s.Rows {
		fmt.Fprintf(w, "  %-14.0f", r.X)
		for _, v := range r.Values {
			fmt.Fprintf(w, " %16.2f", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range s.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w, strings.Repeat("-", 24+17*len(s.Columns)))
}

// JSONSeries is the machine-readable form of one Series, for the -json
// output cmd/blobcr-bench writes (and CI uploads as an artifact): the
// experiment name, its axes and unit, and every row's values — everything
// the rendered table holds, parseable without scraping aligned text.
type JSONSeries struct {
	Name    string    `json:"name"`
	XLabel  string    `json:"x_label"`
	Unit    string    `json:"unit"`
	Columns []string  `json:"columns"`
	Rows    []JSONRow `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
	// Failed mirrors the FAILED convention in titles, so result consumers
	// need not substring-match.
	Failed bool `json:"failed,omitempty"`
}

// JSONRow is one sweep point of a JSONSeries.
type JSONRow struct {
	X      float64   `json:"x"`
	Values []float64 `json:"values"`
}

// JSON converts the series to its machine-readable form.
func (s *Series) JSON() JSONSeries {
	out := JSONSeries{
		Name:    s.Title,
		XLabel:  s.XLabel,
		Unit:    s.YLabel,
		Columns: s.Columns,
		Notes:   s.Notes,
		Failed:  strings.Contains(s.Title, "FAILED"),
	}
	for _, r := range s.Rows {
		out.Rows = append(out.Rows, JSONRow{X: r.X, Values: r.Values})
	}
	return out
}

// WriteJSON writes the full result document: the model parameters the run
// used, then every series in order.
func WriteJSON(w io.Writer, params map[string]float64, series []Series) error {
	doc := struct {
		Params map[string]float64 `json:"params,omitempty"`
		Series []JSONSeries       `json:"series"`
	}{Params: params}
	for i := range series {
		doc.Series = append(doc.Series, series[i].JSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// approachColumns returns the paper's column headers.
func approachColumns(as []simcloud.Approach) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return out
}

// instanceSweep is the instance-count axis of Figures 2 and 3.
var instanceSweep = []int{1, 30, 60, 90, 120}

// checkpointSeries builds one of Figure 2's panels.
func checkpointSeries(p simcloud.Params, title string, state float64) Series {
	s := Series{
		Title:   title,
		XLabel:  "instances",
		YLabel:  "completion time, s",
		Columns: approachColumns(simcloud.Approaches),
	}
	for _, n := range instanceSweep {
		row := Row{X: float64(n)}
		for _, a := range simcloud.Approaches {
			row.Values = append(row.Values, simcloud.CheckpointTime(p, a, n, state, 1))
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// Fig2aCheckpoint50MB reproduces Figure 2(a).
func Fig2aCheckpoint50MB(p simcloud.Params) Series {
	return checkpointSeries(p, "Figure 2(a): checkpoint time, 50 MB buffer", 50*simcloud.MB)
}

// Fig2bCheckpoint200MB reproduces Figure 2(b).
func Fig2bCheckpoint200MB(p simcloud.Params) Series {
	return checkpointSeries(p, "Figure 2(b): checkpoint time, 200 MB buffer", 200*simcloud.MB)
}

func restartSeries(p simcloud.Params, title string, state float64) Series {
	s := Series{
		Title:   title,
		XLabel:  "hosts",
		YLabel:  "completion time, s",
		Columns: approachColumns(simcloud.Approaches),
	}
	for _, n := range instanceSweep {
		row := Row{X: float64(n)}
		for _, a := range simcloud.Approaches {
			row.Values = append(row.Values, simcloud.RestartTime(p, a, n, state, 1))
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// Fig3aRestart50MB reproduces Figure 3(a).
func Fig3aRestart50MB(p simcloud.Params) Series {
	return restartSeries(p, "Figure 3(a): restart time, 50 MB buffer", 50*simcloud.MB)
}

// Fig3bRestart200MB reproduces Figure 3(b).
func Fig3bRestart200MB(p simcloud.Params) Series {
	return restartSeries(p, "Figure 3(b): restart time, 200 MB buffer", 200*simcloud.MB)
}

// Fig4SnapshotSize reproduces Figure 4: per-VM snapshot size for 50 MB and
// 200 MB buffers under all five approaches.
func Fig4SnapshotSize(p simcloud.Params) Series {
	s := Series{
		Title:   "Figure 4: snapshot size per VM instance",
		XLabel:  "buffer MB",
		YLabel:  "snapshot size, MB",
		Columns: approachColumns(simcloud.Approaches),
	}
	for _, state := range []float64{50 * simcloud.MB, 200 * simcloud.MB} {
		row := Row{X: state / simcloud.MB}
		for _, a := range simcloud.Approaches {
			row.Values = append(row.Values, p.SnapshotBytes(a, state, 1)/simcloud.MB)
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// Fig5aSuccessiveTime reproduces Figure 5(a): completion time of four
// successive checkpoints of one VM with a 200 MB buffer.
func Fig5aSuccessiveTime(p simcloud.Params) Series {
	return successiveSeries(p, "Figure 5(a): successive checkpoints, completion time", func(r simcloud.SuccessiveResult) float64 {
		return r.TimeSeconds
	}, "time, s")
}

// Fig5bSuccessiveSpace reproduces Figure 5(b): cumulative storage of the
// same experiment.
func Fig5bSuccessiveSpace(p simcloud.Params) Series {
	return successiveSeries(p, "Figure 5(b): successive checkpoints, storage utilization", func(r simcloud.SuccessiveResult) float64 {
		return r.StorageBytes / simcloud.MB
	}, "storage, MB")
}

func successiveSeries(p simcloud.Params, title string, metric func(simcloud.SuccessiveResult) float64, ylabel string) Series {
	s := Series{
		Title:   title,
		XLabel:  "checkpoint #",
		YLabel:  ylabel,
		Columns: approachColumns(simcloud.Approaches),
	}
	const rounds = 4
	results := make([][]simcloud.SuccessiveResult, len(simcloud.Approaches))
	for i, a := range simcloud.Approaches {
		results[i] = simcloud.SuccessiveCheckpoints(p, a, rounds, 200*simcloud.MB)
	}
	for r := 0; r < rounds; r++ {
		row := Row{X: float64(r + 1)}
		for i := range simcloud.Approaches {
			row.Values = append(row.Values, metric(results[i][r]))
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// Fig5cSuccessiveDedup extends the Figure 5 successive-checkpoint
// experiment with the content-addressed repository (internal/cas): per
// round, the logical commit volume, the bytes actually shipped after
// fingerprint dedup, the cumulative physical storage, and the dedup hit
// rate, at the calibrated chunk-overlap fraction.
func Fig5cSuccessiveDedup(p simcloud.Params) Series {
	s := Series{
		Title:   "Figure 5(c): successive checkpoints with CAS dedup (200 MB buffer)",
		XLabel:  "checkpoint #",
		YLabel:  "MB (hit-rate in %)",
		Columns: []string{"logical MB", "transfer MB", "storage MB", "hit-rate %"},
	}
	const rounds = 4
	results := simcloud.SuccessiveDedupCheckpoints(p, rounds, 200*simcloud.MB, p.DedupOverlap)
	for _, r := range results {
		s.Rows = append(s.Rows, Row{X: float64(r.Round), Values: []float64{
			r.LogicalBytes / simcloud.MB,
			r.TransferBytes / simcloud.MB,
			r.StorageBytes / simcloud.MB,
			100 * r.HitRate,
		}})
	}
	return s
}

// Table1CM1SnapshotSize reproduces Table 1: CM1 per-disk-snapshot size.
func Table1CM1SnapshotSize(p simcloud.Params, c simcloud.CM1Params) Series {
	s := Series{
		Title:   "Table 1: CM1 per disk snapshot size",
		XLabel:  "-",
		YLabel:  "size, MB",
		Columns: approachColumns(simcloud.Approaches[:4]),
	}
	row := Row{X: 0}
	for _, a := range simcloud.Approaches[:4] {
		row.Values = append(row.Values, simcloud.CM1SnapshotBytes(p, c, a)/simcloud.MB)
	}
	s.Rows = append(s.Rows, row)
	return s
}

// Fig6CM1Checkpoint reproduces Figure 6: CM1 checkpoint performance for an
// increasing number of processes (4 per quad-core VM).
func Fig6CM1Checkpoint(p simcloud.Params, c simcloud.CM1Params) Series {
	s := Series{
		Title:   "Figure 6: CM1 checkpoint time (4 processes per VM)",
		XLabel:  "processes",
		YLabel:  "completion time, s",
		Columns: approachColumns(simcloud.Approaches[:4]),
	}
	for _, n := range []int{4, 40, 100, 200, 300, 400} {
		row := Row{X: float64(n)}
		for _, a := range simcloud.Approaches[:4] {
			row.Values = append(row.Values, simcloud.CM1CheckpointTime(p, c, a, n))
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// All returns every paper experiment in order, plus the functional
// downtime, availability, throughput and disk-log experiments that ride the
// real stack. dir roots the disk-backed experiments (disklog, and the
// throughput bench's durable variant); empty keeps throughput in-memory and
// skips disklog.
func All(p simcloud.Params, c simcloud.CM1Params, dir string) []Series {
	out := []Series{
		Fig2aCheckpoint50MB(p),
		Fig2bCheckpoint200MB(p),
		Fig3aRestart50MB(p),
		Fig3bRestart200MB(p),
		Fig4SnapshotSize(p),
		Fig5aSuccessiveTime(p),
		Fig5bSuccessiveSpace(p),
		Fig5cSuccessiveDedup(p),
		Table1CM1SnapshotSize(p, c),
		Fig6CM1Checkpoint(p, c),
		FigDowntime(),
		FigStages(),
		FigTracePath(),
		FigAvailability(),
		FigThroughput(dir),
		FigRepair(),
		FigLocalTier(),
		FigPreemption(),
		FigHealth(),
	}
	if dir != "" {
		out = append(out, FigDiskLog(dir))
	}
	return out
}
