package bench

import (
	"blobcr/internal/simcloud"
)

// Ablation experiments for the design choices DESIGN.md calls out. Each
// varies exactly one decision and reports its effect at the paper's largest
// scale (120 instances, 200 MB buffers).

// AblationStripeSize sweeps the chunk/stripe size around the paper's chosen
// 256 KB: smaller stripes reduce contention granularity but multiply
// metadata operations; larger stripes inflate the snapshot size through
// coarser copy-on-write rounding (Section 4.2.1's trade-off).
func AblationStripeSize(p simcloud.Params) Series {
	s := Series{
		Title:   "Ablation: stripe size (BlobCR-app, 120 x 200 MB)",
		XLabel:  "stripe KB",
		YLabel:  "see columns",
		Columns: []string{"ckpt time s", "snapshot MB", "restart s"},
	}
	for _, kb := range []float64{64, 128, 256, 512, 1024} {
		q := p
		q.ChunkSize = kb * 1024
		row := Row{X: kb}
		row.Values = append(row.Values,
			simcloud.CheckpointTime(q, simcloud.BlobCRApp, 120, 200*simcloud.MB, 1),
			q.SnapshotBytes(simcloud.BlobCRApp, 200*simcloud.MB, 1)/simcloud.MB,
			simcloud.RestartTime(q, simcloud.BlobCRApp, 120, 200*simcloud.MB, 1),
		)
		s.Rows = append(s.Rows, row)
	}
	return s
}

// AblationReplication sweeps the checkpoint replica count: resilience to
// data-provider loss costs proportional commit bandwidth.
func AblationReplication(p simcloud.Params) Series {
	s := Series{
		Title:   "Ablation: chunk replication (BlobCR-app, 120 x 200 MB)",
		XLabel:  "replicas",
		YLabel:  "see columns",
		Columns: []string{"ckpt time s", "stored MB/VM"},
	}
	for _, r := range []int{1, 2, 3} {
		q := p
		q.Replication = r
		row := Row{X: float64(r)}
		row.Values = append(row.Values,
			simcloud.CheckpointTime(q, simcloud.BlobCRApp, 120, 200*simcloud.MB, 1),
			float64(r)*q.SnapshotBytes(simcloud.BlobCRApp, 200*simcloud.MB, 1)/simcloud.MB,
		)
		s.Rows = append(s.Rows, row)
	}
	return s
}

// AblationRestartTransfer compares the paper's lazy transfer + adaptive
// prefetching against pre-broadcasting the full disk image before boot
// (the conventional multi-deployment technique of Section 3.1.4).
func AblationRestartTransfer(p simcloud.Params) Series {
	s := Series{
		Title:   "Ablation: restart transfer strategy (BlobCR-app, 200 MB state)",
		XLabel:  "hosts",
		YLabel:  "restart time, s",
		Columns: []string{"lazy+prefetch", "full pre-broadcast"},
	}
	const imageBytes = 2048 * simcloud.MB // the 2 GB base disk image
	for _, n := range instanceSweep {
		lazy := simcloud.RestartTime(p, simcloud.BlobCRApp, n, 200*simcloud.MB, 1)
		full := p
		full.BootReadBytes = imageBytes // fetch everything before booting
		fullT := simcloud.RestartTime(full, simcloud.BlobCRApp, n, 200*simcloud.MB, 1)
		s.Rows = append(s.Rows, Row{X: float64(n), Values: []float64{lazy, fullT}})
	}
	return s
}

// AblationMetadataProviders sweeps the number of metadata providers under
// full 120-writer concurrency: decentralized metadata is what keeps the
// version publication off the critical path.
func AblationMetadataProviders(p simcloud.Params) Series {
	s := Series{
		Title:   "Ablation: metadata providers (BlobCR-app, 120 x 200 MB)",
		XLabel:  "providers",
		YLabel:  "checkpoint time, s",
		Columns: []string{"ckpt time s"},
	}
	for _, m := range []int{1, 2, 5, 10, 20, 40} {
		q := p
		q.MetaProviders = m
		s.Rows = append(s.Rows, Row{X: float64(m), Values: []float64{
			simcloud.CheckpointTime(q, simcloud.BlobCRApp, 120, 200*simcloud.MB, 1),
		}})
	}
	return s
}

// AblationGranularity quantifies the storage tax of BlobCR's 256 KB diff
// granularity versus qcow2's arbitrarily small diffs (Section 4.3.1: the
// price stays constant and under ~5% for 200 MB checkpoints).
func AblationGranularity(p simcloud.Params) Series {
	s := Series{
		Title:   "Ablation: diff granularity storage tax",
		XLabel:  "buffer MB",
		YLabel:  "see columns",
		Columns: []string{"BlobCR MB", "qcow2 MB", "overhead %"},
	}
	for _, mb := range []float64{50, 100, 200, 400} {
		state := mb * simcloud.MB
		b := p.SnapshotBytes(simcloud.BlobCRApp, state, 1) / simcloud.MB
		q := p.SnapshotBytes(simcloud.Qcow2DiskApp, state, 1) / simcloud.MB
		s.Rows = append(s.Rows, Row{X: mb, Values: []float64{b, q, (b - q) / q * 100}})
	}
	return s
}

// Ablations returns all ablation experiments.
func Ablations(p simcloud.Params) []Series {
	return []Series{
		AblationStripeSize(p),
		AblationReplication(p),
		AblationRestartTransfer(p),
		AblationMetadataProviders(p),
		AblationGranularity(p),
	}
}
