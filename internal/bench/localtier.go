// Multilevel-checkpointing experiments: the node-local write-back tier
// against a bandwidth-starved remote plane, and the spot-preemption
// scenario it exists for.
//
// The downtime experiment already shows a single async checkpoint's suspend
// window is O(local capture). What it cannot show is the *admission*
// coupling: the mirror pipeline is bounded, so once DefaultPipelineDepth
// commits are in flight, the next suspend window waits for the remote plane
// to finish one — back-to-back checkpoints against a starved plane inherit
// its bandwidth. The local tier breaks exactly that coupling by releasing
// the pipeline slot when the capture is staged (node-local store + partner
// replica), so admission runs at local pace and the drain owes the remote
// plane the backlog asynchronously. RunLocalTier measures the worst suspend
// window of a burst of checkpoints, with and without the tier, with the
// remote plane at full speed and starved to starvedBandwidth — the tiered
// columns must stay flat across the two.
//
// RunPreemption is the operational payoff: a spot instance gets its notice
// at T with grace G. Checkpoints that are only locally safe die with the
// node (assume the whole allocation is reclaimed, partner included); the
// DRAIN-NOW flush publishes the staged backlog inside the grace window. The
// experiment reports the staged backlog at notice time, the grace actually
// needed to flush it at starved bandwidth, and the checkpoints lost with
// and without the flush.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/chunkstore"
	"blobcr/internal/localtier"
	"blobcr/internal/mirror"
	"blobcr/internal/obs"
	"blobcr/internal/proxy"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

// starvedBandwidth models the congested remote plane: 8 MB/s per data
// provider, an order of magnitude under the local/partner links.
const starvedBandwidth = 8 << 20

// localTierRounds sizes the checkpoint burst: deep enough past the pipeline
// bound that the un-tiered module must block on admission.
const localTierRounds = mirror.DefaultPipelineDepth + 2

// LocalTierResult is one sweep point: worst suspend window (ms) of a
// localTierRounds burst under the four plane/tier combinations.
type LocalTierResult struct {
	DirtyMB          float64
	TierMillis       float64 // local tier, remote plane at full bandwidth
	TierStarved      float64 // local tier, remote plane starved
	NoTierMillis     float64
	NoTierStarved    float64
	DrainedBacklogOK bool // tier backlog reached zero after the burst
}

// tierBench is the assembled two-node experiment stack: one instance over a
// tiered proxy (stage + partner replica on a second proxy), one over a
// plain proxy, all sharing the repository and the bandwidth-modelled net.
type tierBench struct {
	lat  *transport.Latency
	net  *transport.Bandwidth
	repo *blobseer.Deployment
	cl   *blobseer.Client

	tier     *proxy.Client
	tierInst *vm.Instance
	tierMod  *mirror.Module
	tierAddr string

	partnerStage *localtier.Stage
	partnerAddr  string

	flat     *proxy.Client
	flatInst *vm.Instance
	flatMod  *mirror.Module

	closers []func()
}

func (b *tierBench) Close() {
	for i := len(b.closers) - 1; i >= 0; i-- {
		b.closers[i]()
	}
}

// starve caps every data provider's pipe; restore lifts the caps. Proxy
// addresses are never touched — staging and partner replication ride the
// node-local links at full speed, which is the point.
func (b *tierBench) starve() {
	for _, addr := range b.repo.DataAddrs {
		b.net.SetAddrBytesPerSec(addr, starvedBandwidth)
	}
}

func (b *tierBench) restore() {
	for _, addr := range b.repo.DataAddrs {
		b.net.SetAddrBytesPerSec(addr, 0)
	}
}

func newTierBench() (*tierBench, error) {
	ctx := context.Background()
	b := &tierBench{}
	b.lat = transport.WithLatency(transport.NewInProc(), downtimeLatency)
	b.net = transport.WithBandwidth(b.lat, downtimeBandwidth)
	repo, err := blobseer.Deploy(b.net, 1, 4)
	if err != nil {
		return nil, err
	}
	b.repo = repo
	b.closers = append(b.closers, func() { repo.Close() })
	b.cl = repo.Client()
	b.cl.Obs = obs.NewRegistry()

	base, err := b.cl.CreateBlob(ctx, downtimeChunk)
	if err != nil {
		b.Close()
		return nil, err
	}
	info, err := b.cl.WriteVersion(ctx, base, map[uint64][]byte{0: make([]byte, downtimeChunk)}, downtimeDiskMB<<20)
	if err != nil {
		b.Close()
		return nil, err
	}
	baseRef := blobseer.SnapshotRef{Blob: base, Version: info.Version}

	// Partner node: a proxy whose tier holds the replicas.
	partner := proxy.New()
	b.partnerStage = localtier.New(chunkstore.NewMem(), b.cl.Obs)
	partner.Stage = b.partnerStage
	partner.Net = b.net
	partner.Repo = b.cl
	psrv, err := partner.Serve(b.net, "")
	if err != nil {
		b.Close()
		return nil, err
	}
	b.closers = append(b.closers, func() { psrv.Close() })
	b.partnerAddr = psrv.Addr()

	// Tiered node.
	tp := proxy.New()
	tp.Obs = b.cl.Obs
	tp.Stage = localtier.New(chunkstore.NewMem(), b.cl.Obs)
	tp.Net = b.net
	tp.Repo = b.cl
	tp.PartnerAddr = b.partnerAddr
	tsrv, err := tp.Serve(b.net, "")
	if err != nil {
		b.Close()
		return nil, err
	}
	b.closers = append(b.closers, func() { tsrv.Close() })
	b.tierAddr = tsrv.Addr()

	// Plain node: the un-tiered control.
	fp := proxy.New()
	fsrv, err := fp.Serve(b.net, "")
	if err != nil {
		b.Close()
		return nil, err
	}
	b.closers = append(b.closers, func() { fsrv.Close() })

	newInstance := func(id string, p *proxy.Proxy, addr string) (*vm.Instance, *mirror.Module, *proxy.Client, error) {
		mod, err := mirror.Attach(ctx, b.cl, baseRef)
		if err != nil {
			return nil, nil, nil, err
		}
		inst := vm.New(id, mod, vm.Config{BlockSize: 512})
		if err := inst.Boot(); err != nil {
			return nil, nil, nil, err
		}
		p.Register(id, "tok", inst, mod)
		return inst, mod, &proxy.Client{Net: b.net, Addr: addr, VMID: id, Token: "tok"}, nil
	}
	if b.tierInst, b.tierMod, b.tier, err = newInstance("bench-tier", tp, b.tierAddr); err != nil {
		b.Close()
		return nil, err
	}
	if b.flatInst, b.flatMod, b.flat, err = newInstance("bench-flat", fp, fsrv.Addr()); err != nil {
		b.Close()
		return nil, err
	}

	// Warm both images: the clone cost is constant and paid once.
	if _, err := b.tier.RequestCheckpoint(ctx); err != nil {
		b.Close()
		return nil, err
	}
	if _, err := b.flat.RequestCheckpoint(ctx); err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// dirtyRound rewrites chunks chunks with round-unique content, so no
// fingerprint shortcut can hide the transfer cost between rounds.
func dirtyRound(mod *mirror.Module, chunks, round int) error {
	buf := make([]byte, downtimeChunk)
	for i := range buf {
		buf[i] = byte(chunks + i + round*31)
	}
	for c := 0; c < chunks; c++ {
		if _, err := mod.WriteAt(buf, int64(c)*downtimeChunk); err != nil {
			return err
		}
	}
	return nil
}

// burst runs localTierRounds back-to-back dirty+checkpoint rounds against
// cl and returns the worst CHECKPOINT-exchange wall time plus the handles.
func burst(ctx context.Context, cl *proxy.Client, mod *mirror.Module, chunks int) (worstMillis float64, handles []uint64, err error) {
	for round := 0; round < localTierRounds; round++ {
		if err := dirtyRound(mod, chunks, round); err != nil {
			return 0, nil, err
		}
		t0 := time.Now()
		h, err := cl.RequestCheckpointAsync(ctx)
		if err != nil {
			return 0, nil, err
		}
		if ms := float64(time.Since(t0).Microseconds()) / 1000; ms > worstMillis {
			worstMillis = ms
		}
		handles = append(handles, h)
	}
	return worstMillis, handles, nil
}

// settleBurst waits every handle to global durability, fencing rounds apart.
func settleBurst(ctx context.Context, cl *proxy.Client, handles []uint64) error {
	for _, h := range handles {
		if _, err := cl.WaitCheckpoint(ctx, h); err != nil {
			return err
		}
	}
	return nil
}

// backlogEmpty polls both tier nodes until nothing is staged anywhere (the
// release frame to the partner is asynchronous to the publish).
func (b *tierBench) backlogEmpty(ctx context.Context) bool {
	deadline := time.Now().Add(2 * time.Second)
	for {
		own1, p1, err1 := proxy.Backlog(ctx, b.net, b.tierAddr)
		own2, p2, err2 := proxy.Backlog(ctx, b.net, b.partnerAddr)
		if err1 == nil && err2 == nil &&
			own1.Checkpoints+p1.Checkpoints+own2.Checkpoints+p2.Checkpoints == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RunLocalTier measures the worst suspend window of a checkpoint burst for
// each dirty-set size, tiered and un-tiered, with the remote plane at full
// bandwidth and starved. After every burst it waits for full drain
// convergence and finally asserts exactness: a forced re-drain must leave
// the CAS untouched, and the stage-local span telemetry must be present.
func RunLocalTier(dirtyChunks []int) ([]LocalTierResult, error) {
	ctx := context.Background()
	b, err := newTierBench()
	if err != nil {
		return nil, err
	}
	defer b.Close()

	// One unmeasured burst at the largest dirty set warms both pipelines
	// (heap growth, fresh page faults, the first GC cycles) so the measured
	// bursts compare like against like.
	warm := dirtyChunks[len(dirtyChunks)-1]
	if _, handles, err := burst(ctx, b.tier, b.tierMod, warm); err != nil {
		return nil, err
	} else if err := settleBurst(ctx, b.tier, handles); err != nil {
		return nil, err
	}
	if _, handles, err := burst(ctx, b.flat, b.flatMod, warm); err != nil {
		return nil, err
	} else if err := settleBurst(ctx, b.flat, handles); err != nil {
		return nil, err
	}

	var out []LocalTierResult
	for _, chunks := range dirtyChunks {
		r := LocalTierResult{DirtyMB: float64(chunks) * downtimeChunk / (1 << 20)}

		measure := func(cl *proxy.Client, mod *mirror.Module) (float64, error) {
			ms, handles, err := burst(ctx, cl, mod, chunks)
			if err != nil {
				return 0, err
			}
			// Lift the caps before settling: the suspend windows are already
			// recorded, only convergence matters now.
			b.restore()
			if err := settleBurst(ctx, cl, handles); err != nil {
				return 0, err
			}
			return ms, nil
		}

		if r.TierMillis, err = measure(b.tier, b.tierMod); err != nil {
			return nil, err
		}
		if r.NoTierMillis, err = measure(b.flat, b.flatMod); err != nil {
			return nil, err
		}
		b.starve()
		if r.TierStarved, err = measure(b.tier, b.tierMod); err != nil {
			return nil, err
		}
		b.starve()
		if r.NoTierStarved, err = measure(b.flat, b.flatMod); err != nil {
			return nil, err
		}
		b.restore()
		r.DrainedBacklogOK = b.backlogEmpty(ctx)
		out = append(out, r)
	}

	// Exactness: everything staged was published exactly once — a forced
	// re-drain of the (empty) tier must not move a single CAS refcount.
	before, err := b.cl.CasStats(ctx, b.repo.DataAddrs)
	if err != nil {
		return nil, err
	}
	if _, err := proxy.DrainNow(ctx, b.net, b.tierAddr); err != nil {
		return nil, err
	}
	after, err := b.cl.CasStats(ctx, b.repo.DataAddrs)
	if err != nil {
		return nil, err
	}
	if before.Refs != after.Refs || before.Chunks != after.Chunks {
		return nil, fmt.Errorf("bench: re-drain moved CAS state: refs %d->%d chunks %d->%d",
			before.Refs, after.Refs, before.Chunks, after.Chunks)
	}
	// The tiered pipeline must have emitted its stage telemetry, including
	// the stage-local span the tier adds to the commit path.
	if err := verifyLocalTierTelemetry(ctx, b.net, b.tierAddr); err != nil {
		return nil, err
	}
	return out, nil
}

// verifyLocalTierTelemetry scrapes a tiered proxy and checks every commit
// stage of the tiered pipeline — commit/stage-local included — recorded
// spans.
func verifyLocalTierTelemetry(ctx context.Context, net transport.Network, addr string) error {
	resp, err := net.Call(ctx, addr, []byte("METRICS"))
	if err != nil {
		return fmt.Errorf("bench: scrape METRICS: %w", err)
	}
	_, body, _ := strings.Cut(string(resp), "\n")
	points, err := obs.ParseProm(body)
	if err != nil {
		return fmt.Errorf("bench: parse METRICS exposition: %w", err)
	}
	for _, stage := range obs.CommitStagesLocalTier {
		p := obs.Find(points, "span_ns", obs.L("span", stage))
		if p == nil || p.Count == 0 {
			return fmt.Errorf("bench: tiered pipeline emitted no %q spans", stage)
		}
	}
	return nil
}

// FigLocalTier renders the local-tier experiment and enforces the
// acceptance bound: at the largest dirty set, the tiered suspend window
// under a starved remote plane must stay within 2x of the unstarved one.
func FigLocalTier() Series {
	s := Series{
		Title:   "Local tier: worst suspend window of a checkpoint burst, remote plane full vs starved (8 MB/s)",
		XLabel:  "dirty MB",
		YLabel:  "ms (burst of " + fmt.Sprint(localTierRounds) + " checkpoints)",
		Columns: []string{"tier ms", "tier starved ms", "no-tier ms", "no-tier starved ms"},
	}
	results, err := RunLocalTier([]int{64, 256})
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	for _, r := range results {
		s.Rows = append(s.Rows, Row{X: r.DirtyMB, Values: []float64{
			r.TierMillis, r.TierStarved, r.NoTierMillis, r.NoTierStarved,
		}})
		if !r.DrainedBacklogOK {
			s.Title += fmt.Sprintf(" — FAILED: backlog did not drain at %.0f MB", r.DirtyMB)
		}
	}
	last := results[len(results)-1]
	// Small absolute slack keeps scheduler jitter from failing a sub-ms pair.
	if last.TierStarved > 2*last.TierMillis+5 {
		s.Title += fmt.Sprintf(" — FAILED: starved suspend window %.2fms > 2x unstarved %.2fms",
			last.TierStarved, last.TierMillis)
	} else {
		s.Notes = append(s.Notes, fmt.Sprintf(
			"suspend window decoupled from remote plane: %.2fms starved vs %.2fms full at %.0f MB (bound: 2x)",
			last.TierStarved, last.TierMillis, last.DirtyMB))
	}
	s.Notes = append(s.Notes, fmt.Sprintf(
		"un-tiered admission inherits the starved plane: %.2fms vs %.2fms tiered",
		last.NoTierStarved, last.TierStarved))
	return s
}

// PreemptionResult is one sweep point of the spot-preemption experiment.
type PreemptionResult struct {
	DirtyMB       float64
	StagedAtNotic int     // checkpoints only locally safe when the notice lands
	FlushMillis   float64 // grace actually needed to DRAIN-NOW the backlog
	LostNoFlush   int     // checkpoints lost if the node dies un-flushed
	LostWithFlush int
}

// preemptionRounds is the checkpoint cadence between notice and the last
// durable state: each round is one interval of work.
const preemptionRounds = 3

// RunPreemption plays the spot-preemption scenario on the tiered stack: the
// remote plane is starved, preemptionRounds checkpoints reach local safety
// (their drains still owed), then the preemption notice lands. Without a
// flush every staged checkpoint dies with the allocation; with DRAIN-NOW
// the backlog is published inside the measured grace.
func RunPreemption(dirtyChunks []int) ([]PreemptionResult, error) {
	ctx := context.Background()
	b, err := newTierBench()
	if err != nil {
		return nil, err
	}
	defer b.Close()

	var out []PreemptionResult
	for _, chunks := range dirtyChunks {
		r := PreemptionResult{DirtyMB: float64(chunks) * downtimeChunk / (1 << 20)}
		b.starve()
		var handles []uint64
		for round := 0; round < preemptionRounds; round++ {
			if err := dirtyRound(b.tierMod, chunks, round); err != nil {
				return nil, err
			}
			h, err := b.tier.RequestCheckpointAsync(ctx)
			if err != nil {
				return nil, err
			}
			if _, err := b.tier.WaitCheckpointLocal(ctx, h); err != nil {
				return nil, err
			}
			handles = append(handles, h)
		}

		// The notice lands: whatever is still only in the tier would die
		// with the allocation.
		own, _, err := proxy.Backlog(ctx, b.net, b.tierAddr)
		if err != nil {
			return nil, err
		}
		r.StagedAtNotic = int(own.Checkpoints)
		r.LostNoFlush = r.StagedAtNotic

		// The grace window: flush the backlog to the (still starved) remote
		// plane — this is the bandwidth the operator actually gets.
		t0 := time.Now()
		if _, err := proxy.DrainNow(ctx, b.net, b.tierAddr); err != nil {
			return nil, err
		}
		r.FlushMillis = float64(time.Since(t0).Microseconds()) / 1000
		own, _, err = proxy.Backlog(ctx, b.net, b.tierAddr)
		if err != nil {
			return nil, err
		}
		r.LostWithFlush = int(own.Checkpoints)

		b.restore()
		if err := settleBurst(ctx, b.tier, handles); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FigPreemption renders the preemption experiment: staged backlog at notice
// time, the grace needed to flush it, and checkpoints lost either way.
func FigPreemption() Series {
	s := Series{
		Title:   "Preemption: DRAIN-NOW flush inside the grace window (remote plane starved to 8 MB/s)",
		XLabel:  "dirty MB",
		YLabel:  "checkpoints / ms",
		Columns: []string{"staged at notice", "flush ms", "lost w/o flush", "lost w/ flush"},
	}
	results, err := RunPreemption([]int{64, 256})
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	for _, r := range results {
		s.Rows = append(s.Rows, Row{X: r.DirtyMB, Values: []float64{
			float64(r.StagedAtNotic), r.FlushMillis, float64(r.LostNoFlush), float64(r.LostWithFlush),
		}})
		if r.LostWithFlush != 0 {
			s.Title += fmt.Sprintf(" — FAILED: %d checkpoints still staged after DRAIN-NOW at %.0f MB",
				r.LostWithFlush, r.DirtyMB)
		}
	}
	last := results[len(results)-1]
	s.Notes = append(s.Notes, fmt.Sprintf(
		"a preempted node needs %.0fms of grace to lose nothing; without the flush it loses %d checkpoint(s) of work",
		last.FlushMillis, last.LostNoFlush))
	return s
}
