// Throughput experiment: commit and restore bandwidth of the parallel
// striped I/O engine as the number of data providers grows. It runs the
// real stack — blobseer deployment, batched wire protocol, per-provider
// concurrent streams — over an in-process network that models each provider
// as a bandwidth-limited pipe (stdchk's striping model: aggregate write
// bandwidth scales with the striping width). A fixed dirty set is committed
// and then restored against 1, 2, 4 and 8 providers; because the client
// groups chunks by provider and moves each group in batched frames over its
// own stream, wall time divides by the provider count until the Parallelism
// bound or the metadata path dominates.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/seglog"
	"blobcr/internal/transport"
)

// ThroughputResult is one sweep point of the throughput experiment.
type ThroughputResult struct {
	Providers     int
	CommitMillis  float64
	CommitMBps    float64
	RestoreMillis float64
	RestoreMBps   float64
}

// throughputConfig sizes the experiment. The modeled pipe bandwidth is kept
// well below the in-process copy speed so the measured wall time is
// dominated by the deterministic bandwidth model, not by allocator or
// scheduler noise: the experiment is about how the engine's striping divides
// the bytes-on-the-wire term, which is the term that dominates on real
// networks.
const (
	tpChunk     = 64 * 1024
	tpChunks    = 256      // 16 MiB dirty set
	tpBandwidth = 64 << 20 // bytes/s per provider pipe
	tpLatency   = 50 * time.Microsecond
)

// RunThroughput measures commit and restore bandwidth on a fixed dirty set
// for each provider count. With a non-empty dir the providers persist to
// segment logs under it (real durable I/O inside the same bandwidth-shaped
// wire model); empty keeps them in memory.
func RunThroughput(providerCounts []int, dir string) ([]ThroughputResult, error) {
	ctx := context.Background()
	const totalBytes = tpChunk * tpChunks
	var out []ThroughputResult
	for _, np := range providerCounts {
		if np < 1 {
			return nil, fmt.Errorf("bench: provider count %d", np)
		}
		net := transport.WithBandwidth(transport.WithLatency(transport.NewInProc(), tpLatency), tpBandwidth)
		factory := blobseer.MemStores
		if dir != "" {
			cell := filepath.Join(dir, fmt.Sprintf("throughput-%d", np))
			factory = blobseer.SeglogStores(cell, seglog.Options{})
			defer os.RemoveAll(cell)
		}
		repo, err := blobseer.DeployWith(net, 2, np, factory)
		if err != nil {
			return nil, err
		}
		client := repo.Client()
		client.Parallelism = 16

		blob, err := client.CreateBlob(ctx, tpChunk)
		if err != nil {
			repo.Close()
			return nil, err
		}
		writes := make(map[uint64][]byte, tpChunks)
		for i := uint64(0); i < tpChunks; i++ {
			writes[i] = bytes.Repeat([]byte{byte(i), byte(i >> 8)}, tpChunk/2)
		}

		runtime.GC() // keep collector pauses out of the measured window
		t0 := time.Now()
		info, err := client.WriteVersion(ctx, blob, writes, totalBytes)
		if err != nil {
			repo.Close()
			return nil, err
		}
		commit := time.Since(t0)

		runtime.GC()
		t0 = time.Now()
		data, err := client.ReadVersion(ctx, blobseer.SnapshotRef{Blob: blob, Version: info.Version}, 0, totalBytes)
		if err != nil {
			repo.Close()
			return nil, err
		}
		restore := time.Since(t0)
		repo.Close()
		if len(data) != totalBytes {
			return nil, fmt.Errorf("bench: restore returned %d of %d bytes", len(data), totalBytes)
		}

		const mb = 1 << 20
		out = append(out, ThroughputResult{
			Providers:     np,
			CommitMillis:  float64(commit.Microseconds()) / 1000,
			CommitMBps:    float64(totalBytes) / mb / commit.Seconds(),
			RestoreMillis: float64(restore.Microseconds()) / 1000,
			RestoreMBps:   float64(totalBytes) / mb / restore.Seconds(),
		})
	}
	return out, nil
}

// FigThroughput renders the throughput experiment: commit and restore
// wall time and bandwidth for a fixed 16 MiB dirty set as the repository
// stripes across 1, 2, 4 and 8 data providers. A non-empty dir swaps the
// in-memory providers for durable segment logs under it.
func FigThroughput(dir string) Series {
	s := Series{
		Title:   "Throughput: parallel striped commit/restore vs provider count (16 MiB dirty set)",
		XLabel:  "providers",
		YLabel:  "ms / MB/s",
		Columns: []string{"commit ms", "commit MB/s", "restore ms", "restore MB/s"},
	}
	if dir != "" {
		s.Title += " [seglog-backed]"
	}
	results, err := RunThroughput([]int{1, 2, 4, 8}, dir)
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	for _, r := range results {
		s.Rows = append(s.Rows, Row{X: float64(r.Providers), Values: []float64{
			r.CommitMillis,
			r.CommitMBps,
			r.RestoreMillis,
			r.RestoreMBps,
		}})
	}
	return s
}
