// Repair experiment: storage MTTR and re-replication throughput of the
// self-healing storage plane (internal/repair) as the repository grows.
// It runs the real stack — blobseer deployment, dynamic membership, the
// anti-entropy scrubber and the exact-refcount re-replicator — over
// bandwidth-modelled pipes: a multi-version repository is committed at
// replication 2, one data provider is killed, a spare JOINs, and one Repair
// call restores every live chunk to full replication (verified by a clean
// scrub). Storage MTTR is the wall time of that call; throughput is the
// bytes re-replicated over it. More providers mean both fewer bytes lost
// per provider and more source/target streams, so MTTR drops on both axes.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/repair"
	"blobcr/internal/transport"
)

// Repair experiment sizing (same pipe model as the throughput experiment).
const (
	rpChunk     = 64 * 1024
	rpChunks    = 64 // per version: 4 MiB
	rpVersions  = 3
	rpBandwidth = 64 << 20 // bytes/s per provider pipe
	rpLatency   = 50 * time.Microsecond
)

// RepairResult is one sweep point of the repair experiment.
type RepairResult struct {
	Providers        int     // providers before the failure
	UnderReplicated  int     // chunks below replication right after the kill
	ReplicasRestored int     // replica bodies re-placed
	RestoredMB       float64 // payload re-replicated
	StorageMTTRMs    float64 // failure to clean scrub (one Repair call)
	ThroughputMBps   float64 // RestoredMB / MTTR
}

// RunRepair measures storage MTTR and re-replication throughput for each
// provider count: kill one provider under a committed multi-version
// repository, JOIN a spare, repair to a clean scrub.
func RunRepair(providerCounts []int) ([]RepairResult, error) {
	ctx := context.Background()
	var out []RepairResult
	for _, np := range providerCounts {
		if np < 2 {
			return nil, fmt.Errorf("bench: repair needs at least 2 providers, got %d", np)
		}
		net := transport.WithBandwidth(transport.WithLatency(transport.NewInProc(), rpLatency), rpBandwidth)
		repo, err := blobseer.Deploy(net, 2, np)
		if err != nil {
			return nil, err
		}
		client := repo.Client()
		client.Dedup = true
		client.Replication = 2
		client.Parallelism = 16

		blob, err := client.CreateBlob(ctx, rpChunk)
		if err != nil {
			repo.Close()
			return nil, err
		}
		for v := 0; v < rpVersions; v++ {
			writes := make(map[uint64][]byte, rpChunks)
			for i := uint64(0); i < rpChunks; i++ {
				writes[i] = bytes.Repeat([]byte{byte(v + 1), byte(i), byte(i >> 8)}, rpChunk/3)
			}
			if _, err := client.WriteVersion(ctx, blob, writes, rpChunks*rpChunk); err != nil {
				repo.Close()
				return nil, err
			}
		}

		// Fail-stop one provider, JOIN a spare.
		victim := repo.DataAddrs[0]
		net.Partition(victim)
		if err := client.UnregisterProvider(ctx, victim); err != nil {
			repo.Close()
			return nil, err
		}
		if _, err := repo.AddDataProvider(ctx); err != nil {
			repo.Close()
			return nil, err
		}

		r := repair.New(repair.Config{Client: client})
		runtime.GC() // keep collector pauses out of the measured window
		t0 := time.Now()
		rep, err := r.Repair(ctx)
		mttr := time.Since(t0)
		if err != nil {
			repo.Close()
			return nil, err
		}
		if !rep.Post.Clean() {
			repo.Close()
			return nil, fmt.Errorf("bench: repair did not converge at %d providers: %s", np, rep.Post)
		}
		// The repaired repository must still restore in full.
		latest, _, err := client.Latest(ctx, blob)
		if err == nil {
			_, err = client.ReadVersion(ctx, blobseer.SnapshotRef{Blob: blob, Version: latest.Version}, 0, rpChunks*rpChunk)
		}
		repo.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: restore after repair at %d providers: %w", np, err)
		}

		const mb = 1 << 20
		restoredMB := float64(rep.BytesRestored) / mb
		out = append(out, RepairResult{
			Providers:        np,
			UnderReplicated:  rep.Pre.UnderReplicated,
			ReplicasRestored: rep.ReplicasRestored,
			RestoredMB:       restoredMB,
			StorageMTTRMs:    float64(mttr.Microseconds()) / 1000,
			ThroughputMBps:   restoredMB / mttr.Seconds(),
		})
	}
	return out, nil
}

// FigRepair renders the repair experiment: storage MTTR and re-replication
// throughput after a one-provider failure (plus a spare JOIN) at 2, 4 and 8
// providers.
func FigRepair() Series {
	s := Series{
		Title:   "Repair: storage MTTR and re-replication throughput vs provider count (kill 1, join 1)",
		XLabel:  "providers",
		YLabel:  "ms / MB / MB/s",
		Columns: []string{"storage MTTR ms", "chunks lost", "restored MB", "re-repl MB/s"},
	}
	results, err := RunRepair([]int{2, 4, 8})
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	for _, r := range results {
		s.Rows = append(s.Rows, Row{X: float64(r.Providers), Values: []float64{
			r.StorageMTTRMs,
			float64(r.UnderReplicated),
			r.RestoredMB,
			r.ThroughputMBps,
		}})
	}
	return s
}
