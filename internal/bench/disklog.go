// Disk log experiment: commit bandwidth of the durable storage engines on a
// real disk. It runs the full stack — deployment, batched wire protocol,
// striped commit path — against one disk-backed data provider and sweeps the
// number of concurrent committers, comparing the file-per-chunk store (two
// fsyncs per chunk: the temp file and its directory) with the log-structured
// segment engine (internal/seglog), whose group-commit writer folds every
// put that arrives while an fsync is in flight into the next single append +
// fsync. The chunk bodies are incompressible, so the comparison measures the
// commit path and not the seglog compressor; the engines' own counters
// (puts, fsyncs) are read back over the wire to make the batching visible.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/seglog"
	"blobcr/internal/transport"
)

// DiskLogResult is one sweep point: both engines' commit bandwidth for the
// same workload, plus their put/fsync counters.
type DiskLogResult struct {
	Committers   int
	FilesMBps    float64
	SeglogMBps   float64
	FilesPuts    uint64
	FilesFsyncs  uint64
	SeglogPuts   uint64
	SeglogFsyncs uint64
}

// disk-log workload: each committer writes its own blob of dlChunks
// incompressible chunks in one WriteVersion, all committers concurrently
// against a single disk-backed provider. 16 KiB chunks model the dirty-page
// aggregates of an incremental VM checkpoint — the regime the paper targets
// and where per-chunk fsync cost dominates a file-per-chunk store.
const (
	dlChunk  = 16 * 1024
	dlChunks = 192 // per committer: 3 MiB
)

// dlBody fills one incompressible chunk body (xorshift64) unique to
// (committer, chunk), so neither dedup nor the compressor can elide bytes.
func dlBody(committer, chunk int) []byte {
	b := make([]byte, dlChunk)
	x := uint64(committer)<<32 ^ uint64(chunk)<<1 ^ 0x9e3779b97f4a7c15
	for i := 0; i+8 <= len(b); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		for j := 0; j < 8; j++ {
			b[i+j] = byte(x >> (8 * j))
		}
	}
	return b
}

// runDiskLogCell measures one (backend, committers) cell: wall time of all
// committers' WriteVersions against a fresh single-provider deployment rooted
// at dir, and the engine's put/fsync counters afterwards.
func runDiskLogCell(dir string, factory blobseer.StoreFactory, committers int) (mbps float64, puts, fsyncs uint64, err error) {
	ctx := context.Background()
	d, err := blobseer.DeployWith(transport.NewInProc(), 1, 1, factory)
	if err != nil {
		return 0, 0, 0, err
	}
	defer d.Close()
	client := d.Client()
	client.Parallelism = 8

	blobs := make([]uint64, committers)
	writes := make([]map[uint64][]byte, committers)
	for c := 0; c < committers; c++ {
		if blobs[c], err = client.CreateBlob(ctx, dlChunk); err != nil {
			return 0, 0, 0, err
		}
		writes[c] = make(map[uint64][]byte, dlChunks)
		for i := 0; i < dlChunks; i++ {
			writes[c][uint64(i)] = dlBody(c, i)
		}
	}

	runtime.GC() // keep collector pauses out of the measured window
	var wg sync.WaitGroup
	errs := make([]error, committers)
	t0 := time.Now()
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = client.WriteVersion(ctx, blobs[c], writes[c], dlChunk*dlChunks)
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, e
		}
	}

	es, err := client.StoreEngineStats(ctx, d.DataAddrs[0])
	if err != nil {
		return 0, 0, 0, err
	}
	total := float64(committers) * dlChunk * dlChunks
	return total / (1 << 20) / wall.Seconds(), es.Field("puts"), es.Field("fsyncs"), nil
}

// settle flushes and drains the file system between cells. A cell ends by
// unlinking hundreds of chunk files; on a journaling file system that work
// completes asynchronously and would otherwise bill the NEXT cell's fsyncs
// (measured as a 2-3x swing on ext4). Best-effort: if sync(1) is missing
// the sleep alone still absorbs most of it.
func settle() {
	exec.Command("sync").Run() //nolint:errcheck
	time.Sleep(300 * time.Millisecond)
}

// RunDiskLog sweeps the committer counts over both disk engines. Each cell
// gets a fresh store under dir (removed after the cell, with a settle so its
// unlink storm is not billed to the next measurement) so no run measures
// another's segments or chunk files.
func RunDiskLog(dir string, committers []int) ([]DiskLogResult, error) {
	var out []DiskLogResult
	for _, c := range committers {
		if c < 1 {
			return nil, fmt.Errorf("bench: committer count %d", c)
		}
		r := DiskLogResult{Committers: c}

		cell := filepath.Join(dir, fmt.Sprintf("files-%d", c))
		settle()
		mbps, puts, fsyncs, err := runDiskLogCell(cell, blobseer.DiskStores(cell), c)
		os.RemoveAll(cell)
		if err != nil {
			return nil, err
		}
		r.FilesMBps, r.FilesPuts, r.FilesFsyncs = mbps, puts, fsyncs

		cell = filepath.Join(dir, fmt.Sprintf("seglog-%d", c))
		settle()
		mbps, puts, fsyncs, err = runDiskLogCell(cell, blobseer.SeglogStores(cell, seglog.Options{}), c)
		os.RemoveAll(cell)
		if err != nil {
			return nil, err
		}
		r.SeglogMBps, r.SeglogPuts, r.SeglogFsyncs = mbps, puts, fsyncs
		out = append(out, r)
	}
	return out, nil
}

// RunZeroElision measures the segment log's bytes-on-disk for a sparse
// workload — half the chunks all-zero, the signature of a sparse VM image —
// against the logical bytes any store without zero-page elision (the
// file-per-chunk engine stores payloads verbatim) puts on disk.
func RunZeroElision(dir string) (logical, disk, zeroChunks uint64, err error) {
	ctx := context.Background()
	d, err := blobseer.DeployWith(transport.NewInProc(), 1, 1, blobseer.SeglogStores(dir, seglog.Options{}))
	if err != nil {
		return 0, 0, 0, err
	}
	defer d.Close()
	client := d.Client()
	client.Parallelism = 8
	blob, err := client.CreateBlob(ctx, dlChunk)
	if err != nil {
		return 0, 0, 0, err
	}
	writes := make(map[uint64][]byte, dlChunks)
	for i := 0; i < dlChunks; i++ {
		if i%2 == 0 {
			writes[uint64(i)] = make([]byte, dlChunk)
		} else {
			writes[uint64(i)] = dlBody(0, i)
		}
	}
	if _, err := client.WriteVersion(ctx, blob, writes, dlChunk*dlChunks); err != nil {
		return 0, 0, 0, err
	}
	es, err := client.StoreEngineStats(ctx, d.DataAddrs[0])
	if err != nil {
		return 0, 0, 0, err
	}
	return es.Field("logical_bytes"), es.Field("disk_bytes"), es.Field("zero_chunks"), nil
}

// FigDiskLog renders the disk-log experiment: commit MB/s of the
// file-per-chunk store vs the segment log on a real disk under dir, as
// concurrent committers grow, with each engine's fsyncs-per-put ratio
// showing the group commit at work.
func FigDiskLog(dir string) Series {
	s := Series{
		Title:   "Disk log: durable commit bandwidth, file-per-chunk vs segment log (real disk)",
		XLabel:  "committers",
		YLabel:  "MB/s (ratios unitless)",
		Columns: []string{"files MB/s", "seglog MB/s", "speedup", "files fsync/put", "seglog fsync/put"},
	}
	results, err := RunDiskLog(dir, []int{1, 2, 4, 8})
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	var buf bytes.Buffer
	for i, r := range results {
		s.Rows = append(s.Rows, Row{X: float64(r.Committers), Values: []float64{
			r.FilesMBps,
			r.SeglogMBps,
			r.SeglogMBps / r.FilesMBps,
			ratio(r.FilesFsyncs, r.FilesPuts),
			ratio(r.SeglogFsyncs, r.SeglogPuts),
		}})
		if i > 0 {
			buf.WriteString(", ")
		}
		fmt.Fprintf(&buf, "%d committers: %d/%d", r.Committers, r.SeglogFsyncs, r.SeglogPuts)
	}
	s.Notes = append(s.Notes,
		"seglog fsyncs/puts — "+buf.String(),
		fmt.Sprintf("incompressible %d KiB chunks, %d per committer; zero-page elision and flate never fire on this workload", dlChunk/1024, dlChunks),
	)
	zcell := filepath.Join(dir, "zero-elision")
	logical, disk, zeros, err := RunZeroElision(zcell)
	os.RemoveAll(zcell)
	if err != nil {
		s.Notes = append(s.Notes, fmt.Sprintf("zero-page elision cell FAILED: %v", err))
	} else {
		s.Notes = append(s.Notes, fmt.Sprintf(
			"zero-page elision (sparse image, 50%% all-zero chunks): %.2f MiB logical -> %.2f MiB on disk, %d chunks elided; without elision (file-per-chunk) disk = logical",
			float64(logical)/(1<<20), float64(disk)/(1<<20), zeros))
	}
	return s
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
