// Cluster-health-plane experiment: how fast does the federated SLO engine
// turn a throttled remote plane into a firing alert?
//
// The setup is the full production shape: a LocalTier cloud with per-node
// registries (cloud.Config.Health), a supervisor federating every proxy's
// and data provider's metrics into its own ringed registry each round
// (supervisor.Config.Health), and a drain-backlog burn-rate rule over that
// ring. A background workload checkpoints continuously; mid-run the remote
// plane is throttled to healthStarvedBW per provider, so staged captures
// pile up in the local tiers faster than the drains can publish them. The
// supervisor does not observe the throttle directly — it only sees the
// node= labeled backlog gauges its own heartbeat piggyback collects, and
// the rule fires when their growth over the window is sustained.
//
// Detection latency is measured in federation rounds, not wall-clock: the
// alert event's round= detail (stamped from federation_rounds_total at fire
// time) minus the round counter read when the throttle landed. That is the
// unit the promise is made in — "fires within 2 scrape periods" — and it is
// immune to scheduler jitter stretching the rounds themselves. After the
// throttle lifts the drains catch up, the growth leaves the window, and the
// run waits for the resolution event. Finally one METRICS scrape of the
// supervisor endpoint — over the wire, like blobcr-ctl top — must answer
// with every node's series (node= label coverage), proving a single
// federated endpoint carries the fleet.
package bench

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"blobcr/internal/cloud"
	"blobcr/internal/health"
	"blobcr/internal/obs"
	"blobcr/internal/proxy"
	"blobcr/internal/supervisor"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

const (
	healthNodes     = 3
	healthHeartbeat = 25 * time.Millisecond
	healthFedEvery  = 4 // federation every 4th heartbeat round = 100ms period
	// healthDirtyChunks sizes each checkpoint's dirty set (x64 KB chunks).
	healthDirtyChunks = 8
	// healthStarvedBW throttles each data provider mid-run: well under the
	// staging rate, so the drain backlog must grow.
	healthStarvedBW = 2 << 20
	// healthWindow / healthGrowth: the burn-rate rule fires on more than
	// healthGrowth bytes of backlog growth over the trailing window.
	healthWindow = time.Second
	healthGrowth = 2 << 20
	// healthWarmupRounds of federation run before the throttle, so the
	// window has a full baseline and the steady state is demonstrably quiet.
	healthWarmupRounds = 15
	healthDetectBound  = 2 // acceptance: fires within this many rounds
)

// healthBenchRule is the drain-backlog burn-rate rule under test, scaled to
// the experiment's cadence (the stock DefaultRules windows assume
// production scrape periods).
func healthBenchRule() health.Rule {
	return health.Rule{
		Name:      "drain-backlog-growing",
		Signal:    health.Signal{Metric: "supervisor_drain_backlog_bytes", Agg: health.AggGaugeDelta},
		PerNode:   true,
		Windows:   []time.Duration{healthWindow},
		Threshold: healthGrowth,
		FireAfter: 1, ResolveAfter: 1,
	}
}

// HealthResult is the experiment's outcome.
type HealthResult struct {
	Nodes         int
	DetectRounds  uint64  // federation rounds from throttle to alert-firing
	DetectMillis  float64 // same gap in wall-clock
	ResolveRounds uint64  // rounds from throttle lift to alert-resolved
	ResolveMillis float64
	NodesCovered  int // nodes whose series one supervisor scrape answered for
}

// RunHealth plays the throttled-remote-plane scenario end to end and
// returns the measured detection and resolution latencies.
func RunHealth() (HealthResult, error) {
	ctx := context.Background()
	var res HealthResult
	res.Nodes = healthNodes

	lat := transport.WithLatency(transport.NewInProc(), downtimeLatency)
	net := transport.WithBandwidth(lat, downtimeBandwidth)
	cl, err := cloud.New(cloud.Config{
		Nodes:         healthNodes,
		MetaProviders: 1,
		Net:           net,
		Obs:           obs.NewRegistry(),
		LocalTier:     true,
		Health:        &health.Options{SampleEvery: 50 * time.Millisecond, HistoryCap: 128},
	})
	if err != nil {
		return res, err
	}
	defer cl.Close()

	// Sparse base image: one written chunk, downtimeDiskMB of logical size.
	bcl := cl.Client()
	blob, err := bcl.CreateBlob(ctx, downtimeChunk)
	if err != nil {
		return res, err
	}
	info, err := bcl.WriteVersion(ctx, blob, map[uint64][]byte{0: make([]byte, downtimeChunk)}, downtimeDiskMB<<20)
	if err != nil {
		return res, err
	}
	base := cloud.SnapshotRef{Blob: blob, Version: info.Version}
	dep, err := cl.Deploy(ctx, healthNodes, base, vm.Config{BlockSize: 512})
	if err != nil {
		return res, err
	}
	// Warm every instance's pipeline: the first checkpoint pays the clone.
	for _, inst := range dep.Instances {
		if _, err := inst.Proxy.RequestCheckpoint(ctx); err != nil {
			return res, err
		}
	}

	supReg := obs.NewRegistry()
	sup := supervisor.New(cl, dep, supervisor.Config{
		HeartbeatEvery: healthHeartbeat,
		// The workload drives its own checkpoints; park the Young/Daly timer.
		MinInterval: time.Hour,
		MaxInterval: time.Hour,
		Obs:         supReg,
		Health: &health.Config{
			Every:      healthFedEvery,
			HistoryCap: 256,
			Rules:      []health.Rule{healthBenchRule()},
		},
	})
	srv, err := sup.Serve(net, "")
	if err != nil {
		return res, err
	}
	defer srv.Close()

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		sup.Run(runCtx) //nolint:errcheck // returns nil on cancellation
	}()
	defer func() { cancelRun(); <-runDone }()

	// The background workload: every instance keeps dirtying and
	// checkpointing, paced by local safety (the window the tier promises),
	// never by the remote plane.
	driveCtx, stopDriver := context.WithCancel(ctx)
	var driverWG sync.WaitGroup
	lastHandles := make([]uint64, len(dep.Instances))
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		for round := 1; driveCtx.Err() == nil; round++ {
			for i, inst := range dep.Instances {
				if err := dirtyRound(inst.Mirror, healthDirtyChunks, round); err != nil {
					return
				}
				h, err := inst.Proxy.RequestCheckpointAsync(driveCtx)
				if err != nil {
					return
				}
				if _, err := inst.Proxy.WaitCheckpointLocal(driveCtx, h); err != nil {
					return
				}
				lastHandles[i] = h
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	stopDriving := func() { stopDriver(); driverWG.Wait() }
	defer stopDriving()

	rounds := func() uint64 { return supReg.Counter("federation_rounds_total").Value() }
	if err := waitFor(10*time.Second, func() bool { return rounds() >= healthWarmupRounds }); err != nil {
		return res, fmt.Errorf("bench: federation never reached %d rounds: %w", healthWarmupRounds, err)
	}
	if firing := sup.Alerts(); len(firing) != 0 {
		return res, fmt.Errorf("bench: alert %s firing before the throttle (quiet baseline violated)", firing[0].Name())
	}

	events, unsubscribe := sup.Events().Subscribe()
	defer unsubscribe()

	// Throttle the remote plane. The proxies and their partner links stay at
	// full speed — staging keeps its pace, only the drains starve.
	throttleRound := rounds()
	throttleAt := time.Now()
	for _, node := range cl.Nodes() {
		net.SetAddrBytesPerSec(node.DataAddr, healthStarvedBW)
	}
	fire, err := awaitEvent(events, supervisor.EventAlertFiring, 20*time.Second)
	if err != nil {
		return res, err
	}
	res.DetectMillis = float64(time.Since(throttleAt).Microseconds()) / 1000
	fireRound, ok := eventRound(fire.Detail)
	if !ok {
		return res, fmt.Errorf("bench: alert event carries no round=: %q", fire.Detail)
	}
	res.DetectRounds = fireRound - throttleRound

	// Lift the throttle; the drains catch up and the growth leaves the
	// window.
	liftRound := rounds()
	liftAt := time.Now()
	for _, node := range cl.Nodes() {
		net.SetAddrBytesPerSec(node.DataAddr, 0)
	}
	resolve, err := awaitEvent(events, supervisor.EventAlertResolved, 30*time.Second)
	if err != nil {
		return res, err
	}
	res.ResolveMillis = float64(time.Since(liftAt).Microseconds()) / 1000
	if r, ok := eventRound(resolve.Detail); ok && r > liftRound {
		res.ResolveRounds = r - liftRound
	}

	// Quiesce: stop the workload, publish the tail of the pipeline, wait for
	// the tiers to empty.
	stopDriving()
	for i, inst := range dep.Instances {
		if lastHandles[i] == 0 {
			continue
		}
		if _, err := inst.Proxy.WaitCheckpoint(ctx, lastHandles[i]); err != nil {
			return res, err
		}
	}
	if err := waitFor(10*time.Second, func() bool {
		for _, node := range cl.Nodes() {
			own, partner, err := proxy.Backlog(ctx, net, node.ProxyAddr)
			if err != nil || own.Checkpoints+partner.Checkpoints != 0 {
				return false
			}
		}
		return true
	}); err != nil {
		return res, fmt.Errorf("bench: tiers never drained after the throttle lifted: %w", err)
	}

	// The acceptance scrape: one wire METRICS exchange with the supervisor —
	// exactly what blobcr-ctl top issues — must answer with every node's
	// liveness AND its proxy-side series.
	body, err := transport.ScrapeExposition(ctx, net, srv.Addr())
	if err != nil {
		return res, fmt.Errorf("bench: scrape federated endpoint: %w", err)
	}
	points, err := obs.ParseProm(body)
	if err != nil {
		return res, fmt.Errorf("bench: parse federated exposition: %w", err)
	}
	for _, node := range cl.Nodes() {
		nl := obs.L(health.NodeLabel, node.Name)
		up := obs.Find(points, "federation_node_up", nl)
		suspend := obs.Find(points, "proxy_suspend_ns", nl)
		if up != nil && up.GaugeValue == 1 && suspend != nil && suspend.Count > 0 {
			res.NodesCovered++
		}
	}
	return res, nil
}

// waitFor polls cond every 5ms until it holds or the timeout expires.
func waitFor(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not met within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// awaitEvent drains the subscription until an event of the wanted type.
func awaitEvent(events <-chan supervisor.Event, typ supervisor.EventType, timeout time.Duration) (supervisor.Event, error) {
	deadline := time.After(timeout)
	for {
		select {
		case e, ok := <-events:
			if !ok {
				return supervisor.Event{}, fmt.Errorf("bench: event stream closed awaiting %s", typ)
			}
			if e.Type == typ {
				return e, nil
			}
		case <-deadline:
			return supervisor.Event{}, fmt.Errorf("bench: no %s event within %v", typ, timeout)
		}
	}
}

// eventRound extracts the round= field alert events carry in their detail.
func eventRound(detail string) (uint64, bool) {
	for _, f := range strings.Fields(detail) {
		if v, found := strings.CutPrefix(f, "round="); found {
			if n, err := strconv.ParseUint(v, 10, 64); err == nil {
				return n, true
			}
		}
	}
	return 0, false
}

// FigHealth renders the health-plane experiment and enforces the acceptance
// bounds: the alert fires within healthDetectBound federation rounds of the
// throttle, resolves after it lifts, and one federated scrape covers every
// node.
func FigHealth() Series {
	s := Series{
		Title:   "Cluster health: drain-backlog alert from the federated view (remote plane throttled to 2 MB/s)",
		XLabel:  "nodes",
		YLabel:  "rounds / ms",
		Columns: []string{"detect rounds", "detect ms", "resolve rounds", "resolve ms", "nodes covered"},
	}
	r, err := RunHealth()
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	s.Rows = append(s.Rows, Row{X: float64(r.Nodes), Values: []float64{
		float64(r.DetectRounds), r.DetectMillis,
		float64(r.ResolveRounds), r.ResolveMillis,
		float64(r.NodesCovered),
	}})
	if r.DetectRounds > healthDetectBound {
		s.Title += fmt.Sprintf(" — FAILED: alert fired %d rounds after the throttle, bound %d",
			r.DetectRounds, healthDetectBound)
	}
	if r.NodesCovered < r.Nodes {
		s.Title += fmt.Sprintf(" — FAILED: federated scrape covered %d of %d nodes",
			r.NodesCovered, r.Nodes)
	}
	s.Notes = append(s.Notes,
		fmt.Sprintf("throttle to firing alert: %d federation round(s), %.0f ms (bound: %d rounds); resolution %.0f ms after the throttle lifted",
			r.DetectRounds, r.DetectMillis, healthDetectBound, r.ResolveMillis),
		fmt.Sprintf("one supervisor scrape answered with node= series for all %d nodes", r.NodesCovered))
	return s
}
