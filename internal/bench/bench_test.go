package bench

import (
	"bytes"
	"strings"
	"testing"

	"blobcr/internal/simcloud"
)

func TestAllSeriesWellFormed(t *testing.T) {
	p := simcloud.Default()
	c := simcloud.DefaultCM1()
	series := All(p, c, t.TempDir())
	if len(series) != 20 {
		t.Fatalf("All returned %d series, want 20 (every table and figure, the CAS dedup extension, and the downtime, commit-stage, trace-critical-path, availability, throughput, disk-log, repair, local-tier, preemption and cluster-health experiments)", len(series))
	}
	for _, s := range series {
		if s.Title == "" || len(s.Columns) == 0 || len(s.Rows) == 0 {
			t.Errorf("series %q malformed", s.Title)
		}
		for _, r := range s.Rows {
			if len(r.Values) != len(s.Columns) {
				t.Errorf("%s: row %v has %d values for %d columns", s.Title, r.X, len(r.Values), len(s.Columns))
			}
			for i, v := range r.Values {
				if v < 0 {
					t.Errorf("%s: negative value %f in column %s", s.Title, v, s.Columns[i])
				}
			}
		}
	}
}

func TestRenderProducesTable(t *testing.T) {
	p := simcloud.Default()
	s := Fig4SnapshotSize(p)
	var buf bytes.Buffer
	s.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Figure 4") {
		t.Error("render missing title")
	}
	if !strings.Contains(out, "BlobCR-app") || !strings.Contains(out, "qcow2-full") {
		t.Error("render missing approach columns")
	}
	if len(strings.Split(out, "\n")) < 5 {
		t.Error("render too short")
	}
}

func TestAblationsWellFormed(t *testing.T) {
	p := simcloud.Default()
	abl := Ablations(p)
	if len(abl) != 5 {
		t.Fatalf("Ablations returned %d series, want 5", len(abl))
	}
	for _, s := range abl {
		for _, r := range s.Rows {
			if len(r.Values) != len(s.Columns) {
				t.Errorf("%s: ragged row", s.Title)
			}
		}
	}
}

func TestAblationStripeSizeTradeoff(t *testing.T) {
	p := simcloud.Default()
	s := AblationStripeSize(p)
	// Larger stripes -> larger snapshots (coarser rounding).
	first := s.Rows[0].Values[1]
	last := s.Rows[len(s.Rows)-1].Values[1]
	if last <= first {
		t.Errorf("snapshot size did not grow with stripe size: %f -> %f", first, last)
	}
}

func TestAblationReplicationCost(t *testing.T) {
	p := simcloud.Default()
	s := AblationReplication(p)
	if s.Rows[2].Values[0] <= s.Rows[0].Values[0] {
		t.Error("3x replication not slower than 1x")
	}
	if s.Rows[1].Values[1] != 2*s.Rows[0].Values[1] {
		t.Error("2x replication does not double stored bytes")
	}
}

func TestAblationLazyBeatsFullBroadcast(t *testing.T) {
	p := simcloud.Default()
	s := AblationRestartTransfer(p)
	for _, r := range s.Rows {
		if r.Values[0] >= r.Values[1] {
			t.Errorf("hosts=%v: lazy (%f) not faster than full broadcast (%f)", r.X, r.Values[0], r.Values[1])
		}
	}
}

func TestAblationMetadataProvidersHelp(t *testing.T) {
	p := simcloud.Default()
	s := AblationMetadataProviders(p)
	if s.Rows[0].Values[0] <= s.Rows[4].Values[0] {
		t.Error("1 metadata provider not slower than 20 under 120-writer concurrency")
	}
}

func TestAblationGranularityTaxSmallAndShrinking(t *testing.T) {
	p := simcloud.Default()
	s := AblationGranularity(p)
	// The paper: <5% at 200 MB, and the absolute overhead stays constant
	// (so the percentage shrinks with size).
	var at200 float64
	for _, r := range s.Rows {
		if r.X == 200 {
			at200 = r.Values[2]
		}
	}
	if at200 <= 0 || at200 > 5 {
		t.Errorf("granularity tax at 200MB = %.2f%%, want (0, 5]", at200)
	}
	if s.Rows[0].Values[2] <= s.Rows[len(s.Rows)-1].Values[2] {
		t.Error("relative overhead should shrink as buffers grow")
	}
}

// TestDowntimeAsyncIndependentOfDirtySet is the acceptance check for the
// asynchronous checkpoint pipeline: the work that lands inside the suspend
// window is constant for async commits regardless of the dirty-set size,
// while the synchronous path's downtime grows with the dirty bytes that
// must cross the bandwidth-limited pipes under suspend. With the batched
// wire protocol, even the sync path's *round trips* stay constant as the
// dirty set grows — a commit costs O(providers) frames — so the growth
// shows up in transfer milliseconds, not in call counts.
func TestDowntimeAsyncIndependentOfDirtySet(t *testing.T) {
	results, err := RunDowntime([]int{8, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		// The async window holds the CHECKPOINT exchange (1 round trip); the
		// background upload may race one extra call onto the shared counter.
		// What matters is a constant bound, independent of the dirty set.
		if r.AsyncNetCalls > 3 {
			t.Errorf("async round trips under suspend scale with dirty set: %d at %v MB", r.AsyncNetCalls, r.DirtyMB)
		}
		// The batched engine groups a commit into per-provider frames: the
		// sync window's round trips are O(providers), never O(chunks) —
		// 256 dirty chunks must not mean 256 calls.
		if r.SyncNetCalls > 40 {
			t.Errorf("sync round trips scale with dirty set at %v MB: %d calls (batching broken?)", r.DirtyMB, r.SyncNetCalls)
		}
		// The sync downtime itself still grows with the dirty bytes shipped
		// under suspend.
		if i > 0 && r.SyncMillis < results[i-1].SyncMillis {
			t.Errorf("sync downtime did not grow with dirty set: %.2fms then %.2fms", results[i-1].SyncMillis, r.SyncMillis)
		}
	}
	last := results[len(results)-1]
	if last.AsyncMillis >= last.SyncMillis {
		t.Errorf("async downtime %.2fms not below sync %.2fms at %v MB dirty", last.AsyncMillis, last.SyncMillis, last.DirtyMB)
	}
}

// TestThroughputCommitScalesWithProviders is the acceptance check for the
// parallel striped I/O engine: committing a fixed dirty set against 4
// bandwidth-limited providers must be well over twice as fast as against 1,
// because the engine groups chunks by provider and runs the per-provider
// batched streams concurrently. The sweep is sleep-dominated (the modeled
// pipe is far slower than in-process copies), so the ratio is stable.
func TestThroughputCommitScalesWithProviders(t *testing.T) {
	results, err := RunThroughput([]int{1, 4}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	one, four := results[0], results[1]
	ratio := one.CommitMillis / four.CommitMillis
	if ratio < 2.2 {
		t.Errorf("commit speedup 1->4 providers = %.2fx (%.1fms -> %.1fms), want > 2.2x",
			ratio, one.CommitMillis, four.CommitMillis)
	}
	if one.RestoreMillis <= four.RestoreMillis {
		t.Errorf("restore did not speed up with providers: %.1fms -> %.1fms",
			one.RestoreMillis, four.RestoreMillis)
	}
}

// TestDiskLogSeglogBeatsFilesBackend is the acceptance check for the
// log-structured storage engine: on a real disk, with concurrent committers
// feeding one provider, the segment log's group commit must sustain higher
// durable commit bandwidth than the file-per-chunk store, and its fsync
// count must sit well below its put count (one batched fsync covers many
// riders). A single-committer smoke run keeps CI honest about the counters
// without depending on disk speed.
func TestDiskLogSeglogBeatsFilesBackend(t *testing.T) {
	results, err := RunDiskLog(t.TempDir(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.SeglogPuts == 0 || r.FilesPuts == 0 {
		t.Fatalf("engine counters empty: %+v", r)
	}
	if r.SeglogFsyncs*2 >= r.SeglogPuts {
		t.Errorf("group commit not batching: %d fsyncs for %d puts", r.SeglogFsyncs, r.SeglogPuts)
	}
	if r.SeglogMBps <= r.FilesMBps {
		t.Errorf("seglog %.1f MB/s not above files %.1f MB/s at %d committers",
			r.SeglogMBps, r.FilesMBps, r.Committers)
	}
}

// TestAvailabilityPartialBeatsFull is the acceptance check for the
// autonomous supervisor: both recovery modes ride out an unannounced
// single-node failure with MTTR accounted, and partial restart — which
// re-deploys only the failed member while healthy members roll back in
// place — resumes the job faster than tearing everything down. The gap is
// structural (one cold redeploy instead of three) and the injected 500µs
// per round trip makes it wide, so the comparison is robust to scheduler
// noise.
func TestAvailabilityPartialBeatsFull(t *testing.T) {
	full, err := RunAvailability(false, 1)
	if err != nil {
		t.Fatalf("full restart run: %v", err)
	}
	partial, err := RunAvailability(true, 1)
	if err != nil {
		t.Fatalf("partial restart run: %v", err)
	}
	for _, r := range []AvailabilityResult{full, partial} {
		if len(r.MTTRMillis) != 1 || r.MeanMTTRMillis <= 0 {
			t.Fatalf("%s: MTTR not accounted: %+v", r.Mode, r)
		}
		if r.UsefulWorkFraction <= 0 || r.UsefulWorkFraction >= 1 {
			t.Errorf("%s: useful-work fraction %.2f, want in (0, 1) with lost rounds re-done", r.Mode, r.UsefulWorkFraction)
		}
		if r.CheckpointsDurable < 2 {
			t.Errorf("%s: only %d durable checkpoints", r.Mode, r.CheckpointsDurable)
		}
	}
	// Structural: partial redeploys only the failed member.
	if full.RedeployedVMs != availInstances {
		t.Errorf("full restart redeployed %d VMs, want %d", full.RedeployedVMs, availInstances)
	}
	if partial.RedeployedVMs != 1 || partial.InPlaceVMs != availInstances-1 {
		t.Errorf("partial restart redeployed %d / in-place %d, want 1 / %d",
			partial.RedeployedVMs, partial.InPlaceVMs, availInstances-1)
	}
	// Time-to-resume: partial beats full for a single-node failure.
	if partial.MeanMTTRMillis >= full.MeanMTTRMillis {
		t.Errorf("partial restart MTTR %.2fms not below full restart %.2fms",
			partial.MeanMTTRMillis, full.MeanMTTRMillis)
	}
}

// TestRepairMTTRShrinksWithProviders: the repair experiment converges to a
// clean scrub at every sweep point, and storage MTTR drops as the provider
// count grows — each provider holds a smaller share of the replicas, and
// both the survey fetches and the re-replication streams spread wider.
func TestRepairMTTRShrinksWithProviders(t *testing.T) {
	results, err := RunRepair([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	two, eight := results[0], results[1]
	if two.ReplicasRestored == 0 || eight.ReplicasRestored == 0 {
		t.Fatalf("repair restored nothing: %+v %+v", two, eight)
	}
	if two.StorageMTTRMs <= eight.StorageMTTRMs {
		t.Errorf("storage MTTR did not shrink with providers: %.1fms at 2 -> %.1fms at 8",
			two.StorageMTTRMs, eight.StorageMTTRMs)
	}
	if two.UnderReplicated <= eight.UnderReplicated {
		t.Errorf("chunks lost per provider should shrink with providers: %d at 2 -> %d at 8",
			two.UnderReplicated, eight.UnderReplicated)
	}
}
