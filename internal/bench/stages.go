// Commit-stage experiment: where the asynchronous commit pipeline spends
// its time as the striping width grows. Each commit of a fixed 16 MiB dirty
// set is traced through the five instrumented stages — capture (the only
// one inside the suspend window), probe, upload, publish, durable — using
// the obs span plumbing, against 1, 4 and 8 data providers. The upload
// stage is the one that divides with the provider count; capture is local
// and stays flat, which is precisely why the async suspend window does not
// grow with the dirty set.
package bench

import (
	"context"
	"fmt"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/mirror"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// StageResult is one sweep point of the commit-stage experiment: the five
// pipeline stage durations of one traced commit.
type StageResult struct {
	Providers   int
	StageMillis []float64 // one per obs.CommitStages, in order
	TotalMillis float64
}

// RunCommitStages traces one warm commit of a 16 MiB dirty set per provider
// count and decomposes it into the five pipeline stages.
func RunCommitStages(providerCounts []int) ([]StageResult, error) {
	ctx := context.Background()
	var out []StageResult
	for _, np := range providerCounts {
		if np < 1 {
			return nil, fmt.Errorf("bench: provider count %d", np)
		}
		net := transport.WithBandwidth(transport.WithLatency(transport.NewInProc(), tpLatency), tpBandwidth)
		repo, err := blobseer.Deploy(net, 1, np)
		if err != nil {
			return nil, err
		}
		r, err := commitStagesOne(ctx, repo, np)
		repo.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// commitStagesOne runs the per-provider-count body: attach, dirty, one
// warm-up commit, then one traced commit whose spans become the result.
func commitStagesOne(ctx context.Context, repo *blobseer.Deployment, np int) (StageResult, error) {
	client := repo.Client()
	client.Parallelism = 16
	// A fresh registry per sweep point keeps each count's histograms
	// independent; the trace gives the per-stage boundaries of the one
	// measured commit.
	client.Obs = obs.NewRegistry()

	blob, err := client.CreateBlob(ctx, tpChunk)
	if err != nil {
		return StageResult{}, err
	}
	info, err := client.WriteVersion(ctx, blob, map[uint64][]byte{0: make([]byte, tpChunk)}, tpChunk*tpChunks)
	if err != nil {
		return StageResult{}, err
	}
	mod, err := mirror.Attach(ctx, client, blobseer.SnapshotRef{Blob: blob, Version: info.Version})
	if err != nil {
		return StageResult{}, err
	}
	if err := mod.Clone(ctx); err != nil {
		return StageResult{}, err
	}

	dirty := func(round int) error {
		buf := make([]byte, tpChunk)
		for i := range buf {
			buf[i] = byte(round + i)
		}
		for c := 0; c < tpChunks; c++ {
			if _, err := mod.WriteAt(buf, int64(c)*tpChunk); err != nil {
				return err
			}
		}
		return nil
	}

	// Warm-up commit: first-touch costs (ticket path, provider connections)
	// stay out of the measured trace.
	if err := dirty(0); err != nil {
		return StageResult{}, err
	}
	if _, err := mod.Commit(ctx); err != nil {
		return StageResult{}, err
	}

	if err := dirty(1); err != nil {
		return StageResult{}, err
	}
	tr := obs.NewTrace()
	pc, err := mod.CommitAsync(obs.WithTrace(ctx, tr))
	if err != nil {
		return StageResult{}, err
	}
	if _, err := pc.Wait(ctx); err != nil {
		return StageResult{}, err
	}

	r := StageResult{Providers: np}
	for _, stage := range obs.CommitStages {
		rec, ok := tr.ByName(stage)
		if !ok {
			return StageResult{}, fmt.Errorf("bench: commit trace missing stage %q", stage)
		}
		ms := float64(rec.Duration()) / float64(time.Millisecond)
		r.StageMillis = append(r.StageMillis, ms)
		r.TotalMillis += ms
	}
	return r, nil
}

// FigStages renders the commit-stage experiment: the five pipeline stage
// durations of one traced 16 MiB commit against 1, 4 and 8 providers.
func FigStages() Series {
	s := Series{
		Title:   "Commit stages: where the async pipeline spends its time (16 MiB dirty set)",
		XLabel:  "providers",
		YLabel:  "ms per stage",
		Columns: []string{"capture ms", "probe ms", "upload ms", "publish ms", "durable ms", "total ms"},
	}
	results, err := RunCommitStages([]int{1, 4, 8})
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	for _, r := range results {
		s.Rows = append(s.Rows, Row{X: float64(r.Providers), Values: append(r.StageMillis, r.TotalMillis)})
	}
	return s
}
