// Availability experiment: MTTR and useful-work fraction of the autonomous
// supervisor under an injected failure storm, comparing full restart
// (tear down and redeploy every member) against partial restart (redeploy
// only the failed members, roll healthy ones back in place). It runs the
// real stack — cloud, proxies, supervisor, failure detector — over a
// latency-injecting network, so the restart work is priced in wall time.
package bench

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"blobcr/internal/cloud"
	"blobcr/internal/supervisor"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

// Availability experiment sizing: small enough for tests and CI smoke,
// enough latency that recovery cost is dominated by deterministic round
// trips rather than scheduler noise.
const (
	availChunk      = 4096
	availImageBytes = 512 * 1024
	availInstances  = 3
	availNodes      = 6
	availLatency    = 500 * time.Microsecond
	availWorkRounds = 5 // useful rounds per epoch (between checkpoints)
	availLostRounds = 2 // post-checkpoint rounds each failure discards
)

// AvailabilityResult is one mode's outcome under the failure storm.
type AvailabilityResult struct {
	Mode     string // "full" or "partial"
	Failures int

	MTTRMillis     []float64 // per recovery, detection -> job resumed
	MeanMTTRMillis float64
	MaxMTTRMillis  float64

	RoundsCompleted    int     // distinct rounds of useful work in the final state
	RoundsExecuted     int     // rounds actually computed (lost work re-done)
	UsefulWorkFraction float64 // completed / executed

	CheckpointsDurable int
	RedeployedVMs      int
	InPlaceVMs         int
	WallMillis         float64
}

// RunAvailability drives one supervised deployment through `failures`
// unannounced single-node failures (partition + VM crash; the supervisor
// detects, plans and recovers on its own) and reports MTTR and useful-work
// accounting. partial selects the recovery mode.
func RunAvailability(partial bool, failures int) (AvailabilityResult, error) {
	ctx := context.Background()
	res := AvailabilityResult{Mode: "full", Failures: failures}
	if partial {
		res.Mode = "partial"
	}

	net := transport.WithLatency(transport.NewInProc(), availLatency)
	cl, err := cloud.New(cloud.Config{
		Nodes: availNodes, MetaProviders: 2, Replication: 3, Dedup: true, Seed: 11, Net: net,
	})
	if err != nil {
		return res, err
	}
	defer cl.Close()
	base, err := cl.UploadBaseImage(ctx, make([]byte, availImageBytes), availChunk)
	if err != nil {
		return res, err
	}
	dep, err := cl.Deploy(ctx, availInstances, base, vm.Config{BlockSize: 512, BootNoiseBytes: 8192})
	if err != nil {
		return res, err
	}

	sup := supervisor.New(cl, dep, supervisor.Config{
		HeartbeatEvery: 2 * time.Millisecond,
		PingTimeout:    20 * time.Millisecond,
		SuspectAfter:   2,
		MinInterval:    time.Hour, // the bench checkpoints at its own quiescent points
		MaxInterval:    time.Hour,
		BackoffBase:    2 * time.Millisecond,
		PartialRestart: partial,
	})
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		sup.Run(runCtx)
	}()
	defer func() { cancel(); <-supDone }()

	writeRound := func(d *cloud.Deployment, round int) error {
		payload := make([]byte, 16*1024)
		for i := range payload {
			payload[i] = byte(round + i)
		}
		for _, inst := range d.Instances {
			fs := inst.VM.FS()
			if fs == nil {
				return fmt.Errorf("bench: %s has no fs", inst.VMID)
			}
			if err := fs.WriteFile("/progress", []byte(strconv.Itoa(round))); err != nil {
				return err
			}
			if err := fs.WriteFile("/data", payload); err != nil {
				return err
			}
		}
		return nil
	}
	checkpointDurable := func(d *cloud.Deployment) error {
		id, err := sup.CheckpointNow(ctx)
		if err != nil {
			return err
		}
		deadline := time.Now().Add(30 * time.Second)
		for d.DurableWatermark() < id {
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: checkpoint %d never became durable", id)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	waitGen := func(want int) (*cloud.Deployment, error) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			d, gen := sup.Deployment()
			if gen >= want {
				return d, nil
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("bench: recovery %d never completed", want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	start := time.Now()
	round, executed := 0, 0
	d := dep
	for f := 0; f < failures; f++ {
		for i := 0; i < availWorkRounds; i++ {
			round++
			executed++
			if err := writeRound(d, round); err != nil {
				return res, err
			}
		}
		if err := checkpointDurable(d); err != nil {
			return res, err
		}
		// Work the failure will discard.
		for i := 0; i < availLostRounds; i++ {
			round++
			executed++
			if err := writeRound(d, round); err != nil {
				return res, err
			}
		}
		// Unannounced single-node failure: partition + VM crash. Detection
		// and recovery are entirely the supervisor's.
		victim := d.Instances[f%len(d.Instances)].Node
		net.Partition(victim.ProxyAddr)
		net.Partition(victim.DataAddr)
		for _, inst := range d.Instances {
			if inst.Node == victim {
				inst.VM.Kill()
			}
		}
		d, err = waitGen(f + 1)
		if err != nil {
			return res, err
		}
		round -= availLostRounds // rolled back to the checkpoint
	}
	// Redo the lost work and finish.
	for i := 0; i < availLostRounds; i++ {
		round++
		executed++
		if err := writeRound(d, round); err != nil {
			return res, err
		}
	}
	if err := checkpointDurable(d); err != nil {
		return res, err
	}
	res.WallMillis = float64(time.Since(start).Microseconds()) / 1000

	res.RoundsCompleted = round
	res.RoundsExecuted = executed
	if executed > 0 {
		res.UsefulWorkFraction = float64(round) / float64(executed)
	}
	for _, e := range sup.Events().Since(0) {
		if e.Type == supervisor.EventRestartDone {
			res.MTTRMillis = append(res.MTTRMillis, float64(e.MTTR.Microseconds())/1000)
		}
	}
	for _, ms := range res.MTTRMillis {
		res.MeanMTTRMillis += ms
		if ms > res.MaxMTTRMillis {
			res.MaxMTTRMillis = ms
		}
	}
	if len(res.MTTRMillis) > 0 {
		res.MeanMTTRMillis /= float64(len(res.MTTRMillis))
	}
	m := sup.Metrics()
	res.CheckpointsDurable = m.CheckpointsDurable
	res.RedeployedVMs = m.RedeployedVMs
	res.InPlaceVMs = m.InPlaceVMs
	if m.Recoveries != failures {
		return res, fmt.Errorf("bench: %d recoveries for %d failures", m.Recoveries, failures)
	}
	return res, nil
}

// FigAvailability renders the availability experiment: the supervisor rides
// out a two-failure storm in both recovery modes. Partial restart beats full
// restart on MTTR for single-node failures because only the failed fraction
// of the deployment is re-deployed; useful-work fraction reflects the rounds
// re-computed after each rollback.
func FigAvailability() Series {
	s := Series{
		Title:   "Availability: autonomous recovery under a failure storm (full vs partial restart)",
		XLabel:  "mode(0=full,1=partial)",
		YLabel:  "ms / % / count",
		Columns: []string{"mean MTTR ms", "max MTTR ms", "useful work %", "redeployed VMs", "durable ckpts"},
	}
	for i, partial := range []bool{false, true} {
		r, err := RunAvailability(partial, 2)
		if err != nil {
			s.Title += fmt.Sprintf(" — FAILED (%s): %v", r.Mode, err)
			return s
		}
		s.Rows = append(s.Rows, Row{X: float64(i), Values: []float64{
			r.MeanMTTRMillis,
			r.MaxMTTRMillis,
			100 * r.UsefulWorkFraction,
			float64(r.RedeployedVMs),
			float64(r.CheckpointsDurable),
		}})
	}
	return s
}
