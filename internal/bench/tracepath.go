// Critical-path experiment: assemble one commit's cross-process trace and
// explain its wall time. A 16 MiB dirty set is committed against a traced
// deployment (one obs registry per service, the in-process analogue of one
// process per service), the trace's spans are collected from every registry
// the way blobcr-ctl trace collects them over the TRACE wire verb, and the
// assembled tree's critical path is walked backward from the root's end.
// The experiment's claim — and the regression this bench asserts — is that
// the instrumentation explains at least 90% of the commit wall time at 8
// providers: the critical path runs through named spans, not through
// unattributed gaps.
package bench

import (
	"context"
	"fmt"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/mirror"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// TracePathResult is one sweep point of the critical-path experiment.
type TracePathResult struct {
	Providers  int
	WallMillis float64 // root span duration: CommitAsync to durable
	PathMillis float64 // critical-path time attributed to named child spans
	Coverage   float64 // PathMillis / WallMillis
	Spans      int     // nodes in the assembled tree
	Processes  int     // per-process span sets that contributed
}

// tracePathMinCoverage is the acceptance floor the 8-provider point must
// clear: the fraction of commit wall time the assembled trace's critical
// path attributes to instrumented spans.
const tracePathMinCoverage = 0.90

// RunTracePath commits a 16 MiB dirty set per provider count on a traced
// deployment, assembles the cross-process trace and measures how much of the
// wall time the critical path attributes to named spans.
func RunTracePath(providerCounts []int) ([]TracePathResult, error) {
	ctx := context.Background()
	var out []TracePathResult
	for _, np := range providerCounts {
		if np < 1 {
			return nil, fmt.Errorf("bench: provider count %d", np)
		}
		net := transport.WithBandwidth(transport.WithLatency(transport.NewInProc(), tpLatency), tpBandwidth)
		repo, err := blobseer.DeployTraced(net, 1, np)
		if err != nil {
			return nil, err
		}
		r, err := tracePathOne(ctx, repo, np)
		repo.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// tracePathOne runs the per-provider-count body: attach, warm up, then one
// traced commit whose assembled tree becomes the result.
func tracePathOne(ctx context.Context, repo *blobseer.Deployment, np int) (TracePathResult, error) {
	client := repo.Client()
	client.Parallelism = 16
	client.Obs = obs.NewRegistry()

	blob, err := client.CreateBlob(ctx, tpChunk)
	if err != nil {
		return TracePathResult{}, err
	}
	info, err := client.WriteVersion(ctx, blob, map[uint64][]byte{0: make([]byte, tpChunk)}, tpChunk*tpChunks)
	if err != nil {
		return TracePathResult{}, err
	}
	mod, err := mirror.Attach(ctx, client, blobseer.SnapshotRef{Blob: blob, Version: info.Version})
	if err != nil {
		return TracePathResult{}, err
	}
	if err := mod.Clone(ctx); err != nil {
		return TracePathResult{}, err
	}

	dirty := func(round int) error {
		buf := make([]byte, tpChunk)
		for i := range buf {
			buf[i] = byte(round + i)
		}
		for c := 0; c < tpChunks; c++ {
			if _, err := mod.WriteAt(buf, int64(c)*tpChunk); err != nil {
				return err
			}
		}
		return nil
	}

	// Warm-up commit: first-touch costs (ticket path, provider connections)
	// stay out of the measured trace.
	if err := dirty(0); err != nil {
		return TracePathResult{}, err
	}
	if _, err := mod.Commit(ctx); err != nil {
		return TracePathResult{}, err
	}
	if err := dirty(1); err != nil {
		return TracePathResult{}, err
	}

	// One traced commit under a root span: the root's window is the measured
	// wall time, and every stage, RPC and remote handler span of the commit
	// nests somewhere below it.
	tctx := obs.WithRegistry(ctx, client.Obs)
	tctx, trace := obs.BeginTrace(tctx)
	tctx, root := obs.StartSpan(tctx, "commit")
	pc, err := mod.CommitAsync(tctx)
	if err != nil {
		return TracePathResult{}, err
	}
	if _, err := pc.Wait(ctx); err != nil {
		return TracePathResult{}, err
	}
	root.End()

	at := AssembleDeploymentTrace(client.Obs, repo, trace)
	if at.Root == nil {
		return TracePathResult{}, fmt.Errorf("bench: trace %x assembled no root span", trace)
	}
	segs := obs.CriticalPath(at.Root)
	wall := at.Root.End.Sub(at.Root.Start)
	attributed := obs.PathAttributed(at.Root, segs)
	r := TracePathResult{
		Providers:  np,
		WallMillis: float64(wall) / float64(time.Millisecond),
		PathMillis: float64(attributed) / float64(time.Millisecond),
		Spans:      at.Spans,
		Processes:  len(repo.Registries) + 1,
	}
	if wall > 0 {
		r.Coverage = float64(attributed) / float64(wall)
	}
	return r, nil
}

// AssembleDeploymentTrace collects one trace's spans from the client's
// registry and every service registry of a traced deployment, labels each
// set by the service's role, and assembles the cross-process tree — the
// in-process equivalent of querying each endpoint's TRACE verb.
func AssembleDeploymentTrace(clientReg *obs.Registry, repo *blobseer.Deployment, trace uint64) *obs.AssembledTrace {
	sets := map[string][]obs.SpanRecord{"client": clientReg.TraceSpans(trace)}
	label := make(map[string]string)
	label[repo.VMAddr] = "vmanager"
	label[repo.PMAddr] = "pmanager"
	for i, a := range repo.MetaAddrs {
		label[a] = fmt.Sprintf("meta-%d", i)
	}
	for i, a := range repo.DataAddrs {
		label[a] = fmt.Sprintf("data-%d", i)
	}
	for addr, reg := range repo.Registries {
		name := label[addr]
		if name == "" {
			name = addr
		}
		sets[name] = reg.TraceSpans(trace)
	}
	return obs.AssembleTrace(trace, sets)
}

// FigTracePath renders the critical-path experiment: one traced 16 MiB
// commit against 1, 4 and 8 providers, with the coverage assertion at 8.
func FigTracePath() Series {
	s := Series{
		Title:   "Critical path: cross-process trace of one 16 MiB commit",
		XLabel:  "providers",
		YLabel:  "ms",
		Columns: []string{"wall ms", "critical-path ms", "coverage", "spans", "processes"},
		Notes: []string{
			"coverage = critical-path time attributed to named spans / commit wall time",
			fmt.Sprintf("acceptance: coverage >= %.2f at 8 providers", tracePathMinCoverage),
		},
	}
	results, err := RunTracePath([]int{1, 4, 8})
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	for _, r := range results {
		s.Rows = append(s.Rows, Row{X: float64(r.Providers),
			Values: []float64{r.WallMillis, r.PathMillis, r.Coverage, float64(r.Spans), float64(r.Processes)}})
		if r.Providers == 8 && r.Coverage < tracePathMinCoverage {
			s.Title += fmt.Sprintf(" — FAILED: coverage %.3f < %.2f at %d providers",
				r.Coverage, tracePathMinCoverage, r.Providers)
		}
	}
	return s
}
