// Downtime experiment: effective VM downtime of the synchronous commit
// (suspend-clone-commit-resume, the pre-redesign CHECKPOINT verb) versus
// the asynchronous pipeline (suspend-clone-capture-resume with the upload
// in the background). It runs the real stack — blobseer deployment, mirror
// module, vm instance, checkpointing proxy — over a latency- and
// bandwidth-injecting in-process network, and reports both wall time and
// the number of network round trips that land inside the suspend window.
// The async column stays flat as the dirty set grows because no chunk
// upload happens under suspend; the sync column grows with the dirty bytes
// that must cross the bandwidth-limited pipes under suspend. The round-trip
// counts show the batched wire protocol at work: since the parallel I/O
// engine groups a commit's chunks into per-provider frames, even the sync
// column's round trips stay constant as the dirty set grows — only its
// transfer time scales.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/mirror"
	"blobcr/internal/obs"
	"blobcr/internal/proxy"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

// DowntimeResult is one sweep point of the downtime experiment.
type DowntimeResult struct {
	DirtyMB       float64
	SyncMillis    float64
	AsyncMillis   float64
	SyncNetCalls  uint64 // network round trips inside the suspend window
	AsyncNetCalls uint64
}

// downtimeConfig sizes the experiment; small enough to run in tests, large
// enough that the sync suspend window is dominated by chunk uploads.
const (
	downtimeChunk     = 64 * 1024
	downtimeDiskMB    = 32
	downtimeLatency   = 50 * time.Microsecond
	downtimeBandwidth = 64 << 20 // bytes/s per provider pipe
)

// RunDowntime measures effective downtime for the given dirty-set sizes
// (in chunks). Both modes ride the same deployment: a sync instance driven
// through mirror's blocking Commit, and an async instance driven through
// the proxy's CHECKPOINT verb, which resumes the VM before any upload.
func RunDowntime(dirtyChunks []int) ([]DowntimeResult, error) {
	ctx := context.Background()
	lat := transport.WithLatency(transport.NewInProc(), downtimeLatency)
	net := transport.WithBandwidth(lat, downtimeBandwidth)
	repo, err := blobseer.Deploy(net, 1, 4)
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	client := repo.Client()
	// One private registry for the whole run: the proxy's METRICS verb
	// scrapes it at the end, asserting the commit pipeline actually emitted
	// its stage telemetry (the CI smoke rides this).
	client.Obs = obs.NewRegistry()

	// Base image: empty disk of downtimeDiskMB.
	base, err := client.CreateBlob(ctx, downtimeChunk)
	if err != nil {
		return nil, err
	}
	info, err := client.WriteVersion(ctx, base, map[uint64][]byte{0: make([]byte, downtimeChunk)}, downtimeDiskMB<<20)
	if err != nil {
		return nil, err
	}
	baseRef := blobseer.SnapshotRef{Blob: base, Version: info.Version}

	newInstance := func(id string) (*vm.Instance, *mirror.Module, error) {
		mod, err := mirror.Attach(ctx, client, baseRef)
		if err != nil {
			return nil, nil, err
		}
		inst := vm.New(id, mod, vm.Config{BlockSize: 512})
		// The downtime experiment writes the disk directly; booting (and its
		// file-system noise) is not needed and would only blur the numbers.
		return inst, mod, nil
	}

	syncInst, syncMod, err := newInstance("bench-sync")
	if err != nil {
		return nil, err
	}
	asyncInst, asyncMod, err := newInstance("bench-async")
	if err != nil {
		return nil, err
	}
	if err := syncInst.Boot(); err != nil {
		return nil, err
	}
	if err := asyncInst.Boot(); err != nil {
		return nil, err
	}

	p := proxy.New()
	p.Obs = client.Obs
	srv, err := p.Serve(net, "")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	p.Register("bench-async", "tok", asyncInst, asyncMod)
	asyncClient := &proxy.Client{Net: net, Addr: srv.Addr(), VMID: "bench-async", Token: "tok"}

	// Warm up both checkpoint images so Clone (a constant cost paid once per
	// VM lifetime) stays out of the measured windows.
	if err := syncMod.Clone(ctx); err != nil {
		return nil, err
	}
	if _, err := syncMod.Commit(ctx); err != nil {
		return nil, err
	}
	if _, err := asyncClient.RequestCheckpoint(ctx); err != nil {
		return nil, err
	}

	dirty := func(mod *mirror.Module, chunks int) error {
		buf := make([]byte, downtimeChunk)
		for i := range buf {
			buf[i] = byte(chunks + i)
		}
		for c := 0; c < chunks; c++ {
			if _, err := mod.WriteAt(buf, int64(c)*downtimeChunk); err != nil {
				return err
			}
		}
		return nil
	}

	var out []DowntimeResult
	for _, chunks := range dirtyChunks {
		r := DowntimeResult{DirtyMB: float64(chunks) * downtimeChunk / (1 << 20)}

		// Synchronous: the whole commit sits inside the suspend window.
		if err := dirty(syncMod, chunks); err != nil {
			return nil, err
		}
		calls0 := lat.Calls()
		t0 := time.Now()
		if err := syncInst.Suspend(); err != nil {
			return nil, err
		}
		_, commitErr := syncMod.Commit(ctx)
		if err := syncInst.Resume(); err != nil {
			return nil, err
		}
		if commitErr != nil {
			return nil, commitErr
		}
		r.SyncMillis = float64(time.Since(t0).Microseconds()) / 1000
		r.SyncNetCalls = lat.Calls() - calls0

		// Asynchronous: the proxy resumes the VM after the local capture;
		// the upload happens outside the measured window.
		if err := dirty(asyncMod, chunks); err != nil {
			return nil, err
		}
		// The async window contains exactly one round trip by construction —
		// the CHECKPOINT exchange itself. The background upload starts the
		// moment the capture is enqueued, so the shared counter may also see
		// its first call before this goroutine samples it: the count is
		// bounded by a small constant, never by the dirty-set size.
		calls0 = lat.Calls()
		t0 = time.Now()
		handle, err := asyncClient.RequestCheckpointAsync(ctx)
		if err != nil {
			return nil, err
		}
		r.AsyncMillis = float64(time.Since(t0).Microseconds()) / 1000
		r.AsyncNetCalls = lat.Calls() - calls0
		// Drain the pipeline before the next round so rounds don't overlap.
		if _, err := asyncClient.WaitCheckpoint(ctx, handle); err != nil {
			return nil, err
		}

		out = append(out, r)
	}
	// Scrape the proxy over the wire like an operator would and assert the
	// pipeline's stage telemetry is really there: every one of the five
	// commit stages must have a non-empty span histogram, and the suspend
	// window must have been recorded. A silent instrumentation regression
	// fails the experiment, not just a dashboard.
	if err := verifyStageTelemetry(ctx, net, srv.Addr()); err != nil {
		return nil, err
	}
	return out, nil
}

// verifyStageTelemetry calls METRICS on a proxy and checks the commit
// pipeline's stage histograms and the suspend-window series are non-empty.
func verifyStageTelemetry(ctx context.Context, net transport.Network, addr string) error {
	resp, err := net.Call(ctx, addr, []byte("METRICS"))
	if err != nil {
		return fmt.Errorf("bench: scrape METRICS: %w", err)
	}
	header, body, _ := strings.Cut(string(resp), "\n")
	if header != "OK "+obs.ExpositionVersion {
		return fmt.Errorf("bench: METRICS answered %q, want OK %s", header, obs.ExpositionVersion)
	}
	points, err := obs.ParseProm(body)
	if err != nil {
		return fmt.Errorf("bench: parse METRICS exposition: %w", err)
	}
	for _, stage := range obs.CommitStages {
		p := obs.Find(points, "span_ns", obs.L("span", stage))
		if p == nil || p.Count == 0 {
			return fmt.Errorf("bench: commit pipeline emitted no %q spans — stage telemetry is broken", stage)
		}
	}
	if p := obs.Find(points, "proxy_suspend_ns"); p == nil || p.Count == 0 {
		return fmt.Errorf("bench: proxy recorded no suspend windows")
	}
	return nil
}

// FigDowntime renders the downtime experiment: effective downtime (and
// suspend-window round trips) of sync vs async commit across dirty-set
// sizes. Async downtime is flat — O(local capture) — while sync grows with
// the dirty set.
func FigDowntime() Series {
	s := Series{
		Title:   "Downtime: synchronous vs asynchronous commit (effective VM downtime)",
		XLabel:  "dirty MB",
		YLabel:  "ms (calls = net round trips under suspend)",
		Columns: []string{"sync ms", "async ms", "sync calls", "async calls"},
	}
	results, err := RunDowntime([]int{16, 64, 128, 256})
	if err != nil {
		s.Title += fmt.Sprintf(" — FAILED: %v", err)
		return s
	}
	for _, r := range results {
		s.Rows = append(s.Rows, Row{X: r.DirtyMB, Values: []float64{
			r.SyncMillis,
			r.AsyncMillis,
			float64(r.SyncNetCalls),
			float64(r.AsyncNetCalls),
		}})
	}
	return s
}
