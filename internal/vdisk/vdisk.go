// Package vdisk defines the virtual block device abstraction shared by the
// hypervisor model, the guest file system, the mirroring module and the
// image formats, plus simple in-memory and instrumented implementations.
package vdisk

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Device is a random-access block device as the hypervisor sees it: the
// exact interface KVM has against the raw file exposed by the paper's
// FUSE-based mirroring module.
type Device interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the device size in bytes.
	Size() int64
	// Flush forces buffered state down (the guest's sync(2) path).
	Flush() error
}

// ErrOutOfRange is returned for accesses beyond the device size.
var ErrOutOfRange = errors.New("vdisk: access out of range")

// Mem is an in-memory fixed-size Device.
type Mem struct {
	mu   sync.RWMutex
	data []byte
}

// NewMem returns a zero-filled in-memory device of the given size.
func NewMem(size int64) *Mem {
	return &Mem{data: make([]byte, size)}
}

// ReadAt implements io.ReaderAt.
func (d *Mem) ReadAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if off < 0 || off > int64(len(d.data)) {
		return 0, fmt.Errorf("%w: read at %d, size %d", ErrOutOfRange, off, len(d.data))
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt.
func (d *Mem) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		return 0, fmt.Errorf("%w: write [%d,%d), size %d", ErrOutOfRange, off, off+int64(len(p)), len(d.data))
	}
	copy(d.data[off:], p)
	return len(p), nil
}

// Size implements Device.
func (d *Mem) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data))
}

// Flush implements Device (no-op for memory).
func (d *Mem) Flush() error { return nil }

// Buffer is a growable in-memory byte store implementing the file-like
// Backend interface used by image formats (an in-memory "qcow2 file").
type Buffer struct {
	mu   sync.RWMutex
	data []byte
}

// NewBuffer returns an empty Buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// ReadAt implements io.ReaderAt. Reads beyond the end return io.EOF.
func (b *Buffer) ReadAt(p []byte, off int64) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if off < 0 {
		return 0, ErrOutOfRange
	}
	if off >= int64(len(b.data)) {
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the buffer as needed.
func (b *Buffer) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off < 0 {
		return 0, ErrOutOfRange
	}
	end := off + int64(len(p))
	if end > int64(len(b.data)) {
		grown := make([]byte, end)
		copy(grown, b.data)
		b.data = grown
	}
	copy(b.data[off:], p)
	return len(p), nil
}

// Truncate resizes the buffer.
func (b *Buffer) Truncate(size int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if size < 0 {
		return ErrOutOfRange
	}
	if size <= int64(len(b.data)) {
		b.data = b.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, b.data)
	b.data = grown
	return nil
}

// Size returns the buffer length.
func (b *Buffer) Size() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int64(len(b.data))
}

// Sync is a no-op for memory.
func (b *Buffer) Sync() error { return nil }

// Stats counts I/O through a wrapped device; the experiments use it to
// measure how many bytes each layer actually moves.
type Stats struct {
	inner                 Device
	readOps, writeOps     atomic.Int64
	readBytes, writeBytes atomic.Int64
	flushes               atomic.Int64
}

// NewStats wraps inner with I/O counters.
func NewStats(inner Device) *Stats { return &Stats{inner: inner} }

// ReadAt implements Device.
func (s *Stats) ReadAt(p []byte, off int64) (int, error) {
	n, err := s.inner.ReadAt(p, off)
	s.readOps.Add(1)
	s.readBytes.Add(int64(n))
	return n, err
}

// WriteAt implements Device.
func (s *Stats) WriteAt(p []byte, off int64) (int, error) {
	n, err := s.inner.WriteAt(p, off)
	s.writeOps.Add(1)
	s.writeBytes.Add(int64(n))
	return n, err
}

// Size implements Device.
func (s *Stats) Size() int64 { return s.inner.Size() }

// Flush implements Device.
func (s *Stats) Flush() error {
	s.flushes.Add(1)
	return s.inner.Flush()
}

// Counters returns (readOps, readBytes, writeOps, writeBytes, flushes).
func (s *Stats) Counters() (rOps, rBytes, wOps, wBytes, flushes int64) {
	return s.readOps.Load(), s.readBytes.Load(), s.writeOps.Load(), s.writeBytes.Load(), s.flushes.Load()
}

// ReadFull reads exactly len(p) bytes at off from d.
func ReadFull(d io.ReaderAt, p []byte, off int64) error {
	n, err := d.ReadAt(p, off)
	if n == len(p) {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

var _ Device = (*Mem)(nil)
var _ Device = (*Stats)(nil)
