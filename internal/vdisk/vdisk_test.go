package vdisk

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestMemReadWrite(t *testing.T) {
	d := NewMem(1024)
	if d.Size() != 1024 {
		t.Fatalf("Size = %d", d.Size())
	}
	data := []byte("hello device")
	if _, err := d.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
	if err := d.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
}

func TestMemBounds(t *testing.T) {
	d := NewMem(100)
	if _, err := d.WriteAt([]byte{1}, 100); err == nil {
		t.Error("write past end accepted")
	}
	if _, err := d.WriteAt([]byte{1}, -1); err == nil {
		t.Error("negative write accepted")
	}
	if _, err := d.ReadAt(make([]byte, 1), 101); err == nil {
		t.Error("read past end accepted")
	}
	// Short read at the boundary returns io.EOF.
	n, err := d.ReadAt(make([]byte, 10), 95)
	if n != 5 || err != io.EOF {
		t.Errorf("boundary read = (%d, %v), want (5, EOF)", n, err)
	}
}

func TestBufferGrowsOnWrite(t *testing.T) {
	b := NewBuffer()
	if b.Size() != 0 {
		t.Fatal("new buffer not empty")
	}
	if _, err := b.WriteAt([]byte{7}, 1000); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 1001 {
		t.Errorf("Size = %d, want 1001", b.Size())
	}
	got := make([]byte, 1)
	if _, err := b.ReadAt(got, 1000); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Error("content lost")
	}
	// Gap reads as zero.
	if _, err := b.ReadAt(got, 500); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Error("gap not zero")
	}
}

func TestBufferTruncate(t *testing.T) {
	b := NewBuffer()
	b.WriteAt(bytes.Repeat([]byte{9}, 100), 0)
	if err := b.Truncate(50); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 50 {
		t.Errorf("Size = %d", b.Size())
	}
	if err := b.Truncate(80); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if _, err := b.ReadAt(got, 70); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Error("re-grown region not zeroed")
	}
	if err := b.Truncate(-1); err == nil {
		t.Error("negative truncate accepted")
	}
}

func TestBufferReadPastEnd(t *testing.T) {
	b := NewBuffer()
	b.WriteAt([]byte{1, 2, 3}, 0)
	if _, err := b.ReadAt(make([]byte, 1), 3); err != io.EOF {
		t.Errorf("read at end = %v, want EOF", err)
	}
	n, err := b.ReadAt(make([]byte, 10), 1)
	if n != 2 || err != io.EOF {
		t.Errorf("short read = (%d, %v)", n, err)
	}
}

func TestStatsCounters(t *testing.T) {
	d := NewStats(NewMem(1024))
	d.WriteAt(make([]byte, 100), 0)
	d.WriteAt(make([]byte, 50), 100)
	d.ReadAt(make([]byte, 30), 0)
	d.Flush()
	rOps, rBytes, wOps, wBytes, flushes := d.Counters()
	if rOps != 1 || rBytes != 30 || wOps != 2 || wBytes != 150 || flushes != 1 {
		t.Errorf("counters = %d %d %d %d %d", rOps, rBytes, wOps, wBytes, flushes)
	}
	if d.Size() != 1024 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestReadFull(t *testing.T) {
	d := NewMem(100)
	d.WriteAt(bytes.Repeat([]byte{5}, 100), 0)
	buf := make([]byte, 50)
	if err := ReadFull(d, buf, 25); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 {
		t.Error("content wrong")
	}
	if err := ReadFull(d, make([]byte, 50), 80); err == nil {
		t.Error("short ReadFull did not error")
	}
}

func TestQuickBufferMatchesMap(t *testing.T) {
	// Property: Buffer behaves like a sparse byte map.
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		b := NewBuffer()
		shadow := make(map[int64]byte)
		var max int64
		for _, o := range ops {
			if len(o.Data) == 0 {
				continue
			}
			if _, err := b.WriteAt(o.Data, int64(o.Off)); err != nil {
				return false
			}
			for i, v := range o.Data {
				shadow[int64(o.Off)+int64(i)] = v
			}
			if end := int64(o.Off) + int64(len(o.Data)); end > max {
				max = end
			}
		}
		if b.Size() != max {
			return false
		}
		if max == 0 {
			return true
		}
		got := make([]byte, max)
		if err := ReadFull(b, got, 0); err != nil {
			return false
		}
		for i := int64(0); i < max; i++ {
			if got[i] != shadow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
