// Package wire provides compact binary encoding helpers shared by the
// network transports and the on-disk image formats.
//
// The encoding is deliberately simple: little-endian fixed-width integers,
// unsigned varints for lengths, and length-prefixed byte strings. A Buffer
// accumulates an encoded message; a Reader consumes one. Both sides keep an
// error latch so call sites can chain puts/gets and check the error once,
// which keeps protocol code readable.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated is returned when a Reader runs out of bytes mid-field.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge is returned when a length prefix exceeds the configured limit.
var ErrTooLarge = errors.New("wire: field exceeds size limit")

// MaxFieldSize bounds a single length-prefixed field. Checkpoint commits move
// chunk payloads of at most a few MB each; 1 GiB is far above any legitimate
// field and small enough to reject corrupt prefixes before allocating.
const MaxFieldSize = 1 << 30

// Buffer accumulates an encoded message.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{b: make([]byte, 0, capacity)}
}

// Bytes returns the encoded message. The slice aliases the internal buffer.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the number of encoded bytes.
func (w *Buffer) Len() int { return len(w.b) }

// Reset truncates the buffer for reuse.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// PutU8 appends a single byte.
func (w *Buffer) PutU8(v uint8) { w.b = append(w.b, v) }

// PutU32 appends a little-endian uint32.
func (w *Buffer) PutU32(v uint32) {
	w.b = binary.LittleEndian.AppendUint32(w.b, v)
}

// PutU64 appends a little-endian uint64.
func (w *Buffer) PutU64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}

// PutI64 appends a little-endian int64.
func (w *Buffer) PutI64(v int64) { w.PutU64(uint64(v)) }

// PutUvarint appends an unsigned varint.
func (w *Buffer) PutUvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

// PutBool appends a boolean as one byte.
func (w *Buffer) PutBool(v bool) {
	if v {
		w.PutU8(1)
	} else {
		w.PutU8(0)
	}
}

// PutF64 appends a float64 as its IEEE-754 bits.
func (w *Buffer) PutF64(v float64) { w.PutU64(math.Float64bits(v)) }

// PutBytes appends a varint length prefix followed by the bytes.
func (w *Buffer) PutBytes(p []byte) {
	w.PutUvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// PutString appends a varint length prefix followed by the string bytes.
func (w *Buffer) PutString(s string) {
	w.PutUvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// Reader consumes an encoded message. Methods record the first decode error
// and return zero values afterwards; check Err once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// U8 decodes a single byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 decodes a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Bool decodes a one-byte boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// F64 decodes an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes decodes a length-prefixed byte string. The returned slice aliases
// the Reader's backing array.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxFieldSize {
		r.fail(ErrTooLarge)
		return nil
	}
	return r.take(int(n))
}

// BytesCopy decodes a length-prefixed byte string into a fresh slice.
func (r *Reader) BytesCopy() []byte {
	p := r.Bytes()
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	p := r.Bytes()
	if p == nil {
		return ""
	}
	return string(p)
}

// Frame I/O: a frame is a 4-byte little-endian length followed by that many
// payload bytes. Used by the TCP transport.

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFieldSize {
		return ErrTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFieldSize {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read frame payload: %w", err)
	}
	return payload, nil
}
