package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewBuffer(64)
	w.PutU8(0xAB)
	w.PutU32(0xDEADBEEF)
	w.PutU64(1<<63 | 12345)
	w.PutI64(-42)
	w.PutUvarint(300)
	w.PutBool(true)
	w.PutBool(false)
	w.PutF64(math.Pi)

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x, want 0xAB", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x, want 0xDEADBEEF", got)
	}
	if got := r.U64(); got != 1<<63|12345 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d, want -42", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d, want 300", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool #1 = false, want true")
	}
	if got := r.Bool(); got {
		t.Error("Bool #2 = true, want false")
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v, want Pi", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestRoundTripBytesAndString(t *testing.T) {
	w := NewBuffer(0)
	w.PutBytes([]byte("hello"))
	w.PutString("world")
	w.PutBytes(nil)
	w.PutString("")

	r := NewReader(w.Bytes())
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestBytesCopyDoesNotAlias(t *testing.T) {
	w := NewBuffer(0)
	w.PutBytes([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	got := r.BytesCopy()
	w.Bytes()[1] = 99 // mutate the backing array
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("BytesCopy aliased the source: %v", got)
	}
}

func TestTruncatedReads(t *testing.T) {
	w := NewBuffer(0)
	w.PutU64(7)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U64()
		if r.Err() != ErrTruncated {
			t.Errorf("cut=%d: Err = %v, want ErrTruncated", cut, r.Err())
		}
	}
}

func TestErrorLatchSticks(t *testing.T) {
	r := NewReader([]byte{1})
	r.U64() // fails
	if r.Err() != ErrTruncated {
		t.Fatalf("Err = %v", r.Err())
	}
	// Subsequent reads must return zero values and keep the first error.
	if got := r.U8(); got != 0 {
		t.Errorf("U8 after error = %d, want 0", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String after error = %q, want empty", got)
	}
	if r.Err() != ErrTruncated {
		t.Errorf("Err changed to %v", r.Err())
	}
}

func TestOversizedFieldRejected(t *testing.T) {
	w := NewBuffer(0)
	w.PutUvarint(MaxFieldSize + 1)
	r := NewReader(w.Bytes())
	if got := r.Bytes(); got != nil {
		t.Errorf("Bytes = %v, want nil", got)
	}
	if r.Err() != ErrTooLarge {
		t.Errorf("Err = %v, want ErrTooLarge", r.Err())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("a"), {}, []byte("longer payload \x00 with zeros")}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame #%d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("ReadFrame at end = %v, want io.EOF", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("ReadFrame on truncated payload succeeded, want error")
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		w := NewBuffer(0)
		w.PutUvarint(v)
		r := NewReader(w.Bytes())
		return r.Uvarint() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(a, b []byte, s string) bool {
		w := NewBuffer(0)
		w.PutBytes(a)
		w.PutString(s)
		w.PutBytes(b)
		r := NewReader(w.Bytes())
		ga := r.BytesCopy()
		gs := r.String()
		gb := r.BytesCopy()
		return bytes.Equal(ga, a) && gs == s && bytes.Equal(gb, b) && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMixedSequence(t *testing.T) {
	f := func(u8 uint8, u32 uint32, u64 uint64, i64 int64, bl bool, fv float64, bs []byte) bool {
		if math.IsNaN(fv) {
			fv = 0 // NaN != NaN; encoding is still exact but comparison is not
		}
		w := NewBuffer(0)
		w.PutU8(u8)
		w.PutU32(u32)
		w.PutU64(u64)
		w.PutI64(i64)
		w.PutBool(bl)
		w.PutF64(fv)
		w.PutBytes(bs)
		r := NewReader(w.Bytes())
		ok := r.U8() == u8 && r.U32() == u32 && r.U64() == u64 &&
			r.I64() == i64 && r.Bool() == bl && r.F64() == fv &&
			bytes.Equal(r.BytesCopy(), bs)
		return ok && r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferReset(t *testing.T) {
	w := NewBuffer(8)
	w.PutU64(1)
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("Len after Reset = %d", w.Len())
	}
	w.PutU8(5)
	r := NewReader(w.Bytes())
	if got := r.U8(); got != 5 {
		t.Errorf("after reset U8 = %d", got)
	}
}
