//go:build !linux

package seglog

import "os"

// datasync falls back to a full fsync where fdatasync(2) is unavailable.
func datasync(f *os.File) error { return f.Sync() }
