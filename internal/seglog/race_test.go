package seglog

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"blobcr/internal/chunkstore"
)

// TestRaceCompactionVsDelete hammers the resurrection race: deletes land
// while compaction is relocating the very segments those keys live in. After
// the dust settles, a deleted key must stay deleted — in memory and across a
// reopen — and a kept key must keep its bytes.
func TestRaceCompactionVsDelete(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 4 * 1024, DisableAutoCompact: true, NoCompress: true})
	const n = 64
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), randBytes(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	// Make every sealed segment a victim up front.
	for i := 0; i < n; i += 2 {
		if err := s.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for round := 0; round < 4; round++ {
			s.CompactNow() //nolint:errcheck
		}
	}()
	deleted := make([]bool, n)
	go func() {
		defer wg.Done()
		for i := 1; i < n; i += 4 {
			if err := s.Delete(key(i)); err == nil {
				deleted[i] = true
			}
		}
	}()
	wg.Wait()
	if _, err := s.CompactNow(); err != nil {
		t.Fatalf("final compaction: %v", err)
	}
	check := func(st *Store, phase string) {
		for i := 0; i < n; i++ {
			dead := i%2 == 0 || deleted[i]
			got, err := st.Get(key(i))
			if dead {
				if !errors.Is(err, chunkstore.ErrNotFound) {
					t.Fatalf("%s: deleted chunk %d resurrected: %v", phase, i, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(got, randBytes(i, 512)) {
				t.Fatalf("%s: live chunk %d lost or corrupted: %v", phase, i, err)
			}
		}
	}
	check(s, "live")
	s.Close()
	r := openTest(t, dir, Options{DisableAutoCompact: true, NoCompress: true})
	defer r.Close()
	check(r, "reopen")
}

// TestRaceMixedWorkload runs puts, gets, deletes, re-puts, Keys sweeps,
// stats reads and compactions concurrently, then verifies the final state
// agrees with a reopen. Run under -race this is the engine's concurrency
// proof.
func TestRaceMixedWorkload(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 16 * 1024})
	const (
		workers = 8
		perW    = 24
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := chunkstore.Key{Blob: uint64(w), ID: uint64(i)}
				body := randBytes(w*1000+i, 700)
				if err := s.Put(k, body); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, err := s.Get(k); err != nil || !bytes.Equal(got, body) {
					t.Errorf("get-after-put %v: %v", k, err)
					return
				}
				if i%3 == 0 {
					if err := s.Delete(k); err != nil {
						t.Errorf("delete %v: %v", k, err)
						return
					}
					// Deleted keys are re-puttable with new content.
					if err := s.Put(k, randBytes(w*1000+i+7, 300)); err != nil {
						t.Errorf("re-put %v: %v", k, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.Keys()
			s.EngineStats()
			s.CompactNow() //nolint:errcheck
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if _, err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}

	snapshot := make(map[chunkstore.Key][]byte)
	for _, k := range s.Keys() {
		body, err := s.Get(k)
		if err != nil {
			t.Fatalf("snapshot %v: %v", k, err)
		}
		snapshot[k] = body
	}
	if len(snapshot) != workers*perW {
		t.Fatalf("final key count %d, want %d", len(snapshot), workers*perW)
	}
	s.Close()

	r := openTest(t, dir, Options{DisableAutoCompact: true})
	defer r.Close()
	if r.Len() != len(snapshot) {
		t.Fatalf("reopen Len %d, want %d", r.Len(), len(snapshot))
	}
	for k, body := range snapshot {
		got, err := r.Get(k)
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("reopen %v: %v", k, err)
		}
	}
}
