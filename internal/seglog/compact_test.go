package seglog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blobcr/internal/chunkstore"
)

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestCompactReclaimsDeadSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 8 * 1024, DisableAutoCompact: true, NoCompress: true})
	defer s.Close()
	bodies := make(map[int][]byte)
	for i := 0; i < 32; i++ {
		bodies[i] = randBytes(i, 1024)
		if err := s.Put(key(i), bodies[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := len(segFiles(t, dir))
	if before < 4 {
		t.Fatalf("only %d segments before compaction", before)
	}
	// Kill most chunks: every sealed segment drops below the live ratio.
	for i := 0; i < 32; i++ {
		if i%4 != 0 {
			if err := s.Delete(key(i)); err != nil {
				t.Fatal(err)
			}
			delete(bodies, i)
		}
	}
	res, err := s.CompactNow()
	if err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	if res.Segments == 0 {
		t.Fatal("compaction removed no segments")
	}
	if res.ReclaimedBytes == 0 {
		t.Fatal("compaction reclaimed no bytes")
	}
	after := len(segFiles(t, dir))
	if after >= before {
		t.Fatalf("segment count %d -> %d: nothing reclaimed on disk", before, after)
	}
	// Survivors intact, victims still dead.
	for i := 0; i < 32; i++ {
		got, err := s.Get(key(i))
		if body, live := bodies[i]; live {
			if err != nil || !bytes.Equal(got, body) {
				t.Fatalf("surviving chunk %d after compaction: %v", i, err)
			}
		} else if !errors.Is(err, chunkstore.ErrNotFound) {
			t.Fatalf("deleted chunk %d resurrected by compaction: %v", i, err)
		}
	}
	// And the same holds across a reopen: relocated records are durable and
	// no stale copy in a removed segment wins.
	s.Close()
	r := openTest(t, dir, Options{DisableAutoCompact: true, NoCompress: true})
	defer r.Close()
	for i := 0; i < 32; i++ {
		got, err := r.Get(key(i))
		if body, live := bodies[i]; live {
			if err != nil || !bytes.Equal(got, body) {
				t.Fatalf("reopen chunk %d: %v", i, err)
			}
		} else if !errors.Is(err, chunkstore.ErrNotFound) {
			t.Fatalf("reopen resurrected deleted chunk %d: %v", i, err)
		}
	}
}

func TestCompactFullyDeadSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 4 * 1024, DisableAutoCompact: true, NoCompress: true})
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Put(key(i), randBytes(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := s.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments == 0 {
		t.Fatal("no segments compacted")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", s.Len())
	}
	// Tombstones whose puts died with their victims are not carried forward
	// forever: once no older segment can hold the key, they drop.
	s.Close()
	r := openTest(t, dir, Options{DisableAutoCompact: true})
	defer r.Close()
	if r.Len() != 0 {
		t.Fatalf("reopen Len = %d, want 0", r.Len())
	}
}

// TestCompactCarriesTombstoneOverOlderSegment is the resurrection trap: the
// put lives in segment A, the tombstone in segment B, and compaction removes
// B first. The tombstone must be carried forward or the reopen resurrects
// the chunk out of A.
func TestCompactCarriesTombstoneOverOlderSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 4 * 1024, DisableAutoCompact: true, NoCompress: true})
	// Segment 1: the victim-to-survive, holding key 0 and friends.
	for i := 0; i < 4; i++ {
		if err := s.Put(key(i), randBytes(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	// Later segments: filler plus the tombstone for key 0.
	for i := 4; i < 12; i++ {
		if err := s.Put(key(i), randBytes(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(key(0)); err != nil {
		t.Fatal(err)
	}
	// Delete the filler sharing the tombstone's segment region so those
	// segments (not segment 1) become the compaction victims.
	for i := 4; i < 12; i++ {
		if err := s.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key(0)); !errors.Is(err, chunkstore.ErrNotFound) {
		t.Fatalf("deleted chunk visible after compaction: %v", err)
	}
	s.Close()
	r := openTest(t, dir, Options{DisableAutoCompact: true})
	defer r.Close()
	if _, err := r.Get(key(0)); !errors.Is(err, chunkstore.ErrNotFound) {
		t.Fatalf("compaction of the tombstone's segment resurrected chunk 0: %v", err)
	}
	for i := 1; i < 4; i++ {
		if _, err := r.Get(key(i)); err != nil {
			t.Fatalf("chunk %d lost: %v", i, err)
		}
	}
}

func TestCompactSkipsCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 4 * 1024, DisableAutoCompact: true, NoCompress: true})
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Put(key(i), randBytes(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	// Pick a sealed segment, make it a victim, then rot one record byte
	// behind the store's back.
	s.mu.RLock()
	var victim *segment
	for _, seg := range s.segs {
		if seg != s.active {
			victim = seg
			break
		}
	}
	s.mu.RUnlock()
	if victim == nil {
		t.Fatal("no sealed segment")
	}
	raw, err := os.ReadFile(victim.path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(victim.path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s.Delete(key(i)) //nolint:errcheck
	}
	_, err = s.CompactNow()
	if err == nil {
		t.Fatal("CompactNow succeeded over bit rot")
	}
	if !victim.noCompact {
		t.Fatal("corrupt segment not marked noCompact")
	}
	if _, err := os.Stat(victim.path); err != nil {
		t.Fatalf("corrupt segment was removed: %v", err)
	}
	// A later pass must not spin on the same victim.
	if _, err := s.CompactNow(); err != nil && strings.Contains(err.Error(), filepath.Base(victim.path)) {
		t.Fatalf("second pass retried the corrupt segment: %v", err)
	}
}

func TestAutoCompactionTriggersOnDelete(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 4 * 1024, NoCompress: true})
	defer s.Close()
	for i := 0; i < 16; i++ {
		if err := s.Put(key(i), randBytes(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if err := s.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The background compactor runs asynchronously; CompactNow serializes
	// behind it and finishes the job, so afterwards the log must be compact.
	if _, err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if n := len(segFiles(t, dir)); n > 1 {
		t.Fatalf("%d segments remain after full delete + compaction", n)
	}
}
