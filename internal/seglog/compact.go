package seglog

import (
	"fmt"
	"os"

	"blobcr/internal/chunkstore"
)

// compactBatchBytes bounds how many relocated record bytes ride one group
// commit, so compacting a large segment does not build a segment-sized
// buffer in memory or stall concurrent Puts behind one giant append.
const compactBatchBytes = 4 << 20

// compactLoop is the background compactor: it wakes on the signal a Delete
// (Retire release, GC sweep) sends and on the post-recovery kick, and runs
// passes until no victim remains.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.compactCh:
			s.CompactNow() //nolint:errcheck // outcome lands in the metrics
		}
	}
}

// triggerCompact nudges the background compactor without blocking.
func (s *Store) triggerCompact() {
	if s.opts.DisableAutoCompact {
		return
	}
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// pickVictimLocked returns the sealed segment with the worst live ratio
// below the threshold, or nil. Caller holds mu (read mode suffices).
func (s *Store) pickVictimLocked() *segment {
	var best *segment
	var bestRatio float64
	for _, seg := range s.segs {
		if seg == s.active || seg.noCompact || seg.size == 0 {
			continue
		}
		ratio := float64(seg.live) / float64(seg.size)
		if ratio >= s.opts.CompactRatio {
			continue
		}
		if best == nil || ratio < bestRatio {
			best, bestRatio = seg, ratio
		}
	}
	return best
}

// CompactNow rewrites every sealed segment whose live ratio is below
// Options.CompactRatio, copying live records (and still-needed tombstones)
// to the active segment through the group-commit path, then deleting the
// victims. It implements chunkstore.Compactor; the repair scrubber and
// blobcr-ctl call it over the wire.
func (s *Store) CompactNow() (chunkstore.CompactResult, error) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	var res chunkstore.CompactResult
	for {
		if s.closed.Load() {
			return res, errClosed
		}
		s.mu.RLock()
		victim := s.pickVictimLocked()
		s.mu.RUnlock()
		if victim == nil {
			return res, nil
		}
		if err := s.compactSegment(victim, &res); err != nil {
			return res, err
		}
	}
}

// compactSegment moves a victim's live state forward and removes the file.
//
// Crash-safety: relocated copies are fsynced by the group-commit path
// before the index is swung and long before the victim is unlinked, so a
// crash anywhere in between leaves harmless duplicates that recovery
// resolves by offset order (later wins). The enqueue-time guards
// (relocAllowed / tombRelocAllowed) keep that order truthful against
// concurrent Deletes and re-Puts: nothing is ever copied above a record
// that should supersede it. The victim's removal is made durable with a
// directory fsync before the pass returns, so a later pass's "no older
// segment remains" reasoning can trust it.
func (s *Store) compactSegment(victim *segment, res *chunkstore.CompactResult) error {
	var (
		recs       []*pendingRec
		raws       []encodedRec
		group      int
		wroteBytes int64
	)
	flushGroup := func() error {
		if len(recs) == 0 {
			return nil
		}
		if _, err := s.enqueue(recs, raws); err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.wrote {
				wroteBytes += rec.size
			}
			if rec.moved {
				res.Relocated++
				s.relocated.Add(1)
				s.m.relocated.Inc()
			}
		}
		recs, raws, group = nil, nil, 0
		return nil
	}

	corrupt := false
	_, torn, err := scanSegment(victim.f, victim.size, func(off int64, h header, payload []byte) error {
		size := int64(hdrSize) + int64(h.plen)
		var rec *pendingRec
		if h.flags&flagTombstone != 0 {
			rec = &pendingRec{kind: recTombReloc, key: h.key, size: size, flags: h.flags, old: entry{seg: victim.seq}}
		} else {
			s.mu.RLock()
			e, ok := s.index[h.key]
			s.mu.RUnlock()
			if !ok || e.seg != victim.seq || e.off != off {
				return nil // dead record: superseded or deleted
			}
			rec = &pendingRec{kind: recReloc, key: h.key, size: size, ulen: h.ulen, flags: h.flags, old: e}
		}
		recs = append(recs, rec)
		// scanSegment reuses its payload buffer across callbacks and the
		// group accumulates past this return, so the copy is load-bearing.
		raws = append(raws, encodeRec(h, append([]byte(nil), payload...)))
		group += int(size)
		if group >= compactBatchBytes {
			return flushGroup()
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("seglog: compact %s: %w", victim.path, err)
	}
	if torn {
		// A sealed segment's records were all fsynced; a bad CRC here is
		// bit rot, not a crash artifact. Leave the segment for the scrub
		// plane (which re-replicates damaged chunks) instead of laundering
		// it through a rewrite.
		corrupt = true
	}
	if err := flushGroup(); err != nil {
		return err
	}
	if corrupt {
		s.mu.Lock()
		victim.noCompact = true
		s.mu.Unlock()
		return fmt.Errorf("seglog: compact %s: found a corrupt record, leaving segment in place", victim.path)
	}

	s.mu.Lock()
	delete(s.segs, victim.seq)
	s.updateGaugesLocked()
	s.mu.Unlock()
	victim.f.Close()
	if err := os.Remove(victim.path); err != nil {
		return fmt.Errorf("seglog: remove compacted segment: %w", err)
	}
	if err := s.dirf.Sync(); err != nil {
		return fmt.Errorf("seglog: sync dir after compaction: %w", err)
	}
	// Net disk space freed: the victim's bytes minus what had to be
	// rewritten into the active segment.
	reclaimed := victim.size - wroteBytes
	if reclaimed < 0 {
		reclaimed = 0
	}
	res.Segments++
	res.ReclaimedBytes += uint64(reclaimed)
	s.compactions.Add(1)
	s.reclaimed.Add(uint64(reclaimed))
	s.m.compactions.Inc()
	s.m.reclaimed.Add(uint64(reclaimed))
	return nil
}
