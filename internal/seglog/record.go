package seglog

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"

	"blobcr/internal/chunkstore"
)

// On-disk record layout (big-endian), header then payload back to back:
//
//	[0:4)   CRC32C over header bytes [4:hdrSize) plus the payload
//	[4:12)  key.Blob
//	[12:20) key.ID
//	[20]    flags
//	[21:25) ulen — logical (uncompressed) payload length
//	[25:29) plen — stored payload length
//
// The CRC covers everything after itself, so a torn or bit-flipped tail is
// detected no matter where the damage lands. Records are self-delimiting:
// recovery needs no index or footer, only a forward scan.
const hdrSize = 29

const (
	// flagTombstone marks a delete; the record has no payload and its key
	// suppresses every earlier record for the same key during recovery.
	flagTombstone = 1 << 0
	// flagZero elides an all-zero payload: ulen zero bytes, none stored.
	flagZero = 1 << 1
	// flagFlate marks a DEFLATE-compressed payload.
	flagFlate = 1 << 2
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on amd64
// and arm64, the same checksum LevelDB and ext4 journals use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header is the decoded fixed part of one record.
type header struct {
	key   chunkstore.Key
	flags uint8
	ulen  uint32
	plen  uint32
}

// encodedRec is one record ready to board a batch: the fixed header with
// its CRC already stamped, plus a reference to the payload bytes. Keeping
// the payload by reference instead of materialising header+payload lets
// the CRC run outside the batch lock and enqueue copy the payload straight
// into the group-commit buffer — one memcpy per record and no per-record
// allocation on the put hot path. The payload must stay immutable until
// the record's enqueue returns.
type encodedRec struct {
	hdr     [hdrSize]byte
	payload []byte
}

// encodeRec builds the boarding form of one record.
func encodeRec(h header, payload []byte) encodedRec {
	var e encodedRec
	binary.BigEndian.PutUint64(e.hdr[4:12], h.key.Blob)
	binary.BigEndian.PutUint64(e.hdr[12:20], h.key.ID)
	e.hdr[20] = h.flags
	binary.BigEndian.PutUint32(e.hdr[21:25], h.ulen)
	binary.BigEndian.PutUint32(e.hdr[25:29], h.plen)
	crc := crc32.Update(0, castagnoli, e.hdr[4:])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(e.hdr[0:4], crc)
	e.payload = payload
	return e
}

// parseHeader decodes a record header. The CRC is not verified here — it
// needs the payload.
func parseHeader(b []byte) header {
	return header{
		key: chunkstore.Key{
			Blob: binary.BigEndian.Uint64(b[4:12]),
			ID:   binary.BigEndian.Uint64(b[12:20]),
		},
		flags: b[20],
		ulen:  binary.BigEndian.Uint32(b[21:25]),
		plen:  binary.BigEndian.Uint32(b[25:29]),
	}
}

// verifyRecord checks a full raw record (header + payload) against its CRC.
func verifyRecord(raw []byte) bool {
	if len(raw) < hdrSize {
		return false
	}
	h := parseHeader(raw)
	if len(raw) != hdrSize+int(h.plen) {
		return false
	}
	return binary.BigEndian.Uint32(raw[0:4]) == crc32.Update(0, castagnoli, raw[4:])
}

// scanSegment walks every record of a segment file from offset 0, calling
// fn with each record's offset, header and (stored, still-compressed)
// payload. The payload slice is reused between calls; fn must not retain it.
//
// It returns the number of bytes covered by valid records and whether the
// scan stopped at a torn/corrupt record instead of clean EOF. A torn tail is
// the expected shape of a crash mid-append (the batch was never acked); the
// caller decides whether that is recoverable (last segment) or fatal
// (sealed segment).
func scanSegment(f *os.File, size int64, fn func(off int64, h header, payload []byte) error) (valid int64, torn bool, err error) {
	br := bufio.NewReaderSize(io.NewSectionReader(f, 0, size), 1<<20)
	var off int64
	var hb [hdrSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hb[:]); err != nil {
			if err == io.EOF {
				return off, false, nil
			}
			if err == io.ErrUnexpectedEOF {
				return off, true, nil
			}
			return off, false, err
		}
		h := parseHeader(hb[:])
		if int64(h.plen) > size-off-hdrSize {
			return off, true, nil // length field points past the file: torn
		}
		if cap(payload) < int(h.plen) {
			payload = make([]byte, h.plen)
		}
		payload = payload[:h.plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, true, nil
			}
			return off, false, err
		}
		crc := crc32.Update(0, castagnoli, hb[4:])
		crc = crc32.Update(crc, castagnoli, payload)
		if binary.BigEndian.Uint32(hb[0:4]) != crc {
			return off, true, nil
		}
		if err := fn(off, h, payload); err != nil {
			return off, false, err
		}
		off += hdrSize + int64(h.plen)
	}
}
