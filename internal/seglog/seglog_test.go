package seglog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func key(i int) chunkstore.Key {
	return chunkstore.Key{Blob: 1, ID: uint64(i)}
}

// randBytes is deterministic xorshift junk: incompressible, so the flate
// path stays out of tests that reason about raw sizes.
func randBytes(seed, n int) []byte {
	x := uint64(seed)*2654435761 + 1
	out := make([]byte, n)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	defer s.Close()
	bodies := map[int][]byte{
		0: randBytes(0, 4096),                      // raw
		1: make([]byte, 4096),                      // zero-elided
		2: bytes.Repeat([]byte("checkpoint"), 500), // compressible
		3: {},                                      // empty chunk
		4: randBytes(4, 17),                        // tiny
	}
	for i, b := range bodies {
		if err := s.Put(key(i), b); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i, want := range bodies {
		got, err := s.Get(key(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if s.Len() != len(bodies) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(bodies))
	}
	var want int64
	for _, b := range bodies {
		want += int64(len(b))
	}
	if got := s.UsedBytes(); got != want {
		t.Fatalf("UsedBytes = %d, want %d (logical bytes)", got, want)
	}
}

func TestGetMissing(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	defer s.Close()
	if _, err := s.Get(key(99)); !errors.Is(err, chunkstore.ErrNotFound) {
		t.Fatalf("Get missing: %v, want ErrNotFound", err)
	}
}

func TestImmutability(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	defer s.Close()
	body := randBytes(1, 1024)
	if err := s.Put(key(1), body); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), append([]byte(nil), body...)); err != nil {
		t.Fatalf("identical re-put: %v, want nil", err)
	}
	if err := s.Put(key(1), randBytes(2, 1024)); !errors.Is(err, chunkstore.ErrExists) {
		t.Fatalf("different re-put: %v, want ErrExists", err)
	}
}

func TestDelete(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{DisableAutoCompact: true})
	defer s.Close()
	if err := s.Put(key(1), randBytes(1, 256)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(key(1)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(key(1)); !errors.Is(err, chunkstore.ErrNotFound) {
		t.Fatalf("Get after delete: %v, want ErrNotFound", err)
	}
	if err := s.Delete(key(1)); !errors.Is(err, chunkstore.ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if s.Has(key(1)) {
		t.Fatal("Has after delete")
	}
	if s.UsedBytes() != 0 {
		t.Fatalf("UsedBytes after delete = %d", s.UsedBytes())
	}
}

func TestPutAfterDelete(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{DisableAutoCompact: true})
	defer s.Close()
	if err := s.Put(key(1), randBytes(1, 128)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	next := randBytes(2, 64)
	if err := s.Put(key(1), next); err != nil {
		t.Fatalf("re-put after delete: %v", err)
	}
	got, err := s.Get(key(1))
	if err != nil || !bytes.Equal(got, next) {
		t.Fatalf("Get after re-put: %v", err)
	}
}

func TestZeroPageElision(t *testing.T) {
	reg := obs.NewRegistry()
	s := openTest(t, t.TempDir(), Options{Registry: reg, DisableAutoCompact: true})
	defer s.Close()
	const chunk = 64 * 1024
	if err := s.Put(key(1), make([]byte, chunk)); err != nil {
		t.Fatal(err)
	}
	es := s.EngineStats()
	if es.Field("zero_chunks") != 1 {
		t.Fatalf("zero_chunks = %d, want 1", es.Field("zero_chunks"))
	}
	if disk := es.Field("disk_bytes"); disk >= chunk {
		t.Fatalf("disk_bytes = %d for an elided 64 KiB zero page", disk)
	}
	if es.Field("logical_bytes") != chunk {
		t.Fatalf("logical_bytes = %d, want %d", es.Field("logical_bytes"), chunk)
	}
	got, err := s.Get(key(1))
	if err != nil || len(got) != chunk || !isZero(got) {
		t.Fatalf("zero page roundtrip failed: %v", err)
	}
}

func TestFlateCompression(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{DisableAutoCompact: true})
	defer s.Close()
	compressible := bytes.Repeat([]byte("BlobCR stores VM images "), 2048)
	if err := s.Put(key(1), compressible); err != nil {
		t.Fatal(err)
	}
	incompressible := randBytes(7, 4096)
	if err := s.Put(key(2), incompressible); err != nil {
		t.Fatal(err)
	}
	es := s.EngineStats()
	if es.Field("flate_chunks") != 1 || es.Field("raw_chunks") != 1 {
		t.Fatalf("flate=%d raw=%d, want 1 and 1", es.Field("flate_chunks"), es.Field("raw_chunks"))
	}
	if disk, logical := es.Field("disk_bytes"), es.Field("logical_bytes"); disk >= logical {
		t.Fatalf("disk_bytes %d >= logical_bytes %d despite compressible data", disk, logical)
	}
	for i, want := range [][]byte{compressible, incompressible} {
		got, err := s.Get(key(i + 1))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("roundtrip %d: %v", i+1, err)
		}
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{DisableAutoCompact: true})
	defer s.Close()
	const (
		workers = 32
		perW    = 16
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := chunkstore.Key{Blob: uint64(w), ID: uint64(i)}
				if err := s.Put(k, randBytes(w*perW+i, 2048)); err != nil {
					errs <- fmt.Errorf("put %v: %w", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	es := s.EngineStats()
	puts, fsyncs := es.Field("puts"), es.Field("fsyncs")
	if puts != workers*perW {
		t.Fatalf("puts = %d, want %d", puts, workers*perW)
	}
	if fsyncs >= puts {
		t.Fatalf("fsyncs = %d not below puts = %d: group commit never batched", fsyncs, puts)
	}
	t.Logf("group commit: %d puts in %d fsyncs", puts, fsyncs)
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			k := chunkstore.Key{Blob: uint64(w), ID: uint64(i)}
			got, err := s.Get(k)
			if err != nil || !bytes.Equal(got, randBytes(w*perW+i, 2048)) {
				t.Fatalf("readback %v: %v", k, err)
			}
		}
	}
}

func TestConcurrentSameKeyPut(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	defer s.Close()
	body := randBytes(3, 1024)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(key(1), body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent identical put %d: %v", i, err)
		}
	}
	got, err := s.Get(key(1))
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("readback: %v", err)
	}
}

func TestSegmentRollAndReopen(t *testing.T) {
	dir := t.TempDir()
	bodies := make(map[int][]byte)
	s := openTest(t, dir, Options{SegmentBytes: 16 * 1024, DisableAutoCompact: true, NoCompress: true})
	for i := 0; i < 40; i++ {
		bodies[i] = randBytes(i, 2048)
		if err := s.Put(key(i), bodies[i]); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.EngineStats().Field("segments"); n < 3 {
		t.Fatalf("segments = %d, want several at a 16 KiB roll size", n)
	}
	if err := s.Delete(key(7)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openTest(t, dir, Options{SegmentBytes: 16 * 1024, DisableAutoCompact: true, NoCompress: true})
	defer r.Close()
	for i, want := range bodies {
		got, err := r.Get(key(i))
		if i == 7 {
			if !errors.Is(err, chunkstore.ErrNotFound) {
				t.Fatalf("deleted chunk resurrected across reopen: %v", err)
			}
			continue
		}
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reopen Get %d: %v", i, err)
		}
	}
	if r.Len() != len(bodies)-1 {
		t.Fatalf("reopen Len = %d, want %d", r.Len(), len(bodies)-1)
	}
}

func TestKeysMatchesIndex(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{DisableAutoCompact: true})
	defer s.Close()
	want := map[chunkstore.Key]bool{}
	for i := 0; i < 20; i++ {
		if err := s.Put(key(i), randBytes(i, 100)); err != nil {
			t.Fatal(err)
		}
		want[key(i)] = true
	}
	for i := 0; i < 20; i += 3 {
		if err := s.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		delete(want, key(i))
	}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys returned %d, want %d", len(got), len(want))
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("Keys returned dead key %v", k)
		}
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if err := s.Put(key(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put(key(2), []byte("y")); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if _, err := s.Get(key(1)); err == nil {
		t.Fatal("Get on closed store succeeded")
	}
}

func TestPutGetManySizes(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	defer s.Close()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		n := rng.Intn(8192)
		body := randBytes(i, n)
		if err := s.Put(key(i), body); err != nil {
			t.Fatalf("put %d (%d bytes): %v", i, n, err)
		}
		got, err := s.Get(key(i))
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("roundtrip %d (%d bytes): %v", i, n, err)
		}
	}
}
