// Package seglog is the durable log-structured chunk storage engine: an
// append-only segment log with group commit, per-chunk compression, CRC32C
// integrity, and background compaction, implementing chunkstore.Store for
// the BlobSeer data providers.
//
// Design (stdchk's log-structured aggregation; the paper's assumption that
// checkpoints survive node crashes):
//
//   - Chunks are appended to segment files as self-delimiting records
//     (record.go). A record is visible only after the batch containing it is
//     fsynced, so an acked Put is durable.
//   - Group commit: concurrent Puts ride one batch. The first writer to find
//     no open batch becomes the leader; it claims the batch, writes it with
//     a single WriteAt and a single fsync, installs the index entries, and
//     wakes every rider. Writers that arrive while a leader is flushing form
//     the next batch, so under concurrency the fsync count is a small
//     fraction of the put count.
//   - Compression: all-zero payloads (sparse VM images) store as a flag with
//     no payload at all; other payloads are DEFLATE-compressed when that
//     saves at least 1/8th of the bytes, else stored raw (compress.go).
//   - The index (key -> segment/offset/length) lives in memory and is
//     rebuilt on Open by scanning the segments in sequence order. A torn
//     tail — the signature of a crash mid-append — is truncated at the first
//     bad CRC of the highest segment; damage anywhere else is real
//     corruption and fails Open.
//   - Reads are positional (ReadAt) into pooled buffers, verify the record
//     CRC, and never block behind the writer.
//   - Compaction rewrites sealed segments whose live ratio fell below a
//     threshold (deletes from Retire/GC sweeps leave dead bytes behind),
//     copying live records through the same group-commit path (compact.go).
//
// Locks, in acquisition order: cmu (one compaction at a time) > fmu (one
// flush at a time) > wmu (batch formation) > mu (index and segment table) >
// pmu (pending-record counts). The flush path holds fmu for write+fsync+
// install, which makes install order equal disk order — the invariant the
// crash-recovery reasoning in compact.go leans on.
package seglog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
)

// Options tunes a Store. The zero value is production-ready.
type Options struct {
	// SegmentBytes is the roll size: a batch that would push the active
	// segment past it seals the segment first. Default 64 MiB.
	SegmentBytes int64
	// CompactRatio is the live-byte fraction below which a sealed segment
	// becomes a compaction victim. Default 0.5.
	CompactRatio float64
	// NoCompress disables DEFLATE (zero-page elision stays on).
	NoCompress bool
	// DisableAutoCompact turns off the background compactor; CompactNow
	// still works (tests, and callers that drive compaction themselves).
	DisableAutoCompact bool
	// Registry receives the engine's metrics; nil means obs.Default.
	Registry *obs.Registry
	// Label is the "store" label on the metrics; default is the directory
	// base name.
	Label string
}

const (
	defaultSegmentBytes = 64 << 20
	defaultCompactRatio = 0.5
)

var errClosed = errors.New("seglog: store closed")

// entry locates one live chunk in the log.
type entry struct {
	seg   uint32
	off   int64
	size  int64 // full record bytes (header + stored payload)
	ulen  uint32
	flags uint8
}

// segment is one log file. size and live are guarded by mu; only the flush
// path (serialized by fmu) grows size, and a sealed segment's size is
// immutable.
type segment struct {
	seq  uint32
	path string
	f    *os.File
	size int64 // durable valid record bytes
	live int64 // record bytes the index still points at
	// noCompact marks a segment where compaction found a record whose CRC
	// no longer verifies: relocating it would launder corruption, so the
	// segment is left for the scrub plane to repair chunk by chunk.
	noCompact bool
}

// pending record kinds.
const (
	recPut = iota
	recTomb
	recReloc     // compaction copy of a live record
	recTombReloc // compaction copy of a still-needed tombstone
)

// pendingRec is one record riding a batch.
type pendingRec struct {
	kind  int
	key   chunkstore.Key
	off   int // record offset within the batch buffer
	size  int64
	ulen  uint32
	flags uint8
	old   entry // recReloc: the entry this copy replaces; recTombReloc: .seg is the victim
	moved bool  // recReloc: the index was swung to the copy
	wrote bool  // the record was appended (reloc kinds can be dropped by their guards)
	err   error // per-record outcome (ErrExists, ErrNotFound)
}

// batch is one group commit in formation or flight.
type batch struct {
	buf     []byte
	recs    []*pendingRec
	done    chan struct{}
	err     error
	claimed bool
	seg     *segment
	base    int64
}

// batchBufs recycles group-commit buffers between batches. A busy batch
// grows to megabytes one record at a time; growing it from nil re-copies
// the accumulated bytes on every doubling, and that memmove profiles as the
// largest single CPU cost of the commit path on small machines. Buffers
// above maxRetainedBuf are left for the collector so one outlier batch does
// not pin its high-water mark forever.
var batchBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 64<<10)
	return &b
}}

const maxRetainedBuf = 8 << 20

type metricHandles struct {
	puts, gets, deletes, fsyncs, batches   *obs.Counter
	zero, flate, raw                       *obs.Counter
	compactions, relocated, reclaimed      *obs.Counter
	tornTruncs                             *obs.Counter
	appendNs, fsyncNs, getNs               *obs.Histogram
	batchRecs, batchBytes                  *obs.Histogram
	segments, diskBytes, logicalB, livePct *obs.Gauge
}

// Store is the log-structured engine. It implements chunkstore.Store plus
// Keys (GC sweeps), EngineStats and CompactNow (chunkstore extension
// interfaces). Safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	dirf *os.File

	mu      sync.RWMutex
	index   map[chunkstore.Key]entry
	segs    map[uint32]*segment
	active  *segment
	logical int64

	wmu sync.Mutex
	cur *batch
	fmu sync.Mutex

	cmu sync.Mutex

	pmu          sync.Mutex
	pendingPuts  map[chunkstore.Key]int
	pendingTombs map[chunkstore.Key]int

	closed    atomic.Bool
	compactCh chan struct{}
	quit      chan struct{}
	quitOnce  sync.Once
	wg        sync.WaitGroup

	puts, gets, deletes, fsyncs, batches          atomic.Uint64
	zeroChunks, flateChunks, rawChunks            atomic.Uint64
	compactions, relocated, reclaimed, tornTruncs atomic.Uint64

	m   metricHandles
	reg *obs.Registry // resolved Options.Registry; group-commit spans record here
}

// Open opens (creating if needed) a segment log rooted at dir, rebuilding
// the in-memory index by scanning the segments. A torn tail on the highest
// segment — the crash-mid-append shape — is truncated away; a bad record in
// any sealed segment is corruption and fails the open.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.CompactRatio <= 0 || opts.CompactRatio > 1 {
		opts.CompactRatio = defaultCompactRatio
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seglog: create dir: %w", err)
	}
	dirf, err := os.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("seglog: open dir: %w", err)
	}
	s := &Store{
		dir:          dir,
		opts:         opts,
		dirf:         dirf,
		index:        make(map[chunkstore.Key]entry),
		segs:         make(map[uint32]*segment),
		pendingPuts:  make(map[chunkstore.Key]int),
		pendingTombs: make(map[chunkstore.Key]int),
		compactCh:    make(chan struct{}, 1),
		quit:         make(chan struct{}),
	}
	s.initMetrics()
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	if !opts.DisableAutoCompact {
		s.wg.Add(1)
		go s.compactLoop()
		s.triggerCompact() // a reopened log may carry pre-crash garbage
	}
	return s, nil
}

// recover scans existing segments in sequence order, rebuilds the index
// (later records win, tombstones suppress), and picks the active segment.
func (s *Store) recover() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("seglog: scan dir: %w", err)
	}
	var seqs []uint32
	for _, ent := range ents {
		var seq uint32
		if _, err := fmt.Sscanf(ent.Name(), "seg-%08d.log", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, seq := range seqs {
		path := s.segPath(seq)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("seglog: open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("seglog: stat segment: %w", err)
		}
		seg := &segment{seq: seq, path: path, f: f}
		s.segs[seq] = seg // before the scan: duplicate keys may hit this segment
		valid, torn, err := scanSegment(f, st.Size(), s.replay(seg))
		if err != nil {
			return fmt.Errorf("seglog: scan %s: %w", path, err)
		}
		if torn {
			if i != len(seqs)-1 {
				return fmt.Errorf("seglog: segment %s has a bad record at offset %d mid-log: corruption, refusing to open", path, valid)
			}
			// The crash tail: none of it was acked. Drop it.
			if err := f.Truncate(valid); err != nil {
				return fmt.Errorf("seglog: truncate torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				return fmt.Errorf("seglog: sync truncated segment: %w", err)
			}
			s.tornTruncs.Add(1)
			s.m.tornTruncs.Inc()
		}
		seg.size = valid
	}
	if n := len(seqs); n > 0 {
		last := s.segs[seqs[n-1]]
		if last.size < s.opts.SegmentBytes {
			s.active = last
		}
	}
	if s.active == nil {
		next := uint32(1)
		if n := len(seqs); n > 0 {
			next = seqs[n-1] + 1
		}
		seg, err := s.createSegment(next)
		if err != nil {
			return err
		}
		s.segs[seg.seq] = seg
		s.active = seg
	}
	s.updateGaugesLocked()
	return nil
}

// replay returns the scan callback that rebuilds index state for one
// segment during recovery.
func (s *Store) replay(seg *segment) func(off int64, h header, _ []byte) error {
	return func(off int64, h header, _ []byte) error {
		size := int64(hdrSize) + int64(h.plen)
		if old, ok := s.index[h.key]; ok {
			if oseg := s.segs[old.seg]; oseg != nil {
				oseg.live -= old.size
			}
			s.logical -= int64(old.ulen)
			delete(s.index, h.key)
		}
		if h.flags&flagTombstone != 0 {
			return nil
		}
		s.index[h.key] = entry{seg: seg.seq, off: off, size: size, ulen: h.ulen, flags: h.flags}
		seg.live += size
		s.logical += int64(h.ulen)
		return nil
	}
}

func (s *Store) segPath(seq uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", seq))
}

// createSegment creates the next segment file and makes its directory entry
// durable before any record lands in it.
func (s *Store) createSegment(seq uint32) (*segment, error) {
	path := s.segPath(seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seglog: create segment: %w", err)
	}
	if err := s.dirf.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("seglog: sync dir: %w", err)
	}
	return &segment{seq: seq, path: path, f: f}, nil
}

func (s *Store) label() string {
	if s.opts.Label != "" {
		return s.opts.Label
	}
	return filepath.Base(s.dir)
}

func (s *Store) initMetrics() {
	reg := s.opts.Registry
	if reg == nil {
		reg = obs.Default
	}
	s.reg = reg
	l := obs.L("store", s.label())
	s.m.puts = reg.Counter("seglog_puts_total", l)
	s.m.gets = reg.Counter("seglog_gets_total", l)
	s.m.deletes = reg.Counter("seglog_deletes_total", l)
	s.m.fsyncs = reg.Counter("seglog_fsyncs_total", l)
	s.m.batches = reg.Counter("seglog_append_batches_total", l)
	s.m.zero = reg.Counter("seglog_zero_chunks_total", l)
	s.m.flate = reg.Counter("seglog_flate_chunks_total", l)
	s.m.raw = reg.Counter("seglog_raw_chunks_total", l)
	s.m.compactions = reg.Counter("seglog_compactions_total", l)
	s.m.relocated = reg.Counter("seglog_compaction_relocated_records_total", l)
	s.m.reclaimed = reg.Counter("seglog_compaction_reclaimed_bytes_total", l)
	s.m.tornTruncs = reg.Counter("seglog_torn_tail_truncations_total", l)
	s.m.appendNs = reg.Histogram("seglog_append_ns", l)
	s.m.fsyncNs = reg.Histogram("seglog_fsync_ns", l)
	s.m.getNs = reg.Histogram("seglog_get_ns", l)
	s.m.batchRecs = reg.Histogram("seglog_fsync_batch_records", l)
	s.m.batchBytes = reg.Histogram("seglog_fsync_batch_bytes", l)
	s.m.segments = reg.Gauge("seglog_segments", l)
	s.m.diskBytes = reg.Gauge("seglog_disk_bytes", l)
	s.m.logicalB = reg.Gauge("seglog_logical_bytes", l)
	s.m.livePct = reg.Gauge("seglog_live_ratio_pct", l)
}

// updateGaugesLocked refreshes the size gauges. Caller holds mu (any mode
// during recovery; write mode afterwards).
func (s *Store) updateGaugesLocked() {
	var disk, live int64
	n := 0
	for _, seg := range s.segs {
		disk += seg.size
		live += seg.live
		n++
	}
	s.m.segments.Set(int64(n))
	s.m.diskBytes.Set(disk)
	s.m.logicalB.Set(s.logical)
	pct := int64(100)
	if disk > 0 {
		pct = live * 100 / disk
	}
	s.m.livePct.Set(pct)
}

// --- group commit ---

// enqueue rides recs (with their encoded bytes raws) on the open batch,
// creating one and becoming its leader if none is open. Relocation records
// are re-checked under the batch lock (see their guards) and may be
// dropped. Returns once the batch carrying the records is durable.
func (s *Store) enqueue(recs []*pendingRec, raws []encodedRec) (*batch, error) {
	s.wmu.Lock()
	if s.closed.Load() {
		s.wmu.Unlock()
		return nil, errClosed
	}
	leader := false
	if s.cur == nil {
		s.cur = &batch{buf: (*batchBufs.Get().(*[]byte))[:0], done: make(chan struct{})}
		leader = true
	}
	b := s.cur
	for i, rec := range recs {
		switch rec.kind {
		case recPut:
			s.pmu.Lock()
			s.pendingPuts[rec.key]++
			s.pmu.Unlock()
		case recTomb:
			s.pmu.Lock()
			s.pendingTombs[rec.key]++
			s.pmu.Unlock()
		case recReloc:
			if !s.relocAllowed(rec) {
				continue
			}
		case recTombReloc:
			if !s.tombRelocAllowed(rec) {
				continue
			}
		}
		rec.off = len(b.buf)
		rec.wrote = true
		b.buf = append(b.buf, raws[i].hdr[:]...)
		b.buf = append(b.buf, raws[i].payload...)
		b.recs = append(b.recs, rec)
	}
	s.wmu.Unlock()
	if leader {
		s.flush(b)
	}
	<-b.done
	return b, b.err
}

// relocAllowed guards a compaction copy: the entry must still be where the
// scan found it, with no tombstone in flight. Any delete enqueued after
// this check lands at a higher offset than the copy, so on both the live
// index and the on-disk recovery order the delete wins. Caller holds wmu.
func (s *Store) relocAllowed(rec *pendingRec) bool {
	s.pmu.Lock()
	tombs := s.pendingTombs[rec.key]
	s.pmu.Unlock()
	if tombs > 0 {
		return false
	}
	s.mu.RLock()
	cur, ok := s.index[rec.key]
	s.mu.RUnlock()
	return ok && cur == rec.old
}

// tombRelocAllowed guards a tombstone copy out of a compaction victim: it
// is still needed only if the key is absent (no later put supersedes it,
// none is in flight) and an older segment that might hold the key's bytes
// will survive the victim. A put enqueued after this check lands at a
// higher offset, so recovery order keeps it. Caller holds wmu.
func (s *Store) tombRelocAllowed(rec *pendingRec) bool {
	s.pmu.Lock()
	puts := s.pendingPuts[rec.key]
	s.pmu.Unlock()
	if puts > 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.index[rec.key]; ok {
		return false
	}
	for seq := range s.segs {
		if seq < rec.old.seg {
			return true
		}
	}
	return false
}

// maxFormSpins bounds the batch-formation window: how many scheduler yields
// the leader grants boarding putters before claiming its batch.
const maxFormSpins = 16

// flush drives one batch to disk: claim it, write it with one append and
// one fsync, install its records, wake the riders. fmu serializes flushes,
// so install order equals disk order.
//
// Between taking fmu and claiming, the leader holds a short formation
// window: it yields the processor while the batch keeps growing, claiming
// only once boarding pauses (or the spin bound hits). Concurrent putters
// that are runnable but not yet through their encode step — the common case
// on few-core machines, where puts serialize on the CPU — get to ride this
// batch instead of fragmenting into single-record flushes. An idle store
// pays one yield (~a microsecond), far below the fsync it precedes.
func (s *Store) flush(b *batch) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	prev := -1
	for spins := 0; spins < maxFormSpins; spins++ {
		s.wmu.Lock()
		n := len(b.buf)
		s.wmu.Unlock()
		if n == prev {
			break
		}
		prev = n
		runtime.Gosched()
	}
	s.wmu.Lock()
	if b.claimed {
		s.wmu.Unlock()
		return // Close got here first
	}
	b.claimed = true
	if s.cur == b {
		s.cur = nil
	}
	s.wmu.Unlock()
	s.commitBatch(b)
}

// commitBatch writes and installs one claimed batch. Caller holds fmu.
// The batch buffer goes back to the pool on return: nothing reads it after
// install (the index holds disk offsets, riders only read b.err/b.recs).
func (s *Store) commitBatch(b *batch) {
	defer close(b.done)
	defer func() {
		if cap(b.buf) <= maxRetainedBuf {
			buf := b.buf[:0]
			batchBufs.Put(&buf)
		}
		b.buf = nil
	}()
	if len(b.buf) == 0 {
		return // every record was dropped by its guard
	}
	// The group-commit span is the engine's unit of durable work: one append
	// + fsync covering every record that boarded the batch. It lands in the
	// store's flight ring, so a post-mortem dump shows the final batches a
	// dying provider committed.
	sp := obs.StartSpanIn(s.reg, "seglog/groupcommit")
	defer sp.End()
	if err := s.writeBatch(b); err != nil {
		b.err = err
		s.releasePending(b)
		return
	}
	s.install(b)
}

// writeBatch appends the batch to the active segment (rolling it first if
// the batch would overflow it) and fsyncs. Caller holds fmu.
func (s *Store) writeBatch(b *batch) error {
	seg := s.active
	if seg.size > 0 && seg.size+int64(len(b.buf)) > s.opts.SegmentBytes {
		ns, err := s.createSegment(seg.seq + 1)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.segs[ns.seq] = ns
		s.active = ns
		s.mu.Unlock()
		seg = ns
	}
	sw := obs.StartTimer()
	if _, err := seg.f.WriteAt(b.buf, seg.size); err != nil {
		seg.f.Truncate(seg.size) //nolint:errcheck // best-effort tail drop
		return fmt.Errorf("seglog: append: %w", err)
	}
	sw.ObserveInto(s.m.appendNs)
	sw = obs.StartTimer()
	if err := datasync(seg.f); err != nil {
		seg.f.Truncate(seg.size) //nolint:errcheck
		return fmt.Errorf("seglog: fsync: %w", err)
	}
	sw.ObserveInto(s.m.fsyncNs)
	s.fsyncs.Add(1)
	s.batches.Add(1)
	s.m.fsyncs.Inc()
	s.m.batches.Inc()
	s.m.batchRecs.Observe(uint64(len(b.recs)))
	s.m.batchBytes.Observe(uint64(len(b.buf)))
	b.seg = seg
	b.base = seg.size
	return nil
}

// install applies a durable batch to the index. Caller holds fmu; the
// records are processed in offset order, matching what recovery would
// replay.
func (s *Store) install(b *batch) {
	s.mu.Lock()
	seg := b.seg
	for _, rec := range b.recs {
		recOff := b.base + int64(rec.off)
		switch rec.kind {
		case recPut:
			s.pendingDone(s.pendingPuts, rec.key)
			if old, ok := s.index[rec.key]; ok {
				// A concurrent writer published this key first. Identical
				// re-delivery is fine (this copy is dead bytes); different
				// content violates immutability.
				if s.sameStoredRecordLocked(old, b.buf[rec.off:rec.off+int(rec.size)]) {
					continue
				}
				rec.err = fmt.Errorf("%w: %v", chunkstore.ErrExists, rec.key)
				continue
			}
			s.index[rec.key] = entry{seg: seg.seq, off: recOff, size: rec.size, ulen: rec.ulen, flags: rec.flags}
			seg.live += rec.size
			s.logical += int64(rec.ulen)
		case recTomb:
			s.pendingDone(s.pendingTombs, rec.key)
			old, ok := s.index[rec.key]
			if !ok {
				rec.err = fmt.Errorf("%w: %v", chunkstore.ErrNotFound, rec.key)
				continue
			}
			if oseg := s.segs[old.seg]; oseg != nil {
				oseg.live -= old.size
			}
			s.logical -= int64(old.ulen)
			delete(s.index, rec.key)
		case recReloc:
			// The enqueue guard makes a mismatch here impossible today;
			// keep the check so a future race turns into dead bytes, not
			// resurrection.
			if cur, ok := s.index[rec.key]; ok && cur == rec.old {
				s.index[rec.key] = entry{seg: seg.seq, off: recOff, size: rec.size, ulen: rec.ulen, flags: rec.flags}
				if oseg := s.segs[rec.old.seg]; oseg != nil {
					oseg.live -= rec.old.size
				}
				seg.live += rec.size
				rec.moved = true
			}
		case recTombReloc:
			// Nothing to index: the bytes carry the delete across the
			// victim's removal for recovery's sake.
		}
	}
	seg.size += int64(len(b.buf))
	s.updateGaugesLocked()
	s.mu.Unlock()
}

// releasePending drops the pending-record marks of a batch that failed to
// write (install never ran).
func (s *Store) releasePending(b *batch) {
	for _, rec := range b.recs {
		switch rec.kind {
		case recPut:
			s.pendingDone(s.pendingPuts, rec.key)
		case recTomb:
			s.pendingDone(s.pendingTombs, rec.key)
		}
	}
}

func (s *Store) pendingDone(m map[chunkstore.Key]int, k chunkstore.Key) {
	s.pmu.Lock()
	if m[k] <= 1 {
		delete(m, k)
	} else {
		m[k]--
	}
	s.pmu.Unlock()
}

// sameStoredRecordLocked compares a stored record's raw bytes with a freshly
// encoded one. Encoding is deterministic, so equal chunks encode equally.
// Caller holds mu, which also pins the entry's segment open.
func (s *Store) sameStoredRecordLocked(e entry, raw []byte) bool {
	if int64(len(raw)) != e.size {
		return false
	}
	seg := s.segs[e.seg]
	if seg == nil {
		return false
	}
	stored := make([]byte, e.size)
	if _, err := seg.f.ReadAt(stored, e.off); err != nil {
		return false
	}
	return bytes.Equal(stored, raw)
}

// --- chunkstore.Store ---

// Put appends the chunk and returns once it is fsync-durable. Concurrent
// Puts share a batch and an fsync. Re-putting identical content is a no-op;
// different content under a stored key is ErrExists.
func (s *Store) Put(k chunkstore.Key, data []byte) error {
	s.puts.Add(1)
	s.m.puts.Inc()
	if existing, found, err := s.read(k); err != nil {
		return err
	} else if found {
		if bytes.Equal(existing, data) {
			return nil // idempotent replica re-delivery
		}
		return fmt.Errorf("%w: %v", chunkstore.ErrExists, k)
	}
	flags, payload := s.encodePayload(data)
	switch {
	case flags&flagZero != 0:
		s.zeroChunks.Add(1)
		s.m.zero.Inc()
	case flags&flagFlate != 0:
		s.flateChunks.Add(1)
		s.m.flate.Inc()
	default:
		s.rawChunks.Add(1)
		s.m.raw.Inc()
	}
	enc := encodeRec(header{key: k, flags: flags, ulen: uint32(len(data)), plen: uint32(len(payload))}, payload)
	rec := &pendingRec{kind: recPut, key: k, size: int64(hdrSize + len(payload)), ulen: uint32(len(data)), flags: flags}
	if _, err := s.enqueue([]*pendingRec{rec}, []encodedRec{enc}); err != nil {
		return err
	}
	return rec.err
}

// Get returns the chunk body, verifying the record CRC on the way out.
func (s *Store) Get(k chunkstore.Key) ([]byte, error) {
	sw := obs.StartTimer()
	s.gets.Add(1)
	s.m.gets.Inc()
	data, found, err := s.read(k)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: %v", chunkstore.ErrNotFound, k)
	}
	sw.ObserveInto(s.m.getNs)
	return data, nil
}

// readBufs pools pread buffers for the record hot path.
var readBufs = sync.Pool{New: func() any {
	b := make([]byte, 64*1024)
	return &b
}}

// read fetches and decodes a chunk. found distinguishes absence from an
// empty body. A read that fails because compaction moved the record under
// us is retried against the entry's new home.
func (s *Store) read(k chunkstore.Key) (data []byte, found bool, err error) {
	for attempt := 0; attempt < 8; attempt++ {
		s.mu.RLock()
		e, ok := s.index[k]
		var f *os.File
		if ok {
			if seg := s.segs[e.seg]; seg != nil {
				f = seg.f
			}
		}
		s.mu.RUnlock()
		if !ok {
			return nil, false, nil
		}
		if s.closed.Load() {
			return nil, true, errClosed
		}
		if f == nil {
			continue // entry mid-relocation; re-resolve
		}
		bp := readBufs.Get().(*[]byte)
		if int64(cap(*bp)) < e.size {
			*bp = make([]byte, e.size)
		}
		*bp = (*bp)[:e.size]
		_, rerr := f.ReadAt(*bp, e.off)
		if rerr == nil && !verifyRecord(*bp) {
			rerr = fmt.Errorf("record CRC mismatch at %s offset %d", s.segPath(e.seg), e.off)
		}
		if rerr != nil {
			readBufs.Put(bp)
			s.mu.RLock()
			cur, still := s.index[k]
			s.mu.RUnlock()
			if !still {
				return nil, false, nil // deleted while we read
			}
			if cur != e {
				continue // compacted away under us; follow the move
			}
			return nil, true, fmt.Errorf("seglog: read %v: %w", k, rerr)
		}
		h := parseHeader(*bp)
		data, derr := decodePayload(h.flags, (*bp)[hdrSize:], h.ulen)
		readBufs.Put(bp)
		if derr != nil {
			return nil, true, fmt.Errorf("seglog: read %v: %w", k, derr)
		}
		return data, true, nil
	}
	return nil, true, fmt.Errorf("seglog: read %v: record kept moving", k)
}

// Has implements chunkstore.Store.
func (s *Store) Has(k chunkstore.Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[k]
	return ok
}

// Delete appends a tombstone and returns once it is durable. The dead bytes
// it leaves behind are reclaimed by compaction.
func (s *Store) Delete(k chunkstore.Key) error {
	s.deletes.Add(1)
	s.m.deletes.Inc()
	s.mu.RLock()
	_, ok := s.index[k]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %v", chunkstore.ErrNotFound, k)
	}
	enc := encodeRec(header{key: k, flags: flagTombstone}, nil)
	rec := &pendingRec{kind: recTomb, key: k, size: hdrSize}
	if _, err := s.enqueue([]*pendingRec{rec}, []encodedRec{enc}); err != nil {
		return err
	}
	if rec.err != nil {
		return rec.err
	}
	s.triggerCompact()
	return nil
}

// Len implements chunkstore.Store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// UsedBytes implements chunkstore.Store: logical payload bytes, matching
// the other backends (compression is an engine concern, not an accounting
// one).
func (s *Store) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.logical
}

// Keys returns all live chunk keys (GC sweeps, cas index recovery).
func (s *Store) Keys() []chunkstore.Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]chunkstore.Key, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

// EngineStats implements chunkstore.EngineStatser.
func (s *Store) EngineStats() chunkstore.EngineStats {
	s.mu.RLock()
	var disk, live int64
	nsegs := 0
	for _, seg := range s.segs {
		disk += seg.size
		live += seg.live
		nsegs++
	}
	chunks := len(s.index)
	logical := s.logical
	s.mu.RUnlock()
	return chunkstore.EngineStats{Backend: "seglog", Fields: []chunkstore.EngineField{
		{Name: "chunks", Value: uint64(chunks)},
		{Name: "logical_bytes", Value: uint64(logical)},
		{Name: "disk_bytes", Value: uint64(disk)},
		{Name: "live_bytes", Value: uint64(live)},
		{Name: "segments", Value: uint64(nsegs)},
		{Name: "puts", Value: s.puts.Load()},
		{Name: "gets", Value: s.gets.Load()},
		{Name: "deletes", Value: s.deletes.Load()},
		{Name: "appends", Value: s.batches.Load()},
		{Name: "fsyncs", Value: s.fsyncs.Load()},
		{Name: "zero_chunks", Value: s.zeroChunks.Load()},
		{Name: "flate_chunks", Value: s.flateChunks.Load()},
		{Name: "raw_chunks", Value: s.rawChunks.Load()},
		{Name: "compactions", Value: s.compactions.Load()},
		{Name: "relocated_records", Value: s.relocated.Load()},
		{Name: "reclaimed_bytes", Value: s.reclaimed.Load()},
		{Name: "torn_truncations", Value: s.tornTruncs.Load()},
	}}
}

// Close flushes any open batch, stops the background compactor and closes
// the segment files. Puts that were acked before Close are durable.
func (s *Store) Close() error {
	s.quitOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.fmu.Lock()
	defer s.fmu.Unlock()
	s.wmu.Lock()
	b := s.cur
	if b != nil && !b.claimed {
		b.claimed = true
		s.cur = nil
	} else {
		b = nil
	}
	s.closed.Store(true)
	s.wmu.Unlock()
	if b != nil {
		s.commitBatch(b)
	}
	s.closeFiles()
	return nil
}

func (s *Store) closeFiles() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		seg.f.Close()
	}
	if s.dirf != nil {
		s.dirf.Close()
	}
}

// Interface conformance.
var (
	_ chunkstore.Store         = (*Store)(nil)
	_ chunkstore.EngineStatser = (*Store)(nil)
	_ chunkstore.Compactor     = (*Store)(nil)
)
