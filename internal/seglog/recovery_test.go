package seglog

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
)

// tortureLog builds a single-segment log of nChunks acked puts and returns
// the expected contents, the byte range [lastStart, lastEnd) of the final
// record inside the segment file, and that file's path. The store is closed
// on return; the caller mutates the file and reopens.
func tortureLog(t *testing.T, dir string, nChunks int) (want map[chunkstore.Key][]byte, lastKey chunkstore.Key, lastStart, lastEnd int64, segPath string) {
	t.Helper()
	s := openTest(t, dir, Options{DisableAutoCompact: true, NoCompress: true})
	want = make(map[chunkstore.Key][]byte)
	for i := 0; i < nChunks-1; i++ {
		body := randBytes(i+1, 64+i*17)
		if err := s.Put(key(i), body); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		want[key(i)] = body
	}
	s.mu.RLock()
	lastStart = s.active.size
	segPath = s.active.path
	s.mu.RUnlock()
	lastKey = key(nChunks - 1)
	lastBody := randBytes(nChunks, 96)
	if err := s.Put(lastKey, lastBody); err != nil {
		t.Fatalf("Put last: %v", err)
	}
	want[lastKey] = lastBody
	s.mu.RLock()
	lastEnd = s.active.size
	s.mu.RUnlock()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return want, lastKey, lastStart, lastEnd, segPath
}

// checkRecovered opens the damaged log and asserts: every chunk whose record
// was fully durable before the damage point survives intact, the torn tail
// is gone (file truncated back to the last good record), and the store is
// writable again.
func checkRecovered(t *testing.T, dir string, want map[chunkstore.Key][]byte, lastKey chunkstore.Key, lastStart int64, segPath string, wantTorn bool) {
	t.Helper()
	s := openTest(t, dir, Options{DisableAutoCompact: true, NoCompress: true})
	defer s.Close()
	for k, body := range want {
		if k == lastKey {
			if _, err := s.Get(k); !errors.Is(err, chunkstore.ErrNotFound) {
				t.Fatalf("damaged last chunk %v not dropped: %v", k, err)
			}
			continue
		}
		got, err := s.Get(k)
		if err != nil {
			t.Fatalf("acked chunk %v lost after crash recovery: %v", k, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("acked chunk %v corrupted after crash recovery", k)
		}
	}
	if s.Len() != len(want)-1 {
		t.Fatalf("Len after recovery = %d, want %d", s.Len(), len(want)-1)
	}
	if got := s.tornTruncs.Load(); (got != 0) != wantTorn {
		t.Fatalf("torn truncations = %d, wantTorn = %v", got, wantTorn)
	}
	if fi, err := os.Stat(segPath); err != nil || fi.Size() != lastStart {
		t.Fatalf("torn tail not dropped cleanly: size %d, want %d (err %v)", fi.Size(), lastStart, err)
	}
	// The log is live again: the dropped chunk can be re-put and read back.
	if err := s.Put(lastKey, want[lastKey]); err != nil {
		t.Fatalf("re-put after recovery: %v", err)
	}
	got, err := s.Get(lastKey)
	if err != nil || !bytes.Equal(got, want[lastKey]) {
		t.Fatalf("readback after recovery re-put: %v", err)
	}
}

// TestRecoveryTruncatedTailEveryBoundary simulates a crash mid-append at
// every byte boundary of the last record: for each cut point the segment is
// truncated there, reopened, and every previously acked chunk must be intact
// with the partial record dropped.
func TestRecoveryTruncatedTailEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	want, lastKey, lastStart, lastEnd, segPath := tortureLog(t, dir, 10)
	orig, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(orig)) != lastEnd {
		t.Fatalf("segment size %d, want %d", len(orig), lastEnd)
	}
	for cut := lastStart; cut < lastEnd; cut++ {
		if err := os.WriteFile(segPath, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// cut == lastStart is a clean EOF, not a torn record.
		checkRecovered(t, dir, want, lastKey, lastStart, segPath, cut != lastStart)
	}
}

// TestRecoveryCorruptTailEveryByte flips each byte of the last record in
// place (torn write / media error on the unsealed tail), reopens, and
// asserts the damaged record is truncated away with everything before it
// intact.
func TestRecoveryCorruptTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	want, lastKey, lastStart, lastEnd, segPath := tortureLog(t, dir, 10)
	orig, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	for pos := lastStart; pos < lastEnd; pos++ {
		damaged := append([]byte(nil), orig...)
		damaged[pos] ^= 0xFF
		if err := os.WriteFile(segPath, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		checkRecovered(t, dir, want, lastKey, lastStart, segPath, true)
	}
}

// TestRecoveryMidLogCorruptionFailsOpen: damage in a sealed (non-last)
// segment is not a crash artifact — every record there was fsynced — so Open
// must refuse rather than silently drop acked data.
func TestRecoveryMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 8 * 1024, DisableAutoCompact: true, NoCompress: true})
	for i := 0; i < 30; i++ {
		if err := s.Put(key(i), randBytes(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.RLock()
	var sealed string
	for _, seg := range s.segs {
		if seg != s.active {
			sealed = seg.path
			break
		}
	}
	s.mu.RUnlock()
	s.Close()
	if sealed == "" {
		t.Fatal("no sealed segment produced")
	}
	data, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(sealed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{DisableAutoCompact: true, Registry: obs.NewRegistry()}); err == nil {
		t.Fatal("Open succeeded over mid-log corruption")
	}
}

// TestRecoveryTombstoneInTail: a crash right after a durable tombstone must
// keep the delete across reopen even when the put it kills lives in an
// earlier segment.
func TestRecoveryTombstoneInTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 4 * 1024, DisableAutoCompact: true, NoCompress: true})
	for i := 0; i < 8; i++ {
		if err := s.Put(key(i), randBytes(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(key(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openTest(t, dir, Options{DisableAutoCompact: true})
	defer r.Close()
	if _, err := r.Get(key(0)); !errors.Is(err, chunkstore.ErrNotFound) {
		t.Fatalf("tombstoned chunk resurrected: %v", err)
	}
	for i := 1; i < 8; i++ {
		if _, err := r.Get(key(i)); err != nil {
			t.Fatalf("chunk %d lost: %v", i, err)
		}
	}
}

// TestRecoveryEmptyDirAndReopenLoop: repeated open/close cycles of an empty
// then growing log stay consistent.
func TestRecoveryReopenLoop(t *testing.T) {
	dir := t.TempDir()
	want := make(map[chunkstore.Key][]byte)
	for round := 0; round < 5; round++ {
		s := openTest(t, dir, Options{DisableAutoCompact: true})
		for k, body := range want {
			got, err := s.Get(k)
			if err != nil || !bytes.Equal(got, body) {
				t.Fatalf("round %d: chunk %v: %v", round, k, err)
			}
		}
		body := randBytes(round+100, 512)
		if err := s.Put(key(round), body); err != nil {
			t.Fatalf("round %d put: %v", round, err)
		}
		want[key(round)] = body
		s.Close()
	}
}
