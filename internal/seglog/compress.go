package seglog

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// minCompress is the smallest payload worth running DEFLATE over; below it
// the header-relative savings cannot pay for the CPU.
const minCompress = 128

// sampleLen is the prefix probed before committing to a full DEFLATE pass.
// Compressing an incompressible chunk costs nearly as much CPU as a
// compressible one and then gets thrown away; estimating the entropy of a
// small prefix first keeps encrypted/random checkpoint data off the
// compressor for a fraction of a percent of the cost. Payloads up to
// 2*sampleLen skip the probe — the full pass is already cheap there.
const sampleLen = 4 * 1024

// maxSampleEntropyX16 is the byte-entropy gate, in 1/16ths of a bit: a
// prefix above 7.4 bits/byte is effectively random and DEFLATE will not
// recover the 1/8th margin on it.
const maxSampleEntropyX16 = 16*7 + 6

// flateWriters pools DEFLATE encoders: flate.NewWriter allocates large
// internal tables, and the group-commit path compresses on every Put.
var flateWriters = sync.Pool{New: func() any {
	fw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return fw
}}

// isZero reports whether every byte of p is zero, eight bytes at a time.
// All-zero chunks dominate sparse VM images, so this runs on every Put.
func isZero(p []byte) bool {
	for len(p) >= 8 {
		if binary.LittleEndian.Uint64(p) != 0 {
			return false
		}
		p = p[8:]
	}
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// encodePayload picks the storage encoding for a chunk body: zero-page
// elision first (flag only, no payload), then DEFLATE if it saves at least
// 1/8th of the bytes, else raw. The returned payload may alias data (raw
// case); callers must treat it as read-only. The choice is deterministic
// for given bytes and options, so identical re-puts encode identically.
func (s *Store) encodePayload(data []byte) (flags uint8, payload []byte) {
	if len(data) > 0 && isZero(data) {
		return flagZero, nil
	}
	if s.opts.NoCompress || len(data) < minCompress {
		return 0, data
	}
	if len(data) > 2*sampleLen && !sampleCompressible(data[:sampleLen]) {
		return 0, data
	}
	var buf bytes.Buffer
	buf.Grow(len(data) / 2)
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(&buf)
	_, werr := fw.Write(data)
	cerr := fw.Close()
	flateWriters.Put(fw)
	if werr == nil && cerr == nil && buf.Len() < len(data)-len(data)/8 {
		return flagFlate, buf.Bytes()
	}
	return 0, data
}

// sampleCompressible estimates the Shannon byte entropy of a prefix sample
// and reports whether DEFLATE has a chance at the 1/8th margin. A histogram
// scan costs a couple of microseconds against tens for an actual DEFLATE
// probe — on the group-commit path that difference is batch-formation time.
// Deterministic for given bytes, like every other encoding decision here, so
// identical re-puts still produce identical records. A false positive only
// wastes one full DEFLATE pass (the real 1/8th check still gates storage);
// a false negative stores a compressible chunk raw, never corrupts it.
func sampleCompressible(sample []byte) bool {
	var hist [256]int
	for _, b := range sample {
		hist[b]++
	}
	// Entropy in 1/16th-bit fixed point: -sum(p * log2(p)) * 16.
	n := float64(len(sample))
	var bits float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		bits -= p * math.Log2(p)
	}
	return int(bits*16) <= maxSampleEntropyX16
}

// decodePayload expands a stored payload back into the chunk body. The
// result never aliases payload.
func decodePayload(flags uint8, payload []byte, ulen uint32) ([]byte, error) {
	switch {
	case flags&flagZero != 0:
		return make([]byte, ulen), nil
	case flags&flagFlate != 0:
		out := make([]byte, ulen)
		fr := flate.NewReader(bytes.NewReader(payload))
		if _, err := io.ReadFull(fr, out); err != nil {
			return nil, fmt.Errorf("seglog: decompress: %w", err)
		}
		var extra [1]byte
		if n, _ := fr.Read(extra[:]); n != 0 {
			return nil, fmt.Errorf("seglog: decompress: stream longer than recorded length")
		}
		fr.Close()
		return out, nil
	default:
		out := make([]byte, len(payload))
		copy(out, payload)
		return out, nil
	}
}
