//go:build linux

package seglog

import (
	"os"
	"syscall"
)

// datasync makes f's data (and the metadata needed to retrieve it, including
// the file size) durable. On Linux this is fdatasync(2): unlike fsync it
// skips the timestamp-only inode update, which on a journaling file system
// saves a journal transaction per batch — a measurable share of the
// group-commit cycle. Torn writes are the record CRCs' problem, not sync's.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
