// Package vm models a virtual machine instance as the checkpoint framework
// sees it: a virtual disk (raw device exposed by the mirroring module or a
// qcow2 image), a guest file system mounted on that disk, guest processes
// (blcr images), RAM, and device state.
//
// The model is deliberately at the state level, not the instruction level:
// what matters to checkpoint-restart is which bytes exist where (disk
// blocks, process arenas, RAM) and the lifecycle transitions
// (boot/suspend/resume), because those determine snapshot content and size.
//
//   - Disk-only checkpointing (BlobCR and qcow2-disk) captures the virtual
//     disk after processes dump their state into the guest file system.
//   - Full-VM checkpointing (qcow2-full, the savevm path) additionally
//     serializes RAM and device state — SaveVM below — which is why its
//     snapshots carry the paper's ~118 MB constant overhead.
package vm

import (
	"errors"
	"fmt"
	"sync"

	"blobcr/internal/blcr"
	"blobcr/internal/guestfs"
	"blobcr/internal/vdisk"
	"blobcr/internal/wire"
)

// State is the instance lifecycle state.
type State int

// Lifecycle states.
const (
	Stopped State = iota
	Running
	Suspended
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Stopped:
		return "stopped"
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Lifecycle errors.
var (
	ErrNotRunning   = errors.New("vm: instance not running")
	ErrNotSuspended = errors.New("vm: instance not suspended")
	ErrRunning      = errors.New("vm: instance already running")
	ErrBadVMState   = errors.New("vm: invalid savevm state")
)

const savevmMagic = 0x53564D31 // "SVM1"

// Config tunes an instance.
type Config struct {
	// OSOverheadBytes models the guest operating system's memory that a
	// full-VM snapshot captures beyond the application processes: other
	// daemons, page cache, device buffers. The paper measures ~118 MB.
	OSOverheadBytes int
	// BootNoiseBytes is how much the guest OS writes to its file system
	// while booting (generated config files, daemon logs) — the "minor
	// updates" of Section 4.3.1. Spread across several files.
	BootNoiseBytes int
	// BlockSize for mkfs when the disk is blank (0 = guestfs default).
	BlockSize int
}

// Instance is one virtual machine.
type Instance struct {
	id   string
	cfg  Config
	disk vdisk.Device

	mu        sync.Mutex
	state     State
	fs        *guestfs.FS
	procs     map[int]*blcr.Process
	devState  []byte // opaque virtual-device state, grows with uptime
	bootCount int
}

// New creates a stopped instance over the given virtual disk.
func New(id string, disk vdisk.Device, cfg Config) *Instance {
	return &Instance{id: id, cfg: cfg, disk: disk, procs: make(map[int]*blcr.Process)}
}

// ID returns the instance identifier.
func (i *Instance) ID() string { return i.id }

// State returns the lifecycle state.
func (i *Instance) State() State {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.state
}

// Disk returns the underlying virtual disk device.
func (i *Instance) Disk() vdisk.Device { return i.disk }

// BootCount reports how many times the instance has booted (restart path
// reboots; savevm resume does not).
func (i *Instance) BootCount() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.bootCount
}

// Boot starts the instance: it mounts the guest file system (formatting a
// blank disk), replays the guest OS's boot-time writes, and transitions to
// Running.
func (i *Instance) Boot() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.state != Stopped {
		return fmt.Errorf("%w: %s is %s", ErrRunning, i.id, i.state)
	}
	fs, err := guestfs.Mount(i.disk)
	if errors.Is(err, guestfs.ErrBadFS) {
		fs, err = guestfs.Mkfs(i.disk, i.cfg.BlockSize)
	}
	if err != nil {
		return fmt.Errorf("vm: boot %s: %w", i.id, err)
	}
	i.fs = fs
	i.bootCount++
	if err := i.bootNoiseLocked(); err != nil {
		return fmt.Errorf("vm: boot %s: OS writes: %w", i.id, err)
	}
	i.devState = []byte(fmt.Sprintf("devices:%s:boot=%d", i.id, i.bootCount))
	i.state = Running
	return nil
}

// bootNoiseLocked performs the guest OS's boot-time file system writes.
func (i *Instance) bootNoiseLocked() error {
	if err := i.fs.MkdirAll("/etc"); err != nil {
		return err
	}
	if err := i.fs.MkdirAll("/var/log"); err != nil {
		return err
	}
	if err := i.fs.MkdirAll("/tmp"); err != nil {
		return err
	}
	conf := fmt.Sprintf("hostname=%s\nboot=%d\n", i.id, i.bootCount)
	if err := i.fs.WriteFile("/etc/hostname.conf", []byte(conf)); err != nil {
		return err
	}
	noise := i.cfg.BootNoiseBytes
	if noise <= 0 {
		noise = 64 * 1024
	}
	// Spread across a few daemon logs, deterministic content.
	perFile := noise / 4
	for n, name := range []string{"syslog", "dmesg", "daemon.log", "auth.log"} {
		data := make([]byte, perFile)
		for j := range data {
			data[j] = byte('a' + (j+n)%26)
		}
		if err := i.fs.WriteFile("/var/log/"+name, data); err != nil {
			return err
		}
	}
	return nil
}

// FS returns the mounted guest file system. It is nil unless the instance
// has booted.
func (i *Instance) FS() *guestfs.FS {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fs
}

// Suspend freezes the instance (the proxy does this around disk snapshots).
func (i *Instance) Suspend() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.state != Running {
		return fmt.Errorf("%w: %s is %s", ErrNotRunning, i.id, i.state)
	}
	i.state = Suspended
	return nil
}

// Resume unfreezes the instance.
func (i *Instance) Resume() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.state != Suspended {
		return fmt.Errorf("%w: %s is %s", ErrNotSuspended, i.id, i.state)
	}
	i.state = Running
	return nil
}

// Kill force-stops the instance, modelling a fail-stop node failure: RAM,
// processes and device state are lost; only the virtual disk (and whatever
// was snapshotted) survives elsewhere.
func (i *Instance) Kill() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.state = Stopped
	i.fs = nil
	i.procs = make(map[int]*blcr.Process)
	i.devState = nil
}

// AddProcess registers a guest process (an MPI rank's process image).
func (i *Instance) AddProcess(p *blcr.Process) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.state == Stopped {
		return fmt.Errorf("%w: %s", ErrNotRunning, i.id)
	}
	i.procs[p.Pid()] = p
	return nil
}

// Process returns a registered guest process.
func (i *Instance) Process(pid int) (*blcr.Process, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	p, ok := i.procs[pid]
	return p, ok
}

// Processes returns the pids of all registered processes.
func (i *Instance) Processes() []int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]int, 0, len(i.procs))
	for pid := range i.procs {
		out = append(out, pid)
	}
	return out
}

// SaveVM serializes the complete volatile state of the instance — device
// state, OS memory overhead and every process image — the savevm operation
// of the qcow2-full baseline. The instance must be suspended.
func (i *Instance) SaveVM() ([]byte, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.state != Suspended {
		return nil, fmt.Errorf("%w: savevm of %s while %s", ErrNotSuspended, i.id, i.state)
	}
	var procBytes uint64
	for _, p := range i.procs {
		procBytes += p.AllocatedBytes()
	}
	w := wire.NewBuffer(int(uint64(i.cfg.OSOverheadBytes) + procBytes + 1024))
	w.PutU32(savevmMagic)
	w.PutString(i.id)
	w.PutU64(uint64(i.bootCount))
	w.PutBytes(i.devState)
	// The OS's own memory: captured in full, exactly like the guest RAM a
	// real savevm writes out.
	osMem := make([]byte, i.cfg.OSOverheadBytes)
	for j := range osMem {
		osMem[j] = byte(j % 251)
	}
	w.PutBytes(osMem)
	w.PutUvarint(uint64(len(i.procs)))
	pids := make([]int, 0, len(i.procs))
	for pid := range i.procs {
		pids = append(pids, pid)
	}
	sortInts(pids)
	for _, pid := range pids {
		w.PutUvarint(uint64(pid))
		w.PutBytes(i.procs[pid].Checkpoint())
	}
	return w.Bytes(), nil
}

// LoadVM restores volatile state saved by SaveVM into this instance, which
// resumes Suspended (callers Resume it). The disk contents are restored
// separately (the qcow2 internal snapshot holds them).
func (i *Instance) LoadVM(state []byte) error {
	r := wire.NewReader(state)
	if r.U32() != savevmMagic {
		return fmt.Errorf("%w: bad magic", ErrBadVMState)
	}
	id := r.String()
	bootCount := r.U64()
	devState := r.BytesCopy()
	r.Bytes() // OS memory: opaque, occupying space only
	n := r.Uvarint()
	if n > 1<<16 {
		return fmt.Errorf("%w: implausible process count %d", ErrBadVMState, n)
	}
	procs := make(map[int]*blcr.Process, n)
	for j := uint64(0); j < n; j++ {
		pid := int(r.Uvarint())
		dump := r.Bytes()
		if r.Err() != nil {
			break
		}
		p, err := blcr.Restore(dump)
		if err != nil {
			return fmt.Errorf("vm: loadvm process %d: %w", pid, err)
		}
		procs[pid] = p
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadVMState, err)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.id = id
	i.bootCount = int(bootCount)
	i.devState = devState
	i.procs = procs
	// Remount the file system from the (restored) disk.
	fs, err := guestfs.Mount(i.disk)
	if err != nil {
		return fmt.Errorf("vm: loadvm remount: %w", err)
	}
	i.fs = fs
	i.state = Suspended
	return nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
