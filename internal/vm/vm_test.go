package vm

import (
	"bytes"
	"testing"

	"blobcr/internal/blcr"
	"blobcr/internal/vdisk"
)

func newInstance(t *testing.T) *Instance {
	t.Helper()
	disk := vdisk.NewMem(4 << 20)
	return New("vm-0", disk, Config{OSOverheadBytes: 100_000, BootNoiseBytes: 32 * 1024, BlockSize: 512})
}

func TestLifecycle(t *testing.T) {
	i := newInstance(t)
	if i.State() != Stopped {
		t.Fatalf("initial state = %v", i.State())
	}
	if err := i.Suspend(); err == nil {
		t.Error("Suspend while stopped accepted")
	}
	if err := i.Boot(); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	if i.State() != Running || i.BootCount() != 1 {
		t.Errorf("after boot: %v, boots=%d", i.State(), i.BootCount())
	}
	if err := i.Boot(); err == nil {
		t.Error("double Boot accepted")
	}
	if err := i.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := i.Suspend(); err == nil {
		t.Error("double Suspend accepted")
	}
	if err := i.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := i.Resume(); err == nil {
		t.Error("Resume while running accepted")
	}
	i.Kill()
	if i.State() != Stopped || i.FS() != nil {
		t.Error("Kill did not stop the instance")
	}
}

func TestBootWritesOSNoise(t *testing.T) {
	i := newInstance(t)
	if err := i.Boot(); err != nil {
		t.Fatal(err)
	}
	fs := i.FS()
	entries, err := fs.ReadDir("/var/log")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Errorf("boot wrote %d log files, want 4", len(entries))
	}
	var total uint64
	for _, e := range entries {
		total += e.Size
	}
	if total < 30*1024 {
		t.Errorf("boot noise = %d bytes, want ~32K", total)
	}
	conf, err := fs.ReadFile("/etc/hostname.conf")
	if err != nil || len(conf) == 0 {
		t.Errorf("hostname.conf: %v", err)
	}
}

func TestRebootPreservesDiskState(t *testing.T) {
	i := newInstance(t)
	if err := i.Boot(); err != nil {
		t.Fatal(err)
	}
	i.FS().WriteFile("/data", []byte("survives"))
	i.Kill()
	if err := i.Boot(); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	got, err := i.FS().ReadFile("/data")
	if err != nil || string(got) != "survives" {
		t.Errorf("data after reboot: %q, %v", got, err)
	}
	if i.BootCount() != 2 {
		t.Errorf("BootCount = %d", i.BootCount())
	}
}

func TestProcessRegistry(t *testing.T) {
	i := newInstance(t)
	p := blcr.NewProcess(42)
	if err := i.AddProcess(p); err == nil {
		t.Error("AddProcess on stopped instance accepted")
	}
	i.Boot()
	if err := i.AddProcess(p); err != nil {
		t.Fatal(err)
	}
	got, ok := i.Process(42)
	if !ok || got != p {
		t.Error("Process lookup failed")
	}
	if pids := i.Processes(); len(pids) != 1 || pids[0] != 42 {
		t.Errorf("Processes = %v", pids)
	}
}

func TestSaveVMRequiresSuspend(t *testing.T) {
	i := newInstance(t)
	i.Boot()
	if _, err := i.SaveVM(); err == nil {
		t.Error("SaveVM while running accepted")
	}
}

func TestSaveVMSizeIncludesOSOverheadAndProcesses(t *testing.T) {
	i := newInstance(t)
	i.Boot()
	p := blcr.NewProcess(1)
	p.Alloc("data", 50_000)
	i.AddProcess(p)
	i.Suspend()
	state, err := i.SaveVM()
	if err != nil {
		t.Fatal(err)
	}
	// The savevm blob must carry both the OS overhead (100 KB) and the
	// process arenas (50 KB) — the full-VM penalty the paper measures.
	if len(state) < 150_000 {
		t.Errorf("savevm blob = %d bytes, want >= 150000", len(state))
	}
}

func TestSaveLoadVMRoundTrip(t *testing.T) {
	disk := vdisk.NewMem(4 << 20)
	i := New("vm-rt", disk, Config{OSOverheadBytes: 10_000, BootNoiseBytes: 8192, BlockSize: 512})
	if err := i.Boot(); err != nil {
		t.Fatal(err)
	}
	p := blcr.NewProcess(7)
	data := p.Alloc("heap", 1000)
	for j := range data {
		data[j] = byte(j)
	}
	p.SetRegisters(blcr.Registers{PC: 1234})
	i.AddProcess(p)
	i.FS().WriteFile("/progress", []byte("iteration 10"))
	i.Suspend()
	state, err := i.SaveVM()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh instance over the same disk (savevm resume does
	// not reboot).
	j := New("other", disk, Config{})
	if err := j.LoadVM(state); err != nil {
		t.Fatalf("LoadVM: %v", err)
	}
	if j.ID() != "vm-rt" {
		t.Errorf("restored id = %q", j.ID())
	}
	if j.State() != Suspended {
		t.Errorf("restored state = %v", j.State())
	}
	if err := j.Resume(); err != nil {
		t.Fatal(err)
	}
	q, ok := j.Process(7)
	if !ok {
		t.Fatal("process lost through savevm")
	}
	heap, _ := q.Arena("heap")
	if !bytes.Equal(heap, data) {
		t.Error("process memory corrupted")
	}
	if q.Registers().PC != 1234 {
		t.Error("registers lost")
	}
	got, err := j.FS().ReadFile("/progress")
	if err != nil || string(got) != "iteration 10" {
		t.Errorf("guest fs after loadvm: %q, %v", got, err)
	}
	// No reboot happened.
	if j.BootCount() != 1 {
		t.Errorf("BootCount = %d, want 1 (savevm resume must not reboot)", j.BootCount())
	}
}

func TestLoadVMRejectsGarbage(t *testing.T) {
	i := newInstance(t)
	if err := i.LoadVM([]byte("junk")); err == nil {
		t.Error("LoadVM accepted garbage")
	}
}

func TestStateString(t *testing.T) {
	if Stopped.String() != "stopped" || Running.String() != "running" || Suspended.String() != "suspended" {
		t.Error("State strings wrong")
	}
}
