package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"blobcr/internal/blcr"
)

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		data, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)
	buf := []byte{1, 2, 3}
	if err := c0.Send(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	got, err := c1.Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("Send aliased the caller's buffer")
	}
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)
	// Two messages with different tags, received out of order.
	c0.Send(1, 5, []byte("five"))
	c0.Send(1, 3, []byte("three"))
	got3, err := c1.Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	got5, err := c1.Recv(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got3) != "three" || string(got5) != "five" {
		t.Errorf("tag matching broken: %q %q", got3, got5)
	}
}

func TestInvalidArgs(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c := w.Comm(0)
	if err := c.Send(5, 0, nil); err == nil {
		t.Error("send to invalid rank accepted")
	}
	if err := c.Send(1, -1, nil); err == nil {
		t.Error("negative tag accepted")
	}
	if err := c.Send(1, MaxAppTag+1, nil); err == nil {
		t.Error("reserved tag accepted")
	}
	if _, err := c.Recv(9, 0); err == nil {
		t.Error("recv from invalid rank accepted")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 8
	var before, after atomic.Int32
	err := Run(n, func(c *Comm) error {
		before.Add(1)
		c.Barrier()
		if got := before.Load(); got != n {
			return fmt.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), got)
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != n {
		t.Errorf("after = %d", after.Load())
	}
}

func TestRepeatedBarriers(t *testing.T) {
	var mu sync.Mutex
	counts := make([]int, 3)
	err := Run(4, func(c *Comm) error {
		for round := 0; round < 3; round++ {
			mu.Lock()
			counts[round]++
			mine := counts[round]
			mu.Unlock()
			_ = mine
			c.Barrier()
			mu.Lock()
			if counts[round] != 4 {
				mu.Unlock()
				return fmt.Errorf("round %d: %d arrivals after barrier", round, counts[round])
			}
			mu.Unlock()
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		var buf []byte
		if c.Rank() == 2 {
			buf = []byte("payload")
		} else {
			buf = make([]byte, 7)
		}
		got, err := c.Bcast(2, buf)
		if err != nil {
			return err
		}
		if string(got) != "payload" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		sum, err := c.Allreduce(float64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if sum != n*(n+1)/2 {
			return fmt.Errorf("sum = %v", sum)
		}
		max, err := c.Allreduce(float64(c.Rank()), OpMax)
		if err != nil {
			return err
		}
		if max != n-1 {
			return fmt.Errorf("max = %v", max)
		}
		min, err := c.Allreduce(float64(c.Rank()), OpMin)
		if err != nil {
			return err
		}
		if min != 0 {
			return fmt.Errorf("min = %v", min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		data := []byte{byte(c.Rank() * 10)}
		got, err := c.Gather(1, data)
		if err != nil {
			return err
		}
		if c.Rank() != 1 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		for r := 0; r < 4; r++ {
			if len(got[r]) != 1 || got[r][0] != byte(r*10) {
				return fmt.Errorf("gather[%d] = %v", r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHaloExchangePattern(t *testing.T) {
	// The CM1-style neighbour exchange: every rank swaps borders with
	// rank±1 for several iterations.
	const n, iters = 6, 10
	err := Run(n, func(c *Comm) error {
		val := byte(c.Rank())
		for it := 0; it < iters; it++ {
			left, right := c.Rank()-1, c.Rank()+1
			if right < n {
				if err := c.Send(right, it, []byte{val}); err != nil {
					return err
				}
			}
			if left >= 0 {
				if err := c.Send(left, it, []byte{val}); err != nil {
					return err
				}
			}
			if left >= 0 {
				got, err := c.Recv(left, it)
				if err != nil {
					return err
				}
				if got[0] != byte(left)+byte(it) {
					return fmt.Errorf("iter %d: left halo = %d", it, got[0])
				}
			}
			if right < n {
				got, err := c.Recv(right, it)
				if err != nil {
					return err
				}
				if got[0] != byte(right)+byte(it) {
					return fmt.Errorf("iter %d: right halo = %d", it, got[0])
				}
			}
			val++
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatedCheckpointRunsAllSteps(t *testing.T) {
	const n = 4
	var dumps, syncs, snaps atomic.Int32
	err := Run(n, func(c *Comm) error {
		v, err := c.CheckpointCoordinated(CRHooks{
			SaveState: func() error { dumps.Add(1); return nil },
			Sync:      func() error { syncs.Add(1); return nil },
			Snapshot: func() (SnapshotWait, error) {
				snaps.Add(1)
				return func() (uint64, error) { return 7, nil }, nil
			},
		})
		if err != nil {
			return err
		}
		if v != 7 {
			return fmt.Errorf("version = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dumps.Load() != n || syncs.Load() != n || snaps.Load() != n {
		t.Errorf("steps ran %d/%d/%d times, want %d each", dumps.Load(), syncs.Load(), snaps.Load(), n)
	}
}

func TestCheckpointDrainsInFlightMessages(t *testing.T) {
	// Rank 0 sends a message that rank 1 will only receive AFTER the
	// checkpoint. The blcr path must capture it as channel state and
	// re-deliver it afterwards.
	const payload = "in-flight"
	err := Run(2, func(c *Comm) error {
		proc := blcr.NewProcess(c.Rank())
		if c.Rank() == 0 {
			if err := c.Send(1, 9, []byte(payload)); err != nil {
				return err
			}
		}
		if _, err := c.CheckpointCoordinated(CRHooks{Process: proc}); err != nil {
			return err
		}
		if c.Rank() == 1 {
			// The in-flight message must have been captured in the dump...
			if _, ok := proc.Arena("__mpi_pending"); !ok {
				return fmt.Errorf("no pending arena in process image")
			}
			// ...and still be deliverable after the checkpoint.
			got, err := c.Recv(0, 9)
			if err != nil {
				return err
			}
			if string(got) != payload {
				return fmt.Errorf("got %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAppLevelCheckpointRejectsInFlight(t *testing.T) {
	// Application-level checkpointing with undelivered messages is an
	// error: the application is supposed to be quiescent.
	errCh := make(chan error, 2)
	Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("x"))
		}
		_, err := c.CheckpointCoordinated(CRHooks{})
		errCh <- err
		return nil
	})
	close(errCh)
	var sawErr bool
	for err := range errCh {
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("checkpoint with in-flight messages at app level did not error")
	}
}

func TestPendingRoundTripThroughBlcrDump(t *testing.T) {
	// Capture channel state in a dump, restore it in a new world: the
	// message must arrive.
	msgs := []Message{{Src: 0, Tag: 4, Data: []byte("restored")}}
	p := blcr.NewProcess(1)
	encoded := encodePending(msgs)
	copy(p.Alloc("__mpi_pending", len(encoded)), encoded)
	dump := p.Checkpoint()

	restored, err := blcr.Restore(dump)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(2)
	defer w.Close()
	c1 := w.Comm(1)
	if err := c1.RestorePending(restored); err != nil {
		t.Fatal(err)
	}
	got, err := c1.Recv(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "restored" {
		t.Errorf("got %q", got)
	}
	// Arena is consumed.
	if _, ok := restored.Arena("__mpi_pending"); ok {
		t.Error("pending arena not freed after restore")
	}
}

func TestCheckpointBytesIdenticalAcrossRanks(t *testing.T) {
	// Deterministic encode/decode of pending messages.
	msgs := []Message{
		{Src: 3, Tag: 1, Data: []byte("a")},
		{Src: 0, Tag: 2, Data: nil},
	}
	decoded, err := decodePending(encodePending(msgs))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].Src != 3 || decoded[0].Tag != 1 ||
		!bytes.Equal(decoded[0].Data, []byte("a")) || decoded[1].Src != 0 {
		t.Errorf("decoded = %+v", decoded)
	}
	if _, err := decodePending([]byte{0xFF}); err == nil {
		t.Error("garbage pending blob accepted")
	}
}

func TestWorldCloseUnblocksReceivers(t *testing.T) {
	w := NewWorld(2)
	done := make(chan error, 1)
	go func() {
		_, err := w.Comm(0).Recv(1, 0)
		done <- err
	}()
	w.Close()
	if err := <-done; err == nil {
		t.Error("Recv returned nil after world close")
	}
}

func TestRunPropagatesError(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("rank 1 failed")
		}
		return nil
	})
	if err == nil {
		t.Error("Run swallowed the error")
	}
}

// TestCoordinatedCheckpointAsyncOverlap verifies the split protocol: every
// rank returns from initiation (the line is established, VMs resumed) while
// the snapshot commits are still in flight, and the wait resolves them.
func TestCoordinatedCheckpointAsyncOverlap(t *testing.T) {
	const n = 3
	release := make(chan struct{})
	var initiated atomic.Int32
	err := Run(n, func(c *Comm) error {
		wait, err := c.CheckpointCoordinatedAsync(CRHooks{
			Snapshot: func() (SnapshotWait, error) {
				initiated.Add(1)
				return func() (uint64, error) { <-release; return 42, nil }, nil
			},
		})
		if err != nil {
			return err
		}
		// Initiation returned on every rank while no snapshot has resolved:
		// this is the overlap window where the application computes.
		if c.Rank() == 0 {
			if got := initiated.Load(); got != n {
				return fmt.Errorf("initiated = %d before any wait, want %d", got, n)
			}
			close(release)
		}
		v, err := wait()
		if err != nil {
			return err
		}
		if v != 42 {
			return fmt.Errorf("version = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
