// Package mpi implements a message-passing runtime for tightly-coupled
// applications: point-to-point sends/receives with tag matching, collectives
// (barrier, broadcast, allreduce, gather), and — the part the paper modifies
// in mpich2 — a coordinated checkpoint protocol that drains communication
// channels with marker messages, dumps per-process state, syncs the guest
// file system and requests a disk snapshot from the co-located checkpointing
// proxy.
//
// Ranks run as goroutines inside one process; the runtime is the guest-side
// library, not a network stack. Message payloads are copied on Send, so a
// rank may reuse its buffers immediately, as with MPI_Send.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Reserved internal tags; applications must use tags in [0, 1<<30).
const (
	tagMarker = 1<<30 + iota // checkpoint channel-drain marker
	tagBcast
	tagReduce
	tagGather
	tagBarrier
)

// MaxAppTag is the largest tag available to applications.
const MaxAppTag = 1<<30 - 1

// Message is one in-flight point-to-point message.
type Message struct {
	Src  int
	Tag  int
	Data []byte
}

// msgQueue holds undelivered messages from one source to one destination.
type msgQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Message
	closed  bool
}

func newMsgQueue() *msgQueue {
	q := &msgQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *msgQueue) push(m Message) {
	q.mu.Lock()
	q.pending = append(q.pending, m)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop removes and returns the first message with the given tag, blocking
// until one arrives or the queue closes.
func (q *msgQueue) pop(tag int) (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for i, m := range q.pending {
			if m.Tag == tag {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				return m, nil
			}
		}
		if q.closed {
			return Message{}, errors.New("mpi: world shut down while receiving")
		}
		q.cond.Wait()
	}
}

// drain removes and returns all application messages (reserved-tag messages
// stay queued). Used by the checkpoint protocol to capture channel state.
func (q *msgQueue) drain() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	var app, rest []Message
	for _, m := range q.pending {
		if m.Tag <= MaxAppTag {
			app = append(app, m)
		} else {
			rest = append(rest, m)
		}
	}
	q.pending = rest
	return app
}

func (q *msgQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// World is one application's communication domain.
type World struct {
	n      int
	queues [][]*msgQueue // queues[dst][src]

	bmu  sync.Mutex
	bcnt int
	bgen int
	bc   *sync.Cond
}

// NewWorld creates a world of n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{n: n}
	w.bc = sync.NewCond(&w.bmu)
	w.queues = make([][]*msgQueue, n)
	for dst := range w.queues {
		w.queues[dst] = make([]*msgQueue, n)
		for src := range w.queues[dst] {
			w.queues[dst][src] = newMsgQueue()
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns the communicator for one rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.n))
	}
	return &Comm{w: w, rank: rank}
}

// Close shuts the world down, unblocking all receivers with an error.
func (w *World) Close() {
	for _, row := range w.queues {
		for _, q := range row {
			q.close()
		}
	}
	w.bmu.Lock()
	w.bgen++ // release any barrier waiters
	w.bmu.Unlock()
	w.bc.Broadcast()
}

// InjectPending restores in-flight messages captured by a checkpoint into
// rank's receive queues (restart path).
func (w *World) InjectPending(rank int, msgs []Message) {
	for _, m := range msgs {
		w.queues[rank][m.Src].push(m)
	}
}

// Run executes body once per rank, each in its own goroutine, and returns
// the first error. The world is closed when Run returns.
func Run(n int, body func(c *Comm) error) error {
	w := NewWorld(n)
	defer w.Close()
	return w.Run(body)
}

// Run executes body once per rank on an existing world.
func (w *World) Run(body func(c *Comm) error) error {
	errs := make(chan error, w.n)
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs <- body(w.Comm(r))
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's communicator.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.n }

// Send delivers data to dst with the given tag. The payload is copied.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.w.n {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	if tag < 0 || tag > MaxAppTag {
		return fmt.Errorf("mpi: tag %d out of application range", tag)
	}
	c.send(dst, tag, data)
	return nil
}

func (c *Comm) send(dst, tag int, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.w.queues[dst][c.rank].push(Message{Src: c.rank, Tag: tag, Data: cp})
}

// Recv blocks until a message with the given tag arrives from src.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if src < 0 || src >= c.w.n {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", src)
	}
	if tag < 0 || tag > MaxAppTag {
		return nil, fmt.Errorf("mpi: tag %d out of application range", tag)
	}
	m, err := c.recv(src, tag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

func (c *Comm) recv(src, tag int) (Message, error) {
	return c.w.queues[c.rank][src].pop(tag)
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	w := c.w
	w.bmu.Lock()
	gen := w.bgen
	w.bcnt++
	if w.bcnt == w.n {
		w.bcnt = 0
		w.bgen++
		w.bmu.Unlock()
		w.bc.Broadcast()
		return
	}
	for w.bgen == gen {
		w.bc.Wait()
	}
	w.bmu.Unlock()
}

// Bcast distributes root's buffer to all ranks; every rank passes its own
// buffer of identical length and returns the root's content.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if c.rank == root {
		for r := 0; r < c.w.n; r++ {
			if r != root {
				c.send(r, tagBcast, data)
			}
		}
		out := make([]byte, len(data))
		copy(out, data)
		return out, nil
	}
	m, err := c.recv(root, tagBcast)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// ReduceOp combines two float64 values.
type ReduceOp func(a, b float64) float64

// Standard reduce operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce combines one float64 per rank with op and returns the result on
// every rank. Reduction order is rank order, so results are deterministic.
func (c *Comm) Allreduce(value float64, op ReduceOp) (float64, error) {
	// Gather to rank 0, reduce in rank order, broadcast.
	if c.rank == 0 {
		acc := value
		for r := 1; r < c.w.n; r++ {
			m, err := c.recv(r, tagReduce)
			if err != nil {
				return 0, err
			}
			acc = op(acc, f64FromBytes(m.Data))
		}
		for r := 1; r < c.w.n; r++ {
			c.send(r, tagReduce, f64ToBytes(acc))
		}
		return acc, nil
	}
	c.send(0, tagReduce, f64ToBytes(value))
	m, err := c.recv(0, tagReduce)
	if err != nil {
		return 0, err
	}
	return f64FromBytes(m.Data), nil
}

// Gather collects each rank's buffer at root; root receives a slice indexed
// by rank, other ranks receive nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if c.rank == root {
		out := make([][]byte, c.w.n)
		cp := make([]byte, len(data))
		copy(cp, data)
		out[root] = cp
		for r := 0; r < c.w.n; r++ {
			if r == root {
				continue
			}
			m, err := c.recv(r, tagGather)
			if err != nil {
				return nil, err
			}
			out[r] = m.Data
		}
		return out, nil
	}
	c.send(root, tagGather, data)
	return nil, nil
}

func f64ToBytes(v float64) []byte {
	var b [8]byte
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b[:]
}

func f64FromBytes(b []byte) float64 {
	var u uint64
	for i := 0; i < 8 && i < len(b); i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
