package mpi

import (
	"fmt"

	"blobcr/internal/blcr"
	"blobcr/internal/wire"
)

// pendingArena is the process arena under which the checkpoint protocol
// stashes in-flight messages, so a blcr dump captures channel state.
const pendingArena = "__mpi_pending"

// SnapshotWait resolves an initiated disk snapshot to its published version.
// It blocks until the checkpointing proxy's background commit completes.
type SnapshotWait func() (uint64, error)

// CRHooks are the per-rank integration points of the coordinated checkpoint
// protocol — the pieces the paper adds to mpich2.
type CRHooks struct {
	// Process is the rank's blcr process image. When set, in-flight
	// messages drained from the channels are stored into it before
	// SaveState runs, so they are part of the dump. Nil for
	// application-level checkpointing (the application is quiescent at its
	// own checkpoint call and owns its state format).
	Process *blcr.Process
	// SaveState dumps the rank's state into the guest file system: either
	// the application's own writer or a blcr dump.
	SaveState func() error
	// Sync flushes the guest file system to the virtual disk (the sync
	// system call the paper inserts to avoid snapshotting dirty caches).
	Sync func() error
	// Snapshot initiates the disk snapshot through the co-located
	// checkpointing proxy and returns a wait that resolves to the snapshot
	// version once the background commit publishes. The initiation returns
	// as soon as the VM has resumed — only suspend + local capture happen
	// inside it — which is what lets the upload overlap with computation.
	Snapshot func() (SnapshotWait, error)
}

// CheckpointCoordinatedAsync runs the initiation half of the paper's
// coordinated protocol and returns a wait for the disk snapshot version:
//
//  1. drain the communication channels: every rank sends a marker to every
//     other rank and waits for all markers; application messages received
//     meanwhile are captured as channel state;
//  2. dump the process state to the guest file system (SaveState);
//  3. sync the file system (the paper's first extension);
//  4. initiate the disk snapshot via the checkpointing proxy (the second
//     extension) — the VM resumes as soon as its dirty chunks are captured
//     locally, before any byte reaches the repository;
//  5. barrier, then the application resumes; the returned wait resolves the
//     snapshot version once the background upload completes.
//
// Every rank of the world must call this at the same logical point, and
// every rank must eventually resolve the returned wait (it is non-nil even
// when err is non-nil, resolving to the same error) so higher layers can
// run their own collectives after it.
func (c *Comm) CheckpointCoordinatedAsync(h CRHooks) (SnapshotWait, error) {
	w := c.w
	// Step 1: markers out...
	for r := 0; r < w.n; r++ {
		if r == c.rank {
			continue
		}
		w.queues[r][c.rank].push(Message{Src: c.rank, Tag: tagMarker})
	}
	// ...markers in. From this rank's perspective the channels are now
	// drained: everything sent to us before the checkpoint has arrived.
	for r := 0; r < w.n; r++ {
		if r == c.rank {
			continue
		}
		if _, err := w.queues[c.rank][r].pop(tagMarker); err != nil {
			return nil, fmt.Errorf("mpi: checkpoint marker from rank %d: %w", r, err)
		}
	}
	// Capture in-flight application messages as process state. From here
	// on, a local failure must not abandon the collective: every rank
	// reaches the final barrier so the others resume, and the failing rank
	// reports its error (the middleware discards the incomplete global
	// checkpoint).
	pending := c.drainPending()
	var wait SnapshotWait
	var err error
	if h.Process != nil {
		encoded := encodePending(pending)
		copy(h.Process.Alloc(pendingArena, len(encoded)), encoded)
	} else if len(pending) > 0 {
		// Application-level checkpointing requires a quiescent application.
		err = fmt.Errorf("mpi: rank %d has %d undelivered messages at an application-level checkpoint", c.rank, len(pending))
	}

	// Step 2: dump process state.
	if err == nil && h.SaveState != nil {
		if derr := h.SaveState(); derr != nil {
			err = fmt.Errorf("mpi: rank %d state dump: %w", c.rank, derr)
		}
	}
	// Step 3: sync.
	if err == nil && h.Sync != nil {
		if serr := h.Sync(); serr != nil {
			err = fmt.Errorf("mpi: rank %d sync: %w", c.rank, serr)
		}
	}
	// Step 4: initiate the disk snapshot; the VM is back to running when
	// this returns, with the upload in flight.
	if err == nil && h.Snapshot != nil {
		sw, serr := h.Snapshot()
		if serr != nil {
			err = fmt.Errorf("mpi: rank %d snapshot: %w", c.rank, serr)
		} else {
			wait = sw
		}
	}
	// Step 5: all ranks finish before the application resumes.
	c.Barrier()

	// Undelivered messages go back into the queues — execution continues.
	w.InjectPending(c.rank, pending)
	if err != nil {
		ferr := err
		return func() (uint64, error) { return 0, ferr }, err
	}
	if wait == nil {
		return func() (uint64, error) { return 0, nil }, nil
	}
	rank := c.rank
	return func() (uint64, error) {
		v, werr := wait()
		if werr != nil {
			return 0, fmt.Errorf("mpi: rank %d snapshot: %w", rank, werr)
		}
		return v, nil
	}, nil
}

// CheckpointCoordinated is the synchronous protocol: initiation immediately
// followed by the snapshot wait. The VM still resumes before the upload —
// only this rank's control flow blocks until the snapshot publishes.
func (c *Comm) CheckpointCoordinated(h CRHooks) (uint64, error) {
	wait, err := c.CheckpointCoordinatedAsync(h)
	if err != nil {
		return 0, err
	}
	return wait()
}

// drainPending pulls all undelivered application messages destined to this
// rank out of the queues.
func (c *Comm) drainPending() []Message {
	var out []Message
	for src := 0; src < c.w.n; src++ {
		out = append(out, c.w.queues[c.rank][src].drain()...)
	}
	return out
}

// RestorePending re-injects channel state captured in a blcr dump into this
// rank's receive queues. Call after restoring the process on restart.
func (c *Comm) RestorePending(p *blcr.Process) error {
	raw, ok := p.Arena(pendingArena)
	if !ok {
		return nil
	}
	msgs, err := decodePending(raw)
	if err != nil {
		return fmt.Errorf("mpi: rank %d: %w", c.rank, err)
	}
	c.w.InjectPending(c.rank, msgs)
	p.Free(pendingArena)
	return nil
}

func encodePending(msgs []Message) []byte {
	w := wire.NewBuffer(64)
	w.PutUvarint(uint64(len(msgs)))
	for _, m := range msgs {
		w.PutUvarint(uint64(m.Src))
		w.PutUvarint(uint64(m.Tag))
		w.PutBytes(m.Data)
	}
	return w.Bytes()
}

func decodePending(raw []byte) ([]Message, error) {
	r := wire.NewReader(raw)
	n := r.Uvarint()
	if n > 1<<24 {
		return nil, fmt.Errorf("mpi: implausible pending count %d", n)
	}
	msgs := make([]Message, 0, n)
	for i := uint64(0); i < n; i++ {
		m := Message{
			Src:  int(r.Uvarint()),
			Tag:  int(r.Uvarint()),
			Data: r.BytesCopy(),
		}
		msgs = append(msgs, m)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("mpi: decode pending messages: %w", err)
	}
	return msgs, nil
}
