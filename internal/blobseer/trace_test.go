package blobseer

import (
	"context"
	"testing"

	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// TestTracePropagationEveryBatchVerb drives every batched wire verb under
// one distributed trace and asserts each server-side handler span parented
// under the client's matching RPC span — the propagation contract that makes
// cross-process assembly possible. The deployment is traced (one registry
// per service), so the spans are collected exactly as the TRACE wire verb
// would return them.
func TestTracePropagationEveryBatchVerb(t *testing.T) {
	net := transport.NewInProc()
	repo, err := DeployTraced(net, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	clientReg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), clientReg)
	ctx, trace := obs.BeginTrace(ctx)
	ctx, root := obs.StartSpan(ctx, "test/root")

	const cs = 4096
	chunks := make(map[uint64][]byte)
	for i := uint64(0); i < 8; i++ {
		body := make([]byte, cs)
		for j := range body {
			body[j] = byte(i)
		}
		chunks[i] = body
	}

	// Plain path: chunk-put-batch + node-put-batch on write, chunk-get-batch
	// + node-get-batch on read.
	plain := repo.Client()
	plain.Parallelism = 4
	blob, err := plain.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	info, err := plain.WriteVersion(ctx, blob, chunks, 8*cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, 8*cs); err != nil {
		t.Fatal(err)
	}

	// Dedup path: cas-ref-batch (the fingerprint probe) + cas-put-batch (the
	// missing bodies).
	dedup := repo.Client()
	dedup.Dedup = true
	dedup.Parallelism = 4
	dblob, err := dedup.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dedup.WriteVersion(ctx, dblob, chunks, 8*cs); err != nil {
		t.Fatal(err)
	}
	root.End()

	var serverSpans []obs.SpanRecord
	for _, reg := range repo.Registries {
		serverSpans = append(serverSpans, reg.TraceSpans(trace)...)
	}
	clientByID := make(map[uint64]obs.SpanRecord)
	for _, s := range clientReg.TraceSpans(trace) {
		clientByID[s.ID] = s
	}

	for _, verb := range []string{
		"chunk-put-batch", "chunk-get-batch",
		"node-put-batch", "node-get-batch",
		"cas-ref-batch", "cas-put-batch",
	} {
		var handlers []obs.SpanRecord
		for _, s := range serverSpans {
			if s.Name == "handler/"+verb {
				handlers = append(handlers, s)
			}
		}
		if len(handlers) == 0 {
			t.Errorf("%s: no handler span reached any server registry", verb)
			continue
		}
		for _, h := range handlers {
			if h.Trace != trace {
				t.Errorf("%s: handler span carries trace %x, want %x", verb, h.Trace, trace)
			}
			parent, ok := clientByID[h.Parent]
			if !ok {
				t.Errorf("%s: handler parent %x not among the client's spans", verb, h.Parent)
				continue
			}
			if parent.Name != "rpc/"+verb {
				t.Errorf("%s: handler parented under %q, want %q", verb, parent.Name, "rpc/"+verb)
			}
		}
	}
}

// TestRemoteTraceAndFlightVerbs exercises the binary TRACE/FLIGHT siblings
// against a live data provider: the spans its handler recorded come back
// over the wire, and the flight ring answers without a trace id.
func TestRemoteTraceAndFlightVerbs(t *testing.T) {
	net := transport.NewInProc()
	repo, err := DeployTraced(net, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	cl := repo.Client()
	cl.Parallelism = 2
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	ctx, trace := obs.BeginTrace(ctx)
	ctx, root := obs.StartSpan(ctx, "root")
	blob, err := cl.CreateBlob(ctx, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WriteVersion(ctx, blob, map[uint64][]byte{0: make([]byte, 4096)}, 4096); err != nil {
		t.Fatal(err)
	}
	root.End()

	dataAddr := repo.DataAddrs[0]
	spans, err := cl.RemoteTrace(ctx, dataAddr, trace)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range spans {
		if s.Name == "handler/chunk-put-batch" && s.Trace == trace {
			found = true
		}
	}
	if !found {
		t.Errorf("provider's TRACE reply lacks the chunk-put-batch handler span: %+v", spans)
	}
	flight, err := cl.RemoteFlight(ctx, dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(flight) == 0 {
		t.Error("provider's FLIGHT reply empty after handling requests")
	}
}
