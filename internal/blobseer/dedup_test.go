package blobseer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"blobcr/internal/cas"
	"blobcr/internal/transport"
)

// dedupDeploy starts a deployment and returns a dedup-enabled client.
func dedupDeploy(t *testing.T, nMeta, nData int) (*Deployment, *Client) {
	t.Helper()
	d, err := Deploy(transport.NewInProc(), nMeta, nData)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	return d, c
}

func chunkOf(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

// TestDedupSecondCommitShipsNothing is the headline property: committing the
// same chunk content twice — here across two snapshots of one blob — stores
// exactly one body and skips the duplicate's network transfer.
func TestDedupSecondCommitShipsNothing(t *testing.T) {
	const chunk = 4096
	d, c := dedupDeploy(t, 2, 3)
	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	content := chunkOf('x', chunk)

	_, cs1, err := c.WriteVersionStats(ctx, blob, map[uint64][]byte{0: content}, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if cs1.DedupChunks != 0 || cs1.TransferBytes != chunk {
		t.Fatalf("first commit: %+v, want full transfer", cs1)
	}

	// Same content again, at a different chunk index, in a new snapshot.
	_, cs2, err := c.WriteVersionStats(ctx, blob, map[uint64][]byte{1: content}, 2*chunk)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.DedupChunks != 1 || cs2.TransferBytes != 0 {
		t.Fatalf("duplicate commit shipped bytes: %+v", cs2)
	}
	if cs2.LogicalBytes != chunk {
		t.Fatalf("LogicalBytes = %d, want %d", cs2.LogicalBytes, chunk)
	}

	// Exactly one body in the whole repository.
	_, chunks, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 1 {
		t.Fatalf("repository holds %d chunk bodies, want 1", chunks)
	}

	// Both snapshots read back correctly through the shared body.
	for v := uint64(0); v < 2; v++ {
		got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: v}, 0, chunk)
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("version %d read mismatch: %v", v, err)
		}
	}

	st, err := c.CasStats(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cas stats hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.LogicalBytes != 2*chunk || st.PhysicalBytes != chunk {
		t.Errorf("logical/physical = %d/%d, want %d/%d", st.LogicalBytes, st.PhysicalBytes, 2*chunk, chunk)
	}
}

// TestDedupAcrossBlobs: two mirrored devices (two checkpoint images)
// committing identical content share one body.
func TestDedupAcrossBlobs(t *testing.T) {
	const chunk = 2048
	d, c := dedupDeploy(t, 2, 4)
	content := chunkOf('s', chunk)

	var blobs []uint64
	for i := 0; i < 2; i++ {
		blob, err := c.CreateBlob(ctx, chunk)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	_, cs, err := c.WriteVersionStats(ctx, blobs[0], map[uint64][]byte{0: content}, chunk)
	if err != nil || cs.TransferBytes != chunk {
		t.Fatalf("blob A commit: %+v err=%v", cs, err)
	}
	_, cs, err = c.WriteVersionStats(ctx, blobs[1], map[uint64][]byte{0: content}, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if cs.DedupChunks != 1 || cs.TransferBytes != 0 {
		t.Fatalf("blob B duplicate commit shipped bytes: %+v", cs)
	}
	_, chunks, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 1 {
		t.Fatalf("repository holds %d bodies for identical cross-blob content, want 1", chunks)
	}
}

// TestDedupReplicationPlacesPerContent: with replication, all replicas of
// identical content land on the same (rendezvous-chosen) providers, and the
// duplicate commit skips every replica transfer.
func TestDedupReplicationPlacesPerContent(t *testing.T) {
	const chunk = 1024
	d, c := dedupDeploy(t, 2, 5)
	c.Replication = 2
	content := chunkOf('r', chunk)

	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	_, cs, err := c.WriteVersionStats(ctx, blob, map[uint64][]byte{0: content}, chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Both replica bodies cross the network, but the commit's payload is one
	// chunk: LogicalBytes counts once per chunk, independent of replication.
	if cs.TransferBytes != 2*chunk || cs.LogicalBytes != chunk {
		t.Fatalf("first replicated commit: %+v", cs)
	}
	_, cs, err = c.WriteVersionStats(ctx, blob, map[uint64][]byte{1: content}, 2*chunk)
	if err != nil {
		t.Fatal(err)
	}
	if cs.TransferBytes != 0 || cs.DedupChunks != 1 {
		t.Fatalf("replicated duplicate shipped bytes: %+v", cs)
	}
	_, chunks, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 2 { // one body per replica provider
		t.Fatalf("repository holds %d bodies, want 2 (replication)", chunks)
	}
}

// TestRetireReleasesByRefcount: retiring snapshots reclaims exactly the
// superseded chunk writes through reference counts — no repository sweep —
// while the live snapshot stays readable.
func TestRetireReleasesByRefcount(t *testing.T) {
	const chunk = 4096
	const rounds = 6
	d, c := dedupDeploy(t, 2, 3)
	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Each round overwrites chunk 0 with distinct content.
	for v := 0; v < rounds; v++ {
		content := chunkOf(byte('0'+v), chunk)
		if _, err := c.WriteVersion(ctx, blob, map[uint64][]byte{0: content}, chunk); err != nil {
			t.Fatal(err)
		}
	}
	_, chunksBefore, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksBefore != rounds {
		t.Fatalf("stored %d bodies before retire, want %d", chunksBefore, rounds)
	}

	stats, err := c.RetireStats(ctx, blob, rounds-1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReleasedRefs != rounds-1 || stats.ReclaimedChunks != rounds-1 {
		t.Fatalf("retire reclaimed %+v, want %d refs and chunks", stats, rounds-1)
	}
	if stats.ReclaimedBytes != uint64((rounds-1)*chunk) {
		t.Fatalf("ReclaimedBytes = %d, want %d", stats.ReclaimedBytes, (rounds-1)*chunk)
	}
	_, chunksAfter, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksAfter != 1 {
		t.Fatalf("%d bodies after retire, want 1", chunksAfter)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: rounds - 1}, 0, chunk)
	if err != nil || !bytes.Equal(got, chunkOf(byte('0'+rounds-1), chunk)) {
		t.Fatalf("live snapshot unreadable after refcount retire: %v", err)
	}

	// Retiring again releases nothing new (exactly-once release).
	stats, err = c.RetireStats(ctx, blob, rounds-1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReleasedRefs != 0 {
		t.Fatalf("second retire released %d refs, want 0", stats.ReleasedRefs)
	}
}

// TestSharedContentSurvivesOtherBlobsRetire: blob B references content blob A
// wrote; retiring A's snapshot must decrement, not delete, the shared body.
func TestSharedContentSurvivesOtherBlobsRetire(t *testing.T) {
	const chunk = 2048
	_, c := dedupDeploy(t, 2, 3)
	shared := chunkOf('S', chunk)

	a, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteVersion(ctx, a, map[uint64][]byte{0: shared}, chunk); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteVersion(ctx, b, map[uint64][]byte{0: shared}, chunk); err != nil {
		t.Fatal(err)
	}
	// A supersedes its write, then retires it.
	if _, err := c.WriteVersion(ctx, a, map[uint64][]byte{0: chunkOf('T', chunk)}, chunk); err != nil {
		t.Fatal(err)
	}
	stats, err := c.RetireStats(ctx, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReleasedRefs != 1 || stats.ReclaimedChunks != 0 {
		t.Fatalf("retire of shared content: %+v, want 1 release, 0 reclaims", stats)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: b, Version: 0}, 0, chunk)
	if err != nil || !bytes.Equal(got, shared) {
		t.Fatalf("blob B lost shared content after A's retire: %v", err)
	}
}

// TestClonePinPreventsRelease: content shared with a clone is never released
// by the origin's retire, so the clone stays readable.
func TestClonePinPreventsRelease(t *testing.T) {
	const chunk = 4096
	_, c := dedupDeploy(t, 2, 3)
	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	orig := chunkOf('c', chunk)
	if _, err := c.WriteVersion(ctx, blob, map[uint64][]byte{0: orig}, chunk); err != nil {
		t.Fatal(err)
	}
	clone, err := c.Clone(ctx, SnapshotRef{Blob: blob, Version: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Supersede and retire the cloned-from version in the origin.
	if _, err := c.WriteVersion(ctx, blob, map[uint64][]byte{0: chunkOf('d', chunk)}, chunk); err != nil {
		t.Fatal(err)
	}
	stats, err := c.RetireStats(ctx, blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReleasedRefs != 0 {
		t.Fatalf("retire released %d refs pinned by a clone", stats.ReleasedRefs)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: clone, Version: 0}, 0, chunk)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("clone lost pinned content: %v", err)
	}
}

// TestMarkSweepGCComposesWithDedup: the full mark-and-sweep fallback still
// works over content-addressed chunks — it never touches live CAS bodies,
// and it collects references the refcount path leaked (here: a manually
// leaked extra reference keeping a dead body alive past its retire).
func TestMarkSweepGCComposesWithDedup(t *testing.T) {
	const chunk = 4096
	d, c := dedupDeploy(t, 2, 3)
	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if _, err := c.WriteVersion(ctx, blob, map[uint64][]byte{0: chunkOf(byte('a'+v), chunk)}, chunk); err != nil {
			t.Fatal(err)
		}
	}
	providers, err := c.Providers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Leak one extra reference on version 2's content, the way a crashed
	// commit would: refcount retire alone can no longer reclaim that body.
	leakedFP := cas.Sum(chunkOf('c', chunk))
	leakedAddr := casPlacementRanked(leakedFP, providers)[0]
	held, err := c.casRef(ctx, leakedAddr, leakedFP)
	if err != nil || !held {
		t.Fatalf("leak ref: held=%v err=%v", held, err)
	}

	stats, err := c.RetireStats(ctx, blob, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReclaimedChunks != 2 {
		t.Fatalf("refcount retire reclaimed %d chunks, want 2 (one leaked)", stats.ReclaimedChunks)
	}
	_, chunks, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 2 { // live body + leaked body
		t.Fatalf("%d bodies before sweep, want 2", chunks)
	}

	// The sweep collects the leaked body (unreachable from live roots) and
	// leaves the live one alone.
	gcStats, err := c.GC(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if gcStats.DeletedChunks != 1 {
		t.Fatalf("sweep deleted %d chunks, want 1 (the leaked body)", gcStats.DeletedChunks)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: 3}, 0, chunk)
	if err != nil || !bytes.Equal(got, chunkOf('d', chunk)) {
		t.Fatalf("live version unreadable after sweep: %v", err)
	}
	// The sweep dropped the dedup index entry too: re-committing the swept
	// content stores a fresh body rather than resurrecting a stale count.
	_, cs, err := c.WriteVersionStats(ctx, blob, map[uint64][]byte{0: chunkOf('c', chunk)}, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if cs.TransferBytes != chunk {
		t.Fatalf("re-commit after sweep shipped %d bytes, want %d", cs.TransferBytes, chunk)
	}
}

// TestDedupCommitRetireRaceStress races parallel dedup commits sharing a
// small content pool against concurrent snapshot retires (refcount GC),
// in the style of internal/core/stress_test.go. A chunk referenced by any
// live snapshot must never be reclaimed: every writer re-reads its latest
// snapshot in full after each commit. Run with -race.
func TestDedupCommitRetireRaceStress(t *testing.T) {
	const (
		chunk   = 1024
		writers = 6
		rounds  = 25
		stripes = 4 // chunks per commit
		pool    = 3 // distinct contents — heavy cross-writer sharing
	)
	_, c := dedupDeploy(t, 3, 4)

	contents := make([][]byte, pool)
	for i := range contents {
		contents[i] = chunkOf(byte('A'+i), chunk)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One checkpoint image per writer, as in the checkpoint workload.
			blob, err := c.CreateBlob(ctx, chunk)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				writes := make(map[uint64][]byte, stripes)
				want := make([]byte, 0, stripes*chunk)
				for s := 0; s < stripes; s++ {
					body := contents[(w+r+s)%pool]
					writes[uint64(s)] = body
					want = append(want, body...)
				}
				info, _, err := c.WriteVersionStats(ctx, blob, writes, stripes*chunk)
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: commit: %w", w, r, err)
					return
				}
				// The snapshot just published must be fully readable even
				// while other writers retire snapshots sharing its chunks.
				got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, stripes*chunk)
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: read: %w", w, r, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("writer %d round %d: snapshot corrupted", w, r)
					return
				}
				// Retire everything older than the snapshot just taken.
				if _, err := c.RetireStats(ctx, blob, info.Version); err != nil {
					errs <- fmt.Errorf("writer %d round %d: retire: %w", w, r, err)
					return
				}
			}
			// Final snapshot still intact after all retires settle.
			info, _, err := c.Latest(ctx, blob)
			if err != nil {
				errs <- err
				return
			}
			if _, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, stripes*chunk); err != nil {
				errs <- fmt.Errorf("writer %d: final snapshot lost: %w", w, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
