package blobseer

import "blobcr/internal/transport"

// opNames maps every BlobSeer wire op code to a stable metric-friendly
// verb name. The ranges mirror protocol.go: version manager (1..), provider
// manager (32..), data providers (64..), metadata providers (96..).
var opNames = map[byte]string{
	opCreate:     "create",
	opTicket:     "ticket",
	opCommit:     "commit",
	opAbort:      "abort",
	opGetVersion: "get-version",
	opLatest:     "latest",
	opClone:      "clone",
	opListLive:   "list-live",
	opRetire:     "retire",
	opListBlobs:  "list-blobs",
	opRelocate:   "relocate",

	opRegister:       "register",
	opPlacement:      "placement",
	opProviders:      "providers",
	opUnregister:     "unregister",
	opMembership:     "membership",
	opDrain:          "drain",
	opRetireProvider: "retire-provider",

	opChunkPut:      "chunk-put",
	opChunkGet:      "chunk-get",
	opChunkDelete:   "chunk-delete",
	opChunkList:     "chunk-list",
	opChunkUsage:    "chunk-usage",
	opChunkHas:      "chunk-has",
	opCasRef:        "cas-ref",
	opCasPut:        "cas-put",
	opCasRelease:    "cas-release",
	opCasStats:      "cas-stats",
	opChunkPutBatch: "chunk-put-batch",
	opChunkGetBatch: "chunk-get-batch",
	opCasRefBatch:   "cas-ref-batch",
	opCasPutBatch:   "cas-put-batch",
	opCasReleaseN:   "cas-release-n",
	opStoreStats:    "store-stats",
	opStoreCompact:  "store-compact",

	opNodePut:      "node-put",
	opNodeGet:      "node-get",
	opNodeList:     "node-list",
	opNodeDelete:   "node-delete",
	opNodeUsage:    "node-usage",
	opNodePutBatch: "node-put-batch",
	opNodeGetBatch: "node-get-batch",

	opTraceGet:   "trace-get",
	opFlightGet:  "flight-get",
	opHistoryGet: "history-get",
	opMetricsGet: "metrics-get",
}

// OpName returns the verb name of a BlobSeer op code, or "" when the byte
// is not a known op.
func OpName(op byte) string { return opNames[op] }

// VerbName maps a request frame to its operation name for the transport
// Meter: the REST-ful text protocols (proxy, supervisor, repair) are named
// by their first command word, BlobSeer binary frames by their leading op
// byte. Text is tried first because the data-provider op range (64..)
// collides with ASCII capitals — "CHECKPOINT..." leads with 'C' (67, also
// opChunkList); a genuine command word (≥ 3 capitals then a separator)
// cannot be confused with an op byte followed by wire-encoded lengths.
// Use with transport.WithMeter.
func VerbName(req []byte) string {
	if len(req) == 0 {
		return ""
	}
	if word := transport.TextVerb(req); len(word) >= 3 {
		return word
	}
	return opNames[req[0]]
}
