package blobseer

import (
	"context"
	"testing"
	"time"

	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// TestRemoteHistoryAndMetricsOps exercises the binary HISTORY/METRICS
// siblings against an observed deployment's data provider: a ring-less
// service answers HISTORY with an error, an attached ring serves windowed
// deltas over the wire, and RemoteMetrics round-trips the service's own
// exposition.
func TestRemoteHistoryAndMetricsOps(t *testing.T) {
	net := transport.NewInProc()
	repo, err := DeployObserved(net, 1, 1, MemStores)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ctx := context.Background()
	cl := repo.Client()
	dataAddr := repo.DataAddrs[0]
	reg := repo.Registries[dataAddr]
	if reg == nil {
		t.Fatal("observed deployment lacks a per-service registry for its data provider")
	}

	if _, err := cl.RemoteHistory(ctx, dataAddr, time.Minute); err == nil {
		t.Fatal("HISTORY against a ring-less service accepted")
	}

	h := reg.StartHistory(0, 8)
	reg.Counter("demo_total").Add(2)
	h.Sample()
	reg.Counter("demo_total").Add(5)
	h.Sample()

	rep, err := cl.RemoteHistory(ctx, dataAddr, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Window != time.Minute || rep.Samples != 2 {
		t.Errorf("window report header: %+v", rep)
	}
	if st := rep.Find("demo_total"); st == nil || st.Delta != 5 {
		t.Errorf("windowed delta over the wire: %+v", st)
	}
	if _, err := cl.RemoteHistory(ctx, dataAddr, 0); err == nil {
		t.Error("zero window accepted")
	}

	points, err := cl.RemoteMetrics(ctx, dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	if p := obs.Find(points, "demo_total"); p == nil || p.Value != 7 {
		t.Errorf("RemoteMetrics exposition: %+v", p)
	}

	// A dead service is an error, not an empty report.
	net.Partition(dataAddr)
	if _, err := cl.RemoteHistory(ctx, dataAddr, time.Minute); err == nil {
		t.Error("HISTORY against a partitioned service accepted")
	}
	if _, err := cl.RemoteMetrics(ctx, dataAddr); err == nil {
		t.Error("METRICS against a partitioned service accepted")
	}
}
