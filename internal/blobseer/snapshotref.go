package blobseer

import (
	"errors"
	"fmt"

	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// SnapshotRef names one published snapshot: a (blob, version) pair. It is
// the single currency for snapshot identity across every layer — the
// repository client, the mirroring module, the checkpointing proxy, the
// cloud middleware and the BlobCR core all speak SnapshotRef instead of bare
// uint64 pairs.
type SnapshotRef struct {
	Blob    uint64
	Version uint64
}

// String renders the ref as "blob@vN".
func (r SnapshotRef) String() string { return fmt.Sprintf("%d@v%d", r.Blob, r.Version) }

// IsZero reports whether the ref is the zero value (blob ids start at 1, so
// the zero ref never names a real snapshot).
func (r SnapshotRef) IsZero() bool { return r == SnapshotRef{} }

// Marshal encodes the ref for transmission (16 bytes, little-endian).
func (r SnapshotRef) Marshal() []byte {
	w := wire.NewBuffer(16)
	w.PutU64(r.Blob)
	w.PutU64(r.Version)
	return w.Bytes()
}

// UnmarshalSnapshotRef decodes a ref produced by Marshal.
func UnmarshalSnapshotRef(raw []byte) (SnapshotRef, error) {
	rd := wire.NewReader(raw)
	ref := SnapshotRef{Blob: rd.U64(), Version: rd.U64()}
	if err := rd.Err(); err != nil {
		return SnapshotRef{}, fmt.Errorf("blobseer: decode snapshot ref: %w", err)
	}
	return ref, nil
}

// IsNotFound reports whether err is any not-found condition — a local
// sentinel or a remote error that carried the mark across the wire.
func IsNotFound(err error) bool { return errors.Is(err, transport.ErrNotFound) }
