package blobseer

import (
	"context"
	"fmt"
	"path/filepath"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
	"blobcr/internal/seglog"
	"blobcr/internal/transport"
)

// StoreFactory builds one data provider's chunk store. i is the provider's
// ordinal within the deployment (disk-backed factories derive a directory
// from it). The returned store is wrapped in the CAS dedup layer by the
// deployment; stores owning resources should implement Close() error, which
// Deployment.Close calls.
type StoreFactory func(i int) (chunkstore.Store, error)

// MemStores is the default StoreFactory: a fresh in-memory store per
// provider (tests, examples, simulation).
func MemStores(int) (chunkstore.Store, error) { return chunkstore.NewMem(), nil }

// SeglogStores returns a StoreFactory that roots one segment log per
// provider under dir (the disklog bench and disk-backed deployments).
func SeglogStores(dir string, opts seglog.Options) StoreFactory {
	return func(i int) (chunkstore.Store, error) {
		return seglog.Open(filepath.Join(dir, fmt.Sprintf("provider-%d", i)), opts)
	}
}

// DiskStores returns a StoreFactory that roots one file-per-chunk store per
// provider under dir.
func DiskStores(dir string) StoreFactory {
	return func(i int) (chunkstore.Store, error) {
		return chunkstore.NewDisk(filepath.Join(dir, fmt.Sprintf("provider-%d", i)))
	}
}

// Deployment is a running BlobSeer service: one version manager, one
// provider manager, nMeta metadata providers and nData data providers, all
// bound on the given Network. It mirrors the paper's setup (Section 4.2:
// one version manager, one provider manager, 20 metadata providers, one data
// provider per compute node).
type Deployment struct {
	VMAddr    string
	PMAddr    string
	MetaAddrs []string
	DataAddrs []string

	// Registries maps each service address to its own obs registry when the
	// deployment was started with DeployTraced; nil otherwise (every service
	// records into obs.Default, as a plain in-process deployment does).
	Registries map[string]*obs.Registry

	dataProviders []*DataProvider
	servers       []transport.Server
	net           transport.Network
	newStore      StoreFactory
	nextStore     int
	traced        bool
}

// Deploy starts a full BlobSeer deployment on n with nMeta metadata
// providers and nData in-memory data providers. Addresses are auto-assigned.
func Deploy(n transport.Network, nMeta, nData int) (*Deployment, error) {
	return DeployWith(n, nMeta, nData, MemStores)
}

// DeployWith is Deploy with a caller-chosen chunk store backend per data
// provider.
func DeployWith(n transport.Network, nMeta, nData int, newStore StoreFactory) (*Deployment, error) {
	return deployServices(n, nMeta, nData, newStore, false)
}

// DeployTraced is Deploy with one fresh obs registry per service — the
// in-process analogue of one process per service. Each server's handler
// spans, per-trace span store and flight ring are isolated in its own
// registry (exposed via Registries), so assembling a cross-process trace
// exercises the same per-address span collection a TCP deployment needs.
func DeployTraced(n transport.Network, nMeta, nData int) (*Deployment, error) {
	return deployServices(n, nMeta, nData, MemStores, true)
}

// DeployObserved is DeployWith with one fresh obs registry per service (see
// DeployTraced) — the shape a federating supervisor expects: each data
// provider's registry is its own scrape target, so the fleet view keeps
// per-node series apart instead of merging them into obs.Default.
func DeployObserved(n transport.Network, nMeta, nData int, newStore StoreFactory) (*Deployment, error) {
	return deployServices(n, nMeta, nData, newStore, true)
}

func deployServices(n transport.Network, nMeta, nData int, newStore StoreFactory, traced bool) (*Deployment, error) {
	if nMeta < 1 || nData < 1 {
		return nil, fmt.Errorf("blobseer: deployment needs at least one metadata and one data provider (got %d, %d)", nMeta, nData)
	}
	d := &Deployment{net: n, newStore: newStore, traced: traced}
	if traced {
		d.Registries = make(map[string]*obs.Registry)
	}
	fail := func(err error) (*Deployment, error) {
		d.Close()
		return nil, err
	}
	serverReg := func() *obs.Registry {
		if !traced {
			return nil // servers fall back to obs.Default
		}
		return obs.NewRegistry()
	}

	vm := NewVersionManager()
	vm.Obs = serverReg()
	srv, err := vm.Serve(n, "")
	if err != nil {
		return fail(err)
	}
	d.servers = append(d.servers, srv)
	d.VMAddr = srv.Addr()
	d.recordRegistry(srv.Addr(), vm.Obs)

	pm := NewProviderManager()
	pm.Obs = serverReg()
	srv, err = pm.Serve(n, "")
	if err != nil {
		return fail(err)
	}
	d.servers = append(d.servers, srv)
	d.PMAddr = srv.Addr()
	d.recordRegistry(srv.Addr(), pm.Obs)

	for i := 0; i < nMeta; i++ {
		mp := NewMetadataProvider()
		mp.Obs = serverReg()
		srv, err := mp.Serve(n, "")
		if err != nil {
			return fail(err)
		}
		d.servers = append(d.servers, srv)
		d.MetaAddrs = append(d.MetaAddrs, srv.Addr())
		d.recordRegistry(srv.Addr(), mp.Obs)
	}

	for i := 0; i < nData; i++ {
		if _, err := d.AddDataProvider(context.Background()); err != nil {
			return fail(err)
		}
	}
	return d, nil
}

func (d *Deployment) recordRegistry(addr string, reg *obs.Registry) {
	if d.Registries != nil && reg != nil {
		d.Registries[addr] = reg
	}
}

// AddDataProvider starts one more CAS-capable data provider (backed by the
// deployment's store factory) and JOINs it to the provider manager: from the
// moment the join registers, new chunk placements may land on it — the
// elasticity the repair plane relies on for spare storage capacity after a
// provider loss. Returns the new provider's address.
func (d *Deployment) AddDataProvider(ctx context.Context) (string, error) {
	backend, err := d.newStore(d.nextStore)
	if err != nil {
		return "", err
	}
	d.nextStore++
	// Every provider is CAS-capable: a cas.Store implements the plain
	// chunkstore interface, so non-dedup clients see no difference.
	store, err := cas.NewStore(backend)
	if err != nil {
		closeStore(backend)
		return "", err
	}
	dp := NewDataProvider(store)
	if d.traced {
		dp.Obs = obs.NewRegistry()
	}
	srv, err := dp.Serve(d.net, "")
	if err != nil {
		closeStore(store)
		return "", err
	}
	if err := d.Client().RegisterProvider(ctx, srv.Addr()); err != nil {
		srv.Close()
		closeStore(store)
		return "", err
	}
	d.servers = append(d.servers, srv)
	d.dataProviders = append(d.dataProviders, dp)
	d.DataAddrs = append(d.DataAddrs, srv.Addr())
	d.recordRegistry(srv.Addr(), dp.Obs)
	return srv.Addr(), nil
}

// Client returns a client bound to this deployment with replication 1.
func (d *Deployment) Client() *Client {
	return &Client{
		Net:       d.net,
		VMAddr:    d.VMAddr,
		PMAddr:    d.PMAddr,
		MetaAddrs: append([]string(nil), d.MetaAddrs...),
	}
}

// DataProviderStores exposes the chunk stores for inspection
// (space-accounting tests and the storage-utilization experiments).
func (d *Deployment) DataProviderStores() []chunkstore.Store {
	out := make([]chunkstore.Store, len(d.dataProviders))
	for i, dp := range d.dataProviders {
		out[i] = dp.Store()
	}
	return out
}

// Close stops all services and closes the provider chunk stores (flushing
// and releasing segment logs).
func (d *Deployment) Close() {
	for _, s := range d.servers {
		s.Close()
	}
	d.servers = nil
	for _, dp := range d.dataProviders {
		closeStore(dp.Store())
	}
	d.dataProviders = nil
}

// closeStore releases a store's resources if it holds any.
func closeStore(s chunkstore.Store) {
	if c, ok := s.(interface{ Close() error }); ok {
		c.Close() //nolint:errcheck // release path
	}
}
