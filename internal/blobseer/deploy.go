package blobseer

import (
	"context"
	"fmt"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/transport"
)

// Deployment is a running BlobSeer service: one version manager, one
// provider manager, nMeta metadata providers and nData data providers, all
// bound on the given Network. It mirrors the paper's setup (Section 4.2:
// one version manager, one provider manager, 20 metadata providers, one data
// provider per compute node).
type Deployment struct {
	VMAddr    string
	PMAddr    string
	MetaAddrs []string
	DataAddrs []string

	dataProviders []*DataProvider
	servers       []transport.Server
	net           transport.Network
}

// Deploy starts a full BlobSeer deployment on n with nMeta metadata
// providers and nData in-memory data providers. Addresses are auto-assigned.
func Deploy(n transport.Network, nMeta, nData int) (*Deployment, error) {
	if nMeta < 1 || nData < 1 {
		return nil, fmt.Errorf("blobseer: deployment needs at least one metadata and one data provider (got %d, %d)", nMeta, nData)
	}
	d := &Deployment{net: n}
	fail := func(err error) (*Deployment, error) {
		d.Close()
		return nil, err
	}

	vm := NewVersionManager()
	srv, err := vm.Serve(n, "")
	if err != nil {
		return fail(err)
	}
	d.servers = append(d.servers, srv)
	d.VMAddr = srv.Addr()

	pm := NewProviderManager()
	srv, err = pm.Serve(n, "")
	if err != nil {
		return fail(err)
	}
	d.servers = append(d.servers, srv)
	d.PMAddr = srv.Addr()

	for i := 0; i < nMeta; i++ {
		mp := NewMetadataProvider()
		srv, err := mp.Serve(n, "")
		if err != nil {
			return fail(err)
		}
		d.servers = append(d.servers, srv)
		d.MetaAddrs = append(d.MetaAddrs, srv.Addr())
	}

	client := d.Client()
	for i := 0; i < nData; i++ {
		// Every provider is CAS-capable: a cas.Store implements the plain
		// chunkstore interface, so non-dedup clients see no difference.
		dp := NewDataProvider(cas.NewMem())
		srv, err := dp.Serve(n, "")
		if err != nil {
			return fail(err)
		}
		d.servers = append(d.servers, srv)
		d.dataProviders = append(d.dataProviders, dp)
		d.DataAddrs = append(d.DataAddrs, srv.Addr())
		if err := client.RegisterProvider(context.Background(), srv.Addr()); err != nil {
			return fail(err)
		}
	}
	return d, nil
}

// AddDataProvider starts one more CAS-capable in-memory data provider and
// JOINs it to the provider manager: from the moment the join registers, new
// chunk placements may land on it — the elasticity the repair plane relies
// on for spare storage capacity after a provider loss. Returns the new
// provider's address.
func (d *Deployment) AddDataProvider(ctx context.Context) (string, error) {
	dp := NewDataProvider(cas.NewMem())
	srv, err := dp.Serve(d.net, "")
	if err != nil {
		return "", err
	}
	if err := d.Client().RegisterProvider(ctx, srv.Addr()); err != nil {
		srv.Close()
		return "", err
	}
	d.servers = append(d.servers, srv)
	d.dataProviders = append(d.dataProviders, dp)
	d.DataAddrs = append(d.DataAddrs, srv.Addr())
	return srv.Addr(), nil
}

// Client returns a client bound to this deployment with replication 1.
func (d *Deployment) Client() *Client {
	return &Client{
		Net:       d.net,
		VMAddr:    d.VMAddr,
		PMAddr:    d.PMAddr,
		MetaAddrs: append([]string(nil), d.MetaAddrs...),
	}
}

// DataProviderStores exposes the in-memory chunk stores for inspection
// (space-accounting tests and the storage-utilization experiments).
func (d *Deployment) DataProviderStores() []chunkstore.Store {
	out := make([]chunkstore.Store, len(d.dataProviders))
	for i, dp := range d.dataProviders {
		out[i] = dp.Store()
	}
	return out
}

// Close stops all services.
func (d *Deployment) Close() {
	for _, s := range d.servers {
		s.Close()
	}
	d.servers = nil
}
