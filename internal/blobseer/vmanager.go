package blobseer

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// ErrVersionNotFound is returned for lookups of unpublished versions.
var ErrVersionNotFound = errors.New("blobseer: version not found")

// ErrBlobNotFound is returned for operations on unknown blobs.
var ErrBlobNotFound = errors.New("blobseer: blob not found")

// blobState is the version manager's record of one BLOB.
type blobState struct {
	id        uint64
	chunkSize uint64
	versions  []VersionInfo           // published, dense, versions[i].Version == i
	nextTkt   uint64                  // next version number to hand out
	nextChunk uint64                  // next chunk ID to hand out
	pending   map[uint64]*VersionInfo // committed out of order, awaiting predecessors
	retired   uint64                  // versions < retired are eligible for GC
}

// VersionManager serializes version publication and stores per-version
// descriptors. It is the only sequential point of the system, and it handles
// only small metadata records, exactly as in BlobSeer's design.
type VersionManager struct {
	mu       sync.Mutex
	blobs    map[uint64]*blobState
	nextBlob uint64
}

// NewVersionManager returns an empty version manager.
func NewVersionManager() *VersionManager {
	return &VersionManager{blobs: make(map[uint64]*blobState), nextBlob: 1}
}

// Serve binds the version manager to addr on n.
func (vm *VersionManager) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, vm.handle)
}

func (vm *VersionManager) handle(req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := int(r.U8())
	if err := r.Err(); err != nil {
		return nil, err
	}
	vm.mu.Lock()
	defer vm.mu.Unlock()
	w := wire.NewBuffer(64)
	switch op {
	case opCreate:
		chunkSize := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		if chunkSize == 0 {
			return nil, errors.New("blobseer: chunk size must be positive")
		}
		id := vm.nextBlob
		vm.nextBlob++
		vm.blobs[id] = &blobState{id: id, chunkSize: chunkSize, pending: make(map[uint64]*VersionInfo)}
		w.PutU64(id)

	case opTicket:
		blob := r.U64()
		nChunks := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		version := b.nextTkt
		b.nextTkt++
		first := b.nextChunk
		b.nextChunk += nChunks
		w.PutU64(version)
		w.PutU64(first)

	case opCommit:
		blob := r.U64()
		info := getVersionInfo(r)
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		if info.Version >= b.nextTkt {
			return nil, fmt.Errorf("blobseer: commit of unticketed version %d", info.Version)
		}
		if info.Version < uint64(len(b.versions)) {
			return nil, fmt.Errorf("blobseer: version %d already published", info.Version)
		}
		cp := info
		b.pending[info.Version] = &cp
		// Publish in order: drain the pending queue while the next expected
		// version is present. Commits arriving out of ticket order wait.
		for {
			next, ok := b.pending[uint64(len(b.versions))]
			if !ok {
				break
			}
			delete(b.pending, next.Version)
			b.versions = append(b.versions, *next)
		}
		w.PutU64(uint64(len(b.versions))) // published horizon

	case opAbort:
		blob := r.U64()
		version := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		// An aborted ticket publishes the predecessor's state under the
		// reserved number so later versions are not blocked forever.
		if version >= uint64(len(b.versions)) {
			var prev VersionInfo
			if len(b.versions) > 0 {
				prev = b.versions[len(b.versions)-1]
			}
			prev.Version = version
			cp := prev
			b.pending[version] = &cp
			for {
				next, ok := b.pending[uint64(len(b.versions))]
				if !ok {
					break
				}
				delete(b.pending, next.Version)
				b.versions = append(b.versions, *next)
			}
		}

	case opGetVersion:
		blob := r.U64()
		version := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		if version >= uint64(len(b.versions)) {
			return nil, fmt.Errorf("%w: blob %d version %d", ErrVersionNotFound, blob, version)
		}
		putVersionInfo(w, b.versions[version])
		w.PutU64(b.chunkSize)

	case opLatest:
		blob := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		if len(b.versions) == 0 {
			return nil, fmt.Errorf("%w: blob %d has no versions", ErrVersionNotFound, blob)
		}
		putVersionInfo(w, b.versions[len(b.versions)-1])
		w.PutU64(b.chunkSize)

	case opClone:
		srcBlob := r.U64()
		srcVersion := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		src, ok := vm.blobs[srcBlob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, srcBlob)
		}
		if srcVersion >= uint64(len(src.versions)) {
			return nil, fmt.Errorf("%w: blob %d version %d", ErrVersionNotFound, srcBlob, srcVersion)
		}
		id := vm.nextBlob
		vm.nextBlob++
		srcInfo := src.versions[srcVersion]
		clone := &blobState{
			id:        id,
			chunkSize: src.chunkSize,
			pending:   make(map[uint64]*VersionInfo),
			nextTkt:   1,
			// Chunk IDs are namespaced by the writing blob, so the clone can
			// start from zero without colliding with the origin's chunks.
		}
		clone.versions = []VersionInfo{{
			Version: 0,
			Size:    srcInfo.Size,
			Span:    srcInfo.Span,
			Root:    srcInfo.Root,
		}}
		vm.blobs[id] = clone
		w.PutU64(id)

	case opListLive:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		// Deterministic order for tests: sort by blob id.
		ids := make([]uint64, 0, len(vm.blobs))
		for id := range vm.blobs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var entries []VersionInfo
		var blobsOf []uint64
		var spans []uint64
		for _, id := range ids {
			b := vm.blobs[id]
			for _, v := range b.versions {
				if v.Version < b.retired {
					continue
				}
				entries = append(entries, v)
				blobsOf = append(blobsOf, id)
				spans = append(spans, b.chunkSize)
			}
		}
		w.PutUvarint(uint64(len(entries)))
		for i, v := range entries {
			w.PutU64(blobsOf[i])
			putVersionInfo(w, v)
			w.PutU64(spans[i])
		}

	case opRetire:
		blob := r.U64()
		before := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		if before > uint64(len(b.versions)) {
			before = uint64(len(b.versions))
		}
		if before > b.retired {
			b.retired = before
		}
		w.PutU64(b.retired)

	case opListBlobs:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		ids := make([]uint64, 0, len(vm.blobs))
		for id := range vm.blobs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.PutUvarint(uint64(len(ids)))
		for _, id := range ids {
			w.PutU64(id)
			w.PutU64(vm.blobs[id].chunkSize)
			w.PutU64(uint64(len(vm.blobs[id].versions)))
		}

	default:
		return nil, fmt.Errorf("blobseer: version manager: unknown op %d", op)
	}
	return w.Bytes(), nil
}
