package blobseer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"blobcr/internal/cas"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// ErrVersionNotFound is returned for lookups of unpublished versions. It
// satisfies errors.Is(err, transport.ErrNotFound), so the condition survives
// the wire without string matching.
var ErrVersionNotFound error = transport.NotFoundError("blobseer: version not found")

// ErrBlobNotFound is returned for operations on unknown blobs. Like
// ErrVersionNotFound it is marked as a transport-level not-found condition.
var ErrBlobNotFound error = transport.NotFoundError("blobseer: blob not found")

// blobState is the version manager's record of one BLOB.
type blobState struct {
	id        uint64
	chunkSize uint64
	versions  []VersionInfo           // published, dense, versions[i].Version == i
	nextTkt   uint64                  // next version number to hand out
	nextChunk uint64                  // next chunk ID to hand out
	pending   map[uint64]*VersionInfo // committed out of order, awaiting predecessors
	retired   uint64                  // versions < retired are eligible for GC

	// Content-addressed bookkeeping (dedup commits only). Manifests arrive
	// with opCommit and are applied in publish order: each write event at a
	// chunk index supersedes the previous event at the same index. A
	// superseded event's content is visible in versions [event, supersededAt),
	// so once `retired` reaches supersededAt the event's references can be
	// released — this is what makes Retire O(retired chunks).
	manifests  map[uint64][]manifestEntry // committed, awaiting publication
	lastWrite  map[uint64]writeEvent      // chunk index -> latest published write
	superseded []supersededEvent          // released (returned) by opRetire
	pins       []uint64                   // versions cloned from; their content is shared forever
}

// writeEvent is one published chunk write.
type writeEvent struct {
	version   uint64
	fp        cas.Fingerprint
	providers []string
}

// supersededEvent is a write whose index was overwritten at supersededAt.
type supersededEvent struct {
	writeEvent
	supersededAt uint64
}

// applyManifestLocked folds version v's manifest (if any) into the supersede
// tracking. Called exactly once per version, in publish order.
func (b *blobState) applyManifestLocked(v uint64) {
	m, ok := b.manifests[v]
	if !ok {
		return
	}
	delete(b.manifests, v)
	for _, e := range m {
		if prev, ok := b.lastWrite[e.index]; ok {
			b.superseded = append(b.superseded, supersededEvent{writeEvent: prev, supersededAt: v})
		}
		b.lastWrite[e.index] = writeEvent{version: v, fp: e.fp, providers: e.providers}
	}
}

// pinnedIn reports whether any cloned-from version lies in [from, until):
// the clone shares the content visible there, so it must never be released.
func (b *blobState) pinnedIn(from, until uint64) bool {
	for _, p := range b.pins {
		if p >= from && p < until {
			return true
		}
	}
	return false
}

// relocateLocked counts — and with apply, rewrites — the provider entries of
// every write event carrying one of the relocations' fingerprints: each
// occurrence of From on such an event becomes To. Events are scanned in all
// three stores (published lastWrite, superseded-awaiting-release, and
// committed-but-unpublished manifests), so a repair that moves a replica
// redirects exactly the releases a later Retire will issue. Returns the
// occurrence count per relocation, aligned with the input. Relocations must
// name distinct (FP, From) pairs; a duplicate pair counts on the last entry.
// Caller holds vm.mu (via handle).
func (vm *VersionManager) relocateLocked(apply bool, relocs []Relocation) []uint64 {
	counts := make([]uint64, len(relocs))
	type fromKey struct {
		fp   cas.Fingerprint
		from string
	}
	byKey := make(map[fromKey]int, len(relocs))
	for i, rl := range relocs {
		byKey[fromKey{fp: rl.FP, from: rl.From}] = i
	}
	visit := func(fp cas.Fingerprint, providers []string) {
		for j, p := range providers {
			i, ok := byKey[fromKey{fp: fp, from: p}]
			if !ok {
				continue
			}
			counts[i]++
			if apply {
				providers[j] = relocs[i].To
			}
		}
	}
	for _, b := range vm.blobs {
		for _, ev := range b.lastWrite {
			visit(ev.fp, ev.providers)
		}
		for _, ev := range b.superseded {
			visit(ev.fp, ev.providers)
		}
		for _, m := range b.manifests {
			for _, e := range m {
				visit(e.fp, e.providers)
			}
		}
	}
	return counts
}

// VersionManager serializes version publication and stores per-version
// descriptors. It is the only sequential point of the system, and it handles
// only small metadata records, exactly as in BlobSeer's design.
type VersionManager struct {
	// Obs receives the manager's handler spans and serves its TRACE/FLIGHT
	// introspection ops; nil means obs.Default. Set before Serve.
	Obs *obs.Registry

	mu       sync.Mutex
	blobs    map[uint64]*blobState
	nextBlob uint64
}

func (vm *VersionManager) registry() *obs.Registry {
	if vm.Obs != nil {
		return vm.Obs
	}
	return obs.Default
}

// NewVersionManager returns an empty version manager.
func NewVersionManager() *VersionManager {
	return &VersionManager{blobs: make(map[uint64]*blobState), nextBlob: 1}
}

func newBlobState(id, chunkSize uint64) *blobState {
	return &blobState{
		id:        id,
		chunkSize: chunkSize,
		pending:   make(map[uint64]*VersionInfo),
		manifests: make(map[uint64][]manifestEntry),
		lastWrite: make(map[uint64]writeEvent),
	}
}

// Serve binds the version manager to addr on n.
func (vm *VersionManager) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, vm.handle)
}

func (vm *VersionManager) handle(ctx context.Context, req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := int(r.U8())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if resp, handled, err := introspectionReply(vm.registry(), op, r); handled {
		return resp, err
	}
	_, sp := handlerSpan(ctx, vm.registry(), op)
	defer sp.End()
	vm.mu.Lock()
	defer vm.mu.Unlock()
	w := wire.NewBuffer(64)
	switch op {
	case opCreate:
		chunkSize := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		if chunkSize == 0 {
			return nil, errors.New("blobseer: chunk size must be positive")
		}
		id := vm.nextBlob
		vm.nextBlob++
		vm.blobs[id] = newBlobState(id, chunkSize)
		w.PutU64(id)

	case opTicket:
		blob := r.U64()
		nChunks := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		version := b.nextTkt
		b.nextTkt++
		first := b.nextChunk
		b.nextChunk += nChunks
		w.PutU64(version)
		w.PutU64(first)

	case opCommit:
		blob := r.U64()
		info := getVersionInfo(r)
		var manifest []manifestEntry
		if r.Bool() { // dedup commit: per-chunk write manifest attached
			manifest = getManifest(r)
		}
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		if info.Version >= b.nextTkt {
			return nil, fmt.Errorf("blobseer: commit of unticketed version %d", info.Version)
		}
		if info.Version < uint64(len(b.versions)) {
			return nil, fmt.Errorf("blobseer: version %d already published", info.Version)
		}
		cp := info
		b.pending[info.Version] = &cp
		if len(manifest) > 0 {
			b.manifests[info.Version] = manifest
		}
		// Publish in order: drain the pending queue while the next expected
		// version is present. Commits arriving out of ticket order wait.
		for {
			next, ok := b.pending[uint64(len(b.versions))]
			if !ok {
				break
			}
			delete(b.pending, next.Version)
			b.versions = append(b.versions, *next)
			b.applyManifestLocked(next.Version)
		}
		w.PutU64(uint64(len(b.versions))) // published horizon

	case opAbort:
		blob := r.U64()
		version := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		// An aborted ticket publishes the predecessor's state under the
		// reserved number so later versions are not blocked forever.
		if version >= uint64(len(b.versions)) {
			var prev VersionInfo
			if len(b.versions) > 0 {
				prev = b.versions[len(b.versions)-1]
			}
			prev.Version = version
			cp := prev
			b.pending[version] = &cp
			for {
				next, ok := b.pending[uint64(len(b.versions))]
				if !ok {
					break
				}
				delete(b.pending, next.Version)
				b.versions = append(b.versions, *next)
				b.applyManifestLocked(next.Version)
			}
		}

	case opGetVersion:
		blob := r.U64()
		version := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		if version >= uint64(len(b.versions)) {
			return nil, fmt.Errorf("%w: blob %d version %d", ErrVersionNotFound, blob, version)
		}
		putVersionInfo(w, b.versions[version])
		w.PutU64(b.chunkSize)

	case opLatest:
		blob := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		if len(b.versions) == 0 {
			return nil, fmt.Errorf("%w: blob %d has no versions", ErrVersionNotFound, blob)
		}
		putVersionInfo(w, b.versions[len(b.versions)-1])
		w.PutU64(b.chunkSize)

	case opClone:
		srcBlob := r.U64()
		srcVersion := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		src, ok := vm.blobs[srcBlob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, srcBlob)
		}
		if srcVersion >= uint64(len(src.versions)) {
			return nil, fmt.Errorf("%w: blob %d version %d", ErrVersionNotFound, srcBlob, srcVersion)
		}
		id := vm.nextBlob
		vm.nextBlob++
		srcInfo := src.versions[srcVersion]
		// The clone shares the origin's content at srcVersion forever: pin
		// that version so retiring the origin never releases chunks the
		// clone's tree still reaches.
		src.pins = append(src.pins, srcVersion)
		clone := newBlobState(id, src.chunkSize)
		clone.nextTkt = 1
		// Chunk IDs are namespaced by the writing blob, so the clone can
		// start from zero without colliding with the origin's chunks.
		clone.versions = []VersionInfo{{
			Version: 0,
			Size:    srcInfo.Size,
			Span:    srcInfo.Span,
			Root:    srcInfo.Root,
		}}
		vm.blobs[id] = clone
		w.PutU64(id)

	case opListLive:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		// Deterministic order for tests: sort by blob id.
		ids := make([]uint64, 0, len(vm.blobs))
		for id := range vm.blobs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var entries []VersionInfo
		var blobsOf []uint64
		var spans []uint64
		for _, id := range ids {
			b := vm.blobs[id]
			for _, v := range b.versions {
				if v.Version < b.retired {
					continue
				}
				entries = append(entries, v)
				blobsOf = append(blobsOf, id)
				spans = append(spans, b.chunkSize)
			}
		}
		w.PutUvarint(uint64(len(entries)))
		for i, v := range entries {
			w.PutU64(blobsOf[i])
			putVersionInfo(w, v)
			w.PutU64(spans[i])
		}

	case opRetire:
		blob := r.U64()
		before := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		b, ok := vm.blobs[blob]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
		}
		if before > uint64(len(b.versions)) {
			before = uint64(len(b.versions))
		}
		if before > b.retired {
			b.retired = before
		}
		w.PutU64(b.retired)
		// Collect the write events whose entire visibility window now falls
		// below the retired horizon: those references can be released on the
		// data providers. Events a clone still shares are dropped without
		// release (pinned forever). This is O(superseded events), i.e.
		// O(chunks written by retired versions) — no repository sweep.
		var releasable []supersededEvent
		keep := b.superseded[:0]
		for _, ev := range b.superseded {
			switch {
			case ev.supersededAt > b.retired:
				keep = append(keep, ev)
			case b.pinnedIn(ev.version, ev.supersededAt):
				// dropped: shared with a clone
			default:
				releasable = append(releasable, ev)
			}
		}
		b.superseded = keep
		w.PutUvarint(uint64(len(releasable)))
		for _, ev := range releasable {
			putFingerprint(w, ev.fp)
			w.PutUvarint(uint64(len(ev.providers)))
			for _, p := range ev.providers {
				w.PutString(p)
			}
		}

	case opRelocate:
		apply := r.Bool()
		n, err := batchCount(op, r)
		if err != nil {
			return nil, err
		}
		relocs := make([]Relocation, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			var rl Relocation
			rl.FP = getFingerprint(r)
			rl.From = r.String()
			rl.To = r.String()
			relocs = append(relocs, rl)
		}
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		counts := vm.relocateLocked(apply, relocs)
		for _, c := range counts {
			w.PutUvarint(c)
		}

	case opListBlobs:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		ids := make([]uint64, 0, len(vm.blobs))
		for id := range vm.blobs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.PutUvarint(uint64(len(ids)))
		for _, id := range ids {
			w.PutU64(id)
			w.PutU64(vm.blobs[id].chunkSize)
			w.PutU64(uint64(len(vm.blobs[id].versions)))
		}

	default:
		return nil, fmt.Errorf("blobseer: version manager: unknown op %d", op)
	}
	return w.Bytes(), nil
}
