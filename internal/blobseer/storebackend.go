package blobseer

import (
	"fmt"

	"blobcr/internal/chunkstore"
	"blobcr/internal/seglog"
)

// OpenStoreBackend opens the chunk store backend the daemons put behind a
// data provider, selected by name:
//
//	"seglog" — the durable log-structured engine (group commit, compression,
//	           crash recovery); requires dir.
//	"files"  — one file per chunk with fsync-on-put durability; requires dir.
//	"mem"    — in-memory, nothing survives a restart.
//	"" / "auto" — seglog when dir is set, mem otherwise.
//
// The caller wraps the result in cas.NewStore for dedup capability.
func OpenStoreBackend(kind, dir string) (chunkstore.Store, error) {
	switch kind {
	case "", "auto":
		if dir == "" {
			return chunkstore.NewMem(), nil
		}
		return seglog.Open(dir, seglog.Options{})
	case "mem":
		return chunkstore.NewMem(), nil
	case "files":
		if dir == "" {
			return nil, fmt.Errorf("blobseer: store backend %q requires a data directory", kind)
		}
		return chunkstore.NewDisk(dir)
	case "seglog":
		if dir == "" {
			return nil, fmt.Errorf("blobseer: store backend %q requires a data directory", kind)
		}
		return seglog.Open(dir, seglog.Options{})
	default:
		return nil, fmt.Errorf("blobseer: unknown store backend %q (want seglog, files or mem)", kind)
	}
}
