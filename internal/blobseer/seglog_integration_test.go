package blobseer

import (
	"bytes"
	"strings"
	"testing"

	"blobcr/internal/chunkstore"
	"blobcr/internal/seglog"
	"blobcr/internal/transport"
)

// seglogDeploy starts a deployment whose data providers sit on segment logs
// under a test temp dir.
func seglogDeploy(t *testing.T, nMeta, nData int) (*Deployment, *Client) {
	t.Helper()
	d, err := DeployWith(transport.NewInProc(), nMeta, nData,
		SeglogStores(t.TempDir(), seglog.Options{DisableAutoCompact: true}))
	if err != nil {
		t.Fatalf("DeployWith: %v", err)
	}
	t.Cleanup(d.Close)
	return d, d.Client()
}

// TestSeglogBackedDeployment drives the full write/read/retire/GC cycle of
// the service against log-structured providers: the paths that issue Put,
// Get, Keys and Delete against the engine through the whole stack.
func TestSeglogBackedDeployment(t *testing.T) {
	d, c := seglogDeploy(t, 2, 3)
	blob, err := c.CreateBlob(ctx, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	var infos []VersionInfo
	for v := 0; v < 4; v++ {
		writes := make(map[uint64][]byte)
		for i := uint64(0); i < 8; i++ {
			writes[i] = bytes.Repeat([]byte{byte(v*16 + int(i) + 1)}, testChunkSize)
		}
		info, err := c.WriteVersion(ctx, blob, writes, 8*testChunkSize)
		if err != nil {
			t.Fatalf("WriteVersion %d: %v", v, err)
		}
		infos = append(infos, info)
	}
	for v, info := range infos {
		got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, 8*testChunkSize)
		if err != nil {
			t.Fatalf("ReadVersion %d: %v", v, err)
		}
		if got[0] != byte(v*16+1) {
			t.Fatalf("version %d read wrong data: %d", v, got[0])
		}
	}

	// The engine is visible over the wire.
	for _, addr := range d.DataAddrs {
		es, err := c.StoreEngineStats(ctx, addr)
		if err != nil {
			t.Fatalf("StoreEngineStats(%s): %v", addr, err)
		}
		if es.Backend != "cas+seglog" {
			t.Fatalf("backend = %q, want cas+seglog", es.Backend)
		}
	}

	// Retire + GC delete dead chunks through the engine; compaction over the
	// wire then reclaims the log space.
	last := infos[len(infos)-1].Version
	if err := c.Retire(ctx, blob, last); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(ctx, d.DataAddrs); err != nil {
		t.Fatalf("GC: %v", err)
	}
	for _, addr := range d.DataAddrs {
		if _, supported, err := c.CompactChunkStore(ctx, addr); err != nil || !supported {
			t.Fatalf("CompactChunkStore(%s): supported=%v err=%v", addr, supported, err)
		}
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: last}, 0, 8*testChunkSize)
	if err != nil {
		t.Fatalf("surviving version after GC+compaction: %v", err)
	}
	if got[0] != byte((len(infos)-1)*16+1) {
		t.Fatal("surviving version corrupted")
	}
}

// TestStoreStatsBackends: the wire stats verb reports each backend
// truthfully, and compaction on a non-compactable backend is a supported=
// false no-op, not an error.
func TestStoreStatsBackends(t *testing.T) {
	d, c := deploy(t, 1, 1) // mem-backed
	es, err := c.StoreEngineStats(ctx, d.DataAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(es.Backend, "cas+") {
		t.Fatalf("backend = %q, want cas+ prefix", es.Backend)
	}
	res, supported, err := c.CompactChunkStore(ctx, d.DataAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The CAS layer implements Compactor by delegation; over a mem backend
	// the pass is a zero-result no-op either way.
	if supported && (res.Segments != 0 || res.ReclaimedBytes != 0) {
		t.Fatalf("mem backend reported compaction work: %+v", res)
	}
}

// TestOpenStoreBackend covers the daemons' backend selector.
func TestOpenStoreBackend(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind, dir, want string
		wantErr         bool
	}{
		{"", "", "mem", false},
		{"auto", dir + "/a", "seglog", false},
		{"mem", "", "mem", false},
		{"files", dir + "/f", "files", false},
		{"seglog", dir + "/s", "seglog", false},
		{"files", "", "", true},
		{"seglog", "", "", true},
		{"bogus", dir, "", true},
	}
	for _, tc := range cases {
		s, err := OpenStoreBackend(tc.kind, tc.dir)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("OpenStoreBackend(%q, %q) succeeded, want error", tc.kind, tc.dir)
			}
			continue
		}
		if err != nil {
			t.Fatalf("OpenStoreBackend(%q, %q): %v", tc.kind, tc.dir, err)
		}
		if got := chunkstore.StatsOf(s).Backend; got != tc.want {
			t.Fatalf("OpenStoreBackend(%q, %q) = %q, want %q", tc.kind, tc.dir, got, tc.want)
		}
		closeStore(s)
	}
}
