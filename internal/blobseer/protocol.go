// Package blobseer implements the BlobSeer versioning BLOB storage service
// the paper uses as its checkpoint repository (Nicolae et al., JPDC 2011).
//
// A deployment consists of:
//
//   - one version manager, which serializes version publication per BLOB and
//     stores the per-version descriptors (size, metadata root);
//   - one provider manager, which tracks data providers and assigns chunk
//     placements (round-robin with load awareness);
//   - N metadata providers, which store segment-tree nodes (package meta)
//     sharded by key hash;
//   - M data providers, which store immutable chunks (package chunkstore).
//
// Clients stripe BLOBs into fixed-size chunks, write chunks to data
// providers, build the new version's metadata tree, and commit the version.
// Shadowing and cloning (the operations BlobCR's COMMIT and CLONE map to)
// come from the versioned segment tree: see package meta.
//
// All services speak a compact binary protocol over transport.Network, so a
// deployment can run in-process (tests, examples) or across machines
// (cmd/blobseerd).
//
// # Batch verbs
//
// The hot data paths move whole per-provider sets per round trip instead of
// one item per call. Every batch frame starts with the op byte and a uvarint
// item count, followed by the items back to back:
//
//   - opChunkPutBatch: n x (chunk key, body). Response: empty. One frame
//     ships every chunk a commit assigns to one data provider.
//   - opChunkGetBatch: n x chunk key. Response: n x (present bool, body if
//     present). Absent chunks are reported per item, not as a frame error,
//     so the reader fails over only the chunks that need it.
//   - opCasRefBatch: n x fingerprint. Response: n x held bool. One "have
//     these fingerprints?" round trip per provider per commit; a reference
//     is taken for every held fingerprint, exactly as opCasRef does singly.
//   - opCasPutBatch: n x (fingerprint, body). Response: n x dup bool. All
//     fingerprints are validated against their bodies before any item is
//     applied, so a corrupt frame takes no references.
//   - opNodePutBatch: n x (node key, encoded node). Response: empty. A
//     Publish flushes its whole staged node set in one frame per shard.
//   - opNodeGetBatch: n x node key. Response: n x (present bool, encoded
//     node if present). Missing nodes are per-item, letting the tree layer
//     distinguish holes from corruption.
//
// A malformed batch frame (truncated mid-item, implausible count) is
// rejected before any item is applied.
package blobseer

import (
	"fmt"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/meta"
	"blobcr/internal/wire"
)

// Op codes for the version manager.
const (
	opCreate = iota + 1 // create blob
	opTicket            // reserve a version + chunk-id range
	opCommit            // publish a version
	opAbort             // abandon a reserved ticket
	opGetVersion
	opLatest
	opClone
	opListLive
	opRetire
	opListBlobs

	// opRelocate rewrites the provider entries of the version manager's
	// write events (lastWrite, superseded, unpublished manifests): every
	// occurrence of `from` on events carrying the given fingerprint becomes
	// `to`, and the occurrence count is returned. With apply=false it only
	// counts — the repair plane pre-installs exactly that many references at
	// the new provider before committing the rewrite, so Retire's releases
	// stay exact through a re-replication.
	opRelocate
)

// Op codes for the provider manager.
const (
	opRegister = iota + 32 // JOIN: the provider becomes placement-eligible
	opPlacement
	opProviders
	opUnregister

	// Dynamic-membership verbs (internal/repair). opDrain marks a provider
	// DRAINING: it leaves the placement rotation but keeps serving reads
	// while the repair plane re-places its replicas; opRetireProvider
	// removes a drained provider for good; opMembership reports the full
	// membership with states and the epoch that bumps on every change.
	opMembership
	opDrain
	opRetireProvider
)

// Op codes for data providers.
const (
	opChunkPut = iota + 64
	opChunkGet
	opChunkDelete
	opChunkList
	opChunkUsage
	opChunkHas

	// Content-addressed repository ops (internal/cas). opCasRef is the
	// "have fingerprint?" round trip: it takes a reference if the body is
	// held, so a writer that gets `true` back never ships the body at all.
	opCasRef
	opCasPut
	opCasRelease
	opCasStats

	// Batch verbs (see the package comment): many items per frame, one
	// frame per provider per commit or restore pass.
	opChunkPutBatch
	opChunkGetBatch
	opCasRefBatch
	opCasPutBatch

	// opCasReleaseN drops n references on one fingerprint in a single
	// round trip — the repair plane settles relocation diffs and releases a
	// drained provider's whole reference count per chunk without one call
	// per reference.
	opCasReleaseN

	// Storage-engine ops (internal/chunkstore engine extensions).
	// opStoreStats reports the provider's backend name and its
	// engine-specific counters (blobcr-ctl store, the disklog bench).
	// opStoreCompact asks a log-structured backend to run a compaction pass
	// now (the repair scrubber's cadence, blobcr-ctl); engines with nothing
	// to compact report supported=false.
	opStoreStats
	opStoreCompact
)

// Op codes for metadata providers.
const (
	opNodePut = iota + 96
	opNodeGet
	opNodeList
	opNodeDelete
	opNodeUsage
	opNodePutBatch
	opNodeGetBatch
)

// Introspection ops every blobseer service answers — the binary siblings of
// the text endpoints' TRACE and FLIGHT verbs. They sit at the top of the op
// space, below 0xF0 (values from 0xF0 up are reserved for transport-level
// markers such as the trace-context header).
const (
	opTraceGet   = 0xE0 // request: u64 trace id; response: obs.MarshalSpans
	opFlightGet  = 0xE1 // request: op only; response: obs.MarshalSpans of the flight ring
	opHistoryGet = 0xE2 // request: u32 window seconds; response: obs.MarshalWindow
	opMetricsGet = 0xE3 // request: u32 chunk offset; response: i64 next offset + exposition chunk
)

// maxBatchItems bounds the item count of one batch frame: far above any
// legitimate batch (the client splits its frames by batchBytesLimit and
// maxFrameItems, both well below this) and small enough to reject a corrupt
// count before allocating.
const maxBatchItems = 1 << 20

// batchCount decodes and sanity-checks a batch frame's item count.
func batchCount(op int, r *wire.Reader) (uint64, error) {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("blobseer: bad request for op %d: %w", op, err)
	}
	if n > maxBatchItems {
		return 0, fmt.Errorf("blobseer: op %d: implausible batch of %d items", op, n)
	}
	return n, nil
}

// VersionInfo describes one published version of a BLOB.
type VersionInfo struct {
	Version uint64
	Size    uint64       // logical size in bytes
	Span    uint64       // metadata tree span, in chunks
	Root    meta.NodeRef // invalid for an empty blob
}

func putVersionInfo(w *wire.Buffer, v VersionInfo) {
	w.PutU64(v.Version)
	w.PutU64(v.Size)
	w.PutU64(v.Span)
	w.PutBool(v.Root.Valid)
	w.PutU64(v.Root.Blob)
	w.PutU64(v.Root.Version)
}

func getVersionInfo(r *wire.Reader) VersionInfo {
	var v VersionInfo
	v.Version = r.U64()
	v.Size = r.U64()
	v.Span = r.U64()
	v.Root.Valid = r.Bool()
	v.Root.Blob = r.U64()
	v.Root.Version = r.U64()
	return v
}

func putNodeKey(w *wire.Buffer, k meta.NodeKey) {
	w.PutU64(k.Blob)
	w.PutU64(k.Version)
	w.PutU64(k.Offset)
	w.PutU64(k.Span)
}

func getNodeKey(r *wire.Reader) meta.NodeKey {
	var k meta.NodeKey
	k.Blob = r.U64()
	k.Version = r.U64()
	k.Offset = r.U64()
	k.Span = r.U64()
	return k
}

func putFingerprint(w *wire.Buffer, fp cas.Fingerprint) {
	w.PutBytes(fp[:])
}

func getFingerprint(r *wire.Reader) cas.Fingerprint {
	var fp cas.Fingerprint
	copy(fp[:], r.Bytes())
	return fp
}

func putCasStats(w *wire.Buffer, s cas.Stats) {
	w.PutU64(s.Chunks)
	w.PutU64(s.Refs)
	w.PutU64(s.PhysicalBytes)
	w.PutU64(s.LogicalBytes)
	w.PutU64(s.Hits)
	w.PutU64(s.Misses)
	w.PutU64(s.ReclaimedChunks)
	w.PutU64(s.ReclaimedBytes)
}

func getCasStats(r *wire.Reader) cas.Stats {
	var s cas.Stats
	s.Chunks = r.U64()
	s.Refs = r.U64()
	s.PhysicalBytes = r.U64()
	s.LogicalBytes = r.U64()
	s.Hits = r.U64()
	s.Misses = r.U64()
	s.ReclaimedChunks = r.U64()
	s.ReclaimedBytes = r.U64()
	return s
}

// manifestEntry records one chunk write of a published version: the index it
// covers, the content fingerprint, and the replica providers holding the
// body. The version manager uses manifests to track which write supersedes
// which, so Retire can release exactly the references retired snapshots held.
type manifestEntry struct {
	index     uint64
	fp        cas.Fingerprint
	providers []string
}

func putManifest(w *wire.Buffer, m []manifestEntry) {
	w.PutUvarint(uint64(len(m)))
	for _, e := range m {
		w.PutUvarint(e.index)
		putFingerprint(w, e.fp)
		w.PutUvarint(uint64(len(e.providers)))
		for _, p := range e.providers {
			w.PutString(p)
		}
	}
}

func getManifest(r *wire.Reader) []manifestEntry {
	n := r.Uvarint()
	if n > 1<<24 {
		return nil // implausible; the reader's error latch will surface it
	}
	out := make([]manifestEntry, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		var e manifestEntry
		e.index = r.Uvarint()
		e.fp = getFingerprint(r)
		np := r.Uvarint()
		if np > 1024 {
			return nil
		}
		e.providers = make([]string, np)
		for j := range e.providers {
			e.providers[j] = r.String()
		}
		out = append(out, e)
	}
	return out
}

// Relocation asks the version manager to move one fingerprint's write-event
// references from one provider to another (see opRelocate).
type Relocation struct {
	FP   cas.Fingerprint
	From string
	To   string
}

func putRelocations(w *wire.Buffer, apply bool, relocs []Relocation) {
	w.PutU8(opRelocate)
	w.PutBool(apply)
	w.PutUvarint(uint64(len(relocs)))
	for _, rl := range relocs {
		putFingerprint(w, rl.FP)
		w.PutString(rl.From)
		w.PutString(rl.To)
	}
}

func putChunkKey(w *wire.Buffer, k chunkstore.Key) {
	w.PutU64(k.Blob)
	w.PutU64(k.ID)
}

func getChunkKey(r *wire.Reader) chunkstore.Key {
	var k chunkstore.Key
	k.Blob = r.U64()
	k.ID = r.U64()
	return k
}

func putEngineStats(w *wire.Buffer, es chunkstore.EngineStats) {
	w.PutString(es.Backend)
	w.PutUvarint(uint64(len(es.Fields)))
	for _, f := range es.Fields {
		w.PutString(f.Name)
		w.PutU64(f.Value)
	}
}

func getEngineStats(r *wire.Reader) chunkstore.EngineStats {
	var es chunkstore.EngineStats
	es.Backend = r.String()
	n := r.Uvarint()
	if n > 4096 {
		return es // implausible; the reader's error latch will surface it
	}
	es.Fields = make([]chunkstore.EngineField, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		es.Fields = append(es.Fields, chunkstore.EngineField{Name: r.String(), Value: r.U64()})
	}
	return es
}

// reqErr wraps a decode failure of an incoming request.
func reqErr(op int, r *wire.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("blobseer: bad request for op %d: %w", op, err)
	}
	return nil
}
