package blobseer

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"blobcr/internal/transport"
)

// trapNet wraps an in-process network and partitions a victim address the
// first time a large request (a chunk-body upload) is about to reach it —
// the provider dies mid-commit, before taking the body.
type trapNet struct {
	*transport.InProc

	mu      sync.Mutex
	victim  string
	armed   bool
	tripped bool
}

const trapBodyThreshold = 1024

func (n *trapNet) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	if len(req) >= trapBodyThreshold {
		n.mu.Lock()
		if n.armed && addr == n.victim {
			n.armed = false
			n.tripped = true
			n.InProc.Partition(n.victim)
		}
		n.mu.Unlock()
	}
	return n.InProc.Call(ctx, addr, req)
}

func (n *trapNet) arm(victim string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.victim = victim
	n.armed = true
	n.tripped = false
}

func (n *trapNet) didTrip() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tripped
}

// writeFailoverCase runs one partition-during-commit scenario: enough fresh
// chunks that rendezvous (or round-robin placement) sends at least one body
// to the victim provider, which dies the moment the body arrives. The commit
// must fail over to live providers and publish a fully readable snapshot.
func writeFailoverCase(t *testing.T, dedup bool) {
	t.Helper()
	ctx := context.Background()
	net := &trapNet{InProc: transport.NewInProc()}
	d, err := Deploy(net, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c := d.Client()
	c.Dedup = dedup

	const cs = 2048
	blob, err := c.CreateBlob(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a first version before the trouble starts.
	if _, err := c.WriteVersion(ctx, blob, map[uint64][]byte{0: make([]byte, cs)}, 16*cs); err != nil {
		t.Fatal(err)
	}

	// Commit 8 fresh chunks with the victim set to die on first contact.
	writes := make(map[uint64][]byte)
	for i := uint64(0); i < 8; i++ {
		writes[i] = bytes.Repeat([]byte{byte(0xA0 + i)}, cs)
	}
	net.arm(d.DataAddrs[0])
	info, err := c.WriteVersion(ctx, blob, writes, 16*cs)
	if err != nil {
		t.Fatalf("commit with provider dying mid-commit: %v", err)
	}
	if !net.didTrip() {
		t.Fatal("victim provider never saw a body: scenario did not exercise failover")
	}

	// Every chunk is readable — the failed-over replicas landed on live
	// providers and the metadata points at them.
	for i := uint64(0); i < 8; i++ {
		got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, i*cs, cs)
		if err != nil {
			t.Fatalf("read chunk %d after failover: %v", i, err)
		}
		if !bytes.Equal(got, writes[i]) {
			t.Fatalf("chunk %d corrupted after failover", i)
		}
	}

	// A subsequent commit (victim still dead and still registered) works too.
	if _, err := c.WriteVersion(ctx, blob, map[uint64][]byte{9: bytes.Repeat([]byte{0xBB}, cs)}, 16*cs); err != nil {
		t.Fatalf("follow-up commit with dead provider: %v", err)
	}
}

func TestWritePathFailoverDedup(t *testing.T)  { writeFailoverCase(t, true) }
func TestWritePathFailoverPlaced(t *testing.T) { writeFailoverCase(t, false) }
