package blobseer

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"sync"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/meta"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// Client accesses a BlobSeer deployment. A Client is stateless apart from
// the deployment addresses; it is safe to create one per goroutine.
//
// Every operation takes a context.Context: cancelling it abandons the
// operation. A cancelled commit runs its abort path under a detached context
// (context.WithoutCancel), releasing the version ticket and every
// content-addressed reference the commit had taken, so dedup refcounts never
// leak.
//
// Concurrent writers to *different* blobs are fully supported (that is the
// checkpoint workload: one checkpoint image per VM). Concurrent writers to
// the same blob are serialized by version-manager tickets; each writer
// should base its metadata on the latest *published* version.
type Client struct {
	Net         transport.Network
	VMAddr      string   // version manager
	PMAddr      string   // provider manager
	MetaAddrs   []string // metadata providers, hash-sharded
	Replication int      // chunk replica count (default 1)

	// Dedup routes commits through the content-addressed repository
	// (internal/cas): chunks are fingerprinted, placed by rendezvous hash of
	// their content, and a "have these fingerprints?" round trip
	// (opCasRefBatch, one per provider per commit) skips the body transfer
	// for content any snapshot already stored. Retire then releases the
	// retired snapshots' references instead of relying on a
	// whole-repository sweep. Requires CAS-capable data providers (Deploy
	// creates them).
	Dedup bool

	// Parallelism bounds how many per-provider streams a commit or restore
	// runs concurrently. The data path groups chunks by provider and moves
	// each group in batched frames over its own stream, so wall time scales
	// down with the striping width up to this bound. Zero means
	// DefaultParallelism.
	Parallelism int

	// Obs is the metrics registry the client's instrumentation records into
	// (commit stage spans, dedup hit bytes, batch round trips, per-provider
	// stream times, failover counters). Nil means obs.Default.
	Obs *obs.Registry
}

// Registry returns the client's metrics registry (obs.Default when unset),
// so layers above (mirror, proxy) record into the same scrape surface.
func (c *Client) Registry() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default
}

func (c *Client) replication() int {
	if c.Replication < 1 {
		return 1
	}
	return c.Replication
}

// call issues one request under an RPC span named by the op byte and
// decodes errors.
func (c *Client) call(ctx context.Context, addr string, w *wire.Buffer) (*wire.Reader, error) {
	req := w.Bytes()
	resp, err := c.rpc(ctx, addr, OpName(req[0]), req)
	if err != nil {
		return nil, err
	}
	return wire.NewReader(resp), nil
}

// nodeStore returns the remote metadata NodeStore view, bound to ctx for the
// duration of one tree operation.
func (c *Client) nodeStore(ctx context.Context) *remoteNodeStore {
	return &remoteNodeStore{ctx: ctx, c: c, addrs: c.MetaAddrs, par: c.parallelism()}
}

func (c *Client) tree(ctx context.Context) *meta.Tree {
	return &meta.Tree{Store: c.nodeStore(ctx)}
}

// remoteNodeStore shards tree nodes across metadata providers by key hash.
// It is a request-scoped view: the context is the operation's, captured when
// the store is created, because meta.NodeStore is context-free. Node sets
// are grouped by shard and moved with one batched round trip per metadata
// provider, the shard calls running concurrently up to par streams.
type remoteNodeStore struct {
	ctx   context.Context
	c     *Client
	addrs []string
	par   int
}

func (s *remoteNodeStore) shard(k meta.NodeKey) string {
	h := fnv.New64a()
	var buf [32]byte
	le := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	le(0, k.Blob)
	le(8, k.Version)
	le(16, k.Offset)
	le(24, k.Span)
	h.Write(buf[:])
	return s.addrs[h.Sum64()%uint64(len(s.addrs))]
}

// PutNodes implements meta.NodeStore: the staged node set is grouped by
// shard and flushed with one opNodePutBatch frame per metadata provider.
func (s *remoteNodeStore) PutNodes(puts []meta.NodePut) error {
	if len(puts) == 0 {
		return nil
	}
	groups := make(map[string][]meta.NodePut)
	for _, p := range puts {
		addr := s.shard(p.Key)
		groups[addr] = append(groups[addr], p)
	}
	return runGroups(s.ctx, s.par, groups, func(ctx context.Context, addr string, batch []meta.NodePut) error {
		return splitByBytes(len(batch), func(i int) int { return 40 + len(batch[i].Encoded) }, func(start, end int) error {
			size := 16
			for _, p := range batch[start:end] {
				size += 40 + len(p.Encoded)
			}
			w := wire.NewBuffer(size)
			w.PutU8(opNodePutBatch)
			w.PutUvarint(uint64(end - start))
			for _, p := range batch[start:end] {
				putNodeKey(w, p.Key)
				w.PutBytes(p.Encoded)
			}
			obs.RegistryFrom(ctx).Counter("blobseer_batch_calls_total", obs.L("op", "node-put-batch")).Inc()
			if _, err := s.c.rpc(ctx, addr, "node-put-batch", w.Bytes()); err != nil {
				return fmt.Errorf("blobseer: put %d nodes to %s: %w", end-start, addr, err)
			}
			return nil
		})
	})
}

// GetNodes implements meta.NodeStore: keys are grouped by shard, fetched
// with one opNodeGetBatch frame per metadata provider, and returned aligned
// with the input (missing nodes are nil entries).
func (s *remoteNodeStore) GetNodes(keys []meta.NodeKey) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	groups := make(map[string][]int) // shard -> positions in keys
	for i, k := range keys {
		addr := s.shard(k)
		groups[addr] = append(groups[addr], i)
	}
	out := make([][]byte, len(keys))
	err := runGroups(s.ctx, s.par, groups, func(ctx context.Context, addr string, positions []int) error {
		return splitByBytes(len(positions), func(int) int { return 40 }, func(start, end int) error {
			w := wire.NewBuffer(16 + 40*(end-start))
			w.PutU8(opNodeGetBatch)
			w.PutUvarint(uint64(end - start))
			for _, pos := range positions[start:end] {
				putNodeKey(w, keys[pos])
			}
			obs.RegistryFrom(ctx).Counter("blobseer_batch_calls_total", obs.L("op", "node-get-batch")).Inc()
			resp, err := s.c.rpc(ctx, addr, "node-get-batch", w.Bytes())
			if err != nil {
				return fmt.Errorf("blobseer: get %d nodes from %s: %w", end-start, addr, err)
			}
			r := wire.NewReader(resp)
			for _, pos := range positions[start:end] {
				if r.Bool() {
					out[pos] = r.BytesCopy()
				}
			}
			return r.Err()
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CreateBlob registers a new empty BLOB with the given chunk size and
// returns its id.
func (c *Client) CreateBlob(ctx context.Context, chunkSize uint64) (uint64, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opCreate)
	w.PutU64(chunkSize)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return 0, err
	}
	id := r.U64()
	return id, r.Err()
}

// Latest returns the most recent published version of the blob and the
// blob's chunk size.
func (c *Client) Latest(ctx context.Context, blob uint64) (VersionInfo, uint64, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opLatest)
	w.PutU64(blob)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, 0, err
	}
	info := getVersionInfo(r)
	cs := r.U64()
	return info, cs, r.Err()
}

// GetVersion returns the referenced published version and the blob's chunk
// size.
func (c *Client) GetVersion(ctx context.Context, ref SnapshotRef) (VersionInfo, uint64, error) {
	w := wire.NewBuffer(24)
	w.PutU8(opGetVersion)
	w.PutU64(ref.Blob)
	w.PutU64(ref.Version)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, 0, err
	}
	info := getVersionInfo(r)
	cs := r.U64()
	return info, cs, r.Err()
}

// ChunkSize returns the blob's chunk size (works for blobs with no
// published versions).
func (c *Client) ChunkSize(ctx context.Context, blob uint64) (uint64, error) {
	blobs, err := c.ListBlobs(ctx)
	if err != nil {
		return 0, err
	}
	for _, b := range blobs {
		if b.ID == blob {
			return b.ChunkSize, nil
		}
	}
	return 0, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
}

// BlobInfo summarizes one blob in ListBlobs output.
type BlobInfo struct {
	ID        uint64
	ChunkSize uint64
	Versions  uint64
}

// ListBlobs enumerates all blobs known to the version manager.
func (c *Client) ListBlobs(ctx context.Context) ([]BlobInfo, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opListBlobs)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]BlobInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, BlobInfo{ID: r.U64(), ChunkSize: r.U64(), Versions: r.U64()})
	}
	return out, r.Err()
}

// CommitStats reports what one WriteVersion moved and what deduplication
// saved. LogicalBytes is the commit's payload — each written chunk counted
// once, independent of replication — so dedup hit-rate math is not skewed by
// the replica count; TransferBytes is what actually crossed the network,
// including replica copies. With Dedup off and Replication 1 the two are
// equal.
type CommitStats struct {
	Chunks        int    // chunks written by the commit
	DedupChunks   int    // chunks whose body was already held by every replica
	LogicalBytes  uint64 // payload bytes, counted once per chunk
	DedupHitBytes uint64 // payload bytes of the dedup'd chunks (counted once per chunk)
	TransferBytes uint64 // bytes actually shipped to data providers
}

// Add accumulates other into s (aggregation across commits or modules).
func (s *CommitStats) Add(o CommitStats) {
	s.Chunks += o.Chunks
	s.DedupChunks += o.DedupChunks
	s.LogicalBytes += o.LogicalBytes
	s.DedupHitBytes += o.DedupHitBytes
	s.TransferBytes += o.TransferBytes
}

// WriteVersion publishes a new version of blob consisting of the previous
// version's content overlaid with the given whole-chunk writes, and resizes
// the blob to newSize bytes (pass the previous size to keep it). The chunk
// data slices must each be at most chunkSize long. This is the COMMIT
// primitive of the paper: only the written chunks move; everything else is
// shared with the previous version.
func (c *Client) WriteVersion(ctx context.Context, blob uint64, writes map[uint64][]byte, newSize uint64) (VersionInfo, error) {
	info, _, err := c.WriteVersionStats(ctx, blob, writes, newSize)
	return info, err
}

// WriteVersionStats is WriteVersion returning per-commit transfer and dedup
// accounting. If ctx is cancelled mid-commit, the abort path runs under a
// detached context: the version ticket is released and every
// content-addressed reference the commit took is returned, so refcounts stay
// balanced.
func (c *Client) WriteVersionStats(ctx context.Context, blob uint64, writes map[uint64][]byte, newSize uint64) (VersionInfo, CommitStats, error) {
	return c.writeVersion(ctx, blob, nil, writes, newSize)
}

// WriteVersionFrom publishes a new version of base.Blob whose unwritten
// content comes from the given published base snapshot rather than from the
// blob's latest version. This is the rollback-safe COMMIT: after a
// deployment rolls back to an older snapshot, a newer orphaned version (a
// commit that was publishing when the failure hit) may still be the blob's
// latest — basing the next commit on it would silently resurrect the very
// writes the rollback undid. The mirroring module commits through this path,
// passing the snapshot its device actually exposes.
func (c *Client) WriteVersionFrom(ctx context.Context, base SnapshotRef, writes map[uint64][]byte, newSize uint64) (VersionInfo, error) {
	info, _, err := c.WriteVersionStatsFrom(ctx, base, writes, newSize)
	return info, err
}

// WriteVersionStatsFrom is WriteVersionFrom returning per-commit transfer
// and dedup accounting.
func (c *Client) WriteVersionStatsFrom(ctx context.Context, base SnapshotRef, writes map[uint64][]byte, newSize uint64) (VersionInfo, CommitStats, error) {
	return c.writeVersion(ctx, base.Blob, &base, writes, newSize)
}

// writeVersion implements both commit flavors: with base == nil the new
// version overlays the blob's latest published version; otherwise it
// overlays the explicitly named base snapshot. It wraps the staged
// implementation with the commit-level telemetry: per-commit counters and
// the registry attachment the stage spans and batch counters below record
// through.
func (c *Client) writeVersion(ctx context.Context, blob uint64, base *SnapshotRef, writes map[uint64][]byte, newSize uint64) (VersionInfo, CommitStats, error) {
	ctx = obs.WithRegistry(ctx, c.Obs)
	reg := obs.RegistryFrom(ctx)
	info, stats, err := c.writeVersionStaged(ctx, blob, base, writes, newSize)
	if err != nil {
		reg.Counter("blobseer_commit_failures_total").Inc()
		return info, stats, err
	}
	reg.Counter("blobseer_commits_total").Inc()
	reg.Counter("blobseer_commit_chunks_total").Add(uint64(stats.Chunks))
	reg.Counter("blobseer_dedup_hit_chunks_total").Add(uint64(stats.DedupChunks))
	reg.Counter("blobseer_dedup_hit_bytes_total").Add(stats.DedupHitBytes)
	reg.Counter("blobseer_commit_logical_bytes_total").Add(stats.LogicalBytes)
	reg.Counter("blobseer_commit_transfer_bytes_total").Add(stats.TransferBytes)
	return info, stats, nil
}

// writeVersionStaged is the commit pipeline proper, decomposed into the
// named probe → upload → publish → durable stages the suspend-window
// breakdown reports (the capture stage happens above, in internal/mirror,
// under the VM suspend).
func (c *Client) writeVersionStaged(ctx context.Context, blob uint64, base *SnapshotRef, writes map[uint64][]byte, newSize uint64) (VersionInfo, CommitStats, error) {
	var stats CommitStats
	// Cleanup must run even when ctx is already cancelled.
	cleanupCtx := context.WithoutCancel(ctx)

	// Stage: probe — base-version lookup, size validation, ticket. Each
	// stage's derived context parents the RPC spans issued inside it, so an
	// assembled trace nests the wire traffic under its stage. The deferred
	// Ends are no-ops on the success path (End is idempotent); they close the
	// in-flight stage when an error path returns early.
	probeCtx, probe := obs.StartSpan(ctx, obs.SpanCommitProbe)
	defer probe.End()

	// Previous version (absent for the first write).
	var prev VersionInfo
	var chunkSize uint64
	if base != nil {
		prevInfo, cs, err := c.GetVersion(probeCtx, *base)
		if err != nil {
			return VersionInfo{}, stats, fmt.Errorf("blobseer: commit base %s: %w", *base, err)
		}
		prev = prevInfo
		chunkSize = cs
	} else {
		prevInfo, cs, err := c.Latest(probeCtx, blob)
		switch {
		case err == nil:
			prev = prevInfo
			chunkSize = cs
		case IsNotFound(err):
			chunkSize, err = c.ChunkSize(probeCtx, blob)
			if err != nil {
				return VersionInfo{}, stats, err
			}
		default:
			return VersionInfo{}, stats, err
		}
	}
	for idx, data := range writes {
		if uint64(len(data)) > chunkSize {
			return VersionInfo{}, stats, fmt.Errorf("blobseer: chunk %d: %d bytes exceeds chunk size %d", idx, len(data), chunkSize)
		}
	}

	// Ticket: version number + private chunk-id range.
	w := wire.NewBuffer(24)
	w.PutU8(opTicket)
	w.PutU64(blob)
	w.PutU64(uint64(len(writes)))
	r, err := c.call(probeCtx, c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, stats, err
	}
	version := r.U64()
	firstID := r.U64()
	if err := r.Err(); err != nil {
		return VersionInfo{}, stats, err
	}
	probe.End()

	// Stage: upload — chunk bodies move to the data providers.
	uploadCtx, upload := obs.StartSpan(ctx, obs.SpanCommitUpload)
	defer upload.End()

	// Deterministic order of chunk uploads.
	indices := make([]uint64, 0, len(writes))
	for idx := range writes {
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })

	var leaves map[uint64]meta.Leaf
	var manifest []manifestEntry
	if c.Dedup {
		leaves, manifest, err = c.uploadDedup(uploadCtx, indices, writes, &stats)
	} else {
		leaves, err = c.uploadPlaced(uploadCtx, blob, firstID, indices, writes, &stats)
	}
	if err != nil {
		c.abort(cleanupCtx, blob, version)
		return VersionInfo{}, stats, err
	}
	upload.End()

	// Stage: publish — the metadata tree for the new version.
	publishCtx, publish := obs.StartSpan(ctx, obs.SpanCommitPublish)
	defer publish.End()

	// Metadata tree for the new version.
	maxIdx := uint64(0)
	if newSize > 0 {
		maxIdx = (newSize + chunkSize - 1) / chunkSize
	}
	for _, idx := range indices {
		if idx+1 > maxIdx {
			maxIdx = idx + 1
		}
	}
	newSpan := meta.NextPow2(maxIdx)
	if newSpan < prev.Span {
		newSpan = prev.Span
	}
	root, err := c.tree(publishCtx).Publish(blob, version, prev.Root, prev.Span, newSpan, leaves)
	if err != nil {
		c.releaseRefs(cleanupCtx, manifest)
		c.abort(cleanupCtx, blob, version)
		return VersionInfo{}, stats, err
	}
	publish.End()

	// Stage: durable — the version-manager commit makes the version
	// restart-visible.
	durableCtx, durable := obs.StartSpan(ctx, obs.SpanCommitDurable)
	defer durable.End()

	// Commit. A dedup commit carries the write manifest so the version
	// manager can track which write supersedes which (refcount GC).
	info := VersionInfo{Version: version, Size: newSize, Span: newSpan, Root: root}
	w = wire.NewBuffer(64)
	w.PutU8(opCommit)
	w.PutU64(blob)
	putVersionInfo(w, info)
	w.PutBool(len(manifest) > 0)
	if len(manifest) > 0 {
		putManifest(w, manifest)
	}
	if _, err := c.call(durableCtx, c.VMAddr, w); err != nil {
		// The commit may or may not have landed; releasing refs here could
		// double-release a published version's chunks. Leave reconciliation
		// to the mark-and-sweep fallback.
		return VersionInfo{}, stats, err
	}
	durable.End()
	return info, stats, nil
}

// uploadPlaced is the classic (blob, id)-addressed upload path: placement
// from the provider manager, every body shipped. Replicas are grouped by
// provider and each provider's set moves in batched frames over bounded
// concurrent streams; chunks whose provider dies mid-commit fall back to the
// serial per-chunk failover, preserving the distinct-replica guarantee.
func (c *Client) uploadPlaced(ctx context.Context, blob, firstID uint64, indices []uint64, writes map[uint64][]byte, stats *CommitStats) (map[uint64]meta.Leaf, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opPlacement)
	w.PutUvarint(uint64(len(writes)))
	w.PutUvarint(uint64(c.replication()))
	r, err := c.call(ctx, c.PMAddr, w)
	if err != nil {
		return nil, err
	}
	nPlaced := r.Uvarint()
	if int(nPlaced) != len(indices) {
		return nil, fmt.Errorf("blobseer: placement returned %d entries for %d chunks", nPlaced, len(indices))
	}
	placements := make([][]string, nPlaced)
	for i := range placements {
		k := r.Uvarint()
		if k > 1024 {
			return nil, fmt.Errorf("blobseer: implausible replica count %d", k)
		}
		placements[i] = make([]string, k)
		for j := range placements[i] {
			placements[i][j] = r.String()
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}

	keys := make([]chunkstore.Key, len(indices))
	for i := range indices {
		keys[i] = chunkstore.Key{Blob: blob, ID: firstID + uint64(i)}
	}

	// Group replica PUTs by provider: one stream per provider, each split
	// into frames of at most batchBytesLimit.
	type slot struct{ chunk, replica int }
	groups := make(map[string][]slot)
	for i := range indices {
		for j, addr := range placements[i] {
			groups[addr] = append(groups[addr], slot{chunk: i, replica: j})
		}
	}
	// landed[i][j] records that replica j of chunk i reached its planned
	// provider. Slots are disjoint across goroutines, so no lock is needed.
	landed := make([][]bool, len(indices))
	for i := range landed {
		landed[i] = make([]bool, len(placements[i]))
	}
	err = runGroups(ctx, c.parallelism(), groups, func(ctx context.Context, addr string, slots []slot) error {
		err := splitByBytes(len(slots), func(i int) int { return len(writes[indices[slots[i].chunk]]) }, func(start, end int) error {
			bkeys := make([]chunkstore.Key, 0, end-start)
			bodies := make([][]byte, 0, end-start)
			for _, s := range slots[start:end] {
				bkeys = append(bkeys, keys[s.chunk])
				bodies = append(bodies, writes[indices[s.chunk]])
			}
			if err := c.putChunkBatch(ctx, addr, bkeys, bodies); err != nil {
				// The provider is unreachable: leave this provider's
				// remaining slots unlanded for the failover pass instead of
				// failing the commit. A cancelled commit does fail here.
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				return errStopGroup
			}
			for _, s := range slots[start:end] {
				landed[s.chunk][s.replica] = true
			}
			return nil
		})
		if errors.Is(err, errStopGroup) {
			return nil
		}
		return err
	})
	if err != nil {
		return nil, err
	}

	leaves := make(map[uint64]meta.Leaf, len(writes))
	// Write-path failover: alternates for chunks whose assigned provider died
	// mid-commit, fetched lazily on the first failure.
	var alternates []string
	for i, idx := range indices {
		data := writes[idx]
		placed := make([]string, 0, len(placements[i]))
		for j, providerAddr := range placements[i] {
			addr := providerAddr
			if !landed[i][j] {
				// The provider died mid-commit: retry the PUT on an alternate
				// live provider instead of failing the whole commit. The leaf
				// records where the replica actually landed, so the read path
				// (which already tries replicas in order) finds it. Every
				// planned placement for this chunk — tried or not — is
				// excluded, so the alternate never collides with a replica a
				// later loop iteration will place: the chunk keeps its full
				// count of *distinct* physical replicas.
				used := append(append([]string(nil), placed...), placements[i]...)
				var err error
				addr, err = c.putChunkFailover(ctx, keys[i], data, &alternates, used)
				if err != nil {
					return nil, err
				}
			}
			stats.TransferBytes += uint64(len(data))
			placed = append(placed, addr)
		}
		stats.Chunks++
		stats.LogicalBytes += uint64(len(data))
		leaves[idx] = meta.Leaf{Providers: placed, Key: keys[i], Size: uint32(len(data))}
	}
	return leaves, nil
}

// putChunk ships one (blob, id)-addressed chunk replica to one provider.
func (c *Client) putChunk(ctx context.Context, addr string, key chunkstore.Key, data []byte) error {
	pw := wire.NewBuffer(32 + len(data))
	pw.PutU8(opChunkPut)
	putChunkKey(pw, key)
	pw.PutBytes(data)
	if _, err := c.rpc(ctx, addr, "chunk-put", pw.Bytes()); err != nil {
		return fmt.Errorf("blobseer: put chunk to %s: %w", addr, err)
	}
	return nil
}

// putChunkFailover retries a failed chunk PUT on the registered providers
// not yet holding a replica of this chunk, returning the address that took
// it. *alternates caches the provider list across a commit's failovers.
func (c *Client) putChunkFailover(ctx context.Context, key chunkstore.Key, data []byte, alternates *[]string, used []string) (string, error) {
	if *alternates == nil {
		ps, err := c.Providers(ctx)
		if err != nil {
			return "", err
		}
		*alternates = ps
	}
	var lastErr error
	for _, addr := range *alternates {
		if slices.Contains(used, addr) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return "", err
		}
		if err := c.putChunk(ctx, addr, key, data); err != nil {
			lastErr = err
			continue
		}
		obs.RegistryFrom(ctx).Counter("blobseer_write_failovers_total").Inc()
		return addr, nil
	}
	return "", fmt.Errorf("blobseer: chunk %v: no live provider took the replica: %w", key, lastErr)
}

// uploadDedup is the content-addressed upload path: each chunk is
// fingerprinted, placed on the providers that rendezvous-hashing assigns to
// its content (so identical content always lands on the same providers,
// cluster-wide), and shipped only if the provider does not already hold the
// fingerprint. Returns the leaves and the commit's write manifest. On any
// failure — including ctx cancellation — every reference taken so far is
// released under a detached context before returning.
//
// The probe/upload traffic is batched per provider: each round issues one
// "have these fingerprints?" round trip (opCasRefBatch) and at most one body
// upload pass (opCasPutBatch frames) per provider, the providers proceeding
// concurrently — O(providers) round trips per commit instead of O(chunks).
// When a ranked provider is unreachable, its chunks move to the next-ranked
// provider in the following round (write-path failover); the leaf and
// manifest record where replicas actually landed, so reads and refcount
// releases find them.
func (c *Client) uploadDedup(ctx context.Context, indices []uint64, writes map[uint64][]byte, stats *CommitStats) (map[uint64]meta.Leaf, []manifestEntry, error) {
	leaves := make(map[uint64]meta.Leaf, len(writes))
	manifest := make([]manifestEntry, 0, len(writes))
	if len(writes) == 0 {
		return leaves, nil, nil
	}
	providers, err := c.Providers(ctx)
	if err != nil {
		return nil, nil, err
	}
	if len(providers) == 0 {
		return nil, nil, errors.New("blobseer: no data providers registered")
	}

	type casChunk struct {
		idx     uint64
		data    []byte
		fp      cas.Fingerprint
		ranked  []string
		next    int      // next rank to try
		want    int      // replicas required
		taken   []string // providers holding a reference for this chunk
		shipped int      // replica bodies that crossed the network
		lastErr error
	}
	chunks := make([]*casChunk, len(indices))
	for i, idx := range indices {
		data := writes[idx]
		fp := cas.Sum(data)
		ranked := casPlacementRanked(fp, providers)
		want := c.replication()
		if want > len(ranked) {
			want = len(ranked)
		}
		chunks[i] = &casChunk{idx: idx, data: data, fp: fp, ranked: ranked, want: want}
	}

	// abort releases every reference taken so far under a detached context,
	// so refcounts stay exactly balanced even on cancellation.
	abort := func() {
		rel := make([]manifestEntry, 0, len(chunks))
		for _, ch := range chunks {
			if len(ch.taken) > 0 {
				rel = append(rel, manifestEntry{fp: ch.fp, providers: ch.taken})
			}
		}
		c.releaseRefs(context.WithoutCancel(ctx), rel)
	}

	failed := make(map[string]bool) // providers seen unreachable this commit
	var mu sync.Mutex               // guards failed and per-chunk result fields

	for {
		// Assign every unsatisfied chunk to its next-ranked live provider.
		assign := make(map[string][]*casChunk)
		for _, ch := range chunks {
			if len(ch.taken) >= ch.want {
				continue
			}
			for ch.next < len(ch.ranked) && failed[ch.ranked[ch.next]] {
				ch.next++
			}
			if ch.next >= len(ch.ranked) {
				abort()
				lastErr := ch.lastErr
				if lastErr == nil {
					// The chunk's remaining ranks were all skipped via the
					// shared failed set: the frame that failed belonged to
					// other chunks, so this one never recorded an error.
					lastErr = fmt.Errorf("%w: every remaining ranked provider failed earlier in this commit", transport.ErrUnreachable)
				}
				return nil, nil, fmt.Errorf("blobseer: chunk %d: placed %d of %d replicas: %w", ch.idx, len(ch.taken), ch.want, lastErr)
			}
			addr := ch.ranked[ch.next]
			ch.next++
			assign[addr] = append(assign[addr], ch)
		}
		if len(assign) == 0 {
			break // every chunk holds its full replica count
		}
		err := runGroups(ctx, c.parallelism(), assign, func(ctx context.Context, addr string, batch []*casChunk) error {
			fps := make([]cas.Fingerprint, len(batch))
			for i, ch := range batch {
				fps[i] = ch.fp
			}
			// One "have these fingerprints?" probe for the whole batch; a
			// held fingerprint has taken its reference the moment the
			// response lands, so record it immediately — an error later in
			// the commit must release exactly these. On a mid-probe error
			// the completed frames' references are recorded first (valid
			// bounds them), then the rest of the batch fails over.
			held, valid, err := c.casRefBatch(ctx, addr, fps)
			if err != nil {
				mu.Lock()
				for i, ch := range batch {
					if i < valid && held[i] {
						ch.taken = append(ch.taken, addr)
					} else {
						ch.lastErr = err
					}
				}
				failed[addr] = true
				mu.Unlock()
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				return nil // failover: chunks retry on their next rank
			}
			// Split the misses into one representative per distinct
			// fingerprint (its body must ship) and duplicates (same content
			// at another chunk index: once the representative's body lands,
			// a second probe turns them into dedup hits — no redundant body
			// in the frame).
			var missing, dupes []*casChunk
			seen := make(map[cas.Fingerprint]bool)
			mu.Lock()
			for i, ch := range batch {
				switch {
				case held[i]:
					ch.taken = append(ch.taken, addr)
				case seen[ch.fp]:
					dupes = append(dupes, ch)
				default:
					seen[ch.fp] = true
					missing = append(missing, ch)
				}
			}
			mu.Unlock()
			// Upload the bodies the provider lacks, in frames of at most
			// batchBytesLimit. The body crosses the network even if a
			// concurrent writer wins the race and the provider reports a
			// duplicate, so it always counts as transferred.
			err = splitByBytes(len(missing), func(i int) int { return len(missing[i].data) }, func(start, end int) error {
				bfps := make([]cas.Fingerprint, 0, end-start)
				bodies := make([][]byte, 0, end-start)
				for _, ch := range missing[start:end] {
					bfps = append(bfps, ch.fp)
					bodies = append(bodies, ch.data)
				}
				if err := c.casPutBatch(ctx, addr, bfps, bodies); err != nil {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
					mu.Lock()
					failed[addr] = true
					for _, ch := range missing[start:] {
						ch.lastErr = err
					}
					for _, ch := range dupes {
						ch.lastErr = err
					}
					mu.Unlock()
					return errStopGroup // earlier frames' references stand; rest fail over
				}
				mu.Lock()
				for _, ch := range missing[start:end] {
					ch.taken = append(ch.taken, addr)
					ch.shipped++
				}
				mu.Unlock()
				return nil
			})
			if errors.Is(err, errStopGroup) {
				return nil // the dupes' lastErr is marked; they fail over too
			}
			if err != nil {
				return err
			}
			if len(dupes) > 0 {
				// The representatives' bodies are stored now: a second probe
				// takes the duplicates' references as dedup hits.
				dfps := make([]cas.Fingerprint, len(dupes))
				for i, ch := range dupes {
					dfps[i] = ch.fp
				}
				dheld, dvalid, err := c.casRefBatch(ctx, addr, dfps)
				mu.Lock()
				for i, ch := range dupes {
					switch {
					case i < dvalid && dheld[i]:
						ch.taken = append(ch.taken, addr)
					case err != nil:
						ch.lastErr = err
					default:
						// A body swept between the put and this probe is
						// rare; the chunk simply retries on its next-ranked
						// provider.
					}
				}
				if err != nil {
					failed[addr] = true
				}
				mu.Unlock()
				if err != nil {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
					return nil
				}
			}
			return nil
		})
		if err != nil {
			abort()
			return nil, nil, err
		}
	}

	for _, ch := range chunks {
		stats.Chunks++
		stats.LogicalBytes += uint64(len(ch.data))
		stats.TransferBytes += uint64(ch.shipped) * uint64(len(ch.data))
		if ch.shipped == 0 {
			stats.DedupChunks++
			stats.DedupHitBytes += uint64(len(ch.data))
		}
		leaves[ch.idx] = meta.Leaf{Providers: ch.taken, Key: ch.fp.Key(), Size: uint32(len(ch.data))}
		manifest = append(manifest, manifestEntry{index: ch.idx, fp: ch.fp, providers: ch.taken})
	}
	return leaves, manifest, nil
}

// casPlacementRanked ranks every provider by rendezvous preference for the
// fingerprint. The ranking is keyed by the fingerprint-derived storage key
// (see PlacementRanked): every writer maps the same content to the same
// ranking, which is what makes dedup global, and readers and the repair
// plane recompute the same ranking from a leaf's key alone. The first
// `replication` entries are the canonical placement; the write-path
// failover walks down the ranking when a preferred provider is unreachable.
func casPlacementRanked(fp cas.Fingerprint, providers []string) []string {
	return PlacementRanked(fp.Key(), providers)
}

// casRef performs the "have fingerprint?" round trip against one provider:
// true means the provider holds the body and took a reference on it.
func (c *Client) casRef(ctx context.Context, addr string, fp cas.Fingerprint) (bool, error) {
	w := wire.NewBuffer(40)
	w.PutU8(opCasRef)
	putFingerprint(w, fp)
	resp, err := c.rpc(ctx, addr, "cas-ref", w.Bytes())
	if err != nil {
		return false, fmt.Errorf("blobseer: cas ref on %s: %w", addr, err)
	}
	r := wire.NewReader(resp)
	held := r.Bool()
	return held, r.Err()
}

// casRelease drops one reference on fp at one provider.
func (c *Client) casRelease(ctx context.Context, addr string, fp cas.Fingerprint) (reclaimedBytes uint64, err error) {
	w := wire.NewBuffer(40)
	w.PutU8(opCasRelease)
	putFingerprint(w, fp)
	resp, err := c.rpc(ctx, addr, "cas-release", w.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	r.U64() // remaining count, unused here
	reclaimed := r.U64()
	return reclaimed, r.Err()
}

// releaseRefs undoes the references a failed commit acquired (best effort;
// anything missed is picked up by the mark-and-sweep fallback GC). Callers
// pass a detached context so releases run even after cancellation.
func (c *Client) releaseRefs(ctx context.Context, manifest []manifestEntry) {
	for _, e := range manifest {
		for _, addr := range e.providers {
			c.casRelease(ctx, addr, e.fp) //nolint:errcheck // best effort
		}
	}
}

// CasStats aggregates the content-addressed repository counters across the
// given data providers: dedup hit rate, logical vs physical bytes, and
// refcount reclamation.
func (c *Client) CasStats(ctx context.Context, dataProviders []string) (cas.Stats, error) {
	var total cas.Stats
	for _, addr := range dataProviders {
		w := wire.NewBuffer(8)
		w.PutU8(opCasStats)
		r, err := c.call(ctx, addr, w)
		if err != nil {
			return total, err
		}
		s := getCasStats(r)
		if err := r.Err(); err != nil {
			return total, err
		}
		total.Add(s)
	}
	return total, nil
}

// StoreEngineStats reports one data provider's storage-engine view: the
// backend name ("seglog", "files", "mem", with a "cas+" prefix under the
// dedup layer) and its engine-specific counters.
func (c *Client) StoreEngineStats(ctx context.Context, addr string) (chunkstore.EngineStats, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opStoreStats)
	r, err := c.call(ctx, addr, w)
	if err != nil {
		return chunkstore.EngineStats{}, err
	}
	es := getEngineStats(r)
	if err := r.Err(); err != nil {
		return chunkstore.EngineStats{}, err
	}
	return es, nil
}

// CompactChunkStore asks one data provider's storage engine to run a
// compaction pass now. supported is false for engines with nothing to
// compact (file-per-chunk, in-memory), which is not an error.
func (c *Client) CompactChunkStore(ctx context.Context, addr string) (res chunkstore.CompactResult, supported bool, err error) {
	w := wire.NewBuffer(8)
	w.PutU8(opStoreCompact)
	r, err := c.call(ctx, addr, w)
	if err != nil {
		return res, false, err
	}
	supported = r.Bool()
	if supported {
		res.Segments = int(r.Uvarint())
		res.Relocated = int(r.Uvarint())
		res.ReclaimedBytes = r.U64()
	}
	if err := r.Err(); err != nil {
		return chunkstore.CompactResult{}, false, err
	}
	return res, supported, nil
}

func (c *Client) abort(ctx context.Context, blob, version uint64) {
	w := wire.NewBuffer(24)
	w.PutU8(opAbort)
	w.PutU64(blob)
	w.PutU64(version)
	c.call(ctx, c.VMAddr, w) // best effort; the version slot is released
}

// ReadStats reports what one ReadVersion had to do beyond the happy path:
// replicas failed over (provider unreachable or body absent), corrupt
// replicas detected (a body that no longer hashes to its content key — only
// detectable in dedup mode) and skipped, and chunks that exhausted their
// leaf-recorded replicas and were served through the rendezvous-ranked
// fallback over the current membership (a replica re-homed by the repair
// plane).
type ReadStats struct {
	Chunks          int // chunks read (holes excluded)
	FailedOver      int // replica attempts that moved to the next replica
	CorruptReplicas int // replicas skipped because their content hash mismatched
	RankedFallbacks int // chunks served from ranked-membership fallback providers
}

// Add accumulates other into s (aggregation across reads).
func (s *ReadStats) Add(o ReadStats) {
	s.Chunks += o.Chunks
	s.FailedOver += o.FailedOver
	s.CorruptReplicas += o.CorruptReplicas
	s.RankedFallbacks += o.RankedFallbacks
}

// ReadVersion reads size bytes at offset from the referenced snapshot into a
// new buffer. Holes (never-written ranges) read as zeros. Reads past the
// version size are truncated.
func (c *Client) ReadVersion(ctx context.Context, ref SnapshotRef, offset, size uint64) ([]byte, error) {
	data, _, err := c.ReadVersionStats(ctx, ref, offset, size)
	return data, err
}

// ReadVersionStats is ReadVersion returning failover and integrity
// accounting.
//
// The data transfer is striped: chunks are grouped by the replica provider
// chosen for each (see replicaOrder) and every provider's set moves in
// batched frames over bounded concurrent streams (Client.Parallelism). A
// chunk whose provider is unreachable or no longer holds it fails over to
// its next replica in the following pass.
//
// In dedup mode every received body is verified against the leaf's
// content-derived key (the first 128 bits of the chunk's SHA-256): a
// mismatch is treated exactly like a missing replica — the read fails over
// to the next replica and the corruption is counted — so a rotted or
// tampered replica can never reach the caller. A chunk whose leaf-recorded
// replicas are all gone falls back to the rendezvous ranking over the
// current membership, which is where the repair plane re-homes lost
// replicas.
func (c *Client) ReadVersionStats(ctx context.Context, ref SnapshotRef, offset, size uint64) ([]byte, ReadStats, error) {
	ctx = obs.WithRegistry(ctx, c.Obs)
	var stats ReadStats
	defer func() {
		reg := obs.RegistryFrom(ctx)
		reg.Counter("blobseer_read_chunks_total").Add(uint64(stats.Chunks))
		reg.Counter("blobseer_read_failovers_total").Add(uint64(stats.FailedOver))
		reg.Counter("blobseer_read_corrupt_replicas_total").Add(uint64(stats.CorruptReplicas))
		reg.Counter("blobseer_read_ranked_fallbacks_total").Add(uint64(stats.RankedFallbacks))
	}()
	info, chunkSize, err := c.GetVersion(ctx, ref)
	if err != nil {
		return nil, stats, err
	}
	if offset >= info.Size {
		return nil, stats, nil
	}
	if offset+size > info.Size {
		size = info.Size - offset
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, stats, nil
	}
	firstChunk := offset / chunkSize
	lastChunk := (offset + size - 1) / chunkSize
	slots, err := c.tree(ctx).Lookup(info.Root, info.Span, firstChunk, lastChunk-firstChunk+1)
	if err != nil {
		return nil, stats, err
	}

	type readChunk struct {
		slot     meta.LeafSlot
		order    []string // replica attempt order (rotated)
		next     int
		extended bool // order already widened with the ranked fallback
		lastErr  error
	}
	var work []*readChunk
	for _, slot := range slots {
		if !slot.Present {
			continue // zeros
		}
		work = append(work, &readChunk{slot: slot, order: replicaOrder(slot.Leaf)})
	}
	stats.Chunks = len(work)
	var members []string // ranked-fallback candidates, fetched once on demand
	for len(work) > 0 {
		// Group each chunk under its current replica provider.
		groups := make(map[string][]*readChunk)
		for _, rc := range work {
			if rc.next >= len(rc.order) && !rc.extended {
				// Every leaf-recorded replica is gone. The repair plane
				// re-homes lost replicas on the rendezvous-ranked providers
				// of the current membership — try those before giving up.
				rc.extended = true
				if members == nil {
					m, err := c.Membership(ctx)
					if err != nil {
						return nil, stats, fmt.Errorf("blobseer: chunk %v unavailable on all replicas (membership fallback: %v): %w",
							rc.slot.Leaf.Key, err, rc.lastErr)
					}
					members = m.Addrs() // draining providers still serve reads
				}
				for _, addr := range PlacementRanked(rc.slot.Leaf.Key, members) {
					if !slices.Contains(rc.order, addr) {
						rc.order = append(rc.order, addr)
					}
				}
				if rc.next < len(rc.order) {
					stats.RankedFallbacks++
				}
			}
			if rc.next >= len(rc.order) {
				lastErr := rc.lastErr
				if lastErr == nil {
					lastErr = transport.ErrNotFound
				}
				return nil, stats, fmt.Errorf("blobseer: chunk %v unavailable on all replicas: %w", rc.slot.Leaf.Key, lastErr)
			}
			groups[rc.order[rc.next]] = append(groups[rc.order[rc.next]], rc)
		}
		var mu sync.Mutex
		var retry []*readChunk
		err := runGroups(ctx, c.parallelism(), groups, func(ctx context.Context, addr string, batch []*readChunk) error {
			// Bound each frame by its expected response size.
			err := splitByBytes(len(batch), func(int) int { return int(chunkSize) }, func(start, end int) error {
				keys := make([]chunkstore.Key, 0, end-start)
				for _, rc := range batch[start:end] {
					keys = append(keys, rc.slot.Leaf.Key)
				}
				bodies, err := c.getChunkBatch(ctx, addr, keys)
				if err != nil {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
					// Provider unreachable: all its remaining chunks fail
					// over to their next replica.
					mu.Lock()
					for _, rc := range batch[start:] {
						rc.next++
						rc.lastErr = err
						stats.FailedOver++
						retry = append(retry, rc)
					}
					mu.Unlock()
					return errStopGroup
				}
				for i, rc := range batch[start:end] {
					data := bodies[i]
					if data == nil {
						mu.Lock()
						rc.next++
						stats.FailedOver++
						retry = append(retry, rc)
						mu.Unlock()
						continue
					}
					if c.Dedup && cas.Sum(data).Key() != rc.slot.Leaf.Key {
						// The replica no longer matches its content key:
						// deliver from another replica, never bad bytes.
						mu.Lock()
						rc.next++
						rc.lastErr = fmt.Errorf("blobseer: chunk %v: corrupt replica on %s", rc.slot.Leaf.Key, addr)
						stats.CorruptReplicas++
						stats.FailedOver++
						retry = append(retry, rc)
						mu.Unlock()
						continue
					}
					chunkStart := rc.slot.Index * chunkSize
					// Overlap of [chunkStart, chunkStart+len(data)) with
					// [offset, offset+size). Distinct chunks cover disjoint
					// buf ranges, so concurrent copies need no lock.
					lo := max(chunkStart, offset)
					hi := min(chunkStart+uint64(len(data)), offset+size)
					if lo < hi {
						copy(buf[lo-offset:hi-offset], data[lo-chunkStart:hi-chunkStart])
					}
				}
				return nil
			})
			if errors.Is(err, errStopGroup) {
				return nil
			}
			return err
		})
		if err != nil {
			return nil, stats, err
		}
		work = retry
	}
	return buf, stats, nil
}

// replicaOrder returns the order in which a reader tries a leaf's replicas:
// the deterministic rotation of the placement order that starts at the
// replica picked by the chunk key's hash. Readers of different chunks start
// at different replicas — spreading a restore's load across the whole
// replica set instead of hot-spotting the first-placed provider — while any
// single chunk keeps a fixed, in-order failover sequence.
func replicaOrder(l meta.Leaf) []string {
	n := len(l.Providers)
	if n <= 1 {
		return l.Providers
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(l.Key.Blob >> (8 * i))
		buf[8+i] = byte(l.Key.ID >> (8 * i))
	}
	h.Write(buf[:])
	start := int(h.Sum64() % uint64(n))
	out := make([]string, 0, n)
	out = append(out, l.Providers[start:]...)
	out = append(out, l.Providers[:start]...)
	return out
}

// WriteAt publishes a new version with data written at offset, performing
// read-modify-write for partially covered boundary chunks.
func (c *Client) WriteAt(ctx context.Context, blob uint64, offset uint64, data []byte) (VersionInfo, error) {
	if len(data) == 0 {
		prev, _, err := c.Latest(ctx, blob)
		if err != nil && !IsNotFound(err) {
			return VersionInfo{}, err
		}
		return prev, nil
	}
	var chunkSize uint64
	var prevSize uint64
	var prevVersion uint64
	var havePrev bool
	prev, cs, err := c.Latest(ctx, blob)
	switch {
	case err == nil:
		chunkSize, prevSize, prevVersion, havePrev = cs, prev.Size, prev.Version, true
	case IsNotFound(err):
		chunkSize, err = c.ChunkSize(ctx, blob)
		if err != nil {
			return VersionInfo{}, err
		}
	default:
		return VersionInfo{}, err
	}

	end := offset + uint64(len(data))
	newSize := prevSize
	if end > newSize {
		newSize = end
	}
	firstChunk := offset / chunkSize
	lastChunk := (end - 1) / chunkSize
	writes := make(map[uint64][]byte)
	for idx := firstChunk; idx <= lastChunk; idx++ {
		chunkStart := idx * chunkSize
		chunkEnd := chunkStart + chunkSize
		lo := max(chunkStart, offset)
		hi := min(chunkEnd, end)
		full := lo == chunkStart && hi == chunkEnd
		var chunk []byte
		if full {
			chunk = make([]byte, chunkSize)
			copy(chunk, data[lo-offset:hi-offset])
		} else {
			// Boundary chunk: merge with existing content. The chunk is
			// truncated when it is the blob's last chunk.
			chunkLen := chunkSize
			if chunkEnd > newSize {
				chunkLen = newSize - chunkStart
			}
			chunk = make([]byte, chunkLen)
			if havePrev && chunkStart < prevSize {
				old, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: prevVersion}, chunkStart, chunkSize)
				if err != nil {
					return VersionInfo{}, err
				}
				copy(chunk, old)
			}
			copy(chunk[lo-chunkStart:], data[lo-offset:hi-offset])
		}
		writes[idx] = chunk
	}
	return c.WriteVersion(ctx, blob, writes, newSize)
}

// Clone creates a new blob whose version 0 is the referenced snapshot of the
// source blob, sharing all content. This is the CLONE primitive.
func (c *Client) Clone(ctx context.Context, src SnapshotRef) (uint64, error) {
	w := wire.NewBuffer(24)
	w.PutU8(opClone)
	w.PutU64(src.Blob)
	w.PutU64(src.Version)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return 0, err
	}
	id := r.U64()
	return id, r.Err()
}

// ReclaimStats reports what a Retire released through the content-addressed
// repository's reference counting.
type ReclaimStats struct {
	ReleasedRefs    int    // references dropped (per chunk write, per replica)
	ReclaimedChunks int    // bodies whose count reached zero and were deleted
	ReclaimedBytes  uint64 // payload bytes those bodies held
	Failed          int    // release calls that could not reach their provider
}

// Retire marks all versions of blob below `before` as garbage-collectable.
func (c *Client) Retire(ctx context.Context, blob, before uint64) error {
	_, err := c.RetireStats(ctx, blob, before)
	return err
}

// RetireStats retires versions below `before` and immediately releases the
// content-addressed references held by the superseded chunk writes of the
// retired snapshots — incremental garbage collection in O(retired chunks),
// no repository sweep. For blobs written without Dedup there is nothing to
// release and the stats come back zero (the mark-and-sweep GC still applies).
// Releases to unreachable providers are counted in Failed and left for the
// sweep to reconcile.
func (c *Client) RetireStats(ctx context.Context, blob, before uint64) (ReclaimStats, error) {
	var stats ReclaimStats
	w := wire.NewBuffer(24)
	w.PutU8(opRetire)
	w.PutU64(blob)
	w.PutU64(before)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return stats, err
	}
	r.U64() // retired horizon
	n := r.Uvarint()
	type release struct {
		fp        cas.Fingerprint
		providers []string
	}
	releases := make([]release, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		var rel release
		rel.fp = getFingerprint(r)
		np := r.Uvarint()
		rel.providers = make([]string, np)
		for j := range rel.providers {
			rel.providers[j] = r.String()
		}
		releases = append(releases, rel)
	}
	if err := r.Err(); err != nil {
		return stats, err
	}
	// The version manager already dropped its supersede records: finish the
	// releases even if ctx is cancelled meanwhile, or the refs would leak
	// until the sweep.
	releaseCtx := context.WithoutCancel(ctx)
	for _, rel := range releases {
		for _, addr := range rel.providers {
			reclaimed, err := c.casRelease(releaseCtx, addr, rel.fp)
			if err != nil {
				stats.Failed++
				continue
			}
			stats.ReleasedRefs++
			if reclaimed > 0 {
				stats.ReclaimedChunks++
				stats.ReclaimedBytes += reclaimed
			}
		}
	}
	return stats, nil
}

// GCStats reports what a garbage collection pass reclaimed.
type GCStats struct {
	LiveChunks    int
	LiveNodes     int
	DeletedChunks int
	DeletedNodes  int
}

// GC performs a mark-and-sweep over the whole deployment: every tree node
// and chunk reachable from a non-retired version survives; everything else
// is deleted from the metadata and data providers. This implements the
// paper's proposed future-work extension (transparent snapshot garbage
// collection) in its exhaustive form.
//
// With Dedup enabled, RetireStats already reclaims retired snapshots' chunk
// bodies incrementally through the content-addressed repository's reference
// counts, in O(retired chunks); this sweep remains the full-fidelity
// fallback — it also collects metadata-tree nodes, chunks orphaned by failed
// commits, and references leaked past unreachable providers. Sweeping a
// CAS-held chunk deletes its body and dedup index entry together, so the two
// collectors compose safely.
func (c *Client) GC(ctx context.Context, dataProviders []string) (GCStats, error) {
	var stats GCStats
	live, err := c.LiveVersions(ctx)
	if err != nil {
		return stats, err
	}
	liveNodes := make(map[meta.NodeKey]struct{})
	liveChunks := make(map[chunkstore.Key]struct{})
	tr := c.tree(ctx)
	for _, lr := range live {
		if !lr.Info.Root.Valid {
			continue
		}
		err := tr.Walk(lr.Info.Root, lr.Info.Span, func(k meta.NodeKey, isLeaf bool, l meta.Leaf) error {
			liveNodes[k] = struct{}{}
			if isLeaf {
				liveChunks[l.Key] = struct{}{}
			}
			return nil
		})
		if err != nil {
			return stats, fmt.Errorf("blobseer: gc mark blob %d v%d: %w", lr.Blob, lr.Info.Version, err)
		}
	}
	stats.LiveChunks = len(liveChunks)
	stats.LiveNodes = len(liveNodes)

	// Sweep metadata providers.
	for _, addr := range c.MetaAddrs {
		w := wire.NewBuffer(8)
		w.PutU8(opNodeList)
		r, err := c.call(ctx, addr, w)
		if err != nil {
			return stats, err
		}
		n := r.Uvarint()
		var dead []meta.NodeKey
		for i := uint64(0); i < n; i++ {
			k := getNodeKey(r)
			if _, ok := liveNodes[k]; !ok {
				dead = append(dead, k)
			}
		}
		if err := r.Err(); err != nil {
			return stats, err
		}
		for _, k := range dead {
			w := wire.NewBuffer(40)
			w.PutU8(opNodeDelete)
			putNodeKey(w, k)
			if _, err := c.call(ctx, addr, w); err != nil {
				return stats, err
			}
			stats.DeletedNodes++
		}
	}

	// Sweep data providers.
	for _, addr := range dataProviders {
		w := wire.NewBuffer(8)
		w.PutU8(opChunkList)
		r, err := c.call(ctx, addr, w)
		if err != nil {
			return stats, err
		}
		n := r.Uvarint()
		var dead []chunkstore.Key
		for i := uint64(0); i < n; i++ {
			k := getChunkKey(r)
			if _, ok := liveChunks[k]; !ok {
				dead = append(dead, k)
			}
		}
		if err := r.Err(); err != nil {
			return stats, err
		}
		for _, k := range dead {
			w := wire.NewBuffer(24)
			w.PutU8(opChunkDelete)
			putChunkKey(w, k)
			if _, err := c.call(ctx, addr, w); err != nil {
				return stats, err
			}
			stats.DeletedChunks++
		}
	}
	return stats, nil
}

// Providers returns the registered data provider addresses.
func (c *Client) Providers(ctx context.Context) ([]string, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opProviders)
	r, err := c.call(ctx, c.PMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.String())
	}
	return out, r.Err()
}

// RegisterProvider announces a data provider to the provider manager.
func (c *Client) RegisterProvider(ctx context.Context, addr string) error {
	w := wire.NewBuffer(32)
	w.PutU8(opRegister)
	w.PutString(addr)
	_, err := c.call(ctx, c.PMAddr, w)
	return err
}

// UnregisterProvider removes a (failed) data provider from placement. Data
// it held remains readable only through replicas on other providers.
func (c *Client) UnregisterProvider(ctx context.Context, addr string) error {
	w := wire.NewBuffer(32)
	w.PutU8(opUnregister)
	w.PutString(addr)
	_, err := c.call(ctx, c.PMAddr, w)
	return err
}

// Usage sums storage used across the given data providers.
func (c *Client) Usage(ctx context.Context, dataProviders []string) (bytes uint64, chunks uint64, err error) {
	for _, addr := range dataProviders {
		w := wire.NewBuffer(8)
		w.PutU8(opChunkUsage)
		r, cerr := c.call(ctx, addr, w)
		if cerr != nil {
			return 0, 0, cerr
		}
		bytes += r.U64()
		chunks += r.U64()
		if err := r.Err(); err != nil {
			return 0, 0, err
		}
	}
	return bytes, chunks, nil
}

// MetaUsage sums metadata bytes across the metadata providers.
func (c *Client) MetaUsage(ctx context.Context) (bytes uint64, nodes uint64, err error) {
	for _, addr := range c.MetaAddrs {
		w := wire.NewBuffer(8)
		w.PutU8(opNodeUsage)
		r, cerr := c.call(ctx, addr, w)
		if cerr != nil {
			return 0, 0, cerr
		}
		bytes += r.U64()
		nodes += r.U64()
		if err := r.Err(); err != nil {
			return 0, 0, err
		}
	}
	return bytes, nodes, nil
}
