package blobseer

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"blobcr/internal/chunkstore"
	"blobcr/internal/meta"
	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// Client accesses a BlobSeer deployment. A Client is stateless apart from
// the deployment addresses; it is safe to create one per goroutine.
//
// Concurrent writers to *different* blobs are fully supported (that is the
// checkpoint workload: one checkpoint image per VM). Concurrent writers to
// the same blob are serialized by version-manager tickets; each writer
// should base its metadata on the latest *published* version.
type Client struct {
	Net         transport.Network
	VMAddr      string   // version manager
	PMAddr      string   // provider manager
	MetaAddrs   []string // metadata providers, hash-sharded
	Replication int      // chunk replica count (default 1)
}

func (c *Client) replication() int {
	if c.Replication < 1 {
		return 1
	}
	return c.Replication
}

// call issues one request and decodes errors.
func (c *Client) call(addr string, w *wire.Buffer) (*wire.Reader, error) {
	resp, err := c.Net.Call(addr, w.Bytes())
	if err != nil {
		return nil, err
	}
	return wire.NewReader(resp), nil
}

// nodeStore returns the remote metadata NodeStore view.
func (c *Client) nodeStore() *remoteNodeStore {
	return &remoteNodeStore{net: c.Net, addrs: c.MetaAddrs}
}

func (c *Client) tree() *meta.Tree { return &meta.Tree{Store: c.nodeStore()} }

// remoteNodeStore shards tree nodes across metadata providers by key hash.
type remoteNodeStore struct {
	net   transport.Network
	addrs []string
}

func (s *remoteNodeStore) shard(k meta.NodeKey) string {
	h := fnv.New64a()
	var buf [32]byte
	le := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	le(0, k.Blob)
	le(8, k.Version)
	le(16, k.Offset)
	le(24, k.Span)
	h.Write(buf[:])
	return s.addrs[h.Sum64()%uint64(len(s.addrs))]
}

func (s *remoteNodeStore) PutNode(k meta.NodeKey, encoded []byte) error {
	w := wire.NewBuffer(64 + len(encoded))
	w.PutU8(opNodePut)
	putNodeKey(w, k)
	w.PutBytes(encoded)
	_, err := s.net.Call(s.shard(k), w.Bytes())
	return err
}

func (s *remoteNodeStore) GetNode(k meta.NodeKey) ([]byte, error) {
	w := wire.NewBuffer(64)
	w.PutU8(opNodeGet)
	putNodeKey(w, k)
	resp, err := s.net.Call(s.shard(k), w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	val := r.BytesCopy()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return val, nil
}

// CreateBlob registers a new empty BLOB with the given chunk size and
// returns its id.
func (c *Client) CreateBlob(chunkSize uint64) (uint64, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opCreate)
	w.PutU64(chunkSize)
	r, err := c.call(c.VMAddr, w)
	if err != nil {
		return 0, err
	}
	id := r.U64()
	return id, r.Err()
}

// Latest returns the most recent published version of the blob and the
// blob's chunk size.
func (c *Client) Latest(blob uint64) (VersionInfo, uint64, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opLatest)
	w.PutU64(blob)
	r, err := c.call(c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, 0, err
	}
	info := getVersionInfo(r)
	cs := r.U64()
	return info, cs, r.Err()
}

// GetVersion returns a specific published version and the blob's chunk size.
func (c *Client) GetVersion(blob, version uint64) (VersionInfo, uint64, error) {
	w := wire.NewBuffer(24)
	w.PutU8(opGetVersion)
	w.PutU64(blob)
	w.PutU64(version)
	r, err := c.call(c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, 0, err
	}
	info := getVersionInfo(r)
	cs := r.U64()
	return info, cs, r.Err()
}

// ChunkSize returns the blob's chunk size (works for blobs with no
// published versions).
func (c *Client) ChunkSize(blob uint64) (uint64, error) {
	blobs, err := c.ListBlobs()
	if err != nil {
		return 0, err
	}
	for _, b := range blobs {
		if b.ID == blob {
			return b.ChunkSize, nil
		}
	}
	return 0, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
}

// BlobInfo summarizes one blob in ListBlobs output.
type BlobInfo struct {
	ID        uint64
	ChunkSize uint64
	Versions  uint64
}

// ListBlobs enumerates all blobs known to the version manager.
func (c *Client) ListBlobs() ([]BlobInfo, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opListBlobs)
	r, err := c.call(c.VMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]BlobInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, BlobInfo{ID: r.U64(), ChunkSize: r.U64(), Versions: r.U64()})
	}
	return out, r.Err()
}

// WriteVersion publishes a new version of blob consisting of the previous
// version's content overlaid with the given whole-chunk writes, and resizes
// the blob to newSize bytes (pass the previous size to keep it). The chunk
// data slices must each be at most chunkSize long. This is the COMMIT
// primitive of the paper: only the written chunks move; everything else is
// shared with the previous version.
func (c *Client) WriteVersion(blob uint64, writes map[uint64][]byte, newSize uint64) (VersionInfo, error) {
	// Previous version (absent for the first write).
	var prev VersionInfo
	var chunkSize uint64
	prevInfo, cs, err := c.Latest(blob)
	switch {
	case err == nil:
		prev = prevInfo
		chunkSize = cs
	case isNotFound(err):
		chunkSize, err = c.ChunkSize(blob)
		if err != nil {
			return VersionInfo{}, err
		}
	default:
		return VersionInfo{}, err
	}
	for idx, data := range writes {
		if uint64(len(data)) > chunkSize {
			return VersionInfo{}, fmt.Errorf("blobseer: chunk %d: %d bytes exceeds chunk size %d", idx, len(data), chunkSize)
		}
	}

	// Ticket: version number + private chunk-id range.
	w := wire.NewBuffer(24)
	w.PutU8(opTicket)
	w.PutU64(blob)
	w.PutU64(uint64(len(writes)))
	r, err := c.call(c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, err
	}
	version := r.U64()
	firstID := r.U64()
	if err := r.Err(); err != nil {
		return VersionInfo{}, err
	}

	// Placement for each written chunk.
	w = wire.NewBuffer(16)
	w.PutU8(opPlacement)
	w.PutUvarint(uint64(len(writes)))
	w.PutUvarint(uint64(c.replication()))
	r, err = c.call(c.PMAddr, w)
	if err != nil {
		c.abort(blob, version)
		return VersionInfo{}, err
	}
	nPlaced := r.Uvarint()
	placements := make([][]string, nPlaced)
	for i := range placements {
		k := r.Uvarint()
		placements[i] = make([]string, k)
		for j := range placements[i] {
			placements[i][j] = r.String()
		}
	}
	if err := r.Err(); err != nil {
		c.abort(blob, version)
		return VersionInfo{}, err
	}

	// Deterministic order of chunk uploads.
	indices := make([]uint64, 0, len(writes))
	for idx := range writes {
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })

	leaves := make(map[uint64]meta.Leaf, len(writes))
	for i, idx := range indices {
		key := chunkstore.Key{Blob: blob, ID: firstID + uint64(i)}
		data := writes[idx]
		for _, providerAddr := range placements[i] {
			pw := wire.NewBuffer(32 + len(data))
			pw.PutU8(opChunkPut)
			putChunkKey(pw, key)
			pw.PutBytes(data)
			if _, err := c.Net.Call(providerAddr, pw.Bytes()); err != nil {
				c.abort(blob, version)
				return VersionInfo{}, fmt.Errorf("blobseer: put chunk to %s: %w", providerAddr, err)
			}
		}
		leaves[idx] = meta.Leaf{Providers: placements[i], Key: key, Size: uint32(len(data))}
	}

	// Metadata tree for the new version.
	maxIdx := uint64(0)
	if newSize > 0 {
		maxIdx = (newSize + chunkSize - 1) / chunkSize
	}
	for _, idx := range indices {
		if idx+1 > maxIdx {
			maxIdx = idx + 1
		}
	}
	newSpan := meta.NextPow2(maxIdx)
	if newSpan < prev.Span {
		newSpan = prev.Span
	}
	root, err := c.tree().Publish(blob, version, prev.Root, prev.Span, newSpan, leaves)
	if err != nil {
		c.abort(blob, version)
		return VersionInfo{}, err
	}

	// Commit.
	info := VersionInfo{Version: version, Size: newSize, Span: newSpan, Root: root}
	w = wire.NewBuffer(64)
	w.PutU8(opCommit)
	w.PutU64(blob)
	putVersionInfo(w, info)
	if _, err := c.call(c.VMAddr, w); err != nil {
		return VersionInfo{}, err
	}
	return info, nil
}

func (c *Client) abort(blob, version uint64) {
	w := wire.NewBuffer(24)
	w.PutU8(opAbort)
	w.PutU64(blob)
	w.PutU64(version)
	c.call(c.VMAddr, w) // best effort; the version slot is released
}

func isNotFound(err error) bool {
	if errors.Is(err, ErrVersionNotFound) || errors.Is(err, ErrBlobNotFound) {
		return true
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return containsNotFound(re.Msg)
	}
	return false
}

func containsNotFound(s string) bool {
	return contains(s, "not found") || contains(s, "no versions")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// ReadVersion reads size bytes at offset from the given version into a new
// buffer. Holes (never-written ranges) read as zeros. Reads past the version
// size are truncated.
func (c *Client) ReadVersion(blob, version uint64, offset, size uint64) ([]byte, error) {
	info, chunkSize, err := c.GetVersion(blob, version)
	if err != nil {
		return nil, err
	}
	if offset >= info.Size {
		return nil, nil
	}
	if offset+size > info.Size {
		size = info.Size - offset
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	firstChunk := offset / chunkSize
	lastChunk := (offset + size - 1) / chunkSize
	slots, err := c.tree().Lookup(info.Root, info.Span, firstChunk, lastChunk-firstChunk+1)
	if err != nil {
		return nil, err
	}
	for _, slot := range slots {
		if !slot.Present {
			continue // zeros
		}
		data, err := c.fetchChunk(slot.Leaf)
		if err != nil {
			return nil, err
		}
		chunkStart := slot.Index * chunkSize
		// Overlap of [chunkStart, chunkStart+len(data)) with [offset, offset+size).
		lo := maxU64(chunkStart, offset)
		hi := minU64(chunkStart+uint64(len(data)), offset+size)
		if lo < hi {
			copy(buf[lo-offset:hi-offset], data[lo-chunkStart:hi-chunkStart])
		}
	}
	return buf, nil
}

// fetchChunk retrieves one chunk, trying replicas in order.
func (c *Client) fetchChunk(l meta.Leaf) ([]byte, error) {
	var lastErr error
	for _, addr := range l.Providers {
		w := wire.NewBuffer(24)
		w.PutU8(opChunkGet)
		putChunkKey(w, l.Key)
		resp, err := c.Net.Call(addr, w.Bytes())
		if err != nil {
			lastErr = err
			continue
		}
		r := wire.NewReader(resp)
		data := r.BytesCopy()
		if err := r.Err(); err != nil {
			lastErr = err
			continue
		}
		return data, nil
	}
	return nil, fmt.Errorf("blobseer: chunk %v unavailable on all replicas: %w", l.Key, lastErr)
}

// WriteAt publishes a new version with data written at offset, performing
// read-modify-write for partially covered boundary chunks.
func (c *Client) WriteAt(blob uint64, offset uint64, data []byte) (VersionInfo, error) {
	if len(data) == 0 {
		prev, _, err := c.Latest(blob)
		if err != nil && !isNotFound(err) {
			return VersionInfo{}, err
		}
		return prev, nil
	}
	var chunkSize uint64
	var prevSize uint64
	var prevVersion uint64
	var havePrev bool
	prev, cs, err := c.Latest(blob)
	switch {
	case err == nil:
		chunkSize, prevSize, prevVersion, havePrev = cs, prev.Size, prev.Version, true
	case isNotFound(err):
		chunkSize, err = c.ChunkSize(blob)
		if err != nil {
			return VersionInfo{}, err
		}
	default:
		return VersionInfo{}, err
	}

	end := offset + uint64(len(data))
	newSize := prevSize
	if end > newSize {
		newSize = end
	}
	firstChunk := offset / chunkSize
	lastChunk := (end - 1) / chunkSize
	writes := make(map[uint64][]byte)
	for idx := firstChunk; idx <= lastChunk; idx++ {
		chunkStart := idx * chunkSize
		chunkEnd := chunkStart + chunkSize
		lo := maxU64(chunkStart, offset)
		hi := minU64(chunkEnd, end)
		full := lo == chunkStart && hi == chunkEnd
		var chunk []byte
		if full {
			chunk = make([]byte, chunkSize)
			copy(chunk, data[lo-offset:hi-offset])
		} else {
			// Boundary chunk: merge with existing content. The chunk is
			// truncated when it is the blob's last chunk.
			chunkLen := chunkSize
			if chunkEnd > newSize {
				chunkLen = newSize - chunkStart
			}
			chunk = make([]byte, chunkLen)
			if havePrev && chunkStart < prevSize {
				old, err := c.ReadVersion(blob, prevVersion, chunkStart, chunkSize)
				if err != nil {
					return VersionInfo{}, err
				}
				copy(chunk, old)
			}
			copy(chunk[lo-chunkStart:], data[lo-offset:hi-offset])
		}
		writes[idx] = chunk
	}
	return c.WriteVersion(blob, writes, newSize)
}

// Clone creates a new blob whose version 0 is the given version of the
// source blob, sharing all content. This is the CLONE primitive.
func (c *Client) Clone(srcBlob, srcVersion uint64) (uint64, error) {
	w := wire.NewBuffer(24)
	w.PutU8(opClone)
	w.PutU64(srcBlob)
	w.PutU64(srcVersion)
	r, err := c.call(c.VMAddr, w)
	if err != nil {
		return 0, err
	}
	id := r.U64()
	return id, r.Err()
}

// Retire marks all versions of blob below `before` as garbage-collectable.
func (c *Client) Retire(blob, before uint64) error {
	w := wire.NewBuffer(24)
	w.PutU8(opRetire)
	w.PutU64(blob)
	w.PutU64(before)
	_, err := c.call(c.VMAddr, w)
	return err
}

// liveRoot is one entry of the version manager's live set.
type liveRoot struct {
	blob uint64
	info VersionInfo
}

func (c *Client) listLive() ([]liveRoot, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opListLive)
	r, err := c.call(c.VMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]liveRoot, 0, n)
	for i := uint64(0); i < n; i++ {
		blob := r.U64()
		info := getVersionInfo(r)
		r.U64() // chunk size, unused here
		out = append(out, liveRoot{blob: blob, info: info})
	}
	return out, r.Err()
}

// GCStats reports what a garbage collection pass reclaimed.
type GCStats struct {
	LiveChunks    int
	LiveNodes     int
	DeletedChunks int
	DeletedNodes  int
}

// GC performs a mark-and-sweep over the whole deployment: every tree node
// and chunk reachable from a non-retired version survives; everything else
// is deleted from the metadata and data providers. This implements the
// paper's proposed future-work extension (transparent snapshot garbage
// collection).
func (c *Client) GC(dataProviders []string) (GCStats, error) {
	var stats GCStats
	live, err := c.listLive()
	if err != nil {
		return stats, err
	}
	liveNodes := make(map[meta.NodeKey]struct{})
	liveChunks := make(map[chunkstore.Key]struct{})
	tr := c.tree()
	for _, lr := range live {
		if !lr.info.Root.Valid {
			continue
		}
		err := tr.Walk(lr.info.Root, lr.info.Span, func(k meta.NodeKey, isLeaf bool, l meta.Leaf) error {
			liveNodes[k] = struct{}{}
			if isLeaf {
				liveChunks[l.Key] = struct{}{}
			}
			return nil
		})
		if err != nil {
			return stats, fmt.Errorf("blobseer: gc mark blob %d v%d: %w", lr.blob, lr.info.Version, err)
		}
	}
	stats.LiveChunks = len(liveChunks)
	stats.LiveNodes = len(liveNodes)

	// Sweep metadata providers.
	for _, addr := range c.MetaAddrs {
		w := wire.NewBuffer(8)
		w.PutU8(opNodeList)
		r, err := c.call(addr, w)
		if err != nil {
			return stats, err
		}
		n := r.Uvarint()
		var dead []meta.NodeKey
		for i := uint64(0); i < n; i++ {
			k := getNodeKey(r)
			if _, ok := liveNodes[k]; !ok {
				dead = append(dead, k)
			}
		}
		if err := r.Err(); err != nil {
			return stats, err
		}
		for _, k := range dead {
			w := wire.NewBuffer(40)
			w.PutU8(opNodeDelete)
			putNodeKey(w, k)
			if _, err := c.call(addr, w); err != nil {
				return stats, err
			}
			stats.DeletedNodes++
		}
	}

	// Sweep data providers.
	for _, addr := range dataProviders {
		w := wire.NewBuffer(8)
		w.PutU8(opChunkList)
		r, err := c.call(addr, w)
		if err != nil {
			return stats, err
		}
		n := r.Uvarint()
		var dead []chunkstore.Key
		for i := uint64(0); i < n; i++ {
			k := getChunkKey(r)
			if _, ok := liveChunks[k]; !ok {
				dead = append(dead, k)
			}
		}
		if err := r.Err(); err != nil {
			return stats, err
		}
		for _, k := range dead {
			w := wire.NewBuffer(24)
			w.PutU8(opChunkDelete)
			putChunkKey(w, k)
			if _, err := c.call(addr, w); err != nil {
				return stats, err
			}
			stats.DeletedChunks++
		}
	}
	return stats, nil
}

// Providers returns the registered data provider addresses.
func (c *Client) Providers() ([]string, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opProviders)
	r, err := c.call(c.PMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.String())
	}
	return out, r.Err()
}

// RegisterProvider announces a data provider to the provider manager.
func (c *Client) RegisterProvider(addr string) error {
	w := wire.NewBuffer(32)
	w.PutU8(opRegister)
	w.PutString(addr)
	_, err := c.call(c.PMAddr, w)
	return err
}

// UnregisterProvider removes a (failed) data provider from placement. Data
// it held remains readable only through replicas on other providers.
func (c *Client) UnregisterProvider(addr string) error {
	w := wire.NewBuffer(32)
	w.PutU8(opUnregister)
	w.PutString(addr)
	_, err := c.call(c.PMAddr, w)
	return err
}

// Usage sums storage used across the given data providers.
func (c *Client) Usage(dataProviders []string) (bytes uint64, chunks uint64, err error) {
	for _, addr := range dataProviders {
		w := wire.NewBuffer(8)
		w.PutU8(opChunkUsage)
		r, cerr := c.call(addr, w)
		if cerr != nil {
			return 0, 0, cerr
		}
		bytes += r.U64()
		chunks += r.U64()
		if err := r.Err(); err != nil {
			return 0, 0, err
		}
	}
	return bytes, chunks, nil
}

// MetaUsage sums metadata bytes across the metadata providers.
func (c *Client) MetaUsage() (bytes uint64, nodes uint64, err error) {
	for _, addr := range c.MetaAddrs {
		w := wire.NewBuffer(8)
		w.PutU8(opNodeUsage)
		r, cerr := c.call(addr, w)
		if cerr != nil {
			return 0, 0, cerr
		}
		bytes += r.U64()
		nodes += r.U64()
		if err := r.Err(); err != nil {
			return 0, 0, err
		}
	}
	return bytes, nodes, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
