package blobseer

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/meta"
	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// Client accesses a BlobSeer deployment. A Client is stateless apart from
// the deployment addresses; it is safe to create one per goroutine.
//
// Every operation takes a context.Context: cancelling it abandons the
// operation. A cancelled commit runs its abort path under a detached context
// (context.WithoutCancel), releasing the version ticket and every
// content-addressed reference the commit had taken, so dedup refcounts never
// leak.
//
// Concurrent writers to *different* blobs are fully supported (that is the
// checkpoint workload: one checkpoint image per VM). Concurrent writers to
// the same blob are serialized by version-manager tickets; each writer
// should base its metadata on the latest *published* version.
type Client struct {
	Net         transport.Network
	VMAddr      string   // version manager
	PMAddr      string   // provider manager
	MetaAddrs   []string // metadata providers, hash-sharded
	Replication int      // chunk replica count (default 1)

	// Dedup routes commits through the content-addressed repository
	// (internal/cas): chunks are fingerprinted, placed by rendezvous hash of
	// their content, and a "have fingerprint?" round trip (opCasRef) skips
	// the body transfer for content any snapshot already stored. Retire then
	// releases the retired snapshots' references instead of relying on a
	// whole-repository sweep. Requires CAS-capable data providers (Deploy
	// creates them).
	Dedup bool
}

func (c *Client) replication() int {
	if c.Replication < 1 {
		return 1
	}
	return c.Replication
}

// call issues one request and decodes errors.
func (c *Client) call(ctx context.Context, addr string, w *wire.Buffer) (*wire.Reader, error) {
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return nil, err
	}
	return wire.NewReader(resp), nil
}

// nodeStore returns the remote metadata NodeStore view, bound to ctx for the
// duration of one tree operation.
func (c *Client) nodeStore(ctx context.Context) *remoteNodeStore {
	return &remoteNodeStore{ctx: ctx, net: c.Net, addrs: c.MetaAddrs}
}

func (c *Client) tree(ctx context.Context) *meta.Tree {
	return &meta.Tree{Store: c.nodeStore(ctx)}
}

// remoteNodeStore shards tree nodes across metadata providers by key hash.
// It is a request-scoped view: the context is the operation's, captured when
// the store is created, because meta.NodeStore is context-free.
type remoteNodeStore struct {
	ctx   context.Context
	net   transport.Network
	addrs []string
}

func (s *remoteNodeStore) shard(k meta.NodeKey) string {
	h := fnv.New64a()
	var buf [32]byte
	le := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	le(0, k.Blob)
	le(8, k.Version)
	le(16, k.Offset)
	le(24, k.Span)
	h.Write(buf[:])
	return s.addrs[h.Sum64()%uint64(len(s.addrs))]
}

func (s *remoteNodeStore) PutNode(k meta.NodeKey, encoded []byte) error {
	w := wire.NewBuffer(64 + len(encoded))
	w.PutU8(opNodePut)
	putNodeKey(w, k)
	w.PutBytes(encoded)
	_, err := s.net.Call(s.ctx, s.shard(k), w.Bytes())
	return err
}

func (s *remoteNodeStore) GetNode(k meta.NodeKey) ([]byte, error) {
	w := wire.NewBuffer(64)
	w.PutU8(opNodeGet)
	putNodeKey(w, k)
	resp, err := s.net.Call(s.ctx, s.shard(k), w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	val := r.BytesCopy()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return val, nil
}

// CreateBlob registers a new empty BLOB with the given chunk size and
// returns its id.
func (c *Client) CreateBlob(ctx context.Context, chunkSize uint64) (uint64, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opCreate)
	w.PutU64(chunkSize)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return 0, err
	}
	id := r.U64()
	return id, r.Err()
}

// Latest returns the most recent published version of the blob and the
// blob's chunk size.
func (c *Client) Latest(ctx context.Context, blob uint64) (VersionInfo, uint64, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opLatest)
	w.PutU64(blob)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, 0, err
	}
	info := getVersionInfo(r)
	cs := r.U64()
	return info, cs, r.Err()
}

// GetVersion returns the referenced published version and the blob's chunk
// size.
func (c *Client) GetVersion(ctx context.Context, ref SnapshotRef) (VersionInfo, uint64, error) {
	w := wire.NewBuffer(24)
	w.PutU8(opGetVersion)
	w.PutU64(ref.Blob)
	w.PutU64(ref.Version)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, 0, err
	}
	info := getVersionInfo(r)
	cs := r.U64()
	return info, cs, r.Err()
}

// ChunkSize returns the blob's chunk size (works for blobs with no
// published versions).
func (c *Client) ChunkSize(ctx context.Context, blob uint64) (uint64, error) {
	blobs, err := c.ListBlobs(ctx)
	if err != nil {
		return 0, err
	}
	for _, b := range blobs {
		if b.ID == blob {
			return b.ChunkSize, nil
		}
	}
	return 0, fmt.Errorf("%w: %d", ErrBlobNotFound, blob)
}

// BlobInfo summarizes one blob in ListBlobs output.
type BlobInfo struct {
	ID        uint64
	ChunkSize uint64
	Versions  uint64
}

// ListBlobs enumerates all blobs known to the version manager.
func (c *Client) ListBlobs(ctx context.Context) ([]BlobInfo, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opListBlobs)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]BlobInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, BlobInfo{ID: r.U64(), ChunkSize: r.U64(), Versions: r.U64()})
	}
	return out, r.Err()
}

// CommitStats reports what one WriteVersion moved and what deduplication
// saved. LogicalBytes is what the commit would have shipped without the
// content-addressed repository (payload times replication); TransferBytes is
// what actually crossed the network. Without Dedup the two are equal.
type CommitStats struct {
	Chunks        int    // chunks written by the commit
	DedupChunks   int    // chunks whose body was already held by every replica
	LogicalBytes  uint64 // payload bytes x replication
	TransferBytes uint64 // bytes actually shipped to data providers
}

// Add accumulates other into s (aggregation across commits or modules).
func (s *CommitStats) Add(o CommitStats) {
	s.Chunks += o.Chunks
	s.DedupChunks += o.DedupChunks
	s.LogicalBytes += o.LogicalBytes
	s.TransferBytes += o.TransferBytes
}

// WriteVersion publishes a new version of blob consisting of the previous
// version's content overlaid with the given whole-chunk writes, and resizes
// the blob to newSize bytes (pass the previous size to keep it). The chunk
// data slices must each be at most chunkSize long. This is the COMMIT
// primitive of the paper: only the written chunks move; everything else is
// shared with the previous version.
func (c *Client) WriteVersion(ctx context.Context, blob uint64, writes map[uint64][]byte, newSize uint64) (VersionInfo, error) {
	info, _, err := c.WriteVersionStats(ctx, blob, writes, newSize)
	return info, err
}

// WriteVersionStats is WriteVersion returning per-commit transfer and dedup
// accounting. If ctx is cancelled mid-commit, the abort path runs under a
// detached context: the version ticket is released and every
// content-addressed reference the commit took is returned, so refcounts stay
// balanced.
func (c *Client) WriteVersionStats(ctx context.Context, blob uint64, writes map[uint64][]byte, newSize uint64) (VersionInfo, CommitStats, error) {
	return c.writeVersion(ctx, blob, nil, writes, newSize)
}

// WriteVersionFrom publishes a new version of base.Blob whose unwritten
// content comes from the given published base snapshot rather than from the
// blob's latest version. This is the rollback-safe COMMIT: after a
// deployment rolls back to an older snapshot, a newer orphaned version (a
// commit that was publishing when the failure hit) may still be the blob's
// latest — basing the next commit on it would silently resurrect the very
// writes the rollback undid. The mirroring module commits through this path,
// passing the snapshot its device actually exposes.
func (c *Client) WriteVersionFrom(ctx context.Context, base SnapshotRef, writes map[uint64][]byte, newSize uint64) (VersionInfo, error) {
	info, _, err := c.WriteVersionStatsFrom(ctx, base, writes, newSize)
	return info, err
}

// WriteVersionStatsFrom is WriteVersionFrom returning per-commit transfer
// and dedup accounting.
func (c *Client) WriteVersionStatsFrom(ctx context.Context, base SnapshotRef, writes map[uint64][]byte, newSize uint64) (VersionInfo, CommitStats, error) {
	return c.writeVersion(ctx, base.Blob, &base, writes, newSize)
}

// writeVersion implements both commit flavors: with base == nil the new
// version overlays the blob's latest published version; otherwise it
// overlays the explicitly named base snapshot.
func (c *Client) writeVersion(ctx context.Context, blob uint64, base *SnapshotRef, writes map[uint64][]byte, newSize uint64) (VersionInfo, CommitStats, error) {
	var stats CommitStats
	// Cleanup must run even when ctx is already cancelled.
	cleanupCtx := context.WithoutCancel(ctx)
	// Previous version (absent for the first write).
	var prev VersionInfo
	var chunkSize uint64
	if base != nil {
		prevInfo, cs, err := c.GetVersion(ctx, *base)
		if err != nil {
			return VersionInfo{}, stats, fmt.Errorf("blobseer: commit base %s: %w", *base, err)
		}
		prev = prevInfo
		chunkSize = cs
	} else {
		prevInfo, cs, err := c.Latest(ctx, blob)
		switch {
		case err == nil:
			prev = prevInfo
			chunkSize = cs
		case IsNotFound(err):
			chunkSize, err = c.ChunkSize(ctx, blob)
			if err != nil {
				return VersionInfo{}, stats, err
			}
		default:
			return VersionInfo{}, stats, err
		}
	}
	for idx, data := range writes {
		if uint64(len(data)) > chunkSize {
			return VersionInfo{}, stats, fmt.Errorf("blobseer: chunk %d: %d bytes exceeds chunk size %d", idx, len(data), chunkSize)
		}
	}

	// Ticket: version number + private chunk-id range.
	w := wire.NewBuffer(24)
	w.PutU8(opTicket)
	w.PutU64(blob)
	w.PutU64(uint64(len(writes)))
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return VersionInfo{}, stats, err
	}
	version := r.U64()
	firstID := r.U64()
	if err := r.Err(); err != nil {
		return VersionInfo{}, stats, err
	}

	// Deterministic order of chunk uploads.
	indices := make([]uint64, 0, len(writes))
	for idx := range writes {
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })

	var leaves map[uint64]meta.Leaf
	var manifest []manifestEntry
	if c.Dedup {
		leaves, manifest, err = c.uploadDedup(ctx, indices, writes, &stats)
	} else {
		leaves, err = c.uploadPlaced(ctx, blob, firstID, indices, writes, &stats)
	}
	if err != nil {
		c.abort(cleanupCtx, blob, version)
		return VersionInfo{}, stats, err
	}

	// Metadata tree for the new version.
	maxIdx := uint64(0)
	if newSize > 0 {
		maxIdx = (newSize + chunkSize - 1) / chunkSize
	}
	for _, idx := range indices {
		if idx+1 > maxIdx {
			maxIdx = idx + 1
		}
	}
	newSpan := meta.NextPow2(maxIdx)
	if newSpan < prev.Span {
		newSpan = prev.Span
	}
	root, err := c.tree(ctx).Publish(blob, version, prev.Root, prev.Span, newSpan, leaves)
	if err != nil {
		c.releaseRefs(cleanupCtx, manifest)
		c.abort(cleanupCtx, blob, version)
		return VersionInfo{}, stats, err
	}

	// Commit. A dedup commit carries the write manifest so the version
	// manager can track which write supersedes which (refcount GC).
	info := VersionInfo{Version: version, Size: newSize, Span: newSpan, Root: root}
	w = wire.NewBuffer(64)
	w.PutU8(opCommit)
	w.PutU64(blob)
	putVersionInfo(w, info)
	w.PutBool(len(manifest) > 0)
	if len(manifest) > 0 {
		putManifest(w, manifest)
	}
	if _, err := c.call(ctx, c.VMAddr, w); err != nil {
		// The commit may or may not have landed; releasing refs here could
		// double-release a published version's chunks. Leave reconciliation
		// to the mark-and-sweep fallback.
		return VersionInfo{}, stats, err
	}
	return info, stats, nil
}

// uploadPlaced is the classic (blob, id)-addressed upload path: placement
// from the provider manager, every body shipped.
func (c *Client) uploadPlaced(ctx context.Context, blob, firstID uint64, indices []uint64, writes map[uint64][]byte, stats *CommitStats) (map[uint64]meta.Leaf, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opPlacement)
	w.PutUvarint(uint64(len(writes)))
	w.PutUvarint(uint64(c.replication()))
	r, err := c.call(ctx, c.PMAddr, w)
	if err != nil {
		return nil, err
	}
	nPlaced := r.Uvarint()
	placements := make([][]string, nPlaced)
	for i := range placements {
		k := r.Uvarint()
		placements[i] = make([]string, k)
		for j := range placements[i] {
			placements[i][j] = r.String()
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}

	leaves := make(map[uint64]meta.Leaf, len(writes))
	// Write-path failover: alternates for chunks whose assigned provider dies
	// mid-commit, fetched lazily on the first failure.
	var alternates []string
	for i, idx := range indices {
		key := chunkstore.Key{Blob: blob, ID: firstID + uint64(i)}
		data := writes[idx]
		placed := make([]string, 0, len(placements[i]))
		for _, providerAddr := range placements[i] {
			addr := providerAddr
			if err := c.putChunk(ctx, addr, key, data); err != nil {
				// The provider died mid-commit: retry the PUT on an alternate
				// live provider instead of failing the whole commit. The leaf
				// records where the replica actually landed, so the read path
				// (which already tries replicas in order) finds it. Every
				// planned placement for this chunk — tried or not — is
				// excluded, so the alternate never collides with a replica a
				// later loop iteration will place: the chunk keeps its full
				// count of *distinct* physical replicas.
				used := append(append([]string(nil), placed...), placements[i]...)
				addr, err = c.putChunkFailover(ctx, key, data, &alternates, used)
				if err != nil {
					return nil, err
				}
			}
			stats.LogicalBytes += uint64(len(data))
			stats.TransferBytes += uint64(len(data))
			placed = append(placed, addr)
		}
		stats.Chunks++
		leaves[idx] = meta.Leaf{Providers: placed, Key: key, Size: uint32(len(data))}
	}
	return leaves, nil
}

// putChunk ships one (blob, id)-addressed chunk replica to one provider.
func (c *Client) putChunk(ctx context.Context, addr string, key chunkstore.Key, data []byte) error {
	pw := wire.NewBuffer(32 + len(data))
	pw.PutU8(opChunkPut)
	putChunkKey(pw, key)
	pw.PutBytes(data)
	if _, err := c.Net.Call(ctx, addr, pw.Bytes()); err != nil {
		return fmt.Errorf("blobseer: put chunk to %s: %w", addr, err)
	}
	return nil
}

// putChunkFailover retries a failed chunk PUT on the registered providers
// not yet holding a replica of this chunk, returning the address that took
// it. *alternates caches the provider list across a commit's failovers.
func (c *Client) putChunkFailover(ctx context.Context, key chunkstore.Key, data []byte, alternates *[]string, used []string) (string, error) {
	if *alternates == nil {
		ps, err := c.Providers(ctx)
		if err != nil {
			return "", err
		}
		*alternates = ps
	}
	var lastErr error
	for _, addr := range *alternates {
		if slices.Contains(used, addr) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return "", err
		}
		if err := c.putChunk(ctx, addr, key, data); err != nil {
			lastErr = err
			continue
		}
		return addr, nil
	}
	return "", fmt.Errorf("blobseer: chunk %v: no live provider took the replica: %w", key, lastErr)
}

// uploadDedup is the content-addressed upload path: each chunk is
// fingerprinted, placed on the providers that rendezvous-hashing assigns to
// its content (so identical content always lands on the same providers,
// cluster-wide), and shipped only if the provider does not already hold the
// fingerprint. Returns the leaves and the commit's write manifest. On any
// failure — including ctx cancellation — every reference taken so far is
// released under a detached context before returning.
func (c *Client) uploadDedup(ctx context.Context, indices []uint64, writes map[uint64][]byte, stats *CommitStats) (map[uint64]meta.Leaf, []manifestEntry, error) {
	leaves := make(map[uint64]meta.Leaf, len(writes))
	manifest := make([]manifestEntry, 0, len(writes))
	if len(writes) == 0 {
		return leaves, nil, nil
	}
	providers, err := c.Providers(ctx)
	if err != nil {
		return nil, nil, err
	}
	if len(providers) == 0 {
		return nil, nil, errors.New("blobseer: no data providers registered")
	}
	for _, idx := range indices {
		data := writes[idx]
		fp := cas.Sum(data)
		// Rendezvous ranks every provider for this content; the first
		// `replication` live ones take the replicas. When a ranked provider
		// dies mid-commit, the next-ranked one steps in (write-path
		// failover) — the leaf and manifest record where replicas actually
		// landed, so reads and refcount releases find them.
		ranked := casPlacementRanked(fp, providers)
		want := c.replication()
		if want > len(ranked) {
			want = len(ranked)
		}
		shipped := false
		var taken []string // replicas that already hold a ref for this chunk
		var lastErr error
		for next := 0; len(taken) < want && next < len(ranked); next++ {
			addr := ranked[next]
			if err := ctx.Err(); err != nil {
				lastErr = err
				break
			}
			held, err := c.casRef(ctx, addr, fp)
			if err != nil {
				lastErr = err
				continue // failover: try the next-ranked provider
			}
			if !held {
				// The body crosses the network here even if a concurrent
				// writer wins the race and the provider reports a duplicate,
				// so it always counts as transferred.
				if _, err := c.casPut(ctx, addr, fp, data); err != nil {
					lastErr = err
					continue // no reference was taken; safe to move on
				}
				stats.TransferBytes += uint64(len(data))
				shipped = true
			}
			taken = append(taken, addr)
			stats.LogicalBytes += uint64(len(data))
		}
		if len(taken) < want {
			c.releaseRefs(context.WithoutCancel(ctx), append(manifest, manifestEntry{fp: fp, providers: taken}))
			return nil, nil, fmt.Errorf("blobseer: chunk %d: placed %d of %d replicas: %w", idx, len(taken), want, lastErr)
		}
		stats.Chunks++
		if !shipped {
			stats.DedupChunks++
		}
		leaves[idx] = meta.Leaf{Providers: taken, Key: fp.Key(), Size: uint32(len(data))}
		manifest = append(manifest, manifestEntry{index: idx, fp: fp, providers: taken})
	}
	return leaves, manifest, nil
}

// casPlacementRanked returns every provider ordered by rendezvous
// (highest-random-weight) preference for the fingerprint: every writer maps
// the same content to the same ranking, which is what makes dedup global,
// and the order is stable when a provider leaves the rotation. The first
// `replication` entries are the canonical placement; the write-path
// failover walks down the ranking when a preferred provider is unreachable.
func casPlacementRanked(fp cas.Fingerprint, providers []string) []string {
	type scored struct {
		addr  string
		score uint64
	}
	scores := make([]scored, len(providers))
	for i, addr := range providers {
		h := fnv.New64a()
		h.Write(fp[:])
		h.Write([]byte(addr))
		scores[i] = scored{addr: addr, score: h.Sum64()}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score > scores[j].score
		}
		return scores[i].addr < scores[j].addr
	})
	out := make([]string, len(scores))
	for i := range out {
		out[i] = scores[i].addr
	}
	return out
}

// casRef performs the "have fingerprint?" round trip against one provider:
// true means the provider holds the body and took a reference on it.
func (c *Client) casRef(ctx context.Context, addr string, fp cas.Fingerprint) (bool, error) {
	w := wire.NewBuffer(40)
	w.PutU8(opCasRef)
	putFingerprint(w, fp)
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return false, fmt.Errorf("blobseer: cas ref on %s: %w", addr, err)
	}
	r := wire.NewReader(resp)
	held := r.Bool()
	return held, r.Err()
}

// casPut uploads a body under its fingerprint; dup reports that the provider
// already held it (a concurrent writer raced us) and only took a reference.
func (c *Client) casPut(ctx context.Context, addr string, fp cas.Fingerprint, data []byte) (bool, error) {
	w := wire.NewBuffer(48 + len(data))
	w.PutU8(opCasPut)
	putFingerprint(w, fp)
	w.PutBytes(data)
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return false, fmt.Errorf("blobseer: cas put to %s: %w", addr, err)
	}
	r := wire.NewReader(resp)
	dup := r.Bool()
	return dup, r.Err()
}

// casRelease drops one reference on fp at one provider.
func (c *Client) casRelease(ctx context.Context, addr string, fp cas.Fingerprint) (reclaimedBytes uint64, err error) {
	w := wire.NewBuffer(40)
	w.PutU8(opCasRelease)
	putFingerprint(w, fp)
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	r.U64() // remaining count, unused here
	reclaimed := r.U64()
	return reclaimed, r.Err()
}

// releaseRefs undoes the references a failed commit acquired (best effort;
// anything missed is picked up by the mark-and-sweep fallback GC). Callers
// pass a detached context so releases run even after cancellation.
func (c *Client) releaseRefs(ctx context.Context, manifest []manifestEntry) {
	for _, e := range manifest {
		for _, addr := range e.providers {
			c.casRelease(ctx, addr, e.fp) //nolint:errcheck // best effort
		}
	}
}

// CasStats aggregates the content-addressed repository counters across the
// given data providers: dedup hit rate, logical vs physical bytes, and
// refcount reclamation.
func (c *Client) CasStats(ctx context.Context, dataProviders []string) (cas.Stats, error) {
	var total cas.Stats
	for _, addr := range dataProviders {
		w := wire.NewBuffer(8)
		w.PutU8(opCasStats)
		r, err := c.call(ctx, addr, w)
		if err != nil {
			return total, err
		}
		s := getCasStats(r)
		if err := r.Err(); err != nil {
			return total, err
		}
		total.Add(s)
	}
	return total, nil
}

func (c *Client) abort(ctx context.Context, blob, version uint64) {
	w := wire.NewBuffer(24)
	w.PutU8(opAbort)
	w.PutU64(blob)
	w.PutU64(version)
	c.call(ctx, c.VMAddr, w) // best effort; the version slot is released
}

// ReadVersion reads size bytes at offset from the referenced snapshot into a
// new buffer. Holes (never-written ranges) read as zeros. Reads past the
// version size are truncated.
func (c *Client) ReadVersion(ctx context.Context, ref SnapshotRef, offset, size uint64) ([]byte, error) {
	info, chunkSize, err := c.GetVersion(ctx, ref)
	if err != nil {
		return nil, err
	}
	if offset >= info.Size {
		return nil, nil
	}
	if offset+size > info.Size {
		size = info.Size - offset
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	firstChunk := offset / chunkSize
	lastChunk := (offset + size - 1) / chunkSize
	slots, err := c.tree(ctx).Lookup(info.Root, info.Span, firstChunk, lastChunk-firstChunk+1)
	if err != nil {
		return nil, err
	}
	for _, slot := range slots {
		if !slot.Present {
			continue // zeros
		}
		data, err := c.fetchChunk(ctx, slot.Leaf)
		if err != nil {
			return nil, err
		}
		chunkStart := slot.Index * chunkSize
		// Overlap of [chunkStart, chunkStart+len(data)) with [offset, offset+size).
		lo := max(chunkStart, offset)
		hi := min(chunkStart+uint64(len(data)), offset+size)
		if lo < hi {
			copy(buf[lo-offset:hi-offset], data[lo-chunkStart:hi-chunkStart])
		}
	}
	return buf, nil
}

// fetchChunk retrieves one chunk, trying replicas in order.
func (c *Client) fetchChunk(ctx context.Context, l meta.Leaf) ([]byte, error) {
	var lastErr error
	for _, addr := range l.Providers {
		w := wire.NewBuffer(24)
		w.PutU8(opChunkGet)
		putChunkKey(w, l.Key)
		resp, err := c.Net.Call(ctx, addr, w.Bytes())
		if err != nil {
			lastErr = err
			continue
		}
		r := wire.NewReader(resp)
		data := r.BytesCopy()
		if err := r.Err(); err != nil {
			lastErr = err
			continue
		}
		return data, nil
	}
	return nil, fmt.Errorf("blobseer: chunk %v unavailable on all replicas: %w", l.Key, lastErr)
}

// WriteAt publishes a new version with data written at offset, performing
// read-modify-write for partially covered boundary chunks.
func (c *Client) WriteAt(ctx context.Context, blob uint64, offset uint64, data []byte) (VersionInfo, error) {
	if len(data) == 0 {
		prev, _, err := c.Latest(ctx, blob)
		if err != nil && !IsNotFound(err) {
			return VersionInfo{}, err
		}
		return prev, nil
	}
	var chunkSize uint64
	var prevSize uint64
	var prevVersion uint64
	var havePrev bool
	prev, cs, err := c.Latest(ctx, blob)
	switch {
	case err == nil:
		chunkSize, prevSize, prevVersion, havePrev = cs, prev.Size, prev.Version, true
	case IsNotFound(err):
		chunkSize, err = c.ChunkSize(ctx, blob)
		if err != nil {
			return VersionInfo{}, err
		}
	default:
		return VersionInfo{}, err
	}

	end := offset + uint64(len(data))
	newSize := prevSize
	if end > newSize {
		newSize = end
	}
	firstChunk := offset / chunkSize
	lastChunk := (end - 1) / chunkSize
	writes := make(map[uint64][]byte)
	for idx := firstChunk; idx <= lastChunk; idx++ {
		chunkStart := idx * chunkSize
		chunkEnd := chunkStart + chunkSize
		lo := max(chunkStart, offset)
		hi := min(chunkEnd, end)
		full := lo == chunkStart && hi == chunkEnd
		var chunk []byte
		if full {
			chunk = make([]byte, chunkSize)
			copy(chunk, data[lo-offset:hi-offset])
		} else {
			// Boundary chunk: merge with existing content. The chunk is
			// truncated when it is the blob's last chunk.
			chunkLen := chunkSize
			if chunkEnd > newSize {
				chunkLen = newSize - chunkStart
			}
			chunk = make([]byte, chunkLen)
			if havePrev && chunkStart < prevSize {
				old, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: prevVersion}, chunkStart, chunkSize)
				if err != nil {
					return VersionInfo{}, err
				}
				copy(chunk, old)
			}
			copy(chunk[lo-chunkStart:], data[lo-offset:hi-offset])
		}
		writes[idx] = chunk
	}
	return c.WriteVersion(ctx, blob, writes, newSize)
}

// Clone creates a new blob whose version 0 is the referenced snapshot of the
// source blob, sharing all content. This is the CLONE primitive.
func (c *Client) Clone(ctx context.Context, src SnapshotRef) (uint64, error) {
	w := wire.NewBuffer(24)
	w.PutU8(opClone)
	w.PutU64(src.Blob)
	w.PutU64(src.Version)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return 0, err
	}
	id := r.U64()
	return id, r.Err()
}

// ReclaimStats reports what a Retire released through the content-addressed
// repository's reference counting.
type ReclaimStats struct {
	ReleasedRefs    int    // references dropped (per chunk write, per replica)
	ReclaimedChunks int    // bodies whose count reached zero and were deleted
	ReclaimedBytes  uint64 // payload bytes those bodies held
	Failed          int    // release calls that could not reach their provider
}

// Retire marks all versions of blob below `before` as garbage-collectable.
func (c *Client) Retire(ctx context.Context, blob, before uint64) error {
	_, err := c.RetireStats(ctx, blob, before)
	return err
}

// RetireStats retires versions below `before` and immediately releases the
// content-addressed references held by the superseded chunk writes of the
// retired snapshots — incremental garbage collection in O(retired chunks),
// no repository sweep. For blobs written without Dedup there is nothing to
// release and the stats come back zero (the mark-and-sweep GC still applies).
// Releases to unreachable providers are counted in Failed and left for the
// sweep to reconcile.
func (c *Client) RetireStats(ctx context.Context, blob, before uint64) (ReclaimStats, error) {
	var stats ReclaimStats
	w := wire.NewBuffer(24)
	w.PutU8(opRetire)
	w.PutU64(blob)
	w.PutU64(before)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return stats, err
	}
	r.U64() // retired horizon
	n := r.Uvarint()
	type release struct {
		fp        cas.Fingerprint
		providers []string
	}
	releases := make([]release, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		var rel release
		rel.fp = getFingerprint(r)
		np := r.Uvarint()
		rel.providers = make([]string, np)
		for j := range rel.providers {
			rel.providers[j] = r.String()
		}
		releases = append(releases, rel)
	}
	if err := r.Err(); err != nil {
		return stats, err
	}
	// The version manager already dropped its supersede records: finish the
	// releases even if ctx is cancelled meanwhile, or the refs would leak
	// until the sweep.
	releaseCtx := context.WithoutCancel(ctx)
	for _, rel := range releases {
		for _, addr := range rel.providers {
			reclaimed, err := c.casRelease(releaseCtx, addr, rel.fp)
			if err != nil {
				stats.Failed++
				continue
			}
			stats.ReleasedRefs++
			if reclaimed > 0 {
				stats.ReclaimedChunks++
				stats.ReclaimedBytes += reclaimed
			}
		}
	}
	return stats, nil
}

// liveRoot is one entry of the version manager's live set.
type liveRoot struct {
	blob uint64
	info VersionInfo
}

func (c *Client) listLive(ctx context.Context) ([]liveRoot, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opListLive)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]liveRoot, 0, n)
	for i := uint64(0); i < n; i++ {
		blob := r.U64()
		info := getVersionInfo(r)
		r.U64() // chunk size, unused here
		out = append(out, liveRoot{blob: blob, info: info})
	}
	return out, r.Err()
}

// GCStats reports what a garbage collection pass reclaimed.
type GCStats struct {
	LiveChunks    int
	LiveNodes     int
	DeletedChunks int
	DeletedNodes  int
}

// GC performs a mark-and-sweep over the whole deployment: every tree node
// and chunk reachable from a non-retired version survives; everything else
// is deleted from the metadata and data providers. This implements the
// paper's proposed future-work extension (transparent snapshot garbage
// collection) in its exhaustive form.
//
// With Dedup enabled, RetireStats already reclaims retired snapshots' chunk
// bodies incrementally through the content-addressed repository's reference
// counts, in O(retired chunks); this sweep remains the full-fidelity
// fallback — it also collects metadata-tree nodes, chunks orphaned by failed
// commits, and references leaked past unreachable providers. Sweeping a
// CAS-held chunk deletes its body and dedup index entry together, so the two
// collectors compose safely.
func (c *Client) GC(ctx context.Context, dataProviders []string) (GCStats, error) {
	var stats GCStats
	live, err := c.listLive(ctx)
	if err != nil {
		return stats, err
	}
	liveNodes := make(map[meta.NodeKey]struct{})
	liveChunks := make(map[chunkstore.Key]struct{})
	tr := c.tree(ctx)
	for _, lr := range live {
		if !lr.info.Root.Valid {
			continue
		}
		err := tr.Walk(lr.info.Root, lr.info.Span, func(k meta.NodeKey, isLeaf bool, l meta.Leaf) error {
			liveNodes[k] = struct{}{}
			if isLeaf {
				liveChunks[l.Key] = struct{}{}
			}
			return nil
		})
		if err != nil {
			return stats, fmt.Errorf("blobseer: gc mark blob %d v%d: %w", lr.blob, lr.info.Version, err)
		}
	}
	stats.LiveChunks = len(liveChunks)
	stats.LiveNodes = len(liveNodes)

	// Sweep metadata providers.
	for _, addr := range c.MetaAddrs {
		w := wire.NewBuffer(8)
		w.PutU8(opNodeList)
		r, err := c.call(ctx, addr, w)
		if err != nil {
			return stats, err
		}
		n := r.Uvarint()
		var dead []meta.NodeKey
		for i := uint64(0); i < n; i++ {
			k := getNodeKey(r)
			if _, ok := liveNodes[k]; !ok {
				dead = append(dead, k)
			}
		}
		if err := r.Err(); err != nil {
			return stats, err
		}
		for _, k := range dead {
			w := wire.NewBuffer(40)
			w.PutU8(opNodeDelete)
			putNodeKey(w, k)
			if _, err := c.call(ctx, addr, w); err != nil {
				return stats, err
			}
			stats.DeletedNodes++
		}
	}

	// Sweep data providers.
	for _, addr := range dataProviders {
		w := wire.NewBuffer(8)
		w.PutU8(opChunkList)
		r, err := c.call(ctx, addr, w)
		if err != nil {
			return stats, err
		}
		n := r.Uvarint()
		var dead []chunkstore.Key
		for i := uint64(0); i < n; i++ {
			k := getChunkKey(r)
			if _, ok := liveChunks[k]; !ok {
				dead = append(dead, k)
			}
		}
		if err := r.Err(); err != nil {
			return stats, err
		}
		for _, k := range dead {
			w := wire.NewBuffer(24)
			w.PutU8(opChunkDelete)
			putChunkKey(w, k)
			if _, err := c.call(ctx, addr, w); err != nil {
				return stats, err
			}
			stats.DeletedChunks++
		}
	}
	return stats, nil
}

// Providers returns the registered data provider addresses.
func (c *Client) Providers(ctx context.Context) ([]string, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opProviders)
	r, err := c.call(ctx, c.PMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.String())
	}
	return out, r.Err()
}

// RegisterProvider announces a data provider to the provider manager.
func (c *Client) RegisterProvider(ctx context.Context, addr string) error {
	w := wire.NewBuffer(32)
	w.PutU8(opRegister)
	w.PutString(addr)
	_, err := c.call(ctx, c.PMAddr, w)
	return err
}

// UnregisterProvider removes a (failed) data provider from placement. Data
// it held remains readable only through replicas on other providers.
func (c *Client) UnregisterProvider(ctx context.Context, addr string) error {
	w := wire.NewBuffer(32)
	w.PutU8(opUnregister)
	w.PutString(addr)
	_, err := c.call(ctx, c.PMAddr, w)
	return err
}

// Usage sums storage used across the given data providers.
func (c *Client) Usage(ctx context.Context, dataProviders []string) (bytes uint64, chunks uint64, err error) {
	for _, addr := range dataProviders {
		w := wire.NewBuffer(8)
		w.PutU8(opChunkUsage)
		r, cerr := c.call(ctx, addr, w)
		if cerr != nil {
			return 0, 0, cerr
		}
		bytes += r.U64()
		chunks += r.U64()
		if err := r.Err(); err != nil {
			return 0, 0, err
		}
	}
	return bytes, chunks, nil
}

// MetaUsage sums metadata bytes across the metadata providers.
func (c *Client) MetaUsage(ctx context.Context) (bytes uint64, nodes uint64, err error) {
	for _, addr := range c.MetaAddrs {
		w := wire.NewBuffer(8)
		w.PutU8(opNodeUsage)
		r, cerr := c.call(ctx, addr, w)
		if cerr != nil {
			return 0, 0, cerr
		}
		bytes += r.U64()
		nodes += r.U64()
		if err := r.Err(); err != nil {
			return 0, 0, err
		}
	}
	return bytes, nodes, nil
}
