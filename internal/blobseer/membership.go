package blobseer

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/meta"
	"blobcr/internal/wire"
)

// This file is the storage-plane control surface the elastic membership and
// repair subsystem (internal/repair) is built on: membership queries and
// transitions against the provider manager, write-event reference relocation
// against the version manager, live-version enumeration, and direct
// per-provider chunk I/O for scrub fetches and re-replication installs.

// Membership returns the provider manager's full membership view: every
// provider with its state (active or draining) and the epoch that bumps on
// each change.
func (c *Client) Membership(ctx context.Context) (Membership, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opMembership)
	r, err := c.call(ctx, c.PMAddr, w)
	if err != nil {
		return Membership{}, err
	}
	var m Membership
	m.Epoch = r.U64()
	n := r.Uvarint()
	if n > maxBatchItems {
		return Membership{}, fmt.Errorf("blobseer: implausible membership of %d providers", n)
	}
	m.Providers = make([]ProviderInfo, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		var p ProviderInfo
		p.Addr = r.String()
		p.State = ProviderState(r.U8())
		m.Providers = append(m.Providers, p)
	}
	return m, r.Err()
}

// DrainProvider starts a DECOMMISSION: the provider leaves the placement
// rotation but keeps serving reads. The repair plane then re-places its
// replicas elsewhere; once it holds no live chunk, RetireProvider removes it
// for good. Draining an already-draining provider is a no-op.
func (c *Client) DrainProvider(ctx context.Context, addr string) error {
	w := wire.NewBuffer(32)
	w.PutU8(opDrain)
	w.PutString(addr)
	_, err := c.call(ctx, c.PMAddr, w)
	return err
}

// RetireProvider completes a DECOMMISSION, removing a drained provider from
// the membership. The provider manager refuses to retire a provider that is
// still active (placement-eligible); retiring an unknown provider is a
// no-op.
func (c *Client) RetireProvider(ctx context.Context, addr string) error {
	w := wire.NewBuffer(32)
	w.PutU8(opRetireProvider)
	w.PutString(addr)
	_, err := c.call(ctx, c.PMAddr, w)
	return err
}

// RelocateWrites counts — and with apply, commits — the relocation of write-
// event references on the version manager: every occurrence of each
// relocation's From provider on events carrying its fingerprint becomes To.
// It returns the occurrence count per relocation, aligned with the input.
//
// The repair plane calls it twice per move: once with apply=false to learn
// how many references to pre-install at the new provider, and once with
// apply=true to commit; the difference between the two counts (events
// retired or published in between) is settled against the new provider, so
// CAS reference counts stay exact through a re-replication racing commits
// and Retire.
func (c *Client) RelocateWrites(ctx context.Context, apply bool, relocs []Relocation) ([]uint64, error) {
	if len(relocs) == 0 {
		return nil, nil
	}
	counts := make([]uint64, len(relocs))
	for start := 0; start < len(relocs); start += maxFrameItems {
		end := min(start+maxFrameItems, len(relocs))
		w := wire.NewBuffer(16 + 64*(end-start))
		putRelocations(w, apply, relocs[start:end])
		r, err := c.call(ctx, c.VMAddr, w)
		if err != nil {
			return nil, err
		}
		for i := start; i < end; i++ {
			counts[i] = r.Uvarint()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return counts, nil
}

// LiveVersion is one non-retired published version.
type LiveVersion struct {
	Blob      uint64
	Info      VersionInfo
	ChunkSize uint64
}

// LiveVersions enumerates every non-retired published version of every blob
// — the root set a scrub walks and the mark-and-sweep GC marks from.
func (c *Client) LiveVersions(ctx context.Context) ([]LiveVersion, error) {
	w := wire.NewBuffer(8)
	w.PutU8(opListLive)
	r, err := c.call(ctx, c.VMAddr, w)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	if n > maxBatchItems {
		return nil, fmt.Errorf("blobseer: implausible live set of %d versions", n)
	}
	out := make([]LiveVersion, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		var lv LiveVersion
		lv.Blob = r.U64()
		lv.Info = getVersionInfo(r)
		lv.ChunkSize = r.U64()
		out = append(out, lv)
	}
	return out, r.Err()
}

// VersionLeaves returns every present chunk descriptor of the version, in
// index order (holes omitted). The tree descent is the batched level-order
// Lookup, so the call costs O(tree depth) round trips per metadata provider.
func (c *Client) VersionLeaves(ctx context.Context, info VersionInfo) ([]meta.LeafSlot, error) {
	if !info.Root.Valid {
		return nil, nil
	}
	slots, err := c.tree(ctx).Lookup(info.Root, info.Span, 0, info.Span)
	if err != nil {
		return nil, err
	}
	out := slots[:0]
	for _, s := range slots {
		if s.Present {
			out = append(out, s)
		}
	}
	return out, nil
}

// PlacementRanked returns every provider ordered by rendezvous (highest-
// random-weight) preference for the chunk key. The ranking is keyed by the
// storage key — for content-addressed chunks that key is derived from the
// fingerprint (cas.Fingerprint.Key), so writers, readers and the repair
// plane all derive the same ranking: a writer's canonical placement is the
// first `replication` entries, a repair pass re-homes a lost replica on the
// next-ranked live provider, and a reader that exhausts a leaf's recorded
// replicas can fall back to the same ranking over the current membership.
// The order is stable when a provider leaves the rotation.
func PlacementRanked(key chunkstore.Key, providers []string) []string {
	type scored struct {
		addr  string
		score uint64
	}
	var kb [16]byte
	binary.BigEndian.PutUint64(kb[0:8], key.Blob)
	binary.BigEndian.PutUint64(kb[8:16], key.ID)
	scores := make([]scored, len(providers))
	for i, addr := range providers {
		h := fnv.New64a()
		h.Write(kb[:])
		h.Write([]byte(addr))
		scores[i] = scored{addr: addr, score: h.Sum64()}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score > scores[j].score
		}
		return scores[i].addr < scores[j].addr
	})
	out := make([]string, len(scores))
	for i := range out {
		out[i] = scores[i].addr
	}
	return out
}

// FetchChunksFrom fetches the bodies for keys from one provider, aligned
// with keys; a chunk the provider does not hold yields a nil entry. sizes
// are the expected body sizes, used to split the request into frames the
// same way the restore path does.
func (c *Client) FetchChunksFrom(ctx context.Context, addr string, keys []chunkstore.Key, sizes []int) ([][]byte, error) {
	out := make([][]byte, len(keys))
	err := splitByBytes(len(keys), func(i int) int { return sizes[i] }, func(start, end int) error {
		bodies, err := c.getChunkBatch(ctx, addr, keys[start:end])
		if err != nil {
			return err
		}
		copy(out[start:end], bodies)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CasReplica is one content-addressed body to install on a provider with an
// exact number of references. A nil Body means the provider is expected to
// hold the body already and only the references are added.
type CasReplica struct {
	FP   cas.Fingerprint
	Body []byte
	Refs uint64
}

// StoreCasReplicas installs content-addressed replicas on one provider:
// each item's body is uploaded (taking one reference) and its remaining
// references are added, in batched frames. Items with zero references are
// skipped. An item whose Body is nil but whose fingerprint the provider does
// not hold fails the call — the caller must re-place the body elsewhere. On
// a mid-call failure the references already taken stand; the caller's
// accounting (or the mark-and-sweep fallback) reconciles them.
func (c *Client) StoreCasReplicas(ctx context.Context, addr string, reps []CasReplica) error {
	var puts []CasReplica        // body uploads (1 ref each)
	var extras []cas.Fingerprint // additional single references, one entry per ref
	for _, rep := range reps {
		if rep.Refs == 0 {
			continue
		}
		refsOnly := rep.Refs
		if rep.Body != nil {
			puts = append(puts, rep)
			refsOnly--
		}
		for i := uint64(0); i < refsOnly; i++ {
			extras = append(extras, rep.FP)
		}
	}
	err := splitByBytes(len(puts), func(i int) int { return len(puts[i].Body) }, func(start, end int) error {
		fps := make([]cas.Fingerprint, 0, end-start)
		bodies := make([][]byte, 0, end-start)
		for _, rep := range puts[start:end] {
			fps = append(fps, rep.FP)
			bodies = append(bodies, rep.Body)
		}
		return c.casPutBatch(ctx, addr, fps, bodies)
	})
	if err != nil {
		return err
	}
	if len(extras) == 0 {
		return nil
	}
	held, _, err := c.casRefBatch(ctx, addr, extras)
	if err != nil {
		return err
	}
	for i, ok := range held {
		if !ok {
			return fmt.Errorf("blobseer: provider %s does not hold %s for a reference-only install", addr, extras[i])
		}
	}
	return nil
}

// ReleaseCasRefsAt drops n references on fp at one provider in a single
// round trip (opCasReleaseN), reporting the bytes reclaimed if the count
// reached zero.
func (c *Client) ReleaseCasRefsAt(ctx context.Context, addr string, fp cas.Fingerprint, n uint64) (reclaimedBytes uint64, err error) {
	if n == 0 {
		return 0, nil
	}
	w := wire.NewBuffer(48)
	w.PutU8(opCasReleaseN)
	putFingerprint(w, fp)
	w.PutUvarint(n)
	r, err := c.call(ctx, addr, w)
	if err != nil {
		return 0, err
	}
	r.U64() // remaining count, unused here
	reclaimed := r.U64()
	return reclaimed, r.Err()
}

// DeleteChunkAt removes one stored chunk from one provider. For a content-
// addressed body this also drops the provider's dedup index entry — the
// primitive a repair pass uses to destroy a corrupt replica before
// re-placing a good one.
func (c *Client) DeleteChunkAt(ctx context.Context, addr string, key chunkstore.Key) error {
	w := wire.NewBuffer(24)
	w.PutU8(opChunkDelete)
	putChunkKey(w, key)
	_, err := c.call(ctx, addr, w)
	return err
}

// StoreChunkReplicas ships (blob, id)-addressed chunk replicas to one
// provider in batched frames — the repair path for chunks written without
// deduplication.
func (c *Client) StoreChunkReplicas(ctx context.Context, addr string, keys []chunkstore.Key, bodies [][]byte) error {
	return splitByBytes(len(keys), func(i int) int { return len(bodies[i]) }, func(start, end int) error {
		return c.putChunkBatch(ctx, addr, keys[start:end], bodies[start:end])
	})
}
