package blobseer

import (
	"context"
	"slices"
	"testing"

	"blobcr/internal/cas"
	"blobcr/internal/transport"
)

// TestMembershipLifecycle exercises the provider manager's dynamic
// membership verbs: JOIN (register), DRAIN, RETIRE, re-JOIN, and the epoch
// that bumps on every transition.
func TestMembershipLifecycle(t *testing.T) {
	ctx := context.Background()
	d, err := Deploy(transport.NewInProc(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()

	m, err := c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Active()) != 3 || len(m.Addrs()) != 3 {
		t.Fatalf("fresh membership: %+v", m)
	}
	epoch := m.Epoch

	victim := d.DataAddrs[0]
	if err := c.DrainProvider(ctx, victim); err != nil {
		t.Fatal(err)
	}
	m, err = c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Active()) != 2 || len(m.Addrs()) != 3 {
		t.Fatalf("post-drain membership: %+v", m.Providers)
	}
	if m.Epoch <= epoch {
		t.Fatalf("epoch did not bump on drain: %d -> %d", epoch, m.Epoch)
	}
	// A draining provider leaves the placement rotation immediately.
	placement, err := c.Providers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(placement, victim) {
		t.Fatalf("draining provider still placement-eligible: %v", placement)
	}

	// Retiring an active provider is refused; retiring the draining one
	// works and is idempotent.
	if err := c.RetireProvider(ctx, d.DataAddrs[1]); err == nil {
		t.Fatal("retire of an active provider succeeded")
	}
	if err := c.RetireProvider(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if err := c.RetireProvider(ctx, victim); err != nil {
		t.Fatalf("second retire not idempotent: %v", err)
	}
	m, err = c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Addrs()) != 2 {
		t.Fatalf("post-retire membership: %+v", m.Providers)
	}

	// A retired provider can JOIN back and becomes active again.
	if err := c.RegisterProvider(ctx, victim); err != nil {
		t.Fatal(err)
	}
	m, err = c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Active()) != 3 {
		t.Fatalf("post-rejoin membership: %+v", m.Providers)
	}

	// A draining provider that re-registers is reactivated without retiring.
	if err := c.DrainProvider(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterProvider(ctx, victim); err != nil {
		t.Fatal(err)
	}
	m, err = c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Active()) != 3 || len(m.Addrs()) != 3 {
		t.Fatalf("reactivation membership: %+v", m.Providers)
	}
}

// TestRelocateWritesCountsAndRewrites: the version manager's relocation verb
// counts write-event references naming a provider (apply=false) and rewrites
// them (apply=true), so a later Retire releases at the new home.
func TestRelocateWritesCountsAndRewrites(t *testing.T) {
	ctx := context.Background()
	d, err := Deploy(transport.NewInProc(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	c.Replication = 2

	blob, err := c.CreateBlob(ctx, 512)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 512)
	for i := range body {
		body[i] = byte(i)
	}
	if _, err := c.WriteVersion(ctx, blob, map[uint64][]byte{0: body}, 512); err != nil {
		t.Fatal(err)
	}
	fp := cas.Sum(body)

	from, to := d.DataAddrs[0], d.DataAddrs[1]
	counts, err := c.RelocateWrites(ctx, false, []Relocation{{FP: fp, From: from, To: to}})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 {
		t.Fatalf("precount = %d, want 1 (one write event, one replica at %s)", counts[0], from)
	}
	counts, err = c.RelocateWrites(ctx, true, []Relocation{{FP: fp, From: from, To: to}})
	if err != nil || counts[0] != 1 {
		t.Fatalf("apply = %d, %v", counts[0], err)
	}
	// The event now names `to` twice; a second count at `from` finds nothing.
	counts, err = c.RelocateWrites(ctx, false, []Relocation{{FP: fp, From: from, To: to}})
	if err != nil || counts[0] != 0 {
		t.Fatalf("post-apply count at old home = %d, %v", counts[0], err)
	}
	counts, err = c.RelocateWrites(ctx, false, []Relocation{{FP: fp, From: to, To: from}})
	if err != nil || counts[0] != 2 {
		t.Fatalf("post-apply count at new home = %d, want 2, %v", counts[0], err)
	}
}
