package blobseer

import (
	"context"
	"fmt"
	"time"

	"blobcr/internal/obs"
	"blobcr/internal/wire"
)

// introspectionReply answers the binary TRACE/FLIGHT/HISTORY/METRICS
// siblings (opTraceGet, opFlightGet, opHistoryGet, opMetricsGet) from a
// server's registry. handled reports whether op was an introspection op; the
// servers try this before their own dispatch so every blobseer service
// exposes its span stores, history ring and exposition without repeating the
// cases.
func introspectionReply(reg *obs.Registry, op int, r *wire.Reader) (resp []byte, handled bool, err error) {
	switch op {
	case opTraceGet:
		trace := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, true, err
		}
		return obs.MarshalSpans(reg.TraceSpans(trace)), true, nil
	case opFlightGet:
		return obs.MarshalSpans(reg.FlightSpans()), true, nil
	case opHistoryGet:
		secs := r.U32()
		if err := reqErr(op, r); err != nil {
			return nil, true, err
		}
		h := reg.History()
		if h == nil {
			return nil, true, fmt.Errorf("blobseer: no history ring")
		}
		return obs.MarshalWindow(h.Window(time.Duration(secs) * time.Second)), true, nil
	case opMetricsGet:
		off := r.U32()
		if err := reqErr(op, r); err != nil {
			return nil, true, err
		}
		chunk, next := reg.ExpositionAt(int(off))
		w := wire.NewBuffer(16 + len(chunk))
		w.PutI64(int64(next))
		w.PutString(chunk)
		return w.Bytes(), true, nil
	}
	return nil, false, nil
}

// handlerSpan prepares the server-side context for one decoded request —
// spans below record into the server's own registry, detached from any
// in-process caller's flat Trace — and opens the handler span, which
// parents under the caller's RPC span via the wire's trace-context header.
func handlerSpan(ctx context.Context, reg *obs.Registry, op int) (context.Context, *obs.Span) {
	name := opNames[byte(op)]
	if name == "" {
		name = fmt.Sprintf("op-%d", op)
	}
	ctx = obs.HandlerContext(ctx, reg)
	return obs.StartSpan(ctx, "handler/"+name)
}

// rpc issues one wire call under an RPC child span, threading the derived
// context into the transport so the header it injects names this span as
// the parent — the far side's handler span then nests under it in an
// assembled trace.
func (c *Client) rpc(ctx context.Context, addr, verb string, req []byte) ([]byte, error) {
	ctx, sp := obs.StartSpan(ctx, "rpc/"+verb)
	defer sp.End()
	return c.Net.Call(ctx, addr, req)
}

// RemoteTrace collects the spans the service at addr holds for one trace
// (the binary sibling of the text endpoints' TRACE verb).
func (c *Client) RemoteTrace(ctx context.Context, addr string, trace uint64) ([]obs.SpanRecord, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opTraceGet)
	w.PutU64(trace)
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return nil, fmt.Errorf("blobseer: trace from %s: %w", addr, err)
	}
	return obs.ParseSpans(resp)
}

// RemoteFlight dumps the flight-recorder ring of the service at addr.
func (c *Client) RemoteFlight(ctx context.Context, addr string) ([]obs.SpanRecord, error) {
	w := wire.NewBuffer(4)
	w.PutU8(opFlightGet)
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return nil, fmt.Errorf("blobseer: flight dump from %s: %w", addr, err)
	}
	return obs.ParseSpans(resp)
}

// RemoteHistory queries the history ring of the service at addr over the
// trailing window (the binary sibling of the text endpoints' HISTORY verb).
// Services without a ring answer with an error.
func (c *Client) RemoteHistory(ctx context.Context, addr string, window time.Duration) (obs.WindowReport, error) {
	secs := int64(window / time.Second)
	if secs <= 0 || secs > int64(^uint32(0)) {
		return obs.WindowReport{}, fmt.Errorf("blobseer: bad history window %v", window)
	}
	w := wire.NewBuffer(8)
	w.PutU8(opHistoryGet)
	w.PutU32(uint32(secs))
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return obs.WindowReport{}, fmt.Errorf("blobseer: history from %s: %w", addr, err)
	}
	return obs.ParseWindow(resp)
}

// RemoteMetrics scrapes the full metrics exposition of the service at addr,
// following chunk continuations (the binary sibling of the text endpoints'
// METRICS verb, for services that speak no text protocol — data providers,
// the managers).
func (c *Client) RemoteMetrics(ctx context.Context, addr string) ([]obs.Point, error) {
	var text []byte
	off := uint32(0)
	for {
		w := wire.NewBuffer(8)
		w.PutU8(opMetricsGet)
		w.PutU32(off)
		resp, err := c.Net.Call(ctx, addr, w.Bytes())
		if err != nil {
			return nil, fmt.Errorf("blobseer: metrics from %s: %w", addr, err)
		}
		r := wire.NewReader(resp)
		next := r.I64()
		chunk := r.String()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("blobseer: metrics from %s: %w", addr, err)
		}
		text = append(text, chunk...)
		if next < 0 {
			break
		}
		if next <= int64(off) || next > int64(^uint32(0)) {
			return nil, fmt.Errorf("blobseer: metrics from %s: bad continuation offset %d", addr, next)
		}
		off = uint32(next)
	}
	return obs.ParseProm(string(text))
}
