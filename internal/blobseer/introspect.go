package blobseer

import (
	"context"
	"fmt"

	"blobcr/internal/obs"
	"blobcr/internal/wire"
)

// introspectionReply answers the binary TRACE/FLIGHT siblings (opTraceGet,
// opFlightGet) from a server's registry. handled reports whether op was an
// introspection op; the servers try this before their own dispatch so every
// blobseer service exposes its span stores without repeating the cases.
func introspectionReply(reg *obs.Registry, op int, r *wire.Reader) (resp []byte, handled bool, err error) {
	switch op {
	case opTraceGet:
		trace := r.U64()
		if err := reqErr(op, r); err != nil {
			return nil, true, err
		}
		return obs.MarshalSpans(reg.TraceSpans(trace)), true, nil
	case opFlightGet:
		return obs.MarshalSpans(reg.FlightSpans()), true, nil
	}
	return nil, false, nil
}

// handlerSpan prepares the server-side context for one decoded request —
// spans below record into the server's own registry, detached from any
// in-process caller's flat Trace — and opens the handler span, which
// parents under the caller's RPC span via the wire's trace-context header.
func handlerSpan(ctx context.Context, reg *obs.Registry, op int) (context.Context, *obs.Span) {
	name := opNames[byte(op)]
	if name == "" {
		name = fmt.Sprintf("op-%d", op)
	}
	ctx = obs.HandlerContext(ctx, reg)
	return obs.StartSpan(ctx, "handler/"+name)
}

// rpc issues one wire call under an RPC child span, threading the derived
// context into the transport so the header it injects names this span as
// the parent — the far side's handler span then nests under it in an
// assembled trace.
func (c *Client) rpc(ctx context.Context, addr, verb string, req []byte) ([]byte, error) {
	ctx, sp := obs.StartSpan(ctx, "rpc/"+verb)
	defer sp.End()
	return c.Net.Call(ctx, addr, req)
}

// RemoteTrace collects the spans the service at addr holds for one trace
// (the binary sibling of the text endpoints' TRACE verb).
func (c *Client) RemoteTrace(ctx context.Context, addr string, trace uint64) ([]obs.SpanRecord, error) {
	w := wire.NewBuffer(16)
	w.PutU8(opTraceGet)
	w.PutU64(trace)
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return nil, fmt.Errorf("blobseer: trace from %s: %w", addr, err)
	}
	return obs.ParseSpans(resp)
}

// RemoteFlight dumps the flight-recorder ring of the service at addr.
func (c *Client) RemoteFlight(ctx context.Context, addr string) ([]obs.SpanRecord, error) {
	w := wire.NewBuffer(4)
	w.PutU8(opFlightGet)
	resp, err := c.Net.Call(ctx, addr, w.Bytes())
	if err != nil {
		return nil, fmt.Errorf("blobseer: flight dump from %s: %w", addr, err)
	}
	return obs.ParseSpans(resp)
}
