package blobseer

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"blobcr/internal/transport"
)

// ctx is the default context for test operations.
var ctx = context.Background()

const testChunkSize = 256

// deploy starts an in-proc deployment for tests.
func deploy(t *testing.T, nMeta, nData int) (*Deployment, *Client) {
	t.Helper()
	d, err := Deploy(transport.NewInProc(), nMeta, nData)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	t.Cleanup(d.Close)
	return d, d.Client()
}

func TestCreateAndWriteRead(t *testing.T) {
	_, c := deploy(t, 3, 4)
	blob, err := c.CreateBlob(ctx, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*testChunkSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	info, err := c.WriteAt(ctx, blob, 0, data)
	if err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if info.Size != uint64(len(data)) {
		t.Errorf("Size = %d, want %d", info.Size, len(data))
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, uint64(len(data)))
	if err != nil {
		t.Fatalf("ReadVersion: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read-back mismatch")
	}
}

func TestUnalignedWriteReadModifyWrite(t *testing.T) {
	_, c := deploy(t, 2, 3)
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	base := bytes.Repeat([]byte{0xAA}, 2*testChunkSize)
	if _, err := c.WriteAt(ctx, blob, 0, base); err != nil {
		t.Fatal(err)
	}
	// Overwrite a range crossing the chunk boundary, unaligned on both ends.
	patch := bytes.Repeat([]byte{0xBB}, 100)
	info, err := c.WriteAt(ctx, blob, testChunkSize-50, patch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, 2*testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), base...)
	copy(want[testChunkSize-50:], patch)
	if !bytes.Equal(got, want) {
		t.Error("unaligned RMW produced wrong content")
	}
}

func TestVersioningIsolation(t *testing.T) {
	_, c := deploy(t, 2, 3)
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	v0, err := c.WriteAt(ctx, blob, 0, bytes.Repeat([]byte{1}, testChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := c.WriteAt(ctx, blob, 0, bytes.Repeat([]byte{2}, testChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	got0, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: v0.Version}, 0, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: v1.Version}, 0, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if got0[0] != 1 || got1[0] != 2 {
		t.Errorf("version isolation broken: v0[0]=%d v1[0]=%d", got0[0], got1[0])
	}
}

func TestHolesReadAsZeros(t *testing.T) {
	_, c := deploy(t, 2, 3)
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	// Write only chunk 3; chunks 0-2 are holes.
	writes := map[uint64][]byte{3: bytes.Repeat([]byte{7}, testChunkSize)}
	info, err := c.WriteVersion(ctx, blob, writes, 4*testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, 4*testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*testChunkSize; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, got[i])
		}
	}
	for i := 3 * testChunkSize; i < 4*testChunkSize; i++ {
		if got[i] != 7 {
			t.Fatalf("data byte %d = %d, want 7", i, got[i])
		}
	}
}

func TestReadPastEndTruncates(t *testing.T) {
	_, c := deploy(t, 2, 2)
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	info, err := c.WriteAt(ctx, blob, 0, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
	got, err = c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("read past end returned %d bytes", len(got))
	}
}

func TestIncrementalCommitMovesOnlyDiffs(t *testing.T) {
	d, c := deploy(t, 2, 3)
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	// Version 0: 64 chunks.
	full := make(map[uint64][]byte)
	for i := uint64(0); i < 64; i++ {
		full[i] = bytes.Repeat([]byte{byte(i)}, testChunkSize)
	}
	if _, err := c.WriteVersion(ctx, blob, full, 64*testChunkSize); err != nil {
		t.Fatal(err)
	}
	bytesAfterV0, chunksAfterV0, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksAfterV0 != 64 {
		t.Fatalf("v0 stored %d chunks, want 64", chunksAfterV0)
	}
	// Version 1: only 2 chunks change.
	delta := map[uint64][]byte{
		10: bytes.Repeat([]byte{0xFF}, testChunkSize),
		20: bytes.Repeat([]byte{0xFE}, testChunkSize),
	}
	if _, err := c.WriteVersion(ctx, blob, delta, 64*testChunkSize); err != nil {
		t.Fatal(err)
	}
	bytesAfterV1, chunksAfterV1, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksAfterV1-chunksAfterV0 != 2 {
		t.Errorf("incremental commit stored %d new chunks, want 2", chunksAfterV1-chunksAfterV0)
	}
	if bytesAfterV1-bytesAfterV0 != 2*testChunkSize {
		t.Errorf("incremental commit stored %d new bytes, want %d", bytesAfterV1-bytesAfterV0, 2*testChunkSize)
	}
}

func TestCloneSharesAndDiverges(t *testing.T) {
	d, c := deploy(t, 2, 3)
	src, _ := c.CreateBlob(ctx, testChunkSize)
	content := bytes.Repeat([]byte{0x5A}, 8*testChunkSize)
	v0, err := c.WriteAt(ctx, src, 0, content)
	if err != nil {
		t.Fatal(err)
	}
	_, chunksBefore, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}

	clone, err := c.Clone(ctx, SnapshotRef{Blob: src, Version: v0.Version})
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	// Clone is readable immediately and identical (shares all content).
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: clone, Version: 0}, 0, uint64(len(content)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("clone content differs from origin")
	}
	_, chunksAfterClone, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksAfterClone != chunksBefore {
		t.Errorf("clone stored %d new chunks, want 0 (must share)", chunksAfterClone-chunksBefore)
	}

	// Writes to the clone do not affect the origin.
	patch := bytes.Repeat([]byte{0x11}, testChunkSize)
	cv, err := c.WriteAt(ctx, clone, 0, patch)
	if err != nil {
		t.Fatal(err)
	}
	cloneGot, err := c.ReadVersion(ctx, SnapshotRef{Blob: clone, Version: cv.Version}, 0, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if cloneGot[0] != 0x11 {
		t.Error("clone write not visible in clone")
	}
	srcGot, err := c.ReadVersion(ctx, SnapshotRef{Blob: src, Version: v0.Version}, 0, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if srcGot[0] != 0x5A {
		t.Error("clone write leaked into origin")
	}
}

func TestReplication(t *testing.T) {
	d, _ := deploy(t, 2, 3)
	c := d.Client()
	c.Replication = 2
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	info, err := c.WriteAt(ctx, blob, 0, bytes.Repeat([]byte{9}, 4*testChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	_, chunks, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 8 { // 4 chunks x 2 replicas
		t.Errorf("stored %d chunk copies, want 8", chunks)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, 4*testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4*testChunkSize || got[0] != 9 {
		t.Error("replicated read failed")
	}
}

func TestReplicaFailover(t *testing.T) {
	net := transport.NewInProc()
	d, err := Deploy(net, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c := d.Client()
	c.Replication = 2
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	info, err := c.WriteAt(ctx, blob, 0, bytes.Repeat([]byte{3}, 6*testChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	// Kill one data provider; every chunk still has a replica elsewhere.
	net.Partition(d.DataAddrs[0])
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, 6*testChunkSize)
	if err != nil {
		t.Fatalf("read with one provider down: %v", err)
	}
	if got[0] != 3 {
		t.Error("failover read returned wrong data")
	}
}

func TestConcurrentWritersDistinctBlobs(t *testing.T) {
	_, c := deploy(t, 4, 8)
	const writers = 16
	blobs := make([]uint64, writers)
	for i := range blobs {
		id, err := c.CreateBlob(ctx, testChunkSize)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = id
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(i + 1)}, 8*testChunkSize)
			info, err := c.WriteAt(ctx, blobs[i], 0, data)
			if err != nil {
				errs <- fmt.Errorf("writer %d: %w", i, err)
				return
			}
			got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blobs[i], Version: info.Version}, 0, uint64(len(data)))
			if err != nil {
				errs <- fmt.Errorf("reader %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("writer %d: read-back mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentVersionsSameBlobSerialize(t *testing.T) {
	_, c := deploy(t, 2, 4)
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	if _, err := c.WriteAt(ctx, blob, 0, bytes.Repeat([]byte{1}, 4*testChunkSize)); err != nil {
		t.Fatal(err)
	}
	// Concurrent whole-chunk writers to disjoint chunks of the same blob.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			writes := map[uint64][]byte{uint64(i): bytes.Repeat([]byte{byte(0x10 + i)}, testChunkSize)}
			if _, err := c.WriteVersion(ctx, blob, writes, 4*testChunkSize); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	info, _, err := c.Latest(ctx, blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 4 {
		t.Errorf("latest version = %d, want 4 (5 versions published)", info.Version)
	}
}

func TestGCReclaimsRetiredVersions(t *testing.T) {
	d, c := deploy(t, 2, 3)
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	// 5 versions, each rewriting all 8 chunks: 40 chunks stored.
	for v := 0; v < 5; v++ {
		writes := make(map[uint64][]byte)
		for i := uint64(0); i < 8; i++ {
			writes[i] = bytes.Repeat([]byte{byte(v*16 + int(i))}, testChunkSize)
		}
		if _, err := c.WriteVersion(ctx, blob, writes, 8*testChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	_, chunksBefore, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksBefore != 40 {
		t.Fatalf("stored %d chunks, want 40", chunksBefore)
	}
	// Retire versions 0-3, keep only version 4.
	if err := c.Retire(ctx, blob, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := c.GC(ctx, d.DataAddrs)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if stats.DeletedChunks != 32 {
		t.Errorf("GC deleted %d chunks, want 32", stats.DeletedChunks)
	}
	_, chunksAfter, err := c.Usage(ctx, d.DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksAfter != 8 {
		t.Errorf("after GC %d chunks remain, want 8", chunksAfter)
	}
	// The surviving version is intact.
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: 4}, 0, 8*testChunkSize)
	if err != nil {
		t.Fatalf("read after GC: %v", err)
	}
	for i := 0; i < testChunkSize; i++ {
		if got[i] != 4*16 {
			t.Fatalf("post-GC content corrupted at %d", i)
		}
	}
}

func TestGCKeepsSharedChunksOfClones(t *testing.T) {
	d, c := deploy(t, 2, 3)
	src, _ := c.CreateBlob(ctx, testChunkSize)
	v0, err := c.WriteAt(ctx, src, 0, bytes.Repeat([]byte{1}, 8*testChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	clone, err := c.Clone(ctx, SnapshotRef{Blob: src, Version: v0.Version})
	if err != nil {
		t.Fatal(err)
	}
	// Retire ALL versions of the source; the clone still references its
	// chunks, so GC must not delete them.
	if err := c.Retire(ctx, src, v0.Version+1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(ctx, d.DataAddrs); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: clone, Version: 0}, 0, 8*testChunkSize)
	if err != nil {
		t.Fatalf("clone read after origin GC: %v", err)
	}
	if got[0] != 1 {
		t.Error("GC deleted chunks still referenced by a clone")
	}
}

func TestLargeRandomizedReadsAcrossVersions(t *testing.T) {
	_, c := deploy(t, 4, 6)
	rng := rand.New(rand.NewSource(7))
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	const size = 40 * testChunkSize
	shadow := make([]byte, size)
	rng.Read(shadow)
	if _, err := c.WriteAt(ctx, blob, 0, shadow); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 15; iter++ {
		off := uint64(rng.Intn(size - 1))
		n := uint64(rng.Intn(size-int(off))) + 1
		patch := make([]byte, n)
		rng.Read(patch)
		if _, err := c.WriteAt(ctx, blob, off, patch); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		copy(shadow[off:], patch)
		info, _, err := c.Latest(ctx, blob)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, shadow) {
			t.Fatalf("iter %d: content diverged from shadow model", iter)
		}
	}
}

func TestListBlobs(t *testing.T) {
	_, c := deploy(t, 2, 2)
	b1, _ := c.CreateBlob(ctx, 128)
	b2, _ := c.CreateBlob(ctx, 512)
	if _, err := c.WriteAt(ctx, b2, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	blobs, err := c.ListBlobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 {
		t.Fatalf("ListBlobs returned %d, want 2", len(blobs))
	}
	if blobs[0].ID != b1 || blobs[0].ChunkSize != 128 || blobs[0].Versions != 0 {
		t.Errorf("blob1 = %+v", blobs[0])
	}
	if blobs[1].ID != b2 || blobs[1].ChunkSize != 512 || blobs[1].Versions != 1 {
		t.Errorf("blob2 = %+v", blobs[1])
	}
}

func TestTCPDeployment(t *testing.T) {
	tcp := transport.NewTCP()
	defer tcp.Close()
	d, err := Deploy(tcp, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c := d.Client()
	blob, err := c.CreateBlob(ctx, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xC3}, 3*testChunkSize)
	info, err := c.WriteAt(ctx, blob, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("TCP deployment round-trip failed")
	}
}

func TestMetaUsageGrowsSublinearlyForIncrementalCommits(t *testing.T) {
	// The whole point of shadowing: metadata for an incremental commit is
	// O(log span), not O(span).
	_, c := deploy(t, 2, 2)
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	full := make(map[uint64][]byte)
	for i := uint64(0); i < 256; i++ {
		full[i] = bytes.Repeat([]byte{1}, testChunkSize)
	}
	if _, err := c.WriteVersion(ctx, blob, full, 256*testChunkSize); err != nil {
		t.Fatal(err)
	}
	_, nodesFull, err := c.MetaUsage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteVersion(ctx, blob, map[uint64][]byte{13: bytes.Repeat([]byte{2}, testChunkSize)}, 256*testChunkSize); err != nil {
		t.Fatal(err)
	}
	_, nodesIncr, err := c.MetaUsage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	added := nodesIncr - nodesFull
	if added != 9 { // path of length log2(256)+1 = 9 nodes
		t.Errorf("incremental commit added %d metadata nodes, want 9", added)
	}
}

func TestUnregisterProviderLeavesPlacement(t *testing.T) {
	d, c := deploy(t, 2, 3)
	if err := c.UnregisterProvider(ctx, d.DataAddrs[0]); err != nil {
		t.Fatal(err)
	}
	provs, err := c.Providers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) != 2 {
		t.Fatalf("providers = %v, want 2 after unregister", provs)
	}
	for _, p := range provs {
		if p == d.DataAddrs[0] {
			t.Error("unregistered provider still in placement")
		}
	}
	// Writes after unregister succeed and land only on live providers.
	blob, _ := c.CreateBlob(ctx, testChunkSize)
	info, err := c.WriteAt(ctx, blob, 0, bytes.Repeat([]byte{1}, 8*testChunkSize))
	if err != nil {
		t.Fatalf("write after unregister: %v", err)
	}
	got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, 8*testChunkSize)
	if err != nil || got[0] != 1 {
		t.Errorf("read after unregister: %v", err)
	}
	if d.DataProviderStores()[0].Len() != 0 {
		t.Error("unregistered provider received chunks")
	}
	// Unregistering an unknown address is a no-op.
	if err := c.UnregisterProvider(ctx, "nonexistent"); err != nil {
		t.Errorf("unregister unknown: %v", err)
	}
}
