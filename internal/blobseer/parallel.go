package blobseer

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
	"blobcr/internal/wire"
)

// DefaultParallelism is the number of concurrent per-provider streams a
// commit or restore fans out to when Client.Parallelism is unset. One stream
// per provider saturates up to this many providers; deployments striping
// wider set Parallelism to at least their provider count.
const DefaultParallelism = 8

// batchBytesLimit caps the payload bytes of one batched frame. A commit or
// restore splits a provider's chunk set into frames of at most this size, so
// a single frame never monopolizes a connection and stays far below
// wire.MaxFieldSize.
const batchBytesLimit = 4 << 20

// maxFrameItems caps the item count of one batched frame (body-less frames
// like fingerprint probes and node sets are not bounded by bytes). It stays
// well under the server's maxBatchItems guard, so a legitimate frame is
// never mistaken for a corrupt count.
const maxFrameItems = 1 << 16

func (c *Client) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return DefaultParallelism
}

// runLimited runs fn(i) for i in [0, n) on at most limit goroutines,
// errgroup-style: the first error cancels the context the remaining calls
// run under, and is returned after all started calls finish.
func runLimited(ctx context.Context, limit, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if limit > n {
		limit = n
	}
	if limit < 1 {
		limit = 1
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for i := 0; i < n; i++ {
		if gctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(gctx, i); err != nil {
				mu.Lock()
				if first == nil {
					first = err
					cancel()
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// runGroups runs fn once per provider group, the groups proceeding
// concurrently on at most limit streams (errgroup-style cancellation via
// runLimited). This is the one fan-out shape the whole data path uses:
// group items by provider, run one stream per provider. Each stream's wall
// time is observed into the context registry's per-provider histogram, the
// direct measure of striping balance.
func runGroups[T any](ctx context.Context, limit int, groups map[string][]T, fn func(ctx context.Context, addr string, items []T) error) error {
	reg := obs.RegistryFrom(ctx)
	addrs := make([]string, 0, len(groups))
	for addr := range groups {
		addrs = append(addrs, addr)
	}
	return runLimited(ctx, limit, len(addrs), func(ctx context.Context, i int) error {
		sw := obs.StartTimer()
		err := fn(ctx, addrs[i], groups[addrs[i]])
		sw.ObserveInto(reg.Histogram("blobseer_stream_ns", obs.L("addr", addrs[i])))
		return err
	})
}

// errStopGroup is returned by a frame callback to abandon the rest of a
// provider's frames without failing the whole operation — the provider died
// and its remaining items go to the failover path. Callers translate it to
// nil after splitByBytes returns.
var errStopGroup = errors.New("blobseer: provider stream abandoned")

// splitByBytes calls fn over consecutive [start, end) windows of n items
// whose summed sizes stay within batchBytesLimit and whose count stays
// within maxFrameItems (always at least one item per window), stopping at
// the first error.
func splitByBytes(n int, size func(i int) int, fn func(start, end int) error) error {
	for start := 0; start < n; {
		end, bytes := start, 0
		for end < n && end-start < maxFrameItems && (end == start || bytes+size(end) <= batchBytesLimit) {
			bytes += size(end)
			end++
		}
		if err := fn(start, end); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// putChunkBatch ships a set of (blob, id)-addressed chunk replicas to one
// provider in a single round trip.
func (c *Client) putChunkBatch(ctx context.Context, addr string, keys []chunkstore.Key, bodies [][]byte) error {
	size := 16
	for _, b := range bodies {
		size += 24 + len(b)
	}
	w := wire.NewBuffer(size)
	w.PutU8(opChunkPutBatch)
	w.PutUvarint(uint64(len(keys)))
	for i, k := range keys {
		putChunkKey(w, k)
		w.PutBytes(bodies[i])
	}
	obs.RegistryFrom(ctx).Counter("blobseer_batch_calls_total", obs.L("op", "chunk-put-batch")).Inc()
	if _, err := c.rpc(ctx, addr, "chunk-put-batch", w.Bytes()); err != nil {
		return fmt.Errorf("blobseer: put %d chunks to %s: %w", len(keys), addr, err)
	}
	return nil
}

// getChunkBatch fetches a set of chunks from one provider in a single round
// trip. The result is aligned with keys; a chunk the provider does not hold
// yields a nil entry (the caller fails over to another replica).
func (c *Client) getChunkBatch(ctx context.Context, addr string, keys []chunkstore.Key) ([][]byte, error) {
	w := wire.NewBuffer(16 + 16*len(keys))
	w.PutU8(opChunkGetBatch)
	w.PutUvarint(uint64(len(keys)))
	for _, k := range keys {
		putChunkKey(w, k)
	}
	obs.RegistryFrom(ctx).Counter("blobseer_batch_calls_total", obs.L("op", "chunk-get-batch")).Inc()
	resp, err := c.rpc(ctx, addr, "chunk-get-batch", w.Bytes())
	if err != nil {
		return nil, fmt.Errorf("blobseer: get %d chunks from %s: %w", len(keys), addr, err)
	}
	r := wire.NewReader(resp)
	out := make([][]byte, len(keys))
	for i := range keys {
		if r.Bool() {
			out[i] = r.BytesCopy()
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// casRefBatch performs the "have these fingerprints?" round trip against one
// provider: one reference is taken for every fingerprint reported held. Very
// large probe sets split into frames of maxFrameItems. On error, the
// already-completed frames' results are still returned — valid counts how
// many leading entries of held are meaningful — so the caller can record the
// references those frames took (they must be released on abort).
func (c *Client) casRefBatch(ctx context.Context, addr string, fps []cas.Fingerprint) (held []bool, valid int, err error) {
	held = make([]bool, len(fps))
	for start := 0; start < len(fps); start += maxFrameItems {
		end := min(start+maxFrameItems, len(fps))
		w := wire.NewBuffer(16 + 40*(end-start))
		w.PutU8(opCasRefBatch)
		w.PutUvarint(uint64(end - start))
		for _, fp := range fps[start:end] {
			putFingerprint(w, fp)
		}
		obs.RegistryFrom(ctx).Counter("blobseer_batch_calls_total", obs.L("op", "cas-ref-batch")).Inc()
		resp, err := c.rpc(ctx, addr, "cas-ref-batch", w.Bytes())
		if err != nil {
			return held, start, fmt.Errorf("blobseer: cas ref batch on %s: %w", addr, err)
		}
		r := wire.NewReader(resp)
		for i := start; i < end; i++ {
			v := r.Bool()
			if err := r.Err(); err != nil {
				// Truncated response: the flags decoded so far are real —
				// the server processed the whole frame — so count them into
				// valid; the caller must record (and eventually release)
				// those references.
				return held, i, err
			}
			held[i] = v
		}
	}
	return held, len(fps), nil
}

// casPutBatch uploads a set of bodies under their fingerprints to one
// provider in a single round trip, taking one reference each.
func (c *Client) casPutBatch(ctx context.Context, addr string, fps []cas.Fingerprint, bodies [][]byte) error {
	size := 16
	for _, b := range bodies {
		size += 48 + len(b)
	}
	w := wire.NewBuffer(size)
	w.PutU8(opCasPutBatch)
	w.PutUvarint(uint64(len(fps)))
	for i, fp := range fps {
		putFingerprint(w, fp)
		w.PutBytes(bodies[i])
	}
	obs.RegistryFrom(ctx).Counter("blobseer_batch_calls_total", obs.L("op", "cas-put-batch")).Inc()
	resp, err := c.rpc(ctx, addr, "cas-put-batch", w.Bytes())
	if err != nil {
		return fmt.Errorf("blobseer: cas put batch to %s: %w", addr, err)
	}
	r := wire.NewReader(resp)
	for range fps {
		r.Bool() // dup flag, unused: transfer already happened either way
	}
	return r.Err()
}
