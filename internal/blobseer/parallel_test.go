package blobseer

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/meta"
	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// TestPlacedReplicationCountsLogicalBytesOncePerChunk is the regression test
// for the LogicalBytes accounting fix: a replicated placed commit ships one
// body per replica (TransferBytes) but its payload is each chunk once —
// before the fix, LogicalBytes was inflated by the replica count, skewing
// the dedup hit-rate math.
func TestPlacedReplicationCountsLogicalBytesOncePerChunk(t *testing.T) {
	const chunk = 512
	d, err := Deploy(transport.NewInProc(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Replication = 2

	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	writes := make(map[uint64][]byte)
	for i := uint64(0); i < 4; i++ {
		writes[i] = bytes.Repeat([]byte{byte('p' + i)}, chunk)
	}
	_, cs, err := c.WriteVersionStats(ctx, blob, writes, 4*chunk)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Chunks != 4 {
		t.Errorf("Chunks = %d, want 4", cs.Chunks)
	}
	if cs.LogicalBytes != 4*chunk {
		t.Errorf("LogicalBytes = %d, want %d (once per chunk, not per replica)", cs.LogicalBytes, 4*chunk)
	}
	if cs.TransferBytes != 8*chunk {
		t.Errorf("TransferBytes = %d, want %d (both replica bodies cross the network)", cs.TransferBytes, 8*chunk)
	}
}

// TestDedupCommitProbesPerProviderNotPerChunk is the acceptance test for the
// batched CAS probe: a dedup commit must issue O(providers) round trips —
// one "have these fingerprints?" frame and one body-upload frame per
// provider — never O(chunks). 64 fresh chunks against 2 providers and 1
// metadata shard fit in a dozen round trips; the pre-batch protocol needed
// well over 128 (one probe + one put per chunk) plus one metadata put per
// tree node.
func TestDedupCommitProbesPerProviderNotPerChunk(t *testing.T) {
	const chunks = 64
	lat := transport.WithLatency(transport.NewInProc(), 0)
	d, err := Deploy(lat, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true

	blob, err := c.CreateBlob(ctx, 1024)
	if err != nil {
		t.Fatal(err)
	}
	writes := make(map[uint64][]byte)
	for i := uint64(0); i < chunks; i++ {
		writes[i] = bytes.Repeat([]byte{byte(i), byte(i + 1)}, 512)
	}
	calls0 := lat.Calls()
	if _, _, err := c.WriteVersionStats(ctx, blob, writes, chunks*1024); err != nil {
		t.Fatal(err)
	}
	commitCalls := lat.Calls() - calls0
	if commitCalls > 16 {
		t.Errorf("fresh dedup commit of %d chunks issued %d round trips, want O(providers) (<= 16)", chunks, commitCalls)
	}

	// A fully deduplicated re-commit (same bodies, new snapshot) ships no
	// body frames: probes plus the level-order metadata reads of the
	// previous version's paths — O(providers + log span), still nowhere
	// near O(chunks).
	calls0 = lat.Calls()
	if _, _, err := c.WriteVersionStats(ctx, blob, writes, chunks*1024); err != nil {
		t.Fatal(err)
	}
	dedupCalls := lat.Calls() - calls0
	if dedupCalls > 20 {
		t.Errorf("dedup re-commit issued %d round trips, want O(providers + log span) (<= 20)", dedupCalls)
	}
}

// addrCountNet counts calls per address, for asserting which providers
// serve read traffic.
type addrCountNet struct {
	*transport.InProc
	mu    sync.Mutex
	calls map[string]int
}

func (n *addrCountNet) Call(ctx context.Context, addr string, req []byte) ([]byte, error) {
	n.mu.Lock()
	n.calls[addr]++
	n.mu.Unlock()
	return n.InProc.Call(ctx, addr, req)
}

func (n *addrCountNet) reset() {
	n.mu.Lock()
	n.calls = make(map[string]int)
	n.mu.Unlock()
}

func (n *addrCountNet) count(addr string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.calls[addr]
}

// TestReadSpreadsAcrossReplicas: with two replicas on two providers, a
// restore must draw chunks from both — the replica rotation (by chunk key
// hash) spreads read load instead of hot-spotting the first-placed replica.
// In-order failover per chunk is preserved: partitioning one provider leaves
// every chunk readable through the other.
func TestReadSpreadsAcrossReplicas(t *testing.T) {
	const chunk = 1024
	const chunks = 16
	net := &addrCountNet{InProc: transport.NewInProc(), calls: make(map[string]int)}
	d, err := Deploy(net, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Replication = 2 // every chunk on both providers

	blob, err := c.CreateBlob(ctx, chunk)
	if err != nil {
		t.Fatal(err)
	}
	writes := make(map[uint64][]byte)
	want := make([]byte, 0, chunks*chunk)
	for i := uint64(0); i < chunks; i++ {
		body := bytes.Repeat([]byte{byte('r' + i)}, chunk)
		writes[i] = body
		want = append(want, body...)
	}
	info, err := c.WriteVersion(ctx, blob, writes, chunks*chunk)
	if err != nil {
		t.Fatal(err)
	}
	ref := SnapshotRef{Blob: blob, Version: info.Version}

	net.reset()
	got, err := c.ReadVersion(ctx, ref, 0, chunks*chunk)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restore corrupted")
	}
	for _, addr := range d.DataAddrs {
		if net.count(addr) == 0 {
			t.Errorf("provider %s served no reads: replica rotation not spreading load", addr)
		}
	}

	// In-order failover survives the rotation: with one provider dark, the
	// full restore still succeeds through the remaining replicas.
	net.InProc.Partition(d.DataAddrs[0])
	got, err = c.ReadVersion(ctx, ref, 0, chunks*chunk)
	if err != nil {
		t.Fatalf("restore with one replica provider dark: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failover restore corrupted")
	}
}

// TestParallelCommitRetireRaceStress is the concurrent-commit-vs-Retire
// stress run over the *parallel* upload path: several writers with
// Parallelism > 1 and replication 2 share a small content pool while
// retiring superseded snapshots. Every published snapshot must stay fully
// readable and refcounts must never double-free. Run with -race.
func TestParallelCommitRetireRaceStress(t *testing.T) {
	const (
		chunk   = 1024
		writers = 5
		rounds  = 20
		stripes = 4
		pool    = 3
	)
	d, err := Deploy(transport.NewInProc(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := d.Client()
	c.Dedup = true
	c.Replication = 2
	c.Parallelism = 4

	contents := make([][]byte, pool)
	for i := range contents {
		contents[i] = bytes.Repeat([]byte{byte('A' + i)}, chunk)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			blob, err := c.CreateBlob(ctx, chunk)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				writes := make(map[uint64][]byte, stripes)
				want := make([]byte, 0, stripes*chunk)
				for s := 0; s < stripes; s++ {
					body := contents[(w+r+s)%pool]
					writes[uint64(s)] = body
					want = append(want, body...)
				}
				info, _, err := c.WriteVersionStats(ctx, blob, writes, stripes*chunk)
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: commit: %w", w, r, err)
					return
				}
				got, err := c.ReadVersion(ctx, SnapshotRef{Blob: blob, Version: info.Version}, 0, stripes*chunk)
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: read: %w", w, r, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("writer %d round %d: snapshot corrupted", w, r)
					return
				}
				if _, err := c.RetireStats(ctx, blob, info.Version); err != nil {
					errs <- fmt.Errorf("writer %d round %d: retire: %w", w, r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- batch frame decoding (satellite: malformed frames fail cleanly) ---

// batchFrames builds one valid frame per batch verb, against matching
// server state where needed.
func batchFrames() map[string][]byte {
	frames := make(map[string][]byte)

	key := chunkstore.Key{Blob: 7, ID: 9}
	body := bytes.Repeat([]byte{0xAB}, 32)
	fp := cas.Sum(body)

	w := wire.NewBuffer(64)
	w.PutU8(opChunkPutBatch)
	w.PutUvarint(2)
	putChunkKey(w, key)
	w.PutBytes(body)
	putChunkKey(w, chunkstore.Key{Blob: 7, ID: 10})
	w.PutBytes(body)
	frames["opChunkPutBatch"] = append([]byte(nil), w.Bytes()...)

	w = wire.NewBuffer(64)
	w.PutU8(opChunkGetBatch)
	w.PutUvarint(2)
	putChunkKey(w, key)
	putChunkKey(w, chunkstore.Key{Blob: 7, ID: 10})
	frames["opChunkGetBatch"] = append([]byte(nil), w.Bytes()...)

	w = wire.NewBuffer(64)
	w.PutU8(opCasRefBatch)
	w.PutUvarint(2)
	putFingerprint(w, fp)
	putFingerprint(w, cas.Sum([]byte("other")))
	frames["opCasRefBatch"] = append([]byte(nil), w.Bytes()...)

	w = wire.NewBuffer(128)
	w.PutU8(opCasPutBatch)
	w.PutUvarint(1)
	putFingerprint(w, fp)
	w.PutBytes(body)
	frames["opCasPutBatch"] = append([]byte(nil), w.Bytes()...)

	nk := meta.NodeKey{Blob: 1, Version: 2, Offset: 3, Span: 4}
	w = wire.NewBuffer(64)
	w.PutU8(opNodePutBatch)
	w.PutUvarint(2)
	putNodeKey(w, nk)
	w.PutBytes([]byte("node-a"))
	putNodeKey(w, meta.NodeKey{Blob: 1, Version: 2, Offset: 4, Span: 4})
	w.PutBytes([]byte("node-b"))
	frames["opNodePutBatch"] = append([]byte(nil), w.Bytes()...)

	w = wire.NewBuffer(64)
	w.PutU8(opNodeGetBatch)
	w.PutUvarint(2)
	putNodeKey(w, nk)
	putNodeKey(w, meta.NodeKey{Blob: 9, Version: 9, Offset: 0, Span: 1})
	frames["opNodeGetBatch"] = append([]byte(nil), w.Bytes()...)

	return frames
}

// handlerFor routes a frame to the right daemon handler.
func handlerFor(t *testing.T, verb string) func(context.Context, []byte) ([]byte, error) {
	t.Helper()
	switch verb {
	case "opNodePutBatch", "opNodeGetBatch":
		return NewMetadataProvider().handle
	default:
		return NewDataProvider(cas.NewMem()).handle
	}
}

// TestBatchFramesDecodeCleanly: every batch verb accepts its well-formed
// frame and rejects every truncation and an implausible item count with a
// clean error — no panic, no partial application.
func TestBatchFramesDecodeCleanly(t *testing.T) {
	for verb, frame := range batchFrames() {
		t.Run(verb, func(t *testing.T) {
			h := handlerFor(t, verb)
			if _, err := h(ctx, frame); err != nil {
				t.Fatalf("well-formed frame rejected: %v", err)
			}
			// Every strict prefix must fail cleanly: the item count promises
			// more than the frame holds.
			for cut := 1; cut < len(frame); cut++ {
				if _, err := h(ctx, frame[:cut]); err == nil {
					t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(frame))
				}
			}
			// An implausible item count is rejected before any allocation
			// or application.
			w := wire.NewBuffer(16)
			w.PutU8(frame[0])
			w.PutUvarint(1 << 40)
			if _, err := h(ctx, w.Bytes()); err == nil {
				t.Fatal("implausible batch count accepted")
			}
		})
	}
}

// TestCasPutBatchCorruptBodyTakesNoRefs: a batch whose body does not hash to
// its claimed fingerprint is rejected whole — no reference is taken for any
// item, including the valid ones before it.
func TestCasPutBatchCorruptBodyTakesNoRefs(t *testing.T) {
	store := cas.NewMem()
	dp := NewDataProvider(store)
	good := bytes.Repeat([]byte{0x01}, 16)
	w := wire.NewBuffer(128)
	w.PutU8(opCasPutBatch)
	w.PutUvarint(2)
	putFingerprint(w, cas.Sum(good))
	w.PutBytes(good)
	putFingerprint(w, cas.Sum([]byte("claimed")))
	w.PutBytes([]byte("actual")) // mismatch
	if _, err := dp.handle(ctx, w.Bytes()); err == nil {
		t.Fatal("corrupt batch accepted")
	}
	st := store.Stats()
	if st.Refs != 0 || st.Chunks != 0 {
		t.Fatalf("corrupt batch applied partially: %d refs, %d chunks", st.Refs, st.Chunks)
	}
}

// TestSingularNodeVerbsRemainServed: the pre-batch opNodePut/opNodeGet verbs
// stay on the wire for older clients; the metadata provider must keep
// serving them alongside the batch path.
func TestSingularNodeVerbsRemainServed(t *testing.T) {
	mp := NewMetadataProvider()
	nk := meta.NodeKey{Blob: 5, Version: 1, Offset: 0, Span: 2}

	w := wire.NewBuffer(64)
	w.PutU8(opNodePut)
	putNodeKey(w, nk)
	w.PutBytes([]byte("legacy-node"))
	if _, err := mp.handle(ctx, w.Bytes()); err != nil {
		t.Fatalf("opNodePut: %v", err)
	}

	w = wire.NewBuffer(64)
	w.PutU8(opNodeGet)
	putNodeKey(w, nk)
	resp, err := mp.handle(ctx, w.Bytes())
	if err != nil {
		t.Fatalf("opNodeGet: %v", err)
	}
	r := wire.NewReader(resp)
	if got := string(r.Bytes()); got != "legacy-node" || r.Err() != nil {
		t.Fatalf("opNodeGet returned %q (err %v)", got, r.Err())
	}

	// A singular put is visible to the batch get, and vice versa absence is
	// an error on the singular path (not a presence flag).
	w = wire.NewBuffer(64)
	w.PutU8(opNodeGetBatch)
	w.PutUvarint(1)
	putNodeKey(w, nk)
	resp, err = mp.handle(ctx, w.Bytes())
	if err != nil {
		t.Fatalf("opNodeGetBatch after singular put: %v", err)
	}
	r = wire.NewReader(resp)
	if !r.Bool() || string(r.Bytes()) != "legacy-node" {
		t.Fatal("batch get does not see singular put")
	}
	w = wire.NewBuffer(64)
	w.PutU8(opNodeGet)
	putNodeKey(w, meta.NodeKey{Blob: 9})
	if _, err := mp.handle(ctx, w.Bytes()); err == nil {
		t.Fatal("opNodeGet of missing node succeeded")
	}
}
