package blobseer

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"blobcr/internal/cas"
	"blobcr/internal/chunkstore"
	"blobcr/internal/meta"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
	"blobcr/internal/wire"
)

// ProviderState is one provider's membership state.
type ProviderState uint8

const (
	// ProviderActive providers are placement-eligible: new chunk replicas
	// may land on them.
	ProviderActive ProviderState = iota
	// ProviderDraining providers have left the placement rotation but keep
	// serving reads while the repair plane re-places their replicas
	// elsewhere (the first half of a DECOMMISSION).
	ProviderDraining
)

func (s ProviderState) String() string {
	if s == ProviderDraining {
		return "draining"
	}
	return "active"
}

// ProviderInfo is one membership entry.
type ProviderInfo struct {
	Addr  string
	State ProviderState
}

// Membership is the provider manager's full membership view. Epoch bumps on
// every change (JOIN, fail-stop unregister, drain, retire), so a scrub or
// repair pass can detect churn between its survey and its fixes.
type Membership struct {
	Epoch     uint64
	Providers []ProviderInfo
}

// Active returns the placement-eligible provider addresses.
func (m Membership) Active() []string {
	var out []string
	for _, p := range m.Providers {
		if p.State == ProviderActive {
			out = append(out, p.Addr)
		}
	}
	return out
}

// Addrs returns every member address (active and draining).
func (m Membership) Addrs() []string {
	out := make([]string, len(m.Providers))
	for i, p := range m.Providers {
		out[i] = p.Addr
	}
	return out
}

// ProviderManager tracks data providers and assigns chunk placements.
// Placement is round-robin over registered providers, skewed away from the
// most loaded ones, which evens out the global I/O workload the way the
// paper's striping scheme intends.
//
// Membership is dynamic: providers JOIN at any time (opRegister) and leave
// either abruptly (opUnregister, fail-stop) or gracefully via DECOMMISSION —
// opDrain takes the provider out of placement while it keeps serving reads,
// and opRetireProvider removes it once the repair plane has re-placed its
// replicas. Every change bumps the membership epoch.
type ProviderManager struct {
	// Obs is the registry handler spans and span stores record into; nil
	// means obs.Default. Set before Serve.
	Obs *obs.Registry

	mu        sync.Mutex
	providers []string          // placement-eligible (active), sorted
	draining  []string          // decommissioning, still readable, sorted
	load      map[string]uint64 // chunks assigned
	rr        int
	epoch     uint64
}

func (pm *ProviderManager) registry() *obs.Registry {
	if pm.Obs != nil {
		return pm.Obs
	}
	return obs.Default
}

// NewProviderManager returns an empty provider manager.
func NewProviderManager() *ProviderManager {
	return &ProviderManager{load: make(map[string]uint64)}
}

// Serve binds the provider manager to addr on n.
func (pm *ProviderManager) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, pm.handle)
}

// placeLocked returns replication distinct provider addresses for one chunk.
func (pm *ProviderManager) placeLocked(replication int) ([]string, error) {
	if len(pm.providers) == 0 {
		return nil, errors.New("blobseer: no data providers registered")
	}
	if replication > len(pm.providers) {
		replication = len(pm.providers)
	}
	out := make([]string, 0, replication)
	for len(out) < replication {
		addr := pm.providers[pm.rr%len(pm.providers)]
		pm.rr++
		out = append(out, addr)
		pm.load[addr]++
	}
	return out, nil
}

func (pm *ProviderManager) handle(ctx context.Context, req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := int(r.U8())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if resp, handled, err := introspectionReply(pm.registry(), op, r); handled {
		return resp, err
	}
	_, sp := handlerSpan(ctx, pm.registry(), op)
	defer sp.End()
	pm.mu.Lock()
	defer pm.mu.Unlock()
	w := wire.NewBuffer(64)
	switch op {
	case opRegister:
		addr := r.String()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		for _, p := range pm.providers {
			if p == addr {
				return w.Bytes(), nil // already registered
			}
		}
		// A draining provider that re-joins is reactivated.
		pm.draining = removeAddr(pm.draining, addr)
		pm.providers = append(pm.providers, addr)
		sort.Strings(pm.providers) // deterministic placement order
		pm.epoch++

	case opPlacement:
		nChunks := r.Uvarint()
		replication := int(r.Uvarint())
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		if replication < 1 {
			replication = 1
		}
		if nChunks > 1<<24 {
			return nil, fmt.Errorf("blobseer: placement request for %d chunks is implausible", nChunks)
		}
		w.PutUvarint(nChunks)
		for i := uint64(0); i < nChunks; i++ {
			addrs, err := pm.placeLocked(replication)
			if err != nil {
				return nil, err
			}
			w.PutUvarint(uint64(len(addrs)))
			for _, a := range addrs {
				w.PutString(a)
			}
		}

	case opProviders:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		w.PutUvarint(uint64(len(pm.providers)))
		for _, p := range pm.providers {
			w.PutString(p)
		}

	case opUnregister:
		// A fail-stopped node's provider leaves the placement rotation;
		// chunks it held survive only through replicas.
		addr := r.String()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		pm.providers = removeAddr(pm.providers, addr)
		pm.draining = removeAddr(pm.draining, addr)
		delete(pm.load, addr)
		pm.epoch++

	case opMembership:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		w.PutU64(pm.epoch)
		w.PutUvarint(uint64(len(pm.providers) + len(pm.draining)))
		for _, p := range pm.providers {
			w.PutString(p)
			w.PutU8(uint8(ProviderActive))
		}
		for _, p := range pm.draining {
			w.PutString(p)
			w.PutU8(uint8(ProviderDraining))
		}

	case opDrain:
		addr := r.String()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		if slices.Contains(pm.draining, addr) {
			break // already draining
		}
		if !slices.Contains(pm.providers, addr) {
			return nil, fmt.Errorf("blobseer: drain of unknown provider %s", addr)
		}
		pm.providers = removeAddr(pm.providers, addr)
		pm.draining = append(pm.draining, addr)
		sort.Strings(pm.draining)
		pm.epoch++

	case opRetireProvider:
		addr := r.String()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		if slices.Contains(pm.providers, addr) {
			return nil, fmt.Errorf("blobseer: provider %s must drain before retiring", addr)
		}
		if !slices.Contains(pm.draining, addr) {
			break // already gone: retiring twice is idempotent
		}
		pm.draining = removeAddr(pm.draining, addr)
		delete(pm.load, addr)
		pm.epoch++

	default:
		return nil, fmt.Errorf("blobseer: provider manager: unknown op %d", op)
	}
	return w.Bytes(), nil
}

// removeAddr returns list without addr, preserving order.
func removeAddr(list []string, addr string) []string {
	for i, p := range list {
		if p == addr {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// DataProvider serves chunk storage over the network, backed by any
// chunkstore.Store.
type DataProvider struct {
	// Obs is the registry handler spans and span stores record into; nil
	// means obs.Default. Set before Serve.
	Obs *obs.Registry

	store chunkstore.Store
}

func (dp *DataProvider) registry() *obs.Registry {
	if dp.Obs != nil {
		return dp.Obs
	}
	return obs.Default
}

// putApplyParallelism bounds the concurrent store writes one put-batch frame
// issues. With several frames in flight the store sees frames×this many
// concurrent puts — enough for a group-commit engine to form multi-MiB
// batches without unbounded goroutine fan-out per request.
const putApplyParallelism = 16

// NewDataProvider wraps store as a network service.
func NewDataProvider(store chunkstore.Store) *DataProvider {
	return &DataProvider{store: store}
}

// Store exposes the underlying chunk store (local inspection and tests).
func (dp *DataProvider) Store() chunkstore.Store { return dp.store }

// Serve binds the data provider to addr on n.
func (dp *DataProvider) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, dp.handle)
}

func (dp *DataProvider) handle(ctx context.Context, req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := int(r.U8())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if resp, handled, err := introspectionReply(dp.registry(), op, r); handled {
		return resp, err
	}
	_, sp := handlerSpan(ctx, dp.registry(), op)
	defer sp.End()
	w := wire.NewBuffer(64)
	switch op {
	case opChunkPut:
		key := getChunkKey(r)
		data := r.Bytes()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		if err := dp.store.Put(key, data); err != nil {
			return nil, err
		}

	case opChunkGet:
		key := getChunkKey(r)
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		data, err := dp.store.Get(key)
		if err != nil {
			return nil, err
		}
		w.PutBytes(data)

	case opChunkDelete:
		key := getChunkKey(r)
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		if err := dp.store.Delete(key); err != nil {
			return nil, err
		}

	case opChunkHas:
		key := getChunkKey(r)
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		w.PutBool(dp.store.Has(key))

	case opChunkList:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		keys := listChunks(dp.store)
		w.PutUvarint(uint64(len(keys)))
		for _, k := range keys {
			putChunkKey(w, k)
		}

	case opChunkUsage:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		w.PutU64(uint64(dp.store.UsedBytes()))
		w.PutU64(uint64(dp.store.Len()))

	case opChunkPutBatch:
		n, err := batchCount(op, r)
		if err != nil {
			return nil, err
		}
		// Decode the whole frame before applying anything: a truncated or
		// corrupt batch stores no chunks.
		keys := make([]chunkstore.Key, 0, n)
		bodies := make([][]byte, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			keys = append(keys, getChunkKey(r))
			bodies = append(bodies, r.Bytes())
		}
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		// All-or-nothing application: the client treats a failed frame as
		// nothing-landed and re-places every slot elsewhere, so chunks
		// stored before a mid-frame backend failure would be orphans no
		// leaf ever references — unwind them. Only keys this frame actually
		// inserted are deleted: a re-delivered replica of a chunk an
		// earlier commit published must survive the unwind. The puts go in
		// concurrently (keys are independent): a group-committing backend
		// folds them into a few large appends, and the file-per-chunk store
		// overlaps its per-file fsyncs in the journal.
		existed := make([]bool, len(keys))
		perr := make([]error, len(keys))
		runLimited(context.Background(), putApplyParallelism, len(keys), func(_ context.Context, i int) error {
			existed[i] = dp.store.Has(keys[i])
			perr[i] = dp.store.Put(keys[i], bodies[i])
			return nil // collect every item's outcome; the unwind needs the full map
		})
		for i := range keys {
			if perr[i] == nil {
				continue
			}
			for j := range keys {
				if perr[j] == nil && !existed[j] {
					dp.store.Delete(keys[j]) //nolint:errcheck // best effort unwind
				}
			}
			return nil, perr[i]
		}

	case opChunkGetBatch:
		n, err := batchCount(op, r)
		if err != nil {
			return nil, err
		}
		keys := make([]chunkstore.Key, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			keys = append(keys, getChunkKey(r))
		}
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		for _, k := range keys {
			data, err := dp.store.Get(k)
			switch {
			case errors.Is(err, chunkstore.ErrNotFound):
				// Per-item absence: the reader fails over this chunk only.
				w.PutBool(false)
			case err != nil:
				// A real backend failure (unreadable file, I/O error) must
				// not masquerade as absence: fail the frame so the reader
				// records the true cause while failing over.
				return nil, err
			default:
				w.PutBool(true)
				w.PutBytes(data)
			}
		}

	case opCasRef:
		fp := getFingerprint(r)
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		cs, err := dp.casStore()
		if err != nil {
			return nil, err
		}
		w.PutBool(cs.Ref(fp))

	case opCasRefBatch:
		n, err := batchCount(op, r)
		if err != nil {
			return nil, err
		}
		fps := make([]cas.Fingerprint, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			fps = append(fps, getFingerprint(r))
		}
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		cs, err := dp.casStore()
		if err != nil {
			return nil, err
		}
		for _, fp := range fps {
			w.PutBool(cs.Ref(fp))
		}

	case opCasPutBatch:
		n, err := batchCount(op, r)
		if err != nil {
			return nil, err
		}
		fps := make([]cas.Fingerprint, 0, n)
		bodies := make([][]byte, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			fps = append(fps, getFingerprint(r))
			bodies = append(bodies, r.Bytes())
		}
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		cs, err := dp.casStore()
		if err != nil {
			return nil, err
		}
		// The frame is all-or-nothing: the client treats a failed frame as
		// "no references taken" and fails the chunks over to other
		// providers, so on any mid-frame failure — a body that does not
		// hash to its claimed fingerprint (PutContent validates) or a
		// backend error — the references already taken by the other items
		// are returned before erroring out. Application is concurrent, like
		// the plain put batch: the striped CAS index admits it and a
		// group-committing backend batches the appends; the dup flags are
		// written back in frame order afterwards.
		dups := make([]bool, len(fps))
		cerr := make([]error, len(fps))
		runLimited(context.Background(), putApplyParallelism, len(fps), func(_ context.Context, i int) error {
			dups[i], cerr[i] = cs.PutContent(fps[i], bodies[i])
			return nil // collect every item's outcome; the unwind needs the full map
		})
		for i := range fps {
			if cerr[i] == nil {
				continue
			}
			for j := range fps {
				if cerr[j] == nil {
					cs.Release(fps[j]) //nolint:errcheck // best effort unwind
				}
			}
			return nil, cerr[i]
		}
		for _, dup := range dups {
			w.PutBool(dup)
		}

	case opCasPut:
		fp := getFingerprint(r)
		data := r.Bytes()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		cs, err := dp.casStore()
		if err != nil {
			return nil, err
		}
		dup, err := cs.PutContent(fp, data)
		if err != nil {
			return nil, err
		}
		w.PutBool(dup)

	case opCasRelease:
		fp := getFingerprint(r)
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		cs, err := dp.casStore()
		if err != nil {
			return nil, err
		}
		remaining, reclaimed, err := cs.Release(fp)
		if err != nil {
			return nil, err
		}
		w.PutU64(remaining)
		w.PutU64(reclaimed)

	case opCasReleaseN:
		fp := getFingerprint(r)
		n := r.Uvarint()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		if n > maxBatchItems {
			return nil, fmt.Errorf("blobseer: op %d: implausible release of %d references", op, n)
		}
		cs, err := dp.casStore()
		if err != nil {
			return nil, err
		}
		var remaining, totalReclaimed uint64
		for i := uint64(0); i < n; i++ {
			rem, reclaimed, err := cs.Release(fp)
			if err != nil {
				return nil, err
			}
			remaining = rem
			totalReclaimed += reclaimed
			if rem == 0 && reclaimed == 0 {
				break // fingerprint unknown (or pinned floor): further releases are no-ops
			}
		}
		w.PutU64(remaining)
		w.PutU64(totalReclaimed)

	case opCasStats:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		cs, err := dp.casStore()
		if err != nil {
			return nil, err
		}
		putCasStats(w, cs.Stats())

	case opStoreStats:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		putEngineStats(w, chunkstore.StatsOf(dp.store))

	case opStoreCompact:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		c, ok := dp.store.(chunkstore.Compactor)
		w.PutBool(ok)
		if ok {
			res, err := c.CompactNow()
			if err != nil {
				return nil, err
			}
			w.PutUvarint(uint64(res.Segments))
			w.PutUvarint(uint64(res.Relocated))
			w.PutU64(res.ReclaimedBytes)
		}

	default:
		return nil, fmt.Errorf("blobseer: data provider: unknown op %d", op)
	}
	return w.Bytes(), nil
}

// casStore returns the provider's content-addressed store, or an error for a
// provider running a plain chunk store.
func (dp *DataProvider) casStore() (*cas.Store, error) {
	if cs, ok := dp.store.(*cas.Store); ok {
		return cs, nil
	}
	return nil, errors.New("blobseer: data provider is not content-addressed")
}

// chunkLister is implemented by stores that can enumerate their keys.
type chunkLister interface{ Keys() []chunkstore.Key }

func listChunks(s chunkstore.Store) []chunkstore.Key {
	if l, ok := s.(chunkLister); ok {
		return l.Keys()
	}
	return nil
}

// MetadataProvider stores segment-tree nodes. The client shards node keys
// across several metadata providers by hash, which is what lets 120
// concurrent committers avoid a single metadata bottleneck.
type MetadataProvider struct {
	// Obs is the registry handler spans and span stores record into; nil
	// means obs.Default. Set before Serve.
	Obs *obs.Registry

	mu    sync.RWMutex
	nodes map[meta.NodeKey][]byte
	bytes int64
}

func (mp *MetadataProvider) registry() *obs.Registry {
	if mp.Obs != nil {
		return mp.Obs
	}
	return obs.Default
}

// NewMetadataProvider returns an empty metadata provider.
func NewMetadataProvider() *MetadataProvider {
	return &MetadataProvider{nodes: make(map[meta.NodeKey][]byte)}
}

// Serve binds the metadata provider to addr on n.
func (mp *MetadataProvider) Serve(n transport.Network, addr string) (transport.Server, error) {
	return n.Listen(addr, mp.handle)
}

func (mp *MetadataProvider) handle(ctx context.Context, req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := int(r.U8())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if resp, handled, err := introspectionReply(mp.registry(), op, r); handled {
		return resp, err
	}
	_, sp := handlerSpan(ctx, mp.registry(), op)
	defer sp.End()
	w := wire.NewBuffer(64)
	switch op {
	case opNodePut:
		key := getNodeKey(r)
		val := r.BytesCopy()
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		mp.mu.Lock()
		if _, exists := mp.nodes[key]; !exists {
			mp.nodes[key] = val
			mp.bytes += int64(len(val))
		}
		mp.mu.Unlock()

	case opNodeGet:
		key := getNodeKey(r)
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		mp.mu.RLock()
		val, ok := mp.nodes[key]
		mp.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %+v", meta.ErrNodeNotFound, key)
		}
		w.PutBytes(val)

	case opNodeList:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		mp.mu.RLock()
		keys := make([]meta.NodeKey, 0, len(mp.nodes))
		for k := range mp.nodes {
			keys = append(keys, k)
		}
		mp.mu.RUnlock()
		w.PutUvarint(uint64(len(keys)))
		for _, k := range keys {
			putNodeKey(w, k)
		}

	case opNodeDelete:
		key := getNodeKey(r)
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		mp.mu.Lock()
		if val, ok := mp.nodes[key]; ok {
			mp.bytes -= int64(len(val))
			delete(mp.nodes, key)
		}
		mp.mu.Unlock()

	case opNodeUsage:
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		mp.mu.RLock()
		w.PutU64(uint64(mp.bytes))
		w.PutU64(uint64(len(mp.nodes)))
		mp.mu.RUnlock()

	case opNodePutBatch:
		n, err := batchCount(op, r)
		if err != nil {
			return nil, err
		}
		keys := make([]meta.NodeKey, 0, n)
		vals := make([][]byte, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			keys = append(keys, getNodeKey(r))
			vals = append(vals, r.BytesCopy())
		}
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		mp.mu.Lock()
		for i, key := range keys {
			if _, exists := mp.nodes[key]; !exists {
				mp.nodes[key] = vals[i]
				mp.bytes += int64(len(vals[i]))
			}
		}
		mp.mu.Unlock()

	case opNodeGetBatch:
		n, err := batchCount(op, r)
		if err != nil {
			return nil, err
		}
		keys := make([]meta.NodeKey, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			keys = append(keys, getNodeKey(r))
		}
		if err := reqErr(op, r); err != nil {
			return nil, err
		}
		mp.mu.RLock()
		for _, key := range keys {
			val, ok := mp.nodes[key]
			w.PutBool(ok)
			if ok {
				w.PutBytes(val)
			}
		}
		mp.mu.RUnlock()

	default:
		return nil, fmt.Errorf("blobseer: metadata provider: unknown op %d", op)
	}
	return w.Bytes(), nil
}
