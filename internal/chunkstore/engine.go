package chunkstore

// EngineField is one named statistic of a storage engine.
type EngineField struct {
	Name  string
	Value uint64
}

// EngineStats describes a backend beyond the Store interface: which engine
// it is and its engine-specific counters (segment counts, fsyncs, dead
// bytes, ...). The field set is engine-defined; consumers render it as an
// ordered name/value list (blobcr-ctl store) or pick fields by name (the
// disklog bench reads "fsyncs" and "puts" to show group commit working).
type EngineStats struct {
	Backend string
	Fields  []EngineField
}

// Field returns the value of a named field, or 0 if the engine does not
// report it.
func (s EngineStats) Field(name string) uint64 {
	for _, f := range s.Fields {
		if f.Name == name {
			return f.Value
		}
	}
	return 0
}

// EngineStatser is implemented by backends that report engine statistics.
type EngineStatser interface {
	EngineStats() EngineStats
}

// StatsOf returns a store's engine stats, synthesizing a minimal set for
// backends that predate the interface.
func StatsOf(s Store) EngineStats {
	if es, ok := s.(EngineStatser); ok {
		return es.EngineStats()
	}
	return EngineStats{Backend: "unknown", Fields: []EngineField{
		{Name: "chunks", Value: uint64(s.Len())},
		{Name: "logical_bytes", Value: uint64(s.UsedBytes())},
	}}
}

// CompactResult reports one compaction pass.
type CompactResult struct {
	Segments       int    // segments rewritten and removed
	Relocated      int    // live records moved to the active segment
	ReclaimedBytes uint64 // net disk bytes freed
}

// Add accumulates other into r (aggregation across providers).
func (r *CompactResult) Add(o CompactResult) {
	r.Segments += o.Segments
	r.Relocated += o.Relocated
	r.ReclaimedBytes += o.ReclaimedBytes
}

// Compactor is implemented by log-structured backends whose dead bytes are
// reclaimed by an explicit pass. The repair scrubber folds CompactNow into
// its cadence; for engines with nothing to compact it is absent.
type Compactor interface {
	CompactNow() (CompactResult, error)
}
