package chunkstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestDiskDurablePutSurvivesReopen is the regression test for the fsync fix:
// a Put that returned nil must be readable from a fresh open of the same
// directory (the temp file is fsynced before the rename and the directory
// entry after it, so an acked chunk is on disk, not just in the page cache).
func TestDiskDurablePutSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	bodies := make(map[Key][]byte)
	for i := uint64(0); i < 20; i++ {
		k := Key{Blob: 9, ID: i}
		body := bytes.Repeat([]byte{byte(i + 1)}, int(i)*31)
		if err := s1.Put(k, body); err != nil {
			t.Fatalf("Put %v: %v", k, err)
		}
		bodies[k] = body
	}
	es := s1.EngineStats()
	if es.Field("fsyncs") == 0 {
		t.Fatal("durable Put performed no fsyncs")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(bodies) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(bodies))
	}
	for k, body := range bodies {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("reopened Get %v: %v", k, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("reopened chunk %v corrupted", k)
		}
	}
}

// TestDiskConcurrentMixedOps is the regression test for the lock fix: puts,
// gets and deletes on distinct keys run concurrently (the store-wide mutex
// is no longer held across file I/O). Run under -race.
func TestDiskConcurrentMixedOps(t *testing.T) {
	s, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const (
		workers = 16
		perW    = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := Key{Blob: uint64(w), ID: uint64(i)}
				body := []byte(fmt.Sprintf("w%d-i%d-%s", w, i, bytes.Repeat([]byte{byte(w)}, 256)))
				if err := s.Put(k, body); err != nil {
					t.Errorf("Put %v: %v", k, err)
					return
				}
				got, err := s.Get(k)
				if err != nil || !bytes.Equal(got, body) {
					t.Errorf("Get %v: %v", k, err)
					return
				}
				if i%2 == 0 {
					if err := s.Delete(k); err != nil {
						t.Errorf("Delete %v: %v", k, err)
						return
					}
					if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
						t.Errorf("Get after Delete %v: %v", k, err)
						return
					}
				}
			}
		}(w)
	}
	// Readers sweeping the whole index while writers churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for _, k := range s.Keys() {
				s.Get(k) //nolint:errcheck // concurrent deletes make misses fine
			}
			s.UsedBytes()
			s.Len()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	want := workers * perW / 2
	if s.Len() != want {
		t.Fatalf("final Len = %d, want %d", s.Len(), want)
	}
}

// TestDiskConcurrentSameKey: identical concurrent puts of one key must all
// succeed (idempotent re-delivery) and leave exactly one durable copy.
func TestDiskConcurrentSameKey(t *testing.T) {
	s, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := Key{Blob: 1, ID: 1}
	body := bytes.Repeat([]byte("dup"), 100)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(k, body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent put %d: %v", i, err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	got, err := s.Get(k)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("readback: %v", err)
	}
}

func TestStatsOfFallback(t *testing.T) {
	m := NewMem()
	if err := m.Put(Key{1, 1}, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	es := StatsOf(m)
	if es.Backend != "mem" {
		t.Fatalf("Backend = %q", es.Backend)
	}
	if es.Field("chunks") != 1 || es.Field("logical_bytes") != 3 {
		t.Fatalf("fields = %+v", es.Fields)
	}
	if es.Field("no_such_field") != 0 {
		t.Fatal("missing field not zero")
	}
}

func TestCompactResultAdd(t *testing.T) {
	var r CompactResult
	r.Add(CompactResult{Segments: 1, Relocated: 2, ReclaimedBytes: 30})
	r.Add(CompactResult{Segments: 3, Relocated: 4, ReclaimedBytes: 50})
	if r.Segments != 4 || r.Relocated != 6 || r.ReclaimedBytes != 80 {
		t.Fatalf("accumulated = %+v", r)
	}
}
