package chunkstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// stores returns one fresh instance of every Store implementation.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "disk": disk}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			k := Key{Blob: 7, ID: 42}
			data := []byte("chunk payload")
			if err := s.Put(k, data); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := s.Get(k)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Errorf("Get = %q, want %q", got, data)
			}
			if !s.Has(k) {
				t.Error("Has = false after Put")
			}
			if s.Len() != 1 {
				t.Errorf("Len = %d, want 1", s.Len())
			}
			if s.UsedBytes() != int64(len(data)) {
				t.Errorf("UsedBytes = %d, want %d", s.UsedBytes(), len(data))
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get(Key{1, 1}); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get missing = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestImmutability(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			k := Key{1, 1}
			if err := s.Put(k, []byte("aaa")); err != nil {
				t.Fatal(err)
			}
			// Identical re-put (replica re-delivery) is fine.
			if err := s.Put(k, []byte("aaa")); err != nil {
				t.Errorf("idempotent re-put failed: %v", err)
			}
			// Different content is rejected.
			if err := s.Put(k, []byte("bbb")); !errors.Is(err, ErrExists) {
				t.Errorf("overwrite = %v, want ErrExists", err)
			}
			got, _ := s.Get(k)
			if !bytes.Equal(got, []byte("aaa")) {
				t.Errorf("content changed to %q", got)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			k := Key{3, 9}
			if err := s.Put(k, []byte("xyz")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(k); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if s.Has(k) {
				t.Error("Has = true after Delete")
			}
			if s.UsedBytes() != 0 || s.Len() != 0 {
				t.Errorf("after delete: bytes=%d len=%d", s.UsedBytes(), s.Len())
			}
			if err := s.Delete(k); !errors.Is(err, ErrNotFound) {
				t.Errorf("double delete = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestEmptyChunk(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			k := Key{5, 5}
			if err := s.Put(k, nil); err != nil {
				t.Fatalf("Put empty: %v", err)
			}
			got, err := s.Get(k)
			if err != nil {
				t.Fatalf("Get empty: %v", err)
			}
			if len(got) != 0 {
				t.Errorf("Get empty = %q", got)
			}
		})
	}
}

func TestMemPutCopies(t *testing.T) {
	s := NewMem()
	data := []byte{1, 2, 3}
	if err := s.Put(Key{1, 1}, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	got, _ := s.Get(Key{1, 1})
	if got[0] != 1 {
		t.Error("Put did not copy caller's buffer")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Blob: 0xAB, ID: 0xCD}
	want := "00000000000000ab-00000000000000cd"
	if k.String() != want {
		t.Errorf("String = %q, want %q", k.String(), want)
	}
}

func TestDiskReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		if err := s1.Put(Key{Blob: 1, ID: i}, []byte{byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Errorf("reopened Len = %d, want 5", s2.Len())
	}
	if s2.UsedBytes() != 10 {
		t.Errorf("reopened UsedBytes = %d, want 10", s2.UsedBytes())
	}
	got, err := s2.Get(Key{Blob: 1, ID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{3, 3}) {
		t.Errorf("reopened Get = %v", got)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			const n = 50
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					k := Key{Blob: 1, ID: uint64(i)}
					data := []byte(fmt.Sprintf("payload-%d", i))
					if err := s.Put(k, data); err != nil {
						t.Errorf("Put %d: %v", i, err)
						return
					}
					got, err := s.Get(k)
					if err != nil {
						t.Errorf("Get %d: %v", i, err)
						return
					}
					if !bytes.Equal(got, data) {
						t.Errorf("Get %d = %q", i, got)
					}
				}(i)
			}
			wg.Wait()
			if s.Len() != n {
				t.Errorf("Len = %d, want %d", s.Len(), n)
			}
		})
	}
}

func TestQuickRoundTripMem(t *testing.T) {
	s := NewMem()
	var next uint64
	f := func(blob uint64, data []byte) bool {
		next++
		k := Key{Blob: blob, ID: next}
		if err := s.Put(k, data); err != nil {
			return false
		}
		got, err := s.Get(k)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUsedBytesAccounting(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var want int64
			for i := 0; i < 20; i++ {
				data := make([]byte, i*13)
				if err := s.Put(Key{Blob: 2, ID: uint64(i)}, data); err != nil {
					t.Fatal(err)
				}
				want += int64(len(data))
			}
			if s.UsedBytes() != want {
				t.Errorf("UsedBytes = %d, want %d", s.UsedBytes(), want)
			}
			// Delete half and re-check.
			for i := 0; i < 10; i++ {
				if err := s.Delete(Key{Blob: 2, ID: uint64(i)}); err != nil {
					t.Fatal(err)
				}
				want -= int64(i * 13)
			}
			if s.UsedBytes() != want {
				t.Errorf("after deletes UsedBytes = %d, want %d", s.UsedBytes(), want)
			}
		})
	}
}
