// Package chunkstore implements the chunk storage engine used by BlobSeer
// data providers.
//
// Chunks are immutable, fixed-size pieces of striped BLOB data, identified by
// a (blob, id) key. Two backends are provided: an in-memory store (tests,
// examples, simulation) and an on-disk store (the blobseerd daemon). Both are
// safe for concurrent use.
package chunkstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key identifies a chunk. Blob is the BLOB identifier; ID is unique within
// the blob (assigned by the writer from a version-manager ticket), so a chunk
// written by one writer is never overwritten by another.
type Key struct {
	Blob uint64
	ID   uint64
}

// String renders the key as blob/id, used for file names in DiskStore.
func (k Key) String() string { return fmt.Sprintf("%016x-%016x", k.Blob, k.ID) }

// ErrNotFound is returned by Get and Delete for missing chunks.
var ErrNotFound = errors.New("chunkstore: chunk not found")

// ErrExists is returned by Put when the key is already stored with different
// content; chunks are immutable.
var ErrExists = errors.New("chunkstore: chunk already exists")

// Store is the chunk storage engine interface.
type Store interface {
	// Put stores an immutable chunk. Re-putting the same key is an error
	// (chunks are never overwritten); replicated re-delivery of identical
	// bytes is tolerated and returns nil.
	Put(k Key, data []byte) error
	// Get returns the chunk contents. The caller must not modify the
	// returned slice.
	Get(k Key) ([]byte, error)
	// Has reports whether the chunk is stored.
	Has(k Key) bool
	// Delete removes the chunk (used by garbage collection).
	Delete(k Key) error
	// Len returns the number of stored chunks.
	Len() int
	// UsedBytes returns the total payload bytes stored.
	UsedBytes() int64
}

// --- In-memory store ---

// Mem is an in-memory Store.
type Mem struct {
	mu    sync.RWMutex
	m     map[Key][]byte
	bytes int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[Key][]byte)} }

// Put implements Store. The data is copied.
func (s *Mem) Put(k Key, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[k]; ok {
		if bytesEqual(old, data) {
			return nil // idempotent replica re-delivery
		}
		return fmt.Errorf("%w: %v", ErrExists, k)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.m[k] = cp
	s.bytes += int64(len(cp))
	return nil
}

// Get implements Store.
func (s *Mem) Get(k Key) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[k]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, k)
	}
	return data, nil
}

// Has implements Store.
func (s *Mem) Has(k Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.m[k]
	return ok
}

// Delete implements Store.
func (s *Mem) Delete(k Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[k]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, k)
	}
	s.bytes -= int64(len(data))
	delete(s.m, k)
	return nil
}

// Len implements Store.
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// UsedBytes implements Store.
func (s *Mem) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Keys returns all stored chunk keys (used by garbage collection sweeps).
func (s *Mem) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Key, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- On-disk store ---

// diskStripes is the per-key lock table width of Disk: wide enough that 16
// concurrent streams rarely collide, small enough to embed in the struct.
const diskStripes = 64

// Disk is a Store backed by one file per chunk under a directory. It keeps
// an index of sizes in memory; the contents live on disk.
//
// mu guards only the in-memory index and is never held across file I/O;
// per-key operations serialize on a striped lock instead, so parallel
// striped uploads from concurrent committers proceed independently. Put is
// crash-durable: the temp file is fsynced before the rename and the
// directory after it, so an acked chunk survives power loss.
type Disk struct {
	dir  string
	dirf *os.File

	mu    sync.RWMutex
	sizes map[Key]int64
	bytes int64

	stripes [diskStripes]sync.Mutex

	puts, gets, deletes, fsyncs atomic.Uint64
}

// NewDisk opens (creating if needed) an on-disk store rooted at dir and
// indexes any chunks already present.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunkstore: create dir: %w", err)
	}
	dirf, err := os.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("chunkstore: open dir: %w", err)
	}
	s := &Disk{dir: dir, dirf: dirf, sizes: make(map[Key]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		dirf.Close()
		return nil, fmt.Errorf("chunkstore: scan dir: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		var k Key
		if _, err := fmt.Sscanf(ent.Name(), "%016x-%016x", &k.Blob, &k.ID); err != nil {
			continue // not a chunk file
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		s.sizes[k] = info.Size()
		s.bytes += info.Size()
	}
	return s, nil
}

func (s *Disk) path(k Key) string { return filepath.Join(s.dir, k.String()) }

// stripe returns the per-key I/O lock for k.
func (s *Disk) stripe(k Key) *sync.Mutex {
	h := (k.Blob ^ k.ID) * 0x9e3779b97f4a7c15 // Fibonacci mixing
	return &s.stripes[(h>>32)%diskStripes]
}

// Put implements Store. The chunk is written to a temp file, fsynced, and
// renamed, with a directory fsync sealing the rename: a crash never leaves
// a partial chunk under its final name, and a chunk acked to the committer
// is on disk. Only same-key puts serialize; the store-wide lock protects
// just the index.
func (s *Disk) Put(k Key, data []byte) error {
	s.puts.Add(1)
	st := s.stripe(k)
	st.Lock()
	defer st.Unlock()
	s.mu.RLock()
	sz, ok := s.sizes[k]
	s.mu.RUnlock()
	if ok {
		if sz == int64(len(data)) {
			existing, err := os.ReadFile(s.path(k))
			if err == nil && bytesEqual(existing, data) {
				return nil
			}
		}
		return fmt.Errorf("%w: %v", ErrExists, k)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("chunkstore: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("chunkstore: write chunk: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("chunkstore: sync chunk: %w", err)
	}
	s.fsyncs.Add(1)
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("chunkstore: close chunk: %w", err)
	}
	if err := os.Rename(tmpName, s.path(k)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("chunkstore: commit chunk: %w", err)
	}
	if err := s.dirf.Sync(); err != nil {
		return fmt.Errorf("chunkstore: sync dir: %w", err)
	}
	s.fsyncs.Add(1)
	s.mu.Lock()
	s.sizes[k] = int64(len(data))
	s.bytes += int64(len(data))
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *Disk) Get(k Key) ([]byte, error) {
	s.gets.Add(1)
	s.mu.RLock()
	_, ok := s.sizes[k]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, k)
	}
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		if os.IsNotExist(err) {
			// Deleted between the index check and the read.
			return nil, fmt.Errorf("%w: %v", ErrNotFound, k)
		}
		return nil, fmt.Errorf("chunkstore: read chunk %v: %w", k, err)
	}
	return data, nil
}

// Has implements Store.
func (s *Disk) Has(k Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.sizes[k]
	return ok
}

// Delete implements Store.
func (s *Disk) Delete(k Key) error {
	s.deletes.Add(1)
	st := s.stripe(k)
	st.Lock()
	defer st.Unlock()
	s.mu.RLock()
	sz, ok := s.sizes[k]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, k)
	}
	if err := os.Remove(s.path(k)); err != nil {
		return fmt.Errorf("chunkstore: delete chunk %v: %w", k, err)
	}
	s.mu.Lock()
	delete(s.sizes, k)
	s.bytes -= sz
	s.mu.Unlock()
	return nil
}

// Len implements Store.
func (s *Disk) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sizes)
}

// UsedBytes implements Store.
func (s *Disk) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Keys returns all stored chunk keys (used by garbage collection sweeps).
func (s *Disk) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Key, 0, len(s.sizes))
	for k := range s.sizes {
		out = append(out, k)
	}
	return out
}

// Close releases the directory handle used for rename durability.
func (s *Disk) Close() error { return s.dirf.Close() }

// EngineStats implements EngineStatser.
func (s *Disk) EngineStats() EngineStats {
	s.mu.RLock()
	chunks := len(s.sizes)
	bytes := s.bytes
	s.mu.RUnlock()
	return EngineStats{Backend: "files", Fields: []EngineField{
		{Name: "chunks", Value: uint64(chunks)},
		{Name: "logical_bytes", Value: uint64(bytes)},
		{Name: "disk_bytes", Value: uint64(bytes)},
		{Name: "puts", Value: s.puts.Load()},
		{Name: "gets", Value: s.gets.Load()},
		{Name: "deletes", Value: s.deletes.Load()},
		{Name: "fsyncs", Value: s.fsyncs.Load()},
	}}
}

// EngineStats implements EngineStatser.
func (s *Mem) EngineStats() EngineStats {
	s.mu.RLock()
	chunks := len(s.m)
	bytes := s.bytes
	s.mu.RUnlock()
	return EngineStats{Backend: "mem", Fields: []EngineField{
		{Name: "chunks", Value: uint64(chunks)},
		{Name: "logical_bytes", Value: uint64(bytes)},
	}}
}

// Interface conformance checks.
var (
	_ Store         = (*Mem)(nil)
	_ Store         = (*Disk)(nil)
	_ EngineStatser = (*Mem)(nil)
	_ EngineStatser = (*Disk)(nil)
)
