// Package cloud models the IaaS middleware of Figure 1: compute nodes
// hosting VM instances, a checkpoint repository aggregated from the nodes'
// local disks (BlobSeer data providers co-located with compute nodes), a
// checkpointing proxy per node, multi-deployment of instances from a base
// image, checkpoint bookkeeping, fail-stop failure injection and restart.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"blobcr/internal/blobseer"
	"blobcr/internal/mirror"
	"blobcr/internal/proxy"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

// Errors.
var (
	ErrNoHealthyNodes = errors.New("cloud: no healthy nodes available")
	ErrUnknownNode    = errors.New("cloud: unknown node")
	ErrNoSuchCkpt     = errors.New("cloud: unknown checkpoint")
	ErrIncompleteCkpt = errors.New("cloud: checkpoint does not cover all instances")
)

// Node is one compute node.
type Node struct {
	Name      string
	ProxyAddr string
	DataAddr  string // the co-located BlobSeer data provider

	proxy  *proxy.Proxy
	failed bool
}

// Failed reports whether the node has fail-stopped.
func (n *Node) Failed() bool { return n.failed }

// SnapshotRef names one VM's disk snapshot in the repository. It is an
// alias of blobseer.SnapshotRef — the one snapshot-identity type every
// layer shares.
type SnapshotRef = blobseer.SnapshotRef

// GlobalCheckpoint is a consistent set of per-instance snapshots.
type GlobalCheckpoint struct {
	ID        int
	Snapshots map[string]SnapshotRef // VM id -> snapshot
}

// Instance is one deployed VM with its node-side attachments.
type Instance struct {
	VMID   string
	Node   *Node
	VM     *vm.Instance
	Mirror *mirror.Module
	Proxy  *proxy.Client
}

// Deployment is one application's set of instances.
type Deployment struct {
	ID        string
	Base      SnapshotRef // the base image the deployment booted from
	Instances []*Instance

	mu          sync.Mutex
	checkpoints []GlobalCheckpoint
}

// Cloud is the middleware instance.
type Cloud struct {
	net         *transport.InProc
	repo        *blobseer.Deployment
	replication int
	dedup       bool

	mu      sync.Mutex
	nodes   []*Node
	rr      int // round-robin placement cursor
	rng     *rand.Rand
	nextDep int
}

// Config tunes a Cloud.
type Config struct {
	Nodes         int
	MetaProviders int
	Replication   int // chunk replica count for checkpoint data (default 1)
	Seed          int64
	// Dedup routes all repository writes through the content-addressed
	// chunk repository (internal/cas): identical chunk content — across
	// snapshots, across VMs — is stored once and never re-shipped, and
	// pruning old checkpoints reclaims space by reference counting instead
	// of a whole-repository sweep.
	Dedup bool
}

// New builds a cloud: an in-process network, a BlobSeer deployment with one
// data provider per compute node, and one checkpointing proxy per node.
func New(cfg Config) (*Cloud, error) {
	if cfg.Nodes < 1 {
		return nil, errors.New("cloud: need at least one node")
	}
	if cfg.MetaProviders < 1 {
		cfg.MetaProviders = 1
	}
	net := transport.NewInProc()
	repo, err := blobseer.Deploy(net, cfg.MetaProviders, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	c := &Cloud{net: net, repo: repo, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.Nodes; i++ {
		p := proxy.New()
		srv, err := p.Serve(net, "")
		if err != nil {
			repo.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, &Node{
			Name:      fmt.Sprintf("node-%03d", i),
			ProxyAddr: srv.Addr(),
			DataAddr:  repo.DataAddrs[i],
			proxy:     p,
		})
	}
	c.replication = cfg.Replication
	c.dedup = cfg.Dedup
	return c, nil
}

// Client returns a repository client (replication and dedup configured at
// New).
func (c *Cloud) Client() *blobseer.Client {
	cl := c.repo.Client()
	cl.Replication = c.replication
	cl.Dedup = c.dedup
	return cl
}

// Nodes returns the compute nodes.
func (c *Cloud) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.nodes...)
}

// Network returns the cloud's network (examples wire extra services on it).
func (c *Cloud) Network() *transport.InProc { return c.net }

// Repository exposes the BlobSeer deployment (space accounting, GC).
func (c *Cloud) Repository() *blobseer.Deployment { return c.repo }

// UploadBaseImage stores a raw disk image in the repository and returns its
// blob id and version — the user's "put image" operation.
func (c *Cloud) UploadBaseImage(ctx context.Context, raw []byte, chunkSize uint64) (SnapshotRef, error) {
	cl := c.Client()
	blob, err := cl.CreateBlob(ctx, chunkSize)
	if err != nil {
		return SnapshotRef{}, err
	}
	info, err := cl.WriteAt(ctx, blob, 0, raw)
	if err != nil {
		return SnapshotRef{}, err
	}
	return SnapshotRef{Blob: blob, Version: info.Version}, nil
}

// healthyNodesLocked returns non-failed nodes.
func (c *Cloud) healthyNodesLocked() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if !n.failed {
			out = append(out, n)
		}
	}
	return out
}

// placeLocked picks the next healthy node round-robin, preferring nodes not
// in the avoid set.
func (c *Cloud) placeLocked(avoid map[string]bool) (*Node, error) {
	healthy := c.healthyNodesLocked()
	if len(healthy) == 0 {
		return nil, ErrNoHealthyNodes
	}
	for i := 0; i < len(healthy); i++ {
		n := healthy[(c.rr+i)%len(healthy)]
		if !avoid[n.Name] {
			c.rr = (c.rr + i + 1) % len(healthy)
			return n, nil
		}
	}
	// All healthy nodes are in the avoid set; fall back to any.
	n := healthy[c.rr%len(healthy)]
	c.rr = (c.rr + 1) % len(healthy)
	return n, nil
}

// deployOne attaches, boots and registers one instance from a snapshot.
func (c *Cloud) deployOne(ctx context.Context, vmID string, node *Node, ref SnapshotRef, vmCfg vm.Config, resumeCkpt bool) (*Instance, error) {
	cl := c.Client()
	var mod *mirror.Module
	var err error
	if resumeCkpt {
		mod, err = mirror.AttachCheckpoint(ctx, cl, ref)
	} else {
		mod, err = mirror.Attach(ctx, cl, ref)
	}
	if err != nil {
		return nil, err
	}
	inst := vm.New(vmID, mod, vmCfg)
	if err := inst.Boot(); err != nil {
		return nil, err
	}
	token := fmt.Sprintf("tok-%08x", c.rng.Uint32())
	node.proxy.Register(vmID, token, inst, mod)
	return &Instance{
		VMID:   vmID,
		Node:   node,
		VM:     inst,
		Mirror: mod,
		Proxy:  &proxy.Client{Net: c.net, Addr: node.ProxyAddr, VMID: vmID, Token: token},
	}, nil
}

// Deploy boots n instances from the same base image (multi-deployment),
// placing them round-robin across healthy nodes.
func (c *Cloud) Deploy(ctx context.Context, n int, base SnapshotRef, vmCfg vm.Config) (*Deployment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextDep++
	dep := &Deployment{
		ID:   fmt.Sprintf("dep-%d", c.nextDep),
		Base: base,
	}
	for i := 0; i < n; i++ {
		node, err := c.placeLocked(nil)
		if err != nil {
			return nil, err
		}
		vmID := fmt.Sprintf("%s-vm-%03d", dep.ID, i)
		inst, err := c.deployOne(ctx, vmID, node, base, vmCfg, false)
		if err != nil {
			return nil, fmt.Errorf("cloud: deploy %s: %w", vmID, err)
		}
		dep.Instances = append(dep.Instances, inst)
	}
	return dep, nil
}

// RecordCheckpoint stores the mapping between a completed global checkpoint
// and the per-instance snapshots, as the middleware in Section 3.2 does. It
// fails if the snapshot set does not cover every instance (an incomplete
// checkpoint cannot be rolled back to).
func (c *Cloud) RecordCheckpoint(dep *Deployment, snaps map[string]SnapshotRef) (int, error) {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	for _, inst := range dep.Instances {
		if _, ok := snaps[inst.VMID]; !ok {
			return 0, fmt.Errorf("%w: missing %s", ErrIncompleteCkpt, inst.VMID)
		}
	}
	id := len(dep.checkpoints) + 1
	cp := GlobalCheckpoint{ID: id, Snapshots: make(map[string]SnapshotRef, len(snaps))}
	for k, v := range snaps {
		cp.Snapshots[k] = v
	}
	dep.checkpoints = append(dep.checkpoints, cp)
	return id, nil
}

// Checkpoints returns the recorded global checkpoints, oldest first.
func (dep *Deployment) Checkpoints() []GlobalCheckpoint {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	return append([]GlobalCheckpoint(nil), dep.checkpoints...)
}

// LatestCheckpoint returns the most recent recorded global checkpoint.
func (dep *Deployment) LatestCheckpoint() (GlobalCheckpoint, bool) {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	if len(dep.checkpoints) == 0 {
		return GlobalCheckpoint{}, false
	}
	return dep.checkpoints[len(dep.checkpoints)-1], true
}

// FailNode fail-stops a node: all hosted instances die and the co-located
// data provider becomes unreachable (its locally stored chunk replicas are
// lost to the deployment).
func (c *Cloud) FailNode(ctx context.Context, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.Name != name {
			continue
		}
		n.failed = true
		c.net.Partition(n.ProxyAddr)
		c.net.Partition(n.DataAddr)
		// Take the dead data provider out of the placement rotation so
		// future commits go to live providers only.
		if err := c.Client().UnregisterProvider(ctx, n.DataAddr); err != nil {
			return fmt.Errorf("cloud: deregister failed provider: %w", err)
		}
		return nil
	}
	return fmt.Errorf("%w: %s", ErrUnknownNode, name)
}

// KillDeploymentInstancesOn kills the instances of dep hosted on failed
// nodes (the middleware notices the fail-stop).
func (c *Cloud) KillDeploymentInstancesOn(dep *Deployment) []string {
	var dead []string
	for _, inst := range dep.Instances {
		if inst.Node.failed && inst.VM.State() != vm.Stopped {
			inst.VM.Kill()
			dead = append(dead, inst.VMID)
		}
	}
	return dead
}

// Restart re-deploys every instance of dep from the given recorded global
// checkpoint, each on a healthy node different from where it previously ran
// (the paper redeploys on different nodes to avoid cache effects; here it
// also sidesteps failed nodes). The old instances are discarded. The
// returned deployment reuses the same checkpoint history.
func (c *Cloud) Restart(ctx context.Context, dep *Deployment, ckptID int) (*Deployment, error) {
	dep.mu.Lock()
	var target *GlobalCheckpoint
	for i := range dep.checkpoints {
		if dep.checkpoints[i].ID == ckptID {
			target = &dep.checkpoints[i]
			break
		}
	}
	dep.mu.Unlock()
	if target == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchCkpt, ckptID)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	newDep := &Deployment{
		ID:          dep.ID,
		Base:        dep.Base,
		checkpoints: dep.Checkpoints(),
	}
	for _, old := range dep.Instances {
		// Tear down the previous incarnation.
		old.VM.Kill()
		old.Node.proxy.Unregister(old.VMID)

		ref := target.Snapshots[old.VMID]
		avoid := map[string]bool{old.Node.Name: true}
		node, err := c.placeLocked(avoid)
		if err != nil {
			return nil, err
		}
		inst, err := c.deployOne(ctx, old.VMID, node, ref, vm.Config{BlockSize: 512}, true)
		if err != nil {
			return nil, fmt.Errorf("cloud: restart %s: %w", old.VMID, err)
		}
		newDep.Instances = append(newDep.Instances, inst)
	}
	return newDep, nil
}

// Prune retires all snapshot versions older than the given recorded global
// checkpoint and garbage-collects the repository — the paper's future-work
// extension, kept as a middleware operation because only the middleware
// knows which snapshots checkpoints still reference.
func (c *Cloud) Prune(ctx context.Context, dep *Deployment, keepFromCkptID int) (blobseer.GCStats, error) {
	dep.mu.Lock()
	var keep *GlobalCheckpoint
	for i := range dep.checkpoints {
		if dep.checkpoints[i].ID == keepFromCkptID {
			keep = &dep.checkpoints[i]
			break
		}
	}
	dep.mu.Unlock()
	if keep == nil {
		return blobseer.GCStats{}, fmt.Errorf("%w: %d", ErrNoSuchCkpt, keepFromCkptID)
	}
	cl := c.Client()
	for _, ref := range keep.Snapshots {
		if err := cl.Retire(ctx, ref.Blob, ref.Version); err != nil {
			return blobseer.GCStats{}, err
		}
	}
	return cl.GC(ctx, c.repo.DataAddrs)
}

// Close shuts the cloud down.
func (c *Cloud) Close() {
	c.repo.Close()
}
