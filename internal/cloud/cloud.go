// Package cloud models the IaaS middleware of Figure 1: compute nodes
// hosting VM instances, a checkpoint repository aggregated from the nodes'
// local disks (BlobSeer data providers co-located with compute nodes), a
// checkpointing proxy per node, multi-deployment of instances from a base
// image, checkpoint bookkeeping, fail-stop failure injection and restart.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/health"
	"blobcr/internal/localtier"
	"blobcr/internal/mirror"
	"blobcr/internal/obs"
	"blobcr/internal/proxy"
	"blobcr/internal/transport"
	"blobcr/internal/vm"
)

// Errors.
var (
	ErrNoHealthyNodes = errors.New("cloud: no healthy nodes available")
	ErrUnknownNode    = errors.New("cloud: unknown node")
	ErrNoSuchCkpt     = errors.New("cloud: unknown checkpoint")
	ErrIncompleteCkpt = errors.New("cloud: checkpoint does not cover all instances")
	// ErrNotDurable rejects rollback to a checkpoint whose member snapshots
	// have not all published — with asynchronous commits, the newest recorded
	// checkpoint may still be uploading, and restarting from it would pin the
	// job to a snapshot set that can never be completed.
	ErrNotDurable = errors.New("cloud: checkpoint not globally durable")
)

// Node is one compute node.
type Node struct {
	Name      string
	ProxyAddr string
	DataAddr  string // the co-located BlobSeer data provider
	// PartnerAddr is the neighbor proxy holding a replica of every capture
	// this node stages in its local tier (empty without multilevel
	// checkpointing or on single-node clouds).
	PartnerAddr string

	proxy  *proxy.Proxy
	stage  *localtier.Stage
	reg    *obs.Registry // the node's own registry (Config.Health), else nil
	failed atomic.Bool
}

// Stage returns the node's local write-back tier, if the cloud was built
// with LocalTier.
func (n *Node) Stage() *localtier.Stage { return n.stage }

// Registry returns the node's own metrics registry when the cloud was built
// with Config.Health, or nil when every node shares the cloud registry.
func (n *Node) Registry() *obs.Registry { return n.reg }

// Failed reports whether the node has fail-stopped.
func (n *Node) Failed() bool { return n.failed.Load() }

// SnapshotRef names one VM's disk snapshot in the repository. It is an
// alias of blobseer.SnapshotRef — the one snapshot-identity type every
// layer shares.
type SnapshotRef = blobseer.SnapshotRef

// GlobalCheckpoint is a consistent set of per-instance snapshots.
//
// Durable reports whether every member's snapshot has published to the
// repository. With asynchronous commits a checkpoint is recorded the moment
// the coordinated capture line is established, while the uploads are still
// in flight; only once every member resolves does the checkpoint become a
// safe rollback target. The rollback planner (internal/supervisor) only ever
// picks durable checkpoints.
type GlobalCheckpoint struct {
	ID        int
	Snapshots map[string]SnapshotRef // VM id -> snapshot
	// LocallySafe reports the first watermark of multilevel checkpointing:
	// every member's capture is staged in its node's local tier and
	// replicated to the node's partner, so a single node loss cannot lose
	// it. A locally-safe checkpoint is NOT yet a rollback target — that
	// still requires Durable (every member's snapshot published to the
	// striped remote plane) — but the supervisor can promote it by draining
	// the members' tiers (or their partner replicas) on demand.
	LocallySafe bool
	Durable     bool
}

// Instance is one deployed VM with its node-side attachments.
type Instance struct {
	VMID   string
	Node   *Node
	VM     *vm.Instance
	Mirror *mirror.Module
	Proxy  *proxy.Client
}

// Deployment is one application's set of instances.
type Deployment struct {
	ID        string
	Base      SnapshotRef // the base image the deployment booted from
	Instances []*Instance

	mu          sync.Mutex
	checkpoints []GlobalCheckpoint
}

// Cloud is the middleware instance.
type Cloud struct {
	net         transport.FaultNetwork
	repo        *blobseer.Deployment
	replication int
	dedup       bool
	parallelism int
	obs         *obs.Registry

	localTier   bool
	stageStores blobseer.StoreFactory
	health      *health.Options // per-node observability (Config.Health), else nil

	mu      sync.Mutex
	nodes   []*Node
	rr      int // round-robin placement cursor
	rng     *rand.Rand
	nextDep int
}

// Config tunes a Cloud.
type Config struct {
	Nodes         int
	MetaProviders int
	Replication   int // chunk replica count for checkpoint data (default 1)
	Seed          int64
	// Dedup routes all repository writes through the content-addressed
	// chunk repository (internal/cas): identical chunk content — across
	// snapshots, across VMs — is stored once and never re-shipped, and
	// pruning old checkpoints reclaims space by reference counting instead
	// of a whole-repository sweep.
	Dedup bool
	// Parallelism bounds the concurrent per-provider streams every
	// repository client the cloud hands out runs during commits and
	// restores (blobseer.Client.Parallelism). Zero means the client
	// default; deployments striping checkpoints across many nodes set it
	// to at least Nodes.
	Parallelism int
	// Net overrides the cloud's network. It must support fail-stop
	// partitioning (FailNode injects failures through it); nil means a fresh
	// in-process network. The availability experiments pass a
	// latency-injecting wrapper so restarts cost real wall time.
	Net transport.FaultNetwork
	// Obs is the metrics registry the whole deployment records into: every
	// wire call (through a transport.Meter wrapped around Net), every
	// repository client the cloud hands out, and the per-node proxies all
	// share it, so one METRICS scrape sees the full picture. Nil means
	// obs.Default.
	Obs *obs.Registry
	// Stores picks the chunk-store backend of each node's co-located data
	// provider (nil means in-memory). Durable deployments pass
	// blobseer.SeglogStores, whose group-commit spans then land in the
	// provider's flight recorder — the post-mortem record the supervisor
	// archives when a node dies.
	Stores blobseer.StoreFactory
	// LocalTier enables multilevel checkpointing: each node gets a local
	// write-back staging tier, captures are replicated to a partner proxy
	// (the next node in the ring), checkpoints acknowledge as locally safe
	// immediately, and a background drain publishes them into the striped
	// remote plane at its own pace.
	LocalTier bool
	// StageStores picks the chunk-store backend of each node's staging tier
	// (nil means in-memory; durable nodes pass blobseer.SeglogStores over a
	// node-local directory). Only used with LocalTier.
	StageStores blobseer.StoreFactory
	// Health switches the deployment to per-node observability, the shape a
	// federating supervisor (supervisor.Config.Health) expects: each node's
	// proxy — and its local tier and drain client — records into the node's
	// own registry with a metric history ring attached (HISTORY answers
	// per-node windowed rates), and every repository service deploys with its
	// own ringed registry too (blobseer.DeployObserved). Without it all nodes
	// share Obs, and a federated scrape would file identical copies of the
	// merged series under every node= label.
	Health *health.Options
}

// New builds a cloud: an in-process network, a BlobSeer deployment with one
// data provider per compute node, and one checkpointing proxy per node.
func New(cfg Config) (*Cloud, error) {
	if cfg.Nodes < 1 {
		return nil, errors.New("cloud: need at least one node")
	}
	if cfg.MetaProviders < 1 {
		cfg.MetaProviders = 1
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	var net transport.FaultNetwork = cfg.Net
	if net == nil {
		net = transport.NewInProc()
	}
	// Meter outermost: shaping wrappers underneath (Latency, Bandwidth) stay
	// visible in what it measures, and fault injection forwards through it.
	net = transport.WithMeter(net, reg, blobseer.VerbName)
	newStore := cfg.Stores
	if newStore == nil {
		newStore = blobseer.MemStores
	}
	var hopts *health.Options
	if cfg.Health != nil {
		o := cfg.Health.WithDefaults()
		hopts = &o
	}
	var repo *blobseer.Deployment
	var err error
	if hopts != nil {
		repo, err = blobseer.DeployObserved(net, cfg.MetaProviders, cfg.Nodes, newStore)
	} else {
		repo, err = blobseer.DeployWith(net, cfg.MetaProviders, cfg.Nodes, newStore)
	}
	if err != nil {
		return nil, err
	}
	if hopts != nil {
		for _, sreg := range repo.Registries {
			sreg.StartHistory(hopts.SampleEvery, hopts.HistoryCap)
		}
	}
	c := &Cloud{net: net, repo: repo, obs: reg, health: hopts, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.Nodes; i++ {
		p := proxy.New()
		nodeReg := reg
		if hopts != nil {
			nodeReg = obs.NewRegistry()
			nodeReg.StartHistory(hopts.SampleEvery, hopts.HistoryCap)
		}
		p.Obs = nodeReg
		srv, err := p.Serve(net, "")
		if err != nil {
			repo.Close()
			return nil, err
		}
		node := &Node{
			Name:      fmt.Sprintf("node-%03d", i),
			ProxyAddr: srv.Addr(),
			DataAddr:  repo.DataAddrs[i],
			proxy:     p,
		}
		if hopts != nil {
			node.reg = nodeReg
		}
		c.nodes = append(c.nodes, node)
	}
	c.replication = cfg.Replication
	c.dedup = cfg.Dedup
	c.parallelism = cfg.Parallelism
	if cfg.LocalTier {
		// Partner ring: node i replicates its staged captures to node i+1.
		// The ring needs every proxy address, so the tier is wired after all
		// nodes exist and before any instance registers.
		newStage := cfg.StageStores
		if newStage == nil {
			newStage = blobseer.MemStores
		}
		c.localTier = true
		c.stageStores = newStage
		for i, n := range c.nodes {
			store, err := newStage(i)
			if err != nil {
				repo.Close()
				return nil, fmt.Errorf("cloud: stage store %d: %w", i, err)
			}
			n.stage = localtier.New(store, c.nodeRegistry(n))
			if len(c.nodes) > 1 {
				n.PartnerAddr = c.nodes[(i+1)%len(c.nodes)].ProxyAddr
			}
			n.proxy.Stage = n.stage
			n.proxy.PartnerAddr = n.PartnerAddr
			n.proxy.Net = net
			n.proxy.Repo = c.nodeClient(n)
		}
	}
	return c, nil
}

// Client returns a repository client (replication, dedup and parallelism
// configured at New).
func (c *Cloud) Client() *blobseer.Client {
	cl := c.repo.Client()
	cl.Replication = c.replication
	cl.Dedup = c.dedup
	cl.Parallelism = c.parallelism
	cl.Obs = c.obs
	return cl
}

// Registry returns the metrics registry the deployment records into — the
// one surface the METRICS endpoints and -debug-addr listeners scrape.
func (c *Cloud) Registry() *obs.Registry { return c.obs }

// nodeRegistry returns the registry a node's own components (local tier,
// drain client) record into: the node's registry with Config.Health, the
// shared cloud registry otherwise.
func (c *Cloud) nodeRegistry(n *Node) *obs.Registry {
	if n.reg != nil {
		return n.reg
	}
	return c.obs
}

// nodeClient is Client with the node's own registry — the drain client's
// commit counters then count toward the node that drains, which is what the
// per-node commit-throughput view in blobcr-ctl top reads.
func (c *Cloud) nodeClient(n *Node) *blobseer.Client {
	cl := c.Client()
	cl.Obs = c.nodeRegistry(n)
	return cl
}

// Nodes returns the compute nodes.
func (c *Cloud) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.nodes...)
}

// Network returns the cloud's network (examples wire extra services on it;
// the supervisor pings proxies and serves its event endpoint through it).
func (c *Cloud) Network() transport.FaultNetwork { return c.net }

// Repository exposes the BlobSeer deployment (space accounting, GC).
func (c *Cloud) Repository() *blobseer.Deployment { return c.repo }

// AddNode brings one more compute node into the cloud after deploy: a fresh
// checkpointing proxy plus a co-located data provider that JOINs the
// repository's placement rotation the moment it registers. This is the
// elasticity the self-healing storage plane leans on — spare storage
// capacity can be added while the deployment runs, and the repair plane
// (internal/repair) re-replicates onto it.
func (c *Cloud) AddNode(ctx context.Context) (*Node, error) {
	dataAddr, err := c.repo.AddDataProvider(ctx)
	if err != nil {
		return nil, err
	}
	p := proxy.New()
	p.Obs = c.obs
	var nodeReg *obs.Registry
	if c.health != nil {
		if sreg := c.repo.Registries[dataAddr]; sreg != nil {
			sreg.StartHistory(c.health.SampleEvery, c.health.HistoryCap)
		}
		nodeReg = obs.NewRegistry()
		nodeReg.StartHistory(c.health.SampleEvery, c.health.HistoryCap)
		p.Obs = nodeReg
	}
	srv, err := p.Serve(c.net, "")
	if err != nil {
		// The data provider already JOINed placement; take it back out so a
		// failed AddNode leaves no orphan in the rotation (its server is
		// torn down with the repository).
		c.Client().UnregisterProvider(ctx, dataAddr) //nolint:errcheck // best effort rollback
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	node := &Node{
		Name:      fmt.Sprintf("node-%03d", len(c.nodes)),
		ProxyAddr: srv.Addr(),
		DataAddr:  dataAddr,
		proxy:     p,
		reg:       nodeReg,
	}
	if c.localTier {
		store, err := c.stageStores(len(c.nodes))
		if err != nil {
			c.Client().UnregisterProvider(ctx, dataAddr) //nolint:errcheck // best effort rollback
			return nil, fmt.Errorf("cloud: stage store: %w", err)
		}
		node.stage = localtier.New(store, c.nodeRegistry(node))
		// The newcomer replicates to the previous ring tail; existing links
		// stay as wired at deploy.
		if n := len(c.nodes); n > 0 {
			node.PartnerAddr = c.nodes[n-1].ProxyAddr
		}
		p.Stage = node.stage
		p.PartnerAddr = node.PartnerAddr
		p.Net = c.net
		p.Repo = c.nodeClient(node)
	}
	c.nodes = append(c.nodes, node)
	return node, nil
}

// UploadBaseImage stores a raw disk image in the repository and returns its
// blob id and version — the user's "put image" operation.
func (c *Cloud) UploadBaseImage(ctx context.Context, raw []byte, chunkSize uint64) (SnapshotRef, error) {
	cl := c.Client()
	blob, err := cl.CreateBlob(ctx, chunkSize)
	if err != nil {
		return SnapshotRef{}, err
	}
	info, err := cl.WriteAt(ctx, blob, 0, raw)
	if err != nil {
		return SnapshotRef{}, err
	}
	return SnapshotRef{Blob: blob, Version: info.Version}, nil
}

// healthyNodesLocked returns non-failed nodes.
func (c *Cloud) healthyNodesLocked() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if !n.Failed() {
			out = append(out, n)
		}
	}
	return out
}

// placeLocked picks the next healthy node round-robin, preferring nodes not
// in the avoid set.
func (c *Cloud) placeLocked(avoid map[string]bool) (*Node, error) {
	healthy := c.healthyNodesLocked()
	if len(healthy) == 0 {
		return nil, ErrNoHealthyNodes
	}
	for i := 0; i < len(healthy); i++ {
		n := healthy[(c.rr+i)%len(healthy)]
		if !avoid[n.Name] {
			c.rr = (c.rr + i + 1) % len(healthy)
			return n, nil
		}
	}
	// All healthy nodes are in the avoid set; fall back to any.
	n := healthy[c.rr%len(healthy)]
	c.rr = (c.rr + 1) % len(healthy)
	return n, nil
}

// tokenLocked mints a per-VM authentication token. Caller holds c.mu (the
// rng is guarded by it).
func (c *Cloud) tokenLocked() string {
	return fmt.Sprintf("tok-%08x", c.rng.Uint32())
}

// placement is one planned instance deployment: the bookkeeping decided
// under c.mu, executed (network I/O: attach, boot, register) outside it.
type placement struct {
	node  *Node
	token string
}

// deployOne attaches, boots and registers one instance from a snapshot on
// the planned node. It performs network I/O and must not be called holding
// c.mu — placement and token assignment happen under the lock beforehand.
func (c *Cloud) deployOne(ctx context.Context, vmID string, pl placement, ref SnapshotRef, vmCfg vm.Config, resumeCkpt bool) (*Instance, error) {
	// The mirror's repository client is the one the normal async drain
	// commits through, so it carries the node's registry: the commit
	// counters then count toward the node that drains them.
	cl := c.nodeClient(pl.node)
	var mod *mirror.Module
	var err error
	if resumeCkpt {
		mod, err = mirror.AttachCheckpoint(ctx, cl, ref)
	} else {
		mod, err = mirror.Attach(ctx, cl, ref)
	}
	if err != nil {
		return nil, err
	}
	inst := vm.New(vmID, mod, vmCfg)
	if err := inst.Boot(); err != nil {
		return nil, err
	}
	pl.node.proxy.Register(vmID, pl.token, inst, mod)
	return &Instance{
		VMID:   vmID,
		Node:   pl.node,
		VM:     inst,
		Mirror: mod,
		Proxy:  &proxy.Client{Net: c.net, Addr: pl.node.ProxyAddr, VMID: vmID, Token: pl.token},
	}, nil
}

// plan picks nodes and tokens for n instances under the lock, preferring
// nodes not in the avoid set.
func (c *Cloud) plan(n int, avoid map[string]bool) ([]placement, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]placement, 0, n)
	for i := 0; i < n; i++ {
		node, err := c.placeLocked(avoid)
		if err != nil {
			return nil, err
		}
		out = append(out, placement{node: node, token: c.tokenLocked()})
	}
	return out, nil
}

// Deploy boots n instances from the same base image (multi-deployment),
// placing them round-robin across healthy nodes. The lock covers only the
// placement bookkeeping; the per-instance attach/boot network I/O runs
// outside it.
func (c *Cloud) Deploy(ctx context.Context, n int, base SnapshotRef, vmCfg vm.Config) (*Deployment, error) {
	c.mu.Lock()
	c.nextDep++
	id := fmt.Sprintf("dep-%d", c.nextDep)
	c.mu.Unlock()
	plans, err := c.plan(n, nil)
	if err != nil {
		return nil, err
	}
	dep := &Deployment{ID: id, Base: base}
	for i := 0; i < n; i++ {
		vmID := fmt.Sprintf("%s-vm-%03d", dep.ID, i)
		inst, err := c.deployOne(ctx, vmID, plans[i], base, vmCfg, false)
		if err != nil {
			return nil, fmt.Errorf("cloud: deploy %s: %w", vmID, err)
		}
		dep.Instances = append(dep.Instances, inst)
	}
	return dep, nil
}

// RecordCheckpoint stores the mapping between a completed global checkpoint
// and the per-instance snapshots, as the middleware in Section 3.2 does. It
// fails if the snapshot set does not cover every instance (an incomplete
// checkpoint cannot be rolled back to). The snapshots are published refs —
// callers resolve their commit handles first — so the checkpoint is durable
// from the start.
func (c *Cloud) RecordCheckpoint(dep *Deployment, snaps map[string]SnapshotRef) (int, error) {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	for _, inst := range dep.Instances {
		if _, ok := snaps[inst.VMID]; !ok {
			return 0, fmt.Errorf("%w: missing %s", ErrIncompleteCkpt, inst.VMID)
		}
	}
	id := len(dep.checkpoints) + 1
	cp := GlobalCheckpoint{ID: id, Snapshots: make(map[string]SnapshotRef, len(snaps)), LocallySafe: true, Durable: true}
	for k, v := range snaps {
		cp.Snapshots[k] = v
	}
	dep.checkpoints = append(dep.checkpoints, cp)
	return id, nil
}

// RecordPendingCheckpoint registers a provisional global checkpoint whose
// member snapshots are still publishing: the coordinated capture line is
// established but the async commits are in flight. ResolveSnapshot fills in
// each member's ref as its commit publishes, and MarkDurable promotes the
// checkpoint to a rollback target once all have. Until then the checkpoint
// is visible in the history but Restart refuses it.
func (c *Cloud) RecordPendingCheckpoint(dep *Deployment) int {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	id := len(dep.checkpoints) + 1
	dep.checkpoints = append(dep.checkpoints, GlobalCheckpoint{
		ID:        id,
		Snapshots: make(map[string]SnapshotRef, len(dep.Instances)),
	})
	return id
}

// findLocked returns the checkpoint record with the given id. Caller holds
// dep.mu.
func (dep *Deployment) findLocked(ckptID int) *GlobalCheckpoint {
	for i := range dep.checkpoints {
		if dep.checkpoints[i].ID == ckptID {
			return &dep.checkpoints[i]
		}
	}
	return nil
}

// clone deep-copies the record. Every checkpoint that escapes dep.mu must
// be a clone: ResolveSnapshot keeps mutating the live Snapshots map while
// a provisional checkpoint's commits publish, and a shared map would race
// readers (and leak across the Deployments a restart creates).
func (cp GlobalCheckpoint) clone() GlobalCheckpoint {
	out := cp
	out.Snapshots = make(map[string]SnapshotRef, len(cp.Snapshots))
	for k, v := range cp.Snapshots {
		out.Snapshots[k] = v
	}
	return out
}

// ResolveSnapshot records that vmID's snapshot for the provisional
// checkpoint has published.
func (dep *Deployment) ResolveSnapshot(ckptID int, vmID string, ref SnapshotRef) error {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	cp := dep.findLocked(ckptID)
	if cp == nil {
		return fmt.Errorf("%w: %d", ErrNoSuchCkpt, ckptID)
	}
	cp.Snapshots[vmID] = ref
	return nil
}

// MarkDurable promotes a provisional checkpoint to a rollback target. It
// fails if any current member's snapshot is still unresolved.
func (dep *Deployment) MarkDurable(ckptID int) error {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	cp := dep.findLocked(ckptID)
	if cp == nil {
		return fmt.Errorf("%w: %d", ErrNoSuchCkpt, ckptID)
	}
	for _, inst := range dep.Instances {
		if _, ok := cp.Snapshots[inst.VMID]; !ok {
			return fmt.Errorf("%w: missing %s", ErrIncompleteCkpt, inst.VMID)
		}
	}
	cp.LocallySafe = true // durability subsumes local safety
	cp.Durable = true
	return nil
}

// MarkLocallySafe records that every member's capture for the provisional
// checkpoint reached its node's local tier and partner replica — the first
// watermark. The member snapshots may still be unresolved (they publish
// during the drain).
func (dep *Deployment) MarkLocallySafe(ckptID int) error {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	cp := dep.findLocked(ckptID)
	if cp == nil {
		return fmt.Errorf("%w: %d", ErrNoSuchCkpt, ckptID)
	}
	cp.LocallySafe = true
	return nil
}

// LocalWatermark returns the id of the newest locally-safe checkpoint, or 0.
// Durable checkpoints count: durability subsumes local safety.
func (dep *Deployment) LocalWatermark() int {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	for i := len(dep.checkpoints) - 1; i >= 0; i-- {
		if dep.checkpoints[i].LocallySafe || dep.checkpoints[i].Durable {
			return dep.checkpoints[i].ID
		}
	}
	return 0
}

// LatestLocallySafeCheckpoint returns the most recent checkpoint that is at
// least locally safe.
func (dep *Deployment) LatestLocallySafeCheckpoint() (GlobalCheckpoint, bool) {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	for i := len(dep.checkpoints) - 1; i >= 0; i-- {
		if dep.checkpoints[i].LocallySafe || dep.checkpoints[i].Durable {
			return dep.checkpoints[i].clone(), true
		}
	}
	return GlobalCheckpoint{}, false
}

// Checkpoints returns deep copies of the recorded global checkpoints,
// oldest first.
func (dep *Deployment) Checkpoints() []GlobalCheckpoint {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	out := make([]GlobalCheckpoint, len(dep.checkpoints))
	for i, cp := range dep.checkpoints {
		out[i] = cp.clone()
	}
	return out
}

// LatestCheckpoint returns the most recent recorded global checkpoint,
// durable or not.
func (dep *Deployment) LatestCheckpoint() (GlobalCheckpoint, bool) {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	if len(dep.checkpoints) == 0 {
		return GlobalCheckpoint{}, false
	}
	return dep.checkpoints[len(dep.checkpoints)-1].clone(), true
}

// LatestDurableCheckpoint returns the most recent checkpoint whose every
// member snapshot has published — the durability watermark, and the only
// safe rollback target while commits are in flight.
func (dep *Deployment) LatestDurableCheckpoint() (GlobalCheckpoint, bool) {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	for i := len(dep.checkpoints) - 1; i >= 0; i-- {
		if dep.checkpoints[i].Durable {
			return dep.checkpoints[i].clone(), true
		}
	}
	return GlobalCheckpoint{}, false
}

// DurableWatermark returns the id of the newest durable checkpoint, or 0.
// It is cheap — no snapshot-map copy — because pollers sit on it.
func (dep *Deployment) DurableWatermark() int {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	for i := len(dep.checkpoints) - 1; i >= 0; i-- {
		if dep.checkpoints[i].Durable {
			return dep.checkpoints[i].ID
		}
	}
	return 0
}

// FailNode fail-stops a node: all hosted instances die and the co-located
// data provider becomes unreachable (its locally stored chunk replicas are
// lost to the deployment).
func (c *Cloud) FailNode(ctx context.Context, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.Name != name {
			continue
		}
		n.failed.Store(true)
		c.net.Partition(n.ProxyAddr)
		c.net.Partition(n.DataAddr)
		// Take the dead data provider out of the placement rotation so
		// future commits go to live providers only.
		if err := c.Client().UnregisterProvider(ctx, n.DataAddr); err != nil {
			return fmt.Errorf("cloud: deregister failed provider: %w", err)
		}
		return nil
	}
	return fmt.Errorf("%w: %s", ErrUnknownNode, name)
}

// KillDeploymentInstancesOn kills the instances of dep hosted on failed
// nodes (the middleware notices the fail-stop).
func (c *Cloud) KillDeploymentInstancesOn(dep *Deployment) []string {
	var dead []string
	for _, inst := range dep.Instances {
		if inst.Node.Failed() && inst.VM.State() != vm.Stopped {
			inst.VM.Kill()
			// Abort the dead node's in-flight commits through the repository
			// abort path so CAS refcounts balance; captures already staged in
			// its local tier stay put — the partner replica drains them.
			inst.Mirror.Halt()
			dead = append(dead, inst.VMID)
		}
	}
	return dead
}

// rollbackTarget returns the checkpoint to roll back to, requiring it to be
// globally durable.
func (dep *Deployment) rollbackTarget(ckptID int) (GlobalCheckpoint, error) {
	dep.mu.Lock()
	defer dep.mu.Unlock()
	cp := dep.findLocked(ckptID)
	if cp == nil {
		return GlobalCheckpoint{}, fmt.Errorf("%w: %d", ErrNoSuchCkpt, ckptID)
	}
	if !cp.Durable {
		return GlobalCheckpoint{}, fmt.Errorf("%w: %d", ErrNotDurable, ckptID)
	}
	return cp.clone(), nil
}

// Restart re-deploys every instance of dep from the given recorded global
// checkpoint, each on a healthy node different from where it previously ran
// (the paper redeploys on different nodes to avoid cache effects; here it
// also sidesteps failed nodes). The checkpoint must be globally durable —
// with async commits, a newer recorded checkpoint may still be publishing
// and is refused with ErrNotDurable. The old instances are discarded. The
// returned deployment reuses the same checkpoint history.
//
// c.mu covers only the placement bookkeeping: the per-instance teardown and
// redeploy network I/O runs outside it, so a slow redeploy cannot stall
// unrelated cloud operations.
func (c *Cloud) Restart(ctx context.Context, dep *Deployment, ckptID int) (*Deployment, error) {
	target, err := dep.rollbackTarget(ckptID)
	if err != nil {
		return nil, err
	}

	// Placement bookkeeping under the lock; everything else outside it.
	c.mu.Lock()
	plans := make([]placement, 0, len(dep.Instances))
	for _, old := range dep.Instances {
		node, err := c.placeLocked(map[string]bool{old.Node.Name: true})
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		plans = append(plans, placement{node: node, token: c.tokenLocked()})
	}
	c.mu.Unlock()

	newDep := &Deployment{
		ID:          dep.ID,
		Base:        dep.Base,
		checkpoints: dep.Checkpoints(),
	}
	for i, old := range dep.Instances {
		// Tear down the previous incarnation.
		old.VM.Kill()
		old.Node.proxy.Unregister(old.VMID)

		inst, err := c.deployOne(ctx, old.VMID, plans[i], target.Snapshots[old.VMID], vm.Config{BlockSize: 512}, true)
		if err != nil {
			// Unwind this attempt's instances: a retry redeploys every
			// member from scratch, and abandoned VMs must not linger booted
			// and registered on their nodes.
			teardown(newDep.Instances)
			return nil, fmt.Errorf("cloud: restart %s: %w", old.VMID, err)
		}
		newDep.Instances = append(newDep.Instances, inst)
	}
	return newDep, nil
}

// teardown kills and unregisters instances a failed restart attempt had
// already deployed.
func teardown(instances []*Instance) {
	for _, inst := range instances {
		inst.VM.Kill()
		inst.Node.proxy.Unregister(inst.VMID)
	}
}

// inPlaceDrainTimeout bounds how long PartialRestart waits for a healthy
// member's in-flight commits before giving up on the in-place rollback and
// re-deploying it like a failed member.
const inPlaceDrainTimeout = 5 * time.Second

// RestartStats reports how a PartialRestart recovered each member.
type RestartStats struct {
	Redeployed int // members re-deployed from their snapshots on other nodes
	InPlace    int // members rolled back in place (warm local cache kept)
}

// PartialRestart rolls dep back to the given durable checkpoint, but unlike
// Restart it tears down only the members that actually died: instances on
// failed nodes are re-deployed from their snapshots on healthy spare nodes,
// while instances on healthy nodes roll back in place — the VM restarts on
// its own node from its mirror module reverted to the snapshot
// (mirror.RollbackTo), keeping the module's warm local cache instead of
// re-fetching the image over the network. For single-node failures this
// makes time-to-resume proportional to the failed fraction of the
// deployment, not its size.
//
// A healthy member whose commit pipeline will not drain within
// inPlaceDrainTimeout (e.g. an upload wedged on a dead provider) falls back
// to the re-deploy path.
func (c *Cloud) PartialRestart(ctx context.Context, dep *Deployment, ckptID int) (*Deployment, RestartStats, error) {
	var stats RestartStats
	target, err := dep.rollbackTarget(ckptID)
	if err != nil {
		return nil, stats, err
	}

	// Placement bookkeeping under the lock: failed members get a healthy
	// node (sparing their old one); healthy members get no plan — they stay.
	c.mu.Lock()
	plans := make([]*placement, len(dep.Instances))
	for i, old := range dep.Instances {
		if !old.Node.Failed() {
			continue
		}
		node, err := c.placeLocked(map[string]bool{old.Node.Name: true})
		if err != nil {
			c.mu.Unlock()
			return nil, stats, err
		}
		plans[i] = &placement{node: node, token: c.tokenLocked()}
	}
	c.mu.Unlock()

	newDep := &Deployment{
		ID:          dep.ID,
		Base:        dep.Base,
		checkpoints: dep.Checkpoints(),
	}
	// Redeployed (not in-place) members of this attempt, torn down on
	// failure: an in-place member stays a valid instance of the old
	// deployment, but an abandoned redeploy would linger booted and
	// registered on its node.
	var redeployed []*Instance
	for i, old := range dep.Instances {
		ref := target.Snapshots[old.VMID]
		if plans[i] == nil {
			if err := c.rollbackInPlace(ctx, old, ref); err == nil {
				stats.InPlace++
				newDep.Instances = append(newDep.Instances, old)
				continue
			}
			// In-place rollback did not work (commits wedged in flight, or
			// the reboot failed): fall back to a re-deploy like a dead
			// member.
			pl, perr := c.plan(1, map[string]bool{old.Node.Name: true})
			if perr != nil {
				teardown(redeployed)
				return nil, stats, perr
			}
			plans[i] = &pl[0]
		}
		old.VM.Kill()
		old.Node.proxy.Unregister(old.VMID)
		inst, err := c.deployOne(ctx, old.VMID, *plans[i], ref, vm.Config{BlockSize: 512}, true)
		if err != nil {
			teardown(redeployed)
			return nil, stats, fmt.Errorf("cloud: partial restart %s: %w", old.VMID, err)
		}
		stats.Redeployed++
		redeployed = append(redeployed, inst)
		newDep.Instances = append(newDep.Instances, inst)
	}
	return newDep, stats, nil
}

// rollbackInPlace reverts one healthy member to the snapshot without
// re-deploying it: kill the VM (its volatile state is post-checkpoint), roll
// the mirror module back, reboot. The proxy registration, token and node
// stay as they are.
func (c *Cloud) rollbackInPlace(ctx context.Context, inst *Instance, ref SnapshotRef) error {
	deadline := time.Now().Add(inPlaceDrainTimeout)
	for inst.Mirror.PendingCommits() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cloud: %s: %w", inst.VMID, mirror.ErrCommitsInFlight)
		}
		time.Sleep(time.Millisecond)
	}
	inst.VM.Kill()
	if err := inst.Mirror.RollbackTo(ctx, ref); err != nil {
		return err
	}
	return inst.VM.Boot()
}

// Prune retires all snapshot versions older than the given recorded global
// checkpoint and garbage-collects the repository — the paper's future-work
// extension, kept as a middleware operation because only the middleware
// knows which snapshots checkpoints still reference.
func (c *Cloud) Prune(ctx context.Context, dep *Deployment, keepFromCkptID int) (blobseer.GCStats, error) {
	dep.mu.Lock()
	var keep *GlobalCheckpoint
	if cp := dep.findLocked(keepFromCkptID); cp != nil {
		c := cp.clone()
		keep = &c
	}
	dep.mu.Unlock()
	if keep == nil {
		return blobseer.GCStats{}, fmt.Errorf("%w: %d", ErrNoSuchCkpt, keepFromCkptID)
	}
	cl := c.Client()
	for _, ref := range keep.Snapshots {
		if err := cl.Retire(ctx, ref.Blob, ref.Version); err != nil {
			return blobseer.GCStats{}, err
		}
	}
	// Sweep the repository's *current* live membership, not the deploy-time
	// node snapshot: providers that JOINed after deploy are swept too, and
	// decommissioned or fail-stopped ones (removed from the membership by
	// RetireProvider / FailNode) are skipped. Draining providers still hold
	// live chunks mid-drain and stay in the sweep.
	m, err := cl.Membership(ctx)
	if err != nil {
		return blobseer.GCStats{}, err
	}
	return cl.GC(ctx, m.Addrs())
}

// Close shuts the cloud down.
func (c *Cloud) Close() {
	c.mu.Lock()
	nodes := append([]*Node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		if n.stage != nil {
			n.stage.Close() //nolint:errcheck // teardown
		}
		if n.reg != nil {
			if h := n.reg.History(); h != nil {
				h.Close()
			}
		}
	}
	for _, sreg := range c.repo.Registries {
		if h := sreg.History(); h != nil {
			h.Close()
		}
	}
	c.repo.Close()
}
