package cloud

import (
	"fmt"
	"strings"
	"testing"

	"blobcr/internal/proxy"
	"blobcr/internal/vm"
)

func newTierCloud(t *testing.T, nodes int) *Cloud {
	t.Helper()
	c, err := New(Config{Nodes: nodes, MetaProviders: 2, Replication: 2, Dedup: true, Seed: 1, LocalTier: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestLocalTierCrashDuringDrainPartnerCompletes is the single-node-loss
// acceptance test: a checkpoint acknowledged locally safe is wedged mid-drain
// (remote plane unreachable), the owner node is killed, and the partner's
// replica must still publish it — the global watermark advances and the
// aborted drain attempts leak no CAS references. Run with -race.
func TestLocalTierCrashDuringDrainPartnerCompletes(t *testing.T) {
	c := newTierCloud(t, 3)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 1, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	inst := dep.Instances[0]
	owner := inst.Node

	// Warm checkpoint: clone + first commit drain fully through the tier.
	inst.VM.FS().WriteFile("/state", []byte("warm"))
	warmRef, err := inst.Proxy.RequestCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecordCheckpoint(dep, map[string]SnapshotRef{inst.VMID: warmRef}); err != nil {
		t.Fatal(err)
	}
	// The providers that survive the owner's death; CAS balance is asserted
	// over this stable subset.
	live := make([]string, 0, len(c.Repository().DataAddrs))
	for _, addr := range c.Repository().DataAddrs {
		if addr != owner.DataAddr {
			live = append(live, addr)
		}
	}
	beforeLive, err := c.Client().CasStats(ctx, live)
	if err != nil {
		t.Fatal(err)
	}

	// Starve the remote plane: every data provider unreachable. Staging and
	// partner replication use proxy addresses and are unaffected.
	for _, addr := range c.Repository().DataAddrs {
		c.Network().Partition(addr)
	}

	inst.VM.FS().WriteFile("/state", []byte("locally safe only"))
	handle, err := inst.Proxy.RequestCheckpointAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := inst.Proxy.WaitCheckpointLocal(ctx, handle)
	if err != nil {
		t.Fatalf("checkpoint did not reach local safety with the remote plane down: %v", err)
	}
	id := c.RecordPendingCheckpoint(dep)
	if err := dep.MarkLocallySafe(id); err != nil {
		t.Fatal(err)
	}
	if dep.LocalWatermark() != id || dep.DurableWatermark() == id {
		t.Fatalf("watermarks: local=%d durable=%d, want local=%d durable<%d",
			dep.LocalWatermark(), dep.DurableWatermark(), id, id)
	}

	// The owner node dies mid-drain (its drain is stuck retrying against the
	// partitioned providers).
	if err := c.FailNode(ctx, owner.Name); err != nil {
		t.Fatal(err)
	}
	dead := c.KillDeploymentInstancesOn(dep)
	if len(dead) != 1 {
		t.Fatalf("killed %v, want the one member", dead)
	}

	// Remote plane back (minus the dead node's provider): the aborted drain
	// attempts must have returned every CAS reference they took.
	for _, addr := range live {
		c.Network().Heal(addr)
	}
	afterAbort, err := c.Client().CasStats(ctx, live)
	if err != nil {
		t.Fatal(err)
	}
	if afterAbort.Refs != beforeLive.Refs || afterAbort.Chunks != beforeLive.Chunks {
		t.Errorf("aborted drain leaked CAS state: refs %d->%d chunks %d->%d",
			beforeLive.Refs, afterAbort.Refs, beforeLive.Chunks, afterAbort.Chunks)
	}

	// The partner drains the dead node's replica on its behalf.
	ref, err := proxy.DrainFor(ctx, c.Network(), owner.PartnerAddr, inst.VMID, seq)
	if err != nil {
		t.Fatalf("partner drain: %v", err)
	}
	if err := dep.ResolveSnapshot(id, inst.VMID, ref); err != nil {
		t.Fatal(err)
	}
	if err := dep.MarkDurable(id); err != nil {
		t.Fatal(err)
	}
	if dep.DurableWatermark() != id {
		t.Fatalf("durable watermark = %d after partner drain, want %d", dep.DurableWatermark(), id)
	}

	// Rolling back to the promoted checkpoint really restores the
	// locally-safe-only state: a single node loss lost nothing.
	newDep, err := c.Restart(ctx, dep, id)
	if err != nil {
		t.Fatalf("restart from promoted checkpoint: %v", err)
	}
	got, err := newDep.Instances[0].VM.FS().ReadFile("/state")
	if err != nil || string(got) != "locally safe only" {
		t.Fatalf("restarted /state = %q, %v; want the locally-safe-only write", got, err)
	}

	// Exactness: draining again is a no-op (the drain memo dedups), so the
	// reference counts are stable — nothing leaked, nothing double-published.
	afterDrain, err := c.Client().CasStats(ctx, live)
	if err != nil {
		t.Fatal(err)
	}
	if ref2, err := proxy.DrainFor(ctx, c.Network(), owner.PartnerAddr, inst.VMID, seq); err != nil || ref2 != ref {
		t.Fatalf("second DrainFor = %v, %v; want %v, nil", ref2, err, ref)
	}
	again, err := c.Client().CasStats(ctx, live)
	if err != nil {
		t.Fatal(err)
	}
	if again.Refs != afterDrain.Refs || again.Chunks != afterDrain.Chunks {
		t.Errorf("repeated drain changed CAS state: refs %d->%d chunks %d->%d",
			afterDrain.Refs, again.Refs, afterDrain.Chunks, again.Chunks)
	}
	if afterDrain.Refs <= afterAbort.Refs {
		t.Errorf("partner drain published nothing: refs %d -> %d", afterAbort.Refs, afterDrain.Refs)
	}
}

// TestLocalTierRestartInPlaceDrainsOwnTier covers the healthy-node variant:
// the member's module is halted (the VM died) but the node survives, so
// DRAINFOR against the node itself publishes from the node's own tier.
func TestLocalTierRestartInPlaceDrainsOwnTier(t *testing.T) {
	c := newTierCloud(t, 2)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 1, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	inst := dep.Instances[0]

	inst.VM.FS().WriteFile("/state", []byte("staged at home"))
	for _, addr := range c.Repository().DataAddrs {
		c.Network().Partition(addr)
	}
	handle, err := inst.Proxy.RequestCheckpointAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := inst.Proxy.WaitCheckpointLocal(ctx, handle)
	if err != nil {
		t.Fatal(err)
	}
	// The VM dies but the node does not: halt the module in place.
	inst.VM.Kill()
	inst.Mirror.Halt()
	for _, addr := range c.Repository().DataAddrs {
		c.Network().Heal(addr)
	}
	ref, err := proxy.DrainFor(ctx, c.Network(), inst.Node.ProxyAddr, inst.VMID, seq)
	if err != nil {
		t.Fatalf("restart-in-place drain: %v", err)
	}
	id := c.RecordPendingCheckpoint(dep)
	if err := dep.ResolveSnapshot(id, inst.VMID, ref); err != nil {
		t.Fatal(err)
	}
	if err := dep.MarkDurable(id); err != nil {
		t.Fatal(err)
	}
	newDep, err := c.Restart(ctx, dep, id)
	if err != nil {
		t.Fatalf("restart from own-tier drained checkpoint: %v", err)
	}
	got, err := newDep.Instances[0].VM.FS().ReadFile("/state")
	if err != nil || string(got) != "staged at home" {
		t.Fatalf("restarted /state = %q, %v", got, err)
	}
	// The node's own backlog for the owner is clear after the drain.
	own, _, err := proxy.Backlog(ctx, c.Network(), inst.Node.ProxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	if own.Checkpoints != 0 {
		t.Errorf("own backlog after drain = %+v, want empty", own)
	}
}

// TestLocalTierStatusSurfacesBacklog: the proxy STATUS line carries the
// owner's staged backlog while the drain is wedged.
func TestLocalTierStatusSurfacesBacklog(t *testing.T) {
	c := newTierCloud(t, 2)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 1, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	inst := dep.Instances[0]
	for _, addr := range c.Repository().DataAddrs {
		c.Network().Partition(addr)
	}
	defer func() {
		for _, addr := range c.Repository().DataAddrs {
			c.Network().Heal(addr)
		}
	}()
	inst.VM.FS().WriteFile("/state", []byte("backlogged"))
	handle, err := inst.Proxy.RequestCheckpointAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Proxy.WaitCheckpointLocal(ctx, handle); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Network().Call(ctx, inst.Node.ProxyAddr,
		[]byte(fmt.Sprintf("STATUS %s %s", inst.VMID, inst.Proxy.Token)))
	if err != nil {
		t.Fatal(err)
	}
	st := string(resp)
	if !strings.Contains(st, "staged=") || strings.Contains(st, "staged=0/0") {
		t.Errorf("STATUS = %q, want a non-empty staged=<ckpts>/<bytes> field", st)
	}
	// The typed client keeps parsing the extended line.
	if state, _, _, err := inst.Proxy.Status(ctx); err != nil || state == "" {
		t.Errorf("Client.Status over extended line: %q, %v", state, err)
	}
	own, partner, err := proxy.Backlog(ctx, c.Network(), inst.Node.ProxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	if own.Checkpoints == 0 {
		t.Errorf("own backlog = %+v, want the wedged capture", own)
	}
	if partner.Checkpoints != 0 {
		t.Errorf("partner backlog = %+v on the staging node, want empty", partner)
	}
}
