package cloud

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"blobcr/internal/repair"
	"blobcr/internal/vm"
)

// ctx is the default context for test operations.
var ctx = context.Background()

const chunkSize = 512

func newCloud(t *testing.T, nodes int) *Cloud {
	t.Helper()
	c, err := New(Config{Nodes: nodes, MetaProviders: 2, Replication: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func uploadBase(t *testing.T, c *Cloud, size int) SnapshotRef {
	t.Helper()
	base, err := c.UploadBaseImage(ctx, make([]byte, size), chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestDeployMultipleInstances(t *testing.T) {
	c := newCloud(t, 4)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 4, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Instances) != 4 {
		t.Fatalf("deployed %d instances", len(dep.Instances))
	}
	nodesUsed := map[string]bool{}
	for _, inst := range dep.Instances {
		if inst.VM.State() != vm.Running {
			t.Errorf("%s not running", inst.VMID)
		}
		nodesUsed[inst.Node.Name] = true
	}
	if len(nodesUsed) != 4 {
		t.Errorf("instances placed on %d nodes, want 4 (round-robin)", len(nodesUsed))
	}
}

func TestInstancesAreIndependent(t *testing.T) {
	c := newCloud(t, 2)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 2, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Each instance writes its own file; the other must not see it.
	dep.Instances[0].VM.FS().WriteFile("/mine", []byte("zero"))
	dep.Instances[1].VM.FS().WriteFile("/mine", []byte("one"))
	got0, _ := dep.Instances[0].VM.FS().ReadFile("/mine")
	got1, _ := dep.Instances[1].VM.FS().ReadFile("/mine")
	if string(got0) != "zero" || string(got1) != "one" {
		t.Error("instance disks are not isolated")
	}
}

func TestCheckpointViaProxyAndRecord(t *testing.T) {
	c := newCloud(t, 3)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 3, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	snaps := make(map[string]SnapshotRef)
	for i, inst := range dep.Instances {
		inst.VM.FS().WriteFile("/state", []byte(fmt.Sprintf("rank %d", i)))
		ref, err := inst.Proxy.RequestCheckpoint(ctx)
		if err != nil {
			t.Fatalf("%s checkpoint: %v", inst.VMID, err)
		}
		snaps[inst.VMID] = ref
	}
	id, err := c.RecordCheckpoint(dep, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("checkpoint id = %d", id)
	}
	got, ok := dep.LatestCheckpoint()
	if !ok || got.ID != 1 || len(got.Snapshots) != 3 {
		t.Errorf("LatestCheckpoint = %+v, %v", got, ok)
	}
}

func TestRecordCheckpointRejectsIncomplete(t *testing.T) {
	c := newCloud(t, 2)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 2, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RecordCheckpoint(dep, map[string]SnapshotRef{
		dep.Instances[0].VMID: {Blob: 1, Version: 0},
	})
	if err == nil {
		t.Error("incomplete checkpoint recorded")
	}
}

func TestFailureAndRestartRollsBack(t *testing.T) {
	c := newCloud(t, 4)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 2, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}

	// Each instance writes state and checkpoints.
	snaps := make(map[string]SnapshotRef)
	for i, inst := range dep.Instances {
		inst.VM.FS().WriteFile("/progress", []byte(fmt.Sprintf("iter-100-rank-%d", i)))
		ref, err := inst.Proxy.RequestCheckpoint(ctx)
		if err != nil {
			t.Fatal(err)
		}
		snaps[inst.VMID] = ref
	}
	ckptID, err := c.RecordCheckpoint(dep, snaps)
	if err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint work that will be lost (and file writes that must be
	// rolled back — the paper's key I/O rollback property).
	for _, inst := range dep.Instances {
		inst.VM.FS().WriteFile("/progress", []byte("iter-150-dirty"))
		inst.VM.FS().WriteFile("/garbage.log", []byte("lines after the checkpoint"))
	}

	// Fail the node hosting instance 0.
	failedNode := dep.Instances[0].Node.Name
	if err := c.FailNode(ctx, failedNode); err != nil {
		t.Fatal(err)
	}
	dead := c.KillDeploymentInstancesOn(dep)
	if len(dead) != 1 {
		t.Fatalf("killed %v", dead)
	}

	// Restart from the recorded checkpoint.
	newDep, err := c.Restart(ctx, dep, ckptID)
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	for i, inst := range newDep.Instances {
		if inst.Node.Name == failedNode {
			t.Errorf("%s placed on failed node", inst.VMID)
		}
		if inst.VM.State() != vm.Running {
			t.Errorf("%s not running after restart", inst.VMID)
		}
		got, err := inst.VM.FS().ReadFile("/progress")
		if err != nil {
			t.Fatalf("%s: %v", inst.VMID, err)
		}
		want := fmt.Sprintf("iter-100-rank-%d", i)
		if string(got) != want {
			t.Errorf("%s progress = %q, want %q (rollback failed)", inst.VMID, got, want)
		}
		// The post-checkpoint file must be gone: I/O rollback.
		if _, err := inst.VM.FS().ReadFile("/garbage.log"); err == nil {
			t.Errorf("%s: post-checkpoint file survived the rollback", inst.VMID)
		}
	}
}

func TestRestartUnknownCheckpoint(t *testing.T) {
	c := newCloud(t, 2)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 1, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(ctx, dep, 99); err == nil {
		t.Error("restart from unknown checkpoint succeeded")
	}
}

func TestCheckpointAfterRestartContinues(t *testing.T) {
	c := newCloud(t, 3)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 1, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	inst := dep.Instances[0]
	inst.VM.FS().WriteFile("/s", []byte("v1"))
	ref, err := inst.Proxy.RequestCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ckptID, err := c.RecordCheckpoint(dep, map[string]SnapshotRef{inst.VMID: ref})
	if err != nil {
		t.Fatal(err)
	}
	newDep, err := c.Restart(ctx, dep, ckptID)
	if err != nil {
		t.Fatal(err)
	}
	inst2 := newDep.Instances[0]
	inst2.VM.FS().WriteFile("/s", []byte("v2"))
	ref2, err := inst2.Proxy.RequestCheckpoint(ctx)
	if err != nil {
		t.Fatalf("checkpoint after restart: %v", err)
	}
	if ref2.Blob != ref.Blob {
		t.Errorf("restarted instance checkpoints into new image %d (was %d)", ref2.Blob, ref.Blob)
	}
	if ref2.Version <= ref.Version {
		t.Errorf("version did not advance: %d then %d", ref.Version, ref2.Version)
	}
	// Both snapshots readable.
	cl := c.Client()
	s1, err := cl.ReadVersion(ctx, ref, 0, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cl.ReadVersion(ctx, ref2, 0, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(s1, []byte("v1")) || !bytes.Contains(s2, []byte("v2")) {
		t.Error("snapshot contents wrong")
	}
}

func TestPruneReclaimsOldCheckpoints(t *testing.T) {
	c := newCloud(t, 2)
	base := uploadBase(t, c, 256*1024)
	dep, err := c.Deploy(ctx, 1, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	inst := dep.Instances[0]
	var lastID int
	for i := 0; i < 4; i++ {
		// Dirty a good amount of data each round so retired versions hold
		// exclusive chunks.
		data := bytes.Repeat([]byte{byte(i + 1)}, 64*1024)
		inst.VM.FS().WriteFile("/state", data)
		ref, err := inst.Proxy.RequestCheckpoint(ctx)
		if err != nil {
			t.Fatal(err)
		}
		lastID, err = c.RecordCheckpoint(dep, map[string]SnapshotRef{inst.VMID: ref})
		if err != nil {
			t.Fatal(err)
		}
	}
	cl := c.Client()
	_, chunksBefore, err := cl.Usage(ctx, c.Repository().DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Prune(ctx, dep, lastID)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if stats.DeletedChunks == 0 {
		t.Error("Prune reclaimed nothing")
	}
	_, chunksAfter, err := cl.Usage(ctx, c.Repository().DataAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if chunksAfter >= chunksBefore {
		t.Errorf("chunks %d -> %d after prune", chunksBefore, chunksAfter)
	}
	// The kept checkpoint must still be restorable.
	if _, err := c.Restart(ctx, dep, lastID); err != nil {
		t.Fatalf("restart after prune: %v", err)
	}
}

func TestReplicationSurvivesNodeLoss(t *testing.T) {
	// With replication 2, losing one node's data provider must not make
	// snapshots unreadable.
	c := newCloud(t, 4)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 1, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	inst := dep.Instances[0]
	inst.VM.FS().WriteFile("/important", []byte("replicated state"))
	ref, err := inst.Proxy.RequestCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ckptID, err := c.RecordCheckpoint(dep, map[string]SnapshotRef{inst.VMID: ref})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the instance's own node (its data provider had replicas too).
	if err := c.FailNode(ctx, inst.Node.Name); err != nil {
		t.Fatal(err)
	}
	c.KillDeploymentInstancesOn(dep)
	newDep, err := c.Restart(ctx, dep, ckptID)
	if err != nil {
		t.Fatalf("restart with one data provider lost: %v", err)
	}
	got, err := newDep.Instances[0].VM.FS().ReadFile("/important")
	if err != nil || string(got) != "replicated state" {
		t.Errorf("state after node loss: %q, %v", got, err)
	}
}

func TestDurabilityWatermark(t *testing.T) {
	c := newCloud(t, 3)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 2, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if dep.DurableWatermark() != 0 {
		t.Errorf("fresh deployment watermark = %d", dep.DurableWatermark())
	}

	// A provisional checkpoint is recorded but refused as a rollback target
	// until every member resolves.
	id := c.RecordPendingCheckpoint(dep)
	if _, err := c.Restart(ctx, dep, id); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Restart to pending checkpoint: %v, want ErrNotDurable", err)
	}
	if _, _, err := c.PartialRestart(ctx, dep, id); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("PartialRestart to pending checkpoint: %v, want ErrNotDurable", err)
	}
	if err := dep.MarkDurable(id); !errors.Is(err, ErrIncompleteCkpt) {
		t.Fatalf("MarkDurable with unresolved members: %v, want ErrIncompleteCkpt", err)
	}

	// Resolve the members (with real published snapshots) and promote.
	for _, inst := range dep.Instances {
		ref, err := inst.Proxy.RequestCheckpoint(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.ResolveSnapshot(id, inst.VMID, ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := dep.MarkDurable(id); err != nil {
		t.Fatal(err)
	}
	if dep.DurableWatermark() != id {
		t.Errorf("watermark = %d, want %d", dep.DurableWatermark(), id)
	}
	if _, err := c.Restart(ctx, dep, id); err != nil {
		t.Fatalf("Restart to durable checkpoint: %v", err)
	}

	// The watermark skips over a newer still-pending checkpoint.
	id2 := c.RecordPendingCheckpoint(dep)
	if dep.DurableWatermark() != id {
		t.Errorf("watermark advanced to pending checkpoint %d", id2)
	}
	cp, ok := dep.LatestDurableCheckpoint()
	if !ok || cp.ID != id {
		t.Errorf("LatestDurableCheckpoint = %+v, %v", cp, ok)
	}
}

func TestPartialRestartRedeploysOnlyFailedMembers(t *testing.T) {
	c := newCloud(t, 4)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 3, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	snaps := make(map[string]SnapshotRef)
	for i, inst := range dep.Instances {
		inst.VM.FS().WriteFile("/progress", []byte(fmt.Sprintf("ckpt-rank-%d", i)))
		ref, err := inst.Proxy.RequestCheckpoint(ctx)
		if err != nil {
			t.Fatal(err)
		}
		snaps[inst.VMID] = ref
	}
	ckptID, err := c.RecordCheckpoint(dep, snaps)
	if err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint damage everywhere, then one node dies.
	for _, inst := range dep.Instances {
		inst.VM.FS().WriteFile("/progress", []byte("dirty"))
		inst.VM.FS().WriteFile("/junk", []byte("post-checkpoint"))
	}
	victim := dep.Instances[1].Node
	if err := c.FailNode(ctx, victim.Name); err != nil {
		t.Fatal(err)
	}
	c.KillDeploymentInstancesOn(dep)

	healthy0 := dep.Instances[0]
	newDep, stats, err := c.PartialRestart(ctx, dep, ckptID)
	if err != nil {
		t.Fatalf("PartialRestart: %v", err)
	}
	if stats.Redeployed != 1 || stats.InPlace != 2 {
		t.Errorf("stats = %+v, want 1 redeployed / 2 in place", stats)
	}
	for i, inst := range newDep.Instances {
		if inst.VM.State() != vm.Running {
			t.Errorf("%s not running", inst.VMID)
		}
		if i != 1 {
			// Healthy members keep their node, instance and proxy binding.
			if inst != dep.Instances[i] {
				t.Errorf("healthy member %d was replaced", i)
			}
		} else {
			if inst.Node == victim {
				t.Error("failed member redeployed on its dead node")
			}
			if inst == dep.Instances[i] {
				t.Error("failed member not redeployed")
			}
		}
		got, err := inst.VM.FS().ReadFile("/progress")
		if err != nil || string(got) != fmt.Sprintf("ckpt-rank-%d", i) {
			t.Errorf("%s progress after partial restart = %q, %v", inst.VMID, got, err)
		}
		if _, err := inst.VM.FS().ReadFile("/junk"); err == nil {
			t.Errorf("%s: post-checkpoint file survived the in-place rollback", inst.VMID)
		}
	}
	if newDep.Instances[0].Node != healthy0.Node {
		t.Error("in-place member changed node")
	}

	// The partially restarted deployment checkpoints and fully restarts fine.
	snaps2 := make(map[string]SnapshotRef)
	for _, inst := range newDep.Instances {
		inst.VM.FS().WriteFile("/progress", []byte("after"))
		ref, err := inst.Proxy.RequestCheckpoint(ctx)
		if err != nil {
			t.Fatalf("%s checkpoint after partial restart: %v", inst.VMID, err)
		}
		snaps2[inst.VMID] = ref
	}
	id2, err := c.RecordCheckpoint(newDep, snaps2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(ctx, newDep, id2); err != nil {
		t.Fatalf("full restart after partial restart: %v", err)
	}
}

// TestPruneSweepsCurrentMembership: the mark-and-sweep prune follows the
// repository's live membership — a provider decommissioned after deploy is
// skipped even once it goes dark, and a provider that JOINed after deploy is
// swept — instead of the deploy-time node snapshot.
func TestPruneSweepsCurrentMembership(t *testing.T) {
	c, err := New(Config{Nodes: 3, MetaProviders: 2, Replication: 2, Dedup: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	base := uploadBase(t, c, 128*1024)
	dep, err := c.Deploy(ctx, 1, base, vm.Config{BlockSize: 512, BootNoiseBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	inst := dep.Instances[0]
	checkpoint := func(i int) int {
		t.Helper()
		inst.VM.FS().WriteFile("/state", bytes.Repeat([]byte{byte(i + 1)}, 32*1024))
		ref, err := inst.Proxy.RequestCheckpoint(ctx)
		if err != nil {
			t.Fatal(err)
		}
		id, err := c.RecordCheckpoint(dep, map[string]SnapshotRef{inst.VMID: ref})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	for i := 0; i < 3; i++ {
		checkpoint(i)
	}

	// Decommission a non-hosting node's provider and take it dark, then
	// JOIN a fresh node.
	var victim *Node
	for _, n := range c.Nodes() {
		if n != inst.Node {
			victim = n
			break
		}
	}
	r := repair.New(repair.Config{Client: c.Client()})
	if _, err := r.Drain(ctx, victim.DataAddr); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c.Network().Partition(victim.DataAddr)
	if _, err := c.AddNode(ctx); err != nil {
		t.Fatal(err)
	}

	// More checkpoints land on the membership that now includes the joined
	// provider; prune must sweep it and skip the dark decommissioned one.
	lastID := checkpoint(3)
	stats, err := c.Prune(ctx, dep, lastID)
	if err != nil {
		t.Fatalf("Prune across churned membership: %v", err)
	}
	if stats.LiveChunks == 0 {
		t.Error("prune marked nothing live")
	}
	if _, err := c.Restart(ctx, dep, lastID); err != nil {
		t.Fatalf("restart after prune: %v", err)
	}
}
