package simcloud

// SuccessiveResult is one row of the Figure 5 experiment.
type SuccessiveResult struct {
	Round        int
	TimeSeconds  float64
	StorageBytes float64 // cumulative persistent storage used
}

// SuccessiveCheckpoints models Figure 5: one VM, `rounds` checkpoints of
// the same stateBytes buffer (refilled with fresh data each round, so every
// round dirties stateBytes anew). Returns per-round completion time and
// cumulative storage.
//
// The mechanisms:
//
//   - BlobCR commits only the delta since the last snapshot, so time is
//     flat and storage grows by ~stateBytes per round;
//   - qcow2-disk must copy the whole local qcow2 file, which grows by
//     ~stateBytes every round (the guest file system allocates fresh blocks
//     for each dump), and every copy becomes a separate PVFS file, so
//     storage accumulates duplicated content;
//   - qcow2-full appends an internal snapshot (vmstate) to the image and
//     copies the whole grown image; only the latest image file needs to be
//     kept, so storage grows linearly but from a much larger base.
func SuccessiveCheckpoints(p Params, a Approach, rounds int, stateBytes float64) []SuccessiveResult {
	out := make([]SuccessiveResult, 0, rounds)
	dump := p.DumpBytes(a, stateBytes)
	dumpTime := dump / p.DiskBW
	var cumStorage float64

	for r := 1; r <= rounds; r++ {
		var t, storage float64
		switch a {
		case BlobCRApp, BlobCRBlcr:
			// Incremental: the delta is the rewritten state (+ OS noise on
			// the first round).
			delta := p.SnapshotBytes(a, stateBytes, 1)
			if r > 1 {
				delta -= p.BlobNoiseBytes()
			}
			reqs := delta / p.ChunkSize * p.MetaOpsPerChunk
			t = dumpTime + p.CommitBaseTime + delta/p.BlobCommitRate + reqs*p.MetaSvcTime/float64(p.MetaProviders) + p.VMSuspendResume
			cumStorage += delta
			storage = cumStorage

		case Qcow2DiskApp, Qcow2DiskBlcr:
			// The local image holds every round's dump so far.
			file := float64(r)*p.SnapshotBytes(a, stateBytes, 1) - float64(r-1)*p.Qcow2NoiseBytes()
			reqs := file / p.ChunkSize
			if a == Qcow2DiskBlcr {
				reqs *= p.OpsFactorBlcr
			}
			svc := reqs * p.PVFSSvcTime / float64(p.PVFSServers)
			t = dumpTime + file/p.PVFSCopyRate + svc + p.VMSuspendResume
			cumStorage += file // each copy is a separate PVFS file
			storage = cumStorage

		case Qcow2Full:
			// The image accumulates one vmstate per snapshot plus the
			// dirtied disk content; only the latest image is kept.
			vmstate := p.VMStateBytes(stateBytes)
			file := stateBytes + p.Qcow2NoiseBytes() + float64(r)*vmstate
			reqs := vmstate/p.VMStatePage + (file-vmstate)/p.ChunkSize
			svc := reqs * p.PVFSSvcTime / float64(p.PVFSServers)
			t = vmstate/p.SavevmRate + file/p.PVFSCopyRate + svc + p.VMSuspendResume
			storage = file
		}
		out = append(out, SuccessiveResult{Round: r, TimeSeconds: t, StorageBytes: storage})
	}
	return out
}
