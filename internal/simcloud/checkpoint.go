package simcloud

import (
	"blobcr/internal/sim"
)

// cluster is the simulated hardware: one disk resource per node (PVFS
// service nodes included) and the two aggregate request-service resources
// (BlobSeer metadata providers, PVFS servers).
type cluster struct {
	eng     *sim.Engine
	disks   []*sim.Resource
	metaSvc *sim.Resource // capacity in metadata ops/s
	pvfsSvc *sim.Resource // capacity in stripe requests/s
}

func newCluster(p Params) *cluster {
	eng := sim.NewEngine()
	nDisks := p.Nodes
	if p.PVFSServers > nDisks {
		nDisks = p.PVFSServers
	}
	c := &cluster{eng: eng}
	for i := 0; i < nDisks; i++ {
		c.disks = append(c.disks, sim.NewResource(eng, diskName(i), p.DiskBW))
	}
	// Service resources are denominated in server-seconds: a request that
	// takes svcTime at a server consumes svcTime units, and the pool
	// delivers one unit per server per second.
	c.metaSvc = sim.NewResource(eng, "meta-svc", float64(p.MetaProviders))
	c.pvfsSvc = sim.NewResource(eng, "pvfs-svc", float64(p.PVFSServers))
	return c
}

func diskName(i int) string { return "disk-" + itoa3(i) }

func itoa3(i int) string {
	b := []byte{'0' + byte(i/100%10), '0' + byte(i/10%10), '0' + byte(i%10)}
	return string(b)
}

// snapshotRequests returns the number of storage requests the snapshot
// transfer of one VM issues, per approach.
func snapshotRequests(p Params, a Approach, outBytes, vmstateBytes float64) float64 {
	switch a {
	case BlobCRApp, BlobCRBlcr:
		return outBytes / p.ChunkSize * p.MetaOpsPerChunk
	case Qcow2DiskApp:
		return outBytes / p.ChunkSize
	case Qcow2DiskBlcr:
		// blcr's page-sized writes fragment the qcow2 allocation; the copy
		// issues more, smaller PVFS requests.
		return outBytes / p.ChunkSize * p.OpsFactorBlcr
	case Qcow2Full:
		// The vmstate is written in savevm pages; the disk part in stripes.
		return vmstateBytes/p.VMStatePage + (outBytes-vmstateBytes)/p.ChunkSize
	default:
		return 0
	}
}

// CheckpointTime simulates one global checkpoint of nVMs instances, each
// holding stateBytes of application state spread over procsPerVM processes,
// and returns the completion time in seconds (Figures 2 and 6).
func CheckpointTime(p Params, a Approach, nVMs int, stateBytes float64, procsPerVM int) float64 {
	if nVMs < 1 {
		return 0
	}
	c := newCluster(p)
	eng := c.eng

	dump := p.DumpBytes(a, stateBytes)
	out := p.SnapshotBytes(a, stateBytes, procsPerVM)
	if a.IsBlobCR() && p.Replication > 1 {
		out *= float64(p.Replication)
	}
	vmstate := 0.0
	if a == Qcow2Full {
		vmstate = p.VMStateBytes(stateBytes)
	}
	reqs := snapshotRequests(p, a, out, vmstate)
	drain := p.DrainBase + p.DrainPerProc*float64(nVMs*procsPerVM)

	// Client pipeline cap for the snapshot transfer.
	var pipeRate float64
	if a.IsBlobCR() {
		pipeRate = p.BlobCommitRate
	} else {
		pipeRate = p.PVFSCopyRate
	}

	dumped := sim.NewWaitGroup(eng, nVMs)

	for i := 0; i < nVMs; i++ {
		i := i
		disk := c.disks[i%p.Nodes]
		pipe := sim.NewResource(eng, "pipe-"+itoa3(i), pipeRate)
		eng.Go("vm", func(pr *sim.Proc) {
			// Coordination: markers / barrier before the dump.
			pr.Wait(drain)
			// Dump process state into the guest file system (local disk
			// write); qcow2-full serializes the VM state instead, capped
			// by the savevm rate.
			if a == Qcow2Full {
				savePipe := sim.NewResource(eng, "savevm-"+itoa3(i), p.SavevmRate)
				pr.Transfer(vmstate, savePipe, disk)
			} else {
				pr.Transfer(dump, disk)
			}
			dumped.Done()
			dumped.Wait(pr) // global checkpoint proceeds together
			pr.Wait(p.VMSuspendResume / 2)

			if a.IsBlobCR() {
				// CLONE/COMMIT fixed cost, parallel chunk upload, then the
				// metadata publication.
				pr.Wait(p.CommitBaseTime)
				pr.Transfer(out, pipe, disk)
				pr.Transfer(reqs*p.MetaSvcTime, c.metaSvc)
			} else {
				// File copy into PVFS; request servicing happens at the
				// servers concurrently with the byte stream.
				done := sim.NewWaitGroup(eng, 1)
				eng.Go("ops", func(op *sim.Proc) {
					op.Transfer(reqs*p.PVFSSvcTime, c.pvfsSvc)
					done.Done()
				})
				pr.Transfer(out, pipe, disk)
				done.Wait(pr)
			}
			pr.Wait(p.VMSuspendResume / 2)
		})
	}

	// Inbound write load on the storage nodes: the aggregate snapshot bytes
	// land on the providers' disks, spread uniformly. It starts once the
	// dumps complete (that is when upload traffic begins).
	eng.Go("inbound", func(pr *sim.Proc) {
		dumped.Wait(pr)
		targets := p.Nodes
		if !a.IsBlobCR() {
			targets = p.PVFSServers
		}
		perDisk := out * float64(nVMs) / float64(targets)
		wg := sim.NewWaitGroup(eng, targets)
		for j := 0; j < targets; j++ {
			j := j
			eng.Go("in", func(q *sim.Proc) {
				q.Transfer(perDisk, c.disks[j])
				wg.Done()
			})
		}
		wg.Wait(pr)
	})

	end, err := eng.Run()
	if err != nil {
		panic("simcloud: checkpoint simulation: " + err.Error())
	}
	return end
}

// RestartTime simulates re-deploying nVMs instances from their disk
// snapshots and restoring the application state (Figure 3).
func RestartTime(p Params, a Approach, nVMs int, stateBytes float64, procsPerVM int) float64 {
	if nVMs < 1 {
		return 0
	}
	c := newCluster(p)
	eng := c.eng

	dump := p.DumpBytes(a, stateBytes)
	vmstate := p.VMStateBytes(stateBytes)

	var pipeRate float64
	if a.IsBlobCR() {
		pipeRate = p.BlobFetchRate
	} else {
		pipeRate = p.PVFSReadRate
	}

	// Total bytes each instance pulls from the repository.
	var perVM float64
	if a == Qcow2Full {
		// loadvm: the whole VM state plus the hot disk content; no reboot,
		// no state files to read.
		perVM = vmstate + p.Qcow2NoiseBytes()
	} else {
		// Reboot reads the OS's hot image content, then the processes read
		// their state dumps.
		perVM = p.BootReadBytes + dump
	}

	// Request service demand in server-seconds. Restarts read on demand at
	// chunk granularity regardless of how the data was written, which is
	// why the paper finds app-level and process-level restart "very close"
	// — no blcr fragmentation factor here. Boot-time reads hit the shared
	// base image, which the storage servers serve mostly from page cache
	// after the first instance (CachedOpsFactor); per-VM snapshot content
	// is cold.
	var svcDemand float64
	switch {
	case a == Qcow2Full:
		svcDemand = (vmstate/p.VMStatePage)*p.PVFSReadSvcTime +
			(perVM-vmstate)/p.ChunkSize*p.PVFSReadSvcTime*p.CachedOpsFactor
	case a.IsBlobCR():
		svcDemand = (p.BootReadBytes/p.ChunkSize*p.CachedOpsFactor + dump/p.ChunkSize) * p.MetaSvcTime
	default:
		svcDemand = p.BootReadBytes/p.ChunkSize*p.PVFSReadSvcTime*p.CachedOpsFactor +
			dump/p.ChunkSize*p.PVFSReadSvcTime
	}

	for i := 0; i < nVMs; i++ {
		i := i
		pipe := sim.NewResource(eng, "pipe-"+itoa3(i), pipeRate)
		eng.Go("vm", func(pr *sim.Proc) {
			pr.Wait(p.PlacementDelay)
			// Request servicing interleaves with the lazy fetches.
			svcRes := c.pvfsSvc
			if a.IsBlobCR() {
				svcRes = c.metaSvc
			}
			done := sim.NewWaitGroup(eng, 1)
			eng.Go("ops", func(op *sim.Proc) {
				op.Transfer(svcDemand, svcRes)
				done.Done()
			})
			if a == Qcow2Full {
				pr.Transfer(perVM, pipe)
				done.Wait(pr)
				pr.Wait(p.VMSuspendResume) // resume from the loaded state
			} else {
				// Boot: OS reads interleaved with boot computation, then
				// the state files are read back.
				pr.Transfer(p.BootReadBytes, pipe)
				pr.Wait(p.BootCompute)
				pr.Transfer(dump, pipe)
				done.Wait(pr)
			}
		})
	}

	// Outbound read load on the provider disks.
	eng.Go("outbound", func(pr *sim.Proc) {
		targets := p.Nodes
		if !a.IsBlobCR() {
			targets = p.PVFSServers
		}
		// The shared base-image content is served once from disk (page
		// cache absorbs repeats); per-VM state is distinct.
		var total float64
		if a == Qcow2Full {
			total = (vmstate + p.Qcow2NoiseBytes()) * float64(nVMs)
		} else {
			total = p.BootReadBytes + dump*float64(nVMs)
		}
		perDisk := total / float64(targets)
		wg := sim.NewWaitGroup(eng, targets)
		for j := 0; j < targets; j++ {
			j := j
			eng.Go("out", func(q *sim.Proc) {
				q.Transfer(perDisk, c.disks[j])
				wg.Done()
			})
		}
		wg.Wait(pr)
	})

	end, err := eng.Run()
	if err != nil {
		panic("simcloud: restart simulation: " + err.Error())
	}
	return end
}
