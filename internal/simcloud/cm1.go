package simcloud

// CM1 workload geometry (Section 4.4): quad-core VM instances hosting 4 MPI
// processes each, weak scaling with 50x50 subdomains. The per-process state
// sizes are set so the per-VM snapshot sizes land on Table 1.
type CM1Params struct {
	ProcsPerVM       int
	AppStatePerProc  float64 // prognostic fields dumped by CM1's own writer
	BlcrStatePerProc float64 // full process image (fields + work arrays + code)
	// SyncFactor scales the coordination cost: CM1's ranks take longer to
	// drain channels than the synthetic benchmark (halo traffic in flight).
	SyncFactor float64
}

// DefaultCM1 returns the calibrated CM1 workload.
func DefaultCM1() CM1Params {
	return CM1Params{
		ProcsPerVM:       4,
		AppStatePerProc:  9.8 * MB,
		BlcrStatePerProc: 28.3 * MB,
		SyncFactor:       1.6,
	}
}

// stateBytesPerVM returns the application state per VM for the approach.
func (c CM1Params) stateBytesPerVM(a Approach) float64 {
	if a.IsBlcr() {
		// blcr dumps the whole process image; DumpBytes adds only the
		// small per-dump overhead, so fold the full image size here.
		return float64(c.ProcsPerVM) * c.BlcrStatePerProc
	}
	return float64(c.ProcsPerVM) * c.AppStatePerProc
}

// CM1SnapshotBytes returns the per-VM disk snapshot size (Table 1).
func CM1SnapshotBytes(p Params, c CM1Params, a Approach) float64 {
	return p.SnapshotBytes(a, c.stateBytesPerVM(a), c.ProcsPerVM)
}

// CM1CheckpointTime returns the global checkpoint completion time for
// nProcs MPI processes (nProcs/ProcsPerVM instances), Figure 6.
func CM1CheckpointTime(p Params, c CM1Params, a Approach, nProcs int) float64 {
	nVMs := nProcs / c.ProcsPerVM
	if nVMs < 1 {
		nVMs = 1
	}
	q := p
	q.DrainBase *= c.SyncFactor
	q.DrainPerProc *= c.SyncFactor
	return CheckpointTime(q, a, nVMs, c.stateBytesPerVM(a), c.ProcsPerVM)
}
