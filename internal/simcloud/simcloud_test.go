package simcloud

import (
	"math"
	"testing"
)

// The tests assert the paper's qualitative results (who wins, by roughly
// what factor, what grows how) rather than absolute seconds.

func TestApproachStrings(t *testing.T) {
	want := map[Approach]string{
		BlobCRApp:     "BlobCR-app",
		Qcow2DiskApp:  "qcow2-disk-app",
		BlobCRBlcr:    "BlobCR-blcr",
		Qcow2DiskBlcr: "qcow2-disk-blcr",
		Qcow2Full:     "qcow2-full",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestSnapshotSizesMatchFigure4(t *testing.T) {
	p := Default()
	// Paper, Figure 4 (MB): minor OS updates ~13 (BlobCR) vs ~7 (qcow2);
	// blcr adds < 2 MB; full adds ~118 MB.
	cases := []struct {
		a        Approach
		state    float64
		min, max float64 // acceptable band in MB
	}{
		{BlobCRApp, 50 * MB, 60, 66},
		{Qcow2DiskApp, 50 * MB, 55, 59},
		{BlobCRBlcr, 50 * MB, 62, 68},
		{Qcow2DiskBlcr, 50 * MB, 56, 61},
		{Qcow2Full, 50 * MB, 170, 180},
		{BlobCRApp, 200 * MB, 210, 216},
		{Qcow2DiskApp, 200 * MB, 205, 209},
		{Qcow2Full, 200 * MB, 320, 330},
	}
	for _, c := range cases {
		got := p.SnapshotBytes(c.a, c.state, 1) / MB
		if got < c.min || got > c.max {
			t.Errorf("%s @%gMB: snapshot = %.1f MB, want in [%g, %g]", c.a, c.state/MB, got, c.min, c.max)
		}
	}
	// blcr overhead over app is small (< 2 MB + rounding).
	d := p.SnapshotBytes(BlobCRBlcr, 200*MB, 1) - p.SnapshotBytes(BlobCRApp, 200*MB, 1)
	if d < 0 || d > 3*MB {
		t.Errorf("blcr size overhead = %.1f MB, want (0, 3]", d/MB)
	}
	// Full VM overhead is ~118 MB regardless of buffer size.
	for _, s := range []float64{50 * MB, 200 * MB} {
		d := p.SnapshotBytes(Qcow2Full, s, 1) - s
		if d < 115*MB || d > 130*MB {
			t.Errorf("full overhead @%gMB = %.1f MB, want ~118-125", s/MB, d/MB)
		}
	}
}

func TestCheckpointScalesWithConcurrency(t *testing.T) {
	p := Default()
	for _, a := range Approaches {
		t1 := CheckpointTime(p, a, 1, 200*MB, 1)
		t120 := CheckpointTime(p, a, 120, 200*MB, 1)
		if t120 <= t1 {
			t.Errorf("%s: no increase with concurrency (%.1f -> %.1f)", a, t1, t120)
		}
	}
}

func TestFigure2Orderings(t *testing.T) {
	p := Default()
	at := func(a Approach, n int, s float64) float64 { return CheckpointTime(p, a, n, s, 1) }

	// qcow2-full is the worst everywhere.
	for _, n := range []int{1, 60, 120} {
		for _, s := range []float64{50 * MB, 200 * MB} {
			full := at(Qcow2Full, n, s)
			for _, a := range Approaches[:4] {
				if at(a, n, s) >= full {
					t.Errorf("n=%d s=%gMB: %s >= qcow2-full", n, s/MB, a)
				}
			}
		}
	}

	// 200MB @120: BlobCR-app substantially faster than qcow2-disk-app
	// (paper: 60%), BlobCR-blcr ~2x faster than qcow2-disk-blcr, full >= 6x
	// BlobCR.
	bApp, qApp := at(BlobCRApp, 120, 200*MB), at(Qcow2DiskApp, 120, 200*MB)
	if r := qApp / bApp; r < 1.3 || r > 2.0 {
		t.Errorf("app ratio @120x200MB = %.2f, want ~1.6", r)
	}
	bBlcr, qBlcr := at(BlobCRBlcr, 120, 200*MB), at(Qcow2DiskBlcr, 120, 200*MB)
	if r := qBlcr / bBlcr; r < 1.8 || r > 3.0 {
		t.Errorf("blcr ratio @120x200MB = %.2f, want ~2x", r)
	}
	if r := at(Qcow2Full, 120, 200*MB) / bApp; r < 5 || r > 9 {
		t.Errorf("full ratio @120x200MB = %.2f, want ~6x", r)
	}

	// 50MB: the app variants are close (paper: "very close"), the blcr gap
	// is wider.
	rApp50 := at(Qcow2DiskApp, 120, 50*MB) / at(BlobCRApp, 120, 50*MB)
	rBlcr50 := at(Qcow2DiskBlcr, 120, 50*MB) / at(BlobCRBlcr, 120, 50*MB)
	if rApp50 > 1.6 {
		t.Errorf("app ratio @120x50MB = %.2f, want close to 1", rApp50)
	}
	if rBlcr50 <= rApp50 {
		t.Errorf("blcr gap (%.2f) not wider than app gap (%.2f) at 50MB", rBlcr50, rApp50)
	}
}

func TestFigure3RestartOrderings(t *testing.T) {
	p := Default()
	at := func(a Approach, n int, s float64) float64 { return RestartTime(p, a, n, s, 1) }

	// App-level and process-level restart are very close (paper).
	for _, s := range []float64{50 * MB, 200 * MB} {
		b := at(BlobCRApp, 120, s)
		bb := at(BlobCRBlcr, 120, s)
		if math.Abs(b-bb)/b > 0.1 {
			t.Errorf("BlobCR app vs blcr restart differ by >10%% at %gMB", s/MB)
		}
	}
	// BlobCR faster than qcow2-disk: >25% at 50MB, ~2x at 200MB.
	if r := at(Qcow2DiskApp, 120, 50*MB) / at(BlobCRApp, 120, 50*MB); r < 1.2 || r > 1.7 {
		t.Errorf("restart ratio @50MB = %.2f, want ~1.25-1.5", r)
	}
	if r := at(Qcow2DiskApp, 120, 200*MB) / at(BlobCRApp, 120, 200*MB); r < 1.6 || r > 2.5 {
		t.Errorf("restart ratio @200MB = %.2f, want ~2", r)
	}
	// Full VM restart is the worst at scale despite skipping the reboot.
	if at(Qcow2Full, 120, 200*MB) < 4*at(BlobCRApp, 120, 200*MB) {
		t.Error("full restart not >=4x slower at 120x200MB")
	}
	// ...but at n=1 the avoided reboot makes full competitive (the paper's
	// point is that contention cancels this advantage).
	if at(Qcow2Full, 1, 50*MB) > at(Qcow2DiskApp, 1, 50*MB) {
		t.Error("full restart at n=1 should benefit from skipping the reboot")
	}
}

func TestFigure5SuccessiveCheckpoints(t *testing.T) {
	p := Default()
	const S = 200 * MB

	blob := SuccessiveCheckpoints(p, BlobCRApp, 4, S)
	disk := SuccessiveCheckpoints(p, Qcow2DiskApp, 4, S)
	full := SuccessiveCheckpoints(p, Qcow2Full, 4, S)

	// BlobCR: flat times (perfect scalability in the paper's words).
	for i := 1; i < 4; i++ {
		if math.Abs(blob[i].TimeSeconds-blob[1].TimeSeconds) > 0.5 {
			t.Errorf("BlobCR round %d time %.1f differs from flat %.1f", i+1, blob[i].TimeSeconds, blob[1].TimeSeconds)
		}
	}
	// qcow2-disk and qcow2-full: clearly growing times.
	for _, rs := range [][]SuccessiveResult{disk, full} {
		for i := 1; i < 4; i++ {
			if rs[i].TimeSeconds <= rs[i-1].TimeSeconds {
				t.Errorf("round %d time did not grow (%.1f -> %.1f)", i+1, rs[i-1].TimeSeconds, rs[i].TimeSeconds)
			}
		}
	}
	// Growth per round for qcow2-disk is ~S/copyRate.
	growth := disk[3].TimeSeconds - disk[2].TimeSeconds
	if growth < 5 || growth > 20 {
		t.Errorf("qcow2-disk per-round growth = %.1f s, implausible", growth)
	}

	// Storage: BlobCR linear in S; qcow2-disk super-linear accumulation
	// (sum of growing files); full linear with a large base.
	if got := blob[3].StorageBytes; got > 4*S+2*p.BlobNoiseBytes() {
		t.Errorf("BlobCR storage after 4 = %.0f MB, want ~4x200", got/MB)
	}
	if disk[3].StorageBytes < 2.2*blob[3].StorageBytes {
		t.Errorf("qcow2-disk storage (%.0f MB) not >2.2x BlobCR (%.0f MB)", disk[3].StorageBytes/MB, blob[3].StorageBytes/MB)
	}
	// Paper's Figure 5(b) axis: qcow2-disk approaches ~2000 MB at round 4.
	if d := disk[3].StorageBytes / MB; d < 1800 || d > 2300 {
		t.Errorf("qcow2-disk storage @4 = %.0f MB, want ~2030", d)
	}
	// full: linear increments.
	inc1 := full[1].StorageBytes - full[0].StorageBytes
	inc3 := full[3].StorageBytes - full[2].StorageBytes
	if math.Abs(inc1-inc3) > 1*MB {
		t.Errorf("full storage increments not linear: %.0f vs %.0f MB", inc1/MB, inc3/MB)
	}
}

func TestTable1CM1SnapshotSizes(t *testing.T) {
	p := Default()
	c := DefaultCM1()
	// Paper Table 1 (MB): 52 / 45 / 127 / 120.
	cases := []struct {
		a    Approach
		want float64
		tol  float64
	}{
		{BlobCRApp, 52, 4},
		{Qcow2DiskApp, 45, 4},
		{BlobCRBlcr, 127, 6},
		{Qcow2DiskBlcr, 120, 6},
	}
	for _, cse := range cases {
		got := CM1SnapshotBytes(p, c, cse.a) / MB
		if math.Abs(got-cse.want) > cse.tol {
			t.Errorf("%s: CM1 snapshot = %.0f MB, want %.0f±%.0f", cse.a, got, cse.want, cse.tol)
		}
	}
}

func TestFigure6CM1Checkpoint(t *testing.T) {
	p := Default()
	c := DefaultCM1()
	at := func(a Approach, n int) float64 { return CM1CheckpointTime(p, c, a, n) }

	// All four approaches grow with process count.
	for _, a := range Approaches[:4] {
		if at(a, 400) <= at(a, 4) {
			t.Errorf("%s: no growth from 4 to 400 processes", a)
		}
	}
	// At 400 processes: BlobCR-app beats qcow2-disk-app by >=~10%;
	// BlobCR-blcr beats qcow2-disk-blcr by ~2x.
	if r := at(Qcow2DiskApp, 400) / at(BlobCRApp, 400); r < 1.05 {
		t.Errorf("CM1 app ratio @400 = %.2f, want >= ~1.1", r)
	}
	if r := at(Qcow2DiskBlcr, 400) / at(BlobCRBlcr, 400); r < 1.6 {
		t.Errorf("CM1 blcr ratio @400 = %.2f, want ~2", r)
	}
	// blcr checkpoints cost more than app-level (bigger dumps).
	if at(BlobCRBlcr, 400) <= at(BlobCRApp, 400) {
		t.Error("CM1 blcr not slower than app-level for BlobCR")
	}
}

func TestNoiseAccounting(t *testing.T) {
	p := Default()
	b, q := p.BlobNoiseBytes()/MB, p.Qcow2NoiseBytes()/MB
	if b < 11 || b > 15 {
		t.Errorf("BlobCR noise = %.1f MB, want ~13", b)
	}
	if q < 6 || q > 8 {
		t.Errorf("qcow2 noise = %.1f MB, want ~7", q)
	}
	if b <= q {
		t.Error("chunk-granular noise must exceed cluster-granular noise")
	}
}

func TestDumpBytes(t *testing.T) {
	p := Default()
	if p.DumpBytes(Qcow2Full, 50*MB) != 0 {
		t.Error("full VM approach must not dump state files")
	}
	if p.DumpBytes(BlobCRBlcr, 50*MB) <= p.DumpBytes(BlobCRApp, 50*MB) {
		t.Error("blcr dump must exceed app dump")
	}
}

func TestZeroVMs(t *testing.T) {
	p := Default()
	if CheckpointTime(p, BlobCRApp, 0, MB, 1) != 0 {
		t.Error("zero VMs should cost zero")
	}
	if RestartTime(p, BlobCRApp, 0, MB, 1) != 0 {
		t.Error("zero VMs restart should cost zero")
	}
}

func TestOptimalInterval(t *testing.T) {
	// Young/Daly: for C << M the interval is close to sqrt(2*C*M) - C and
	// grows with both inputs.
	c, m := 10.0, 4*3600.0
	got := OptimalInterval(c, m)
	young := math.Sqrt(2*c*m) - c
	if got < young || got > young*1.1 {
		t.Errorf("OptimalInterval(%v, %v) = %v, want within 10%% above Young's %v", c, m, got, young)
	}
	if OptimalInterval(4*c, m) <= got {
		t.Error("interval did not grow with checkpoint cost")
	}
	if OptimalInterval(c, 4*m) <= got {
		t.Error("interval did not grow with MTBF")
	}
	// Degenerate regimes.
	if OptimalInterval(0, m) != 0 || OptimalInterval(c, 0) != 0 {
		t.Error("nonpositive inputs must yield 0")
	}
	if OptimalInterval(3*m, m) != m {
		t.Error("cost >= 2*MTBF must fall back to the MTBF")
	}
}

func TestOptimalCheckpointIntervalAtScale(t *testing.T) {
	p := Default()
	iv := p.OptimalCheckpointInterval(BlobCRApp, 120, 200*MB, 1)
	cost := CheckpointTime(p, BlobCRApp, 120, 200*MB, 1)
	if iv <= 0 {
		t.Fatalf("interval = %v", iv)
	}
	// Sanity: the interval dwarfs the checkpoint cost for a 4h MTBF, and
	// BlobCR's cheaper checkpoints buy a shorter (more protective) interval
	// than qcow2-full's expensive ones.
	if iv < 10*cost {
		t.Errorf("interval %v suspiciously close to cost %v", iv, cost)
	}
	if full := p.OptimalCheckpointInterval(Qcow2Full, 120, 200*MB, 1); full <= iv {
		t.Errorf("qcow2-full interval %v not longer than BlobCR's %v", full, iv)
	}
}
