package simcloud

// DedupResult is one row of the successive-checkpoint dedup experiment: the
// Figure 5 workload re-run with the content-addressed repository
// (internal/cas) in the commit path.
type DedupResult struct {
	Round         int
	TimeSeconds   float64
	LogicalBytes  float64 // bytes the round's commit represents
	TransferBytes float64 // bytes actually shipped after fingerprint dedup
	StorageBytes  float64 // cumulative physical repository storage
	HitRate       float64 // fraction of chunks found by "have fingerprint?"
}

// SuccessiveDedupCheckpoints models the Figure 5 successive-checkpoint
// workload for BlobCR with the content-addressed repository enabled: one VM,
// `rounds` checkpoints of the same stateBytes buffer, where `overlap` is the
// fraction of each round's dirty chunks whose content is byte-identical to
// content the repository already holds (zero pages, guest-FS re-writes,
// convergent application state; stdchk reports 0.25-0.80 for checkpoint
// streams).
//
// Mechanisms relative to the plain BlobCR commit:
//
//   - every dirty chunk is fingerprinted before upload (SHA-256, HashRate);
//   - each chunk costs one "have fingerprint?" round trip (CasRefSvcTime at
//     the provider, pipelined like the metadata ops);
//   - only missed chunks ship their body, so transfer and physical storage
//     shrink by the hit rate while logical bytes are unchanged;
//   - retired snapshots are reclaimed by refcount, so cumulative storage is
//     physical bytes only (no duplicated content accumulates).
//
// The first round dedups only against the base image already in the
// repository, so its hit rate is half the steady-state overlap.
func SuccessiveDedupCheckpoints(p Params, rounds int, stateBytes, overlap float64) []DedupResult {
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	out := make([]DedupResult, 0, rounds)
	dump := p.DumpBytes(BlobCRApp, stateBytes)
	dumpTime := dump / p.DiskBW
	var cumStorage float64

	for r := 1; r <= rounds; r++ {
		delta := p.SnapshotBytes(BlobCRApp, stateBytes, 1)
		hit := overlap
		if r == 1 {
			delta -= 0 // first round carries the OS noise, like Figure 5
			hit = overlap / 2
		} else {
			delta -= p.BlobNoiseBytes()
		}
		chunks := delta / p.ChunkSize
		transfer := delta * (1 - hit)

		// Commit pipeline: dump, fingerprint, have-fingerprint round trips,
		// body upload of the misses, metadata publication.
		hashTime := delta / p.HashRate
		refTime := chunks * p.CasRefSvcTime
		metaReqs := chunks * p.MetaOpsPerChunk
		t := dumpTime + p.CommitBaseTime + hashTime + refTime +
			transfer/p.BlobCommitRate + metaReqs*p.MetaSvcTime/float64(p.MetaProviders) +
			p.VMSuspendResume

		cumStorage += transfer
		out = append(out, DedupResult{
			Round:         r,
			TimeSeconds:   t,
			LogicalBytes:  delta,
			TransferBytes: transfer,
			StorageBytes:  cumStorage,
			HitRate:       hit,
		})
	}
	return out
}
