// Package simcloud models the paper's 120-node Grid'5000 deployment at
// experiment scale, using the flow-level discrete-event simulator
// (internal/sim) to regenerate every figure of the evaluation section.
//
// The functional packages (blobseer, mirror, qcow2, pvfs, guestfs, blcr)
// prove the system is correct; this package predicts what it costs at a
// scale a single machine cannot host (120 VMs x 2 GB images x 200 MB
// checkpoints). The model reproduces the mechanisms that differentiate the
// five approaches:
//
//   - BlobCR commits move only chunk-granular deltas, in parallel, to data
//     providers spread over all compute nodes; metadata goes to 20
//     decentralized metadata providers (contention appears only at high
//     writer counts).
//   - qcow2-over-PVFS checkpoints copy the whole (growing) local qcow2
//     file into PVFS as a new file; every 256 KB stripe costs a PVFS
//     server-side request service, so 120 concurrent copiers queue on the
//     servers' request processing.
//   - blcr dumps write the process image in page-sized scattered writes,
//     fragmenting the qcow2 cluster allocation; the subsequent file copy
//     issues correspondingly more, smaller PVFS requests (OpsFactorBlcr).
//     BlobCR's local modification log is chunk-structured, so it is
//     unaffected.
//   - qcow2-full additionally serializes the whole VM state (RAM +
//     devices) into the image before copying it, and the vmstate is
//     written in small savevm pages, multiplying request counts.
//
// Bandwidths and latencies are the paper's measured numbers (55 MB/s local
// disks, 117.5 MB/s network). The per-request service costs and client
// pipeline rates are calibrated so the reported end-point ratios of the
// paper hold (see DESIGN.md, "Substitutions"); the *shapes* — who wins,
// where gaps open, what grows linearly — emerge from the mechanisms above.
package simcloud

import (
	"fmt"
	"math"
)

// Approach identifies one of the five evaluated configurations.
type Approach int

// The five approaches of Section 4.2.
const (
	BlobCRApp Approach = iota
	Qcow2DiskApp
	BlobCRBlcr
	Qcow2DiskBlcr
	Qcow2Full
)

// Approaches lists all five in the paper's plotting order.
var Approaches = []Approach{BlobCRApp, Qcow2DiskApp, BlobCRBlcr, Qcow2DiskBlcr, Qcow2Full}

// String returns the paper's name for the approach.
func (a Approach) String() string {
	switch a {
	case BlobCRApp:
		return "BlobCR-app"
	case Qcow2DiskApp:
		return "qcow2-disk-app"
	case BlobCRBlcr:
		return "BlobCR-blcr"
	case Qcow2DiskBlcr:
		return "qcow2-disk-blcr"
	case Qcow2Full:
		return "qcow2-full"
	default:
		return fmt.Sprintf("approach(%d)", int(a))
	}
}

// IsBlobCR reports whether the approach snapshots through BlobSeer.
func (a Approach) IsBlobCR() bool { return a == BlobCRApp || a == BlobCRBlcr }

// IsBlcr reports whether process state is captured by blcr.
func (a Approach) IsBlcr() bool { return a == BlobCRBlcr || a == Qcow2DiskBlcr }

const (
	// MB is 10^6 bytes, the unit the paper reports in.
	MB = 1e6
)

// Params holds the testbed and calibration constants.
type Params struct {
	// Topology (Section 4.1/4.2).
	Nodes         int // compute nodes (120)
	PVFSServers   int // PVFS spans all nodes (compute + service)
	MetaProviders int // BlobSeer metadata providers (20)

	// Hardware, as measured by the paper.
	DiskBW     float64 // 55 MB/s
	NetBW      float64 // 117.5 MB/s
	NetLatency float64 // 0.1 ms

	// Striping.
	ChunkSize float64 // 256 KB for both BlobSeer and PVFS

	// Client-side pipeline rates (per-stream effective throughput, i.e.
	// what one VM's snapshot stream achieves against an idle service —
	// FUSE crossings, RPC turnarounds and copy loops included).
	BlobCommitRate float64 // mirror COMMIT upload
	BlobFetchRate  float64 // lazy fetch + adaptive prefetch on restart
	PVFSCopyRate   float64 // qemu-img/cp of the qcow2 file into PVFS
	PVFSReadRate   float64 // on-demand reads through the PVFS mount
	SavevmRate     float64 // qemu savevm serialization into the image

	// Server-side request service costs (the contention term).
	MetaSvcTime     float64 // per metadata-tree operation
	MetaOpsPerChunk float64 // tree nodes written/read per chunk
	PVFSSvcTime     float64 // per stripe write request at a PVFS server
	PVFSReadSvcTime float64 // per uncached stripe read request (restart)
	CachedOpsFactor float64 // service discount for page-cache hits (shared base image)
	OpsFactorBlcr   float64 // request multiplier for fragmented blcr images
	VMStatePage     float64 // savevm record granularity inside the image
	CommitBaseTime  float64 // fixed per-snapshot cost of CLONE/COMMIT (ioctl, version publish)

	// State geometry.
	OSOverheadBytes float64 // guest OS memory captured by savevm (118 MB)
	NoiseRawBytes   float64 // raw boot/daemon file writes
	NoiseFiles      int     // spread over this many files
	Qcow2Cluster    float64 // qcow2 allocation granularity
	BlcrExtraBytes  float64 // blcr dump overhead beyond the app buffer

	// Protocol and lifecycle constants.
	DrainBase       float64 // marker/coordination base cost
	DrainPerProc    float64 // per-process coordination cost
	VMSuspendResume float64
	PlacementDelay  float64 // middleware scheduling per restart
	BootCompute     float64 // guest OS boot CPU time
	BootReadBytes   float64 // image bytes read while booting

	// Content-addressed repository (internal/cas) costs.
	HashRate      float64 // SHA-256 fingerprinting throughput per client
	CasRefSvcTime float64 // per-chunk "have fingerprint?" round trip
	// DedupOverlap is the default fraction of dirty chunks whose content the
	// repository already holds (stdchk measures 0.25-0.80 for successive
	// checkpoints of the same application).
	DedupOverlap float64

	// Replication is the checkpoint chunk replica count (ablation knob;
	// the paper's experiments run with 1). Each extra replica multiplies
	// the bytes a BlobCR commit pushes into the repository.
	Replication int

	// MTBF is the deployment's mean time between failures in seconds — the
	// knob the autonomous supervisor (internal/supervisor) tunes its
	// checkpoint interval against. Grid'5000-era clusters of this size see
	// node failures every few hours; the default models 4 hours.
	MTBF float64
}

// Default returns the paper-calibrated parameters.
func Default() Params {
	return Params{
		Nodes:         120,
		PVFSServers:   142, // PVFS deployed on all nodes
		MetaProviders: 20,

		DiskBW:     55 * MB,
		NetBW:      117.5 * MB,
		NetLatency: 0.0001,

		ChunkSize: 256 * 1024,

		BlobCommitRate: 17 * MB,
		BlobFetchRate:  26 * MB,
		PVFSCopyRate:   20 * MB,
		PVFSReadRate:   15 * MB,
		SavevmRate:     25 * MB,

		MetaSvcTime:     0.0004,
		MetaOpsPerChunk: 2,
		PVFSSvcTime:     0.045,
		PVFSReadSvcTime: 0.055,
		CachedOpsFactor: 0.2,
		OpsFactorBlcr:   1.6,
		VMStatePage:     100 * 1024,
		CommitBaseTime:  0.8,

		OSOverheadBytes: 118 * MB,
		NoiseRawBytes:   6.8 * MB,
		NoiseFiles:      50,
		Qcow2Cluster:    4 * 1024,
		BlcrExtraBytes:  1.8 * MB,

		HashRate:      400 * MB, // SHA-256 on one 2009-era core
		CasRefSvcTime: 0.00015,  // fingerprint lookup + refcount bump, pipelined
		DedupOverlap:  0.4,

		DrainBase:       0.15,
		DrainPerProc:    0.004,
		VMSuspendResume: 0.25,
		PlacementDelay:  0.5,
		BootCompute:     9.0,
		BootReadBytes:   140 * MB,

		MTBF: 4 * 3600,
	}
}

// OptimalInterval returns the optimal time between checkpoints for a
// per-checkpoint cost ckptCost and a mean time between failures mtbf (both
// in seconds), using Daly's higher-order refinement of Young's
// sqrt(2*C*MTBF) formula:
//
//	T = sqrt(2*C*M) * (1 + (1/3)*sqrt(C/(2M)) + (1/9)*(C/(2M))) - C   for C < 2M
//	T = M                                                            otherwise
//
// The supervisor computes its live checkpoint cadence from this function
// with the cost it actually observes, and the simulator prices the same
// formula with modelled costs — the sim and the live system agree by
// construction.
func OptimalInterval(ckptCost, mtbf float64) float64 {
	if ckptCost <= 0 || mtbf <= 0 {
		return 0
	}
	if ckptCost >= 2*mtbf {
		return mtbf
	}
	r := ckptCost / (2 * mtbf)
	t := math.Sqrt(2*ckptCost*mtbf)*(1+math.Sqrt(r)/3+r/9) - ckptCost
	if t < 0 {
		return 0
	}
	return t
}

// OptimalCheckpointInterval prices the Daly interval for one approach at
// experiment scale: the per-checkpoint cost is the simulated completion time
// of a global checkpoint of nVMs instances, and the MTBF is p.MTBF.
func (p Params) OptimalCheckpointInterval(a Approach, nVMs int, stateBytes float64, procsPerVM int) float64 {
	return OptimalInterval(CheckpointTime(p, a, nVMs, stateBytes, procsPerVM), p.MTBF)
}

// roundUp rounds bytes up to a multiple of gran.
func roundUp(bytes, gran float64) float64 {
	if gran <= 0 {
		return bytes
	}
	return math.Ceil(bytes/gran) * gran
}

// BlobNoiseBytes is the chunk-rounded size of the OS's boot-time writes in
// a BlobCR snapshot: every touched file dirties at least one 256 KB chunk
// (the paper measures ~13 MB).
func (p Params) BlobNoiseBytes() float64 {
	perFile := p.NoiseRawBytes / float64(p.NoiseFiles)
	return float64(p.NoiseFiles) * roundUp(perFile, p.ChunkSize)
}

// Qcow2NoiseBytes is the cluster-rounded size of the same writes in a qcow2
// snapshot; qcow2 keeps arbitrarily small differences (the paper measures
// ~7 MB).
func (p Params) Qcow2NoiseBytes() float64 {
	perFile := p.NoiseRawBytes / float64(p.NoiseFiles)
	return float64(p.NoiseFiles) * roundUp(perFile, p.Qcow2Cluster)
}

// DumpBytes returns the bytes a process-state dump writes into the guest
// file system for a VM whose application state is stateBytes.
func (p Params) DumpBytes(a Approach, stateBytes float64) float64 {
	switch {
	case a == Qcow2Full:
		return 0 // savevm captures state directly; nothing is dumped to files
	case a.IsBlcr():
		return stateBytes + p.BlcrExtraBytes
	default:
		return stateBytes
	}
}

// SnapshotBytes returns the per-VM snapshot size (Figure 4 / Table 1).
// stateBytes is the application state per VM; dumpFiles is how many state
// files the VM's processes write (one per process).
func (p Params) SnapshotBytes(a Approach, stateBytes float64, dumpFiles int) float64 {
	if dumpFiles < 1 {
		dumpFiles = 1
	}
	perFile := p.DumpBytes(a, stateBytes) / float64(dumpFiles)
	switch a {
	case BlobCRApp, BlobCRBlcr:
		return float64(dumpFiles)*roundUp(perFile, p.ChunkSize) + p.BlobNoiseBytes()
	case Qcow2DiskApp, Qcow2DiskBlcr:
		return float64(dumpFiles)*roundUp(perFile, p.Qcow2Cluster) + p.Qcow2NoiseBytes()
	case Qcow2Full:
		// Disk part (boot noise only: processes were not dumped to files)
		// plus the serialized VM state: application memory + guest OS
		// memory overhead.
		return p.Qcow2NoiseBytes() + stateBytes + p.OSOverheadBytes
	default:
		return 0
	}
}

// VMStateBytes is the savevm payload for qcow2-full.
func (p Params) VMStateBytes(stateBytes float64) float64 {
	return stateBytes + p.OSOverheadBytes
}
