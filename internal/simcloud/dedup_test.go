package simcloud

import "testing"

func TestSuccessiveDedupSavesTransferAndStorage(t *testing.T) {
	p := Default()
	const rounds = 4
	state := 200 * MB

	plain := SuccessiveCheckpoints(p, BlobCRApp, rounds, state)
	dedup := SuccessiveDedupCheckpoints(p, rounds, state, p.DedupOverlap)
	if len(dedup) != rounds {
		t.Fatalf("got %d rounds, want %d", len(dedup), rounds)
	}

	for i, r := range dedup {
		if r.TransferBytes >= r.LogicalBytes {
			t.Errorf("round %d: transfer %.0f >= logical %.0f", r.Round, r.TransferBytes, r.LogicalBytes)
		}
		if r.HitRate <= 0 || r.HitRate >= 1 {
			t.Errorf("round %d: hit rate %.2f outside (0, 1)", r.Round, r.HitRate)
		}
		if i > 0 && r.StorageBytes <= dedup[i-1].StorageBytes {
			t.Errorf("round %d: storage did not grow", r.Round)
		}
	}
	// Steady-state hit rate exceeds the first round's (only the base image
	// to dedup against initially).
	if dedup[1].HitRate <= dedup[0].HitRate {
		t.Error("steady-state hit rate not above first round")
	}
	// The dedup repository stores strictly less than plain BlobCR for the
	// same workload, and the saving compounds across rounds.
	if dedup[rounds-1].StorageBytes >= plain[rounds-1].StorageBytes {
		t.Errorf("dedup storage %.0f MB >= plain %.0f MB",
			dedup[rounds-1].StorageBytes/MB, plain[rounds-1].StorageBytes/MB)
	}
	saved := plain[rounds-1].StorageBytes - dedup[rounds-1].StorageBytes
	if saved < 0.3*plain[rounds-1].StorageBytes {
		t.Errorf("dedup saved only %.0f%% storage at overlap %.2f",
			100*saved/plain[rounds-1].StorageBytes, p.DedupOverlap)
	}
	// Checkpoint time stays flat: fingerprinting costs are paid back by the
	// smaller transfer, so dedup rounds are no slower than plain rounds.
	for i := 1; i < rounds; i++ {
		if dedup[i].TimeSeconds > plain[i].TimeSeconds {
			t.Errorf("round %d: dedup %.2fs slower than plain %.2fs",
				i+1, dedup[i].TimeSeconds, plain[i].TimeSeconds)
		}
	}
}

func TestSuccessiveDedupOverlapBounds(t *testing.T) {
	p := Default()
	zero := SuccessiveDedupCheckpoints(p, 2, 50*MB, 0)
	for _, r := range zero {
		if r.TransferBytes != r.LogicalBytes {
			t.Errorf("overlap 0: round %d transferred %.0f of %.0f", r.Round, r.TransferBytes, r.LogicalBytes)
		}
	}
	clamped := SuccessiveDedupCheckpoints(p, 2, 50*MB, 1.5)
	if clamped[1].TransferBytes != 0 {
		t.Errorf("overlap clamped to 1: steady-state round still transferred %.0f", clamped[1].TransferBytes)
	}
}
