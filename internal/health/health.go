// Package health is the cluster health plane: fleet-wide scrape federation
// and a declarative SLO rule engine over metric history rings.
//
// The telemetry PRs left every signal point-in-time and per-process: a
// METRICS scrape answers for one registry, now. This package adds the two
// missing dimensions. obs.History (the metric history ring) adds time —
// windowed rates, quantiles and gauge extrema over the last N seconds. The
// Federator adds space — the supervisor pulls every proxy's, data
// provider's and the repair endpoint's exposition each heartbeat round and
// merges them into one cluster registry under node= labels, so a single
// scrape answers for the whole deployment. The Engine closes the loop:
// threshold and multi-window burn-rate rules evaluated over the federated
// ring turn "the drain backlog has grown for two windows straight" into a
// firing alert — a supervisor event, a health_alert_active gauge, and a
// DEGRADED answer on the HEALTH verb and /healthz.
package health

import (
	"context"
	"sync"
	"time"

	"blobcr/internal/blobseer"
	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// NodeLabel is the label key federation files every imported series under.
const NodeLabel = "node"

// Target is one scrape endpoint of the fleet.
type Target struct {
	Node string // node= label value its series are filed under
	Addr string
	// Binary selects the blobseer binary introspection ops (opMetricsGet)
	// instead of the METRICS text verb — data providers and the managers
	// speak no text protocol.
	Binary bool
}

// Config tunes the supervisor's health plane (supervisor.Config.Health).
type Config struct {
	// Every federates every Nth heartbeat round. 0 means every round.
	Every int
	// HistoryCap is the cluster registry's ring capacity (default 256
	// samples, one per federation round).
	HistoryCap int
	// Rules are the SLO rules evaluated after each federation round; nil
	// means DefaultRules.
	Rules []Rule
	// RepairAddr optionally names a served repair endpoint to scrape (its
	// series are filed under node="repair").
	RepairAddr string
	// NoProviders skips the co-located data providers (text proxies only).
	NoProviders bool
}

// Options tunes per-node observability in cloud.Config.Health: each node's
// proxy gets its own registry with a history ring, so the per-node series a
// federating supervisor collects are genuinely distinct.
type Options struct {
	// SampleEvery is each node ring's sample period (default 500ms).
	SampleEvery time.Duration
	// HistoryCap is each node ring's capacity (default 128 samples).
	HistoryCap int
}

// WithDefaults fills zero fields.
func (o Options) WithDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 500 * time.Millisecond
	}
	if o.HistoryCap <= 0 {
		o.HistoryCap = 128
	}
	return o
}

// Federator pulls metric expositions from a fleet of scrape targets and
// merges them into one cluster registry under node= labels (obs.Import).
// Scrapes are best-effort: a node dying mid-scrape keeps its last imported
// values (the supervisor's failure detector, not the scraper, decides what
// a silent node means) and drops federation_node_up{node=} to 0.
type Federator struct {
	Net transport.Network
	Reg *obs.Registry // the cluster registry scrapes merge into
	// Timeout bounds one whole sweep (default 2s).
	Timeout time.Duration
}

// Scrape runs one federation sweep over targets, concurrently. Metrics about
// the sweep itself land in Reg: federation_rounds_total,
// federation_scrapes_total, federation_scrape_errors_total{node=} and
// federation_node_up{node=} (1 only when every one of the node's targets
// answered this round).
func (f *Federator) Scrape(ctx context.Context, targets []Target) {
	timeout := f.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	f.Reg.Counter("federation_rounds_total").Inc()
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f.scrapeOne(ctx, targets[i])
		}(i)
	}
	wg.Wait()

	up := make(map[string]bool)
	for i, t := range targets {
		ok, seen := up[t.Node]
		if !seen {
			ok = true
		}
		if errs[i] != nil {
			ok = false
			f.Reg.Counter("federation_scrape_errors_total", obs.L(NodeLabel, t.Node)).Inc()
		} else {
			f.Reg.Counter("federation_scrapes_total").Inc()
		}
		up[t.Node] = ok
	}
	for node, ok := range up {
		v := int64(0)
		if ok {
			v = 1
		}
		f.Reg.Gauge("federation_node_up", obs.L(NodeLabel, node)).Set(v)
	}
}

func (f *Federator) scrapeOne(ctx context.Context, t Target) error {
	var points []obs.Point
	var err error
	if t.Binary {
		cl := &blobseer.Client{Net: f.Net}
		points, err = cl.RemoteMetrics(ctx, t.Addr)
	} else {
		var text string
		text, err = transport.ScrapeExposition(ctx, f.Net, t.Addr)
		if err == nil {
			points, err = obs.ParseProm(text)
		}
	}
	if err != nil {
		return err
	}
	f.Reg.Import(points, obs.L(NodeLabel, t.Node))
	return nil
}
