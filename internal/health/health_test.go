package health

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"blobcr/internal/obs"
	"blobcr/internal/transport"
)

// TestEngineFireResolveHysteresis walks one per-node threshold rule through
// its full life cycle: FireAfter consecutive breaches before the alert
// fires, ResolveAfter consecutive clears before it resolves, and a breach
// streak broken by one clear evaluation starting over from zero.
func TestEngineFireResolveHysteresis(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.StartHistory(0, 32)
	g := reg.Gauge("queue_depth", obs.L(NodeLabel, "n-1"))
	rule := Rule{
		Name:      "queue-deep",
		Signal:    Signal{Metric: "queue_depth", Agg: AggGaugeLast},
		PerNode:   true,
		Windows:   []time.Duration{time.Hour},
		Threshold: 100,
		FireAfter: 2, ResolveAfter: 2,
	}
	eng := NewEngine(reg, []Rule{rule})
	var fired, resolved []Alert
	eng.OnFire = func(a Alert) { fired = append(fired, a) }
	eng.OnResolve = func(a Alert) { resolved = append(resolved, a) }
	tick := func(depth int64) []Alert {
		g.Set(depth)
		h.Sample()
		return eng.Eval(h)
	}

	if active := tick(500); len(active) != 0 || len(fired) != 0 {
		t.Fatalf("fired after 1 breach with FireAfter 2: active %v", active)
	}
	active := tick(500)
	if len(fired) != 1 || len(active) != 1 {
		t.Fatalf("not firing after 2 breaches: fired %v active %v", fired, active)
	}
	a := fired[0]
	if a.Rule != "queue-deep" || a.Node != "n-1" || a.Value != 500 || a.Name() != "queue-deep(n-1)" {
		t.Errorf("fired alert %+v", a)
	}
	if a.Since.IsZero() || a.Since.After(time.Now()) {
		t.Errorf("alert Since not stamped at the breach streak's start: %v", a.Since)
	}
	snap := reg.Snapshot()
	if p := obs.Find(snap, "health_alert_active", obs.L("alert", "queue-deep"), obs.L(NodeLabel, "n-1")); p == nil || p.GaugeValue != 1 {
		t.Errorf("health_alert_active gauge not set: %+v", p)
	}
	if p := obs.Find(snap, "health_alerts_fired_total", obs.L("alert", "queue-deep")); p == nil || p.Value != 1 {
		t.Errorf("fired counter: %+v", p)
	}
	if ok, firing := eng.Status(); ok || len(firing) != 1 || firing[0] != "queue-deep(n-1)" {
		t.Errorf("Status while firing: ok=%v firing=%v", ok, firing)
	}

	if active := tick(10); len(active) != 1 || len(resolved) != 0 {
		t.Fatalf("resolved after 1 clear with ResolveAfter 2: active %v", active)
	}
	if active := tick(10); len(active) != 0 || len(resolved) != 1 {
		t.Fatalf("not resolved after 2 clears: active %v resolved %v", active, resolved)
	}
	snap = reg.Snapshot()
	if p := obs.Find(snap, "health_alert_active", obs.L("alert", "queue-deep"), obs.L(NodeLabel, "n-1")); p == nil || p.GaugeValue != 0 {
		t.Errorf("health_alert_active not cleared: %+v", p)
	}
	if p := obs.Find(snap, "health_alerts_resolved_total", obs.L("alert", "queue-deep")); p == nil || p.Value != 1 {
		t.Errorf("resolved counter: %+v", p)
	}
	if ok, _ := eng.Status(); !ok {
		t.Error("Status still degraded after resolve")
	}

	// A clear evaluation resets the breach streak: breach, clear, breach must
	// not fire with FireAfter 2.
	tick(500)
	tick(10)
	tick(500)
	if len(fired) != 1 {
		t.Errorf("interrupted breach streak fired anyway: %v", fired)
	}
}

// TestEngineMultiWindowBurnRate: with two windows that must both breach, an
// old spike stays quiet (the short window has gone clear) and only a
// sustained burn fires — the burn-rate semantics of the backlog rule.
func TestEngineMultiWindowBurnRate(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.StartHistory(0, 32)
	g := reg.Gauge("backlog_bytes")
	rule := Rule{
		Name:      "backlog-growing",
		Signal:    Signal{Metric: "backlog_bytes", Agg: AggGaugeDelta},
		Windows:   []time.Duration{500 * time.Millisecond, time.Hour},
		Threshold: 1 << 20,
		FireAfter: 1, ResolveAfter: 1,
	}
	eng := NewEngine(reg, []Rule{rule})

	g.Set(0)
	h.Sample()
	g.Set(8 << 20) // the spike
	h.Sample()
	time.Sleep(750 * time.Millisecond) // let the short window forget it
	g.Set(8 << 20)
	h.Sample()
	if active := eng.Eval(h); len(active) != 0 {
		t.Fatalf("old spike fired the burn-rate rule: %v (short window should be clear)", active)
	}

	// Growth inside the short window too: both windows breach, fires.
	g.Set(16 << 20)
	h.Sample()
	if active := eng.Eval(h); len(active) != 1 {
		t.Fatalf("sustained burn did not fire: %v", active)
	}
}

// TestEngineUnevaluableNeverBreaches: absent series, empty histograms and
// zero-denominator ratios make a rule unevaluable for the window — no data
// must never fire, even for Below rules whose threshold any value under it
// would breach.
func TestEngineUnevaluableNeverBreaches(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.StartHistory(0, 8)
	reg.Counter("hits_total").Add(100)
	reg.Counter("lookups_total") // exists, never increments: zero rate
	h.Sample()
	reg.Counter("hits_total").Add(100)
	h.Sample()

	rules := []Rule{
		{
			Name:      "missing-metric",
			Signal:    Signal{Metric: "no_such_series", Agg: AggGaugeLast},
			Windows:   []time.Duration{time.Hour},
			Threshold: -1, // any value would breach
		},
		{
			Name: "zero-denominator",
			Signal: Signal{
				Metric: "hits_total", Agg: AggRate,
				Div: &Signal{Metric: "lookups_total", Agg: AggRate},
			},
			Windows:   []time.Duration{time.Hour},
			Threshold: 0.01,
		},
		{
			Name:    "below-with-no-data",
			Signal:  Signal{Metric: "no_such_ratio", Agg: AggRate},
			Windows: []time.Duration{time.Hour},
			Below:   true, Threshold: 1e12,
		},
	}
	eng := NewEngine(reg, rules)
	if active := eng.Eval(h); len(active) != 0 {
		t.Errorf("unevaluable signals fired: %v", active)
	}
}

// TestFederatorMergeAndNodeDeath runs federation sweeps over two text
// endpoints while one node's registry is concurrently updated, then
// partitions a node away mid-fleet: the survivor's fresh values keep
// arriving, the dead node keeps its last imported values with
// federation_node_up dropped to 0, and healing brings it back. The
// concurrent updates make this meaningful under -race.
func TestFederatorMergeAndNodeDeath(t *testing.T) {
	net := transport.NewInProc()
	serve := func(reg *obs.Registry) transport.Server {
		srv, err := net.Listen("", func(_ context.Context, req []byte) ([]byte, error) {
			resp, handled := reg.TextReply(strings.Fields(string(req)))
			if !handled {
				return []byte("ERR unknown verb"), nil
			}
			return resp, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	reg0, reg1 := obs.NewRegistry(), obs.NewRegistry()
	reg0.Counter("pings_total").Add(3)
	reg1.Counter("pings_total").Add(5)
	reg1.Gauge("depth").Set(17)
	srv0 := serve(reg0)
	defer srv0.Close()
	srv1 := serve(reg1)
	defer srv1.Close()

	cluster := obs.NewRegistry()
	f := &Federator{Net: net, Reg: cluster, Timeout: time.Second}
	targets := []Target{
		{Node: "n-0", Addr: srv0.Addr()},
		{Node: "n-1", Addr: srv1.Addr()},
	}
	ctx := context.Background()

	// Hammer one source registry while the sweep scrapes it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			reg0.Counter("pings_total").Inc()
			reg0.Gauge("depth").Set(int64(i))
		}
	}()
	f.Scrape(ctx, targets)
	wg.Wait()

	snap := cluster.Snapshot()
	if p := obs.Find(snap, "pings_total", obs.L(NodeLabel, "n-0")); p == nil || p.Value < 3 {
		t.Errorf("n-0 counter not federated: %+v", p)
	}
	if p := obs.Find(snap, "pings_total", obs.L(NodeLabel, "n-1")); p == nil || p.Value != 5 {
		t.Errorf("n-1 counter not federated: %+v", p)
	}
	for _, n := range []string{"n-0", "n-1"} {
		if p := obs.Find(snap, "federation_node_up", obs.L(NodeLabel, n)); p == nil || p.GaugeValue != 1 {
			t.Errorf("federation_node_up{node=%s} = %+v, want 1", n, p)
		}
	}
	if p := obs.Find(snap, "federation_rounds_total"); p == nil || p.Value != 1 {
		t.Errorf("rounds counter: %+v", p)
	}
	if p := obs.Find(snap, "federation_scrapes_total"); p == nil || p.Value != 2 {
		t.Errorf("scrapes counter: %+v", p)
	}

	// n-1 dies; n-0 keeps moving.
	net.Partition(srv1.Addr())
	reg0.Counter("pings_total").Add(1000)
	f.Scrape(ctx, targets)
	snap = cluster.Snapshot()
	if p := obs.Find(snap, "federation_node_up", obs.L(NodeLabel, "n-1")); p == nil || p.GaugeValue != 0 {
		t.Errorf("dead node still up: %+v", p)
	}
	if p := obs.Find(snap, "federation_node_up", obs.L(NodeLabel, "n-0")); p == nil || p.GaugeValue != 1 {
		t.Errorf("survivor marked down: %+v", p)
	}
	if p := obs.Find(snap, "federation_scrape_errors_total", obs.L(NodeLabel, "n-1")); p == nil || p.Value != 1 {
		t.Errorf("error counter for the dead node: %+v", p)
	}
	if p := obs.Find(snap, "pings_total", obs.L(NodeLabel, "n-0")); p == nil || p.Value < 1003 {
		t.Errorf("survivor's fresh values not imported: %+v", p)
	}
	// The dead node's last values survive: the failure detector, not the
	// scraper, decides what silence means.
	if p := obs.Find(snap, "depth", obs.L(NodeLabel, "n-1")); p == nil || p.GaugeValue != 17 {
		t.Errorf("dead node's last imported gauge lost: %+v", p)
	}

	net.Heal(srv1.Addr())
	f.Scrape(ctx, targets)
	if p := obs.Find(cluster.Snapshot(), "federation_node_up", obs.L(NodeLabel, "n-1")); p == nil || p.GaugeValue != 1 {
		t.Errorf("healed node still down: %+v", p)
	}
}

// TestFederatedRingDrivesEngine wires the full loop the supervisor runs:
// scrape → manual ring sample → rule evaluation, with a per-node rule firing
// for exactly the node whose federated series breaches.
func TestFederatedRingDrivesEngine(t *testing.T) {
	net := transport.NewInProc()
	regs := map[string]*obs.Registry{"n-0": obs.NewRegistry(), "n-1": obs.NewRegistry()}
	var targets []Target
	for node, reg := range regs {
		reg := reg
		srv, err := net.Listen("", func(_ context.Context, req []byte) ([]byte, error) {
			resp, handled := reg.TextReply(strings.Fields(string(req)))
			if !handled {
				return []byte("ERR unknown verb"), nil
			}
			return resp, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		targets = append(targets, Target{Node: node, Addr: srv.Addr()})
	}

	cluster := obs.NewRegistry()
	h := cluster.StartHistory(0, 16)
	f := &Federator{Net: net, Reg: cluster, Timeout: time.Second}
	eng := NewEngine(cluster, []Rule{{
		Name:      "backlog-growing",
		Signal:    Signal{Metric: "backlog_bytes", Agg: AggGaugeDelta},
		PerNode:   true,
		Windows:   []time.Duration{time.Hour},
		Threshold: 1 << 20,
		FireAfter: 1, ResolveAfter: 1,
	}})
	ctx := context.Background()
	round := func() []Alert {
		f.Scrape(ctx, targets)
		h.Sample()
		return eng.Eval(h)
	}

	regs["n-0"].Gauge("backlog_bytes").Set(0)
	regs["n-1"].Gauge("backlog_bytes").Set(0)
	if active := round(); len(active) != 0 {
		t.Fatalf("quiet baseline fired: %v", active)
	}
	regs["n-1"].Gauge("backlog_bytes").Set(4 << 20) // only n-1 grows
	active := round()
	if len(active) != 1 || active[0].Node != "n-1" {
		t.Fatalf("per-node rule fired for the wrong entity: %v", active)
	}
}
