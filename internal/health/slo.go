package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"blobcr/internal/obs"
)

// Agg selects how a Signal reduces a windowed series to one number.
type Agg int

const (
	// AggRate is a counter's per-second increase over the window (summed
	// across matching series).
	AggRate Agg = iota
	// AggP99 / AggP50 / AggMean reduce a histogram's in-window observations
	// (worst matching series wins).
	AggP99
	AggP50
	AggMean
	// AggGaugeLast / AggGaugeMin / AggGaugeMax / AggGaugeDelta reduce a
	// gauge over the window's samples; Delta is last minus baseline — the
	// burn-rate shape for backlog growth. Last and Delta sum across matching
	// series, Min and Max take the extreme.
	AggGaugeLast
	AggGaugeMin
	AggGaugeMax
	AggGaugeDelta
)

// Signal names one windowed quantity: a metric, fixed label matches, and the
// aggregation. Div, when set, divides by a second signal over the same
// window (hit rates, miss ratios); a zero or absent denominator makes the
// signal unevaluable for that window — no data never breaches.
type Signal struct {
	Metric string
	Labels []obs.Label
	Agg    Agg
	Div    *Signal
}

// Rule is one declarative SLO. With a single window it is a plain threshold
// rule; with several it is a multi-window burn-rate rule — every window must
// breach at once, so a short spike (long window clear) and a slow creep
// (short window clear) both stay quiet while a sustained burn fires.
type Rule struct {
	Name   string
	Signal Signal
	// PerNode evaluates the rule separately per node= label value.
	PerNode bool
	// Windows to evaluate, all of which must breach (at least one).
	Windows []time.Duration
	// Threshold with Below=false fires on value > Threshold; Below=true
	// fires on value < Threshold.
	Threshold float64
	Below     bool
	// FireAfter / ResolveAfter are the hysteresis: consecutive breaching
	// (resp. clear) evaluations before the alert transitions (default 1).
	FireAfter    int
	ResolveAfter int
}

// Alert is one firing (or just-resolved) rule instance.
type Alert struct {
	Rule  string
	Node  string // "" for cluster-wide rules
	Value float64
	Since time.Time // first evaluation of the breach streak that fired
}

// Name renders "rule" or "rule(node)".
func (a Alert) Name() string {
	if a.Node == "" {
		return a.Rule
	}
	return fmt.Sprintf("%s(%s)", a.Rule, a.Node)
}

// DefaultRules is the stock SLO set over the signals every deployment
// already exports: the paper's headline quantities (suspend window, drain
// backlog, MTTR) plus the storage-efficiency regressions (dedup hit rate,
// seglog live ratio) that degrade silently.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:      "suspend-p99-high",
			Signal:    Signal{Metric: "proxy_suspend_ns", Agg: AggP99},
			PerNode:   true,
			Windows:   []time.Duration{30 * time.Second, 2 * time.Minute},
			Threshold: float64(500 * time.Millisecond),
			FireAfter: 2, ResolveAfter: 2,
		},
		{
			Name:      "drain-backlog-growing",
			Signal:    Signal{Metric: "supervisor_drain_backlog_bytes", Agg: AggGaugeDelta},
			PerNode:   true,
			Windows:   []time.Duration{10 * time.Second, 30 * time.Second},
			Threshold: 1 << 20, // sustained growth past 1 MiB across both windows
			FireAfter: 1, ResolveAfter: 2,
		},
		{
			Name: "heartbeat-miss-rate-high",
			Signal: Signal{
				Metric: "supervisor_heartbeats_missed_total", Agg: AggRate,
				Div: &Signal{Metric: "supervisor_heartbeats_total", Agg: AggRate},
			},
			Windows:   []time.Duration{15 * time.Second, time.Minute},
			Threshold: 0.05,
			FireAfter: 1, ResolveAfter: 3,
		},
		{
			Name:      "storage-mttr-high",
			Signal:    Signal{Metric: "supervisor_storage_mttr_ns", Agg: AggMean},
			Windows:   []time.Duration{5 * time.Minute},
			Threshold: float64(2 * time.Second),
			FireAfter: 1, ResolveAfter: 1,
		},
		{
			Name: "dedup-hit-rate-collapsed",
			Signal: Signal{
				Metric: "blobseer_dedup_hit_bytes_total", Agg: AggRate,
				Div: &Signal{Metric: "blobseer_commit_logical_bytes_total", Agg: AggRate},
			},
			Windows: []time.Duration{30 * time.Second, 2 * time.Minute},
			Below:   true, Threshold: 0.05,
			FireAfter: 2, ResolveAfter: 2,
		},
		{
			Name:    "seglog-live-ratio-low",
			Signal:  Signal{Metric: "seglog_live_ratio_pct", Agg: AggGaugeMin},
			PerNode: true,
			Windows: []time.Duration{time.Minute},
			Below:   true, Threshold: 30,
			FireAfter: 2, ResolveAfter: 2,
		},
	}
}

// Engine evaluates rules over a history ring and tracks alert state with
// fire/resolve hysteresis. Firings and resolutions surface three ways: the
// OnFire/OnResolve callbacks (the supervisor turns them into events),
// health_alert_active{alert=,node=} gauges in Reg, and Status (wired into
// the HEALTH verb and /healthz via obs.Registry.SetHealth).
type Engine struct {
	Reg       *obs.Registry
	Rules     []Rule
	OnFire    func(Alert)
	OnResolve func(Alert)

	mu    sync.Mutex
	state map[string]*alertState
}

type alertState struct {
	firing        bool
	breach, clear int
	value         float64
	since         time.Time
}

// NewEngine builds an engine over rules (nil means DefaultRules) recording
// alert gauges into reg.
func NewEngine(reg *obs.Registry, rules []Rule) *Engine {
	if rules == nil {
		rules = DefaultRules()
	}
	return &Engine{Reg: reg, Rules: rules, state: make(map[string]*alertState)}
}

// Status reports readiness for obs.Registry.SetHealth: ok when nothing
// fires, else the sorted firing alert names.
func (e *Engine) Status() (ok bool, firing []string) {
	for _, a := range e.Active() {
		firing = append(firing, a.Name())
	}
	return len(firing) == 0, firing
}

// Active returns the currently firing alerts, sorted by name.
func (e *Engine) Active() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Alert
	for k, s := range e.state {
		if !s.firing {
			continue
		}
		rule, node := splitStateKey(k)
		out = append(out, Alert{Rule: rule, Node: node, Value: s.value, Since: s.since})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Eval runs one evaluation round over the ring's current contents and
// returns the alerts active afterwards. Callbacks run inline, without the
// engine lock held.
func (e *Engine) Eval(h *obs.History) []Alert {
	at := time.Now() // Alert.Since — domain data, not a latency measurement
	windows := make(map[time.Duration]*obs.WindowReport)
	for _, r := range e.Rules {
		for _, w := range r.Windows {
			windows[w] = nil
		}
	}
	for w := range windows {
		rep := h.Window(w)
		windows[w] = &rep
	}

	var fired, resolved []Alert
	e.mu.Lock()
	for ri := range e.Rules {
		rule := &e.Rules[ri]
		if len(rule.Windows) == 0 {
			continue
		}
		shortest := rule.Windows[0]
		for _, w := range rule.Windows[1:] {
			if w < shortest {
				shortest = w
			}
		}
		entities := e.ruleEntities(rule, windows[shortest])
		for _, node := range entities {
			breached := true
			var value float64
			for _, w := range rule.Windows {
				v, ok := signalValue(windows[w], &rule.Signal, node)
				if !ok {
					breached = false
					break
				}
				if w == shortest {
					value = v
				}
				if rule.Below {
					if v >= rule.Threshold {
						breached = false
						break
					}
				} else if v <= rule.Threshold {
					breached = false
					break
				}
			}
			k := stateKey(rule.Name, node)
			s := e.state[k]
			if s == nil {
				s = &alertState{}
				e.state[k] = s
			}
			if breached {
				if s.breach == 0 {
					s.since = at
				}
				s.breach++
				s.clear = 0
				s.value = value
				fireAfter := rule.FireAfter
				if fireAfter < 1 {
					fireAfter = 1
				}
				if !s.firing && s.breach >= fireAfter {
					s.firing = true
					fired = append(fired, Alert{Rule: rule.Name, Node: node, Value: value, Since: s.since})
				}
			} else {
				s.clear++
				s.breach = 0
				resolveAfter := rule.ResolveAfter
				if resolveAfter < 1 {
					resolveAfter = 1
				}
				if s.firing && s.clear >= resolveAfter {
					s.firing = false
					resolved = append(resolved, Alert{Rule: rule.Name, Node: node, Value: s.value, Since: s.since})
				}
			}
		}
	}
	e.mu.Unlock()

	for _, a := range fired {
		e.Reg.Gauge("health_alert_active", obs.L("alert", a.Rule), obs.L(NodeLabel, a.Node)).Set(1)
		e.Reg.Counter("health_alerts_fired_total", obs.L("alert", a.Rule)).Inc()
		if e.OnFire != nil {
			e.OnFire(a)
		}
	}
	for _, a := range resolved {
		e.Reg.Gauge("health_alert_active", obs.L("alert", a.Rule), obs.L(NodeLabel, a.Node)).Set(0)
		e.Reg.Counter("health_alerts_resolved_total", obs.L("alert", a.Rule)).Inc()
		if e.OnResolve != nil {
			e.OnResolve(a)
		}
	}
	return e.Active()
}

// ruleEntities lists the node label values a per-node rule evaluates over
// (plus every entity with existing state, so a vanished node's alert can
// still resolve). Cluster-wide rules evaluate once, under "".
func (e *Engine) ruleEntities(rule *Rule, rep *obs.WindowReport) []string {
	if !rule.PerNode {
		return []string{""}
	}
	seen := make(map[string]bool)
	for i := range rep.Stats {
		st := &rep.Stats[i]
		if st.Name != rule.Signal.Metric {
			continue
		}
		for _, l := range st.Labels {
			if l.Key == NodeLabel && l.Value != "" {
				seen[l.Value] = true
			}
		}
	}
	for k := range e.state {
		if r, node := splitStateKey(k); r == rule.Name && node != "" {
			seen[node] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func stateKey(rule, node string) string { return rule + "\xff" + node }

func splitStateKey(k string) (rule, node string) {
	for i := 0; i < len(k); i++ {
		if k[i] == '\xff' {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

// signalValue reduces a window report to sig's value for one entity. ok is
// false when no matching series carries data in the window (or the
// denominator of a ratio is absent or zero) — unevaluable never breaches.
func signalValue(rep *obs.WindowReport, sig *Signal, node string) (float64, bool) {
	v, ok := aggValue(rep, sig, node)
	if !ok {
		return 0, false
	}
	if sig.Div != nil {
		d, ok := aggValue(rep, sig.Div, node)
		if !ok || d <= 0 {
			return 0, false
		}
		v /= d
	}
	return v, true
}

func aggValue(rep *obs.WindowReport, sig *Signal, node string) (float64, bool) {
	want := sig.Labels
	if node != "" {
		want = append(append([]obs.Label(nil), want...), obs.L(NodeLabel, node))
	}
	matched := false
	var acc float64
	for i := range rep.Stats {
		st := &rep.Stats[i]
		if st.Name != sig.Metric || !statMatches(st, want) {
			continue
		}
		var v float64
		switch sig.Agg {
		case AggRate:
			if st.Kind != obs.KindCounter {
				continue
			}
			v = st.Rate
		case AggP99, AggP50, AggMean:
			if st.Kind != obs.KindHistogram || st.Count == 0 {
				continue
			}
			switch sig.Agg {
			case AggP99:
				v = st.P99
			case AggP50:
				v = st.P50
			default:
				v = st.Mean
			}
		default:
			if st.Kind != obs.KindGauge {
				continue
			}
			switch sig.Agg {
			case AggGaugeLast:
				v = float64(st.Last)
			case AggGaugeMin:
				v = float64(st.Min)
			case AggGaugeMax:
				v = float64(st.Max)
			case AggGaugeDelta:
				v = float64(st.Last - st.First)
			}
		}
		if !matched {
			acc = v
			matched = true
			continue
		}
		switch sig.Agg {
		case AggRate, AggGaugeLast, AggGaugeDelta:
			acc += v
		case AggGaugeMin:
			acc = min(acc, v)
		default: // quantiles, mean, gauge max: worst series wins
			acc = max(acc, v)
		}
	}
	return acc, matched
}

func statMatches(st *obs.WindowStat, want []obs.Label) bool {
	for _, w := range want {
		found := false
		for _, l := range st.Labels {
			if l.Key == w.Key {
				found = l.Value == w.Value
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
