package localtier

import (
	"errors"
	"testing"

	"blobcr/internal/blobseer"
	"blobcr/internal/chunkstore"
	"blobcr/internal/obs"
)

func newTestStage(t *testing.T) *Stage {
	t.Helper()
	return New(chunkstore.NewMem(), obs.NewRegistry())
}

func TestPutWritesRoundtrip(t *testing.T) {
	s := newTestStage(t)
	writes := map[uint64][]byte{
		3: []byte("chunk-three"),
		0: []byte("chunk-zero"),
		7: []byte("chunk-seven"),
	}
	base := blobseer.SnapshotRef{Blob: 4, Version: 9}
	c, err := s.Put("vm-0", 1, base, 512, 64, writes, false)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if c.Owner != "vm-0" || c.Seq != 1 || c.Base != base || c.Size != 512 || c.ChunkSize != 64 {
		t.Fatalf("capture metadata = %+v", c)
	}
	if got, want := c.Bytes(), uint64(len("chunk-three")+len("chunk-zero")+len("chunk-seven")); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
	idx := c.Indices()
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 3 || idx[2] != 7 {
		t.Fatalf("Indices() = %v, want sorted [0 3 7]", idx)
	}
	back, err := s.Writes(c)
	if err != nil {
		t.Fatalf("Writes: %v", err)
	}
	if len(back) != len(writes) {
		t.Fatalf("Writes returned %d chunks, want %d", len(back), len(writes))
	}
	for i, data := range writes {
		if string(back[i]) != string(data) {
			t.Errorf("chunk %d = %q, want %q", i, back[i], data)
		}
	}
}

func TestPutReplacesDuplicateSeq(t *testing.T) {
	s := newTestStage(t)
	if _, err := s.Put("vm-0", 5, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{0: []byte("old")}, true); err != nil {
		t.Fatalf("first Put: %v", err)
	}
	c2, err := s.Put("vm-0", 5, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{1: []byte("newer")}, true)
	if err != nil {
		t.Fatalf("second Put: %v", err)
	}
	pending := s.Pending("vm-0")
	if len(pending) != 1 || pending[0] != c2 {
		t.Fatalf("Pending = %v, want exactly the replacement capture", pending)
	}
	own, partner := s.Backlog()
	if own.Checkpoints != 0 {
		t.Errorf("own backlog = %+v, want empty", own)
	}
	if partner.Checkpoints != 1 || partner.Chunks != 1 || partner.Bytes != uint64(len("newer")) {
		t.Errorf("partner backlog = %+v, want the replacement only", partner)
	}
}

func TestBacklogSplitsRoles(t *testing.T) {
	s := newTestStage(t)
	if _, err := s.Put("vm-0", 1, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{0: make([]byte, 10), 1: make([]byte, 20)}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("vm-1", 1, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{2: make([]byte, 40)}, true); err != nil {
		t.Fatal(err)
	}
	own, partner := s.Backlog()
	if own.Checkpoints != 1 || own.Chunks != 2 || own.Bytes != 30 {
		t.Errorf("own = %+v, want 1 ckpt / 2 chunks / 30 bytes", own)
	}
	if partner.Checkpoints != 1 || partner.Chunks != 1 || partner.Bytes != 40 {
		t.Errorf("partner = %+v, want 1 ckpt / 1 chunk / 40 bytes", partner)
	}
	if b := s.OwnerBacklog("vm-0"); b.Checkpoints != 1 || b.Chunks != 2 || b.Bytes != 30 {
		t.Errorf("OwnerBacklog(vm-0) = %+v", b)
	}
	owners := s.Owners()
	if len(owners) != 2 || owners[0] != "vm-0" || owners[1] != "vm-1" {
		t.Errorf("Owners() = %v", owners)
	}
}

func TestMarkDrainedAdvancesMemoAndFreesChunks(t *testing.T) {
	s := newTestStage(t)
	c1, err := s.Put("vm-0", 1, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{0: []byte("a")}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("vm-0", 2, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{1: []byte("b")}, false); err != nil {
		t.Fatal(err)
	}
	ref1 := blobseer.SnapshotRef{Blob: 1, Version: 3}
	s.MarkDrained("vm-0", 1, ref1)
	if seq, ref, ok := s.LastDrained("vm-0"); !ok || seq != 1 || ref != ref1 {
		t.Fatalf("LastDrained = %d %v %v, want 1 %v true", seq, ref, ok, ref1)
	}
	if _, err := s.Writes(c1); !errors.Is(err, ErrNotStaged) {
		t.Fatalf("Writes after drain: err = %v, want ErrNotStaged", err)
	}
	if pending := s.Pending("vm-0"); len(pending) != 1 || pending[0].Seq != 2 {
		t.Fatalf("Pending after drain = %v, want only seq 2", pending)
	}
	// A stale release (e.g. a partner replay) must not move the memo back.
	s.MarkDrained("vm-0", 0, blobseer.SnapshotRef{Blob: 9, Version: 9})
	if seq, ref, _ := s.LastDrained("vm-0"); seq != 1 || ref != ref1 {
		t.Fatalf("stale MarkDrained rewound the memo: %d %v", seq, ref)
	}
	// A release for a capture already gone still advances chain state.
	ref3 := blobseer.SnapshotRef{Blob: 1, Version: 5}
	s.MarkDrained("vm-0", 3, ref3)
	if seq, ref, _ := s.LastDrained("vm-0"); seq != 3 || ref != ref3 {
		t.Fatalf("tolerant MarkDrained: %d %v, want 3 %v", seq, ref, ref3)
	}
}

func TestDropDiscardsOwner(t *testing.T) {
	s := newTestStage(t)
	if _, err := s.Put("vm-0", 1, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{0: []byte("a")}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("vm-0", 2, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{1: []byte("b")}, true); err != nil {
		t.Fatal(err)
	}
	s.MarkDrained("vm-0", 1, blobseer.SnapshotRef{Blob: 1, Version: 1})
	if n := s.Drop("vm-0"); n != 1 {
		t.Fatalf("Drop = %d, want 1 (seq 1 already drained)", n)
	}
	if _, _, ok := s.LastDrained("vm-0"); ok {
		t.Error("Drop kept the drain memo; a re-registered owner would chain off a stale ref")
	}
	own, partner := s.Backlog()
	if own.Checkpoints+partner.Checkpoints != 0 {
		t.Errorf("backlog after Drop: own=%+v partner=%+v", own, partner)
	}
	if len(s.Owners()) != 0 {
		t.Errorf("Owners after Drop = %v", s.Owners())
	}
}

func TestGaugeAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(chunkstore.NewMem(), reg)
	if _, err := s.Put("vm-0", 1, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{0: make([]byte, 100)}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("vm-0", 2, blobseer.SnapshotRef{}, 128, 64, map[uint64][]byte{0: make([]byte, 50)}, false); err != nil {
		t.Fatal(err)
	}
	ck := reg.Gauge("localtier_staged_checkpoints", obs.L("role", "own"))
	by := reg.Gauge("localtier_staged_bytes", obs.L("role", "own"))
	if ck.Value() != 2 || by.Value() != 150 {
		t.Fatalf("after staging: ckpts=%d bytes=%d, want 2/150", ck.Value(), by.Value())
	}
	s.MarkDrained("vm-0", 1, blobseer.SnapshotRef{Blob: 1, Version: 1})
	if ck.Value() != 1 || by.Value() != 50 {
		t.Fatalf("after drain: ckpts=%d bytes=%d, want 1/50", ck.Value(), by.Value())
	}
	s.Drop("vm-0")
	if ck.Value() != 0 || by.Value() != 0 {
		t.Fatalf("after Drop: ckpts=%d bytes=%d, want 0/0", ck.Value(), by.Value())
	}
	if got := reg.Counter("localtier_staged_total").Value(); got != 2 {
		t.Errorf("localtier_staged_total = %d, want 2", got)
	}
	if got := reg.Counter("localtier_drained_total").Value(); got != 1 {
		t.Errorf("localtier_drained_total = %d, want 1", got)
	}
	if got := reg.Counter("localtier_dropped_total").Value(); got != 1 {
		t.Errorf("localtier_dropped_total = %d, want 1", got)
	}
}
